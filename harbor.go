// Package harbor is the public API of this HARBOR reproduction: an
// updatable, distributed data warehouse with integrated high availability
// and replication-based online crash recovery, after Edmond Lau's 2006 MIT
// thesis "HARBOR: An Integrated Approach to Recovery and High Availability
// in an Updatable, Distributed Data Warehouse".
//
// A deployment is one coordinator plus N worker sites. Tables are
// replicated K+1 times for K-safety (§3.2); update transactions reach every
// live replica through one of four distributed commit protocols (§4.3);
// reads run either against the current database under strict two-phase
// locking or as lock-free historical ("time travel") queries (§3.3). A
// crashed worker recovers online — without quiescing the system and without
// any write-ahead log — by querying remote replicas for the updates it
// missed (Chapter 5). The log-based alternative (ARIES + logging commit
// protocols) is fully implemented as the baseline.
//
// Quick start:
//
//	cluster, _ := harbor.Start(harbor.Options{Workers: 2, Dir: dir})
//	defer cluster.Stop()
//	desc := harbor.MustSchema("id",
//		harbor.Int64Field("id"), harbor.CharField("name", 16))
//	cluster.CreateTable(1, desc)
//	tx := cluster.Begin()
//	tx.Insert(1, harbor.Row(desc, harbor.Int(1), harbor.Str("Colgate")))
//	commitTime, _ := tx.Commit()
//	rows, _ := cluster.Query(1, harbor.Query{})                      // now
//	old, _ := cluster.Query(1, harbor.Query{AsOf: commitTime - 1})   // time travel
//
// Killing and reviving a worker:
//
//	cluster.CrashWorker(0)
//	// ... the cluster keeps serving reads and writes ...
//	stats, _ := cluster.RecoverWorker(0) // HARBOR's three phases
package harbor

import (
	"fmt"
	"path/filepath"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/coord"
	"harbor/internal/core"
	"harbor/internal/expr"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// Re-exported commit protocols (§4.3).
const (
	// TwoPC is traditional two-phase commit with write-ahead logging.
	TwoPC = txn.TwoPC
	// OptTwoPC eliminates worker logging (HARBOR's optimized 2PC).
	OptTwoPC = txn.OptTwoPC
	// ThreePC is canonical non-blocking three-phase commit with logging.
	ThreePC = txn.ThreePC
	// OptThreePC is HARBOR's logless, non-blocking 3PC (the default).
	OptThreePC = txn.OptThreePC
)

// Recovery modes.
const (
	// HARBOR recovers crashed sites from remote replicas (no log).
	HARBOR = worker.HARBOR
	// ARIES recovers crashed sites from a local write-ahead log.
	ARIES = worker.ARIES
)

// Schema helpers.

// Schema is a table schema (timestamp columns included automatically).
type Schema = tuple.Desc

// Int64Field declares an 8-byte integer column.
func Int64Field(name string) tuple.FieldDef {
	return tuple.FieldDef{Name: name, Type: tuple.Int64}
}

// Int32Field declares a 4-byte integer column.
func Int32Field(name string) tuple.FieldDef {
	return tuple.FieldDef{Name: name, Type: tuple.Int32}
}

// CharField declares a fixed-width string column.
func CharField(name string, size int) tuple.FieldDef {
	return tuple.FieldDef{Name: name, Type: tuple.Char, Size: size}
}

// NewSchema builds a schema; key names the unique tuple-identifier column
// (must be Int64).
func NewSchema(key string, fields ...tuple.FieldDef) (*Schema, error) {
	return tuple.NewDesc(key, fields...)
}

// MustSchema is NewSchema that panics on error.
func MustSchema(key string, fields ...tuple.FieldDef) *Schema {
	return tuple.MustDesc(key, fields...)
}

// Value constructors.

// Int makes an integer value.
func Int(v int64) tuple.Value { return tuple.VInt(v) }

// Str makes a string value.
func Str(s string) tuple.Value { return tuple.VStr(s) }

// Row builds a tuple from user values (timestamps managed by the system).
func Row(s *Schema, values ...tuple.Value) tuple.Tuple {
	return tuple.MustMake(s, values...)
}

// Tuple is a stored row; its methods expose the key and the insertion /
// deletion timestamps that power time travel.
type Tuple = tuple.Tuple

// Timestamp is a logical commit time.
type Timestamp = tuple.Timestamp

// Options configures a cluster.
type Options struct {
	// Workers is the number of worker sites (≥ 1). Tables default to full
	// replication on every worker, giving (Workers-1)-safety.
	Workers int
	// Dir is the root directory for all site state.
	Dir string
	// Protocol selects the commit protocol (default OptThreePC).
	Protocol txn.Protocol
	// Mode selects the recovery mechanism (default HARBOR).
	Mode worker.RecoveryMode
	// CheckpointEvery enables periodic checkpoints (default 1s; the thesis
	// found 1–10 s costs under ~9.5% throughput, §6.3).
	CheckpointEvery time.Duration
	// SegPages is the default segment size in pages (default 256 ≙ 1 MB).
	SegPages int32
	// GroupCommit batches log forces (meaningful for logging protocols).
	GroupCommit bool
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.Protocol == 0 {
		o.Protocol = OptThreePC
	}
	if o.Mode == 0 {
		o.Mode = HARBOR
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = time.Second
	}
	if o.SegPages == 0 {
		o.SegPages = 256
	}
	return o
}

// Cluster is a running deployment.
type Cluster struct {
	opts    Options
	Catalog *catalog.Catalog
	Coord   *coord.Coordinator
	workers []*worker.Site
}

// Start launches the coordinator and workers.
func Start(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("harbor: Options.Dir is required")
	}
	cat := catalog.New(0)
	c := &Cluster{opts: opts, Catalog: cat}
	for i := 0; i < opts.Workers; i++ {
		site := catalog.SiteID(i + 1)
		w, err := worker.Open(worker.Config{
			Site:            site,
			Dir:             filepath.Join(opts.Dir, fmt.Sprintf("site%d", site)),
			Protocol:        opts.Protocol,
			Mode:            opts.Mode,
			CheckpointEvery: opts.CheckpointEvery,
			GroupCommit:     opts.GroupCommit,
			Catalog:         cat,
		})
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.workers = append(c.workers, w)
		cat.AddSite(site, w.Addr())
	}
	co, err := coord.New(coord.Config{
		Site:        0,
		Dir:         filepath.Join(opts.Dir, "site0"),
		Protocol:    opts.Protocol,
		Catalog:     cat,
		GroupCommit: opts.GroupCommit,
	})
	if err != nil {
		c.Stop()
		return nil, err
	}
	c.Coord = co
	cat.AddSite(0, co.Addr())
	return c, nil
}

// Stop shuts the cluster down cleanly.
func (c *Cluster) Stop() {
	if c.Coord != nil {
		c.Coord.Close()
	}
	for _, w := range c.workers {
		if w != nil {
			w.Close()
		}
	}
}

// NumWorkers returns the worker count.
func (c *Cluster) NumWorkers() int { return len(c.workers) }

// Worker exposes a worker site (power users, examples, experiments).
func (c *Cluster) Worker(i int) *worker.Site { return c.workers[i] }

// CreateTable creates a table replicated in full on every worker
// ((Workers-1)-safety).
func (c *Cluster) CreateTable(id int32, schema *Schema) error {
	spec := &catalog.TableSpec{ID: id, Name: fmt.Sprintf("table%d", id), Desc: schema, SegPages: c.opts.SegPages}
	var reps []catalog.Replica
	for i := range c.workers {
		reps = append(reps, catalog.Replica{
			Site: catalog.SiteID(i + 1), Table: id,
			Range: expr.FullKeyRange(), SegPages: c.opts.SegPages,
		})
	}
	return c.Coord.CreateTable(spec, reps...)
}

// CreateTableOn creates a table replicated on specific workers with
// optional horizontal partitioning.
func (c *Cluster) CreateTableOn(id int32, schema *Schema, replicas ...Replica) error {
	spec := &catalog.TableSpec{ID: id, Name: fmt.Sprintf("table%d", id), Desc: schema, SegPages: c.opts.SegPages}
	reps := make([]catalog.Replica, len(replicas))
	for i, r := range replicas {
		rng := expr.FullKeyRange()
		if r.KeyLo != 0 || r.KeyHi != 0 {
			rng = expr.KeyRange{Lo: r.KeyLo, Hi: r.KeyHi}
		}
		segPages := r.SegPages
		if segPages == 0 {
			segPages = c.opts.SegPages
		}
		reps[i] = catalog.Replica{
			Site: catalog.SiteID(r.Worker + 1), Table: id, Range: rng, SegPages: segPages,
		}
	}
	return c.Coord.CreateTable(spec, reps...)
}

// Replica places (part of) a table on a worker. A zero KeyLo/KeyHi pair
// means the full key range; SegPages of 0 inherits the cluster default —
// replicas may use different segment sizes (non-identical physical
// formats, §3.1).
type Replica struct {
	Worker       int
	KeyLo, KeyHi int64
	SegPages     int32
}

// Begin starts a distributed update transaction.
func (c *Cluster) Begin() *coord.Txn { return c.Coord.Begin() }

// Query runs a read-only query over one table.
type Query struct {
	// AsOf > 0 runs a lock-free historical query as of that time (§3.3);
	// zero reads current data under read locks.
	AsOf Timestamp
	// Where filters rows (see Where / WhereKeyRange helpers).
	Where expr.Pred
}

// Query executes a read.
func (c *Cluster) Query(table int32, q Query) ([]Tuple, error) {
	return c.Coord.Scan(table, coord.QueryOptions{
		Historical: q.AsOf > 0,
		AsOf:       q.AsOf,
		Pred:       q.Where,
	})
}

// Now returns the latest safe historical time (the high water mark).
func (c *Cluster) Now() Timestamp { return c.Coord.Authority.HWM() }

// CrashWorker fail-stops a worker (testing, chaos drills).
func (c *Cluster) CrashWorker(i int) { c.workers[i].Crash() }

// RecoverWorker reboots a crashed worker over its surviving files and runs
// HARBOR's three-phase online recovery (or ARIES restart in ARIES mode).
// The cluster keeps processing transactions throughout.
func (c *Cluster) RecoverWorker(i int) (*core.SiteStats, error) {
	old := c.workers[i]
	if !old.Crashed() {
		return nil, fmt.Errorf("harbor: worker %d has not crashed", i)
	}
	w, err := worker.Open(worker.Config{
		Site:            old.Cfg.Site,
		Dir:             old.Cfg.Dir,
		Protocol:        c.opts.Protocol,
		Mode:            c.opts.Mode,
		CheckpointEvery: c.opts.CheckpointEvery,
		GroupCommit:     c.opts.GroupCommit,
		Catalog:         c.Catalog,
	})
	if err != nil {
		return nil, err
	}
	c.workers[i] = w
	c.Catalog.AddSite(old.Cfg.Site, w.Addr())
	if c.opts.Mode == ARIES {
		if _, err := w.RecoverARIES(); err != nil {
			return nil, err
		}
		return &core.SiteStats{}, nil
	}
	return core.New(w, c.Catalog).RecoverSite(core.Options{Parallel: true})
}

// BulkLoad appends one pre-stamped segment of rows to every replica of the
// table — the §4.2 bulk-load feature warehouses use for daily or hourly
// loads. The whole batch becomes visible atomically with one insertion
// timestamp, which BulkLoad returns. The rows bypass the transaction path
// entirely (no locks, no commit protocol); the segment appears as already
// committed history.
func (c *Cluster) BulkLoad(table int32, rows []Tuple) (Timestamp, error) {
	ts := c.Coord.Authority.Issue()
	defer c.Coord.Authority.Complete(ts)
	stamped := make([]Tuple, len(rows))
	for i, r := range rows {
		t := r.Clone()
		t.SetInsTS(ts)
		t.SetDelTS(0)
		stamped[i] = t
	}
	for _, w := range c.workers {
		if !w.Mgr.Has(table) {
			continue
		}
		tb, err := w.Mgr.Get(table)
		if err != nil {
			return 0, err
		}
		if _, err := tb.Heap.BulkLoadSegment(stamped); err != nil {
			return 0, err
		}
		if err := w.Mgr.RebuildIndexes(); err != nil {
			return 0, err
		}
		w.SeedAppliedTS(ts)
	}
	return ts, nil
}

// DropOldestSegment atomically drops the oldest segment of the table on
// every replica — the §4.2 bulk-drop feature clickthrough warehouses use to
// retire expired data and reclaim its space.
func (c *Cluster) DropOldestSegment(table int32) error {
	for _, w := range c.workers {
		if !w.Mgr.Has(table) {
			continue
		}
		tb, err := w.Mgr.Get(table)
		if err != nil {
			return err
		}
		if err := tb.Heap.DropOldestSegment(); err != nil {
			return err
		}
		if err := w.Mgr.RebuildIndexes(); err != nil {
			return err
		}
	}
	return nil
}

// Vacuum purges, on every worker, all tuple versions deleted at or before
// (Now() - retention) — §3.3's configurable amount of history. Time travel
// remains exact for every AsOf within the retention window. It returns the
// total number of versions purged across replicas.
func (c *Cluster) Vacuum(retention Timestamp) (int, error) {
	horizon := c.Now() - retention
	if horizon <= 0 {
		return 0, nil
	}
	total := 0
	for _, w := range c.workers {
		if w.Crashed() {
			continue
		}
		n, err := w.Store.VacuumAll(horizon)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// SegmentCount returns the number of segments a worker's replica holds.
func (c *Cluster) SegmentCount(workerIdx int, table int32) (int, error) {
	tb, err := c.workers[workerIdx].Mgr.Get(table)
	if err != nil {
		return 0, err
	}
	return tb.Heap.NumSegments(), nil
}

// Where builds a single-column comparison predicate.
func Where(s *Schema, field string, op expr.Op, v tuple.Value) expr.Pred {
	idx := s.FieldIndex(field)
	return expr.True.And(expr.Term{Field: idx, Op: op, Value: v})
}

// Comparison operators for Where.
const (
	EQ = expr.EQ
	NE = expr.NE
	LT = expr.LT
	LE = expr.LE
	GT = expr.GT
	GE = expr.GE
)
