// Benchmarks reproducing every table and figure of the thesis's evaluation
// (Chapter 6) at laptop scale. Each benchmark reports the paper's metric as
// a custom unit so `go test -bench=.` regenerates the series:
//
//	Table 4.2  BenchmarkTable42_ProtocolCosts      (forced-writes & messages, verified counts)
//	Fig  6-2   BenchmarkFig62_CommitProtocols      (tps per protocol × concurrency)
//	Fig  6-3   BenchmarkFig63_CPUWork              (tps per protocol × simulated work)
//	Fig  6-4   BenchmarkFig64_RecoveryInserts      (recovery seconds vs #insert txns)
//	Fig  6-5   BenchmarkFig65_RecoveryUpdates      (recovery seconds vs #historical segments)
//	Fig  6-6   BenchmarkFig66_PhaseDecomposition   (per-phase milliseconds)
//	Fig  6-7   BenchmarkFig67_FailureTimeline      (tps while crashing + recovering)
//
// cmd/harbor-bench runs the same experiments at larger scale with
// paper-style tabular output.
package harbor_test

import (
	"fmt"
	"testing"

	"harbor/internal/sim"
	"harbor/internal/testutil"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// BenchmarkTable42_ProtocolCosts verifies and reports the Table 4.2
// overhead profile: forced-writes by coordinator and per worker for one
// committed update transaction under each protocol.
func BenchmarkTable42_ProtocolCosts(b *testing.B) {
	cases := []struct {
		protocol txn.Protocol
		mode     worker.RecoveryMode
	}{
		{txn.TwoPC, worker.ARIES},
		{txn.OptTwoPC, worker.HARBOR},
		{txn.ThreePC, worker.ARIES},
		{txn.OptThreePC, worker.HARBOR},
	}
	desc := sim.BenchDesc()
	for _, c := range cases {
		b.Run(c.protocol.String(), func(b *testing.B) {
			cl, err := testutil.NewCluster(testutil.ClusterConfig{
				Workers: 2, Protocol: c.protocol, Mode: c.mode,
				GroupCommit: true, BaseDir: b.TempDir(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			if err := cl.CreateReplicatedTable(1, desc, 64); err != nil {
				b.Fatal(err)
			}
			cl.Coord.ResetCounters()
			for _, w := range cl.Workers {
				w.ResetCounters()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := cl.Coord.Begin()
				if err := tx.Insert(1, sim.BenchTuple(desc, int64(i))); err != nil {
					b.Fatal(err)
				}
				if _, err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			want := c.protocol.ExpectedCost()
			coordFW := float64(cl.Coord.ForcedWrites()) / float64(b.N)
			var workerFW float64
			for _, w := range cl.Workers {
				workerFW += float64(w.ForcedWrites())
			}
			workerFW /= float64(2 * b.N)
			b.ReportMetric(coordFW, "coordFW/txn")
			b.ReportMetric(workerFW, "workerFW/txn")
			if int(coordFW+0.5) != want.CoordForcedWrites || int(workerFW+0.5) != want.WorkerForcedWrites {
				b.Fatalf("Table 4.2 mismatch: coord %.1f (want %d), worker %.1f (want %d)",
					coordFW, want.CoordForcedWrites, workerFW, want.WorkerForcedWrites)
			}
		})
	}
}

// BenchmarkFig62_CommitProtocols reports transactions/second for the six
// Figure 6-2 configurations at several concurrency levels.
func BenchmarkFig62_CommitProtocols(b *testing.B) {
	for _, cfg := range sim.StandardConfigs() {
		for _, conc := range []int{1, 5, 10} {
			b.Run(fmt.Sprintf("%s/conc=%d", cfg.Name, conc), func(b *testing.B) {
				perStream := 20
				var totalTPS float64
				for i := 0; i < b.N; i++ {
					res, err := sim.RunCommitBench(b.TempDir(), cfg, conc, perStream, 0)
					if err != nil {
						b.Fatal(err)
					}
					totalTPS += res.TPS
				}
				b.ReportMetric(totalTPS/float64(b.N), "tps")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkFig63_CPUWork reports tps with simulated per-transaction CPU
// work (Figure 6-3's x-axis, scaled).
func BenchmarkFig63_CPUWork(b *testing.B) {
	configs := sim.StandardConfigs()[:4] // the four protocols
	for _, cfg := range configs {
		for _, cycles := range []int64{0, 500_000, 2_000_000} {
			b.Run(fmt.Sprintf("%s/cycles=%d", cfg.Name, cycles), func(b *testing.B) {
				var totalTPS float64
				for i := 0; i < b.N; i++ {
					res, err := sim.RunCommitBench(b.TempDir(), cfg, 1, 10, cycles)
					if err != nil {
						b.Fatal(err)
					}
					totalTPS += res.TPS
				}
				b.ReportMetric(totalTPS/float64(b.N), "tps")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkFig64_RecoveryInserts reports recovery time as a function of the
// number of insert transactions since the crash, for all four scenarios.
func BenchmarkFig64_RecoveryInserts(b *testing.B) {
	scenarios := []sim.RecoveryScenario{
		sim.Aries1Table, sim.Harbor1Table,
		sim.Harbor2TablesSerial, sim.Harbor2TablesParallel,
	}
	for _, sc := range scenarios {
		for _, txns := range []int{50, 400} {
			b.Run(fmt.Sprintf("%s/txns=%d", sc, txns), func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					res, err := sim.RunRecoveryBench(b.TempDir(), sim.RecoveryParams{
						Scenario:        sc,
						PreloadSegments: 8,
						SegPages:        16,
						InsertTxns:      txns,
					})
					if err != nil {
						b.Fatal(err)
					}
					total += res.RecoveryTime.Seconds() * 1000
				}
				b.ReportMetric(total/float64(b.N), "recovery-ms")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkFig65_RecoveryUpdates fixes the transaction count and varies the
// number of historical segments updated.
func BenchmarkFig65_RecoveryUpdates(b *testing.B) {
	scenarios := []sim.RecoveryScenario{sim.Aries1Table, sim.Harbor1Table}
	for _, sc := range scenarios {
		for _, segs := range []int{0, 4, 12} {
			b.Run(fmt.Sprintf("%s/histsegs=%d", sc, segs), func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					res, err := sim.RunRecoveryBench(b.TempDir(), sim.RecoveryParams{
						Scenario:                 sc,
						PreloadSegments:          16,
						SegPages:                 16,
						InsertTxns:               200,
						HistoricalSegmentUpdates: segs,
					})
					if err != nil {
						b.Fatal(err)
					}
					total += res.RecoveryTime.Seconds() * 1000
				}
				b.ReportMetric(total/float64(b.N), "recovery-ms")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkFig66_PhaseDecomposition reports HARBOR recovery broken into its
// constituent phases.
func BenchmarkFig66_PhaseDecomposition(b *testing.B) {
	for _, segs := range []int{0, 8} {
		b.Run(fmt.Sprintf("histsegs=%d", segs), func(b *testing.B) {
			var p1, p2u, p2i, p3 float64
			for i := 0; i < b.N; i++ {
				res, err := sim.RunRecoveryBench(b.TempDir(), sim.RecoveryParams{
					Scenario:                 sim.Harbor1Table,
					PreloadSegments:          16,
					SegPages:                 16,
					InsertTxns:               200,
					HistoricalSegmentUpdates: segs,
				})
				if err != nil {
					b.Fatal(err)
				}
				p1 += res.Phase1.Seconds() * 1000
				p2u += res.Phase2Update.Seconds() * 1000
				p2i += res.Phase2Insert.Seconds() * 1000
				p3 += res.Phase3.Seconds() * 1000
			}
			n := float64(b.N)
			b.ReportMetric(p1/n, "phase1-ms")
			b.ReportMetric(p2u/n, "phase2upd-ms")
			b.ReportMetric(p2i/n, "phase2ins-ms")
			b.ReportMetric(p3/n, "phase3-ms")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkFig67_FailureTimeline runs the §6.5 experiment once per
// iteration and reports steady-state vs during-recovery throughput.
func BenchmarkFig67_FailureTimeline(b *testing.B) {
	var steady, degraded float64
	for i := 0; i < b.N; i++ {
		samples, err := sim.RunFailoverTimeline(b.TempDir(), sim.TimelineParams{})
		if err != nil {
			b.Fatal(err)
		}
		var preCrash, during float64
		var nPre, nDuring int
		phase := "steady"
		for _, s := range samples {
			switch s.Event {
			case "crash":
				phase = "down"
			case "recovery-start":
				phase = "recovering"
			case "online":
				phase = "steady"
			}
			switch phase {
			case "steady":
				preCrash += s.TPS
				nPre++
			case "recovering":
				during += s.TPS
				nDuring++
			}
		}
		if nPre > 0 {
			steady += preCrash / float64(nPre)
		}
		if nDuring > 0 {
			degraded += during / float64(nDuring)
		}
	}
	b.ReportMetric(steady/float64(b.N), "steady-tps")
	b.ReportMetric(degraded/float64(b.N), "recovering-tps")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkEndToEndInsert measures the full client→coordinator→replicas
// path for a single committed insert (latency baseline, tuple in Figure
// 6-2's no-concurrency point).
func BenchmarkEndToEndInsert(b *testing.B) {
	desc := sim.BenchDesc()
	for _, cfg := range []struct {
		name     string
		protocol txn.Protocol
		mode     worker.RecoveryMode
	}{
		{"optimized-3PC", txn.OptThreePC, worker.HARBOR},
		{"traditional-2PC", txn.TwoPC, worker.ARIES},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			cl, err := testutil.NewCluster(testutil.ClusterConfig{
				Workers: 2, Protocol: cfg.protocol, Mode: cfg.mode,
				GroupCommit: true, BaseDir: b.TempDir(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			if err := cl.CreateReplicatedTable(1, desc, 256); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := cl.Coord.Begin()
				if err := tx.Insert(1, sim.BenchTuple(desc, int64(i))); err != nil {
					b.Fatal(err)
				}
				if _, err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSegmentPruning quantifies the §4.2 segment
// architecture: the same HARBOR recovery with and without segment-
// timestamp pruning on every recovery scan. Without pruning, Phase 1 and
// the buddy-side scans touch every segment of the preloaded table.
func BenchmarkAblationSegmentPruning(b *testing.B) {
	for _, noPrune := range []bool{false, true} {
		name := "pruned"
		if noPrune {
			name = "unpruned"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				res, err := sim.RunRecoveryBench(b.TempDir(), sim.RecoveryParams{
					Scenario:        sim.Harbor1Table,
					PreloadSegments: 24,
					SegPages:        16,
					InsertTxns:      100,
					DisablePruning:  noPrune,
				})
				if err != nil {
					b.Fatal(err)
				}
				total += res.RecoveryTime.Seconds() * 1000
			}
			b.ReportMetric(total/float64(b.N), "recovery-ms")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkAblationGroupCommit isolates the group-commit mechanism at one
// concurrency level (the Figure 6-2 vertical slice at concurrency 10).
func BenchmarkAblationGroupCommit(b *testing.B) {
	for _, gc := range []bool{true, false} {
		name := "group-commit"
		if !gc {
			name = "serial-fsync"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sim.ProtoConfig{
				Name: name, Protocol: txn.TwoPC, Mode: worker.ARIES,
				GroupCommit: gc, Workers: 2,
			}
			var total float64
			for i := 0; i < b.N; i++ {
				res, err := sim.RunCommitBench(b.TempDir(), cfg, 10, 15, 0)
				if err != nil {
					b.Fatal(err)
				}
				total += res.TPS
			}
			b.ReportMetric(total/float64(b.N), "tps")
			b.ReportMetric(0, "ns/op")
		})
	}
}
