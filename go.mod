module harbor

go 1.22
