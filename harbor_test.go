package harbor_test

import (
	"math"
	"testing"
	"time"

	"harbor"
)

func startCluster(t *testing.T, opts harbor.Options) *harbor.Cluster {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	c, err := harbor.Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

var productSchema = harbor.MustSchema("id",
	harbor.Int64Field("id"),
	harbor.CharField("name", 16),
	harbor.Int32Field("price"),
)

func TestPublicAPIRoundTrip(t *testing.T) {
	c := startCluster(t, harbor.Options{Workers: 2})
	if err := c.CreateTable(1, productSchema); err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	if err := tx.Insert(1, harbor.Row(productSchema, harbor.Int(1), harbor.Str("Colgate"), harbor.Int(3))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(1, harbor.Row(productSchema, harbor.Int(2), harbor.Str("iPod"), harbor.Int(299))); err != nil {
		t.Fatal(err)
	}
	ts, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ts == 0 {
		t.Fatal("no commit time")
	}
	rows, err := c.Query(1, harbor.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Predicate query.
	rows, err = c.Query(1, harbor.Query{
		Where: harbor.Where(productSchema, "price", harbor.GE, harbor.Int(100)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Values[productSchema.FieldIndex("name")].Str != "iPod" {
		t.Fatalf("filtered rows: %v", rows)
	}
}

func TestPublicAPITimeTravel(t *testing.T) {
	c := startCluster(t, harbor.Options{Workers: 2})
	if err := c.CreateTable(1, productSchema); err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	if err := tx.Insert(1, harbor.Row(productSchema, harbor.Int(1), harbor.Str("Colgate"), harbor.Int(3))); err != nil {
		t.Fatal(err)
	}
	ts1, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	tx2 := c.Begin()
	if err := tx2.DeleteKey(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	now, err := c.Query(1, harbor.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(now) != 0 {
		t.Fatalf("current rows = %d", len(now))
	}
	old, err := c.Query(1, harbor.Query{AsOf: ts1})
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 1 {
		t.Fatalf("historical rows = %d", len(old))
	}
	if c.Now() == 0 {
		t.Fatal("HWM never advanced")
	}
}

func TestPublicAPICrashAndRecover(t *testing.T) {
	c := startCluster(t, harbor.Options{Workers: 2, CheckpointEvery: time.Hour})
	if err := c.CreateTable(1, productSchema); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		tx := c.Begin()
		if err := tx.Insert(1, harbor.Row(productSchema, harbor.Int(i), harbor.Str("x"), harbor.Int(1))); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashWorker(0)
	// Still writable with one worker down.
	tx := c.Begin()
	if err := tx.Insert(1, harbor.Row(productSchema, harbor.Int(21), harbor.Str("y"), harbor.Int(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecoverWorker(0); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(1, harbor.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 {
		t.Fatalf("rows after recovery = %d", len(rows))
	}
	if _, err := c.RecoverWorker(0); err == nil {
		t.Fatal("recovering a live worker should fail")
	}
}

func TestPublicAPIPartitionedTable(t *testing.T) {
	c := startCluster(t, harbor.Options{Workers: 3})
	// Full copy on worker 0; halves on workers 1 and 2 (the §5.1 example
	// shape). Different segment sizes prove non-identical replicas work.
	err := c.CreateTableOn(1, productSchema,
		harbor.Replica{Worker: 0, SegPages: 128},
		harbor.Replica{Worker: 1, KeyLo: math.MinInt64, KeyHi: 1000, SegPages: 64},
		harbor.Replica{Worker: 2, KeyLo: 1000, KeyHi: math.MaxInt64, SegPages: 32},
	)
	if err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	for _, id := range []int64{5, 999, 1000, 5000} {
		if err := tx.Insert(1, harbor.Row(productSchema, harbor.Int(id), harbor.Str("p"), harbor.Int(1))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(1, harbor.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Crash the full copy; the partitioned replicas must cover reads.
	c.CrashWorker(0)
	rows, err = c.Query(1, harbor.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows with full copy down = %d", len(rows))
	}
	// Recover the full copy from the two partitioned buddies.
	stats, err := c.RecoverWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Objects) != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestPublicAPIUpdate(t *testing.T) {
	c := startCluster(t, harbor.Options{Workers: 2})
	if err := c.CreateTable(1, productSchema); err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	if err := tx.Insert(1, harbor.Row(productSchema, harbor.Int(4), harbor.Str("Elliss"), harbor.Int(20))); err != nil {
		t.Fatal(err)
	}
	before, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 3-1 story: correct a misspelling with an update.
	tx2 := c.Begin()
	if err := tx2.UpdateKey(1, 4, harbor.Row(productSchema, harbor.Int(4), harbor.Str("Ellis"), harbor.Int(20))); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	cur, err := c.Query(1, harbor.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if cur[0].Values[productSchema.FieldIndex("name")].Str != "Ellis" {
		t.Fatalf("update lost: %v", cur)
	}
	old, err := c.Query(1, harbor.Query{AsOf: before})
	if err != nil {
		t.Fatal(err)
	}
	if old[0].Values[productSchema.FieldIndex("name")].Str != "Elliss" {
		t.Fatalf("history lost: %v", old)
	}
}

func TestPublicAPIBulkLoadAndDrop(t *testing.T) {
	c := startCluster(t, harbor.Options{Workers: 2, SegPages: 8})
	if err := c.CreateTable(1, productSchema); err != nil {
		t.Fatal(err)
	}
	batch := func(base int64, n int) []harbor.Tuple {
		out := make([]harbor.Tuple, n)
		for i := range out {
			out[i] = harbor.Row(productSchema,
				harbor.Int(base+int64(i)), harbor.Str("bulk"), harbor.Int(1))
		}
		return out
	}
	ts1, err := c.BulkLoad(1, batch(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.BulkLoad(1, batch(1000, 100)); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(1, harbor.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 200 {
		t.Fatalf("rows after bulk loads = %d", len(rows))
	}
	// Bulk loads coexist with transactional inserts and time travel.
	tx := c.Begin()
	if err := tx.Insert(1, harbor.Row(productSchema, harbor.Int(5000), harbor.Str("txn"), harbor.Int(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	old, err := c.Query(1, harbor.Query{AsOf: ts1})
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 100 {
		t.Fatalf("historical rows at first bulk load = %d", len(old))
	}
	// Drop the oldest segment: the first batch disappears atomically.
	if err := c.DropOldestSegment(1); err != nil {
		t.Fatal(err)
	}
	rows, err = c.Query(1, harbor.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 101 {
		t.Fatalf("rows after drop = %d, want 101", len(rows))
	}
	// The second bulk segment (plus the page the transactional insert
	// appended to it) remains.
	if n, err := c.SegmentCount(0, 1); err != nil || n < 1 {
		t.Fatalf("segment count = %d, %v", n, err)
	}
}

func TestPublicAPIBulkLoadedDataRecovers(t *testing.T) {
	c := startCluster(t, harbor.Options{Workers: 2, SegPages: 8, CheckpointEvery: time.Hour})
	if err := c.CreateTable(1, productSchema); err != nil {
		t.Fatal(err)
	}
	rows := make([]harbor.Tuple, 50)
	for i := range rows {
		rows[i] = harbor.Row(productSchema, harbor.Int(int64(i)), harbor.Str("b"), harbor.Int(1))
	}
	if _, err := c.BulkLoad(1, rows); err != nil {
		t.Fatal(err)
	}
	c.CrashWorker(0)
	// A post-crash transactional insert, then recovery.
	tx := c.Begin()
	if err := tx.Insert(1, harbor.Row(productSchema, harbor.Int(999), harbor.Str("t"), harbor.Int(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecoverWorker(0); err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(1, harbor.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 51 {
		t.Fatalf("rows after recovery = %d, want 51", len(got))
	}
}

func TestPublicAPIVacuumRetention(t *testing.T) {
	c := startCluster(t, harbor.Options{Workers: 2})
	if err := c.CreateTable(1, productSchema); err != nil {
		t.Fatal(err)
	}
	// Insert 10, delete 5 over distinct commits.
	for i := int64(1); i <= 10; i++ {
		tx := c.Begin()
		if err := tx.Insert(1, harbor.Row(productSchema, harbor.Int(i), harbor.Str("x"), harbor.Int(1))); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	var delTimes []harbor.Timestamp
	for i := int64(1); i <= 5; i++ {
		tx := c.Begin()
		if err := tx.DeleteKey(1, i); err != nil {
			t.Fatal(err)
		}
		ts, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		delTimes = append(delTimes, ts)
	}
	// Retain only the last 2 time units: versions deleted earlier purge.
	n, err := c.Vacuum(2)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("vacuum purged nothing")
	}
	// Current reads unchanged.
	rows, err := c.Query(1, harbor.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("current rows = %d", len(rows))
	}
	// Time travel within retention still exact: just before the last
	// delete, exactly one deleted-later key is visible.
	rows, err = c.Query(1, harbor.Query{AsOf: delTimes[4] - 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows within retention window = %d, want 6", len(rows))
	}
}
