package retry

import (
	"testing"
	"time"
)

func TestZeroValueIsNoOp(t *testing.T) {
	var b Backoff
	for i := 0; i < 5; i++ {
		if d := b.Duration(i); d != 0 {
			t.Fatalf("attempt %d: zero-value backoff slept %v", i, d)
		}
	}
}

func TestExponentialGrowthAndCap(t *testing.T) {
	b := Seeded(10*time.Millisecond, 80*time.Millisecond, 1)
	prevMax := time.Duration(0)
	for i := 0; i < 8; i++ {
		// Uncapped ideal: 10ms << i; jitter keeps it in [ideal/2, ideal).
		ideal := 10 * time.Millisecond << i
		if ideal > 80*time.Millisecond {
			ideal = 80 * time.Millisecond
		}
		d := b.Duration(i)
		if d < ideal/2 || d >= ideal {
			t.Fatalf("attempt %d: duration %v outside [%v, %v)", i, d, ideal/2, ideal)
		}
		if d > 80*time.Millisecond {
			t.Fatalf("attempt %d: duration %v exceeds cap", i, d)
		}
		_ = prevMax
	}
}

func TestSeededDeterminism(t *testing.T) {
	a := Seeded(5*time.Millisecond, 50*time.Millisecond, 42)
	b := Seeded(5*time.Millisecond, 50*time.Millisecond, 42)
	for i := 0; i < 10; i++ {
		if da, db := a.Duration(i), b.Duration(i); da != db {
			t.Fatalf("attempt %d: same seed gave %v vs %v", i, da, db)
		}
	}
}
