// Package retry provides capped, jittered exponential backoff for the
// transient-failure retry loops: the §5.5.2 recovery replan-retry (a buddy
// died mid-copy; the plan is recomputed against whoever is still alive) and
// the comm borrow-path fresh-dial retry. Without backoff a flapping buddy
// turns either loop into a hot spin — each retry dials, fails, and retries
// within microseconds, hammering both the network and the failing peer.
package retry

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes per-attempt sleep durations: Base doubling per attempt,
// capped at Max, with the final duration drawn uniformly from
// [d/2, d) (full jitter halves synchronized retry herds). The zero value is
// a no-op (Sleep returns immediately), so callers can make backoff strictly
// opt-in.
type Backoff struct {
	Base time.Duration // first-attempt sleep (0 disables backoff entirely)
	Max  time.Duration // cap on the exponential growth (0 = uncapped)

	mu  sync.Mutex
	rng *rand.Rand // optional deterministic source; nil uses the global rng
}

// Seeded returns a Backoff with a private deterministic jitter stream, for
// tests and the chaos harness (same seed ⇒ same sleep schedule).
func Seeded(base, max time.Duration, seed int64) *Backoff {
	return &Backoff{Base: base, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// Duration returns the sleep for the given zero-based attempt number.
func (b *Backoff) Duration(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	d := b.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	// Full jitter over the upper half: uniform in [d/2, d).
	half := d / 2
	if half <= 0 {
		return d
	}
	b.mu.Lock()
	var f float64
	if b.rng != nil {
		f = b.rng.Float64()
	} else {
		f = rand.Float64()
	}
	b.mu.Unlock()
	return half + time.Duration(f*float64(half))
}

// Sleep blocks for Duration(attempt). Attempt 0 is the first retry.
func (b *Backoff) Sleep(attempt int) {
	if d := b.Duration(attempt); d > 0 {
		time.Sleep(d)
	}
}
