// Package buffer implements each site's buffer pool (§6.1.3 of the thesis):
// a fixed number of page frames with per-frame latches, a dirty-pages table
// (required by the Figure 3-2 checkpointing algorithm), a STEAL/NO-FORCE
// default paging policy with the other policies also available, and random
// eviction under saturation.
//
// Locking versus latching: transactional page locks live in the lock
// manager and are acquired by GetPage exactly as the thesis API does
// ("prior to returning a page ... the buffer pool calls hasAccess ... and
// if not, acquires one with acquireLock"). Frame latches are short-term
// sync.RWMutex-es protecting physical page consistency during reads,
// modifications, and flushes.
//
// Flush ordering rules are delegated to the Store's BeforeFlush hook, which
// the worker wires to (a) the WAL rule (force log up to pageLSN before the
// page goes out) in ARIES mode and (b) the segment stats-ahead rule of the
// storage layer in all modes.
package buffer

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"harbor/internal/lockmgr"
	"harbor/internal/obs"
	"harbor/internal/page"
	"harbor/internal/wal"
)

// Perm is the access permission requested for a page.
type Perm uint8

const (
	// ReadPerm requests shared access.
	ReadPerm Perm = iota + 1
	// WritePerm requests exclusive access.
	WritePerm
)

// Policy selects the paging policy (Gray & Reuter taxonomy, §6.1.3: the
// implementation "enforces a STEAL/NO-FORCE paging policy (though other
// paging policies have also been implemented)").
type Policy uint8

const (
	// StealNoForce allows dirty uncommitted pages to be written out and does
	// not force pages at commit (default; requires WAL in ARIES mode and the
	// uncommitted-timestamp convention in HARBOR mode).
	StealNoForce Policy = iota
	// NoStealNoForce never evicts a dirty page.
	NoStealNoForce
	// StealForce steals and also forces a transaction's pages at commit
	// (the force part is driven by the versioning layer calling FlushPages).
	StealForce
	// NoStealForce neither steals nor avoids commit-time forcing.
	NoStealForce
)

// Steal reports whether the policy permits evicting dirty pages.
func (p Policy) Steal() bool { return p == StealNoForce || p == StealForce }

// Force reports whether the policy forces pages at commit.
func (p Policy) Force() bool { return p == StealForce || p == NoStealForce }

// Store abstracts the storage layer below the pool.
type Store interface {
	// ReadPage returns the 4 KB image of a page.
	ReadPage(pid page.ID) ([]byte, error)
	// WritePage writes a page image (no sync).
	WritePage(pid page.ID, data []byte) error
	// TupleWidth returns the slot width for a table.
	TupleWidth(table int32) (int, error)
	// BeforeFlush runs write-ordering rules before a dirty page goes out.
	BeforeFlush(pid page.ID, pageLSN page.LSN) error
}

// Frame is a pooled page with its latch and bookkeeping.
type Frame struct {
	// Latch guards the page image. Take it in Read mode to scan, Write mode
	// to modify; Unpin releases pins, not the latch.
	Latch sync.RWMutex

	Page *page.Page

	mu     sync.Mutex // guards the fields below
	pins   int
	dirty  bool
	recLSN page.LSN // LSN that first dirtied the page (ARIES DPT)
}

// Dirty reports whether the frame holds unflushed changes.
func (f *Frame) Dirty() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dirty
}

// RecLSN returns the frame's recovery LSN (0 in HARBOR mode).
func (f *Frame) RecLSN() page.LSN {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.recLSN
}

// ErrPoolSaturated is returned when every frame is pinned or (under a
// no-steal policy) dirty, so nothing can be evicted.
var ErrPoolSaturated = errors.New("buffer: pool saturated (all frames pinned or unstealable)")

// Pool is one site's buffer pool.
type Pool struct {
	store  Store
	locks  *lockmgr.Manager
	policy Policy

	mu       sync.Mutex
	frames   map[page.ID]*Frame
	capacity int
	rng      *rand.Rand

	// Registry-backed counters (buffer.hits, buffer.misses,
	// buffer.evictions, buffer.flushes); rebindable via Instrument.
	hits, misses, evictions, flushes *obs.Counter
}

// New creates a pool of the given capacity (frames). locks may be nil for
// recovery-internal pools; then GetPage's lock acquisition is skipped and
// callers rely on table-level locks they already hold.
func New(store Store, locks *lockmgr.Manager, capacity int, policy Policy) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	bp := &Pool{
		store:    store,
		locks:    locks,
		policy:   policy,
		frames:   make(map[page.ID]*Frame, capacity),
		capacity: capacity,
		rng:      rand.New(rand.NewSource(0x9E3779B9)),
	}
	bp.Instrument(obs.NewRegistry())
	return bp
}

// Instrument rebinds the pool's counters to reg (call before concurrent
// use); the owning Site passes its registry so buffer.* metrics appear in
// its /debug/harbor snapshot.
func (bp *Pool) Instrument(reg *obs.Registry) {
	bp.hits = reg.Counter("buffer.hits")
	bp.misses = reg.Counter("buffer.misses")
	bp.evictions = reg.Counter("buffer.evictions")
	bp.flushes = reg.Counter("buffer.flushes")
}

// Policy returns the pool's paging policy.
func (bp *Pool) Policy() Policy { return bp.policy }

// GetPage returns the frame for pid with the requested transactional
// permission, acquiring the page lock through the lock manager first (the
// thesis's getPage). The frame is pinned; callers must Unpin it. The caller
// is responsible for taking the frame latch around actual page access.
func (bp *Pool) GetPage(tid lockmgr.TxnID, pid page.ID, perm Perm) (*Frame, error) {
	if bp.locks != nil {
		mode := lockmgr.S
		if perm == WritePerm {
			mode = lockmgr.X
		}
		target := lockmgr.PageTarget(pid.Table, pid.PageNo)
		if !bp.locks.Has(tid, target, mode) {
			if err := bp.locks.Acquire(tid, target, mode); err != nil {
				return nil, err
			}
		}
	}
	return bp.GetPageNoLock(pid)
}

// GetPageNoLock fetches and pins a frame without consulting the lock
// manager. Recovery queries, which are serialised by table-level locks or
// run lock-free in historical mode (§5.3), use this path.
func (bp *Pool) GetPageNoLock(pid page.ID) (*Frame, error) {
	bp.mu.Lock()
	if f, ok := bp.frames[pid]; ok {
		f.mu.Lock()
		f.pins++
		f.mu.Unlock()
		bp.hits.Inc()
		bp.mu.Unlock()
		return f, nil
	}
	bp.misses.Inc()
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictLocked(); err != nil {
			bp.mu.Unlock()
			return nil, err
		}
	}
	// Reserve the slot with a pinned placeholder while doing IO outside the
	// pool mutex.
	f := &Frame{pins: 1}
	f.Latch.Lock()
	bp.frames[pid] = f
	bp.mu.Unlock()

	img, err := bp.store.ReadPage(pid)
	if err == nil {
		var width int
		width, err = bp.store.TupleWidth(pid.Table)
		if err == nil {
			f.Page, err = page.FromBytes(pid, img, width)
		}
	}
	if err != nil {
		f.Latch.Unlock()
		bp.mu.Lock()
		delete(bp.frames, pid)
		bp.mu.Unlock()
		return nil, err
	}
	f.Latch.Unlock()
	return f, nil
}

// Unpin releases a pin. If markDirty, the frame is marked dirty with the
// given LSN as a candidate recLSN (0 in HARBOR mode).
func (bp *Pool) Unpin(f *Frame, markDirty bool, lsn page.LSN) {
	f.mu.Lock()
	if markDirty {
		if !f.dirty {
			f.dirty = true
			f.recLSN = lsn
		}
	}
	if f.pins > 0 {
		f.pins--
	}
	f.mu.Unlock()
}

// evictLocked removes one unpinned frame, flushing it first if dirty and
// the policy permits stealing. Called with bp.mu held.
func (bp *Pool) evictLocked() error {
	// Collect candidates.
	var clean, dirty []page.ID
	for pid, f := range bp.frames {
		f.mu.Lock()
		if f.pins == 0 {
			if f.dirty {
				dirty = append(dirty, pid)
			} else {
				clean = append(clean, pid)
			}
		}
		f.mu.Unlock()
	}
	pick := func(c []page.ID) page.ID { return c[bp.rng.Intn(len(c))] }
	var victimID page.ID
	switch {
	case len(clean) > 0:
		victimID = pick(clean)
	case len(dirty) > 0 && bp.policy.Steal():
		victimID = pick(dirty)
	default:
		return fmt.Errorf("%w: %d frames", ErrPoolSaturated, len(bp.frames))
	}
	victim := bp.frames[victimID]
	// Flush outside bp.mu would be nicer, but eviction is rare and the
	// latch ordering (frame latch under pool mutex, never the reverse on
	// this path) is deadlock-free because flush paths that hold latches do
	// not take the pool mutex.
	victim.Latch.Lock()
	defer victim.Latch.Unlock()
	victim.mu.Lock()
	isDirty := victim.dirty
	lsn := page.LSN(0)
	if victim.Page != nil {
		lsn = victim.Page.LSN()
	}
	pinned := victim.pins > 0
	victim.mu.Unlock()
	if pinned {
		return fmt.Errorf("%w: victim re-pinned", ErrPoolSaturated)
	}
	if isDirty {
		if err := bp.store.BeforeFlush(victimID, lsn); err != nil {
			return err
		}
		if err := bp.store.WritePage(victimID, victim.Page.Bytes()); err != nil {
			return err
		}
		bp.flushes.Inc()
	}
	bp.evictions.Inc()
	delete(bp.frames, victimID)
	return nil
}

// DirtyPages returns a snapshot of the dirty-pages table (§3.4: "the buffer
// pool maintains a standard dirty pages table").
func (bp *Pool) DirtyPages() []wal.DirtyPage {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var out []wal.DirtyPage
	for pid, f := range bp.frames {
		f.mu.Lock()
		if f.dirty {
			out = append(out, wal.DirtyPage{Page: pid, RecLSN: f.recLSN})
		}
		f.mu.Unlock()
	}
	return out
}

// FlushPage write-latches one page, flushes it if dirty, and clears the
// dirty bit (one step of the Figure 3-2 checkpoint loop).
func (bp *Pool) FlushPage(pid page.ID) error {
	bp.mu.Lock()
	f, ok := bp.frames[pid]
	bp.mu.Unlock()
	if !ok {
		return nil // already evicted (and thus flushed)
	}
	f.Latch.Lock()
	defer f.Latch.Unlock()
	f.mu.Lock()
	isDirty := f.dirty
	var lsn page.LSN
	if f.Page != nil {
		lsn = f.Page.LSN()
	}
	f.mu.Unlock()
	if !isDirty {
		return nil
	}
	if err := bp.store.BeforeFlush(pid, lsn); err != nil {
		return err
	}
	if err := bp.store.WritePage(pid, f.Page.Bytes()); err != nil {
		return err
	}
	f.mu.Lock()
	f.dirty = false
	f.recLSN = 0
	f.mu.Unlock()
	bp.mu.Lock()
	bp.flushes.Inc()
	bp.mu.Unlock()
	return nil
}

// FlushPages flushes a specific set of pages (FORCE-policy commit path).
func (bp *Pool) FlushPages(pids []page.ID) error {
	for _, pid := range pids {
		if err := bp.FlushPage(pid); err != nil {
			return err
		}
	}
	return nil
}

// FlushAll implements the Figure 3-2 checkpoint body: snapshot the dirty
// pages table, then latch-flush-unlatch each page.
func (bp *Pool) FlushAll() error {
	for _, dp := range bp.DirtyPages() {
		if err := bp.FlushPage(dp.Page); err != nil {
			return err
		}
	}
	return nil
}

// Discard drops one frame without flushing, if present and unpinned.
// Callers use it when a page has been released back to the heap's free
// list: the on-disk image is already durable (and empty), so the resident
// frame is pure waste. A pinned frame is left alone — its contents match
// the empty on-disk image, so a straggling reader sees nothing stale.
func (bp *Pool) Discard(pid page.ID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[pid]
	if !ok {
		return true
	}
	f.mu.Lock()
	pinned := f.pins > 0
	f.mu.Unlock()
	if pinned {
		return false
	}
	delete(bp.frames, pid)
	return true
}

// DiscardAll drops every frame without flushing — the crash hook.
func (bp *Pool) DiscardAll() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.frames = make(map[page.ID]*Frame, bp.capacity)
}

// Stats returns (hits, misses, evictions, flushes) — a compatibility shim
// over the registry-backed counters.
func (bp *Pool) Stats() (hits, misses, evictions, flushes int64) {
	return bp.hits.Load(), bp.misses.Load(), bp.evictions.Load(), bp.flushes.Load()
}

// NumFrames returns the number of resident frames.
func (bp *Pool) NumFrames() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
