package buffer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"harbor/internal/lockmgr"
	"harbor/internal/page"
)

// memStore is an in-memory Store for tests.
type memStore struct {
	mu          sync.Mutex
	pages       map[page.ID][]byte
	width       int
	beforeFlush []page.ID // record of BeforeFlush calls
	failFlush   bool
}

func newMemStore(width, nPages int, table int32) *memStore {
	s := &memStore{pages: map[page.ID][]byte{}, width: width}
	for i := 0; i < nPages; i++ {
		p := page.New(page.ID{Table: table, PageNo: int32(i)}, width)
		s.pages[p.ID()] = p.Bytes()
	}
	return s
}

func (s *memStore) ReadPage(pid page.ID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	img, ok := s.pages[pid]
	if !ok {
		return nil, errors.New("no such page")
	}
	out := make([]byte, len(img))
	copy(out, img)
	return out, nil
}

func (s *memStore) WritePage(pid page.ID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failFlush {
		return errors.New("flush failure injected")
	}
	out := make([]byte, len(data))
	copy(out, data)
	s.pages[pid] = out
	return nil
}

func (s *memStore) TupleWidth(table int32) (int, error) { return s.width, nil }

func (s *memStore) BeforeFlush(pid page.ID, lsn page.LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beforeFlush = append(s.beforeFlush, pid)
	return nil
}

func pid(n int32) page.ID { return page.ID{Table: 1, PageNo: n} }

func TestGetPageCachesAndPins(t *testing.T) {
	st := newMemStore(64, 4, 1)
	bp := New(st, nil, 4, StealNoForce)
	f, err := bp.GetPageNoLock(pid(0))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := bp.GetPageNoLock(pid(0))
	if err != nil {
		t.Fatal(err)
	}
	if f != f2 {
		t.Fatal("same page produced two frames")
	}
	hits, misses, _, _ := bp.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	bp.Unpin(f, false, 0)
	bp.Unpin(f2, false, 0)
}

func TestEvictionPrefersClean(t *testing.T) {
	st := newMemStore(64, 4, 1)
	bp := New(st, nil, 2, StealNoForce)
	fa, _ := bp.GetPageNoLock(pid(0))
	// Dirty page 0.
	fa.Latch.Lock()
	if _, err := fa.Page.Insert(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	fa.Latch.Unlock()
	bp.Unpin(fa, true, 0)
	fb, _ := bp.GetPageNoLock(pid(1))
	bp.Unpin(fb, false, 0)
	// Pool full; next fetch must evict the clean page 1, not flush page 0.
	fc, err := bp.GetPageNoLock(pid(2))
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(fc, false, 0)
	_, _, evictions, flushes := bp.Stats()
	if evictions != 1 || flushes != 0 {
		t.Fatalf("evictions=%d flushes=%d; expected clean eviction", evictions, flushes)
	}
	if len(bp.DirtyPages()) != 1 {
		t.Fatal("dirty page disappeared")
	}
}

func TestStealFlushesDirtyVictim(t *testing.T) {
	st := newMemStore(64, 4, 1)
	bp := New(st, nil, 1, StealNoForce)
	fa, _ := bp.GetPageNoLock(pid(0))
	fa.Latch.Lock()
	if _, err := fa.Page.Insert(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	fa.Latch.Unlock()
	bp.Unpin(fa, true, 77)
	// Fetching another page forces a steal of the dirty page.
	fb, err := bp.GetPageNoLock(pid(1))
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(fb, false, 0)
	_, _, _, flushes := bp.Stats()
	if flushes != 1 {
		t.Fatalf("flushes=%d, expected stolen flush", flushes)
	}
	if len(st.beforeFlush) != 1 || st.beforeFlush[0] != pid(0) {
		t.Fatalf("BeforeFlush hook calls: %v", st.beforeFlush)
	}
	// The stolen page's content survived.
	img, _ := st.ReadPage(pid(0))
	p, err := page.FromBytes(pid(0), img, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumUsed() != 1 {
		t.Fatal("stolen page lost its tuple")
	}
}

func TestNoStealRefusesDirtyEviction(t *testing.T) {
	st := newMemStore(64, 4, 1)
	bp := New(st, nil, 1, NoStealNoForce)
	fa, _ := bp.GetPageNoLock(pid(0))
	bp.Unpin(fa, true, 0)
	if _, err := bp.GetPageNoLock(pid(1)); !errors.Is(err, ErrPoolSaturated) {
		t.Fatalf("expected saturation under no-steal, got %v", err)
	}
}

func TestSaturationWhenAllPinned(t *testing.T) {
	st := newMemStore(64, 4, 1)
	bp := New(st, nil, 1, StealNoForce)
	f, _ := bp.GetPageNoLock(pid(0)) // pinned
	if _, err := bp.GetPageNoLock(pid(1)); !errors.Is(err, ErrPoolSaturated) {
		t.Fatalf("expected saturation, got %v", err)
	}
	bp.Unpin(f, false, 0)
	if _, err := bp.GetPageNoLock(pid(1)); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestDirtyPagesTableAndRecLSN(t *testing.T) {
	st := newMemStore(64, 4, 1)
	bp := New(st, nil, 4, StealNoForce)
	f, _ := bp.GetPageNoLock(pid(2))
	bp.Unpin(f, true, 123)
	// A second dirtying must not overwrite the original recLSN.
	f2, _ := bp.GetPageNoLock(pid(2))
	bp.Unpin(f2, true, 456)
	dps := bp.DirtyPages()
	if len(dps) != 1 || dps[0].Page != pid(2) || dps[0].RecLSN != 123 {
		t.Fatalf("dirty pages table: %+v", dps)
	}
	if !f.Dirty() || f.RecLSN() != 123 {
		t.Fatal("frame accessors disagree")
	}
}

func TestFlushAllClearsDirty(t *testing.T) {
	st := newMemStore(64, 8, 1)
	bp := New(st, nil, 8, StealNoForce)
	for i := int32(0); i < 4; i++ {
		f, _ := bp.GetPageNoLock(pid(i))
		f.Latch.Lock()
		if _, err := f.Page.Insert(make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		f.Latch.Unlock()
		bp.Unpin(f, true, page.LSN(i+1))
	}
	if len(bp.DirtyPages()) != 4 {
		t.Fatal("setup failed")
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if len(bp.DirtyPages()) != 0 {
		t.Fatal("dirty table not empty after FlushAll")
	}
	// Everything reached the store.
	for i := int32(0); i < 4; i++ {
		img, _ := st.ReadPage(pid(i))
		p, err := page.FromBytes(pid(i), img, 64)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumUsed() != 1 {
			t.Fatalf("page %d content lost", i)
		}
	}
}

func TestFlushPageOnEvictedPageIsNoop(t *testing.T) {
	st := newMemStore(64, 4, 1)
	bp := New(st, nil, 4, StealNoForce)
	if err := bp.FlushPage(pid(3)); err != nil {
		t.Fatal(err)
	}
}

func TestDiscardAllLosesUnflushedChanges(t *testing.T) {
	st := newMemStore(64, 4, 1)
	bp := New(st, nil, 4, StealNoForce)
	f, _ := bp.GetPageNoLock(pid(0))
	f.Latch.Lock()
	if _, err := f.Page.Insert(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Latch.Unlock()
	bp.Unpin(f, true, 0)
	bp.DiscardAll() // crash
	if bp.NumFrames() != 0 {
		t.Fatal("frames survived discard")
	}
	img, _ := st.ReadPage(pid(0))
	p, err := page.FromBytes(pid(0), img, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumUsed() != 0 {
		t.Fatal("unflushed change reached disk despite crash")
	}
}

func TestGetPageAcquiresLocks(t *testing.T) {
	st := newMemStore(64, 4, 1)
	locks := lockmgr.New(60 * time.Millisecond)
	bp := New(st, locks, 4, StealNoForce)
	f, err := bp.GetPage(1, pid(0), WritePerm)
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f, false, 0)
	if !locks.Has(1, lockmgr.PageTarget(1, 0), lockmgr.X) {
		t.Fatal("write perm did not take X lock")
	}
	// Another txn's read of the same page must block until release.
	if _, err := bp.GetPage(2, pid(0), ReadPerm); !errors.Is(err, lockmgr.ErrLockTimeout) {
		t.Fatalf("expected lock timeout, got %v", err)
	}
	locks.ReleaseAll(1)
	f2, err := bp.GetPage(2, pid(0), ReadPerm)
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f2, false, 0)
	locks.ReleaseAll(2)
}

func TestConcurrentReaders(t *testing.T) {
	st := newMemStore(64, 8, 1)
	bp := New(st, nil, 8, StealNoForce)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f, err := bp.GetPageNoLock(pid(int32(i % 8)))
				if err != nil {
					t.Error(err)
					return
				}
				f.Latch.RLock()
				_ = f.Page.NumUsed()
				f.Latch.RUnlock()
				bp.Unpin(f, false, 0)
			}
		}(g)
	}
	wg.Wait()
}

func TestFlushErrorPropagates(t *testing.T) {
	st := newMemStore(64, 4, 1)
	bp := New(st, nil, 4, StealNoForce)
	f, _ := bp.GetPageNoLock(pid(0))
	bp.Unpin(f, true, 0)
	st.mu.Lock()
	st.failFlush = true
	st.mu.Unlock()
	if err := bp.FlushAll(); err == nil {
		t.Fatal("flush error swallowed")
	}
}
