// Package lockmgr implements each site's lock manager (§6.1.2 of the
// thesis): strict two-phase locking at page granularity for normal
// transaction processing, plus table-granularity locks so that a recovering
// site can hold read locks over entire recovery objects during Phase 3
// (§5.4.1).
//
// Because a table-level shared lock must conflict with concurrent page-level
// exclusive locks inside the same table, the manager is hierarchical:
// transactions implicitly take intention locks (IS/IX) on a table when they
// lock one of its pages, and recovery's table locks are plain S/X locks that
// conflict with those intentions in the usual way.
//
// Deadlocks are broken by timeouts, exactly as in the thesis: a lock request
// that cannot be granted within the configured window fails with
// ErrLockTimeout and the caller aborts the transaction.
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"harbor/internal/obs"
)

// TxnID identifies a transaction; ids are issued by the coordinator and are
// globally unique.
type TxnID int64

// Mode is a lock mode.
type Mode uint8

const (
	// IS is an intention-shared lock (held on a table while reading pages).
	IS Mode = iota + 1
	// IX is an intention-exclusive lock (held on a table while writing pages).
	IX
	// S is a shared lock.
	S
	// X is an exclusive lock.
	X
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// compatible reports whether two modes may be held simultaneously by
// different transactions.
func compatible(a, b Mode) bool {
	switch a {
	case IS:
		return b != X
	case IX:
		return b == IS || b == IX
	case S:
		return b == IS || b == S
	case X:
		return false
	}
	return false
}

// sup returns the combined mode a transaction effectively holds after
// acquiring both a and b on the same target. SIX is not modelled; S+IX
// escalates to X (strictly more conservative, never less safe).
func sup(a, b Mode) Mode {
	if a == b {
		return a
	}
	stronger := func(m Mode) int {
		switch m {
		case IS:
			return 0
		case IX, S:
			return 1
		default:
			return 2
		}
	}
	if a == X || b == X {
		return X
	}
	if (a == S && b == IX) || (a == IX && b == S) {
		return X
	}
	if stronger(a) >= stronger(b) {
		return a
	}
	return b
}

// Target names a lockable object: a whole table (Page == TablePage) or one
// page of it.
type Target struct {
	Table int32
	Page  int32
}

// TablePage is the sentinel page number meaning "the table itself".
const TablePage int32 = -1

// TableTarget makes a table-level target.
func TableTarget(table int32) Target { return Target{Table: table, Page: TablePage} }

// PageTarget makes a page-level target.
func PageTarget(table, pageNo int32) Target { return Target{Table: table, Page: pageNo} }

// String renders the target.
func (t Target) String() string {
	if t.Page == TablePage {
		return fmt.Sprintf("table %d", t.Table)
	}
	return fmt.Sprintf("table %d page %d", t.Table, t.Page)
}

// ErrLockTimeout signals a probable deadlock (§6.1.2 uses timeouts as the
// deadlock-detection mechanism); callers abort the transaction.
var ErrLockTimeout = errors.New("lockmgr: lock wait timed out (possible deadlock)")

type waiter struct {
	tid     TxnID
	mode    Mode
	granted chan struct{}
	done    bool // set under the manager mutex when granted or abandoned
}

type entry struct {
	holders map[TxnID]Mode
	queue   []*waiter
}

// Manager is one site's lock manager. The zero value is not usable; call New.
type Manager struct {
	mu      sync.Mutex
	locks   map[Target]*entry
	timeout time.Duration

	// held tracks, per transaction, everything it holds so ReleaseAll is
	// O(locks held).
	held map[TxnID]map[Target]Mode

	// Registry-backed instrumentation: blocked-wait durations
	// (lockmgr.wait.ns — fast-path grants are not observed) and deadlock
	// timeouts (lockmgr.timeouts); rebindable via Instrument.
	waitNS   *obs.Histogram
	timeouts *obs.Counter
}

// DefaultTimeout is the deadlock-detection window.
const DefaultTimeout = 2 * time.Second

// New creates a lock manager with the given deadlock timeout
// (DefaultTimeout if zero).
func New(timeout time.Duration) *Manager {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	m := &Manager{
		locks:   map[Target]*entry{},
		timeout: timeout,
		held:    map[TxnID]map[Target]Mode{},
	}
	m.Instrument(obs.NewRegistry())
	return m
}

// Instrument rebinds the manager's metrics to reg (call before concurrent
// use); the owning Site passes its registry so lockmgr.* metrics appear in
// its /debug/harbor snapshot.
func (m *Manager) Instrument(reg *obs.Registry) {
	m.waitNS = reg.Histogram("lockmgr.wait.ns")
	m.timeouts = reg.Counter("lockmgr.timeouts")
}

// Timeout returns the configured deadlock-detection window — the bound a
// healthy replica can legally stall before answering a coordinator round,
// which the coordinator's RoundTimeout must exceed (§4.3.5).
func (m *Manager) Timeout() time.Duration { return m.timeout }

// Acquire blocks until tid holds mode on target or the deadlock timeout
// fires. Acquiring a page lock implicitly acquires the matching intention
// lock (IS for S, IX for X) on the table first; if that intention lock
// cannot be granted the page request fails the same way.
func (m *Manager) Acquire(tid TxnID, target Target, mode Mode) error {
	deadline := time.Now().Add(m.timeout)
	if target.Page != TablePage {
		intent := IS
		if mode == X || mode == IX {
			intent = IX
		}
		if err := m.acquireOne(tid, TableTarget(target.Table), intent, deadline); err != nil {
			return err
		}
	}
	return m.acquireOne(tid, target, mode, deadline)
}

func (m *Manager) acquireOne(tid TxnID, target Target, mode Mode, deadline time.Time) error {
	m.mu.Lock()
	e := m.locks[target]
	if e == nil {
		e = &entry{holders: map[TxnID]Mode{}}
		m.locks[target] = e
	}
	if cur, ok := e.holders[tid]; ok {
		mode = sup(cur, mode)
		if mode == cur {
			m.mu.Unlock()
			return nil
		}
	}
	if m.grantableLocked(e, tid, mode) {
		m.grantLocked(e, tid, target, mode)
		m.mu.Unlock()
		return nil
	}
	w := &waiter{tid: tid, mode: mode, granted: make(chan struct{})}
	e.queue = append(e.queue, w)
	m.mu.Unlock()

	waitStart := time.Now()
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-w.granted:
		m.waitNS.Observe(time.Since(waitStart).Nanoseconds())
		return nil
	case <-timer.C:
		m.mu.Lock()
		if w.done {
			// Granted concurrently with the timeout; keep the lock.
			m.mu.Unlock()
			m.waitNS.Observe(time.Since(waitStart).Nanoseconds())
			return nil
		}
		w.done = true
		m.timeouts.Inc()
		for i, q := range e.queue {
			if q == w {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				break
			}
		}
		// Our departure may unblock waiters queued behind us.
		m.wakeLocked(target, e)
		m.mu.Unlock()
		return fmt.Errorf("%w: %v wants %v on %v", ErrLockTimeout, tid, mode, target)
	}
}

// grantableLocked reports whether tid may hold mode on e given the current
// holders (ignoring tid's own weaker hold, which is being upgraded) and
// FIFO fairness: a request that conflicts with any *earlier* waiter must
// queue behind it unless tid is upgrading an existing hold (upgrades jump
// the queue to avoid trivial upgrade deadlocks).
func (m *Manager) grantableLocked(e *entry, tid TxnID, mode Mode) bool {
	for h, hm := range e.holders {
		if h == tid {
			continue
		}
		if !compatible(mode, hm) {
			return false
		}
	}
	if _, upgrading := e.holders[tid]; upgrading {
		return true
	}
	for _, w := range e.queue {
		if w.tid != tid && !compatible(mode, w.mode) {
			return false
		}
	}
	return true
}

func (m *Manager) grantLocked(e *entry, tid TxnID, target Target, mode Mode) {
	e.holders[tid] = mode
	hm := m.held[tid]
	if hm == nil {
		hm = map[Target]Mode{}
		m.held[tid] = hm
	}
	hm[target] = mode
}

// wakeLocked grants queued waiters in FIFO order while they are grantable.
func (m *Manager) wakeLocked(target Target, e *entry) {
	for len(e.queue) > 0 {
		w := e.queue[0]
		want := w.mode
		if cur, ok := e.holders[w.tid]; ok {
			want = sup(cur, want)
		}
		granted := true
		for h, hm := range e.holders {
			if h != w.tid && !compatible(want, hm) {
				granted = false
				break
			}
		}
		if !granted {
			return
		}
		e.queue = e.queue[1:]
		w.done = true
		m.grantLocked(e, w.tid, target, want)
		close(w.granted)
	}
}

// TryAcquire grants mode on target only if it is immediately grantable
// (no waiting). For page targets the table intention lock is still acquired
// with normal blocking semantics — a recovering site's table lock must
// stall writers — but contention on the page itself fails fast so inserts
// can pick a different page instead of queueing behind another
// transaction's uncommitted insert.
func (m *Manager) TryAcquire(tid TxnID, target Target, mode Mode) (bool, error) {
	if target.Page != TablePage {
		intent := IS
		if mode == X || mode == IX {
			intent = IX
		}
		if err := m.acquireOne(tid, TableTarget(target.Table), intent, time.Now().Add(m.timeout)); err != nil {
			return false, err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.locks[target]
	if e == nil {
		e = &entry{holders: map[TxnID]Mode{}}
		m.locks[target] = e
	}
	want := mode
	if cur, ok := e.holders[tid]; ok {
		want = sup(cur, mode)
		if want == cur {
			return true, nil
		}
	}
	if !m.grantableLocked(e, tid, want) {
		if len(e.holders) == 0 && len(e.queue) == 0 {
			delete(m.locks, target)
		}
		return false, nil
	}
	m.grantLocked(e, tid, target, want)
	return true, nil
}

// Has reports whether tid currently holds at least mode on target
// (the thesis's hasAccess call).
func (m *Manager) Has(tid TxnID, target Target, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.held[tid][target]
	if !ok {
		return false
	}
	return sup(cur, mode) == cur
}

// ReleaseAll releases every lock tid holds (end of transaction; the
// thesis's releaseLocks).
func (m *Manager) ReleaseAll(tid TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for target := range m.held[tid] {
		m.releaseTargetLocked(tid, target)
	}
	delete(m.held, tid)
}

// Release releases one specific lock (recovery drops its table read locks
// individually when it comes online, §5.4.2).
func (m *Manager) Release(tid TxnID, target Target) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseTargetLocked(tid, target)
	if hm := m.held[tid]; hm != nil {
		delete(hm, target)
		if len(hm) == 0 {
			delete(m.held, tid)
		}
	}
}

func (m *Manager) releaseTargetLocked(tid TxnID, target Target) {
	e := m.locks[target]
	if e == nil {
		return
	}
	delete(e.holders, tid)
	m.wakeLocked(target, e)
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(m.locks, target)
	}
}

// HoldersOf returns the transactions holding locks on target (diagnostics
// and the §5.5.1 lock-override path: when a recovery buddy detects that a
// recovering site died, it releases that site's locks by owner).
func (m *Manager) HoldersOf(target Target) []TxnID {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.locks[target]
	if e == nil {
		return nil
	}
	out := make([]TxnID, 0, len(e.holders))
	for tid := range e.holders {
		out = append(out, tid)
	}
	return out
}

// HeldBy returns a snapshot of everything tid holds.
func (m *Manager) HeldBy(tid TxnID) map[Target]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Target]Mode, len(m.held[tid]))
	for t, md := range m.held[tid] {
		out[t] = md
	}
	return out
}

// NumLocked returns the number of locked targets (test instrumentation).
func (m *Manager) NumLocked() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.locks)
}
