package lockmgr

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestCompatibilityMatrix(t *testing.T) {
	want := map[[2]Mode]bool{
		{IS, IS}: true, {IS, IX}: true, {IS, S}: true, {IS, X}: false,
		{IX, IS}: true, {IX, IX}: true, {IX, S}: false, {IX, X}: false,
		{S, IS}: true, {S, IX}: false, {S, S}: true, {S, X}: false,
		{X, IS}: false, {X, IX}: false, {X, S}: false, {X, X}: false,
	}
	for pair, w := range want {
		if got := compatible(pair[0], pair[1]); got != w {
			t.Errorf("compatible(%v,%v) = %v, want %v", pair[0], pair[1], got, w)
		}
	}
}

func TestSup(t *testing.T) {
	cases := []struct{ a, b, want Mode }{
		{IS, IS, IS}, {IS, IX, IX}, {IS, S, S}, {IS, X, X},
		{S, IX, X}, {IX, S, X}, {S, S, S}, {X, IS, X}, {S, X, X},
	}
	for _, c := range cases {
		if got := sup(c.a, c.b); got != c.want {
			t.Errorf("sup(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := New(time.Second)
	tgt := PageTarget(1, 0)
	if err := m.Acquire(1, tgt, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, tgt, S); err != nil {
		t.Fatal(err)
	}
	if !m.Has(1, tgt, S) || !m.Has(2, tgt, S) {
		t.Fatal("both readers should hold S")
	}
	if m.Has(1, tgt, X) {
		t.Fatal("Has must not report X for an S holder")
	}
}

func TestExclusiveBlocksAndTimesOut(t *testing.T) {
	m := New(50 * time.Millisecond)
	tgt := PageTarget(1, 0)
	if err := m.Acquire(1, tgt, X); err != nil {
		t.Fatal(err)
	}
	err := m.Acquire(2, tgt, S)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("expected timeout, got %v", err)
	}
	// The failed waiter must not linger: releasing should leave the table
	// clean and a retry should succeed.
	m.ReleaseAll(1)
	if err := m.Acquire(2, tgt, S); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if m.NumLocked() != 0 {
		t.Fatalf("lock table not empty: %d entries", m.NumLocked())
	}
}

func TestReleaseWakesWaiter(t *testing.T) {
	m := New(2 * time.Second)
	tgt := PageTarget(1, 0)
	if err := m.Acquire(1, tgt, X); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Acquire(2, tgt, X) }()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter was not woken")
	}
	if !m.Has(2, tgt, X) {
		t.Fatal("waiter does not hold the lock after wake")
	}
}

func TestUpgradeSToX(t *testing.T) {
	m := New(time.Second)
	tgt := PageTarget(1, 0)
	if err := m.Acquire(1, tgt, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, tgt, X); err != nil {
		t.Fatal(err)
	}
	if !m.Has(1, tgt, X) {
		t.Fatal("upgrade failed")
	}
	// Another reader must now be blocked.
	m2err := m.tryAcquire(2, tgt, S, 50*time.Millisecond)
	if !errors.Is(m2err, ErrLockTimeout) {
		t.Fatalf("expected timeout after upgrade, got %v", m2err)
	}
}

// tryAcquire is a test helper using a custom timeout.
func (m *Manager) tryAcquire(tid TxnID, tgt Target, mode Mode, d time.Duration) error {
	saved := m.timeout
	m.timeout = d
	defer func() { m.timeout = saved }()
	return m.Acquire(tid, tgt, mode)
}

func TestUpgradeBlockedByOtherReader(t *testing.T) {
	m := New(50 * time.Millisecond)
	tgt := PageTarget(1, 0)
	if err := m.Acquire(1, tgt, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, tgt, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, tgt, X); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("upgrade should block on other reader, got %v", err)
	}
	// tid 1 still holds its S lock.
	if !m.Has(1, tgt, S) {
		t.Fatal("failed upgrade must not drop the original lock")
	}
}

func TestHierarchyPageXConflictsWithTableS(t *testing.T) {
	m := New(50 * time.Millisecond)
	// Txn 1 writes a page → implicit IX on the table.
	if err := m.Acquire(1, PageTarget(7, 3), X); err != nil {
		t.Fatal(err)
	}
	if !m.Has(1, TableTarget(7), IX) {
		t.Fatal("page X must imply table IX")
	}
	// Recovery (txn 2) wants a table-level S lock → must block.
	if err := m.Acquire(2, TableTarget(7), S); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("table S should conflict with IX, got %v", err)
	}
	m.ReleaseAll(1)
	if err := m.Acquire(2, TableTarget(7), S); err != nil {
		t.Fatal(err)
	}
	// And now a writer must block behind recovery's table S.
	if err := m.tryAcquire(3, PageTarget(7, 5), X, 50*time.Millisecond); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("page X should conflict with table S, got %v", err)
	}
	// Readers can proceed: page S under table S is compatible (IS vs S).
	if err := m.Acquire(4, PageTarget(7, 5), S); err != nil {
		t.Fatalf("reader should coexist with recovery's table S: %v", err)
	}
}

func TestReleaseSpecificTarget(t *testing.T) {
	m := New(time.Second)
	a, b := TableTarget(1), TableTarget(2)
	if err := m.Acquire(1, a, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, b, S); err != nil {
		t.Fatal(err)
	}
	m.Release(1, a)
	if m.Has(1, a, S) {
		t.Fatal("released lock still held")
	}
	if !m.Has(1, b, S) {
		t.Fatal("unrelated lock dropped")
	}
}

func TestHoldersOfAndHeldBy(t *testing.T) {
	m := New(time.Second)
	tgt := TableTarget(5)
	if err := m.Acquire(10, tgt, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(11, tgt, S); err != nil {
		t.Fatal(err)
	}
	hs := m.HoldersOf(tgt)
	if len(hs) != 2 {
		t.Fatalf("HoldersOf = %v", hs)
	}
	held := m.HeldBy(10)
	if held[tgt] != S {
		t.Fatalf("HeldBy = %v", held)
	}
	if m.HoldersOf(TableTarget(99)) != nil {
		t.Fatal("HoldersOf unknown target should be nil")
	}
}

func TestFIFOFairnessNoWriterStarvation(t *testing.T) {
	m := New(5 * time.Second)
	tgt := PageTarget(1, 0)
	if err := m.Acquire(1, tgt, S); err != nil {
		t.Fatal(err)
	}
	writerGot := make(chan struct{})
	go func() {
		if err := m.Acquire(2, tgt, X); err == nil {
			close(writerGot)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	// A new reader arriving while a writer waits must queue behind it.
	readerGot := make(chan struct{})
	go func() {
		if err := m.Acquire(3, tgt, S); err == nil {
			close(readerGot)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-readerGot:
		t.Fatal("late reader jumped the writer queue")
	default:
	}
	m.ReleaseAll(1)
	<-writerGot
	m.ReleaseAll(2)
	<-readerGot
}

// TestQuickNoIncompatibleHolders hammers the manager with random
// acquire/release traffic and asserts the core invariant: no two
// transactions ever simultaneously hold incompatible modes on one target.
func TestQuickNoIncompatibleHolders(t *testing.T) {
	f := func(seed int64) bool {
		m := New(30 * time.Millisecond)
		var violation atomic.Bool
		var wg sync.WaitGroup
		targets := []Target{TableTarget(1), PageTarget(1, 0), PageTarget(1, 1), TableTarget(2)}
		modes := []Mode{S, X, IS, IX}
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(g)))
				tid := TxnID(g + 1)
				for i := 0; i < 30; i++ {
					tgt := targets[rng.Intn(len(targets))]
					mode := modes[rng.Intn(len(modes))]
					if err := m.Acquire(tid, tgt, mode); err != nil {
						m.ReleaseAll(tid)
						continue
					}
					// Invariant check across the whole lock table.
					m.mu.Lock()
					for _, e := range m.locks {
						tids := make([]TxnID, 0, len(e.holders))
						for h := range e.holders {
							tids = append(tids, h)
						}
						for i := 0; i < len(tids); i++ {
							for j := i + 1; j < len(tids); j++ {
								if !compatible(e.holders[tids[i]], e.holders[tids[j]]) {
									violation.Store(true)
								}
							}
						}
					}
					m.mu.Unlock()
					if rng.Intn(3) == 0 {
						m.ReleaseAll(tid)
					}
				}
				m.ReleaseAll(tid)
			}(g)
		}
		wg.Wait()
		return !violation.Load() && m.NumLocked() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockBrokenByTimeout(t *testing.T) {
	m := New(100 * time.Millisecond)
	a, b := PageTarget(1, 0), PageTarget(1, 1)
	if err := m.Acquire(1, a, X); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, b, X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Acquire(1, b, X) }()
	go func() { errs <- m.Acquire(2, a, X) }()
	e1, e2 := <-errs, <-errs
	if !errors.Is(e1, ErrLockTimeout) && !errors.Is(e2, ErrLockTimeout) {
		t.Fatalf("deadlock not broken: %v / %v", e1, e2)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
}
