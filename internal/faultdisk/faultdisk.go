// Package faultdisk is a seeded, deterministic fault-injecting filesystem:
// the storage-side sibling of internal/faultnet. Install() swaps it in as
// the active internal/vfs implementation; every file operation under a
// registered site directory is then tracked and subject to scheduled
// faults:
//
//   - unsynced-write tracking with a bounded reorder window: writes land
//     immediately but stay "volatile" until the file is fsynced; a site
//     crash (CrashSite) replays a seeded loss schedule over the window —
//     each volatile write is kept, dropped, or torn (first k bytes land)
//   - lying fsyncs: Sync/SyncDir report success but leave the volatile
//     window (and pending renames) in place, so a later crash still loses
//     "durable" data — the checkpoint-contract killer the paper's §3
//     durability argument assumes cannot happen
//   - unsynced renames: a rename is volatile until its directory is
//     fsynced; a crash can revert it (old target content restored)
//   - short writes, injected EIO/ENOSPC, per-op latency
//   - crash points: SetCrashPoint(dir, n) lets exactly n more mutating
//     operations (write/sync/rename/dir-sync) succeed, then fails the rest
//     with ErrCrashed — the crash-point matrix test replays a durability
//     sequence once per prefix
//
// Determinism: every per-file decision stream is seeded from
// seed ^ splitmix(hash(path)), and crash materialization walks files in
// sorted path order — so the same seed over the same logical operation
// sequence yields the same fault schedule regardless of goroutine
// interleaving. Trace() returns the timestamped schedule for reproduction.
package faultdisk

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"harbor/internal/vfs"
)

// Typed fault errors. ErrInjectedIO / ErrNoSpace wrap the real errnos so
// callers' errors.Is(err, syscall.EIO) style checks also work.
var (
	ErrInjectedIO = fmt.Errorf("faultdisk: injected I/O error: %w", syscall.EIO)
	ErrNoSpace    = fmt.Errorf("faultdisk: injected out-of-space: %w", syscall.ENOSPC)
	ErrCrashed    = errors.New("faultdisk: site storage crashed (crash point reached)")
)

// maxWindow bounds the volatile-write reorder window per file: when a file
// accumulates more unsynced writes, the oldest are promoted to durable (a
// real disk's cache eventually writes back even without fsync).
const maxWindow = 64

// pwrite is one volatile write: the new bytes at off plus the bytes they
// replaced (zero-extended past the old EOF) so a crash can undo or tear it.
type pwrite struct {
	off int64
	n   int    // length of the new write
	old []byte // previous content, len == n (zeros beyond old EOF)
}

// fileState is the volatile state of one path. It is keyed by path in the
// owning site (not by open handle) so close-without-sync keeps data
// volatile, and reopening sees the same window.
type fileState struct {
	path        string
	durableSize int64
	window      []pwrite
}

// pendingRename is a rename not yet made durable by a directory fsync.
type pendingRename struct {
	dir, newpath string
	hadOld       bool
	oldContent   []byte // pre-rename content of newpath (nil if !hadOld)
}

// siteState carries the fault configuration and volatile state for one
// registered directory tree.
type siteState struct {
	dir  string
	name string

	latency    time.Duration
	lyingFsync bool
	shortWrite float64 // probability a WriteAt lands only a prefix
	failProb   float64 // probability a read/write fails outright
	failErr    error
	crashPoint int64 // mutating ops still allowed; -1 = disabled
	opCount    int64 // mutating ops observed

	files   map[string]*fileState
	renames []pendingRename
}

// Disk is the fault-injecting filesystem. Zero value is not usable; use New.
type Disk struct {
	mu        sync.Mutex
	seed      int64
	real      vfs.FS
	prev      vfs.FS
	installed bool
	sites     map[string]*siteState
	t0        time.Time
	trace     []string

	rngMu sync.Mutex
	rngs  map[string]*rngStream
}

// New returns a Disk whose entire fault schedule derives from seed.
func New(seed int64) *Disk {
	return &Disk{
		seed:  seed,
		real:  vfs.Current(),
		sites: map[string]*siteState{},
		rngs:  map[string]*rngStream{},
		t0:    time.Now(),
	}
}

// Install makes the Disk the active vfs implementation.
func (d *Disk) Install() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.installed {
		return
	}
	d.prev = vfs.Swap(d)
	d.real = d.prev
	d.installed = true
	d.tracefLocked("install seed=%d", d.seed)
}

// Uninstall restores the previous vfs implementation.
func (d *Disk) Uninstall() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.installed {
		return
	}
	vfs.Swap(d.prev)
	d.installed = false
	d.tracefLocked("uninstall")
}

// Register starts tracking dir (and everything under it) as one site.
func (d *Disk) Register(dir, name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.sites[dir]; ok {
		return
	}
	d.sites[dir] = &siteState{dir: dir, name: name, crashPoint: -1, files: map[string]*fileState{}}
	d.tracefLocked("register %s dir=%s", name, dir)
}

// Trace returns the timestamped fault schedule so far.
func (d *Disk) Trace() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.trace))
	copy(out, d.trace)
	return out
}

// Tracef appends an external event to the fault-schedule trace, letting a
// harness interleave its own actions (e.g. direct page corruption below the
// vfs seam) with the disk's schedule in one timeline.
func (d *Disk) Tracef(format string, args ...any) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracefLocked(format, args...)
}

func (d *Disk) tracefLocked(format string, args ...any) {
	line := fmt.Sprintf("t=+%s disk "+format,
		append([]any{time.Since(d.t0).Round(time.Microsecond)}, args...)...)
	d.trace = append(d.trace, line)
}

// SetLatency adds a fixed pause to every operation under dir.
func (d *Disk) SetLatency(dir string, lat time.Duration) {
	d.withSite(dir, func(s *siteState) {
		s.latency = lat
		d.tracefLocked("%s latency=%s", s.name, lat)
	})
}

// SetLyingFsync makes Sync/SyncDir under dir report success without making
// anything durable while on.
func (d *Disk) SetLyingFsync(dir string, on bool) {
	d.withSite(dir, func(s *siteState) {
		s.lyingFsync = on
		d.tracefLocked("%s lying-fsync=%v", s.name, on)
	})
}

// SetShortWrites makes each write under dir land only a random prefix (and
// return an error) with probability p.
func (d *Disk) SetShortWrites(dir string, p float64) {
	d.withSite(dir, func(s *siteState) {
		s.shortWrite = p
		d.tracefLocked("%s short-writes p=%.2f", s.name, p)
	})
}

// SetFailOps makes each read/write under dir fail with err (ErrInjectedIO
// or ErrNoSpace) with probability p.
func (d *Disk) SetFailOps(dir string, p float64, err error) {
	d.withSite(dir, func(s *siteState) {
		s.failProb, s.failErr = p, err
		d.tracefLocked("%s fail-ops p=%.2f err=%v", s.name, p, err)
	})
}

// SetCrashPoint allows exactly n more mutating operations under dir to
// succeed; subsequent ones fail with ErrCrashed. n < 0 disables.
func (d *Disk) SetCrashPoint(dir string, n int64) {
	d.withSite(dir, func(s *siteState) {
		s.crashPoint = n
		d.tracefLocked("%s crash-point=%d", s.name, n)
	})
}

// OpCount reports the mutating operations observed under dir so far: run a
// sequence once with no crash point to size the crash-point matrix.
func (d *Disk) OpCount(dir string) int64 {
	var n int64
	d.withSite(dir, func(s *siteState) { n = s.opCount })
	return n
}

// ResetOpCount zeroes dir's mutating-op counter.
func (d *Disk) ResetOpCount(dir string) {
	d.withSite(dir, func(s *siteState) { s.opCount = 0 })
}

// CrashSite materializes the crash for dir: every volatile write is kept,
// dropped, or torn per the seeded schedule; volatile renames may revert.
// Windows are cleared (what survived is now the durable truth) and the
// crash point is disabled so recovery I/O proceeds. Call after the process
// state is gone (e.g. worker.Site.Crash) and before reopening.
func (d *Disk) CrashSite(dir string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.siteForLocked(dir + string(os.PathSeparator))
	if s == nil {
		return
	}
	d.tracefLocked("%s crash: materializing losses", s.name)
	s.crashPoint = -1

	// Renames first (a reverted rename restores the old target bytes; any
	// volatile writes tracked under the new path are then irrelevant).
	for i := len(s.renames) - 1; i >= 0; i-- {
		pr := s.renames[i]
		rng := d.rngFor(pr.newpath, "rename")
		if rng.Float64() < 0.5 {
			d.tracefLocked("%s rename of %s: kept", s.name, filepath.Base(pr.newpath))
			continue
		}
		if pr.hadOld {
			if err := d.rewriteFile(pr.newpath, pr.oldContent); err == nil {
				d.tracefLocked("%s rename of %s: reverted to old content (%dB)",
					s.name, filepath.Base(pr.newpath), len(pr.oldContent))
			}
		} else {
			if err := d.real.Remove(pr.newpath); err == nil {
				d.tracefLocked("%s rename of %s: reverted (removed)",
					s.name, filepath.Base(pr.newpath))
			}
		}
		delete(s.files, pr.newpath)
	}
	s.renames = nil

	// Files in sorted path order so the schedule is interleaving-independent.
	paths := make([]string, 0, len(s.files))
	for p := range s.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fs := s.files[p]
		if len(fs.window) == 0 {
			continue
		}
		rng := d.rngFor(p, "crash")
		f, err := d.real.OpenFile(p, os.O_RDWR, 0)
		if err != nil {
			fs.window = nil
			continue
		}
		finalSize := fs.durableSize
		for i := len(fs.window) - 1; i >= 0; i-- {
			w := fs.window[i]
			switch choice := rng.Float64(); {
			case choice < 0.40: // kept
				if end := w.off + int64(w.n); end > finalSize {
					finalSize = end
				}
			case choice < 0.70 || w.n < 2: // dropped
				f.WriteAt(w.old, w.off)
				d.tracefLocked("%s %s: dropped write off=%d len=%d",
					s.name, filepath.Base(p), w.off, w.n)
			default: // torn: first k bytes of the new write landed
				k := 1 + rng.Intn(w.n-1)
				f.WriteAt(w.old[k:], w.off+int64(k))
				if end := w.off + int64(k); end > finalSize {
					finalSize = end
				}
				d.tracefLocked("%s %s: torn write off=%d len=%d kept=%d",
					s.name, filepath.Base(p), w.off, w.n, k)
			}
		}
		f.Truncate(finalSize)
		f.Sync()
		f.Close()
		fs.window = nil
		fs.durableSize = finalSize
	}
}

// rewriteFile durably replaces path's content via the real FS.
func (d *Disk) rewriteFile(path string, content []byte) error {
	f, err := d.real.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteAt(content, 0); err != nil {
		return err
	}
	return f.Sync()
}

// rngStream is a mutex-guarded deterministic decision stream. Streams are
// cached per (path, purpose), so successive rolls for the same file advance
// one sequence instead of replaying the first value forever.
type rngStream struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (r *rngStream) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

func (r *rngStream) Intn(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Intn(n)
}

// rngFor derives the deterministic decision stream for (path, purpose):
// keyed by content, not by global call order, so interleavings across
// different files do not perturb each other's schedules. (Operations on one
// file are serialized by its owner — heap latches, the WAL appender — so
// per-stream order is deterministic too.)
func (d *Disk) rngFor(path, purpose string) *rngStream {
	key := path + "\x00" + purpose
	d.rngMu.Lock()
	defer d.rngMu.Unlock()
	if r, ok := d.rngs[key]; ok {
		return r
	}
	h := fnv.New64a()
	io.WriteString(h, key)
	mixed := int64(h.Sum64()&0x7FFFFFFFFFFFFFFF) * int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF)
	r := &rngStream{rng: rand.New(rand.NewSource(d.seed ^ mixed))}
	d.rngs[key] = r
	return r
}

func (d *Disk) withSite(dir string, fn func(*siteState)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.sites[dir]
	if s == nil {
		s = d.siteForLocked(dir + string(os.PathSeparator))
	}
	if s != nil {
		fn(s)
	}
}

// siteForLocked resolves a path to its registered site (longest prefix wins).
func (d *Disk) siteForLocked(path string) *siteState {
	var best *siteState
	for dir, s := range d.sites {
		if path == dir || strings.HasPrefix(path, dir+string(os.PathSeparator)) {
			if best == nil || len(dir) > len(best.dir) {
				best = s
			}
		}
	}
	return best
}

// latencyOf returns the configured latency without holding the lock during
// the sleep.
func (d *Disk) pause(s *siteState) {
	d.mu.Lock()
	lat := s.latency
	d.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
}

// mutGate charges one mutating operation against the crash point. Returns
// ErrCrashed once the budget is spent.
func (d *Disk) mutGate(s *siteState, op, path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	s.opCount++
	if s.crashPoint < 0 {
		return nil
	}
	if s.crashPoint == 0 {
		d.tracefLocked("%s crash point: rejecting %s %s", s.name, op, filepath.Base(path))
		return ErrCrashed
	}
	s.crashPoint--
	return nil
}

// failGate rolls the injected-error dice for a read/write on path.
func (d *Disk) failGate(s *siteState, path, purpose string) error {
	d.mu.Lock()
	p, errv := s.failProb, s.failErr
	d.mu.Unlock()
	if p <= 0 {
		return nil
	}
	if d.rngFor(path, purpose).Float64() < p {
		d.mu.Lock()
		d.tracefLocked("%s injected %v on %s %s", s.name, errv, purpose, filepath.Base(path))
		d.mu.Unlock()
		if errv == nil {
			errv = ErrInjectedIO
		}
		return errv
	}
	return nil
}

// --- vfs.FS implementation ---

func (d *Disk) OpenFile(name string, flag int, perm os.FileMode) (vfs.File, error) {
	s := d.siteForLocked2(name)
	if s == nil {
		return d.real.OpenFile(name, flag, perm)
	}
	d.pause(s)
	f, err := d.real.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	fs := s.files[name]
	if fs == nil {
		size := int64(0)
		if fi, err := d.real.Stat(name); err == nil {
			size = fi.Size()
		}
		if flag&os.O_TRUNC != 0 {
			size = 0
		}
		fs = &fileState{path: name, durableSize: size}
		s.files[name] = fs
	} else if flag&os.O_TRUNC != 0 {
		fs.window = nil
		fs.durableSize = 0
	}
	d.mu.Unlock()
	return &file{d: d, s: s, fs: fs, real: f}, nil
}

// siteForLocked2 is the lock-acquiring wrapper of siteForLocked.
func (d *Disk) siteForLocked2(path string) *siteState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.siteForLocked(path)
}

func (d *Disk) Rename(oldpath, newpath string) error {
	s := d.siteForLocked2(newpath)
	if s == nil {
		return d.real.Rename(oldpath, newpath)
	}
	d.pause(s)
	if err := d.mutGate(s, "rename", newpath); err != nil {
		return err
	}
	// Stash the old target so a crash before the directory fsync can
	// revert. Renamed files are small control structures (meta,
	// checkpoint, master record), so buffering the content is cheap.
	var oldContent []byte
	hadOld := false
	if b, err := readAll(d.real, newpath); err == nil {
		oldContent, hadOld = b, true
	}
	if err := d.real.Rename(oldpath, newpath); err != nil {
		return err
	}
	d.mu.Lock()
	if fs, ok := s.files[oldpath]; ok {
		delete(s.files, oldpath)
		fs.path = newpath
		s.files[newpath] = fs
	}
	s.renames = append(s.renames, pendingRename{
		dir: filepath.Dir(newpath), newpath: newpath, hadOld: hadOld, oldContent: oldContent,
	})
	d.mu.Unlock()
	return nil
}

func (d *Disk) Remove(name string) error {
	s := d.siteForLocked2(name)
	if s == nil {
		return d.real.Remove(name)
	}
	d.pause(s)
	if err := d.mutGate(s, "remove", name); err != nil {
		return err
	}
	d.mu.Lock()
	delete(s.files, name)
	d.mu.Unlock()
	return d.real.Remove(name)
}

func (d *Disk) Stat(name string) (os.FileInfo, error) { return d.real.Stat(name) }

func (d *Disk) MkdirAll(path string, perm os.FileMode) error {
	return d.real.MkdirAll(path, perm)
}

func (d *Disk) ReadDir(name string) ([]os.DirEntry, error) { return d.real.ReadDir(name) }

func (d *Disk) SyncDir(dir string) error {
	s := d.siteForLocked2(dir)
	if s == nil {
		return d.real.SyncDir(dir)
	}
	d.pause(s)
	if err := d.mutGate(s, "syncdir", dir); err != nil {
		return err
	}
	d.mu.Lock()
	lying := s.lyingFsync
	if lying {
		d.tracefLocked("%s lied dir-fsync %s (%d renames still volatile)",
			s.name, filepath.Base(dir), len(s.renames))
	} else {
		kept := s.renames[:0]
		for _, pr := range s.renames {
			if pr.dir != dir {
				kept = append(kept, pr)
			}
		}
		s.renames = kept
	}
	d.mu.Unlock()
	if lying {
		return nil
	}
	return d.real.SyncDir(dir)
}

// readAll reads a whole file through an FS.
func readAll(fsys vfs.FS, path string) ([]byte, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, 32<<10)
	off := int64(0)
	for {
		n, err := f.ReadAt(buf, off)
		out = append(out, buf[:n]...)
		off += int64(n)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// --- vfs.File implementation ---

type file struct {
	d    *Disk
	s    *siteState
	fs   *fileState
	real vfs.File
}

func (f *file) Name() string { return f.real.Name() }
func (f *file) Close() error { return f.real.Close() } // close ≠ durable: window stays

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.d.pause(f.s)
	if err := f.d.failGate(f.s, f.fs.path, "read"); err != nil {
		return 0, err
	}
	return f.real.ReadAt(p, off)
}

func (f *file) Seek(offset int64, whence int) (int64, error) {
	return f.real.Seek(offset, whence)
}

// track records a volatile write: capture the displaced bytes so a crash
// can undo or tear it, bounding the window by promoting the oldest writes
// to durable.
func (f *file) track(off int64, n int) {
	old := make([]byte, n)
	if m, err := f.real.ReadAt(old, off); err != nil && err != io.EOF {
		_ = m // best effort: zeros past EOF are already correct
	}
	f.d.mu.Lock()
	f.fs.window = append(f.fs.window, pwrite{off: off, n: n, old: old})
	if len(f.fs.window) > maxWindow {
		promoted := f.fs.window[0]
		if end := promoted.off + int64(promoted.n); end > f.fs.durableSize {
			f.fs.durableSize = end
		}
		f.fs.window = f.fs.window[1:]
	}
	f.d.mu.Unlock()
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	f.d.pause(f.s)
	if err := f.d.mutGate(f.s, "write", f.fs.path); err != nil {
		return 0, err
	}
	if err := f.d.failGate(f.s, f.fs.path, "write"); err != nil {
		return 0, err
	}
	n := len(p)
	if short := f.shortLen(n); short < n {
		f.track(off, short)
		m, _ := f.real.WriteAt(p[:short], off)
		return m, fmt.Errorf("faultdisk: short write (%d of %d bytes): %w", short, n, syscall.EIO)
	}
	if n > 0 {
		f.track(off, n)
	}
	return f.real.WriteAt(p, off)
}

func (f *file) Write(p []byte) (int, error) {
	pos, err := f.real.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, err
	}
	n, err := f.WriteAt(p, pos)
	if n > 0 {
		// Advance the cursor past what landed (WriteAt does not move it).
		if _, serr := f.real.Seek(pos+int64(n), io.SeekStart); serr != nil && err == nil {
			err = serr
		}
	}
	return n, err
}

// shortLen rolls the short-write dice: returns len(p) normally, or a
// strict prefix length when a short write fires.
func (f *file) shortLen(n int) int {
	f.d.mu.Lock()
	p := f.s.shortWrite
	d := f.d
	f.d.mu.Unlock()
	if p <= 0 || n < 2 {
		return n
	}
	rng := d.rngFor(f.fs.path, "short")
	if rng.Float64() >= p {
		return n
	}
	short := 1 + rng.Intn(n-1)
	d.mu.Lock()
	d.tracefLocked("%s short write on %s: %d of %d bytes", f.s.name, filepath.Base(f.fs.path), short, n)
	d.mu.Unlock()
	return short
}

func (f *file) Sync() error {
	f.d.pause(f.s)
	if err := f.d.mutGate(f.s, "sync", f.fs.path); err != nil {
		return err
	}
	f.d.mu.Lock()
	if f.s.lyingFsync {
		f.d.tracefLocked("%s lied fsync %s (%d writes still volatile)",
			f.s.name, filepath.Base(f.fs.path), len(f.fs.window))
		f.d.mu.Unlock()
		return nil
	}
	f.d.mu.Unlock()
	if err := f.real.Sync(); err != nil {
		return err
	}
	f.d.mu.Lock()
	f.fs.window = nil
	if fi, err := f.d.real.Stat(f.fs.path); err == nil {
		f.fs.durableSize = fi.Size()
	}
	f.d.mu.Unlock()
	return nil
}

func (f *file) Truncate(size int64) error {
	f.d.pause(f.s)
	if err := f.d.mutGate(f.s, "truncate", f.fs.path); err != nil {
		return err
	}
	if err := f.real.Truncate(size); err != nil {
		return err
	}
	f.d.mu.Lock()
	kept := f.fs.window[:0]
	for _, w := range f.fs.window {
		if w.off >= size {
			continue
		}
		if w.off+int64(w.n) > size {
			w.n = int(size - w.off)
			w.old = w.old[:w.n]
		}
		kept = append(kept, w)
	}
	f.fs.window = kept
	if f.fs.durableSize > size {
		f.fs.durableSize = size
	}
	f.d.mu.Unlock()
	return nil
}
