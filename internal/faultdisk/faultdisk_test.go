package faultdisk

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"harbor/internal/vfs"
)

// withDisk installs a fresh Disk over a temp site dir and returns both.
func withDisk(t *testing.T, seed int64) (*Disk, string) {
	t.Helper()
	dir := t.TempDir()
	d := New(seed)
	d.Register(dir, "site1")
	d.Install()
	t.Cleanup(d.Uninstall)
	return d, dir
}

func writeAt(t *testing.T, path string, data []byte, off int64) vfs.File {
	t.Helper()
	f, err := vfs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	return f
}

func readRaw(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return b
}

func TestSyncedWritesSurviveCrash(t *testing.T) {
	d, dir := withDisk(t, 1)
	path := filepath.Join(dir, "data")
	content := bytes.Repeat([]byte{0xAB}, 1000)
	f := writeAt(t, path, content, 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	d.CrashSite(dir)
	if got := readRaw(t, path); !bytes.Equal(got, content) {
		t.Fatalf("synced write lost in crash: got %d bytes", len(got))
	}
}

func TestUnsyncedWritesTornOrDroppedOnCrash(t *testing.T) {
	d, dir := withDisk(t, 2)
	path := filepath.Join(dir, "data")
	// Many separate unsynced writes: for any seed, the 0.40/0.30/0.30
	// keep/drop/tear split makes losing all 40 of them astronomically
	// unlikely to NOT happen at least once.
	f, err := vfs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte{0xCD}, 100)
	for i := 0; i < 40; i++ {
		if _, err := f.WriteAt(chunk, int64(i*100)); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	d.CrashSite(dir)
	got := readRaw(t, path)
	if len(got) == 4000 && bytes.Equal(got, bytes.Repeat([]byte{0xCD}, 4000)) {
		t.Fatal("no unsynced write was dropped or torn")
	}
	var sawLoss bool
	for _, line := range d.Trace() {
		if strings.Contains(line, "dropped write") || strings.Contains(line, "torn write") {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Fatal("trace does not record any loss")
	}
}

func TestLyingFsyncLeavesWritesVolatile(t *testing.T) {
	d, dir := withDisk(t, 3)
	d.SetLyingFsync(dir, true)
	path := filepath.Join(dir, "data")
	f, err := vfs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte{0xEE}, 100)
	for i := 0; i < 40; i++ {
		if _, err := f.WriteAt(chunk, int64(i*100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("lying fsync must report success, got %v", err)
	}
	f.Close()
	d.CrashSite(dir)
	if got := readRaw(t, path); bytes.Equal(got, bytes.Repeat([]byte{0xEE}, 4000)) {
		t.Fatal("lying fsync protected the data: no write was lost in the crash")
	}
}

func TestRenameOldOrNewNeverMix(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			d, dir := withDisk(t, seed)
			target := filepath.Join(dir, "master")
			oldContent := []byte("old-master-record")
			newContent := []byte("NEW-master-record!!")
			if err := vfs.WriteFileAtomic(target, oldContent, 0o644); err != nil {
				t.Fatal(err)
			}
			// Replace without the directory fsync: write tmp, sync it, rename.
			tmp := target + ".tmp"
			f := writeAt(t, tmp, newContent, 0)
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if err := vfs.Rename(tmp, target); err != nil {
				t.Fatal(err)
			}
			d.CrashSite(dir)
			got := readRaw(t, target)
			if !bytes.Equal(got, oldContent) && !bytes.Equal(got, newContent) {
				t.Fatalf("crash left a mix: %q", got)
			}
		})
	}
}

func TestSyncDirMakesRenameDurable(t *testing.T) {
	d, dir := withDisk(t, 4)
	target := filepath.Join(dir, "master")
	if err := vfs.WriteFileAtomic(target, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFileAtomic(target, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	d.CrashSite(dir)
	if got := readRaw(t, target); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("dir-fsynced rename reverted: %q", got)
	}
}

func TestCrashPointBudget(t *testing.T) {
	d, dir := withDisk(t, 5)
	path := filepath.Join(dir, "data")
	f, err := vfs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d.SetCrashPoint(dir, 2)
	if _, err := f.WriteAt([]byte("a"), 0); err != nil {
		t.Fatalf("op 1 within budget failed: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("op 2 within budget failed: %v", err)
	}
	if _, err := f.WriteAt([]byte("b"), 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 3 past budget: got %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync past budget: got %v, want ErrCrashed", err)
	}
}

func TestShortWriteReturnsError(t *testing.T) {
	d, dir := withDisk(t, 6)
	d.SetShortWrites(dir, 1.0)
	path := filepath.Join(dir, "data")
	f, err := vfs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.WriteAt(bytes.Repeat([]byte{1}, 512), 0)
	if err == nil || !errors.Is(err, syscall.EIO) {
		t.Fatalf("short write should error with EIO, got n=%d err=%v", n, err)
	}
	if n <= 0 || n >= 512 {
		t.Fatalf("short write landed %d bytes, want strict prefix", n)
	}
}

func TestInjectedErrors(t *testing.T) {
	d, dir := withDisk(t, 7)
	d.SetFailOps(dir, 1.0, ErrNoSpace)
	path := filepath.Join(dir, "data")
	f, err := vfs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	d.SetFailOps(dir, 1.0, ErrInjectedIO)
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	d.SetFailOps(dir, 0, nil)
}

func TestOpCountAndReset(t *testing.T) {
	d, dir := withDisk(t, 8)
	path := filepath.Join(dir, "data")
	f := writeAt(t, path, []byte("abc"), 0)
	f.Sync()
	f.Close()
	if n := d.OpCount(dir); n != 2 { // write + sync
		t.Fatalf("OpCount = %d, want 2", n)
	}
	d.ResetOpCount(dir)
	if n := d.OpCount(dir); n != 0 {
		t.Fatalf("OpCount after reset = %d", n)
	}
}

// script runs a fixed logical operation sequence against dir and returns
// the disk's normalized trace (timestamps stripped).
func script(t *testing.T, seed int64, dir string) []string {
	t.Helper()
	d := New(seed)
	d.Register(dir, "site1")
	d.Install()
	defer d.Uninstall()
	d.SetShortWrites(dir, 0.3)
	path := filepath.Join(dir, "wal")
	f, err := vfs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(0)
	for i := 0; i < 30; i++ {
		n, _ := f.WriteAt(bytes.Repeat([]byte{byte(i)}, 64), off)
		off += int64(n)
		if i%7 == 0 {
			f.Sync()
		}
	}
	f.Close()
	_ = vfs.WriteFileAtomic(filepath.Join(dir, "meta"), []byte("m1"), 0o644)
	d.CrashSite(dir)
	var out []string
	for _, line := range d.Trace() {
		if i := strings.Index(line, " disk "); i >= 0 {
			out = append(out, line[i+6:])
		}
	}
	return out
}

// TestDeterministicSchedule: the same seed over the same logical operation
// sequence yields the identical fault schedule — the reproducibility
// contract chaos violation dumps rely on.
func TestDeterministicSchedule(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "site")
	runOnce := func() []string {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return script(t, 12345, dir)
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 {
		t.Fatal("empty trace; script exercised nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d\nA:\n%s\nB:\n%s",
			len(a), len(b), strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at line %d:\nA: %s\nB: %s", i, a[i], b[i])
		}
	}
	// A different seed must yield a different schedule.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	c := script(t, 54321, dir)
	if strings.Join(a, "\n") == strings.Join(c, "\n") {
		t.Fatal("different seeds produced identical schedules")
	}
}
