package faultdisk_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"harbor/internal/faultdisk"
	"harbor/internal/page"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/wal"
)

func cpDesc() *tuple.Desc {
	return tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "v", Type: tuple.Int64},
	)
}

// seedBaseline durably establishes the "old" state every crash prefix must
// be able to fall back to: checkpoint=50, a table with one synced page and
// flushed meta, a WAL with one forced record and a master record.
func seedBaseline(t *testing.T, dir string) {
	t.Helper()
	if err := storage.WriteCheckpointFile(storage.CheckpointPath(dir), 50); err != nil {
		t.Fatal(err)
	}
	h, err := storage.Create(dir, 1, cpDesc(), 4)
	if err != nil {
		t.Fatal(err)
	}
	pno, _, err := h.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	img := page.New(page.ID{Table: 1, PageNo: pno}, h.TupleWidth())
	if err := h.WritePageData(pno, img.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := h.SyncData(); err != nil {
		t.Fatal(err)
	}
	if err := h.FlushMeta(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	w, err := wal.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsn := w.Append(&wal.Record{Type: wal.RecCommit, Txn: 1})
	if err := w.Force(lsn, false); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wal.WriteMaster(dir, lsn); err != nil {
		t.Fatal(err)
	}
}

// updateSequence runs the full durability sequence under test — checkpoint
// replace, heap page write + meta flush, WAL append/force, master-record
// replace — returning the first error (a crash point rejection) untouched.
func updateSequence(dir string) error {
	if err := storage.WriteCheckpointFile(storage.CheckpointPath(dir), 100); err != nil {
		return err
	}
	h, err := storage.Open(dir, 1)
	if err != nil {
		return err
	}
	defer h.Close()
	pno, _, err := h.AllocPage()
	if err != nil {
		return err
	}
	img := page.New(page.ID{Table: 1, PageNo: pno}, h.TupleWidth())
	if err := h.WritePageData(pno, img.Bytes()); err != nil {
		return err
	}
	if err := h.SyncData(); err != nil {
		return err
	}
	if err := h.FlushMeta(); err != nil {
		return err
	}
	w, err := wal.Open(dir, 0)
	if err != nil {
		return err
	}
	defer w.Close()
	var last page.LSN
	for i := 0; i < 3; i++ {
		last = w.Append(&wal.Record{Type: wal.RecCommit, Txn: int64(10 + i)})
	}
	if err := w.Force(last, false); err != nil {
		return err
	}
	return wal.WriteMaster(dir, last)
}

// verifyConsistent asserts the crash-consistency contract from every prefix:
// atomic-replace files are old-or-new (never a mix, never unparseable), the
// heap meta reopens cleanly, and wal.Open truncates any torn tail instead of
// failing.
func verifyConsistent(t *testing.T, dir string, k int64) {
	t.Helper()
	ckpt, err := storage.ReadCheckpointFile(storage.CheckpointPath(dir))
	if err != nil {
		t.Fatalf("k=%d: checkpoint unreadable after crash: %v", k, err)
	}
	if ckpt != 50 && ckpt != 100 {
		t.Fatalf("k=%d: checkpoint = %d, want old(50) or new(100)", k, ckpt)
	}
	h, err := storage.Open(dir, 1)
	if err != nil {
		t.Fatalf("k=%d: heap meta unreadable after crash: %v", k, err)
	}
	if n := h.NumPages(); n < 1 {
		t.Fatalf("k=%d: baseline page lost: NumPages=%d", k, n)
	}
	h.Close()
	if _, err := wal.ReadMaster(dir); err != nil {
		t.Fatalf("k=%d: master record unreadable after crash: %v", k, err)
	}
	w, err := wal.Open(dir, 0)
	if err != nil {
		t.Fatalf("k=%d: WAL reopen failed (torn tail not truncated?): %v", k, err)
	}
	// Every record the reopened WAL exposes must decode cleanly.
	if err := w.Iter(1, func(r *wal.Record) (bool, error) { return true, nil }); err != nil {
		t.Fatalf("k=%d: WAL iteration after crash: %v", k, err)
	}
	w.Close()
}

// TestCrashPointMatrix kills the durability sequence after every single
// mutating storage operation (write, sync, rename, dir-sync), materializes
// the seeded crash losses, and requires recovery-relevant state to be
// consistent from each prefix. This is the §3 checkpoint-contract test at
// the file level: no prefix of the sequence may leave checkpoint, meta,
// master record, or WAL unreadable.
func TestCrashPointMatrix(t *testing.T) {
	base := t.TempDir()

	// Pass 1: count the sequence's mutating ops with no crash point.
	sizing := filepath.Join(base, "sizing")
	if err := os.MkdirAll(sizing, 0o755); err != nil {
		t.Fatal(err)
	}
	d := faultdisk.New(1)
	d.Register(sizing, "sizing")
	d.Install()
	seedBaseline(t, sizing)
	d.ResetOpCount(sizing)
	if err := updateSequence(sizing); err != nil {
		d.Uninstall()
		t.Fatalf("fault-free sequence failed: %v", err)
	}
	n := d.OpCount(sizing)
	d.Uninstall()
	if n < 8 {
		t.Fatalf("sequence has only %d mutating ops; matrix is vacuous", n)
	}

	// Pass 2: one run per prefix length k — crash after exactly k ops.
	for k := int64(0); k < n; k++ {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			dir := filepath.Join(base, fmt.Sprintf("run%d", k))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			d := faultdisk.New(1000 + k)
			d.Register(dir, "site")
			d.Install()
			defer d.Uninstall()
			seedBaseline(t, dir)
			d.ResetOpCount(dir)
			d.SetCrashPoint(dir, k)
			err := updateSequence(dir)
			if err == nil {
				t.Fatalf("k=%d < n=%d but sequence completed", k, n)
			}
			d.CrashSite(dir)
			verifyConsistent(t, dir, k)
		})
	}

	// Control: the full sequence with no crash lands the new state.
	dir := filepath.Join(base, "control")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	dc := faultdisk.New(2)
	dc.Register(dir, "control")
	dc.Install()
	defer dc.Uninstall()
	seedBaseline(t, dir)
	if err := updateSequence(dir); err != nil {
		t.Fatal(err)
	}
	dc.CrashSite(dir)
	ckpt, err := storage.ReadCheckpointFile(storage.CheckpointPath(dir))
	if err != nil || ckpt != 100 {
		t.Fatalf("control run: checkpoint = %d, %v; want 100", ckpt, err)
	}
}
