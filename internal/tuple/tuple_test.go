package tuple

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func benchDesc(t testing.TB) *Desc {
	// The thesis benchmark schema: 16 4-byte integer fields including the two
	// timestamp fields (§6.2). We model the timestamps as int64 and keep 13
	// int32 user fields plus an int64 id, which is byte-equivalent in spirit.
	fields := []FieldDef{{Name: "id", Type: Int64}}
	for i := 0; i < 13; i++ {
		fields = append(fields, FieldDef{Name: string(rune('a' + i)), Type: Int32})
	}
	d, err := NewDesc("id", fields...)
	if err != nil {
		t.Fatalf("NewDesc: %v", err)
	}
	return d
}

func TestNewDescValidation(t *testing.T) {
	if _, err := NewDesc("missing", FieldDef{Name: "x", Type: Int32}); err == nil {
		t.Fatal("expected error for missing key field")
	}
	if _, err := NewDesc("x", FieldDef{Name: "x", Type: Int32}); err == nil {
		t.Fatal("expected error for non-int64 key field")
	}
	if _, err := NewDesc("x", FieldDef{Name: "x", Type: Int64}, FieldDef{Name: "x", Type: Int32}); err == nil {
		t.Fatal("expected error for duplicate field name")
	}
	if _, err := NewDesc("x", FieldDef{Name: "x", Type: Int64}, FieldDef{Name: "c", Type: Char}); err == nil {
		t.Fatal("expected error for zero-size char field")
	}
}

func TestDescWidthAndOffsets(t *testing.T) {
	d := MustDesc("id",
		FieldDef{Name: "id", Type: Int64},
		FieldDef{Name: "qty", Type: Int32},
		FieldDef{Name: "name", Type: Char, Size: 10},
	)
	// ins(8) + del(8) + id(8) + qty(4) + name(10)
	if got, want := d.Width(), 38; got != want {
		t.Fatalf("Width = %d, want %d", got, want)
	}
	if got := d.Offset(d.FieldIndex("qty")); got != 24 {
		t.Fatalf("Offset(qty) = %d, want 24", got)
	}
	if d.FieldIndex("nope") != -1 {
		t.Fatal("FieldIndex should return -1 for unknown field")
	}
	if d.Fields[d.Key].Name != "id" {
		t.Fatalf("key field = %q, want id", d.Fields[d.Key].Name)
	}
}

func TestDescMarshalRoundTrip(t *testing.T) {
	d := MustDesc("id",
		FieldDef{Name: "id", Type: Int64},
		FieldDef{Name: "price", Type: Int32},
		FieldDef{Name: "name", Type: Char, Size: 24},
	)
	buf := d.Marshal()
	// Append noise to check the consumed-bytes return value.
	got, n, err := UnmarshalDesc(append(buf, 0xAA, 0xBB))
	if err != nil {
		t.Fatalf("UnmarshalDesc: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d bytes, want %d", n, len(buf))
	}
	if !got.Equal(d) {
		t.Fatalf("round trip mismatch: %s vs %s", got, d)
	}
}

func TestUnmarshalDescTruncated(t *testing.T) {
	d := MustDesc("id", FieldDef{Name: "id", Type: Int64})
	buf := d.Marshal()
	for i := 0; i < len(buf); i++ {
		if _, _, err := UnmarshalDesc(buf[:i]); err == nil {
			t.Fatalf("expected error for truncation at %d bytes", i)
		}
	}
}

func TestTupleEncodeDecodeRoundTrip(t *testing.T) {
	d := MustDesc("id",
		FieldDef{Name: "id", Type: Int64},
		FieldDef{Name: "qty", Type: Int32},
		FieldDef{Name: "name", Type: Char, Size: 8},
	)
	tp := MustMake(d, VInt(42), VInt(-7), VStr("colgate"))
	tp.SetInsTS(100)
	tp.SetDelTS(250)
	got, err := Decode(d, tp.Encode(d))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.Equal(d, tp) {
		t.Fatalf("round trip mismatch: %s vs %s", got, tp)
	}
	if got.InsTS() != 100 || got.DelTS() != 250 || got.Key(d) != 42 {
		t.Fatalf("accessors wrong after round trip: %s", got)
	}
}

func TestCharTruncationAndPadding(t *testing.T) {
	d := MustDesc("id",
		FieldDef{Name: "id", Type: Int64},
		FieldDef{Name: "name", Type: Char, Size: 4},
	)
	tp := MustMake(d, VInt(1), VStr("toolong"))
	got, err := Decode(d, tp.Encode(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.Values[3].Str != "tool" {
		t.Fatalf("char truncation: got %q want %q", got.Values[3].Str, "tool")
	}
	tp2 := MustMake(d, VInt(2), VStr("ab"))
	got2, err := Decode(d, tp2.Encode(d))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Values[3].Str != "ab" {
		t.Fatalf("char padding: got %q want %q", got2.Values[3].Str, "ab")
	}
}

func TestVisibility(t *testing.T) {
	d := benchDesc(t)
	cases := []struct {
		ins, del Timestamp
		asOf     Timestamp
		want     bool
	}{
		{ins: 1, del: NotDeleted, asOf: 1, want: true},
		{ins: 2, del: NotDeleted, asOf: 1, want: false},
		{ins: 1, del: 3, asOf: 2, want: true},   // deleted after asOf → visible
		{ins: 1, del: 3, asOf: 3, want: false},  // deleted at asOf → invisible
		{ins: 1, del: 3, asOf: 10, want: false}, // long gone
		{ins: Uncommitted, del: NotDeleted, asOf: math.MaxInt64 - 1, want: false},
		{ins: 5, del: NotDeleted, asOf: 5, want: true}, // inserted at asOf → visible
	}
	for i, c := range cases {
		tp := MustMake(d, make([]Value, 14)...)
		tp.SetInsTS(c.ins)
		tp.SetDelTS(c.del)
		if got := tp.VisibleAt(c.asOf); got != c.want {
			t.Errorf("case %d: VisibleAt(%d) with ins=%d del=%d: got %v want %v",
				i, c.asOf, c.ins, c.del, got, c.want)
		}
	}
}

// TestFigure31SampleTable replays the employees example of Figure 3-1 and
// checks visibility at each described point in history.
func TestFigure31SampleTable(t *testing.T) {
	d := MustDesc("id",
		FieldDef{Name: "id", Type: Int64},
		FieldDef{Name: "name", Type: Char, Size: 16},
		FieldDef{Name: "age", Type: Int32},
	)
	mk := func(ins, del Timestamp, id int64, name string, age int64) Tuple {
		tp := MustMake(d, VInt(id), VStr(name), VInt(age))
		tp.SetInsTS(ins)
		tp.SetDelTS(del)
		return tp
	}
	table := []Tuple{
		mk(1, 0, 1, "Jessica", 17),
		mk(1, 3, 2, "Kenny", 51),
		mk(2, 0, 3, "Suey", 48),
		mk(4, 6, 4, "Elliss", 20),
		mk(6, 0, 4, "Ellis", 20),
	}
	visibleNames := func(asOf Timestamp) []string {
		var out []string
		for _, tp := range table {
			if tp.VisibleAt(asOf) {
				out = append(out, tp.Values[d.FieldIndex("name")].Str)
			}
		}
		return out
	}
	if got := visibleNames(1); !reflect.DeepEqual(got, []string{"Jessica", "Kenny"}) {
		t.Fatalf("asOf 1: %v", got)
	}
	if got := visibleNames(2); !reflect.DeepEqual(got, []string{"Jessica", "Kenny", "Suey"}) {
		t.Fatalf("asOf 2: %v", got)
	}
	if got := visibleNames(3); !reflect.DeepEqual(got, []string{"Jessica", "Suey"}) {
		t.Fatalf("asOf 3: %v", got)
	}
	if got := visibleNames(5); !reflect.DeepEqual(got, []string{"Jessica", "Suey", "Elliss"}) {
		t.Fatalf("asOf 5: %v", got)
	}
	if got := visibleNames(6); !reflect.DeepEqual(got, []string{"Jessica", "Suey", "Ellis"}) {
		t.Fatalf("asOf 6: %v", got)
	}
}

func TestMakeArity(t *testing.T) {
	d := benchDesc(t)
	if _, err := Make(d, VInt(1)); err == nil {
		t.Fatal("expected arity error")
	}
	tp, err := Make(d, append([]Value{VInt(9)}, make([]Value, 13)...)...)
	if err != nil {
		t.Fatal(err)
	}
	if tp.InsTS() != Uncommitted || tp.DelTS() != NotDeleted {
		t.Fatalf("fresh tuple timestamps wrong: %s", tp)
	}
	if tp.Key(d) != 9 {
		t.Fatalf("key = %d, want 9", tp.Key(d))
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := benchDesc(t)
	tp := MustMake(d, append([]Value{VInt(1)}, make([]Value, 13)...)...)
	cl := tp.Clone()
	cl.Values[2].I64 = 999
	if tp.Values[2].I64 == 999 {
		t.Fatal("Clone aliases the original values")
	}
}

// Property: Encode/Decode round-trips arbitrary tuples on a randomised
// schema with all three field types.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	d := MustDesc("id",
		FieldDef{Name: "id", Type: Int64},
		FieldDef{Name: "a", Type: Int32},
		FieldDef{Name: "b", Type: Int64},
		FieldDef{Name: "c", Type: Char, Size: 12},
	)
	f := func(ins, del, id, b int64, a int32, s string) bool {
		if len(s) > 12 {
			s = s[:12]
		}
		// Char fields are zero-padded; embedded NULs or trailing NULs are not
		// representable, so strip them for the property.
		clean := make([]byte, 0, len(s))
		for i := 0; i < len(s); i++ {
			if s[i] != 0 {
				clean = append(clean, s[i])
			}
		}
		tp := MustMake(d, VInt(id), VInt(int64(a)), VInt(b), VStr(string(clean)))
		tp.SetInsTS(ins)
		tp.SetDelTS(del)
		got, err := Decode(d, tp.Encode(d))
		return err == nil && got.Equal(d, tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: visibility matches the declarative predicate from §3.3.
func TestQuickVisibilityPredicate(t *testing.T) {
	d := benchDesc(t)
	f := func(insRaw, delRaw uint16, asOfRaw uint16, uncommitted bool) bool {
		ins := Timestamp(insRaw%100) + 1
		del := Timestamp(delRaw % 100) // 0 means not deleted
		asOf := Timestamp(asOfRaw % 100)
		if uncommitted {
			ins = Uncommitted
		}
		tp := MustMake(d, append([]Value{VInt(1)}, make([]Value, 13)...)...)
		tp.SetInsTS(ins)
		tp.SetDelTS(del)
		want := ins != Uncommitted && ins <= asOf && (del == NotDeleted || del > asOf)
		return tp.VisibleAt(asOf) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTupleEncode(b *testing.B) {
	d := benchDesc(b)
	tp := MustMake(d, append([]Value{VInt(1)}, make([]Value, 13)...)...)
	buf := make([]byte, d.Width())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp.EncodeTo(d, buf)
	}
}

func BenchmarkTupleDecode(b *testing.B) {
	d := benchDesc(b)
	tp := MustMake(d, append([]Value{VInt(1)}, make([]Value, 13)...)...)
	buf := tp.Encode(d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(d, buf); err != nil {
			b.Fatal(err)
		}
	}
}
