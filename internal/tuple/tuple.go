// Package tuple defines the schema model and the fixed-width binary tuple
// representation used by every storage, execution, and network component.
//
// Following the HARBOR data model (§3.3 of the thesis), every stored tuple is
// internally augmented with an insertion timestamp and a deletion timestamp:
//
//	<insertion-time, deletion-time, a1, a2, ..., aN>
//
// The two timestamp fields are always fields 0 and 1 of the physical schema
// and are of type Int64. A deletion timestamp of 0 means "not deleted"; an
// insertion timestamp of Uncommitted marks a tuple written to disk by a
// transaction that has not yet committed (possible under a STEAL buffer
// policy) so that queries ignore it and recovery can identify it.
package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Timestamp is a logical commit time issued by the coordinator's timestamp
// authority. Timestamps are totally ordered, start at 1, and need not
// correspond to real time (§4.1).
type Timestamp = int64

const (
	// NotDeleted is the deletion-timestamp value of a live tuple.
	NotDeleted Timestamp = 0
	// Uncommitted is the special insertion-timestamp value carried by tuples
	// flushed to disk before their transaction committed. It is larger than
	// any valid timestamp so that predicate "insertion-time > T" must
	// explicitly exclude it (§5.4.1).
	Uncommitted Timestamp = math.MaxInt64
)

// FieldType enumerates the supported column types. All types have a fixed
// on-disk width so that pages can use fixed-size slots.
type FieldType uint8

const (
	// Int32 is a 4-byte signed integer (the thesis's benchmark field type).
	Int32 FieldType = iota + 1
	// Int64 is an 8-byte signed integer; timestamps and tuple ids use it.
	Int64
	// Char is a fixed-width byte string, padded with zero bytes.
	Char
)

// String returns the SQL-ish name of the type.
func (t FieldType) String() string {
	switch t {
	case Int32:
		return "INT32"
	case Int64:
		return "INT64"
	case Char:
		return "CHAR"
	default:
		return fmt.Sprintf("FieldType(%d)", uint8(t))
	}
}

// FieldDef describes one column of a schema.
type FieldDef struct {
	Name string
	Type FieldType
	// Size is the on-disk width in bytes for Char fields; ignored for the
	// integer types whose width is implied.
	Size int
}

// Width returns the number of bytes the field occupies in a stored tuple.
func (f FieldDef) Width() int {
	switch f.Type {
	case Int32:
		return 4
	case Int64:
		return 8
	case Char:
		return f.Size
	default:
		panic(fmt.Sprintf("tuple: unknown field type %d", f.Type))
	}
}

// Desc is a tuple schema: an ordered list of fields, a designated key field
// that uniquely identifies a logical tuple across replicas (§5.1 requires
// such an identifier to match tuples between a recovering site and its
// recovery buddies), and the two reserved timestamp columns.
type Desc struct {
	Fields []FieldDef
	// Key is the index of the unique tuple-identifier field. It must refer
	// to an Int64 field and defaults to the first user field (index 2).
	Key int
}

// Reserved physical field positions present in every schema.
const (
	FieldInsTS = 0 // insertion timestamp (Int64)
	FieldDelTS = 1 // deletion timestamp (Int64)
	// FieldFirstUser is the index of the first user-defined field.
	FieldFirstUser = 2
)

// NewDesc builds a schema from the user-visible fields, prepending the two
// timestamp columns. keyField names the user field that serves as the unique
// tuple identifier; it must be an Int64 field.
func NewDesc(keyField string, fields ...FieldDef) (*Desc, error) {
	all := make([]FieldDef, 0, len(fields)+2)
	all = append(all,
		FieldDef{Name: "ins_ts", Type: Int64},
		FieldDef{Name: "del_ts", Type: Int64},
	)
	all = append(all, fields...)
	key := -1
	for i, f := range all {
		if f.Type == Char && f.Size <= 0 {
			return nil, fmt.Errorf("tuple: char field %q needs a positive size", f.Name)
		}
		if i >= FieldFirstUser && f.Name == keyField {
			if f.Type != Int64 {
				return nil, fmt.Errorf("tuple: key field %q must be INT64, got %s", keyField, f.Type)
			}
			key = i
		}
	}
	if key < 0 {
		return nil, fmt.Errorf("tuple: key field %q not found", keyField)
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[i].Name == all[j].Name {
				return nil, fmt.Errorf("tuple: duplicate field name %q", all[i].Name)
			}
		}
	}
	return &Desc{Fields: all, Key: key}, nil
}

// MustDesc is NewDesc that panics on error; intended for tests and static
// schemas.
func MustDesc(keyField string, fields ...FieldDef) *Desc {
	d, err := NewDesc(keyField, fields...)
	if err != nil {
		panic(err)
	}
	return d
}

// Width returns the fixed number of bytes one tuple occupies on disk.
func (d *Desc) Width() int {
	w := 0
	for _, f := range d.Fields {
		w += f.Width()
	}
	return w
}

// NumFields returns the number of physical fields (including timestamps).
func (d *Desc) NumFields() int { return len(d.Fields) }

// FieldIndex returns the index of the named field, or -1.
func (d *Desc) FieldIndex(name string) int {
	for i, f := range d.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Offset returns the byte offset of field i within a stored tuple.
func (d *Desc) Offset(i int) int {
	off := 0
	for j := 0; j < i; j++ {
		off += d.Fields[j].Width()
	}
	return off
}

// Equal reports whether two schemas have identical field lists and key.
func (d *Desc) Equal(o *Desc) bool {
	if d.Key != o.Key || len(d.Fields) != len(o.Fields) {
		return false
	}
	for i := range d.Fields {
		if d.Fields[i] != o.Fields[i] {
			return false
		}
	}
	return true
}

// String renders the schema for diagnostics.
func (d *Desc) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range d.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Name, f.Type)
		if f.Type == Char {
			fmt.Fprintf(&b, "(%d)", f.Size)
		}
		if i == d.Key {
			b.WriteString(" KEY")
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Marshal encodes the schema (used in heap-file headers and on the wire).
func (d *Desc) Marshal() []byte {
	buf := make([]byte, 0, 8+16*len(d.Fields))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.Key))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Fields)))
	for _, f := range d.Fields {
		buf = append(buf, byte(f.Type))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Size))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Name)))
		buf = append(buf, f.Name...)
	}
	return buf
}

// UnmarshalDesc decodes a schema written by Marshal and returns the number
// of bytes consumed.
func UnmarshalDesc(buf []byte) (*Desc, int, error) {
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("tuple: schema header truncated")
	}
	key := int(int32(binary.LittleEndian.Uint32(buf)))
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	if n <= 0 || n > 1<<16 {
		return nil, 0, fmt.Errorf("tuple: implausible field count %d", n)
	}
	off := 8
	fields := make([]FieldDef, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < off+9 {
			return nil, 0, fmt.Errorf("tuple: schema field %d truncated", i)
		}
		ft := FieldType(buf[off])
		size := int(binary.LittleEndian.Uint32(buf[off+1:]))
		nameLen := int(binary.LittleEndian.Uint32(buf[off+5:]))
		off += 9
		if len(buf) < off+nameLen {
			return nil, 0, fmt.Errorf("tuple: schema field name %d truncated", i)
		}
		name := string(buf[off : off+nameLen])
		off += nameLen
		fields = append(fields, FieldDef{Name: name, Type: ft, Size: size})
	}
	d := &Desc{Fields: fields, Key: key}
	if key < 0 || key >= len(fields) {
		return nil, 0, fmt.Errorf("tuple: key index %d out of range", key)
	}
	return d, off, nil
}

// Value is a single field value. Exactly one of the branches is meaningful,
// selected by the schema's field type. Char values are stored unpadded.
type Value struct {
	I64 int64
	Str string
}

// VInt makes an integer Value (works for both Int32 and Int64 fields).
func VInt(v int64) Value { return Value{I64: v} }

// VStr makes a Char Value.
func VStr(s string) Value { return Value{Str: s} }

// Tuple is an in-memory tuple: one Value per physical field of its schema.
// Tuples are value types; Clone produces an independent copy.
type Tuple struct {
	Values []Value
}

// New allocates a tuple with all fields zero for the given schema.
func New(d *Desc) Tuple {
	return Tuple{Values: make([]Value, len(d.Fields))}
}

// Make builds a tuple from user field values (excluding the timestamps),
// with ins/del timestamps initialised to (Uncommitted, NotDeleted).
func Make(d *Desc, userValues ...Value) (Tuple, error) {
	if len(userValues) != len(d.Fields)-FieldFirstUser {
		return Tuple{}, fmt.Errorf("tuple: got %d values, schema has %d user fields",
			len(userValues), len(d.Fields)-FieldFirstUser)
	}
	t := New(d)
	t.Values[FieldInsTS] = VInt(Uncommitted)
	t.Values[FieldDelTS] = VInt(NotDeleted)
	copy(t.Values[FieldFirstUser:], userValues)
	return t, nil
}

// MustMake is Make that panics on arity errors.
func MustMake(d *Desc, userValues ...Value) Tuple {
	t, err := Make(d, userValues...)
	if err != nil {
		panic(err)
	}
	return t
}

// InsTS returns the insertion timestamp.
func (t Tuple) InsTS() Timestamp { return t.Values[FieldInsTS].I64 }

// DelTS returns the deletion timestamp.
func (t Tuple) DelTS() Timestamp { return t.Values[FieldDelTS].I64 }

// SetInsTS sets the insertion timestamp.
func (t Tuple) SetInsTS(ts Timestamp) { t.Values[FieldInsTS].I64 = ts }

// SetDelTS sets the deletion timestamp.
func (t Tuple) SetDelTS(ts Timestamp) { t.Values[FieldDelTS].I64 = ts }

// Key returns the unique tuple identifier given the schema.
func (t Tuple) Key(d *Desc) int64 { return t.Values[d.Key].I64 }

// VisibleAt reports whether the tuple is visible to a (historical or
// current-time) read as of time asOf under the §3.3 predicate: inserted at or
// before asOf, and not deleted or deleted after asOf. Uncommitted tuples are
// never visible.
func (t Tuple) VisibleAt(asOf Timestamp) bool {
	ins := t.InsTS()
	if ins == Uncommitted || ins > asOf {
		return false
	}
	del := t.DelTS()
	return del == NotDeleted || del > asOf
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	vs := make([]Value, len(t.Values))
	copy(vs, t.Values)
	return Tuple{Values: vs}
}

// Equal reports field-wise equality under the given schema.
func (t Tuple) Equal(d *Desc, o Tuple) bool {
	if len(t.Values) != len(o.Values) {
		return false
	}
	for i, f := range d.Fields {
		switch f.Type {
		case Char:
			if t.Values[i].Str != o.Values[i].Str {
				return false
			}
		default:
			if t.Values[i].I64 != o.Values[i].I64 {
				return false
			}
		}
	}
	return true
}

// String renders the tuple for diagnostics.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, v := range t.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		if v.Str != "" {
			fmt.Fprintf(&b, "%q", v.Str)
		} else if i == FieldInsTS && v.I64 == Uncommitted {
			b.WriteString("uncommitted")
		} else {
			fmt.Fprintf(&b, "%d", v.I64)
		}
	}
	b.WriteByte('>')
	return b.String()
}

// EncodeTo serialises the tuple into buf, which must be at least d.Width()
// bytes long. It returns the number of bytes written.
func (t Tuple) EncodeTo(d *Desc, buf []byte) int {
	off := 0
	for i, f := range d.Fields {
		switch f.Type {
		case Int32:
			binary.LittleEndian.PutUint32(buf[off:], uint32(int32(t.Values[i].I64)))
			off += 4
		case Int64:
			binary.LittleEndian.PutUint64(buf[off:], uint64(t.Values[i].I64))
			off += 8
		case Char:
			s := t.Values[i].Str
			if len(s) > f.Size {
				s = s[:f.Size]
			}
			copy(buf[off:off+f.Size], s)
			for j := off + len(s); j < off+f.Size; j++ {
				buf[j] = 0
			}
			off += f.Size
		}
	}
	return off
}

// Encode serialises the tuple into a fresh buffer.
func (t Tuple) Encode(d *Desc) []byte {
	buf := make([]byte, d.Width())
	t.EncodeTo(d, buf)
	return buf
}

// Decode deserialises a tuple from buf (at least d.Width() bytes).
func Decode(d *Desc, buf []byte) (Tuple, error) {
	if len(buf) < d.Width() {
		return Tuple{}, fmt.Errorf("tuple: buffer %d bytes, schema needs %d", len(buf), d.Width())
	}
	t := New(d)
	off := 0
	for i, f := range d.Fields {
		switch f.Type {
		case Int32:
			t.Values[i].I64 = int64(int32(binary.LittleEndian.Uint32(buf[off:])))
			off += 4
		case Int64:
			t.Values[i].I64 = int64(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		case Char:
			raw := buf[off : off+f.Size]
			end := len(raw)
			for end > 0 && raw[end-1] == 0 {
				end--
			}
			t.Values[i].Str = string(raw[:end])
			off += f.Size
		}
	}
	return t, nil
}
