package tuple

// Batch is a reusable slab of tuples — the unit of exchange of the
// batch-at-a-time pipeline. Operators fill it with NextBatch, the worker
// packs its rows into one wire frame, and recovery applies it in bulk.
// The backing array is retained across Reset so a steady-state pipeline
// recycles one allocation per stream, not one per row.
type Batch struct {
	rows []Tuple
}

// NewBatch returns a batch with capacity for n rows.
func NewBatch(n int) *Batch {
	return &Batch{rows: make([]Tuple, 0, n)}
}

// Reset empties the batch, keeping the backing array.
func (b *Batch) Reset() { b.rows = b.rows[:0] }

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return len(b.rows) }

// Row returns row i.
func (b *Batch) Row(i int) Tuple { return b.rows[i] }

// Append adds a row.
func (b *Batch) Append(t Tuple) { b.rows = append(b.rows, t) }

// Rows returns the filled prefix; valid until the next Reset.
func (b *Batch) Rows() []Tuple { return b.rows }

// Truncate keeps only the first n rows (used by in-place filtering).
func (b *Batch) Truncate(n int) { b.rows = b.rows[:n] }

// EncodeTo appends the batch's rows to buf in the fixed-width heap-page
// row encoding (d.Width() bytes per row, no per-row framing) and returns
// the extended buffer — the payload format of a wire.MsgTupleBatch frame.
func (b *Batch) EncodeTo(d *Desc, buf []byte) []byte {
	w := d.Width()
	off := len(buf)
	buf = append(buf, make([]byte, w*len(b.rows))...)
	for _, t := range b.rows {
		t.EncodeTo(d, buf[off:])
		off += w
	}
	return buf
}

// DecodeBatch appends the rows packed in raw (len(raw) must be an exact
// multiple of d.Width()) to the batch.
func (b *Batch) DecodeBatch(d *Desc, raw []byte) error {
	w := d.Width()
	for off := 0; off+w <= len(raw); off += w {
		t, err := Decode(d, raw[off:off+w])
		if err != nil {
			return err
		}
		b.rows = append(b.rows, t)
	}
	return nil
}
