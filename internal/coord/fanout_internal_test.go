package coord

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/tuple"
)

func TestFanEachPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out := fanEach(8, items, func(i, v int) int { return v * 2 })
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
}

func TestFanEachBoundsConcurrency(t *testing.T) {
	const limit = 4
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	items := make([]int, 64)
	fanEach(limit, items, func(int, int) struct{} {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", p, limit)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak concurrency %d: fan-out did not actually run in parallel", p)
	}
}

func TestFanEachSingleItemRunsInline(t *testing.T) {
	done := make(chan struct{}, 1)
	out := fanEach(0, []int{7}, func(_, v int) int {
		done <- struct{}{}
		return v + 1
	})
	<-done // would already have run synchronously
	if out[0] != 8 {
		t.Fatalf("out[0] = %d", out[0])
	}
}

func TestFanEachEmpty(t *testing.T) {
	if got := fanEach(4, nil, func(int, int) int { return 1 }); len(got) != 0 {
		t.Fatalf("expected empty result, got %v", got)
	}
}

// TestMergeScanPartsSameSite: after per-site failover one site can serve
// several parts (its own range plus a failed buddy's slice). The merge must
// produce one globally key-ordered run per site, identical for any arrival
// order of the parts.
func TestMergeScanPartsSameSite(t *testing.T) {
	desc := tuple.MustDesc("id", tuple.FieldDef{Name: "id", Type: tuple.Int64})
	spec := &catalog.TableSpec{ID: 1, Desc: desc}
	row := func(k int64) tuple.Tuple { return tuple.MustMake(desc, tuple.VInt(k)) }
	a := scanPart{site: 2, rows: []tuple.Tuple{row(30), row(10)}}
	b := scanPart{site: 1, rows: []tuple.Tuple{row(5)}}
	c := scanPart{site: 2, rows: []tuple.Tuple{row(20)}}
	want := []int64{5, 10, 20, 30}
	for _, order := range [][]scanPart{{a, b, c}, {c, b, a}, {b, c, a}} {
		got := mergeScanParts(append([]scanPart{}, order...), spec)
		if len(got) != len(want) {
			t.Fatalf("merged %d rows, want %d", len(got), len(want))
		}
		for i, r := range got {
			if r.Key(desc) != want[i] {
				keys := make([]int64, len(got))
				for j, g := range got {
					keys[j] = g.Key(desc)
				}
				t.Fatalf("merge order %v, want %v", keys, want)
			}
		}
	}
}
