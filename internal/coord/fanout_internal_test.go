package coord

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harbor/internal/expr"
)

func TestFanEachPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out := fanEach(8, items, func(i, v int) int { return v * 2 })
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
}

func TestFanEachBoundsConcurrency(t *testing.T) {
	const limit = 4
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	items := make([]int, 64)
	fanEach(limit, items, func(int, int) struct{} {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", p, limit)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak concurrency %d: fan-out did not actually run in parallel", p)
	}
}

func TestFanEachSingleItemRunsInline(t *testing.T) {
	done := make(chan struct{}, 1)
	out := fanEach(0, []int{7}, func(_, v int) int {
		done <- struct{}{}
		return v + 1
	})
	<-done // would already have run synchronously
	if out[0] != 8 {
		t.Fatalf("out[0] = %d", out[0])
	}
}

func TestFanEachEmpty(t *testing.T) {
	if got := fanEach(4, nil, func(int, int) int { return 1 }); len(got) != 0 {
		t.Fatalf("expected empty result, got %v", got)
	}
}

// TestScanSlotOrdering: the streaming merge emits slots in (serving site,
// range low) order — the deterministic order ScanStream promises. A site
// serving several disjoint ranges (its own plus a failed buddy's slice)
// must contribute them in ascending-Lo order regardless of plan order.
func TestScanSlotOrdering(t *testing.T) {
	slots := []scanSlot{
		{site: 2, rng: expr.KeyRange{Lo: 30, Hi: 40}},
		{site: 1, rng: expr.KeyRange{Lo: 5, Hi: 10}},
		{site: 2, rng: expr.KeyRange{Lo: 10, Hi: 30}},
	}
	sortScanSlots(slots)
	want := []scanSlot{
		{site: 1, rng: expr.KeyRange{Lo: 5, Hi: 10}},
		{site: 2, rng: expr.KeyRange{Lo: 10, Hi: 30}},
		{site: 2, rng: expr.KeyRange{Lo: 30, Hi: 40}},
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("slot %d = %+v, want %+v", i, slots[i], want[i])
		}
	}
}
