package coord_test

import (
	"sort"
	"testing"
	"time"

	"harbor/internal/coord"
	"harbor/internal/exec"
	"harbor/internal/expr"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

var benchDescFields = []tuple.FieldDef{
	{Name: "id", Type: tuple.Int64},
	{Name: "v", Type: tuple.Int32},
}

func testDesc() *tuple.Desc { return tuple.MustDesc("id", benchDescFields...) }

func newCluster(t *testing.T, protocol txn.Protocol, mode worker.RecoveryMode, workers int) *testutil.Cluster {
	t.Helper()
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     workers,
		Protocol:    protocol,
		Mode:        mode,
		GroupCommit: true,
		LockTimeout: time.Second,
		BaseDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.CreateReplicatedTable(1, testDesc(), 4); err != nil {
		t.Fatal(err)
	}
	return cl
}

func mk(id, v int64) tuple.Tuple {
	return tuple.MustMake(testDesc(), tuple.VInt(id), tuple.VInt(v))
}

func ids(rows []tuple.Tuple) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r.Key(testDesc())
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// allProtocolModes pairs each protocol with its natural recovery mode.
var allProtocolModes = []struct {
	name     string
	protocol txn.Protocol
	mode     worker.RecoveryMode
}{
	{"traditional-2PC", txn.TwoPC, worker.ARIES},
	{"optimized-2PC", txn.OptTwoPC, worker.HARBOR},
	{"canonical-3PC", txn.ThreePC, worker.ARIES},
	{"optimized-3PC", txn.OptThreePC, worker.HARBOR},
}

func TestCommitReplicatesToAllWorkers(t *testing.T) {
	for _, pm := range allProtocolModes {
		t.Run(pm.name, func(t *testing.T) {
			cl := newCluster(t, pm.protocol, pm.mode, 2)
			tx := cl.Coord.Begin()
			for i := int64(1); i <= 5; i++ {
				if err := tx.Insert(1, mk(i, i*10)); err != nil {
					t.Fatal(err)
				}
			}
			ts, err := tx.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if ts == 0 {
				t.Fatal("commit returned zero timestamp")
			}
			// Both replicas hold the data with the same commit timestamp.
			for i, w := range cl.Workers {
				rows, err := exec.Drain(exec.NewSeqScan(w.Store, exec.ScanSpec{Table: 1, Vis: exec.Current}))
				if err != nil {
					t.Fatal(err)
				}
				if len(rows) != 5 {
					t.Fatalf("worker %d has %d rows", i, len(rows))
				}
				for _, r := range rows {
					if r.InsTS() != ts {
						t.Fatalf("worker %d: ins ts %d, want %d", i, r.InsTS(), ts)
					}
				}
			}
			// The HWM advanced to the commit time.
			if got := cl.Coord.Authority.HWM(); got != ts {
				t.Fatalf("HWM = %d, want %d", got, ts)
			}
		})
	}
}

func TestVoteNoAbortsEverywhere(t *testing.T) {
	for _, pm := range allProtocolModes {
		t.Run(pm.name, func(t *testing.T) {
			cl := newCluster(t, pm.protocol, pm.mode, 2)
			// Baseline row so the table is non-empty.
			tx0 := cl.Coord.Begin()
			if err := tx0.Insert(1, mk(100, 0)); err != nil {
				t.Fatal(err)
			}
			if _, err := tx0.Commit(); err != nil {
				t.Fatal(err)
			}
			cl.Workers[1].FailNextPrepare()
			tx := cl.Coord.Begin()
			if err := tx.Insert(1, mk(101, 0)); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Commit(); err == nil {
				t.Fatal("commit should fail on NO vote")
			}
			for i, w := range cl.Workers {
				rows, err := exec.Drain(exec.NewSeqScan(w.Store, exec.ScanSpec{Table: 1, Vis: exec.SeeDeleted}))
				if err != nil {
					t.Fatal(err)
				}
				if len(rows) != 1 {
					t.Fatalf("worker %d kept aborted tuple (%d rows)", i, len(rows))
				}
			}
		})
	}
}

func TestExplicitAbortRollsBack(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("aborted rows visible: %v", rows)
	}
	// Outcome recorded as aborted.
	committed, _, ok := cl.Coord.Outcome(tx.ID())
	if !ok || committed {
		t.Fatal("outcome not recorded as aborted")
	}
}

func TestDistributedScanCurrentAndHistorical(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	var ts1 tuple.Timestamp
	for i := int64(1); i <= 3; i++ {
		tx := cl.Coord.Begin()
		if err := tx.Insert(1, mk(i, i)); err != nil {
			t.Fatal(err)
		}
		ts, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			ts1 = ts
		}
	}
	// Delete key 2.
	tx := cl.Coord.Begin()
	if err := tx.DeleteKey(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	rows, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(rows); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("current scan: %v", got)
	}
	// Time travel to just after the first insert.
	rows, err = cl.Coord.Scan(1, coord.QueryOptions{Historical: true, AsOf: ts1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(rows); len(got) != 1 || got[0] != 1 {
		t.Fatalf("historical scan: %v", got)
	}
	// Predicate pushdown.
	desc := testDesc()
	rows, err = cl.Coord.Scan(1, coord.QueryOptions{
		Pred: expr.True.And(expr.Term{Field: desc.FieldIndex("v"), Op: expr.GE, Value: tuple.VInt(3)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(rows); len(got) != 1 || got[0] != 3 {
		t.Fatalf("filtered scan: %v", got)
	}
}

func TestUpdateKeyAcrossReplicas(t *testing.T) {
	cl := newCluster(t, txn.OptTwoPC, worker.HARBOR, 2)
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(7, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := cl.Coord.Begin()
	if err := tx2.UpdateKey(1, 7, mk(7, 99)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Values[3].I64 != 99 {
		t.Fatalf("update not applied: %v", rows)
	}
	// Both workers agree (logical equivalence of replicas).
	for i, w := range cl.Workers {
		local, err := exec.Drain(exec.NewSeqScan(w.Store, exec.ScanSpec{Table: 1, Vis: exec.Current}))
		if err != nil {
			t.Fatal(err)
		}
		if len(local) != 1 || local[0].Values[3].I64 != 99 {
			t.Fatalf("worker %d: %v", i, local)
		}
	}
}

func TestWorkerCrashMidTransactionContinuesWithK1(t *testing.T) {
	// §4.3.5: if a worker crashes before commit processing, the coordinator
	// may commit with K-1 safety instead of aborting.
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 0)); err != nil {
		t.Fatal(err)
	}
	cl.Workers[1].Crash()
	if err := tx.Insert(1, mk(2, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows after K-1 commit: %v", rows)
	}
	if !cl.Coord.SiteDown(testutil.WorkerSiteID(1)) {
		t.Fatal("failure detector did not mark the site down")
	}
}

func TestTxnOutcomeService(t *testing.T) {
	cl := newCluster(t, txn.TwoPC, worker.ARIES, 2)
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 0)); err != nil {
		t.Fatal(err)
	}
	ts, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	committed, gotTS, ok := cl.Coord.Outcome(tx.ID())
	if !ok || !committed || gotTS != ts {
		t.Fatalf("outcome: %v %d %v", committed, gotTS, ok)
	}
	// Unknown transaction → no information (presumed abort).
	if _, _, ok := cl.Coord.Outcome(999999); ok {
		t.Fatal("unknown txn has an outcome")
	}
}

func TestReadOnlyTxnReleasesLocks(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Coord.Scan(1, coord.QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	// After EndRead no locks remain on any worker.
	for i, w := range cl.Workers {
		if w.Locks.NumLocked() != 0 {
			t.Fatalf("worker %d leaks %d locks after read", i, w.Locks.NumLocked())
		}
	}
}

func TestEmptyCommit(t *testing.T) {
	cl := newCluster(t, txn.OptTwoPC, worker.HARBOR, 2)
	tx := cl.Coord.Begin()
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
}

func TestConcurrentTransactionsDisjointTables(t *testing.T) {
	// The Figure 6-2 experiment shape: concurrent streams insert into
	// different tables to avoid conflicts.
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	const streams = 4
	for s := 1; s < streams; s++ {
		if err := cl.CreateReplicatedTable(int32(s+1), testDesc(), 4); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, streams)
	for s := 0; s < streams; s++ {
		go func(s int) {
			for i := 0; i < 20; i++ {
				tx := cl.Coord.Begin()
				if err := tx.Insert(int32(s+1), mk(int64(i), 0)); err != nil {
					errs <- err
					return
				}
				if _, err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(s)
	}
	for s := 0; s < streams; s++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < streams; s++ {
		rows, err := cl.Coord.Scan(int32(s+1), coord.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 20 {
			t.Fatalf("table %d has %d rows", s+1, len(rows))
		}
	}
	// Commit times are unique and the authority is quiescent.
	if got, want := cl.Coord.Authority.HWM(), cl.Coord.Authority.Now(); got != want {
		t.Fatalf("HWM %d lags Now %d at quiescence", got, want)
	}
}

func TestEvictWorkerCommitsWithK1(t *testing.T) {
	// §4.3.5's corollary: the coordinator deliberately fail-stops a
	// bottlenecking worker and proceeds with K-1 safety; the evicted worker
	// later recovers the committed changes.
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Coord.EvictWorker(testutil.WorkerSiteID(1)); err != nil {
		t.Fatal(err)
	}
	// The evicted worker actually fail-stopped.
	deadline := time.Now().Add(2 * time.Second)
	for !cl.Workers[1].Crashed() {
		if time.Now().After(deadline) {
			t.Fatal("evicted worker still alive")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows after K-1 commit = %d", len(rows))
	}
	// Evicting the last replica is refused.
	if err := cl.Coord.EvictWorker(testutil.WorkerSiteID(0)); err == nil {
		t.Fatal("evicting the last replica must be refused")
	}
}
