// Package coord implements the coordinator site of §4.1: it originates
// transactions, distributes update requests to every live replica, keeps
// the in-memory queue of logical update requests per transaction (required
// by recovery's join-pending protocol, §5.4.2), assigns commit timestamps
// through its timestamp authority, and drives all four commit protocols of
// §4.3. It also runs the recovery server of §6.1.7 on its listen port:
// recovering workers announce objects coming online, join pending
// transactions, and query transaction outcomes there.
package coord

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/comm"
	"harbor/internal/expr"
	"harbor/internal/obs"
	"harbor/internal/retry"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/wal"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

// Config configures a coordinator.
type Config struct {
	Site     catalog.SiteID
	Dir      string // coordinator log directory (2PC protocols)
	Addr     string // recovery-server listen address
	Protocol txn.Protocol
	Catalog  *catalog.Catalog
	// GroupCommit enables group commit on the coordinator log.
	GroupCommit bool
	GroupDelay  time.Duration
	// SyncDelay simulates per-fsync disk latency (benchmarks).
	SyncDelay time.Duration
	// FanoutLimit bounds the goroutines of one concurrent network round
	// (update distribution, commit phases, distributed scans). 0 uses
	// defaultFanoutLimit.
	FanoutLimit int
	// RoundTimeout bounds each per-replica call of a fan-out round; a
	// replica that misses the deadline is treated as fail-stopped (§4.3.5:
	// the coordinator may "crash" a bottlenecking worker and proceed with
	// K-1 safety). It must exceed the workers' lock-wait bound: an update
	// may legally wait a full lock timeout at a healthy replica before it
	// answers, and evicting on that wait mistakes contention for a crash.
	// 0 waits forever.
	RoundTimeout time.Duration
	// LockTimeout is the workers' deadlock-detection window (informational
	// at the coordinator, but enforced against RoundTimeout: New rejects a
	// configuration with 0 < RoundTimeout <= LockTimeout, which would read
	// a healthy replica's legal lock wait as fail-stop). 0 skips the check.
	LockTimeout time.Duration
	// DialTimeout bounds each worker dial (threaded to every site pool).
	// 0 uses comm.DefaultDialTimeout.
	DialTimeout time.Duration
}

// outcomeRec is the coordinator's memory of a finished transaction.
type outcomeRec struct {
	committed bool
	ts        tuple.Timestamp
}

// queuedUpdate is one entry of the coordinator's in-memory update-request
// queue (§4.1): the logical request plus the sites it was sent to, so that
// the §5.4.2 join replay never double-applies an update that already
// reached the recovering site.
type queuedUpdate struct {
	msg    *wire.Msg
	sentTo map[catalog.SiteID]bool
}

// ctxn is the coordinator-side transaction record. The mutex guards the
// queue and worker set; it is never held across a network call on the
// update path, so the join-pending replay can proceed while an update is
// blocked behind a recovering site's Phase 3 table locks.
type ctxn struct {
	mu      sync.Mutex
	id      txn.ID
	workers map[catalog.SiteID]*comm.Conn
	queue   []*queuedUpdate
	done    bool
	// sealed is set (under mu) the moment Commit or Abort snapshots the
	// worker set for its outcome rounds. From then on the §5.4.2 join
	// replay must not add this transaction to a newly-online site: the
	// site would receive the updates but sit outside the already-taken
	// round snapshot, so no outcome would ever reach it and the txn would
	// dangle there forever. Skipping is safe — replay runs while the
	// recovering site still holds the buddy table read locks, and a
	// transaction that reached its outcome rounds has either not yet
	// touched the locked table (nothing to replay) or had its outcome
	// applied at the buddy before the lock was granted, in which case the
	// locked catch-up copy already carried its rows.
	sealed bool
}

// Coordinator is one coordinator site.
type Coordinator struct {
	cfg       Config
	plan      *txn.Plan // the protocol's phase plan; drives Txn.Commit
	Authority *Authority
	ids       *txn.IDSource
	log       *wal.Manager // nil unless the protocol logs at the coordinator

	server *comm.Server

	mu       sync.Mutex
	pools    map[catalog.SiteID]*comm.Pool
	txns     map[txn.ID]*ctxn
	outcomes map[txn.ID]outcomeRec
	// objectOnline[table][site]: whether the replica participates in new
	// updates. Cleared when a site is detected down; restored by the
	// §5.4.2 join protocol.
	objectOnline map[int32]map[catalog.SiteID]bool
	siteDown     map[catalog.SiteID]bool
	// finalSurvivor[table]: when every replica of a table has left the
	// update set (K-safety exceeded), the site whose departure completed
	// the outage. Commits to the table require a live replica, so none can
	// postdate that departure: the final survivor's local state is a
	// complete copy, and recovery is allowed to rejoin it from its own
	// data even though no online buddy exists. Cleared as soon as any
	// replica comes back online.
	finalSurvivor map[int32]catalog.SiteID

	// Routing epoch (segment rebalancing): every distributed read registers
	// the placement version its plan resolved against. A placement change
	// drains reads planned below the new version before answering, so the
	// donor can purge the moved range without yanking it out from under
	// in-flight plans. Guarded by scanMu, never co.mu (drain sleeps).
	scanMu      sync.Mutex
	activeScans map[int64]int64 // registration id -> plan placement version
	scanSeq     int64

	// readiness caches per-object recovery state probed from sites that are
	// out of the update set (MsgPing replies carry the per-object bitmap).
	// It powers objectReadableFor: a recovering site's Ready objects — and,
	// for historical reads, objects whose copied-through watermark already
	// covers the asOf — serve queries long before the site's full catch-up
	// completes. Guarded by readyMu, never co.mu (probes do network I/O).
	readyMu   sync.Mutex
	readiness map[catalog.SiteID]*siteReadiness

	// Observability: every coordinator owns a registry (coord.*, wal.*, and
	// per-site comm.* metrics) and a per-transaction tracer; cmds mount them
	// at /debug/harbor, benches snapshot them, and the chaos harness dumps
	// timelines from them on invariant failures.
	reg      *obs.Registry
	trace    *obs.Tracer
	msgsSent *obs.Counter   // coord.msgs_sent (counting rule on Counters)
	commits  *obs.Counter   // coord.commits
	aborts   *obs.Counter   // coord.aborts
	commitNS *obs.Histogram // coord.commit.latency.ns (successful commits)

	// Distributed-scan stream instrumentation.
	scanRows    *obs.Counter // coord.scan.rows — rows received from workers
	scanBatches *obs.Counter // coord.scan.batches — batch frames received

	// Pushed-down aggregation instrumentation.
	aggRowsShipped *obs.Counter // coord.agg.rows_shipped — partial states received
	aggFrames      *obs.Counter // coord.agg.frames — MsgAggBatch frames received
	aggQueries     *obs.Counter // coord.agg.queries — Aggregate calls served
	aggFailovers   *obs.Counter // coord.agg.failovers — slots replanned mid-query
}

// New starts a coordinator (and its recovery server).
func New(cfg Config) (*Coordinator, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	plan := cfg.Protocol.Plan()
	if plan == nil {
		return nil, fmt.Errorf("coord: protocol %v has no phase plan", cfg.Protocol)
	}
	if cfg.RoundTimeout > 0 && cfg.LockTimeout > 0 && cfg.RoundTimeout <= cfg.LockTimeout {
		return nil, fmt.Errorf(
			"coord: RoundTimeout (%v) must exceed LockTimeout (%v): an update may legally wait a full lock timeout at a healthy replica, and a round deadline inside that window mistakes contention for a crash (set either to 0 to disable its bound)",
			cfg.RoundTimeout, cfg.LockTimeout)
	}
	co := &Coordinator{
		cfg:           cfg,
		plan:          plan,
		Authority:     NewAuthority(),
		ids:           txn.NewIDSource(int32(cfg.Site)),
		pools:         map[catalog.SiteID]*comm.Pool{},
		txns:          map[txn.ID]*ctxn{},
		outcomes:      map[txn.ID]outcomeRec{},
		objectOnline:  map[int32]map[catalog.SiteID]bool{},
		siteDown:      map[catalog.SiteID]bool{},
		finalSurvivor: map[int32]catalog.SiteID{},
		activeScans:   map[int64]int64{},
		readiness:     map[catalog.SiteID]*siteReadiness{},
		reg:           obs.NewRegistry(),
		trace:         obs.NewTracer(),
	}
	co.msgsSent = co.reg.Counter("coord.msgs_sent")
	co.commits = co.reg.Counter("coord.commits")
	co.aborts = co.reg.Counter("coord.aborts")
	co.commitNS = co.reg.Histogram("coord.commit.latency.ns")
	co.scanRows = co.reg.Counter("coord.scan.rows")
	co.scanBatches = co.reg.Counter("coord.scan.batches")
	co.aggRowsShipped = co.reg.Counter("coord.agg.rows_shipped")
	co.aggFrames = co.reg.Counter("coord.agg.frames")
	co.aggQueries = co.reg.Counter("coord.agg.queries")
	co.aggFailovers = co.reg.Counter("coord.agg.failovers")
	if plan.CoordLogs {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
		log, err := wal.Open(cfg.Dir, cfg.GroupDelay)
		if err != nil {
			return nil, err
		}
		log.SetNoGroup(!cfg.GroupCommit)
		log.SetSyncDelay(cfg.SyncDelay)
		log.Instrument(co.reg)
		co.log = log
	}
	srv, err := comm.Listen(cfg.Addr, comm.HandlerFunc(co.serveConn))
	if err != nil {
		if co.log != nil {
			co.log.Close()
		}
		return nil, err
	}
	co.server = srv
	return co, nil
}

// Addr returns the recovery server's address.
func (co *Coordinator) Addr() string { return co.server.Addr() }

// Close shuts the coordinator down.
func (co *Coordinator) Close() error {
	err := co.server.Close()
	co.mu.Lock()
	pools := co.pools
	co.pools = map[catalog.SiteID]*comm.Pool{}
	co.mu.Unlock()
	for _, p := range pools {
		p.CloseAll()
	}
	if co.log != nil {
		co.log.Close()
	}
	return err
}

// Protocol returns the configured commit protocol.
func (co *Coordinator) Protocol() txn.Protocol { return co.cfg.Protocol }

// Obs returns the coordinator's metrics registry (coord.*, wal.*, comm.*).
func (co *Coordinator) Obs() *obs.Registry { return co.reg }

// Trace returns the coordinator's per-transaction tracer.
func (co *Coordinator) Trace() *obs.Tracer { return co.trace }

// Counters returns (messages sent to workers, commits, aborts).
//
// Counting rule: msgsSent increments exactly once per *attempted* request
// send to a worker — whether or not the send or its response succeeds —
// and never for streamed per-tuple responses flowing back. Every send path
// (fan-out rounds, scans, per-txn dials, the join replay) follows this
// rule, so the counter is comparable across protocols and failure modes.
func (co *Coordinator) Counters() (int64, int64, int64) {
	return co.msgsSent.Load(), co.commits.Load(), co.aborts.Load()
}

// ForcedWrites returns coordinator-log forced writes (0 when logless).
func (co *Coordinator) ForcedWrites() int64 {
	if co.log == nil {
		return 0
	}
	fc, _, _ := co.log.Counters()
	return fc
}

// ResetCounters zeroes evaluation counters. The coordinator log and the
// per-site comm pools share the registry, so their counters reset too.
func (co *Coordinator) ResetCounters() {
	co.reg.Reset()
}

// pool returns (creating) the connection pool for a site. A site that
// rebooted on a new address gets a fresh pool; stale idle connections to
// the old incarnation are discarded.
func (co *Coordinator) pool(site catalog.SiteID) (*comm.Pool, error) {
	addr, ok := co.cfg.Catalog.SiteAddr(site)
	if !ok {
		return nil, fmt.Errorf("coord: unknown site %d", site)
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if p, ok := co.pools[site]; ok && p.Addr() == addr {
		return p, nil
	} else if ok {
		go p.CloseAll()
	}
	p := comm.NewPool(addr)
	p.SetDialTimeout(co.cfg.DialTimeout)
	p.Instrument(co.reg, strconv.Itoa(int(site)))
	co.pools[site] = p
	return p, nil
}

// borrowBackoff paces the fresh-dial retry below. The base is tiny — the
// stale-conn case it guards is common and benign — but a jittered pause
// still keeps a flapping site from being redialed in a tight loop by many
// concurrent borrowers at once.
var borrowBackoff = &retry.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond}

// borrow takes a connection from p and runs the first exchange on it via
// do. A transport error on the first exchange of a pooled (reused)
// connection usually means the conn went stale while idle — the peer
// restarted or closed it since Put — not that the site is down, so borrow
// retries exactly once on a fresh dial (after a short jittered backoff)
// before reporting failure. Errors on a fresh conn (or on the retry)
// propagate: those are real site failures. On success the returned conn
// has completed do; on error no conn is returned and any borrowed conns
// are closed.
func (co *Coordinator) borrow(p *comm.Pool, do func(*comm.Conn) error) (*comm.Conn, error) {
	conn, err := p.Get()
	if err != nil {
		return nil, err
	}
	err = do(conn)
	if err == nil {
		return conn, nil
	}
	if !conn.Reused() {
		conn.Close()
		return nil, err
	}
	conn.Close()
	borrowBackoff.Sleep(0)
	conn, err = p.Fresh()
	if err != nil {
		return nil, err
	}
	if err := do(conn); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// MarkDown records a site failure (connection-drop detection, §5.5). All
// its replicas leave the update set until they rejoin.
func (co *Coordinator) MarkDown(site catalog.SiteID) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.siteDown[site] {
		return
	}
	co.siteDown[site] = true
	for _, r := range co.cfg.Catalog.ReplicasOn(site) {
		m := co.objectOnline[r.Table]
		if m == nil {
			m = map[catalog.SiteID]bool{}
			co.objectOnline[r.Table] = m
		}
		m[site] = false
		// If this departure took the table's last replica offline, remember
		// the site: it alone holds every commit (see finalSurvivor).
		anyOnline := false
		for _, o := range co.cfg.Catalog.Replicas(r.Table) {
			if o.Site != site && co.objectIsOnlineLocked(r.Table, o.Site) {
				anyOnline = true
				break
			}
		}
		if !anyOnline {
			co.finalSurvivor[r.Table] = site
		}
	}
	// Idle connections to the dead incarnation are useless.
	if p, ok := co.pools[site]; ok {
		delete(co.pools, site)
		go p.CloseAll()
	}
}

// EvictWorker deliberately fail-stops a worker that is bottlenecking
// pending transactions (§4.3.5's corollary: "a coordinator can also 'crash'
// a worker site that is bottlenecking a particular pending transaction due
// to network lag, deadlock, or some other reason and proceed to commit the
// transaction with K-1-safety"). The evicted worker must run recovery to
// come back. The caller is responsible for not evicting below 1 live
// replica per table (the coordinator refuses if any table would lose its
// last online replica).
func (co *Coordinator) EvictWorker(site catalog.SiteID) error {
	// Refuse to destroy the last copy of anything.
	for _, r := range co.cfg.Catalog.ReplicasOn(site) {
		others := 0
		for _, o := range co.cfg.Catalog.Replicas(r.Table) {
			if o.Site != site && co.objectIsOnline(r.Table, o.Site) {
				others++
			}
		}
		if others == 0 {
			return fmt.Errorf("coord: evicting site %d would take table %d fully offline", site, r.Table)
		}
	}
	addr, ok := co.cfg.Catalog.SiteAddr(site)
	if ok {
		if c, err := comm.Dial(addr); err == nil {
			_, _ = c.Call(&wire.Msg{Type: wire.MsgCrash})
			c.Close()
		}
	}
	co.MarkDown(site)
	return nil
}

// SiteDown reports the failure-detector state for a site.
func (co *Coordinator) SiteDown(site catalog.SiteID) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.siteDown[site]
}

// objectIsOnline reports whether a replica participates in updates.
func (co *Coordinator) objectIsOnline(table int32, site catalog.SiteID) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.objectIsOnlineLocked(table, site)
}

func (co *Coordinator) objectIsOnlineLocked(table int32, site catalog.SiteID) bool {
	if m, ok := co.objectOnline[table]; ok {
		if v, ok := m[site]; ok {
			return v
		}
	}
	return !co.siteDown[site]
}

// objectFinalSurvivor reports whether site is the table's final survivor
// (last replica out of the update set while the table is fully offline).
func (co *Coordinator) objectFinalSurvivor(table int32, site catalog.SiteID) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	s, ok := co.finalSurvivor[table]
	return ok && s == site
}

// markObjectOnline restores a replica to the update set.
func (co *Coordinator) markObjectOnline(table int32, site catalog.SiteID) {
	co.mu.Lock()
	defer co.mu.Unlock()
	m := co.objectOnline[table]
	if m == nil {
		m = map[catalog.SiteID]bool{}
		co.objectOnline[table] = m
	}
	m[site] = true
	// The site itself is reachable again once any object announces, and
	// the table is no longer fully offline.
	co.siteDown[site] = false
	delete(co.finalSurvivor, table)
}

// siteReadiness is one cached per-object readiness probe of a site. objs
// holds one entry per segment of each object, sorted by range Lo (the order
// the worker's readiness list reports them).
type siteReadiness struct {
	at      time.Time
	live    bool
	ready   bool // aggregate all-objects-Ready bit
	objs    map[int32][]wire.ObjReady
	probing bool
}

const (
	// readinessTTL bounds probe traffic to a recovering site: continuous
	// queries share one probe per window instead of pinging per read.
	readinessTTL = 100 * time.Millisecond
	// readinessProbeTimeout keeps a dead site's dial from stalling read
	// planning: a site that cannot answer a ping this fast cannot serve
	// the read either.
	readinessProbeTimeout = 150 * time.Millisecond
)

// siteObjReadiness returns the (possibly cached) per-object readiness of a
// site. Probes are single-flight: while one caller refreshes, concurrent
// callers use the stale entry rather than piling dials onto the site.
func (co *Coordinator) siteObjReadiness(site catalog.SiteID) *siteReadiness {
	co.readyMu.Lock()
	r := co.readiness[site]
	if r == nil {
		r = &siteReadiness{}
		co.readiness[site] = r
	}
	if r.probing || time.Since(r.at) < readinessTTL {
		co.readyMu.Unlock()
		return r
	}
	r.probing = true
	co.readyMu.Unlock()

	var live, ready bool
	var objs []wire.ObjReady
	if addr, ok := co.cfg.Catalog.SiteAddr(site); ok {
		live, ready, objs = comm.PingObjects(addr, readinessProbeTimeout)
	}
	m := make(map[int32][]wire.ObjReady, len(objs))
	for _, o := range objs {
		m[o.Table] = append(m[o.Table], o)
	}
	nr := &siteReadiness{at: time.Now(), live: live, ready: ready, objs: m}
	co.readyMu.Lock()
	co.readiness[site] = nr
	co.readyMu.Unlock()
	return nr
}

// objectReadableFor reports whether a replica can serve a read. An online
// replica always can. A replica on a site that left the update set can still
// serve once its own recovery state says so: Ready objects serve anything,
// and an object mid historical-copy or catch-up serves a historical read
// asOf A the moment its copied-through watermark reaches A (the copied
// prefix is byte-identical to a healthy replica's view at A — later-window
// arrivals carry insertion stamps above A and deletions only gain stamps
// above A, so both are invisible to the read). This is what splits MTTR:
// time-to-first-query is when the first object covers the asOf, not when
// the whole site finishes catch-up.
func (co *Coordinator) objectReadableFor(table int32, site catalog.SiteID, historical bool, asOf tuple.Timestamp) bool {
	if co.objectIsOnline(table, site) {
		return true
	}
	r := co.siteObjReadiness(site)
	if !r.live {
		return false
	}
	segs, ok := r.objs[table]
	if !ok {
		// Pre-bitmap worker: fall back to the aggregate ready bit.
		return r.ready
	}
	for _, o := range segs {
		if !segmentServable(o, historical, asOf) {
			return false
		}
	}
	return true
}

// segmentServable reports whether one advertised segment state can serve a
// read. Ready serves anything. A recovering segment serves a historical
// read asOf A once its copied-through watermark reaches A; a segment in
// locked catch-up whose drained horizon reaches the read's start timestamp
// additionally serves current reads (the buddy table locks freeze commits,
// so the drained contents equal a healthy replica's).
func segmentServable(o wire.ObjReady, historical bool, asOf tuple.Timestamp) bool {
	st := worker.ObjState(o.State)
	if st == worker.ObjReady {
		return true
	}
	if asOf == 0 || tuple.Timestamp(o.CopiedThrough) < asOf {
		return false
	}
	if historical {
		return st == worker.ObjHistoricalCopy || st == worker.ObjCatchup
	}
	return st == worker.ObjCatchup
}

// readCandidates assembles the servable key-range candidates for planning a
// read of table: an online replica offers its whole catalog range, a
// replica on a recovering site offers exactly the segments whose advertised
// recovery state can serve this read. CoverTarget then composes a scan from
// Ready segments on the recovering site and healthy buddies for the rest —
// the routing half of segment-granular recovery.
func (co *Coordinator) readCandidates(table int32, historical bool, asOf tuple.Timestamp) []catalog.RangeCandidate {
	var cands []catalog.RangeCandidate
	for _, rep := range co.cfg.Catalog.Replicas(table) {
		if co.objectIsOnline(table, rep.Site) {
			cands = append(cands, catalog.RangeCandidate{Site: rep.Site, Table: rep.Table, Range: rep.Range})
			continue
		}
		r := co.siteObjReadiness(rep.Site)
		if !r.live {
			continue
		}
		segs, ok := r.objs[table]
		if !ok {
			if r.ready {
				cands = append(cands, catalog.RangeCandidate{Site: rep.Site, Table: rep.Table, Range: rep.Range})
			}
			continue
		}
		for _, o := range segs {
			if !segmentServable(o, historical, asOf) {
				continue
			}
			rng := expr.KeyRange{Lo: o.Lo, Hi: o.Hi}.Intersect(rep.Range)
			if rng.Empty() {
				continue
			}
			cands = append(cands, catalog.RangeCandidate{Site: rep.Site, Table: rep.Table, Range: rng})
		}
	}
	return cands
}

// registerScan enters a distributed read into the active-scan registry with
// the placement version its plan resolves against. Register before reading
// the catalog: any placement change that lands after registration carries a
// higher version and therefore drains on this read.
func (co *Coordinator) registerScan(planVer int64) int64 {
	co.scanMu.Lock()
	defer co.scanMu.Unlock()
	co.scanSeq++
	id := co.scanSeq
	co.activeScans[id] = planVer
	return id
}

// deregisterScan removes a finished read from the registry.
func (co *Coordinator) deregisterScan(id int64) {
	co.scanMu.Lock()
	delete(co.activeScans, id)
	co.scanMu.Unlock()
}

// drainTimeout bounds how long a placement change waits for reads planned
// against the previous placement. The drain is fail-open: correctness never
// depends on it — a scan that outlives the drain and reaches a purged range
// is refused with a placement-stale error and replans against the live
// catalog — draining just makes that refusal path rare.
const drainTimeout = 2 * time.Second

// drainBelow blocks until no active read was planned below ver, or timeout.
func (co *Coordinator) drainBelow(ver int64, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		stale := false
		co.scanMu.Lock()
		for _, v := range co.activeScans {
			if v < ver {
				stale = true
				break
			}
		}
		co.scanMu.Unlock()
		if !stale || time.Now().After(deadline) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Outcome returns the recorded outcome of a transaction. ok=false means the
// coordinator has no information (the caller applies presumed abort, §4.3).
func (co *Coordinator) Outcome(id txn.ID) (committed bool, ts tuple.Timestamp, ok bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	o, found := co.outcomes[id]
	if !found {
		return false, 0, false
	}
	return o.committed, o.ts, true
}

// RecordOutcomeForTest injects a transaction outcome, letting tests stage
// "the coordinator reached its commit point and then died" scenarios.
func (co *Coordinator) RecordOutcomeForTest(id txn.ID, committed bool, ts tuple.Timestamp) {
	co.recordOutcome(id, committed, ts)
}

func (co *Coordinator) recordOutcome(id txn.ID, committed bool, ts tuple.Timestamp) {
	co.mu.Lock()
	co.outcomes[id] = outcomeRec{committed: committed, ts: ts}
	co.mu.Unlock()
}

// serveConn handles the coordinator's server: recovery announcements,
// outcome queries, and time queries.
func (co *Coordinator) serveConn(c *comm.Conn) {
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		var resp *wire.Msg
		switch m.Type {
		case wire.MsgPing:
			resp = &wire.Msg{Type: wire.MsgOK}
		case wire.MsgCurrentTime:
			resp = &wire.Msg{Type: wire.MsgOK, TS: co.Authority.HWM()}
		case wire.MsgTxnOutcome:
			committed, ts, ok := co.Outcome(m.Txn)
			resp = &wire.Msg{Type: wire.MsgTxnState, TS: ts}
			if ok {
				resp.Flags = wire.FlagKnown
				if committed {
					resp.Flags |= wire.FlagYes
				}
			}
		case wire.MsgObjectStatus:
			resp = &wire.Msg{Type: wire.MsgOK}
			if co.objectIsOnline(m.Table, catalog.SiteID(m.Site)) {
				resp.Flags = wire.FlagYes
			}
			if co.objectFinalSurvivor(m.Table, catalog.SiteID(m.Site)) {
				resp.Flags |= wire.FlagSurvivor
			}
		case wire.MsgJoinSite:
			// Online node join, step 1: register the cold site's address and
			// hand back an advisory assignment (currently the full key range
			// of every table — partial initial assignment is a planner
			// refinement, see ROADMAP). The joiner streams each assignment in
			// via core.Migrate, whose horizon flip lands as MsgPlacementChange.
			co.cfg.Catalog.AddSite(catalog.SiteID(m.Site), m.Text)
			var objs []wire.ObjReady
			full := expr.FullKeyRange()
			for _, tb := range co.cfg.Catalog.Tables() {
				objs = append(objs, wire.ObjReady{Table: tb, Lo: full.Lo, Hi: full.Hi})
			}
			resp = &wire.Msg{Type: wire.MsgOK,
				TS: tuple.Timestamp(co.cfg.Catalog.PlacementVersion()), Objs: objs}
		case wire.MsgPlacementChange:
			rep := catalog.Replica{Site: catalog.SiteID(m.Site), Table: m.Table,
				Range: expr.KeyRange{Lo: m.KeyLo, Hi: m.KeyHi}, SegPages: m.SegPages}
			var ver int64
			var err error
			if m.Yes() {
				ver, err = co.cfg.Catalog.AddReplicaRange(rep)
			} else {
				ver, err = co.cfg.Catalog.RemoveReplicaRange(rep.Site, rep.Table, rep.Range)
			}
			if err != nil {
				resp = &wire.Msg{Type: wire.MsgErr, Text: err.Error()}
			} else {
				// Reads planned against the old placement finish before the
				// caller proceeds (to purge a donor range, for a remove).
				co.drainBelow(ver, drainTimeout)
				resp = &wire.Msg{Type: wire.MsgOK, TS: tuple.Timestamp(ver)}
			}
		case wire.MsgObjectOnline:
			if err := co.handleObjectOnline(catalog.SiteID(m.Site), m.Table); err != nil {
				resp = &wire.Msg{Type: wire.MsgErr, Text: err.Error()}
			} else {
				resp = &wire.Msg{Type: wire.MsgAllDone}
			}
		default:
			resp = &wire.Msg{Type: wire.MsgErr, Text: fmt.Sprintf("coord: unexpected %v", m.Type)}
		}
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// handleObjectOnline implements the coordinator side of Figure 5-4's
// join-pending protocol: mark the replica online so all subsequent updates
// include it, replay each pending transaction's queued updates that touch
// the object, and answer "all done". Distinct pending transactions replay
// concurrently (each on its own dedicated connection to the recovering
// site); within one transaction the queued updates stay strictly ordered.
func (co *Coordinator) handleObjectOnline(site catalog.SiteID, table int32) error {
	// Flag first under the lock (so no new update can miss the site), then
	// snapshot pending transactions.
	co.markObjectOnline(table, site)
	co.mu.Lock()
	pending := make([]*ctxn, 0, len(co.txns))
	for _, t := range co.txns {
		pending = append(pending, t)
	}
	co.mu.Unlock()

	fanEach(co.fanoutLimit(), pending, func(_ int, t *ctxn) struct{} {
		co.replayQueueTo(t, site, table)
		return struct{}{}
	})
	return nil
}

// replayQueueTo sends one pending transaction's queued updates for the
// recovering table to the newly-online site (§5.4.2). Holding t.mu for the
// replay keeps the per-site request order intact: later distributes to this
// transaction wait here and therefore send to the new site only after the
// queue replay finished. The site's conn may already be claimed by an
// in-flight fan-out round (rounds run with t.mu released), so each replay
// Call holds the conn's Reserve claim — blocking until the round's own
// exchange on that conn completes — rather than racing its Recv. That
// cannot deadlock: a round never takes t.mu while holding claims.
func (co *Coordinator) replayQueueTo(t *ctxn, site catalog.SiteID, table int32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done || t.sealed {
		return
	}
	// Relevant if any queued update touches the recovering table, did not
	// already reach the recovering site, and falls inside a range the site
	// actually replicates (a partial replica must not receive keys outside
	// its segments; with full replication the filter is a no-op).
	var replay []*queuedUpdate
	for _, q := range t.queue {
		if q.msg.Table != table || q.sentTo[site] {
			continue
		}
		if key, ok := co.updateKey(q.msg); ok && !co.siteCoversKey(site, table, key) {
			continue
		}
		replay = append(replay, q)
	}
	if len(replay) == 0 {
		return
	}
	if _, ok := t.workers[site]; !ok {
		if _, err := co.dialWorkerForTxn(t, site); err != nil {
			return // site died again; it will re-run recovery (§5.5.1)
		}
	}
	conn := t.workers[site]
	for _, q := range replay {
		conn.Reserve()
		resp, err := conn.Call(q.msg)
		conn.Release()
		co.msgsSent.Inc()
		if err == nil {
			err = resp.Err()
		}
		if err != nil {
			delete(t.workers, site)
			conn.Close()
			return
		}
		q.sentTo[site] = true
	}
}

// updateKey extracts the routing key of a queued logical update. ok=false
// means the message type carries no key (replay it unconditionally).
func (co *Coordinator) updateKey(m *wire.Msg) (int64, bool) {
	switch m.Type {
	case wire.MsgInsert:
		spec, ok := co.cfg.Catalog.Table(m.Table)
		if !ok {
			return 0, false
		}
		return wire.ToTuple(m.Tuple).Key(spec.Desc), true
	case wire.MsgDeleteKey, wire.MsgUpdateKey:
		return m.Key, true
	}
	return 0, false
}

// siteCoversKey reports whether any replica of table on site contains key.
func (co *Coordinator) siteCoversKey(site catalog.SiteID, table int32, key int64) bool {
	for _, rep := range co.cfg.Catalog.Replicas(table) {
		if rep.Site == site && rep.Range.Contains(key) {
			return true
		}
	}
	return false
}

// dialWorkerForTxn opens a dedicated connection to a worker for one
// transaction and sends BEGIN. Caller holds t.mu.
func (co *Coordinator) dialWorkerForTxn(t *ctxn, site catalog.SiteID) (*comm.Conn, error) {
	p, err := co.pool(site)
	if err != nil {
		return nil, err
	}
	var resp *wire.Msg
	conn, err := co.borrow(p, func(c *comm.Conn) error {
		r, err := c.Call(&wire.Msg{Type: wire.MsgBegin, Txn: t.id})
		co.msgsSent.Inc()
		resp = r
		return err
	})
	if err != nil {
		co.MarkDown(site)
		return nil, err
	}
	if resp.Type != wire.MsgOK {
		conn.Close()
		return nil, fmt.Errorf("coord: begin rejected: %v", resp.Text)
	}
	t.workers[site] = conn
	return conn, nil
}
