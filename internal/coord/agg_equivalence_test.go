package coord_test

import (
	"testing"
	"time"

	"harbor/internal/coord"
	"harbor/internal/exec"
	"harbor/internal/expr"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// aggPlans returns the aggregate shapes the equivalence tests sweep: a
// grouped all-functions plan (Avg included, so integer-division remainders
// are on the line), a group-by-key plan, and a global (GroupField = -1)
// plan.
func aggPlans() map[string]exec.AggPlan {
	desc := testDesc()
	idf, vf := desc.FieldIndex("id"), desc.FieldIndex("v")
	all := []exec.AggSpec{
		{Fn: exec.Count},
		{Fn: exec.Sum, Field: idf},
		{Fn: exec.Min, Field: idf},
		{Fn: exec.Max, Field: idf},
		{Fn: exec.Avg, Field: idf},
	}
	return map[string]exec.AggPlan{
		"group-by-v":  {GroupField: vf, Aggs: all},
		"group-by-id": {GroupField: idf, Aggs: []exec.AggSpec{{Fn: exec.Count}, {Fn: exec.Sum, Field: vf}, {Fn: exec.Avg, Field: vf}}},
		"global":      {GroupField: -1, Aggs: all},
	}
}

// localAgg is the single-site reference: one HashAgg over the already
// merged scan rows.
func localAgg(t *testing.T, rows []tuple.Tuple, plan exec.AggPlan) []tuple.Tuple {
	t.Helper()
	out, err := exec.Drain(&exec.HashAgg{
		Child:      &exec.SliceScan{Schema: testDesc(), Rows: rows},
		GroupField: plan.GroupField,
		Aggs:       plan.Aggs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAggregateEquivalence: pushed-down aggregation must be byte-identical
// to a single-site HashAgg over the merged scan — and to the NoPushdown
// ablation — across replicated/partitioned × current/historical ×
// predicate/no-predicate × grouped/global shapes.
func TestAggregateEquivalence(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 4)
	if err := cl.CreateRangePartitionedTable(2, testDesc(), 4, 250, 500, 750); err != nil {
		t.Fatal(err)
	}
	const n = 1000
	asOf1 := seedMixed(t, cl, 1, 42, n)
	asOf2 := seedMixed(t, cl, 2, 43, n)

	desc := testDesc()
	pred := expr.True.And(expr.Term{Field: desc.FieldIndex("v"), Op: expr.GE, Value: tuple.VInt(200)})
	nothing := expr.True.And(expr.Term{Field: desc.FieldIndex("v"), Op: expr.GT, Value: tuple.VInt(1 << 40)})
	cases := []struct {
		label string
		table int32
		opt   coord.QueryOptions
	}{
		{"replicated/current", 1, coord.QueryOptions{}},
		{"replicated/historical", 1, coord.QueryOptions{Historical: true, AsOf: asOf1}},
		{"replicated/predicate", 1, coord.QueryOptions{Pred: pred}},
		{"partitioned/current", 2, coord.QueryOptions{}},
		{"partitioned/historical", 2, coord.QueryOptions{Historical: true, AsOf: asOf2}},
		{"partitioned/predicate", 2, coord.QueryOptions{Pred: pred}},
		{"partitioned/empty", 2, coord.QueryOptions{Pred: nothing}},
	}
	for _, tc := range cases {
		rows, err := cl.Coord.Scan(tc.table, tc.opt)
		if err != nil {
			t.Fatalf("%s: scan: %v", tc.label, err)
		}
		if len(rows) == 0 && tc.label != "partitioned/empty" {
			t.Fatalf("%s: scan returned nothing; case is vacuous", tc.label)
		}
		for name, plan := range aggPlans() {
			label := tc.label + "/" + name
			want := localAgg(t, rows, plan)
			got, err := cl.Coord.Aggregate(tc.table, tc.opt, plan)
			if err != nil {
				t.Fatalf("%s: pushdown aggregate: %v", label, err)
			}
			requireSameRows(t, label+"/pushdown", got, want)
			ablOpt := tc.opt
			ablOpt.NoPushdown = true
			abl, err := cl.Coord.Aggregate(tc.table, ablOpt, plan)
			if err != nil {
				t.Fatalf("%s: ablation aggregate: %v", label, err)
			}
			requireSameRows(t, label+"/ablation", abl, want)
			if tc.label == "partitioned/empty" && len(got) != 0 {
				t.Fatalf("%s: empty input produced %d groups", label, len(got))
			}
		}
	}
}

// TestAggregateFailoverEquivalence: killing the serving site while a
// pushed-down aggregate is in flight must not lose or double-count any
// group — the failed slot's buffered partial states are discarded and its
// whole key range is refetched from a buddy. The result is compared
// against an identically-seeded healthy cluster; a second aggregate
// against the degraded cluster covers the site-down-at-launch path.
func TestAggregateFailoverEquivalence(t *testing.T) {
	const n, seed = 2000, 77
	killed := newCluster(t, txn.OptThreePC, worker.HARBOR, 3)
	healthy := newCluster(t, txn.OptThreePC, worker.HARBOR, 3)
	seedMixed(t, killed, 1, seed, n)
	seedMixed(t, healthy, 1, seed, n)

	desc := testDesc()
	plan := exec.AggPlan{GroupField: desc.FieldIndex("v"), Aggs: []exec.AggSpec{
		{Fn: exec.Count},
		{Fn: exec.Sum, Field: desc.FieldIndex("id")},
		{Fn: exec.Avg, Field: desc.FieldIndex("id")},
	}}
	want, err := healthy.Coord.Aggregate(1, coord.QueryOptions{}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("healthy aggregate returned nothing; test is vacuous")
	}

	// The replicated table reads from the lowest live site: worker 0. Hold
	// its dispatch long enough that the crash lands while the aggregate's
	// slot exchange is in flight, forcing the mid-stream failover path.
	killed.Workers[0].SetSimMsgDelay(100 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(30 * time.Millisecond)
		killed.Workers[0].Crash()
	}()
	got, err := killed.Coord.Aggregate(1, coord.QueryOptions{}, plan)
	<-done
	if err != nil {
		t.Fatalf("aggregate with mid-flight crash: %v", err)
	}
	requireSameRows(t, "mid-flight kill", got, want)

	// Worker 0 is down (and by now marked down): the next aggregate plans
	// onto the survivors from the start.
	after, err := killed.Coord.Aggregate(1, coord.QueryOptions{}, plan)
	if err != nil {
		t.Fatalf("aggregate after crash: %v", err)
	}
	requireSameRows(t, "post-kill aggregate", after, want)
}
