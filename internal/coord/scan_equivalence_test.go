package coord_test

import (
	"math/rand"
	"reflect"
	"testing"

	"harbor/internal/coord"
	"harbor/internal/expr"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// seedMixed drives a deterministic mixed history against one table: n
// inserts (shuffled key order, seeded values) in multi-row transactions,
// then a deletion and an update wave. It returns the timestamp right after
// the insert wave, for time-travel queries. Same seed → byte-identical
// table contents and timestamps, also across clusters.
func seedMixed(t *testing.T, cl *testutil.Cluster, table int32, seed int64, n int) tuple.Timestamp {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := rng.Perm(n)
	var mid tuple.Timestamp
	commitBatch := func(apply func(tx *coord.Txn, i int) error, lo, hi int) {
		t.Helper()
		tx := cl.Coord.Begin()
		for i := lo; i < hi; i++ {
			if err := apply(tx, i); err != nil {
				t.Fatal(err)
			}
		}
		ts, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		mid = ts
	}
	const per = 100
	for lo := 0; lo < n; lo += per {
		hi := min(lo+per, n)
		commitBatch(func(tx *coord.Txn, i int) error {
			return tx.Insert(table, mk(int64(keys[i]), rng.Int63n(1000)))
		}, lo, hi)
	}
	asOf := mid // history up to here must be reproducible by time travel
	for lo := 0; lo < n/7; lo += per {
		hi := min(lo+per, n/7)
		commitBatch(func(tx *coord.Txn, i int) error {
			return tx.DeleteKey(table, int64(i*7))
		}, lo, hi)
	}
	for lo := 0; lo < n/5; lo += per {
		hi := min(lo+per, n/5)
		commitBatch(func(tx *coord.Txn, i int) error {
			if (i*5)%7 == 0 {
				return nil // deleted above
			}
			return tx.UpdateKey(table, int64(i*5), mk(int64(i*5), -int64(i)))
		}, lo, hi)
	}
	return asOf
}

// requireSameRows asserts two scans produced identical rows in identical
// order — the batched pipeline's equivalence contract.
func requireSameRows(t *testing.T, label string, batched, legacy []tuple.Tuple) {
	t.Helper()
	if len(batched) != len(legacy) {
		t.Fatalf("%s: batched scan returned %d rows, tuple-at-a-time %d", label, len(batched), len(legacy))
	}
	for i := range batched {
		if !reflect.DeepEqual(batched[i].Values, legacy[i].Values) {
			t.Fatalf("%s: row %d differs:\n  batched %v\n  legacy  %v",
				label, i, batched[i].Values, legacy[i].Values)
		}
	}
}

// TestScanFramingEquivalence: for every query shape, the batched wire
// framing and the legacy per-tuple framing must deliver identical rows in
// the identical deterministic (site, key) order — on a fully replicated
// table (single slot) and on a 4-way range-partitioned table (k-way merge).
func TestScanFramingEquivalence(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 4)
	if err := cl.CreateRangePartitionedTable(2, testDesc(), 4, 250, 500, 750); err != nil {
		t.Fatal(err)
	}
	const n = 1000
	asOf1 := seedMixed(t, cl, 1, 42, n)
	asOf2 := seedMixed(t, cl, 2, 43, n)

	desc := testDesc()
	pred := expr.True.And(expr.Term{Field: desc.FieldIndex("v"), Op: expr.GE, Value: tuple.VInt(200)})
	cases := []struct {
		label string
		table int32
		opt   coord.QueryOptions
	}{
		{"replicated/current", 1, coord.QueryOptions{}},
		{"replicated/historical", 1, coord.QueryOptions{Historical: true, AsOf: asOf1}},
		{"replicated/predicate", 1, coord.QueryOptions{Pred: pred}},
		{"partitioned/current", 2, coord.QueryOptions{}},
		{"partitioned/historical", 2, coord.QueryOptions{Historical: true, AsOf: asOf2}},
		{"partitioned/predicate", 2, coord.QueryOptions{Pred: pred}},
	}
	for _, tc := range cases {
		batched, err := cl.Coord.Scan(tc.table, tc.opt)
		if err != nil {
			t.Fatalf("%s: batched scan: %v", tc.label, err)
		}
		if len(batched) == 0 {
			t.Fatalf("%s: scan returned nothing; case is vacuous", tc.label)
		}
		legacyOpt := tc.opt
		legacyOpt.TupleAtATime = true
		legacy, err := cl.Coord.Scan(tc.table, legacyOpt)
		if err != nil {
			t.Fatalf("%s: tuple-at-a-time scan: %v", tc.label, err)
		}
		requireSameRows(t, tc.label, batched, legacy)
	}
}

// TestScanFailoverEquivalence: a batched scan whose serving site is killed
// from the sink — after the first delivered batch — must still produce the
// exact rows a tuple-at-a-time scan of an identically-seeded healthy
// cluster produces: failover resumes the remaining key range from a buddy
// without dropping, duplicating, or reordering anything. A second scan
// against the already-degraded cluster covers the site-down-at-launch path
// of the same replanning machinery.
func TestScanFailoverEquivalence(t *testing.T) {
	const n, seed = 2000, 77
	killed := newCluster(t, txn.OptThreePC, worker.HARBOR, 3)
	healthy := newCluster(t, txn.OptThreePC, worker.HARBOR, 3)
	seedMixed(t, killed, 1, seed, n)
	seedMixed(t, healthy, 1, seed, n)

	want, err := healthy.Coord.Scan(1, coord.QueryOptions{TupleAtATime: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("healthy scan returned nothing; test is vacuous")
	}

	// The replicated table reads from the lowest live site: worker 0.
	crashed := false
	var got []tuple.Tuple
	err = killed.Coord.ScanStream(1, coord.QueryOptions{}, func(rows []tuple.Tuple) error {
		got = append(got, rows...)
		if !crashed {
			crashed = true
			killed.Workers[0].Crash()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan with mid-stream crash: %v", err)
	}
	requireSameRows(t, "mid-stream kill", got, want)

	// Worker 0 is now down and (depending on timing) marked down: the next
	// scan plans or fails over onto the survivors from the start.
	after, err := killed.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatalf("scan after crash: %v", err)
	}
	requireSameRows(t, "post-kill scan", after, want)
}
