// Coordinator fan-out: every network round the coordinator drives — update
// distribution (§4.1), the commit/abort phases (§4.3), distributed scans,
// and the §5.4.2 join replay — talks to its targets concurrently, so a
// round costs the *slowest* replica's RTT instead of the sum (the cost
// model of §4.3 and Table 4.1 assumes exactly this). Each target uses a
// dedicated per-transaction comm.Conn (or a pool connection checked out for
// the scan), so rounds of different transactions never share a socket.
// Within one transaction a per-worker conn IS shared — the §5.4.2 join
// replay sends on it too — so every request/response exchange holds the
// conn's Reserve claim from send to receive (see comm.Conn.Reserve).
package coord

import (
	"sync"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/comm"
	"harbor/internal/obs"
	"harbor/internal/wire"
)

// defaultFanoutLimit bounds in-flight goroutines per round when
// Config.FanoutLimit is unset. Rounds with more targets than the limit
// still complete; excess targets queue for a slot.
const defaultFanoutLimit = 32

// fanTarget is one destination of a coordinator round: a site and the
// dedicated connection the round may use.
type fanTarget struct {
	site catalog.SiteID
	conn *comm.Conn
}

// fanResult is one target's outcome. err != nil always means the transport
// failed (the §5.5 fail-stop signal) — logical errors arrive as MsgErr
// responses in resp.
type fanResult struct {
	site catalog.SiteID
	conn *comm.Conn
	resp *wire.Msg
	err  error
}

// fanEach runs f(i, items[i]) for every item concurrently, with at most
// limit goroutines in flight, and returns the results in item order. A
// single item runs inline (no goroutine) so the uncontended path — one
// replica, one site — pays nothing for the machinery.
func fanEach[T, R any](limit int, items []T, f func(int, T) R) []R {
	out := make([]R, len(items))
	switch len(items) {
	case 0:
		return out
	case 1:
		out[0] = f(0, items[0])
		return out
	}
	if limit < 1 {
		limit = defaultFanoutLimit
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := range items {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			out[i] = f(i, items[i])
		}(i)
	}
	wg.Wait()
	return out
}

func (co *Coordinator) fanoutLimit() int {
	if co.cfg.FanoutLimit > 0 {
		return co.cfg.FanoutLimit
	}
	return defaultFanoutLimit
}

// round fans one request out to every target and collects the responses in
// target order, pipelined: every request is written before any response is
// read, so all replicas process the round concurrently and the round costs
// ~max(RTT_i) instead of sum(RTT_i). Pipelining rather than spawning a
// goroutine per target keeps the hot path allocation- and scheduler-free —
// on a single-core coordinator goroutines would serialize anyway, while
// the overlap here comes from the replicas, which is where the paper's
// cost model puts it. mk builds the request per target (returning one
// shared message for all targets is fine; sends are sequential and only
// read it). Every attempted send counts once toward msgsSent, success or
// not — the counting rule documented on Counters().
//
// Each conn is Reserved for the whole send→receive exchange: the §5.4.2
// join replay shares a transaction's per-worker conns, and without the
// claim its request/response pair could interleave with ours and the two
// exchanges would swap responses.
func (co *Coordinator) round(targets []fanTarget, mk func(fanTarget) *wire.Msg) []fanResult {
	start := time.Now()
	var mtype wire.Type
	out := make([]fanResult, len(targets))
	// Send phase: claim each connection, then pipeline the request onto it.
	for i, t := range targets {
		out[i] = fanResult{site: t.site, conn: t.conn}
		t.conn.Reserve()
		co.msgsSent.Inc()
		m := mk(t)
		mtype = m.Type
		out[i].err = t.conn.Send(m)
	}
	// Collect phase: responses arrive independently per connection; waiting
	// on target 0 while target 1's response sits buffered costs nothing.
	for i, t := range targets {
		if out[i].err == nil {
			if d := co.cfg.RoundTimeout; d > 0 {
				out[i].resp, out[i].err = t.conn.RecvTimeout(d)
			} else {
				out[i].resp, out[i].err = t.conn.Recv()
			}
		}
		t.conn.Release()
	}
	if len(targets) > 0 {
		co.reg.Histogram(obs.Name("coord.round.latency",
			"msg", mtype.String(), "proto", co.cfg.Protocol.String())).
			Observe(time.Since(start).Nanoseconds())
	}
	return out
}
