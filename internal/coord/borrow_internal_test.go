package coord

import (
	"sync/atomic"
	"testing"
	"time"

	"harbor/internal/comm"
	"harbor/internal/wire"
)

// TestBorrowRetriesStalePooledConn reproduces the stale-pool hazard:
// Pool.Get hands out an idle conn whose peer closed it since Put (worker
// restarted, server-side idle sweep). The first exchange fails at the
// transport level even though the site is live; borrow must retry once on
// a fresh dial instead of reporting failure (which callers translate into
// MarkDown — taking a healthy site's replicas out of the update set).
func TestBorrowRetriesStalePooledConn(t *testing.T) {
	var served atomic.Int64
	handlerDone := make(chan struct{}, 8)
	// Each conn answers exactly one call, then the handler returns and the
	// server closes the conn — so a conn Put back after one use is dead by
	// the time the pool hands it out again.
	s, err := comm.Listen("127.0.0.1:0", comm.HandlerFunc(func(c *comm.Conn) {
		defer func() { handlerDone <- struct{}{} }()
		m, err := c.Recv()
		if err != nil {
			return
		}
		served.Add(1)
		_ = c.Send(&wire.Msg{Type: wire.MsgOK, Text: m.Text})
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	co := &Coordinator{}
	p := comm.NewPool(s.Addr())
	defer p.CloseAll()

	call := func(c *comm.Conn) error {
		_, err := c.Call(&wire.Msg{Type: wire.MsgBegin})
		return err
	}

	// Populate the pool with a conn the server will have closed.
	conn, err := co.borrow(p, call)
	if err != nil {
		t.Fatalf("first borrow: %v", err)
	}
	p.Put(conn)
	// Wait for the server to abandon (and so close) the pooled conn.
	select {
	case <-handlerDone:
	case <-time.After(2 * time.Second):
		t.Fatal("server handler never finished")
	}

	// The pooled conn is stale; borrow must succeed via a fresh dial.
	conn, err = co.borrow(p, call)
	if err != nil {
		t.Fatalf("borrow with stale pooled conn: %v (should retry on fresh dial)", err)
	}
	conn.Close()
	if got := served.Load(); got != 2 {
		t.Fatalf("server served %d calls, want 2", got)
	}
	st := p.Stats()
	if st.Reuses != 1 || st.Dials != 2 {
		t.Fatalf("pool stats %+v, want 1 reuse + 2 dials", st)
	}

	// Negative control: when the site really is down, the fresh-dial retry
	// fails too and borrow reports the error.
	s.Close()
	if _, err := co.borrow(p, call); err == nil {
		t.Fatal("borrow succeeded against a dead site")
	}
}
