package coord_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"harbor/internal/comm"
	"harbor/internal/coord"
	"harbor/internal/testutil"
	"harbor/internal/txn"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

// TestSlowReplicasCommitAtMaxNotSumLatency proves the fan-out property the
// §4.3 cost model assumes: with every replica slowed by d per message, a
// transaction's wall time tracks rounds×d (max over replicas per round),
// not rounds×K×d (sum over replicas). With K=2 and d on both workers the
// sequential coordinator would need ≥ 16d for this workload; the parallel
// one needs ~10d (the per-txn BEGIN dials remain sequential by design).
func TestSlowReplicasCommitAtMaxNotSumLatency(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	const d = 20 * time.Millisecond
	for _, w := range cl.Workers {
		w.SetSimMsgDelay(d)
	}
	defer func() {
		for _, w := range cl.Workers {
			w.SetSimMsgDelay(0)
		}
	}()

	start := time.Now()
	tx := cl.Coord.Begin()
	for i := int64(1); i <= 5; i++ {
		if err := tx.Insert(1, mk(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	// Rounds: BEGIN×2 sequential (2d) + 5 inserts + PREPARE +
	// PREPARE-TO-COMMIT + COMMIT parallel (8d) = 10d. The sequential
	// coordinator paid 2d + 2d×8 = 18d. Split the difference with margin.
	if min := 8 * d; elapsed < min {
		t.Fatalf("commit took %v < %v: the slow-replica delay is not being applied", elapsed, min)
	}
	if max := 15 * d; elapsed > max {
		t.Fatalf("commit took %v > %v: latency tracks the sum of replica delays, not the max", elapsed, max)
	}
}

// TestSlowReplicaScanRunsSitesConcurrently partitions a table across two
// sites and checks a distributed scan costs ~max of the per-site delays.
func TestSlowReplicaScanRunsSitesConcurrently(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	// Table 2: key range split between the two workers (no replication),
	// so a full scan must visit both sites.
	if err := cl.CreatePartitionedTable(2, testDesc(), 4, 100); err != nil {
		t.Fatal(err)
	}
	tx := cl.Coord.Begin()
	for _, key := range []int64{10, 110} {
		if err := tx.Insert(2, mk(key, key)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	const d = 30 * time.Millisecond
	for _, w := range cl.Workers {
		w.SetSimMsgDelay(d)
	}
	defer func() {
		for _, w := range cl.Workers {
			w.SetSimMsgDelay(0)
		}
	}()
	start := time.Now()
	rows, err := cl.Coord.Scan(2, coord.QueryOptions{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("scan returned %d rows, want 2", len(rows))
	}
	// Each site serves SCAN + END-READ (2d); two sites scanned
	// sequentially would cost ≥ 4d, concurrently ~2d.
	if max := 3 * d; elapsed > max {
		t.Fatalf("scan took %v > %v: sites were read sequentially", elapsed, max)
	}
	// Deterministic merge order: site 1's key range before site 2's.
	if rows[0].Key(testDesc()) != 10 || rows[1].Key(testDesc()) != 110 {
		t.Fatalf("merge order not deterministic by (site, key): %v", ids(rows))
	}
}

// TestScanFailsOverPerSite crashes the serving replica without telling the
// coordinator; the scan must mark it down and re-read only the failed key
// slice from the surviving buddy.
func TestScanFailsOverPerSite(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	tx := cl.Coord.Begin()
	for i := int64(1); i <= 3; i++ {
		if err := tx.Insert(1, mk(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Site 1 is the preferred read site (lowest id). Crash it silently.
	cl.Workers[0].Crash()
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(rows); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("failover scan: %v", got)
	}
	if !cl.Coord.SiteDown(testutil.WorkerSiteID(0)) {
		t.Fatal("failed read site was not marked down")
	}
}

// TestParallelFanoutConcurrentTransactions drives ≥8 concurrent
// transactions (with interleaved distributed scans) through the parallel
// fan-out; run under -race this exercises every concurrent round.
func TestParallelFanoutConcurrentTransactions(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	const streams = 8
	const txnsPerStream = 10
	for s := 1; s < streams; s++ {
		if err := cl.CreateReplicatedTable(int32(s+1), testDesc(), 4); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			table := int32(s + 1)
			for i := 0; i < txnsPerStream; i++ {
				tx := cl.Coord.Begin()
				if err := tx.Insert(table, mk(int64(i), int64(s))); err != nil {
					errs <- fmt.Errorf("stream %d insert %d: %w", s, i, err)
					return
				}
				if _, err := tx.Commit(); err != nil {
					errs <- fmt.Errorf("stream %d commit %d: %w", s, i, err)
					return
				}
				tx2 := cl.Coord.Begin()
				if err := tx2.UpdateKey(table, int64(i), mk(int64(i), int64(s+100))); err != nil {
					errs <- fmt.Errorf("stream %d update %d: %w", s, i, err)
					return
				}
				if _, err := tx2.Commit(); err != nil {
					errs <- fmt.Errorf("stream %d update-commit %d: %w", s, i, err)
					return
				}
				if i%3 == 0 {
					if _, err := cl.Coord.Scan(table, coord.QueryOptions{}); err != nil {
						errs <- fmt.Errorf("stream %d scan %d: %w", s, i, err)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for s := 0; s < streams; s++ {
		rows, err := cl.Coord.Scan(int32(s+1), coord.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != txnsPerStream {
			t.Fatalf("table %d has %d rows, want %d", s+1, len(rows), txnsPerStream)
		}
		for _, r := range rows {
			if r.Values[3].I64 != int64(s+100) {
				t.Fatalf("table %d row %d missed its update: %v", s+1, r.Key(testDesc()), r.Values)
			}
		}
	}
}

// TestRoundTimeoutEvictsStalledReplica configures a per-call round timeout
// and stalls one replica past it: the coordinator must treat the replica as
// fail-stopped and commit with K-1 safety instead of waiting.
func TestRoundTimeoutEvictsStalledReplica(t *testing.T) {
	base := t.TempDir()
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     2,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		GroupCommit: true,
		// RoundTimeout must exceed LockTimeout (constructor-enforced); this
		// workload is contention-free, so a short lock wait changes nothing.
		LockTimeout:  50 * time.Millisecond,
		BaseDir:      base,
		RoundTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.CreateReplicatedTable(1, testDesc(), 4); err != nil {
		t.Fatal(err)
	}
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Stall worker 1 well past the round timeout from here on.
	cl.Workers[1].SetSimMsgDelay(2 * time.Second)
	if err := tx.Insert(1, mk(2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !cl.Coord.SiteDown(testutil.WorkerSiteID(1)) {
		t.Fatal("stalled replica was not marked down")
	}
	cl.Workers[1].SetSimMsgDelay(0)
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("K-1 commit left %d rows, want 2", len(rows))
	}
}

// TestCommitRoundTimeoutClosesStalledConn stalls a replica during the
// commit rounds (the distribute path is covered above): the PREPARE
// timeout must close the transaction's conn to the stalled replica, not
// recycle it into the site's pool, because the slow-but-alive replica's
// late responses are still queued on it. Under the old bare-MarkDown
// handling the conn reached the pool, and once the replica rejoined, the
// next scan that borrowed it read the stale VOTE as its own reply —
// silent protocol desync observable as phantom rows.
func TestCommitRoundTimeoutClosesStalledConn(t *testing.T) {
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     2,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		GroupCommit: true,
		// Below RoundTimeout to satisfy the constructor bound; no contention.
		LockTimeout:  50 * time.Millisecond,
		BaseDir:      t.TempDir(),
		RoundTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.CreateReplicatedTable(1, testDesc(), 4); err != nil {
		t.Fatal(err)
	}
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Stall worker 1 from here on: the inserts already went through, so the
	// first round to time out is PREPARE. No response means a NO vote
	// (§4.3.2), so the transaction must abort and the site be evicted.
	cl.Workers[1].SetSimMsgDelay(300 * time.Millisecond)
	if _, err := tx.Commit(); err == nil {
		t.Fatal("commit succeeded despite a timed-out PREPARE vote")
	}
	if !cl.Coord.SiteDown(testutil.WorkerSiteID(1)) {
		t.Fatal("stalled replica was not marked down")
	}
	// Let the stalled replica drain its queue; its late replies land on the
	// dropped conn (closed by the fix, recycled by the bug).
	cl.Workers[1].SetSimMsgDelay(0)
	time.Sleep(time.Second)

	// The replica announces its object online again (§5.4.2 join), making
	// it readable — over a fresh connection, never the stalled one.
	c, err := comm.Dial(cl.Coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&wire.Msg{
		Type: wire.MsgObjectOnline, Site: int32(testutil.WorkerSiteID(1)), Table: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.MsgAllDone {
		t.Fatalf("object-online announce answered %v", resp.Type)
	}
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{PreferSite: testutil.WorkerSiteID(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("aborted transaction left %d visible rows on the rejoined replica (stale-response desync): %v",
			len(rows), ids(rows))
	}
}

// TestAbortRoundTimeoutClosesStalledConn is the abort-path twin of the test
// above: the abort round runs through the engine's same sweepRound eviction
// path, so a replica that stalls during ABORT must have its conn closed —
// not recycled into the pool with the late ABORT ack still queued on it,
// where the next borrower would read that stale reply as its own response.
func TestAbortRoundTimeoutClosesStalledConn(t *testing.T) {
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     2,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		GroupCommit: true,
		// Below RoundTimeout to satisfy the constructor bound; no contention.
		LockTimeout:  50 * time.Millisecond,
		BaseDir:      t.TempDir(),
		RoundTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.CreateReplicatedTable(1, testDesc(), 4); err != nil {
		t.Fatal(err)
	}
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Stall worker 1 from here on: the insert already went through, so the
	// first round to time out is the ABORT itself.
	cl.Workers[1].SetSimMsgDelay(300 * time.Millisecond)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if !cl.Coord.SiteDown(testutil.WorkerSiteID(1)) {
		t.Fatal("replica stalled during the abort round was not marked down")
	}
	// Let the stalled replica drain its queue; its late ack lands on the
	// dropped conn (closed by the shared eviction path, recycled by the bug).
	cl.Workers[1].SetSimMsgDelay(0)
	time.Sleep(time.Second)

	c, err := comm.Dial(cl.Coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&wire.Msg{
		Type: wire.MsgObjectOnline, Site: int32(testutil.WorkerSiteID(1)), Table: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.MsgAllDone {
		t.Fatalf("object-online announce answered %v", resp.Type)
	}
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{PreferSite: testutil.WorkerSiteID(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("aborted transaction left %d visible rows on the rejoined replica (stale-response desync): %v",
			len(rows), ids(rows))
	}
}
