// Distributed aggregation pushdown: instead of shipping every qualifying
// row through ScanStream and aggregating locally, Aggregate sends each read
// slot's site a scan request carrying the aggregate spec. The site folds
// its rows into per-group partial states (exec.GroupTable) and streams back
// O(groups) MsgAggBatch frames; the coordinator merges the states — an
// associative, commutative fold — and finalises in ascending group-key
// order, so the answer is byte-identical to one HashAgg over the merged
// scan no matter how slots, sites, or failovers interleaved.
//
// Failover re-merge rule: a slot's partial states are buffered in a
// slot-local table and merged into the query result only when that slot's
// stream ends cleanly. If the site dies mid-stream the slot-local table is
// discarded — partial states, unlike key-ordered rows, have no resume
// point, since a group's state may be split across the delivered and
// undelivered suffix — and a coverage plan from the survivors re-reads the
// slot's whole key range. Discard-and-refetch per slot means a group is
// never double-counted and never lost: every key range is merged exactly
// once, from exactly one clean stream.
package coord

import (
	"fmt"

	"harbor/internal/comm"
	"harbor/internal/exec"
	"harbor/internal/expr"
	"harbor/internal/tuple"
	"harbor/internal/wire"
)

// Aggregate runs a grouped aggregate query over one logical table and
// returns the finalised rows in ascending group-key order (the group
// column first when plan.GroupField >= 0, then one Int64 column per
// aggregate). Options behave as in Scan; NoPushdown ships rows instead of
// partial states and aggregates at the coordinator (the ablation path —
// identical results, O(rows) wire traffic).
func (co *Coordinator) Aggregate(table int32, opt QueryOptions, plan exec.AggPlan) ([]tuple.Tuple, error) {
	if len(plan.Aggs) == 0 {
		return nil, fmt.Errorf("coord: aggregate with no aggregate columns")
	}
	spec, ok := co.cfg.Catalog.Table(table)
	if !ok {
		return nil, fmt.Errorf("coord: unknown table %d", table)
	}
	if plan.GroupField >= len(spec.Desc.Fields) {
		return nil, fmt.Errorf("coord: aggregate group field %d out of range", plan.GroupField)
	}
	for _, a := range plan.Aggs {
		if a.Fn != exec.Count && (a.Field < 0 || a.Field >= len(spec.Desc.Fields)) {
			return nil, fmt.Errorf("coord: aggregate field %d out of range", a.Field)
		}
	}
	co.aggQueries.Inc()
	partial := plan.Partials()
	final := exec.NewGroupTable(plan.GroupField, partial)

	if opt.NoPushdown {
		// Ablation: every row travels; the coordinator runs the same
		// partial+final algebra over the merged scan.
		err := co.ScanStream(table, opt, func(rows []tuple.Tuple) error {
			for _, t := range rows {
				final.Add(t)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return plan.Rows(final), nil
	}

	slots, q, err := co.planRead(table, opt)
	if err != nil {
		return nil, err
	}
	defer q.release()
	aq := &aggQuery{scanQuery: q, plan: plan, partial: partial}
	if err := aq.run(slots, final, 0); err != nil {
		return nil, err
	}
	return plan.Rows(final), nil
}

// aggQuery carries a pushed-down aggregate's invariant parameters on top
// of the shared read-plan state.
type aggQuery struct {
	*scanQuery
	plan    exec.AggPlan
	partial []exec.AggSpec
}

// run fans the slots out concurrently (bounded by the fan-out limit),
// merging each slot's partial states into final as the slot completes.
// Merging is associative and commutative, so completion order is free;
// determinism comes from the finalisation sort, not arrival order. A slot
// whose site dies is replanned over the survivors for its whole key range
// (see the failover re-merge rule above); depth bounds cascading failures.
func (aq *aggQuery) run(slots []scanSlot, final *exec.GroupTable, depth int) error {
	if len(slots) == 0 {
		return nil
	}
	co := aq.co
	type slotOut struct {
		st  *exec.GroupTable
		err error
	}
	results := fanEach(co.fanoutLimit(), slots, func(_ int, slot scanSlot) slotOut {
		st, err := aq.readAggSlot(slot)
		return slotOut{st, err}
	})
	for i, r := range results {
		if r.err == nil {
			// Clean end of stream: the slot's buffered states join the
			// result exactly once.
			if err := final.MergeTable(r.st); err != nil {
				return err
			}
			continue
		}
		if depth >= 2 {
			return r.err
		}
		// Discard-and-refetch: nothing of this slot was merged, so the
		// replan re-reads its entire key range from the survivors.
		co.aggFailovers.Inc()
		plan, perr := co.cfg.Catalog.RecoveryPlan(aq.table, slots[i].rng, slots[i].site, aq.live)
		if perr != nil {
			return r.err // no surviving coverage: report the read error
		}
		sub := make([]scanSlot, len(plan))
		for j, src := range plan {
			sub[j] = scanSlot{site: src.Buddy, rng: src.Pred}
		}
		if err := aq.run(sub, final, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// readAggSlot streams one slot's partial aggregate states into a
// slot-local table, which is returned only if the stream ended cleanly.
func (aq *aggQuery) readAggSlot(slot scanSlot) (*exec.GroupTable, error) {
	co := aq.co
	p, err := co.pool(slot.site)
	if err != nil {
		return nil, err
	}
	pred := aq.pred
	m := &wire.Msg{
		Type: wire.MsgScan, Txn: aq.id, Table: aq.table,
		Vis: uint8(aq.vis), TS: aq.asOf, Pred: pred.Terms,
		AggGroup: int32(aq.plan.GroupField),
		Aggs:     make([]wire.AggCol, len(aq.partial)),
	}
	if slot.rng != expr.FullKeyRange() {
		pred = pred.And(slot.rng.Pred(aq.spec.Desc).Terms...)
		m.Pred = pred.Terms
		// Declare the touched key range for the worker's per-segment
		// recovery gate (see readSlot).
		m.KeyLo, m.KeyHi = slot.rng.Lo, slot.rng.Hi
	}
	for i, a := range aq.partial {
		m.Aggs[i] = wire.AggCol{Fn: uint8(a.Fn), Field: int32(a.Field)}
	}
	if aq.locked {
		m.Flags |= wire.FlagYes
	}
	// The send plus first receive is the borrowed conn's first exchange: a
	// transport error there on a pooled conn retries once on a fresh dial
	// (stale idle conn) before declaring the site down.
	var first *wire.Msg
	conn, err := co.borrow(p, func(c *comm.Conn) error {
		err := c.Send(m)
		co.msgsSent.Add(1) // counted per attempted send (see Counters)
		if err != nil {
			return err
		}
		first, err = c.Recv()
		return err
	})
	if err != nil {
		co.MarkDown(slot.site)
		return nil, err
	}
	ncols := len(aq.partial)
	grouped := aq.plan.GroupField >= 0
	if grouped {
		ncols++
	}
	st := exec.NewGroupTable(aq.plan.GroupField, aq.partial)
	vals := make([]int64, 0, ncols)
	for resp := first; ; {
		end := false
		switch resp.Type {
		case wire.MsgErr:
			p.Put(conn)
			return nil, resp.Err()
		case wire.MsgScanEnd:
			end = true
		case wire.MsgAggBatch:
			n, err := wire.CheckBatch(resp, wire.AggStride(ncols))
			if err != nil {
				conn.Close()
				return nil, err
			}
			co.aggRowsShipped.Add(int64(n))
			co.aggFrames.Inc()
			for i := 0; i < n; i++ {
				vals = wire.AggRow(resp.Raw, i, ncols, vals[:0])
				key := int64(0)
				state := vals
				if grouped {
					key, state = vals[0], vals[1:]
				}
				if err := st.Merge(key, state); err != nil {
					conn.Close()
					return nil, err
				}
			}
		default:
			conn.Close()
			return nil, fmt.Errorf("coord: unexpected %v in aggregate stream", resp.Type)
		}
		if end {
			break
		}
		resp, err = conn.Recv()
		if err != nil {
			co.MarkDown(slot.site)
			conn.Close()
			return nil, err
		}
	}
	if aq.locked {
		// Release the read transaction's locks, as the row-scan path does.
		_, err := conn.Call(&wire.Msg{Type: wire.MsgEndRead, Txn: aq.id})
		co.msgsSent.Add(1) // counted per attempted send (see Counters)
		if err != nil {
			co.MarkDown(slot.site)
			conn.Close()
			return st, nil
		}
	}
	p.Put(conn)
	return st, nil
}
