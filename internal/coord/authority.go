package coord

import (
	"sync"

	"harbor/internal/tuple"
)

// Authority is the timestamp authority of §4.1: it issues monotonically
// increasing commit times at the commit point of each transaction and
// tracks the high water mark — the largest time T such that every
// transaction with commit time ≤ T has finished commit processing. The HWM
// is the latest safe time for historical queries ("the recent past, before
// which the system can guarantee that no uncommitted transactions remain",
// §3.1) and is what recovery Phase 2 uses (§5.3).
//
// Timestamps are logical and need not correspond to real time; coarser
// epochs would also work (§4.1). A multi-coordinator deployment would need
// a consensus protocol here; this implementation supports the thesis's
// single-coordinator configuration.
type Authority struct {
	mu          sync.Mutex
	next        tuple.Timestamp
	outstanding map[tuple.Timestamp]bool
}

// NewAuthority starts the clock at 1.
func NewAuthority() *Authority {
	return &Authority{next: 0, outstanding: map[tuple.Timestamp]bool{}}
}

// Issue allocates the next commit time and marks it outstanding.
func (a *Authority) Issue() tuple.Timestamp {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.next++
	a.outstanding[a.next] = true
	return a.next
}

// Complete marks a commit time's transaction as fully processed (committed
// everywhere or abandoned), allowing the HWM to advance past it.
func (a *Authority) Complete(ts tuple.Timestamp) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.outstanding, ts)
}

// HWM returns the high water mark.
func (a *Authority) HWM() tuple.Timestamp {
	a.mu.Lock()
	defer a.mu.Unlock()
	hwm := a.next
	for ts := range a.outstanding {
		if ts-1 < hwm {
			hwm = ts - 1
		}
	}
	return hwm
}

// Now returns the most recently issued time (the "current time").
func (a *Authority) Now() tuple.Timestamp {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

// Advance fast-forwards the clock to at least ts (used when seeding
// clusters from bulk loads that carry pre-assigned timestamps).
func (a *Authority) Advance(ts tuple.Timestamp) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ts > a.next {
		a.next = ts
	}
}
