package coord

import (
	"strings"
	"testing"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/txn"
)

// TestRoundTimeoutMustExceedLockTimeout covers the §4.3.5 margin: a healthy
// replica can legally sit a full lock wait before answering a round, so a
// RoundTimeout inside that window reads contention as fail-stop. The
// constructor must reject it; 0 on either side disables the bound and the
// check.
func TestRoundTimeoutMustExceedLockTimeout(t *testing.T) {
	mk := func(round, lock time.Duration) error {
		co, err := New(Config{
			Protocol:     txn.TwoPC,
			Dir:          t.TempDir(),
			Catalog:      catalog.New(0),
			RoundTimeout: round,
			LockTimeout:  lock,
		})
		if co != nil {
			co.Close()
		}
		return err
	}

	// RoundTimeout <= LockTimeout: rejected.
	err := mk(500*time.Millisecond, 500*time.Millisecond)
	if err == nil {
		t.Fatal("RoundTimeout == LockTimeout must be rejected")
	}
	if !strings.Contains(err.Error(), "RoundTimeout") || !strings.Contains(err.Error(), "LockTimeout") {
		t.Fatalf("error should name both knobs: %v", err)
	}
	if err := mk(100*time.Millisecond, 2*time.Second); err == nil {
		t.Fatal("RoundTimeout < LockTimeout must be rejected")
	}

	// Healthy margin: accepted.
	if err := mk(3*time.Second, 2*time.Second); err != nil {
		t.Fatalf("RoundTimeout > LockTimeout rejected: %v", err)
	}

	// 0 = disabled on either side: accepted (no bound to violate).
	if err := mk(0, 2*time.Second); err != nil {
		t.Fatalf("RoundTimeout=0 (wait forever) rejected: %v", err)
	}
	if err := mk(100*time.Millisecond, 0); err != nil {
		t.Fatalf("LockTimeout=0 (unknown at coordinator) rejected: %v", err)
	}
	if err := mk(0, 0); err != nil {
		t.Fatalf("both disabled rejected: %v", err)
	}
}
