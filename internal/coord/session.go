package coord

import (
	"fmt"

	"harbor/internal/catalog"
	"harbor/internal/comm"
	"harbor/internal/exec"
	"harbor/internal/expr"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/wal"
	"harbor/internal/wire"
)

// Txn is a client-visible distributed transaction handle.
type Txn struct {
	co *Coordinator
	t  *ctxn
}

// Begin starts a distributed update transaction.
func (co *Coordinator) Begin() *Txn {
	id := co.ids.Next()
	t := &ctxn{id: id, workers: map[catalog.SiteID]*comm.Conn{}}
	co.mu.Lock()
	co.txns[id] = t
	co.mu.Unlock()
	return &Txn{co: co, t: t}
}

// ID returns the transaction id.
func (tx *Txn) ID() txn.ID { return tx.t.id }

// distribute sends one logical update request to every live replica of its
// key and queues it for possible replay to recovering sites (§4.1). Each
// Txn belongs to one client goroutine; the txn mutex is held only while
// mutating the queue/worker set, never across the network calls, so the
// §5.4.2 join replay can run while an update waits behind Phase 3 locks.
func (tx *Txn) distribute(m *wire.Msg, key int64) error {
	co := tx.co
	t := tx.t
	m.Txn = t.id

	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return fmt.Errorf("coord: transaction %d already finished", t.id)
	}
	sites := co.cfg.Catalog.UpdateSites(m.Table, key, func(s catalog.SiteID) bool {
		return co.objectIsOnline(m.Table, s)
	})
	if len(sites) == 0 {
		t.mu.Unlock()
		return fmt.Errorf("coord: no live replicas for table %d key %d", m.Table, key)
	}
	entry := &queuedUpdate{msg: m, sentTo: map[catalog.SiteID]bool{}}
	t.queue = append(t.queue, entry)
	type pair struct {
		site catalog.SiteID
		conn *comm.Conn
	}
	var targets []pair
	for _, site := range sites {
		conn, ok := t.workers[site]
		if !ok {
			var err error
			conn, err = co.dialWorkerForTxn(t, site)
			if err != nil {
				// §4.3.5: a worker crashing mid-transaction need not abort
				// it; continue with K-1 safety.
				continue
			}
		}
		entry.sentTo[site] = true // claimed before the call so the join
		// replay never double-sends this entry to the same site
		targets = append(targets, pair{site, conn})
	}
	t.mu.Unlock()

	sent := 0
	for _, w := range targets {
		resp, err := w.conn.CallRaw(m)
		co.msgsSent.Add(1)
		if err != nil {
			// Connection drop: fail-stop signal. Drop the worker.
			co.MarkDown(w.site)
			t.mu.Lock()
			delete(t.workers, w.site)
			t.mu.Unlock()
			w.conn.Close()
			continue
		}
		if err := resp.Err(); err != nil {
			return err // logical error (e.g. deadlock timeout): abort path
		}
		sent++
	}
	if sent == 0 {
		return fmt.Errorf("coord: update reached no replica of table %d", m.Table)
	}
	return nil
}

// Insert distributes an insert of the tuple to all replicas covering its key.
func (tx *Txn) Insert(table int32, t tuple.Tuple) error {
	spec, ok := tx.co.cfg.Catalog.Table(table)
	if !ok {
		return fmt.Errorf("coord: unknown table %d", table)
	}
	return tx.distribute(&wire.Msg{
		Type: wire.MsgInsert, Table: table, Tuple: wire.TupleValues(t),
	}, t.Key(spec.Desc))
}

// DeleteKey distributes a versioned delete by key.
func (tx *Txn) DeleteKey(table int32, key int64) error {
	return tx.distribute(&wire.Msg{Type: wire.MsgDeleteKey, Table: table, Key: key}, key)
}

// UpdateKey distributes a full-row update by key (user fields replaced).
func (tx *Txn) UpdateKey(table int32, key int64, replacement tuple.Tuple) error {
	return tx.distribute(&wire.Msg{
		Type: wire.MsgUpdateKey, Table: table, Key: key, Tuple: wire.TupleValues(replacement),
	}, key)
}

// SimWork asks every worker already participating to burn CPU cycles
// (the §6.3.2 workload). If no worker has joined yet it targets every
// replica site of the given table.
func (tx *Txn) SimWork(table int32, cycles int64) error {
	co := tx.co
	t := tx.t
	t.mu.Lock()
	defer t.mu.Unlock()
	sites := co.cfg.Catalog.UpdateSites(table, 0, func(s catalog.SiteID) bool {
		return co.objectIsOnline(table, s)
	})
	for _, site := range sites {
		conn, ok := t.workers[site]
		if !ok {
			var err error
			conn, err = co.dialWorkerForTxn(t, site)
			if err != nil {
				continue
			}
		}
		resp, err := conn.CallRaw(&wire.Msg{Type: wire.MsgSimWork, Txn: t.id, Cycles: cycles})
		co.msgsSent.Add(1)
		if err != nil {
			co.MarkDown(site)
			delete(t.workers, site)
			conn.Close()
			continue
		}
		if err := resp.Err(); err != nil {
			return err
		}
	}
	return nil
}

// finish releases the transaction record and recycles worker connections.
func (tx *Txn) finish() {
	co := tx.co
	t := tx.t
	t.mu.Lock()
	t.done = true
	conns := t.workers
	t.workers = map[catalog.SiteID]*comm.Conn{}
	t.queue = nil
	t.mu.Unlock()
	for site, conn := range conns {
		if p, err := co.pool(site); err == nil {
			p.Put(conn)
		} else {
			conn.Close()
		}
	}
	co.mu.Lock()
	delete(co.txns, t.id)
	co.mu.Unlock()
}

// Commit runs the configured commit protocol (§4.3) and returns the commit
// time on success. A vote of NO or a protocol failure aborts the
// transaction and returns an error.
func (tx *Txn) Commit() (tuple.Timestamp, error) {
	co := tx.co
	t := tx.t
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return 0, fmt.Errorf("coord: transaction %d already finished", t.id)
	}
	type pair struct {
		site catalog.SiteID
		conn *comm.Conn
	}
	var workers []pair
	dropped := map[catalog.SiteID]bool{}
	for s, c := range t.workers {
		// §4.3.5: a worker that crashed before commit processing began is
		// dropped and the transaction commits with K-1 safety; the crashed
		// worker recovers the committed data when it comes back.
		if co.SiteDown(s) {
			dropped[s] = true
			delete(t.workers, s)
			c.Close()
			continue
		}
		workers = append(workers, pair{s, c})
	}
	// Safety check for the K-1 path: every queued update must still have a
	// live recipient, or its effects would be lost by committing.
	if len(dropped) > 0 {
		for _, q := range t.queue {
			covered := false
			for s := range q.sentTo {
				if !dropped[s] {
					covered = true
					break
				}
			}
			if !covered {
				t.mu.Unlock()
				tx.abortAll()
				return 0, fmt.Errorf("coord: transaction %d aborted: an update survives only on crashed site(s)", t.id)
			}
		}
	}
	t.mu.Unlock()

	if len(workers) == 0 {
		// Nothing written anywhere (or everything written was covered only
		// by read-only work): trivially committed if no updates are queued.
		t.mu.Lock()
		hasUpdates := len(t.queue) > 0
		t.mu.Unlock()
		if hasUpdates {
			tx.abortAll()
			return 0, fmt.Errorf("coord: transaction %d aborted: no live workers", t.id)
		}
		tx.finish()
		return 0, nil
	}

	var participants []int32
	if co.cfg.Protocol.ThreePhase() {
		for _, w := range workers {
			participants = append(participants, int32(w.site))
		}
	}

	// --- Phase 1: PREPARE / votes ---
	allYes := true
	prepared := make([]pair, 0, len(workers))
	for _, w := range workers {
		resp, err := w.conn.CallRaw(&wire.Msg{Type: wire.MsgPrepare, Txn: t.id, Sites: participants})
		co.msgsSent.Add(1)
		if err != nil {
			// No response ⇒ assume NO vote (§4.3.2 failure rule).
			co.MarkDown(w.site)
			allYes = false
			continue
		}
		if resp.Type == wire.MsgVote && resp.Yes() {
			prepared = append(prepared, w)
		} else {
			allYes = false
		}
	}

	if !allYes {
		tx.abortAll()
		return 0, fmt.Errorf("coord: transaction %d aborted by vote", t.id)
	}

	ts := co.Authority.Issue()
	defer co.Authority.Complete(ts)

	if co.cfg.Protocol.ThreePhase() {
		// --- 3PC Phase 2: PREPARE-TO-COMMIT carries the commit time ---
		acked := true
		for _, w := range prepared {
			resp, err := w.conn.CallRaw(&wire.Msg{Type: wire.MsgPrepareToCommit, Txn: t.id, TS: ts})
			co.msgsSent.Add(1)
			if err != nil || resp.Type != wire.MsgOK {
				if err != nil {
					co.MarkDown(w.site)
				}
				// A dead worker will learn the outcome through recovery or
				// consensus; the commit point is all *live* acks.
				_ = acked
			}
		}
		// Commit point reached (§4.3.3).
		co.recordOutcome(t.id, true, ts)
	} else {
		// --- 2PC commit point: force-write COMMIT at the coordinator ---
		if co.log != nil {
			lsn := co.log.Append(&wal.Record{Type: wal.RecCommit, Txn: t.id, CommitTS: ts})
			if err := co.log.Force(lsn, true); err != nil {
				tx.abortAll()
				return 0, err
			}
		}
		co.recordOutcome(t.id, true, ts)
	}

	// --- final phase: COMMIT ---
	for _, w := range prepared {
		resp, err := w.conn.CallRaw(&wire.Msg{Type: wire.MsgCommit, Txn: t.id, TS: ts})
		co.msgsSent.Add(1)
		if err != nil {
			co.MarkDown(w.site)
			continue
		}
		_ = resp
	}
	if co.log != nil {
		// W(END): a normal, unforced log write.
		co.log.Append(&wal.Record{Type: wal.RecEnd, Txn: t.id})
	}
	co.commits.Add(1)
	tx.finish()
	return ts, nil
}

// Abort aborts the transaction everywhere.
func (tx *Txn) Abort() error {
	tx.abortAll()
	return nil
}

// abortAll drives the abort path: force ABORT at the coordinator log (2PC
// protocols; 3PC coordinators never log, §4.3.3), send ABORT to every live
// worker connection of the transaction, then write the unforced END.
func (tx *Txn) abortAll() {
	co := tx.co
	t := tx.t
	if co.log != nil {
		lsn := co.log.Append(&wal.Record{Type: wal.RecAbort, Txn: t.id})
		_ = co.log.Force(lsn, true)
	}
	co.recordOutcome(t.id, false, 0)
	t.mu.Lock()
	conns := make(map[catalog.SiteID]*comm.Conn, len(t.workers))
	for s, c := range t.workers {
		conns[s] = c
	}
	t.mu.Unlock()
	for site, conn := range conns {
		resp, err := conn.CallRaw(&wire.Msg{Type: wire.MsgAbort, Txn: t.id})
		co.msgsSent.Add(1)
		if err != nil {
			co.MarkDown(site)
			continue
		}
		_ = resp
	}
	if co.log != nil {
		co.log.Append(&wal.Record{Type: wal.RecEnd, Txn: t.id})
	}
	co.aborts.Add(1)
	tx.finish()
}

// --- read-only queries ---------------------------------------------------

// QueryOptions configure a read-only distributed query.
type QueryOptions struct {
	// Historical runs the query as of AsOf without locks (§3.3). When
	// false the query reads current data with page read locks.
	Historical bool
	AsOf       tuple.Timestamp
	Pred       expr.Pred
	// PreferSite pins the read to one site when it holds the data
	// (load-balancing hook); 0 lets the planner choose.
	PreferSite catalog.SiteID
}

// Scan runs a read-only query over one logical table, merging results from
// however many sites the read plan needs (§4.1: read queries go to any
// sites with the relevant data).
func (co *Coordinator) Scan(table int32, opt QueryOptions) ([]tuple.Tuple, error) {
	live := func(s catalog.SiteID) bool { return co.objectIsOnline(table, s) }
	srcs, err := co.cfg.Catalog.ReadSites(table, live)
	if err != nil {
		return nil, err
	}
	if opt.PreferSite != 0 {
		single, err := co.cfg.Catalog.ReadSites(table, func(s catalog.SiteID) bool {
			return s == opt.PreferSite && live(s)
		})
		if err == nil {
			srcs = single
		}
	}
	id := co.ids.Next()
	vis := exec.Current
	asOf := tuple.Timestamp(0)
	locked := true
	if opt.Historical {
		vis = exec.Historical
		asOf = opt.AsOf
		locked = false
		if asOf == 0 {
			asOf = co.Authority.HWM()
		}
	}
	// Failover: a replica that dies mid-read is marked down and the read
	// plan is recomputed against the survivors (§2.2's failover, in its
	// simplest retry form).
	for attempt := 0; ; attempt++ {
		var out []tuple.Tuple
		ok := true
		for _, src := range srcs {
			pred := opt.Pred
			rangePred := src.Pred
			spec, _ := co.cfg.Catalog.Table(table)
			if spec != nil && rangePred != expr.FullKeyRange() {
				pred = pred.And(rangePred.Pred(spec.Desc).Terms...)
			}
			rows, err := co.scanSite(src.Buddy, id, table, vis, asOf, locked, pred)
			if err != nil {
				if attempt < 2 {
					ok = false
					break
				}
				return nil, err
			}
			out = append(out, rows...)
		}
		if ok {
			return out, nil
		}
		srcs, err = co.cfg.Catalog.ReadSites(table, live)
		if err != nil {
			return nil, err
		}
	}
}

func (co *Coordinator) scanSite(site catalog.SiteID, id txn.ID, table int32,
	vis exec.Visibility, asOf tuple.Timestamp, locked bool, pred expr.Pred) ([]tuple.Tuple, error) {
	p, err := co.pool(site)
	if err != nil {
		return nil, err
	}
	conn, err := p.Get()
	if err != nil {
		co.MarkDown(site)
		return nil, err
	}
	m := &wire.Msg{
		Type: wire.MsgScan, Txn: id, Table: table,
		Vis: uint8(vis), TS: asOf, Pred: pred.Terms,
	}
	if locked {
		m.Flags |= wire.FlagYes
	}
	if err := conn.Send(m); err != nil {
		co.MarkDown(site)
		conn.Close()
		return nil, err
	}
	co.msgsSent.Add(1)
	var rows []tuple.Tuple
	for {
		resp, err := conn.Recv()
		if err != nil {
			co.MarkDown(site)
			conn.Close()
			return nil, err
		}
		if resp.Type == wire.MsgErr {
			p.Put(conn)
			return nil, resp.Err()
		}
		if resp.Type == wire.MsgScanEnd {
			break
		}
		rows = append(rows, wire.ToTuple(resp.Tuple))
	}
	if locked {
		// Release the read transaction's locks (§4.3: "for read
		// transactions, the coordinator merely needs to notify the workers
		// to release any system resources and locks").
		if _, err := conn.Call(&wire.Msg{Type: wire.MsgEndRead, Txn: id}); err != nil {
			co.MarkDown(site)
			conn.Close()
			return rows, nil
		}
		co.msgsSent.Add(1)
	}
	p.Put(conn)
	return rows, nil
}

// CreateTable creates the table's replicas on their sites per the catalog.
func (co *Coordinator) CreateTable(spec *catalog.TableSpec, replicas ...catalog.Replica) error {
	if err := co.cfg.Catalog.AddTable(spec, replicas...); err != nil {
		return err
	}
	for _, r := range replicas {
		p, err := co.pool(r.Site)
		if err != nil {
			return err
		}
		conn, err := p.Get()
		if err != nil {
			return err
		}
		segPages := r.SegPages
		if segPages == 0 {
			segPages = spec.SegPages
		}
		resp, err := conn.Call(&wire.Msg{
			Type: wire.MsgCreateTable, Table: spec.ID, Desc: spec.Desc, SegPages: segPages,
		})
		co.msgsSent.Add(1)
		if err != nil {
			conn.Close()
			return err
		}
		if resp.Type != wire.MsgOK {
			p.Put(conn)
			return fmt.Errorf("coord: create table on site %d: %s", r.Site, resp.Text)
		}
		p.Put(conn)
	}
	return nil
}
