package coord

import (
	"fmt"
	"sort"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/comm"
	"harbor/internal/exec"
	"harbor/internal/expr"
	"harbor/internal/obs"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/wal"
	"harbor/internal/wire"
)

// Txn is a client-visible distributed transaction handle.
type Txn struct {
	co *Coordinator
	t  *ctxn
}

// Begin starts a distributed update transaction.
func (co *Coordinator) Begin() *Txn {
	id := co.ids.Next()
	t := &ctxn{id: id, workers: map[catalog.SiteID]*comm.Conn{}}
	co.mu.Lock()
	co.txns[id] = t
	co.mu.Unlock()
	co.trace.Recordf(int64(id), obs.EvBegin, "proto=%s", co.cfg.Protocol)
	return &Txn{co: co, t: t}
}

// ID returns the transaction id.
func (tx *Txn) ID() txn.ID { return tx.t.id }

// distribute sends one logical update request to every live replica of its
// key — concurrently, one goroutine per replica (§4.1: the round costs the
// slowest replica's RTT, not the sum) — and queues it for possible replay
// to recovering sites. Each Txn belongs to one client goroutine; the txn
// mutex is held only while mutating the queue/worker set, never across the
// network calls, so the §5.4.2 join replay can run while an update waits
// behind Phase 3 locks.
func (tx *Txn) distribute(m *wire.Msg, key int64) error {
	co := tx.co
	t := tx.t
	m.Txn = t.id

	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return fmt.Errorf("coord: transaction %d already finished", t.id)
	}
	sites := co.cfg.Catalog.UpdateSites(m.Table, key, func(s catalog.SiteID) bool {
		return co.objectIsOnline(m.Table, s)
	})
	if len(sites) == 0 {
		t.mu.Unlock()
		return fmt.Errorf("coord: no live replicas for table %d key %d", m.Table, key)
	}
	entry := &queuedUpdate{msg: m, sentTo: map[catalog.SiteID]bool{}}
	t.queue = append(t.queue, entry)
	var targets []fanTarget
	for _, site := range sites {
		conn, ok := t.workers[site]
		if !ok {
			var err error
			conn, err = co.dialWorkerForTxn(t, site)
			if err != nil {
				// §4.3.5: a worker crashing mid-transaction need not abort
				// it; continue with K-1 safety.
				continue
			}
		}
		entry.sentTo[site] = true // claimed before the call so the join
		// replay never double-sends this entry to the same site
		targets = append(targets, fanTarget{site, conn})
	}
	t.mu.Unlock()

	co.trace.Recordf(int64(t.id), obs.EvSend, "msg=%s table=%d targets=%d", m.Type, m.Table, len(targets))
	sent := 0
	var logical error
	for _, r := range co.round(targets, func(fanTarget) *wire.Msg { return m }) {
		if r.err != nil {
			// Connection drop: fail-stop signal. Drop the worker (K-1).
			tx.dropWorker(r.site, r.conn)
			continue
		}
		if err := r.resp.Err(); err != nil {
			// Logical error (e.g. deadlock timeout): abort path. Keep the
			// first one in site order for a deterministic message.
			if logical == nil {
				logical = err
			}
			continue
		}
		sent++
	}
	if logical != nil {
		return logical
	}
	if sent == 0 {
		return fmt.Errorf("coord: update reached no replica of table %d", m.Table)
	}
	return nil
}

// dropWorker removes a fail-stopped worker from the transaction and the
// failure detector's live set, closing its dedicated connection. The conn
// is compared so a replacement dialed by the join replay is never removed.
func (tx *Txn) dropWorker(site catalog.SiteID, conn *comm.Conn) {
	tx.co.trace.Recordf(int64(tx.t.id), obs.EvEvict, "site=%d", site)
	tx.co.MarkDown(site)
	t := tx.t
	t.mu.Lock()
	if t.workers[site] == conn {
		delete(t.workers, site)
	}
	t.mu.Unlock()
	conn.Close()
}

// Insert distributes an insert of the tuple to all replicas covering its key.
func (tx *Txn) Insert(table int32, t tuple.Tuple) error {
	spec, ok := tx.co.cfg.Catalog.Table(table)
	if !ok {
		return fmt.Errorf("coord: unknown table %d", table)
	}
	return tx.distribute(&wire.Msg{
		Type: wire.MsgInsert, Table: table, Tuple: wire.TupleValues(t),
	}, t.Key(spec.Desc))
}

// DeleteKey distributes a versioned delete by key.
func (tx *Txn) DeleteKey(table int32, key int64) error {
	return tx.distribute(&wire.Msg{Type: wire.MsgDeleteKey, Table: table, Key: key}, key)
}

// UpdateKey distributes a full-row update by key (user fields replaced).
func (tx *Txn) UpdateKey(table int32, key int64, replacement tuple.Tuple) error {
	return tx.distribute(&wire.Msg{
		Type: wire.MsgUpdateKey, Table: table, Key: key, Tuple: wire.TupleValues(replacement),
	}, key)
}

// SimWork asks every worker already participating to burn CPU cycles
// (the §6.3.2 workload), all replicas spinning concurrently. If no worker
// has joined yet it targets every replica site of the given table.
func (tx *Txn) SimWork(table int32, cycles int64) error {
	co := tx.co
	t := tx.t
	t.mu.Lock()
	sites := co.cfg.Catalog.UpdateSites(table, 0, func(s catalog.SiteID) bool {
		return co.objectIsOnline(table, s)
	})
	var targets []fanTarget
	for _, site := range sites {
		conn, ok := t.workers[site]
		if !ok {
			var err error
			conn, err = co.dialWorkerForTxn(t, site)
			if err != nil {
				continue
			}
		}
		targets = append(targets, fanTarget{site, conn})
	}
	t.mu.Unlock()
	var logical error
	for _, r := range co.round(targets, func(t fanTarget) *wire.Msg {
		return &wire.Msg{Type: wire.MsgSimWork, Txn: tx.t.id, Cycles: cycles}
	}) {
		if r.err != nil {
			tx.dropWorker(r.site, r.conn)
			continue
		}
		if err := r.resp.Err(); err != nil && logical == nil {
			logical = err
		}
	}
	return logical
}

// finish releases the transaction record and recycles worker connections.
func (tx *Txn) finish() {
	co := tx.co
	t := tx.t
	t.mu.Lock()
	t.done = true
	conns := t.workers
	t.workers = map[catalog.SiteID]*comm.Conn{}
	t.queue = nil
	t.mu.Unlock()
	for site, conn := range conns {
		// A down site's conn may carry an unread late response (RoundTimeout
		// eviction); recycling it would desynchronise the next borrower.
		if co.SiteDown(site) {
			conn.Close()
			continue
		}
		if p, err := co.pool(site); err == nil {
			p.Put(conn)
		} else {
			conn.Close()
		}
	}
	co.mu.Lock()
	delete(co.txns, t.id)
	co.mu.Unlock()
}

// sweepRound drives one protocol round: fan one message out to every
// target and collect the responses. Any target whose exchange failed is
// evicted through the single dropWorker path — close the conn, never
// recycle it, because on a RoundTimeout the replica may still be alive
// with its late response queued, and a recycled conn would feed that
// stale reply to the next borrower. Commit, abort, and every plan round
// share this one eviction path. The returned results are the successful
// exchanges only.
func (tx *Txn) sweepRound(targets []fanTarget, m *wire.Msg) []fanResult {
	trace := tx.co.trace
	trace.Recordf(int64(tx.t.id), obs.EvSend, "msg=%s targets=%d", m.Type, len(targets))
	ok := make([]fanResult, 0, len(targets))
	for _, r := range tx.co.round(targets, func(fanTarget) *wire.Msg { return m }) {
		if r.err != nil {
			tx.dropWorker(r.site, r.conn)
			continue
		}
		trace.Recordf(int64(tx.t.id), obs.EvAck, "site=%d resp=%s", r.site, r.resp.Type)
		ok = append(ok, r)
	}
	return ok
}

// Commit executes the configured protocol's phase plan (§4.3, Table 4.2)
// and returns the commit time on success. A vote of NO or a protocol
// failure aborts the transaction and returns an error.
func (tx *Txn) Commit() (tuple.Timestamp, error) {
	commitStart := time.Now()
	co := tx.co
	t := tx.t
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return 0, fmt.Errorf("coord: transaction %d already finished", t.id)
	}
	t.sealed = true // the join replay must not widen the worker set past this snapshot
	var workers []fanTarget
	dropped := map[catalog.SiteID]bool{}
	for s, c := range t.workers {
		// §4.3.5: a worker that crashed before commit processing began is
		// dropped and the transaction commits with K-1 safety; the crashed
		// worker recovers the committed data when it comes back.
		if co.SiteDown(s) {
			dropped[s] = true
			delete(t.workers, s)
			c.Close()
			continue
		}
		workers = append(workers, fanTarget{s, c})
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i].site < workers[j].site })
	// Safety check for the K-1 path: every queued update must still have a
	// live recipient, or its effects would be lost by committing.
	if len(dropped) > 0 {
		for _, q := range t.queue {
			covered := false
			for s := range q.sentTo {
				if !dropped[s] {
					covered = true
					break
				}
			}
			if !covered {
				t.mu.Unlock()
				tx.abortAll()
				return 0, fmt.Errorf("coord: transaction %d aborted: an update survives only on crashed site(s)", t.id)
			}
		}
	}
	t.mu.Unlock()

	if len(workers) == 0 {
		// Nothing written anywhere (or everything written was covered only
		// by read-only work): trivially committed if no updates are queued.
		t.mu.Lock()
		hasUpdates := len(t.queue) > 0
		t.mu.Unlock()
		if hasUpdates {
			tx.abortAll()
			return 0, fmt.Errorf("coord: transaction %d aborted: no live workers", t.id)
		}
		tx.finish()
		return 0, nil
	}

	plan := co.plan
	var participants []int32
	if plan.NeedsParticipants() {
		for _, w := range workers {
			participants = append(participants, int32(w.site))
		}
	}

	// The commit timestamp is issued once the last voting round has
	// passed — only then is the transaction decided. Plans without a vote
	// round (early-vote 1PC) issue it before their first round.
	var ts tuple.Timestamp
	issued := false
	defer func() {
		if issued {
			co.Authority.Complete(ts)
		}
	}()

	prepared := workers
	for _, r := range plan.Rounds {
		if !r.Vote && !issued {
			ts = co.Authority.Issue()
			issued = true
		}
		if r.CoordForce {
			// The 2PC commit point: force-write COMMIT at the coordinator.
			lsn := co.log.Append(&wal.Record{Type: wal.RecCommit, Txn: t.id, CommitTS: ts})
			if err := co.log.Force(lsn, true); err != nil {
				tx.abortAll()
				return 0, err
			}
			co.trace.Recordf(int64(t.id), obs.EvForce, "rec=COMMIT lsn=%d", lsn)
		}
		if r.CommitBefore {
			co.recordOutcome(t.id, true, ts)
			co.trace.Recordf(int64(t.id), obs.EvCommitPoint, "ts=%d (before %s round)", ts, r.Msg)
		}
		m := &wire.Msg{Type: r.Msg, Txn: t.id, Sites: participants}
		if r.CarryTS {
			m.TS = ts
		}
		results := tx.sweepRound(prepared, m)
		if r.Vote {
			// §4.3.2 failure rule: no response ⇒ NO vote. Any NO — silent
			// or explicit — aborts.
			allYes := len(results) == len(prepared)
			next := make([]fanTarget, 0, len(results))
			for _, res := range results {
				if res.resp.Type == wire.MsgVote && res.resp.Yes() {
					next = append(next, fanTarget{res.site, res.conn})
				} else {
					allYes = false
				}
			}
			if !allYes {
				tx.abortAll()
				return 0, fmt.Errorf("coord: transaction %d aborted by vote", t.id)
			}
			prepared = next
		} else {
			// A dead worker will learn the outcome through recovery or
			// consensus; it leaves the round set but not the transaction's
			// fate.
			next := make([]fanTarget, 0, len(results))
			for _, res := range results {
				next = append(next, fanTarget{res.site, res.conn})
			}
			prepared = next
		}
		if r.CommitAfter {
			// Commit point reached (§4.3.3): the round barrier above means
			// every live worker acked before the outcome is recorded.
			co.recordOutcome(t.id, true, ts)
			co.trace.Recordf(int64(t.id), obs.EvCommitPoint, "ts=%d (after %s round)", ts, r.Msg)
		}
	}
	if co.log != nil {
		// W(END): a normal, unforced log write.
		co.log.Append(&wal.Record{Type: wal.RecEnd, Txn: t.id})
	}
	co.commits.Inc()
	co.commitNS.Observe(time.Since(commitStart).Nanoseconds())
	tx.finish()
	return ts, nil
}

// Abort aborts the transaction everywhere.
func (tx *Txn) Abort() error {
	tx.abortAll()
	return nil
}

// abortAll drives the abort path, uniform across plans: force ABORT at the
// coordinator log (plans with CoordLogs; 3PC coordinators never log,
// §4.3.3), send ABORT to every live worker connection of the transaction
// through the same sweepRound eviction path the commit rounds use, then
// write the unforced END.
func (tx *Txn) abortAll() {
	co := tx.co
	t := tx.t
	if co.log != nil {
		lsn := co.log.Append(&wal.Record{Type: wal.RecAbort, Txn: t.id})
		_ = co.log.Force(lsn, true)
		co.trace.Recordf(int64(t.id), obs.EvForce, "rec=ABORT lsn=%d", lsn)
	}
	co.trace.Record(int64(t.id), obs.EvAbort, "")
	co.recordOutcome(t.id, false, 0)
	t.mu.Lock()
	t.sealed = true // see Commit: no replay past the outcome-round snapshot
	targets := make([]fanTarget, 0, len(t.workers))
	for s, c := range t.workers {
		targets = append(targets, fanTarget{s, c})
	}
	t.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].site < targets[j].site })
	tx.sweepRound(targets, &wire.Msg{Type: wire.MsgAbort, Txn: t.id})
	if co.log != nil {
		co.log.Append(&wal.Record{Type: wal.RecEnd, Txn: t.id})
	}
	co.aborts.Inc()
	tx.finish()
}

// --- read-only queries ---------------------------------------------------

// QueryOptions configure a read-only distributed query.
type QueryOptions struct {
	// Historical runs the query as of AsOf without locks (§3.3). When
	// false the query reads current data with page read locks.
	Historical bool
	AsOf       tuple.Timestamp
	Pred       expr.Pred
	// PreferSite pins the read to one site when it holds the data
	// (load-balancing hook); 0 lets the planner choose.
	PreferSite catalog.SiteID
	// TupleAtATime asks the workers for the legacy per-tuple wire framing
	// instead of batch frames. Row content and order are identical; the
	// flag exists for the equivalence tests and the bench baseline.
	TupleAtATime bool
	// NoPushdown makes Aggregate ship every qualifying row and aggregate
	// at the coordinator instead of pushing partial aggregation down to the
	// workers. Results are identical; the flag exists for the equivalence
	// tests and the bench ablation (mirroring TupleAtATime).
	NoPushdown bool
}

// Scan runs a read-only query over one logical table and materialises the
// result. It is a thin collecting wrapper over ScanStream.
func (co *Coordinator) Scan(table int32, opt QueryOptions) ([]tuple.Tuple, error) {
	var out []tuple.Tuple
	err := co.ScanStream(table, opt, func(rows []tuple.Tuple) error {
		out = append(out, rows...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// slotStreamDepth bounds the batches buffered per in-flight slot stream;
// with fanoutLimit() streams at most, the coordinator holds
// O(limit × depth × batch) rows, independent of table size.
const slotStreamDepth = 4

// scanSlot is one site's assigned key range in a distributed scan.
type scanSlot struct {
	site catalog.SiteID
	rng  expr.KeyRange
}

// sortScanSlots orders slots into the deterministic emission order of
// ScanStream: serving site ascending, then key-range low ascending.
func sortScanSlots(slots []scanSlot) {
	sort.SliceStable(slots, func(i, j int) bool {
		if slots[i].site != slots[j].site {
			return slots[i].site < slots[j].site
		}
		return slots[i].rng.Lo < slots[j].rng.Lo
	})
}

// scanQuery carries a distributed read's invariant parameters.
type scanQuery struct {
	co           *Coordinator
	spec         *catalog.TableSpec
	id           txn.ID
	table        int32
	vis          exec.Visibility
	asOf         tuple.Timestamp
	locked       bool
	pred         expr.Pred
	tupleAtATime bool
	live         func(catalog.SiteID) bool
	regID        int64 // active-scan registry entry (routing epoch)
}

// release removes the read from the active-scan registry. Placement changes
// drain registered reads before letting a donor purge a moved range.
func (q *scanQuery) release() { q.co.deregisterScan(q.regID) }

// ScanStream runs a read-only query over one logical table, streaming the
// merged result to sink in batches. All sites of the read plan stream
// concurrently (so the query costs the slowest site, not the sum; §4.1),
// but rows reach sink in a deterministic order: slots sorted by (serving
// site, key-range low), each slot's rows in ascending key order (workers
// sort before streaming). Buffering is bounded by slotStreamDepth batches
// per in-flight slot, so the coordinator never materialises the table.
//
// A slot whose site dies mid-stream is failed over without restarting the
// query: rows already delivered stay delivered, and a coverage plan from
// the survivors re-reads only the remaining key range (resuming after the
// last emitted key), its sub-slots spliced in at the failed slot's
// position in ascending range order.
func (co *Coordinator) ScanStream(table int32, opt QueryOptions, sink func([]tuple.Tuple) error) error {
	slots, q, err := co.planRead(table, opt)
	if err != nil {
		return err
	}
	defer q.release()
	return q.run(slots, sink, 0)
}

// planRead computes the slot assignment and invariant parameters shared by
// every distributed read (ScanStream and Aggregate).
func (co *Coordinator) planRead(table int32, opt QueryOptions) ([]scanSlot, *scanQuery, error) {
	// Register against the routing epoch before reading the catalog: any
	// placement change landing after this point carries a higher version and
	// drains on this read before a donor range may be purged.
	regID := co.registerScan(co.cfg.Catalog.PlacementVersion())
	spec, ok := co.cfg.Catalog.Table(table)
	if !ok {
		co.deregisterScan(regID)
		return nil, nil, fmt.Errorf("coord: unknown table %d", table)
	}
	vis := exec.Current
	locked := true
	// Every read resolves a concrete timestamp before planning. Historical
	// reads use it as the snapshot time. Current reads keep TS semantics
	// unchanged at the executor (locked, latest-state) but carry the
	// plan-time HWM as the read's *start timestamp*: a recovering segment
	// in locked catch-up whose drained horizon covers that timestamp holds
	// contents equal to a healthy replica's (the catch-up locks freeze
	// commits to the table), so it may serve the read mid-recovery.
	asOf := co.Authority.HWM()
	if opt.Historical {
		vis = exec.Historical
		locked = false
		if opt.AsOf != 0 {
			asOf = opt.AsOf
		}
	}
	// Visibility and asOf resolve before the candidate set is built:
	// readability is per *segment*, not per site, and depends on the
	// concrete timestamp (a recovering segment serves the read once its
	// copied-through watermark covers it). The per-site predicate remains
	// the query's failover filter (q.live), so a mid-stream replan can land
	// on a recovering site's readable objects too.
	live := func(s catalog.SiteID) bool {
		return co.objectReadableFor(table, s, opt.Historical, asOf)
	}
	cands := co.readCandidates(table, opt.Historical, asOf)
	srcs, err := catalog.CoverTarget(expr.FullKeyRange(), cands)
	if err != nil {
		co.deregisterScan(regID)
		return nil, nil, fmt.Errorf("coord: table %d: %w", table, err)
	}
	if opt.PreferSite != 0 {
		var only []catalog.RangeCandidate
		for _, c := range cands {
			if c.Site == opt.PreferSite {
				only = append(only, c)
			}
		}
		if single, err := catalog.CoverTarget(expr.FullKeyRange(), only); err == nil {
			srcs = single
		}
	}
	slots := make([]scanSlot, len(srcs))
	for i, src := range srcs {
		slots[i] = scanSlot{site: src.Buddy, rng: src.Pred}
	}
	sortScanSlots(slots)
	q := &scanQuery{co: co, spec: spec, id: co.ids.Next(), table: table, vis: vis,
		asOf: asOf, locked: locked, pred: opt.Pred, tupleAtATime: opt.TupleAtATime,
		live: live, regID: regID}
	return slots, q, nil
}

// run streams the slots to sink in slot order. Readers launch strictly in
// emission order under the fan-out limit (so the streams the merger needs
// first always hold the semaphore slots), while the merger drains them in
// the same order; later streams park against their bounded channels. depth
// bounds cascading mid-stream failovers.
func (q *scanQuery) run(slots []scanSlot, sink func([]tuple.Tuple) error, depth int) error {
	if len(slots) == 0 {
		return nil
	}
	type slotStream struct {
		ch   chan []tuple.Tuple
		errc chan error
	}
	streams := make([]*slotStream, len(slots))
	for i := range streams {
		streams[i] = &slotStream{ch: make(chan []tuple.Tuple, slotStreamDepth), errc: make(chan error, 1)}
	}
	done := make(chan struct{})
	defer close(done)
	sem := make(chan struct{}, q.co.fanoutLimit())
	go func() {
		for i := range slots {
			select {
			case sem <- struct{}{}:
			case <-done:
				return
			}
			go func(i int) {
				defer func() { <-sem }()
				err := q.readSlot(slots[i], func(rows []tuple.Tuple) bool {
					select {
					case streams[i].ch <- rows:
						return true
					case <-done:
						return false
					}
				})
				close(streams[i].ch)
				streams[i].errc <- err
			}(i)
		}
	}()
	desc := q.spec.Desc
	for i, slot := range slots {
		st := streams[i]
		emitted := false
		var lastKey int64
		for rows := range st.ch {
			if len(rows) == 0 {
				continue
			}
			lastKey = rows[len(rows)-1].Key(desc)
			emitted = true
			if err := sink(rows); err != nil {
				return err
			}
		}
		err := <-st.errc
		if err == nil {
			continue
		}
		if depth >= 2 {
			return err
		}
		// Mid-stream failover: re-read only what the failed slot still owed.
		// Workers stream in key order, so everything at or below lastKey was
		// delivered; resume the range just past it.
		remaining := slot.rng
		if emitted {
			if lastKey == 1<<63-1 {
				continue // the unbounded range was fully delivered
			}
			remaining.Lo = lastKey + 1
		}
		if remaining.Empty() {
			continue
		}
		plan, perr := q.co.cfg.Catalog.RecoveryPlan(q.table, remaining, slot.site, q.live)
		if perr != nil {
			return err // no surviving coverage: report the read error
		}
		sub := make([]scanSlot, len(plan))
		for j, src := range plan {
			sub[j] = scanSlot{site: src.Buddy, rng: src.Pred}
		}
		// RecoveryPlan returns disjoint sources in ascending-Lo order; keep
		// that order so the failed range stays key-contiguous in the output.
		if err := q.run(sub, sink, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// readSlot streams one slot from its site, pushing row batches through
// push (which reports false when the merge has gone away). Batch frames
// are the default; with TupleAtATime the worker's per-tuple stream is
// re-batched client-side so the merge path is identical in both modes.
func (q *scanQuery) readSlot(slot scanSlot, push func([]tuple.Tuple) bool) error {
	co := q.co
	p, err := co.pool(slot.site)
	if err != nil {
		return err
	}
	pred := q.pred
	m := &wire.Msg{
		Type: wire.MsgScan, Txn: q.id, Table: q.table,
		Vis: uint8(q.vis), TS: q.asOf, Pred: pred.Terms,
	}
	if slot.rng != expr.FullKeyRange() {
		pred = pred.And(slot.rng.Pred(q.spec.Desc).Terms...)
		m.Pred = pred.Terms
		// Declare the touched key range so the worker's recovery gate checks
		// only the segments this slot actually reads — the slot may exist
		// precisely because those segments recovered ahead of their table.
		m.KeyLo, m.KeyHi = slot.rng.Lo, slot.rng.Hi
	}
	if q.locked {
		m.Flags |= wire.FlagYes
	}
	if q.tupleAtATime {
		m.Flags |= wire.FlagTupleAtATime
	}
	// The send plus first receive is the borrowed conn's first exchange:
	// a transport error there on a pooled conn retries once on a fresh
	// dial (stale idle conn) before declaring the site down.
	var first *wire.Msg
	conn, err := co.borrow(p, func(c *comm.Conn) error {
		err := c.Send(m)
		co.msgsSent.Add(1) // counted per attempted send (see Counters)
		if err != nil {
			return err
		}
		first, err = c.Recv()
		return err
	})
	if err != nil {
		co.MarkDown(slot.site)
		return err
	}
	desc := q.spec.Desc
	width := desc.Width()
	var pending []tuple.Tuple // re-batched legacy per-tuple rows
	flushPending := func() bool {
		if len(pending) == 0 {
			return true
		}
		rows := pending
		pending = nil
		return push(rows)
	}
	for resp := first; ; {
		end := false
		switch resp.Type {
		case wire.MsgErr:
			p.Put(conn)
			return resp.Err()
		case wire.MsgScanEnd:
			end = true
		case wire.MsgTupleBatch:
			n, err := wire.CheckBatch(resp, width)
			if err != nil {
				conn.Close()
				return err
			}
			b := tuple.NewBatch(n)
			if err := b.DecodeBatch(desc, resp.Raw); err != nil {
				conn.Close()
				return err
			}
			co.scanRows.Add(int64(n))
			co.scanBatches.Inc()
			if !push(b.Rows()) {
				conn.Close() // merge abandoned; don't recycle mid-stream
				return nil
			}
		case wire.MsgTuple:
			pending = append(pending, wire.ToTuple(resp.Tuple))
			co.scanRows.Inc()
			if len(pending) >= wire.BatchTargetRows {
				if !flushPending() {
					conn.Close()
					return nil
				}
			}
		default:
			conn.Close()
			return fmt.Errorf("coord: unexpected %v in scan stream", resp.Type)
		}
		if end {
			break
		}
		resp, err = conn.Recv()
		if err != nil {
			co.MarkDown(slot.site)
			conn.Close()
			return err
		}
	}
	if !flushPending() {
		conn.Close()
		return nil
	}
	if q.locked {
		// Release the read transaction's locks (§4.3: "for read
		// transactions, the coordinator merely needs to notify the workers
		// to release any system resources and locks").
		_, err := conn.Call(&wire.Msg{Type: wire.MsgEndRead, Txn: q.id})
		co.msgsSent.Add(1) // counted per attempted send (see Counters)
		if err != nil {
			co.MarkDown(slot.site)
			conn.Close()
			return nil
		}
	}
	p.Put(conn)
	return nil
}

// CreateTable creates the table's replicas on their sites per the catalog.
func (co *Coordinator) CreateTable(spec *catalog.TableSpec, replicas ...catalog.Replica) error {
	if err := co.cfg.Catalog.AddTable(spec, replicas...); err != nil {
		return err
	}
	// A site may hold several replica ranges of the same table (a
	// partitioned placement); it needs the physical table exactly once.
	created := make(map[catalog.SiteID]bool, len(replicas))
	for _, r := range replicas {
		if created[r.Site] {
			continue
		}
		created[r.Site] = true
		p, err := co.pool(r.Site)
		if err != nil {
			return err
		}
		segPages := r.SegPages
		if segPages == 0 {
			segPages = spec.SegPages
		}
		var resp *wire.Msg
		conn, err := co.borrow(p, func(c *comm.Conn) error {
			rr, err := c.Call(&wire.Msg{
				Type: wire.MsgCreateTable, Table: spec.ID, Desc: spec.Desc, SegPages: segPages,
			})
			co.msgsSent.Add(1)
			resp = rr
			return err
		})
		if err != nil {
			return err
		}
		if resp.Type != wire.MsgOK {
			p.Put(conn)
			return fmt.Errorf("coord: create table on site %d: %s", r.Site, resp.Text)
		}
		p.Put(conn)
	}
	return nil
}
