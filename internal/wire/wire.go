// Package wire defines the binary message protocol spoken between
// coordinators, workers, recovering sites, and backup coordinators
// (the "Communication Layer" box of Figure 6-1). Messages are
// length-prefixed, CRC-protected frames with a hand-rolled fixed codec —
// no reflection, stdlib only.
//
// One message struct serves all message types (like the WAL's record
// union); the Type selects which fields are meaningful. Tuples travel in a
// self-describing value encoding so replicas with different physical layouts
// can exchange logical tuples (§3.1: copies need not be stored identically).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"harbor/internal/expr"
	"harbor/internal/tuple"
)

// Type enumerates message types.
type Type uint8

// Request and response message types.
const (
	// --- generic responses ---
	MsgOK Type = iota + 1
	MsgErr
	MsgVote    // Flags&1 = YES
	MsgTuple   // one streamed tuple
	MsgScanEnd // end of tuple stream; Count = rows sent

	// --- worker requests: transactions and data ---
	MsgBegin
	MsgCreateTable // Desc + SegPages
	MsgInsert      // Txn, Table, Tuple
	MsgDeleteKey   // Txn, Table, Key
	MsgUpdateKey   // Txn, Table, Key, Tuple (replacement user values)
	MsgSimWork     // Txn, Cycles — simulated CPU work (§6.3.2)
	MsgScan        // Txn, Table, Vis, TS(asOf), Flags&1 locked, Pred
	MsgEndRead     // Txn — release a read-only transaction's resources

	// --- commit processing (§4.3) ---
	MsgPrepare         // Txn; Sites = participant worker ids (3PC)
	MsgPrepareToCommit // Txn, TS = commit time
	MsgCommit          // Txn, TS = commit time
	MsgAbort           // Txn

	// --- recovery (Chapter 5) ---
	MsgRecoveryScan // Table, TS(asOf; 0=none), bounds, KeyLo/KeyHi, Flags&1 keys-only
	MsgLockTable    // Txn, Table — table-granularity read lock (§5.4.1)
	MsgUnlockTable  // Txn, Table
	MsgTableMeta    // Table → OK with Count = current time seen? (diagnostic)
	MsgCheckpointNow

	// --- consensus building protocol (§4.3.3) ---
	MsgQueryTxnState // Txn → MsgTxnState
	MsgTxnState      // Flags = state code, TS = commit time if known

	// --- coordinator server (recovery + resolution) ---
	MsgObjectOnline // Site, Table: "rec on S is coming online" (Fig 5-4)
	MsgAllDone      // coordinator → recovering site
	MsgTxnOutcome   // Txn → MsgTxnState (FlagKnown+FlagYes committed, FlagKnown aborted, else unknown)
	MsgCurrentTime  // → OK with TS = authority's current time

	// --- cluster management ---
	MsgPing
	MsgCrash  // test hook: fail-stop the site
	MsgVacuum // Table (0 = all tables), TS = horizon → OK with Count = purged

	// MsgObjectStatus asks the coordinator whether a replica participates
	// in updates (Site, Table → OK, FlagYes = online). Recovery uses it to
	// reject evicted-but-reachable buddies as sources: a site that missed
	// commits since its eviction answers pings yet must not seed another
	// site's catch-up.
	MsgObjectStatus

	// MsgCommitFast is the early-vote 1PC fast path's single round (Txn,
	// TS = commit time): the worker's YES vote was implicit in its
	// per-operation acks, so this one message both fixes the commit time
	// and applies the commit.
	MsgCommitFast

	// MsgTupleBatch is one frame of a batched tuple stream: Count rows
	// packed back-to-back in Raw using the fixed-width heap-page row
	// encoding (Desc.Width() bytes per row — no per-value boxing). With
	// FlagYes the frame is the keys-only projection of a recovery deletion
	// query: Count pairs of (key, del_ts), KeysOnlyStride bytes each.
	MsgTupleBatch

	// MsgAggBatch is one frame of a pushed-down aggregate stream: Count
	// partial group-state rows packed back-to-back in Raw, every column an
	// int64 little-endian (AggStride bytes per row). A row is the group key
	// (only when the request grouped, AggGroup >= 0) followed by one value
	// per partial column of the request's agg spec. The stream still ends
	// with MsgScanEnd; Count there is the total number of groups.
	MsgAggBatch

	// --- elastic cluster management (node join, segment rebalancing) ---

	// MsgJoinSite registers a cold site with the coordinator (Site,
	// Text = address). The reply is MsgOK with TS = the current placement
	// version and Objs = the replica assignment the joining site should
	// migrate onto itself: one (Table, Lo, Hi) entry per assigned range.
	// The assignment is advisory — placement only flips when each range's
	// migration completes its locked catch-up (MsgPlacementChange).
	MsgJoinSite

	// MsgPlacementChange mutates catalog placement through the coordinator
	// so routing and placement move together: Site, Table, KeyLo/KeyHi,
	// SegPages; FlagYes = add the range, clear = remove it (K-safety
	// guarded). The coordinator drains read plans resolved against older
	// placement versions before answering MsgOK with TS = the new version.
	MsgPlacementChange

	// MsgPurgeRange physically deletes a worker's rows in [KeyLo, KeyHi) of
	// Table — the donor-side cleanup after its coverage of the range was
	// removed from the catalog. Replies MsgOK with Count = rows purged.
	// Subsequent scans declaring an intersecting range are refused with a
	// placement-stale error so plans from before the move replan instead of
	// silently reading the hole.
	MsgPurgeRange
)

var typeNames = map[Type]string{
	MsgOK: "OK", MsgErr: "ERR", MsgVote: "VOTE", MsgTuple: "TUPLE",
	MsgScanEnd: "SCAN-END", MsgBegin: "BEGIN", MsgCreateTable: "CREATE-TABLE",
	MsgInsert: "INSERT", MsgDeleteKey: "DELETE-KEY", MsgUpdateKey: "UPDATE-KEY",
	MsgSimWork: "SIM-WORK", MsgScan: "SCAN", MsgEndRead: "END-READ",
	MsgPrepare: "PREPARE", MsgPrepareToCommit: "PREPARE-TO-COMMIT",
	MsgCommit: "COMMIT", MsgAbort: "ABORT", MsgRecoveryScan: "RECOVERY-SCAN",
	MsgLockTable: "LOCK-TABLE", MsgUnlockTable: "UNLOCK-TABLE",
	MsgTableMeta: "TABLE-META", MsgCheckpointNow: "CHECKPOINT-NOW",
	MsgQueryTxnState: "QUERY-TXN-STATE", MsgTxnState: "TXN-STATE",
	MsgObjectOnline: "OBJECT-ONLINE", MsgAllDone: "ALL-DONE",
	MsgTxnOutcome: "TXN-OUTCOME", MsgCurrentTime: "CURRENT-TIME",
	MsgPing: "PING", MsgCrash: "CRASH", MsgVacuum: "VACUUM",
	MsgObjectStatus: "OBJECT-STATUS", MsgCommitFast: "COMMIT-FAST",
	MsgTupleBatch: "TUPLE-BATCH", MsgAggBatch: "AGG-BATCH",
	MsgJoinSite: "JOIN-SITE", MsgPlacementChange: "PLACEMENT-CHANGE",
	MsgPurgeRange: "PURGE-RANGE",
}

// String renders the message type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Flag bits in Msg.Flags.
const (
	// FlagYes marks a YES vote / success / keys-only projection / locked
	// scan, depending on message type.
	FlagYes uint8 = 1 << iota
	// FlagHasInsLE marks the InsLE bound present (recovery scans).
	FlagHasInsLE
	// FlagHasInsGT marks the InsGT bound present.
	FlagHasInsGT
	// FlagHasDelGT marks the DelGT bound present.
	FlagHasDelGT
	// FlagNoPrune disables segment pruning on a recovery scan (ablation
	// benchmarks measuring the value of the §4.2 segment architecture).
	FlagNoPrune
	// FlagKnown on a TXN-STATE outcome reply marks the coordinator as
	// actually having recorded the outcome; without it the transaction is
	// unknown or still in flight and FlagYes carries no information.
	FlagKnown
	// FlagSurvivor on an OBJECT-STATUS reply marks the queried site as the
	// last replica of the table to leave the update set while no replica
	// is online. No commit can postdate its eviction, so its local state
	// is complete and recovery may rejoin it from its own data.
	FlagSurvivor
	// FlagTupleAtATime on a SCAN or RECOVERY-SCAN request asks the worker
	// for the legacy per-tuple framing (one MsgTuple per row) instead of
	// MsgTupleBatch frames. Batched is the default; the flag exists for the
	// equivalence tests and the bench baseline.
	FlagTupleAtATime
)

// Msg is the wire message union.
type Msg struct {
	Type                Type
	Txn                 int64
	Table               int32
	Site                int32
	Key                 int64
	TS                  int64 // commit time, asOf, or current time
	Cycles              int64
	Count               int64
	Flags               uint8
	Vis                 uint8
	SegPages            int32
	KeyLo, KeyHi        int64
	InsLE, InsGT, DelGT int64 // valid per Flags
	Text                string
	Sites               []int32 // 3PC participant list
	Desc                *tuple.Desc
	Tuple               []tuple.Value // self-describing tuple values
	Pred                []expr.Term
	Raw                 []byte // packed rows of a MsgTupleBatch/MsgAggBatch frame

	// AggGroup and Aggs are the pushed-down aggregate spec of a MsgScan.
	// A non-empty Aggs list turns the scan into a partial aggregation:
	// the worker groups by input field AggGroup (-1 = one global group),
	// computes one partial state column per AggCol, and streams MsgAggBatch
	// frames instead of rows. Every flag bit is taken, so presence is
	// signalled by len(Aggs) > 0.
	AggGroup int32
	Aggs     []AggCol

	// Objs is the per-object readiness list of a PING reply: one entry per
	// replica object on the answering site, carrying its recovery state and
	// the historical horizon it can serve. FlagYes on the reply remains the
	// aggregate all-objects-Ready bit, so old-style whole-site readiness is
	// the degenerate reading of the same message.
	Objs []ObjReady
}

// AggCol is one pushed-down partial aggregate column: the function code
// (exec.AggFunc numbering) and the input field it reads.
type AggCol struct {
	Fn    uint8
	Field int32
}

// ObjReady is one segment's entry in a ping reply's readiness list: the
// worker.ObjState code, the copiedThrough horizon (historical reads asOf
// ≤ CopiedThrough are servable even before the segment is fully Ready),
// and the half-open key range [Lo, Hi) the entry covers. A whole-object
// entry is the degenerate single segment spanning the replica's range.
type ObjReady struct {
	Table         int32
	State         uint8
	CopiedThrough int64
	Lo, Hi        int64
}

// Yes reports the FlagYes bit.
func (m *Msg) Yes() bool { return m.Flags&FlagYes != 0 }

// ErrRemoteCorrupt marks a MsgErr caused by a CRC-quarantined page on the
// serving site. Error text alone cannot carry a typed identity across the
// wire, and recovery must tell this apart from a fatal remote error: the
// failed read has already armed the server's background repair-from-buddy,
// so the right client move is back off and retry, not give up.
var ErrRemoteCorrupt = errors.New("remote page corrupt")

// ErrPlacementStale marks a scan refused because the serving site no longer
// holds the declared key range: the plan was resolved against a placement
// version from before a segment move. The coordinator replans the remaining
// range against the current catalog instead of treating the site as failed.
var ErrPlacementStale = errors.New("placement stale")

// Err converts a MsgErr into an error (nil otherwise). A MsgErr with
// FlagYes set reports a corrupt page on the server and wraps
// ErrRemoteCorrupt for errors.Is; FlagKnown (meaningless on an error reply
// otherwise) wraps ErrPlacementStale.
func (m *Msg) Err() error {
	if m.Type == MsgErr {
		if m.Yes() {
			return fmt.Errorf("%w: %s", ErrRemoteCorrupt, m.Text)
		}
		if m.Flags&FlagKnown != 0 {
			return fmt.Errorf("%w: %s", ErrPlacementStale, m.Text)
		}
		return fmt.Errorf("remote: %s", m.Text)
	}
	return nil
}

// Marshal encodes the message body (without framing). It always allocates;
// hot paths use AppendTo with a reused scratch buffer instead.
func (m *Msg) Marshal() []byte { return m.AppendTo(nil) }

// AppendTo appends the encoded message body to b and returns the extended
// slice. Appending into a caller-owned scratch buffer lets a connection
// marshal every outgoing message without a fresh allocation.
func (m *Msg) AppendTo(b []byte) []byte {
	u8 := func(v uint8) { b = append(b, v) }
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u8(uint8(m.Type))
	u64(uint64(m.Txn))
	u32(uint32(m.Table))
	u32(uint32(m.Site))
	u64(uint64(m.Key))
	u64(uint64(m.TS))
	u64(uint64(m.Cycles))
	u64(uint64(m.Count))
	u8(m.Flags)
	u8(m.Vis)
	u32(uint32(m.SegPages))
	u64(uint64(m.KeyLo))
	u64(uint64(m.KeyHi))
	u64(uint64(m.InsLE))
	u64(uint64(m.InsGT))
	u64(uint64(m.DelGT))
	u32(uint32(len(m.Text)))
	b = append(b, m.Text...)
	u32(uint32(len(m.Sites)))
	for _, s := range m.Sites {
		u32(uint32(s))
	}
	if m.Desc != nil {
		schema := m.Desc.Marshal()
		u32(uint32(len(schema)))
		b = append(b, schema...)
	} else {
		u32(0)
	}
	u32(uint32(len(m.Tuple)))
	for _, v := range m.Tuple {
		if v.Str != "" {
			u8(1)
			u32(uint32(len(v.Str)))
			b = append(b, v.Str...)
		} else {
			u8(0)
			u64(uint64(v.I64))
		}
	}
	u32(uint32(len(m.Pred)))
	for _, t := range m.Pred {
		u32(uint32(t.Field))
		u8(uint8(t.Op))
		if t.Value.Str != "" {
			u8(1)
			u32(uint32(len(t.Value.Str)))
			b = append(b, t.Value.Str...)
		} else {
			u8(0)
			u64(uint64(t.Value.I64))
		}
	}
	u32(uint32(len(m.Raw)))
	b = append(b, m.Raw...)
	u32(uint32(m.AggGroup))
	u32(uint32(len(m.Aggs)))
	for _, a := range m.Aggs {
		u8(a.Fn)
		u32(uint32(a.Field))
	}
	u32(uint32(len(m.Objs)))
	for _, o := range m.Objs {
		u32(uint32(o.Table))
		u8(o.State)
		u64(uint64(o.CopiedThrough))
		u64(uint64(o.Lo))
		u64(uint64(o.Hi))
	}
	return b
}

// Unmarshal decodes a message body.
func Unmarshal(b []byte) (*Msg, error) {
	m := &Msg{}
	off := 0
	fail := func() (*Msg, error) { return nil, fmt.Errorf("wire: message truncated at %d", off) }
	u8 := func() (uint8, bool) {
		if off+1 > len(b) {
			return 0, false
		}
		v := b[off]
		off++
		return v, true
	}
	u32 := func() (uint32, bool) {
		if off+4 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v, true
	}
	str := func(n uint32) (string, bool) {
		if off+int(n) > len(b) {
			return "", false
		}
		s := string(b[off : off+int(n)])
		off += int(n)
		return s, true
	}
	t8, ok := u8()
	if !ok {
		return fail()
	}
	m.Type = Type(t8)
	var v64 uint64
	var v32 uint32
	var v8 uint8
	if v64, ok = u64(); !ok {
		return fail()
	}
	m.Txn = int64(v64)
	if v32, ok = u32(); !ok {
		return fail()
	}
	m.Table = int32(v32)
	if v32, ok = u32(); !ok {
		return fail()
	}
	m.Site = int32(v32)
	if v64, ok = u64(); !ok {
		return fail()
	}
	m.Key = int64(v64)
	if v64, ok = u64(); !ok {
		return fail()
	}
	m.TS = int64(v64)
	if v64, ok = u64(); !ok {
		return fail()
	}
	m.Cycles = int64(v64)
	if v64, ok = u64(); !ok {
		return fail()
	}
	m.Count = int64(v64)
	if v8, ok = u8(); !ok {
		return fail()
	}
	m.Flags = v8
	if v8, ok = u8(); !ok {
		return fail()
	}
	m.Vis = v8
	if v32, ok = u32(); !ok {
		return fail()
	}
	m.SegPages = int32(v32)
	if v64, ok = u64(); !ok {
		return fail()
	}
	m.KeyLo = int64(v64)
	if v64, ok = u64(); !ok {
		return fail()
	}
	m.KeyHi = int64(v64)
	if v64, ok = u64(); !ok {
		return fail()
	}
	m.InsLE = int64(v64)
	if v64, ok = u64(); !ok {
		return fail()
	}
	m.InsGT = int64(v64)
	if v64, ok = u64(); !ok {
		return fail()
	}
	m.DelGT = int64(v64)
	if v32, ok = u32(); !ok {
		return fail()
	}
	if m.Text, ok = str(v32); !ok {
		return fail()
	}
	if v32, ok = u32(); !ok {
		return fail()
	}
	for i := uint32(0); i < v32; i++ {
		s, ok := u32()
		if !ok {
			return fail()
		}
		m.Sites = append(m.Sites, int32(s))
	}
	if v32, ok = u32(); !ok {
		return fail()
	}
	if v32 > 0 {
		if off+int(v32) > len(b) {
			return fail()
		}
		d, n, err := tuple.UnmarshalDesc(b[off : off+int(v32)])
		if err != nil {
			return nil, err
		}
		if n != int(v32) {
			return nil, fmt.Errorf("wire: schema length mismatch")
		}
		off += int(v32)
		m.Desc = d
	}
	if v32, ok = u32(); !ok {
		return fail()
	}
	for i := uint32(0); i < v32; i++ {
		kind, ok := u8()
		if !ok {
			return fail()
		}
		var v tuple.Value
		if kind == 1 {
			n, ok := u32()
			if !ok {
				return fail()
			}
			if v.Str, ok = str(n); !ok {
				return fail()
			}
		} else {
			x, ok := u64()
			if !ok {
				return fail()
			}
			v.I64 = int64(x)
		}
		m.Tuple = append(m.Tuple, v)
	}
	if v32, ok = u32(); !ok {
		return fail()
	}
	for i := uint32(0); i < v32; i++ {
		field, ok1 := u32()
		op, ok2 := u8()
		if !ok1 || !ok2 {
			return fail()
		}
		term := expr.Term{Field: int(int32(field)), Op: expr.Op(op)}
		kind, ok := u8()
		if !ok {
			return fail()
		}
		if kind == 1 {
			n, ok := u32()
			if !ok {
				return fail()
			}
			if term.Value.Str, ok = str(n); !ok {
				return fail()
			}
		} else {
			x, ok := u64()
			if !ok {
				return fail()
			}
			term.Value.I64 = int64(x)
		}
		m.Pred = append(m.Pred, term)
	}
	if v32, ok = u32(); !ok {
		return fail()
	}
	if v32 > 0 {
		if off+int(v32) > len(b) {
			return fail()
		}
		m.Raw = append([]byte(nil), b[off:off+int(v32)]...)
		off += int(v32)
	}
	if v32, ok = u32(); !ok {
		return fail()
	}
	m.AggGroup = int32(v32)
	if v32, ok = u32(); !ok {
		return fail()
	}
	for i := uint32(0); i < v32; i++ {
		fn, ok1 := u8()
		field, ok2 := u32()
		if !ok1 || !ok2 {
			return fail()
		}
		m.Aggs = append(m.Aggs, AggCol{Fn: fn, Field: int32(field)})
	}
	if v32, ok = u32(); !ok {
		return fail()
	}
	for i := uint32(0); i < v32; i++ {
		table, ok1 := u32()
		state, ok2 := u8()
		ct, ok3 := u64()
		lo, ok4 := u64()
		hi, ok5 := u64()
		if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
			return fail()
		}
		m.Objs = append(m.Objs, ObjReady{Table: int32(table), State: state,
			CopiedThrough: int64(ct), Lo: int64(lo), Hi: int64(hi)})
	}
	return m, nil
}

// WriteMsg frames and writes one message: u32 length, u32 crc, body. Each
// call allocates a fresh frame; connections use an Encoder instead.
func WriteMsg(w io.Writer, m *Msg) error {
	var e Encoder
	return e.WriteMsg(w, m)
}

// Encoder frames messages through a reusable scratch buffer: the frame
// (header + body) is assembled in place and written with a single Write.
// An Encoder is not safe for concurrent use; comm.Conn serialises writers.
type Encoder struct {
	buf []byte
}

// WriteMsg frames and writes one message, reusing the encoder's buffer.
func (e *Encoder) WriteMsg(w io.Writer, m *Msg) error {
	b := append(e.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	b = m.AppendTo(b)
	e.buf = b // keep the grown capacity for the next message
	body := b[8:]
	binary.LittleEndian.PutUint32(b, uint32(len(body)))
	binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(body))
	_, err := w.Write(b)
	return err
}

// MaxMsgSize bounds a frame (sanity against stream corruption).
const MaxMsgSize = 16 << 20

// ReadMsg reads one framed message, allocating a fresh frame buffer.
// Connections use a Decoder instead.
func ReadMsg(r io.Reader) (*Msg, error) {
	var d Decoder
	return d.ReadMsg(r)
}

// Decoder reads frames through a reusable scratch buffer. Unmarshal copies
// every string out of the frame, so the buffer may be reused immediately.
// A Decoder is not safe for concurrent use; connections have one reader.
type Decoder struct {
	buf []byte
}

// ReadMsg reads one framed message, reusing the decoder's buffer.
func (d *Decoder) ReadMsg(r io.Reader) (*Msg, error) {
	if cap(d.buf) < 8 {
		d.buf = make([]byte, 8, 4<<10)
	}
	hdr := d.buf[:8]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxMsgSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	body := d.buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("wire: frame checksum mismatch")
	}
	return Unmarshal(body)
}

// TupleValues converts an in-memory tuple to wire values.
func TupleValues(t tuple.Tuple) []tuple.Value {
	return append([]tuple.Value(nil), t.Values...)
}

// ToTuple converts wire values back to a tuple.
func ToTuple(vals []tuple.Value) tuple.Tuple {
	return tuple.Tuple{Values: append([]tuple.Value(nil), vals...)}
}

// PredOf converts wire terms into a predicate.
func PredOf(terms []expr.Term) expr.Pred { return expr.Pred{Terms: terms} }

// KeysOnlyStride is the byte width of one row of a keys-only batch frame:
// the tuple key and its deletion timestamp, both int64 little-endian.
const KeysOnlyStride = 16

// AppendKeyRow appends one (key, del_ts) pair to a keys-only frame payload.
func AppendKeyRow(raw []byte, key, delTS int64) []byte {
	raw = binary.LittleEndian.AppendUint64(raw, uint64(key))
	return binary.LittleEndian.AppendUint64(raw, uint64(delTS))
}

// KeyRow decodes row i of a keys-only frame payload.
func KeyRow(raw []byte, i int) (key, delTS int64) {
	off := i * KeysOnlyStride
	key = int64(binary.LittleEndian.Uint64(raw[off:]))
	delTS = int64(binary.LittleEndian.Uint64(raw[off+8:]))
	return key, delTS
}

// AggStride is the byte width of one partial group-state row of ncols
// int64 columns.
func AggStride(ncols int) int { return 8 * ncols }

// AppendAggRow appends one partial group-state row to an agg frame payload.
func AppendAggRow(raw []byte, vals ...int64) []byte {
	for _, v := range vals {
		raw = binary.LittleEndian.AppendUint64(raw, uint64(v))
	}
	return raw
}

// AggRow appends the ncols values of row i of an agg frame payload to dst.
func AggRow(raw []byte, i, ncols int, dst []int64) []int64 {
	off := i * AggStride(ncols)
	for c := 0; c < ncols; c++ {
		dst = append(dst, int64(binary.LittleEndian.Uint64(raw[off+8*c:])))
	}
	return dst
}

// CheckBatch validates a MsgTupleBatch/MsgAggBatch frame against the row
// stride it is expected to carry (Desc.Width() for full rows,
// KeysOnlyStride for the keys-only projection, AggStride for partial
// group states) and returns the row count.
func CheckBatch(m *Msg, stride int) (int, error) {
	if stride <= 0 {
		return 0, fmt.Errorf("wire: batch stride %d", stride)
	}
	if int64(len(m.Raw)) != m.Count*int64(stride) {
		return 0, fmt.Errorf("wire: batch frame %d bytes, want %d rows × %d",
			len(m.Raw), m.Count, stride)
	}
	return int(m.Count), nil
}

// BatchTargetRows and BatchTargetBytes are the flush policy of batched
// tuple streams: a frame is sent when it reaches BatchTargetRows rows or
// its payload exceeds BatchTargetBytes, whichever comes first.
const (
	BatchTargetRows  = 256
	BatchTargetBytes = 32 << 10
)
