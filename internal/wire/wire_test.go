package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"harbor/internal/expr"
	"harbor/internal/tuple"
)

func TestMarshalRoundTripAllFields(t *testing.T) {
	desc := tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "name", Type: tuple.Char, Size: 8},
	)
	m := &Msg{
		Type: MsgRecoveryScan, Txn: -5, Table: 3, Site: 2, Key: 99, TS: 1234,
		Cycles: 7, Count: 11, Flags: FlagYes | FlagHasDelGT, Vis: 2,
		SegPages: 256, KeyLo: -100, KeyHi: 100, InsLE: 1, InsGT: 2, DelGT: 3,
		Text:  "hello",
		Sites: []int32{1, 2, 3},
		Desc:  desc,
		Tuple: []tuple.Value{tuple.VInt(5), tuple.VStr("x")},
		Pred: []expr.Term{
			{Field: 2, Op: expr.GE, Value: tuple.VInt(10)},
			{Field: 3, Op: expr.EQ, Value: tuple.VStr("abc")},
		},
		AggGroup: -1,
		Aggs:     []AggCol{{Fn: 2, Field: 3}, {Fn: 1, Field: 0}},
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	// Desc compares via Equal; compare separately then null out.
	if !got.Desc.Equal(m.Desc) {
		t.Fatal("desc mismatch")
	}
	got.Desc, m.Desc = nil, nil
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, m)
	}
}

func TestFrameReadWrite(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Msg{
		{Type: MsgPing},
		{Type: MsgInsert, Txn: 1, Table: 2, Tuple: []tuple.Value{tuple.VInt(1)}},
		{Type: MsgErr, Text: "boom"},
	}
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMsg(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Text != want.Text {
			t.Fatalf("got %v want %v", got.Type, want.Type)
		}
	}
}

func TestFrameChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, &Msg{Type: MsgPing, Text: "x"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[10] ^= 0xFF
	if _, err := ReadMsg(bytes.NewReader(raw)); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestErrHelper(t *testing.T) {
	if (&Msg{Type: MsgOK}).Err() != nil {
		t.Fatal("OK produced error")
	}
	if (&Msg{Type: MsgErr, Text: "bad"}).Err() == nil {
		t.Fatal("MsgErr produced nil error")
	}
	if !(&Msg{Flags: FlagYes}).Yes() {
		t.Fatal("Yes() broken")
	}
}

func TestTupleConversion(t *testing.T) {
	desc := tuple.MustDesc("id", tuple.FieldDef{Name: "id", Type: tuple.Int64})
	tp := tuple.MustMake(desc, tuple.VInt(42))
	tp.SetInsTS(7)
	vals := TupleValues(tp)
	back := ToTuple(vals)
	if !back.Equal(desc, tp) {
		t.Fatal("tuple conversion lost data")
	}
	// Mutating the wire copy must not touch the original.
	vals[0].I64 = 99
	if tp.InsTS() != 7 {
		t.Fatal("TupleValues aliases the tuple")
	}
}

func TestQuickMsgRoundTrip(t *testing.T) {
	f := func(typ uint8, txn, key, ts int64, table, site int32, flags, vis uint8, text string, nSites uint8) bool {
		m := &Msg{
			Type: Type(typ%30 + 1), Txn: txn, Table: table, Site: site,
			Key: key, TS: ts, Flags: flags, Vis: vis, Text: text,
		}
		for i := uint8(0); i < nSites%5; i++ {
			m.Sites = append(m.Sites, int32(i))
		}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestAggFrameRoundTrip(t *testing.T) {
	// Three partial group-state rows of (group, count, sum).
	var raw []byte
	rows := [][]int64{{10, 2, 3}, {20, 3, 12}, {-1, 1, -7}}
	for _, r := range rows {
		raw = AppendAggRow(raw, r...)
	}
	m := &Msg{Type: MsgAggBatch, Count: int64(len(rows)), Raw: raw}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	n, err := CheckBatch(got, AggStride(3))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rows) {
		t.Fatalf("rows = %d, want %d", n, len(rows))
	}
	for i, want := range rows {
		if gotRow := AggRow(got.Raw, i, 3, nil); !reflect.DeepEqual(gotRow, want) {
			t.Fatalf("row %d = %v, want %v", i, gotRow, want)
		}
	}
	// A frame whose payload disagrees with its row count must be rejected.
	got.Count++
	if _, err := CheckBatch(got, AggStride(3)); err == nil {
		t.Fatal("short agg frame not detected")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	m := &Msg{Type: MsgScan, Text: "abc", Sites: []int32{1}, Tuple: []tuple.Value{tuple.VStr("s")}}
	body := m.Marshal()
	for i := 0; i < len(body); i++ {
		if _, err := Unmarshal(body[:i]); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 8)
	hdr[3] = 0xFF // huge length
	buf.Write(hdr)
	if _, err := ReadMsg(&buf); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func BenchmarkMsgRoundTrip(b *testing.B) {
	m := &Msg{Type: MsgInsert, Txn: 1, Table: 2, Tuple: make([]tuple.Value, 16)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(m.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMsg is a representative update request (the hot message of the
// distribution fan-out).
func benchMsg() *Msg {
	vals := make([]tuple.Value, 8)
	for i := range vals {
		vals[i] = tuple.VInt(int64(i * 7))
	}
	return &Msg{Type: MsgInsert, Txn: 42, Table: 3, Key: 99, Tuple: vals}
}

// BenchmarkMarshal compares the per-message-allocation framing path
// (WriteMsg → Marshal) with the reused-scratch-buffer path (Encoder).
func BenchmarkMarshal(b *testing.B) {
	m := benchMsg()
	b.Run("alloc-per-msg", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			body := m.Marshal()
			hdr := make([]byte, 8)
			binary.LittleEndian.PutUint32(hdr, uint32(len(body)))
			binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
			_, _ = io.Discard.Write(hdr)
			_, _ = io.Discard.Write(body)
		}
	})
	b.Run("encoder-reuse", func(b *testing.B) {
		var e Encoder
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := e.WriteMsg(io.Discard, m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestEncoderHalvesAllocations pins the satellite claim: the reused scratch
// buffer must cut encoding allocations by at least 50% versus the
// allocate-per-message path (steady state it is in fact zero).
func TestEncoderHalvesAllocations(t *testing.T) {
	m := benchMsg()
	perMsg := testing.AllocsPerRun(200, func() {
		if err := WriteMsg(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	})
	var e Encoder
	e.WriteMsg(io.Discard, m) // warm the scratch buffer
	reused := testing.AllocsPerRun(200, func() {
		if err := e.WriteMsg(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	})
	if perMsg < 1 {
		t.Fatalf("allocate-per-message path reports %.1f allocs/op; benchmark baseline invalid", perMsg)
	}
	if reused > perMsg/2 {
		t.Fatalf("encoder allocs/op = %.1f, want <= half of %.1f", reused, perMsg)
	}
}

// TestEncoderDecoderRoundTrip checks frame reuse does not corrupt
// back-to-back messages (strings must be copied out of the scratch).
func TestEncoderDecoderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var e Encoder
	var d Decoder
	msgs := []*Msg{
		{Type: MsgInsert, Txn: 1, Table: 2, Tuple: []tuple.Value{tuple.VStr("alpha"), tuple.VInt(7)}},
		{Type: MsgErr, Text: "deadlock timeout"},
		{Type: MsgCommit, Txn: 9, TS: 1234},
	}
	for _, m := range msgs {
		if err := e.WriteMsg(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	var got []*Msg
	for range msgs {
		m, err := d.ReadMsg(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m)
	}
	if got[0].Tuple[0].Str != "alpha" || got[0].Tuple[1].I64 != 7 {
		t.Fatalf("first message corrupted: %+v", got[0])
	}
	if got[1].Text != "deadlock timeout" {
		t.Fatalf("second message corrupted: %+v", got[1])
	}
	if got[2].TS != 1234 {
		t.Fatalf("third message corrupted: %+v", got[2])
	}
}

// TestBatchFrameRoundTrip packs a tuple.Batch into a MsgTupleBatch frame,
// runs it through the Encoder/Decoder pair, and checks the rows decode
// byte-identically (including Char padding trim and negative ints).
func TestBatchFrameRoundTrip(t *testing.T) {
	desc := tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "v", Type: tuple.Int32},
		tuple.FieldDef{Name: "tag", Type: tuple.Char, Size: 6},
	)
	b := tuple.NewBatch(8)
	for i := 0; i < 5; i++ {
		tp := tuple.MustMake(desc, tuple.VInt(int64(i-2)), tuple.VInt(int64(i*7)), tuple.VStr("x"))
		tp.SetInsTS(int64(100 + i))
		b.Append(tp)
	}
	m := &Msg{Type: MsgTupleBatch, Count: int64(b.Len()), Raw: b.EncodeTo(desc, nil)}

	var buf bytes.Buffer
	var e Encoder
	var d Decoder
	if err := e.WriteMsg(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := CheckBatch(got, desc.Width())
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("rows = %d", n)
	}
	out := tuple.NewBatch(n)
	if err := out.DecodeBatch(desc, got.Raw); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !out.Row(i).Equal(desc, b.Row(i)) {
			t.Fatalf("row %d: got %v want %v", i, out.Row(i), b.Row(i))
		}
	}
}

// TestKeysOnlyFrame round-trips the (key, del_ts) projection of the Phase 2
// deletion query and checks CheckBatch validates both strides.
func TestKeysOnlyFrame(t *testing.T) {
	var raw []byte
	raw = AppendKeyRow(raw, -7, 0)
	raw = AppendKeyRow(raw, 1<<40, 999)
	m := &Msg{Type: MsgTupleBatch, Count: 2, Flags: FlagYes, Raw: raw}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	n, err := CheckBatch(got, KeysOnlyStride)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("rows = %d", n)
	}
	if k, d := KeyRow(got.Raw, 0); k != -7 || d != 0 {
		t.Fatalf("row 0 = (%d,%d)", k, d)
	}
	if k, d := KeyRow(got.Raw, 1); k != 1<<40 || d != 999 {
		t.Fatalf("row 1 = (%d,%d)", k, d)
	}
	// A frame whose payload disagrees with Count must be rejected.
	if _, err := CheckBatch(&Msg{Count: 3, Raw: raw}, KeysOnlyStride); err == nil {
		t.Fatal("short frame accepted")
	}
}

// Property: Unmarshal never panics on arbitrary bytes — corrupt frames from
// a broken peer must fail cleanly.
func TestQuickUnmarshalRobustness(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Unmarshal panicked on %x: %v", b, r)
			}
		}()
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}
