package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"harbor/internal/expr"
	"harbor/internal/tuple"
)

func TestMarshalRoundTripAllFields(t *testing.T) {
	desc := tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "name", Type: tuple.Char, Size: 8},
	)
	m := &Msg{
		Type: MsgRecoveryScan, Txn: -5, Table: 3, Site: 2, Key: 99, TS: 1234,
		Cycles: 7, Count: 11, Flags: FlagYes | FlagHasDelGT, Vis: 2,
		SegPages: 256, KeyLo: -100, KeyHi: 100, InsLE: 1, InsGT: 2, DelGT: 3,
		Text:  "hello",
		Sites: []int32{1, 2, 3},
		Desc:  desc,
		Tuple: []tuple.Value{tuple.VInt(5), tuple.VStr("x")},
		Pred: []expr.Term{
			{Field: 2, Op: expr.GE, Value: tuple.VInt(10)},
			{Field: 3, Op: expr.EQ, Value: tuple.VStr("abc")},
		},
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	// Desc compares via Equal; compare separately then null out.
	if !got.Desc.Equal(m.Desc) {
		t.Fatal("desc mismatch")
	}
	got.Desc, m.Desc = nil, nil
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, m)
	}
}

func TestFrameReadWrite(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Msg{
		{Type: MsgPing},
		{Type: MsgInsert, Txn: 1, Table: 2, Tuple: []tuple.Value{tuple.VInt(1)}},
		{Type: MsgErr, Text: "boom"},
	}
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMsg(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Text != want.Text {
			t.Fatalf("got %v want %v", got.Type, want.Type)
		}
	}
}

func TestFrameChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, &Msg{Type: MsgPing, Text: "x"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[10] ^= 0xFF
	if _, err := ReadMsg(bytes.NewReader(raw)); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestErrHelper(t *testing.T) {
	if (&Msg{Type: MsgOK}).Err() != nil {
		t.Fatal("OK produced error")
	}
	if (&Msg{Type: MsgErr, Text: "bad"}).Err() == nil {
		t.Fatal("MsgErr produced nil error")
	}
	if !(&Msg{Flags: FlagYes}).Yes() {
		t.Fatal("Yes() broken")
	}
}

func TestTupleConversion(t *testing.T) {
	desc := tuple.MustDesc("id", tuple.FieldDef{Name: "id", Type: tuple.Int64})
	tp := tuple.MustMake(desc, tuple.VInt(42))
	tp.SetInsTS(7)
	vals := TupleValues(tp)
	back := ToTuple(vals)
	if !back.Equal(desc, tp) {
		t.Fatal("tuple conversion lost data")
	}
	// Mutating the wire copy must not touch the original.
	vals[0].I64 = 99
	if tp.InsTS() != 7 {
		t.Fatal("TupleValues aliases the tuple")
	}
}

func TestQuickMsgRoundTrip(t *testing.T) {
	f := func(typ uint8, txn, key, ts int64, table, site int32, flags, vis uint8, text string, nSites uint8) bool {
		m := &Msg{
			Type: Type(typ%30 + 1), Txn: txn, Table: table, Site: site,
			Key: key, TS: ts, Flags: flags, Vis: vis, Text: text,
		}
		for i := uint8(0); i < nSites%5; i++ {
			m.Sites = append(m.Sites, int32(i))
		}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	m := &Msg{Type: MsgScan, Text: "abc", Sites: []int32{1}, Tuple: []tuple.Value{tuple.VStr("s")}}
	body := m.Marshal()
	for i := 0; i < len(body); i++ {
		if _, err := Unmarshal(body[:i]); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 8)
	hdr[3] = 0xFF // huge length
	buf.Write(hdr)
	if _, err := ReadMsg(&buf); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func BenchmarkMsgRoundTrip(b *testing.B) {
	m := &Msg{Type: MsgInsert, Txn: 1, Table: 2, Tuple: make([]tuple.Value, 16)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(m.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: Unmarshal never panics on arbitrary bytes — corrupt frames from
// a broken peer must fail cleanly.
func TestQuickUnmarshalRobustness(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Unmarshal panicked on %x: %v", b, r)
			}
		}()
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}
