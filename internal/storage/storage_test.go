package storage

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"harbor/internal/page"
	"harbor/internal/tuple"
)

func testDesc() *tuple.Desc {
	return tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "v", Type: tuple.Int32},
	)
}

func newHeap(t *testing.T, segPages int32) *HeapFile {
	t.Helper()
	h, err := Create(t.TempDir(), 1, testDesc(), segPages)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// writeTuple writes a committed tuple into a fresh slot via the raw page
// API, mimicking the access layer, and updates segment stats.
func writeTuple(t *testing.T, h *HeapFile, id int64, ins, del tuple.Timestamp) page.RecordID {
	t.Helper()
	tp := tuple.MustMake(h.Desc(), tuple.VInt(id), tuple.VInt(0))
	tp.SetInsTS(ins)
	tp.SetDelTS(del)
	pno := h.InsertHint()
	var pg *page.Page
	var si int32
	if pno >= 0 {
		img, err := h.ReadPageData(pno)
		if err != nil {
			t.Fatal(err)
		}
		pg, err = page.FromBytes(page.ID{Table: h.TableID(), PageNo: pno}, img, h.TupleWidth())
		if err != nil {
			t.Fatal(err)
		}
		if pg.FirstFree() < 0 {
			pno = -1
		}
		si = h.SegmentFor(pno)
	}
	if pno < 0 {
		var err error
		pno, si, err = h.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		img, err := h.ReadPageData(pno)
		if err != nil {
			t.Fatal(err)
		}
		pg, err = page.FromBytes(page.ID{Table: h.TableID(), PageNo: pno}, img, h.TupleWidth())
		if err != nil {
			t.Fatal(err)
		}
	}
	slot, err := pg.Insert(tp.Encode(h.Desc()))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WritePageData(pno, pg.Bytes()); err != nil {
		t.Fatal(err)
	}
	h.SetInsertHint(pno)
	if ins == tuple.Uncommitted {
		h.OnUncommittedInsert(si)
	} else {
		h.OnCommitStamp(si, ins, del)
	}
	return page.RecordID{Page: page.ID{Table: h.TableID(), PageNo: pno}, Slot: slot}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h, err := Create(dir, 7, testDesc(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		writeTupleH(t, h, i, tuple.Timestamp(i+1), 0)
	}
	if err := h.SyncData(); err != nil {
		t.Fatal(err)
	}
	if err := h.FlushMeta(); err != nil {
		t.Fatal(err)
	}
	segs := h.Segments()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	h2, err := Open(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if !reflect.DeepEqual(h2.Segments(), segs) {
		t.Fatalf("segment directory changed across reopen:\n%v\n%v", h2.Segments(), segs)
	}
	count := 0
	if err := h2.ScanDirect(h2.AllSegments(), func(_ page.RecordID, tp tuple.Tuple) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("reopened scan found %d tuples, want 100", count)
	}
}

// writeTupleH is writeTuple but takes testing.TB-independent helper usage.
func writeTupleH(t *testing.T, h *HeapFile, id int64, ins, del tuple.Timestamp) page.RecordID {
	return writeTuple(t, h, id, ins, del)
}

func TestSegmentRollover(t *testing.T) {
	h := newHeap(t, 2) // 2 pages per segment
	perPage := h.SlotsPerPage()
	total := perPage*2*3 + 1 // fills 3 segments and starts a 4th
	for i := 0; i < total; i++ {
		writeTuple(t, h, int64(i), tuple.Timestamp(i+1), 0)
	}
	if got := h.NumSegments(); got != 4 {
		t.Fatalf("segments = %d, want 4", got)
	}
	segs := h.Segments()
	for i := 0; i < 3; i++ {
		if segs[i].NumPages() != 2 {
			t.Fatalf("segment %d has %d pages, want 2", i, segs[i].NumPages())
		}
	}
	// Tmin/Tmax per segment must be ordered and non-overlapping for this
	// strictly increasing insertion history.
	for i := 0; i < len(segs)-1; i++ {
		if segs[i].TmaxIns >= segs[i+1].TminIns {
			t.Fatalf("segment %d TmaxIns %d >= segment %d TminIns %d",
				i, segs[i].TmaxIns, i+1, segs[i+1].TminIns)
		}
	}
}

func TestSegmentStats(t *testing.T) {
	h := newHeap(t, 8)
	writeTuple(t, h, 1, 10, 0)
	writeTuple(t, h, 2, 20, 0)
	h.OnCommitStamp(0, 0, 25) // delete stamped at 25
	segs := h.Segments()
	if segs[0].TminIns != 10 || segs[0].TmaxIns != 20 || segs[0].TmaxDel != 25 {
		t.Fatalf("stats = %+v", segs[0])
	}
	// Stamping with smaller values must not regress the bounds.
	h.OnCommitStamp(0, 15, 5)
	segs = h.Segments()
	if segs[0].TminIns != 10 || segs[0].TmaxIns != 20 || segs[0].TmaxDel != 25 {
		t.Fatalf("stats regressed: %+v", segs[0])
	}
	// Out-of-range segment index is ignored.
	h.OnCommitStamp(99, 1, 1)
}

func TestSegmentPlanPruning(t *testing.T) {
	h := newHeap(t, 1) // 1 page per segment → easy to force many segments
	perPage := h.SlotsPerPage()
	// Three segments with ins ranges [1..p], [p+1..2p], [2p+1..3p].
	for i := 0; i < perPage*3; i++ {
		writeTuple(t, h, int64(i), tuple.Timestamp(i+1), 0)
	}
	if h.NumSegments() != 3 {
		t.Fatalf("want 3 segments, got %d", h.NumSegments())
	}
	p := tuple.Timestamp(perPage)
	le := p // ins <= p → only segment 0
	if got := h.SegmentPlan(&le, nil, nil, false); !reflect.DeepEqual(got, []int32{0}) {
		t.Fatalf("insLE plan = %v", got)
	}
	gt := 2 * p // ins > 2p → only segment 2
	if got := h.SegmentPlan(nil, &gt, nil, false); !reflect.DeepEqual(got, []int32{2}) {
		t.Fatalf("insGT plan = %v", got)
	}
	// No deletes yet: delGT prunes everything.
	z := tuple.Timestamp(0)
	if got := h.SegmentPlan(nil, nil, &z, false); got != nil {
		t.Fatalf("delGT plan = %v, want empty", got)
	}
	// Delete in segment 1 at time 100.
	h.OnCommitStamp(1, 0, 100)
	d := tuple.Timestamp(50)
	if got := h.SegmentPlan(nil, nil, &d, false); !reflect.DeepEqual(got, []int32{1}) {
		t.Fatalf("delGT plan after delete = %v", got)
	}
	d2 := tuple.Timestamp(100)
	if got := h.SegmentPlan(nil, nil, &d2, false); got != nil {
		t.Fatalf("delGT plan at exact bound = %v, want empty", got)
	}
}

func TestSegmentPlanUncommitted(t *testing.T) {
	h := newHeap(t, 1)
	perPage := h.SlotsPerPage()
	for i := 0; i < perPage*2; i++ {
		writeTuple(t, h, int64(i), tuple.Timestamp(i+1), 0)
	}
	// An uncommitted tuple lands in segment 1 (still the last).
	writeTuple(t, h, 999, tuple.Uncommitted, 0)
	gt := tuple.Timestamp(math.MaxInt64 - 1) // ins > everything committed
	got := h.SegmentPlan(nil, &gt, nil, true)
	// Segments 0 and 1 are full (segPages=1), so the uncommitted tuple
	// opened segment 2; only it must survive pruning, and only because of
	// the uncommitted bound.
	if !reflect.DeepEqual(got, []int32{2}) {
		t.Fatalf("uncommitted plan = %v, want [2] (segments=%d, minUnc=%d)",
			got, h.NumSegments(), h.MinUncommittedSeg())
	}
	if withoutUnc := h.SegmentPlan(nil, &gt, nil, false); withoutUnc != nil {
		t.Fatalf("plan without uncommitted bound = %v, want empty", withoutUnc)
	}
	// Resolve it; the bound clears and the plan empties.
	h.OnUncommittedResolved(h.MinUncommittedSeg())
	if h.MinUncommittedSeg() != -1 {
		t.Fatalf("MinUncommittedSeg = %d after resolve", h.MinUncommittedSeg())
	}
	if got := h.SegmentPlan(nil, &gt, nil, true); got != nil {
		t.Fatalf("plan after resolve = %v", got)
	}
}

func TestMinUncommittedAcrossSegments(t *testing.T) {
	h := newHeap(t, 1)
	perPage := h.SlotsPerPage()
	writeTuple(t, h, 1, tuple.Uncommitted, 0) // seg 0
	for i := 0; i < perPage*2; i++ {
		writeTuple(t, h, int64(100+i), tuple.Timestamp(i+1), 0)
	}
	writeTuple(t, h, 2, tuple.Uncommitted, 0) // a later segment
	if h.MinUncommittedSeg() != 0 {
		t.Fatalf("min = %d, want 0", h.MinUncommittedSeg())
	}
	h.OnUncommittedResolved(0)
	if h.MinUncommittedSeg() == 0 || h.MinUncommittedSeg() == -1 {
		t.Fatalf("min should move past 0, got %d", h.MinUncommittedSeg())
	}
	h.ClearUncommittedBound()
	if h.MinUncommittedSeg() != -1 {
		t.Fatalf("min after clear = %d", h.MinUncommittedSeg())
	}
}

func TestBulkLoadAndDrop(t *testing.T) {
	h := newHeap(t, 4)
	desc := h.Desc()
	mkBatch := func(base int64, ts tuple.Timestamp, n int) []tuple.Tuple {
		out := make([]tuple.Tuple, n)
		for i := range out {
			tp := tuple.MustMake(desc, tuple.VInt(base+int64(i)), tuple.VInt(0))
			tp.SetInsTS(ts)
			out[i] = tp
		}
		return out
	}
	perPage := h.SlotsPerPage()
	si, err := h.BulkLoadSegment(mkBatch(0, 5, perPage*3))
	if err != nil {
		t.Fatal(err)
	}
	if si != 0 {
		t.Fatalf("first bulk segment index = %d", si)
	}
	if _, err := h.BulkLoadSegment(mkBatch(10000, 6, perPage)); err != nil {
		t.Fatal(err)
	}
	if h.NumSegments() != 2 {
		t.Fatalf("segments = %d, want 2", h.NumSegments())
	}
	segs := h.Segments()
	if segs[0].TminIns != 5 || segs[0].TmaxIns != 5 {
		t.Fatalf("bulk segment stats: %+v", segs[0])
	}
	pagesBefore := h.NumPages()

	if err := h.DropOldestSegment(); err != nil {
		t.Fatal(err)
	}
	if h.NumSegments() != 1 {
		t.Fatalf("segments after drop = %d", h.NumSegments())
	}
	// Dropped pages must be reused by the next bulk load instead of growing
	// the file.
	if _, err := h.BulkLoadSegment(mkBatch(20000, 7, perPage*2)); err != nil {
		t.Fatal(err)
	}
	if h.NumPages() != pagesBefore {
		t.Fatalf("file grew from %d to %d pages despite free extents", pagesBefore, h.NumPages())
	}
	// Survives reopen.
	if err := h.FlushMeta(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := h.ScanDirect(h.AllSegments(), func(_ page.RecordID, tp tuple.Tuple) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != perPage+perPage*2 {
		t.Fatalf("post-drop scan found %d tuples, want %d", count, perPage*3)
	}
}

func TestBulkLoadRejectsUncommitted(t *testing.T) {
	h := newHeap(t, 4)
	tp := tuple.MustMake(h.Desc(), tuple.VInt(1), tuple.VInt(0))
	if _, err := h.BulkLoadSegment([]tuple.Tuple{tp}); err == nil {
		t.Fatal("bulk load of uncommitted tuples must fail")
	}
	if _, err := h.BulkLoadSegment(nil); err == nil {
		t.Fatal("bulk load of zero tuples must fail")
	}
}

func TestMetaDurability(t *testing.T) {
	dir := t.TempDir()
	h, err := Create(dir, 3, testDesc(), 2)
	if err != nil {
		t.Fatal(err)
	}
	writeTuple(t, h, 1, 10, 0)
	// Meta is dirty; EnsureMetaDurable must persist the stats.
	if err := h.EnsureMetaDurable(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(metaPath(dir, 3))
	if err != nil {
		t.Fatal(err)
	}
	m, err := unmarshalMeta(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 1 || m.Segments[0].TminIns != 10 {
		t.Fatalf("durable meta missing stats: %+v", m.Segments)
	}
	h.Close()
}

func TestMetaChecksumDetection(t *testing.T) {
	dir := t.TempDir()
	h, err := Create(dir, 3, testDesc(), 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	path := metaPath(dir, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[8] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 3); err == nil {
		t.Fatal("corrupted meta must fail to open")
	}
}

func TestReadPastEOFFormatsFresh(t *testing.T) {
	h := newHeap(t, 4)
	pno, _, err := h.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	// Never written: read must return a valid empty page.
	img, err := h.ReadPageData(pno)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := page.FromBytes(page.ID{Table: h.TableID(), PageNo: pno}, img, h.TupleWidth())
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumUsed() != 0 {
		t.Fatal("fresh page not empty")
	}
	if _, err := h.ReadPageData(pno + 1); err == nil {
		t.Fatal("read past NextPage must fail")
	}
	if _, err := h.ReadPageData(-1); err == nil {
		t.Fatal("negative page must fail")
	}
}

func TestKeyIndex(t *testing.T) {
	idx := NewKeyIndex()
	r1 := page.RecordID{Page: page.ID{Table: 1, PageNo: 0}, Slot: 0}
	r2 := page.RecordID{Page: page.ID{Table: 1, PageNo: 0}, Slot: 1}
	idx.Add(5, r1)
	idx.Add(5, r2) // two versions of the same logical tuple
	if got := idx.Lookup(5); len(got) != 2 {
		t.Fatalf("lookup returned %v", got)
	}
	if idx.Len() != 2 {
		t.Fatalf("Len = %d", idx.Len())
	}
	idx.Remove(5, r1)
	if got := idx.Lookup(5); len(got) != 1 || got[0] != r2 {
		t.Fatalf("after remove: %v", got)
	}
	idx.Remove(5, r2)
	if got := idx.Lookup(5); got != nil {
		t.Fatalf("after removing all: %v", got)
	}
	idx.Remove(99, r1) // removing a missing key is a no-op
	idx.Add(1, r1)
	idx.Clear()
	if idx.Len() != 0 {
		t.Fatal("Clear did not empty the index")
	}
}

func TestBuildKeyIndex(t *testing.T) {
	h := newHeap(t, 4)
	writeTuple(t, h, 10, 1, 0)
	writeTuple(t, h, 11, 2, 0)
	writeTuple(t, h, 10, 3, 0) // new version of key 10
	idx, err := BuildKeyIndex(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Lookup(10)) != 2 || len(idx.Lookup(11)) != 1 {
		t.Fatalf("rebuilt index wrong: 10→%v 11→%v", idx.Lookup(10), idx.Lookup(11))
	}
}

func TestManagerLifecycle(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := m.Create(1, testDesc(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(1, testDesc(), 4); err == nil {
		t.Fatal("duplicate create must fail")
	}
	writeTuple(t, tb.Heap, 42, 9, 0)
	if err := tb.Heap.SyncData(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Heap.FlushMeta(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: tables and indexes come back.
	m2, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb2, err := m2.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb2.Index.Lookup(42)) != 1 {
		t.Fatal("index not rebuilt on restart")
	}
	if !m2.Has(1) || m2.Has(2) {
		t.Fatal("Has is wrong")
	}
	if got := m2.IDs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("IDs = %v", got)
	}
	if err := m2.Drop(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Get(1); err == nil {
		t.Fatal("dropped table still accessible")
	}
	if _, err := os.Stat(filepath.Join(dir, "table_1.heap")); !os.IsNotExist(err) {
		t.Fatal("heap file not removed by drop")
	}
	m2.Close()
}

// Property: meta marshal/unmarshal round-trips arbitrary directories.
func TestQuickMetaRoundTrip(t *testing.T) {
	desc := testDesc()
	f := func(nSeg uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Meta{
			TableID:           int32(rng.Intn(100)),
			SegPages:          int32(rng.Intn(100) + 1),
			NextPage:          int32(rng.Intn(10000)),
			MinUncommittedSeg: int32(rng.Intn(10) - 1),
			Desc:              desc,
		}
		for i := 0; i < int(nSeg%8); i++ {
			s := Segment{
				TminIns: rng.Int63(),
				TmaxIns: rng.Int63(),
				TmaxDel: rng.Int63(),
			}
			for j := 0; j <= rng.Intn(3); j++ {
				s.Extents = append(s.Extents, Extent{Start: int32(rng.Intn(1000)), Count: int32(rng.Intn(50) + 1)})
			}
			m.Segments = append(m.Segments, s)
		}
		if rng.Intn(2) == 0 {
			m.Free = append(m.Free, Extent{Start: 1, Count: 2})
		}
		got, err := unmarshalMeta(m.marshal())
		if err != nil {
			return false
		}
		if got.TableID != m.TableID || got.SegPages != m.SegPages ||
			got.NextPage != m.NextPage || got.MinUncommittedSeg != m.MinUncommittedSeg {
			return false
		}
		if !got.Desc.Equal(m.Desc) || !reflect.DeepEqual(got.Segments, m.Segments) ||
			!reflect.DeepEqual(got.Free, m.Free) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

// Property: SegmentPlan never prunes a segment containing a matching tuple
// (pruning is sound: a pruned scan sees exactly the matching tuples that a
// full scan sees).
func TestQuickSegmentPlanSound(t *testing.T) {
	f := func(seed int64, nOps uint8, insLEr, insGTr, delGTr uint8) bool {
		dir, err := os.MkdirTemp("", "segplan")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		h, err := Create(dir, 1, testDesc(), 1)
		if err != nil {
			return false
		}
		defer h.Close()
		rng := rand.New(rand.NewSource(seed))
		ts := tuple.Timestamp(1)
		type row struct {
			rid      page.RecordID
			ins, del tuple.Timestamp
		}
		var rows []row
		for i := 0; i < int(nOps); i++ {
			if rng.Intn(4) == 0 && len(rows) > 0 {
				// delete a random live row
				r := &rows[rng.Intn(len(rows))]
				if r.del == 0 {
					r.del = ts
					// stamp the page
					img, err := h.ReadPageData(r.rid.Page.PageNo)
					if err != nil {
						return false
					}
					pg, err := page.FromBytes(r.rid.Page, img, h.TupleWidth())
					if err != nil {
						return false
					}
					if err := pg.WriteInt64At(r.rid.Slot, h.Desc().Offset(tuple.FieldDelTS), int64(ts)); err != nil {
						return false
					}
					if err := h.WritePageData(r.rid.Page.PageNo, pg.Bytes()); err != nil {
						return false
					}
					h.OnCommitStamp(h.SegmentFor(r.rid.Page.PageNo), 0, ts)
					ts++
				}
				continue
			}
			rid := writeQuick(h, int64(i), ts)
			rows = append(rows, row{rid: rid, ins: ts})
			ts++
		}
		insLE := tuple.Timestamp(insLEr % 40)
		insGT := tuple.Timestamp(insGTr % 40)
		delGT := tuple.Timestamp(delGTr % 40)
		// For each single-bound plan, every matching tuple must live in a
		// planned segment.
		check := func(plan []int32, match func(row) bool) bool {
			planned := map[int32]bool{}
			for _, s := range plan {
				planned[s] = true
			}
			for _, r := range rows {
				if match(r) && !planned[h.SegmentFor(r.rid.Page.PageNo)] {
					return false
				}
			}
			return true
		}
		if !check(h.SegmentPlan(&insLE, nil, nil, false), func(r row) bool { return r.ins <= insLE }) {
			return false
		}
		if !check(h.SegmentPlan(nil, &insGT, nil, false), func(r row) bool { return r.ins > insGT }) {
			return false
		}
		if !check(h.SegmentPlan(nil, nil, &delGT, false), func(r row) bool { return r.del > delGT }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func writeQuick(h *HeapFile, id int64, ins tuple.Timestamp) page.RecordID {
	tp := tuple.MustMake(h.Desc(), tuple.VInt(id), tuple.VInt(0))
	tp.SetInsTS(ins)
	pno := h.InsertHint()
	var pg *page.Page
	var si int32
	ok := false
	if pno >= 0 {
		img, err := h.ReadPageData(pno)
		if err == nil {
			pg, err = page.FromBytes(page.ID{Table: h.TableID(), PageNo: pno}, img, h.TupleWidth())
			if err == nil && pg.FirstFree() >= 0 {
				si = h.SegmentFor(pno)
				ok = true
			}
		}
	}
	if !ok {
		var err error
		pno, si, err = h.AllocPage()
		if err != nil {
			panic(err)
		}
		img, err := h.ReadPageData(pno)
		if err != nil {
			panic(err)
		}
		pg, err = page.FromBytes(page.ID{Table: h.TableID(), PageNo: pno}, img, h.TupleWidth())
		if err != nil {
			panic(err)
		}
	}
	slot, err := pg.Insert(tp.Encode(h.Desc()))
	if err != nil {
		panic(err)
	}
	if err := h.WritePageData(pno, pg.Bytes()); err != nil {
		panic(err)
	}
	h.SetInsertHint(pno)
	h.OnCommitStamp(si, ins, 0)
	return page.RecordID{Page: page.ID{Table: h.TableID(), PageNo: pno}, Slot: slot}
}

func TestEnsureAllocatedIdempotent(t *testing.T) {
	h := newHeap(t, 4)
	// Fresh file: replay an allocation for page 2 in segment 0.
	h.EnsureAllocated(2, 0)
	if h.SegmentFor(2) != 0 {
		t.Fatalf("page 2 not in segment 0")
	}
	if h.NumPages() != 3 {
		t.Fatalf("NextPage = %d, want 3", h.NumPages())
	}
	// Idempotent.
	h.EnsureAllocated(2, 0)
	if h.NumSegments() != 1 {
		t.Fatalf("segments = %d", h.NumSegments())
	}
	// Allocation into a later segment creates intermediates.
	h.EnsureAllocated(7, 2)
	if h.NumSegments() != 3 || h.SegmentFor(7) != 2 {
		t.Fatalf("segments = %d, segFor(7) = %d", h.NumSegments(), h.SegmentFor(7))
	}
	// Normal allocation respects the replayed NextPage.
	p, _, err := h.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if p != 8 {
		t.Fatalf("AllocPage after replay = %d, want 8", p)
	}
}
