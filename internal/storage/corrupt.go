package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrPageCorrupt is the sentinel matched by errors.Is when a page image
// fails the CRC32 trailer check. The concrete error is *PageCorruptError,
// which carries the page identity so the read path and recovery can map it
// to its segment's timestamp bounds and repair it from a live buddy.
var ErrPageCorrupt = errors.New("storage: page corrupt")

// PageCorruptError identifies a page whose on-disk image failed
// verification: a torn write, bit rot, or a mid-page truncation.
type PageCorruptError struct {
	Table  int32
	PageNo int32
	Reason string
}

func (e *PageCorruptError) Error() string {
	return fmt.Sprintf("storage: table %d page %d corrupt: %s", e.Table, e.PageNo, e.Reason)
}

func (e *PageCorruptError) Unwrap() error { return ErrPageCorrupt }

// QuarantinedPages returns the page numbers that failed verification since
// open (sorted ascending), still awaiting repair.
func (h *HeapFile) QuarantinedPages() []int32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int32, 0, len(h.quarantined))
	for p := range h.quarantined {
		out = append(out, p)
	}
	sortInt32s(out)
	return out
}

// ClearQuarantine marks a page healthy again; WritePageData calls it when a
// full image (repaired or rewritten) lands.
func (h *HeapFile) ClearQuarantine(pageNo int32) {
	h.mu.Lock()
	delete(h.quarantined, pageNo)
	h.mu.Unlock()
}

func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func leUint32(b []byte) uint32       { return binary.LittleEndian.Uint32(b) }
func putLeUint32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
