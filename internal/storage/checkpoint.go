package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"harbor/internal/tuple"
)

// WriteCheckpointFile durably records the HARBOR checkpoint time T at a
// well-known location (the last step of the Figure 3-2 algorithm): all
// updates committed at or before T are guaranteed flushed.
func WriteCheckpointFile(path string, t tuple.Timestamp) error {
	buf := binary.LittleEndian.AppendUint64(nil, uint64(t))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCheckpointFile returns the recorded checkpoint time, or 0 when no
// checkpoint has ever been written.
func ReadCheckpointFile(path string) (tuple.Timestamp, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(raw) != 12 {
		return 0, fmt.Errorf("storage: checkpoint file is %d bytes", len(raw))
	}
	if crc32.ChecksumIEEE(raw[:8]) != binary.LittleEndian.Uint32(raw[8:]) {
		return 0, fmt.Errorf("storage: checkpoint file checksum mismatch")
	}
	return tuple.Timestamp(binary.LittleEndian.Uint64(raw)), nil
}
