package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"harbor/internal/tuple"
	"harbor/internal/vfs"
)

// WriteCheckpointFile durably records the HARBOR checkpoint time T at a
// well-known location (the last step of the Figure 3-2 algorithm): all
// updates committed at or before T are guaranteed flushed. The atomic
// replace includes the parent-directory fsync — without it a crash after
// the rename could lose the new checkpoint even though the write "succeeded"
// (the bug this shared helper fixed; see vfs.WriteFileAtomic).
func WriteCheckpointFile(path string, t tuple.Timestamp) error {
	buf := binary.LittleEndian.AppendUint64(nil, uint64(t))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return vfs.WriteFileAtomic(path, buf, 0o644)
}

// ReadCheckpointFile returns the recorded checkpoint time, or 0 when no
// checkpoint has ever been written.
func ReadCheckpointFile(path string) (tuple.Timestamp, error) {
	raw, err := vfs.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(raw) != 12 {
		return 0, fmt.Errorf("storage: checkpoint file is %d bytes", len(raw))
	}
	if crc32.ChecksumIEEE(raw[:8]) != binary.LittleEndian.Uint32(raw[8:]) {
		return 0, fmt.Errorf("storage: checkpoint file checksum mismatch")
	}
	return tuple.Timestamp(binary.LittleEndian.Uint64(raw)), nil
}
