// Package storage implements the segmented heap files of §4.2 and §6.1.1:
// relations stored in 4 KB pages, partitioned by insertion timestamp into
// segments, each segment annotated with timestamp bounds that let recovery
// queries prune their search space.
//
// Layout on disk, per table and site:
//
//	table_<id>.heap  data pages only (page.Size each)
//	table_<id>.meta  schema + segment directory + allocation state
//
// The thesis keeps the directory in a header page of the heap file; we use a
// sidecar meta file with atomic replace (write-temp, fsync, rename) instead,
// which makes the "stats-ahead" flush rule explicit: a dirty data page may
// only be written to disk after any meta changes it depends on are durable,
// mirroring the WAL rule. See HeapFile.EnsureMetaDurable.
//
// Deviation from the thesis, documented in DESIGN.md: segments carry an
// explicit maximum insertion timestamp (TmaxIns) in addition to
// Tmin-insertion and Tmax-deletion, and own their pages as extent lists
// rather than a single contiguous range. The extra bound keeps pruning
// correct when recovery Phase 2 appends copied tuples locally; extents make
// the §4.2 bulk-drop feature reclaim space.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"harbor/internal/tuple"
)

// Extent is a contiguous run of pages [Start, Start+Count).
type Extent struct {
	Start int32
	Count int32
}

// Segment is one insertion-time partition of a table (§4.2).
type Segment struct {
	// TminIns is the minimum insertion timestamp of any committed tuple ever
	// stored in the segment (math.MaxInt64 while empty).
	TminIns tuple.Timestamp
	// TmaxIns is the corresponding maximum (0 while empty).
	TmaxIns tuple.Timestamp
	// TmaxDel is the most recent time a tuple in this segment was deleted or
	// updated (0 if never).
	TmaxDel tuple.Timestamp
	// Extents lists the pages owned by the segment, in insertion order.
	Extents []Extent
}

// NumPages returns the total number of pages the segment owns.
func (s *Segment) NumPages() int {
	n := 0
	for _, e := range s.Extents {
		n += int(e.Count)
	}
	return n
}

// clone deep-copies the segment.
func (s *Segment) clone() Segment {
	c := *s
	c.Extents = append([]Extent(nil), s.Extents...)
	return c
}

// Meta is the durable per-table metadata.
type Meta struct {
	TableID int32
	// SegPages is the segment size limit in pages; when the last segment
	// reaches it, inserts open a new segment (§4.2 lets either a time range
	// or a size bound close segments; we bound by size like the evaluation,
	// which used 10 MB segments).
	SegPages int32
	// NextPage is the page number one past the last allocated page; the heap
	// file is logically this long even if the OS file is shorter or longer.
	NextPage int32
	// MinUncommittedSeg is the smallest segment index that may still hold
	// tuples with the Uncommitted insertion timestamp, or -1. Recovery
	// Phase 1 must scan from here even when segment timestamp bounds would
	// prune the segment, because uncommitted tuples never enter the bounds.
	MinUncommittedSeg int32
	// Free lists extents released by bulk drops, available for reuse.
	Free []Extent
	// Segments is the segment directory, oldest first.
	Segments []Segment
	// Desc is the table schema.
	Desc *tuple.Desc
}

const (
	metaMagic   = 0x48524252 // "HRBR"
	metaVersion = 1
)

// marshal encodes the meta with a trailing CRC32.
func (m *Meta) marshal() []byte {
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u32(metaMagic)
	u32(metaVersion)
	u32(uint32(m.TableID))
	u32(uint32(m.SegPages))
	u32(uint32(m.NextPage))
	u32(uint32(m.MinUncommittedSeg))
	schema := m.Desc.Marshal()
	u32(uint32(len(schema)))
	b = append(b, schema...)
	u32(uint32(len(m.Free)))
	for _, e := range m.Free {
		u32(uint32(e.Start))
		u32(uint32(e.Count))
	}
	u32(uint32(len(m.Segments)))
	for _, s := range m.Segments {
		u64(uint64(s.TminIns))
		u64(uint64(s.TmaxIns))
		u64(uint64(s.TmaxDel))
		u32(uint32(len(s.Extents)))
		for _, e := range s.Extents {
			u32(uint32(e.Start))
			u32(uint32(e.Count))
		}
	}
	u32(crc32.ChecksumIEEE(b))
	return b
}

// unmarshalMeta decodes and verifies a meta image.
func unmarshalMeta(b []byte) (*Meta, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("storage: meta truncated")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("storage: meta checksum mismatch")
	}
	off := 0
	fail := func() (*Meta, error) { return nil, fmt.Errorf("storage: meta truncated at offset %d", off) }
	u32 := func() (uint32, bool) {
		if off+4 > len(body) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(body) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v, true
	}
	magic, ok := u32()
	if !ok || magic != metaMagic {
		return nil, fmt.Errorf("storage: bad meta magic %#x", magic)
	}
	ver, ok := u32()
	if !ok || ver != metaVersion {
		return nil, fmt.Errorf("storage: unsupported meta version %d", ver)
	}
	m := &Meta{}
	var v uint32
	if v, ok = u32(); !ok {
		return fail()
	}
	m.TableID = int32(v)
	if v, ok = u32(); !ok {
		return fail()
	}
	m.SegPages = int32(v)
	if v, ok = u32(); !ok {
		return fail()
	}
	m.NextPage = int32(v)
	if v, ok = u32(); !ok {
		return fail()
	}
	m.MinUncommittedSeg = int32(v)
	schemaLen, ok := u32()
	if !ok || off+int(schemaLen) > len(body) {
		return fail()
	}
	desc, n, err := tuple.UnmarshalDesc(body[off : off+int(schemaLen)])
	if err != nil {
		return nil, err
	}
	if n != int(schemaLen) {
		return nil, fmt.Errorf("storage: schema length mismatch")
	}
	off += int(schemaLen)
	m.Desc = desc
	nFree, ok := u32()
	if !ok {
		return fail()
	}
	for i := uint32(0); i < nFree; i++ {
		s, ok1 := u32()
		c, ok2 := u32()
		if !ok1 || !ok2 {
			return fail()
		}
		m.Free = append(m.Free, Extent{Start: int32(s), Count: int32(c)})
	}
	nSeg, ok := u32()
	if !ok {
		return fail()
	}
	for i := uint32(0); i < nSeg; i++ {
		var seg Segment
		a, ok1 := u64()
		bb, ok2 := u64()
		c, ok3 := u64()
		ne, ok4 := u32()
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return fail()
		}
		seg.TminIns = int64(a)
		seg.TmaxIns = int64(bb)
		seg.TmaxDel = int64(c)
		for j := uint32(0); j < ne; j++ {
			s, ok1 := u32()
			cnt, ok2 := u32()
			if !ok1 || !ok2 {
				return fail()
			}
			seg.Extents = append(seg.Extents, Extent{Start: int32(s), Count: int32(cnt)})
		}
		m.Segments = append(m.Segments, seg)
	}
	return m, nil
}

// emptySegment returns a fresh segment with sentinel stats.
func emptySegment() Segment {
	return Segment{TminIns: math.MaxInt64, TmaxIns: 0, TmaxDel: 0}
}
