package storage

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"harbor/internal/obs"
	"harbor/internal/page"
	"harbor/internal/tuple"
	"harbor/internal/vfs"
)

// HeapFile is one table's segmented heap file on one site. All methods are
// safe for concurrent use; page *contents* are protected by buffer-pool
// latches, while the segment directory and allocation state are protected
// here.
type HeapFile struct {
	mu sync.Mutex

	dir  string
	file vfs.File
	meta *Meta

	// metaDirty is set whenever meta changed since the last FlushMeta. The
	// buffer pool must call EnsureMetaDurable before writing any dirty data
	// page (the stats-ahead rule; see package comment).
	metaDirty bool

	// pageSeg maps page number → segment index for fast SegmentFor.
	pageSeg map[int32]int32

	// insertHint caches a page number in the last segment that recently had
	// a free slot (§6.1.1's first-empty-slot pointers).
	insertHint int32

	// uncommittedBySeg counts live uncommitted tuples per segment so that
	// MinUncommittedSeg can be maintained exactly.
	uncommittedBySeg map[int32]int

	tupleWidth int
	slots      int

	// quarantined holds page numbers whose on-disk image failed the CRC
	// trailer check. A quarantined page is skipped by ScanDirect (so index
	// rebuild and site restart survive it) until recovery repairs it from a
	// buddy and calls ClearQuarantine.
	quarantined map[int32]bool

	// Stats counters (atomic not needed; guarded by mu).
	pageReads, pageWrites, syncs int64

	// Site-wide registry counters mirrored alongside the per-file stats
	// (storage.page.reads, storage.page.writes, storage.fsyncs,
	// storage.corrupt_pages); bound by the owning Manager's Instrument.
	ioReads, ioWrites, ioSyncs, ioCorrupt *obs.Counter
}

// Paths for a table's files within a site directory.
func heapPath(dir string, table int32) string {
	return filepath.Join(dir, fmt.Sprintf("table_%d.heap", table))
}
func metaPath(dir string, table int32) string {
	return filepath.Join(dir, fmt.Sprintf("table_%d.meta", table))
}

// Create makes a brand-new heap file for a table.
func Create(dir string, table int32, desc *tuple.Desc, segPages int32) (*HeapFile, error) {
	if segPages <= 0 {
		return nil, fmt.Errorf("storage: segment size must be positive, got %d", segPages)
	}
	if _, err := vfs.Stat(metaPath(dir, table)); err == nil {
		return nil, fmt.Errorf("storage: table %d already exists in %s", table, dir)
	}
	f, err := vfs.OpenFile(heapPath(dir, table), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	h := &HeapFile{
		dir:  dir,
		file: f,
		meta: &Meta{
			TableID:           table,
			SegPages:          segPages,
			NextPage:          0,
			MinUncommittedSeg: -1,
			Desc:              desc,
		},
		pageSeg:          map[int32]int32{},
		uncommittedBySeg: map[int32]int{},
		quarantined:      map[int32]bool{},
		insertHint:       -1,
		tupleWidth:       desc.Width(),
		slots:            page.SlotsPerPage(desc.Width()),
	}
	h.metaDirty = true
	if err := h.FlushMeta(); err != nil {
		f.Close()
		return nil, err
	}
	h.instrument(obs.NewRegistry())
	return h, nil
}

// Open loads an existing table's heap file and rebuilds in-memory state.
func Open(dir string, table int32) (*HeapFile, error) {
	raw, err := vfs.ReadFile(metaPath(dir, table))
	if err != nil {
		return nil, err
	}
	m, err := unmarshalMeta(raw)
	if err != nil {
		return nil, fmt.Errorf("storage: table %d: %w", table, err)
	}
	if m.TableID != table {
		return nil, fmt.Errorf("storage: meta says table %d, expected %d", m.TableID, table)
	}
	f, err := vfs.OpenFile(heapPath(dir, table), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	h := &HeapFile{
		dir:              dir,
		file:             f,
		meta:             m,
		pageSeg:          map[int32]int32{},
		uncommittedBySeg: map[int32]int{},
		quarantined:      map[int32]bool{},
		insertHint:       -1,
		tupleWidth:       m.Desc.Width(),
		slots:            page.SlotsPerPage(m.Desc.Width()),
	}
	for si, s := range m.Segments {
		for _, e := range s.Extents {
			for p := e.Start; p < e.Start+e.Count; p++ {
				h.pageSeg[p] = int32(si)
			}
		}
	}
	h.instrument(obs.NewRegistry())
	return h, nil
}

// Close releases the OS file handle. It does not flush; callers that need
// durability flush explicitly (checkpointing owns that policy).
func (h *HeapFile) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.file.Close()
}

// Desc returns the table schema.
func (h *HeapFile) Desc() *tuple.Desc { return h.meta.Desc }

// TableID returns the table id.
func (h *HeapFile) TableID() int32 { return h.meta.TableID }

// TupleWidth returns the fixed slot width.
func (h *HeapFile) TupleWidth() int { return h.tupleWidth }

// SlotsPerPage returns the per-page slot capacity.
func (h *HeapFile) SlotsPerPage() int { return h.slots }

// NumSegments returns the number of segments.
func (h *HeapFile) NumSegments() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.meta.Segments)
}

// NumPages returns the allocated page count (including freed pages).
func (h *HeapFile) NumPages() int32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.meta.NextPage
}

// Segments returns a deep copy of the segment directory for planning scans.
func (h *HeapFile) Segments() []Segment {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Segment, len(h.meta.Segments))
	for i := range h.meta.Segments {
		out[i] = h.meta.Segments[i].clone()
	}
	return out
}

// MinUncommittedSeg returns the persisted lower bound on segments that may
// contain uncommitted tuples (-1 if none).
func (h *HeapFile) MinUncommittedSeg() int32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.meta.MinUncommittedSeg
}

// SegmentFor maps a page number to its segment index, or -1 for pages not
// owned by any segment (freed or never allocated).
func (h *HeapFile) SegmentFor(pageNo int32) int32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if si, ok := h.pageSeg[pageNo]; ok {
		return si
	}
	return -1
}

// ReadPageData reads the raw image of a page and verifies its CRC32
// trailer. Pages past the OS file's end (allocated but never flushed) read
// as zeroes and are formatted fresh; so do all-zero sparse holes — both are
// exempt from the trailer check because no write ever stamped them. Any
// other mismatch (torn write, bit rot, mid-page truncation) quarantines the
// page and returns a *PageCorruptError (errors.Is ErrPageCorrupt).
func (h *HeapFile) ReadPageData(pageNo int32) ([]byte, error) {
	h.mu.Lock()
	if pageNo < 0 || pageNo >= h.meta.NextPage {
		next := h.meta.NextPage
		h.mu.Unlock()
		return nil, fmt.Errorf("storage: table %d page %d out of range [0,%d)", h.meta.TableID, pageNo, next)
	}
	h.pageReads++
	h.ioReads.Inc()
	h.mu.Unlock()

	buf := make([]byte, page.Size)
	n, err := h.file.ReadAt(buf, int64(pageNo)*page.Size)
	if err == io.EOF || (err == nil && n < page.Size) {
		// Never-flushed page: hand back a freshly formatted empty page.
		if n == 0 || allZero(buf[:n]) {
			p := page.New(page.ID{Table: h.meta.TableID, PageNo: pageNo}, h.tupleWidth)
			return p.Bytes(), nil
		}
		// Data but not a whole page: a write torn by mid-page truncation.
		return nil, h.corruptPage(pageNo, fmt.Sprintf("short read (%d bytes)", n))
	}
	if err != nil {
		return nil, err
	}
	if allZero(buf) {
		// Hole in a sparse file (flushed later page): format fresh.
		p := page.New(page.ID{Table: h.meta.TableID, PageNo: pageNo}, h.tupleWidth)
		return p.Bytes(), nil
	}
	const crcOff = page.Size - page.TrailerSize
	if crc32.ChecksumIEEE(buf[:crcOff]) != leUint32(buf[crcOff:]) {
		return nil, h.corruptPage(pageNo, "CRC trailer mismatch")
	}
	return buf, nil
}

// corruptPage records a failed trailer check: bump the counter, quarantine
// the page, and build the typed error.
func (h *HeapFile) corruptPage(pageNo int32, reason string) error {
	h.mu.Lock()
	if !h.quarantined[pageNo] {
		h.quarantined[pageNo] = true
		h.ioCorrupt.Inc()
	}
	h.mu.Unlock()
	return &PageCorruptError{Table: h.meta.TableID, PageNo: pageNo, Reason: reason}
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// WritePageData writes a page image without syncing, stamping the CRC32
// trailer. The image is copied first so the shared in-memory page (whose
// trailer bytes may be stale) is never mutated and never raced.
func (h *HeapFile) WritePageData(pageNo int32, data []byte) error {
	if len(data) != page.Size {
		return fmt.Errorf("storage: page image is %d bytes", len(data))
	}
	h.mu.Lock()
	h.pageWrites++
	h.ioWrites.Inc()
	h.mu.Unlock()
	const crcOff = page.Size - page.TrailerSize
	img := make([]byte, page.Size)
	copy(img, data)
	putLeUint32(img[crcOff:], crc32.ChecksumIEEE(img[:crcOff]))
	_, err := h.file.WriteAt(img, int64(pageNo)*page.Size)
	if err == nil {
		h.ClearQuarantine(pageNo)
	}
	return err
}

// SyncData forces previously written pages to stable storage.
func (h *HeapFile) SyncData() error {
	h.mu.Lock()
	h.syncs++
	h.ioSyncs.Inc()
	h.mu.Unlock()
	return h.file.Sync()
}

// instrument binds the shared storage.* counters (the per-file Stats
// counters are unaffected). Counts accumulated before the rebind — Open and
// Create start on a private registry, and the open-time index rebuild can
// already discover corrupt pages — are carried into the new registry so a
// quarantine found before the Site wires observability still shows up in
// storage.corrupt_pages.
func (h *HeapFile) instrument(reg *obs.Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	carry := func(old *obs.Counter, name string) *obs.Counter {
		c := reg.Counter(name)
		if old != nil && old != c {
			c.Add(old.Load())
		}
		return c
	}
	h.ioReads = carry(h.ioReads, "storage.page.reads")
	h.ioWrites = carry(h.ioWrites, "storage.page.writes")
	h.ioSyncs = carry(h.ioSyncs, "storage.fsyncs")
	h.ioCorrupt = carry(h.ioCorrupt, "storage.corrupt_pages")
}

// Stats returns IO counters (reads, writes, syncs).
func (h *HeapFile) Stats() (reads, writes, syncs int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pageReads, h.pageWrites, h.syncs
}

// FlushMeta durably writes the meta file if it changed (atomic replace).
func (h *HeapFile) FlushMeta() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.flushMetaLocked()
}

func (h *HeapFile) flushMetaLocked() error {
	if !h.metaDirty {
		return nil
	}
	if err := vfs.WriteFileAtomic(metaPath(h.dir, h.meta.TableID), h.meta.marshal(), 0o644); err != nil {
		return err
	}
	h.metaDirty = false
	return nil
}

// EnsureMetaDurable is the stats-ahead hook: the buffer pool calls it before
// flushing any dirty data page of this table so that segment-timestamp
// bounds on disk are never older than page contents on disk.
func (h *HeapFile) EnsureMetaDurable() error { return h.FlushMeta() }

// AllocPage grows the last segment by one page (opening a new segment when
// the last one is full or absent) and returns the page number. The page is
// zero-filled logically; ReadPageData formats it on first access.
func (h *HeapFile) AllocPage() (pageNo int32, segIdx int32, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.meta.Segments) == 0 || h.segPagesLocked(len(h.meta.Segments)-1) >= int(h.meta.SegPages) {
		h.meta.Segments = append(h.meta.Segments, emptySegment())
	}
	si := int32(len(h.meta.Segments) - 1)
	p := h.takeFreePageLocked()
	seg := &h.meta.Segments[si]
	if n := len(seg.Extents); n > 0 && seg.Extents[n-1].Start+seg.Extents[n-1].Count == p {
		seg.Extents[n-1].Count++
	} else {
		seg.Extents = append(seg.Extents, Extent{Start: p, Count: 1})
	}
	h.pageSeg[p] = si
	h.metaDirty = true
	return p, si, nil
}

// EnsureAllocated replays a page allocation idempotently: ARIES redo calls
// it for RecAlloc records whose effects may not have reached the meta file
// before a crash. Missing segments up to segIdx are created empty.
func (h *HeapFile) EnsureAllocated(pageNo, segIdx int32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.pageSeg[pageNo]; ok {
		return
	}
	for int32(len(h.meta.Segments)) <= segIdx {
		h.meta.Segments = append(h.meta.Segments, emptySegment())
	}
	seg := &h.meta.Segments[segIdx]
	if n := len(seg.Extents); n > 0 && seg.Extents[n-1].Start+seg.Extents[n-1].Count == pageNo {
		seg.Extents[n-1].Count++
	} else {
		seg.Extents = append(seg.Extents, Extent{Start: pageNo, Count: 1})
	}
	h.pageSeg[pageNo] = segIdx
	if pageNo >= h.meta.NextPage {
		h.meta.NextPage = pageNo + 1
	}
	h.metaDirty = true
}

func (h *HeapFile) segPagesLocked(si int) int {
	n := 0
	for _, e := range h.meta.Segments[si].Extents {
		n += int(e.Count)
	}
	return n
}

func (h *HeapFile) takeFreePageLocked() int32 {
	if len(h.meta.Free) > 0 {
		e := &h.meta.Free[0]
		p := e.Start
		e.Start++
		e.Count--
		if e.Count == 0 {
			h.meta.Free = h.meta.Free[1:]
		}
		return p
	}
	p := h.meta.NextPage
	h.meta.NextPage++
	return p
}

// InsertHint returns a page number in the last segment believed to have a
// free slot, or -1. SetInsertHint updates it.
func (h *HeapFile) InsertHint() int32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.insertHint < 0 {
		return -1
	}
	// The hint must still belong to the last segment.
	if si, ok := h.pageSeg[h.insertHint]; !ok || int(si) != len(h.meta.Segments)-1 {
		return -1
	}
	return h.insertHint
}

// SetInsertHint records a page known to have free slots.
func (h *HeapFile) SetInsertHint(pageNo int32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.insertHint = pageNo
}

// LastSegment returns the index of the last segment, or -1 if none.
func (h *HeapFile) LastSegment() int32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int32(len(h.meta.Segments) - 1)
}

// SegmentPages returns the page numbers of a segment in order.
func (h *HeapFile) SegmentPages(si int32) []int32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if si < 0 || int(si) >= len(h.meta.Segments) {
		return nil
	}
	var out []int32
	for _, e := range h.meta.Segments[si].Extents {
		for p := e.Start; p < e.Start+e.Count; p++ {
			out = append(out, p)
		}
	}
	return out
}

// OnCommitStamp folds a committed tuple's timestamps into its segment's
// bounds. ins applies to insertions (0 = not an insertion), del to
// deletions. Called by the versioning layer at commit time and by recovery
// when copying remote tuples.
func (h *HeapFile) OnCommitStamp(segIdx int32, ins, del tuple.Timestamp) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if segIdx < 0 || int(segIdx) >= len(h.meta.Segments) {
		return
	}
	s := &h.meta.Segments[segIdx]
	changed := false
	if ins > 0 && ins != tuple.Uncommitted {
		if ins < s.TminIns {
			s.TminIns = ins
			changed = true
		}
		if ins > s.TmaxIns {
			s.TmaxIns = ins
			changed = true
		}
	}
	if del > 0 && del > s.TmaxDel {
		s.TmaxDel = del
		changed = true
	}
	if changed {
		h.metaDirty = true
	}
}

// OnUncommittedInsert records that a tuple with the Uncommitted insertion
// timestamp now lives in segment segIdx; OnUncommittedResolved records that
// one was stamped or physically removed. Both maintain MinUncommittedSeg.
func (h *HeapFile) OnUncommittedInsert(segIdx int32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.uncommittedBySeg[segIdx]++
	if h.meta.MinUncommittedSeg < 0 || segIdx < h.meta.MinUncommittedSeg {
		h.meta.MinUncommittedSeg = segIdx
		h.metaDirty = true
	}
}

// OnUncommittedResolved decrements the uncommitted count for a segment and
// recomputes the persisted lower bound.
func (h *HeapFile) OnUncommittedResolved(segIdx int32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if c, ok := h.uncommittedBySeg[segIdx]; ok {
		if c <= 1 {
			delete(h.uncommittedBySeg, segIdx)
		} else {
			h.uncommittedBySeg[segIdx] = c - 1
		}
	}
	min := int32(-1)
	for s := range h.uncommittedBySeg {
		if min < 0 || s < min {
			min = s
		}
	}
	if min != h.meta.MinUncommittedSeg {
		h.meta.MinUncommittedSeg = min
		h.metaDirty = true
	}
}

// ClearUncommittedBound resets MinUncommittedSeg; recovery Phase 1 calls it
// after physically removing every uncommitted tuple.
func (h *HeapFile) ClearUncommittedBound() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.uncommittedBySeg = map[int32]int{}
	if h.meta.MinUncommittedSeg != -1 {
		h.meta.MinUncommittedSeg = -1
		h.metaDirty = true
	}
}

// SegmentPlan selects the segments a recovery-style scan must visit given
// the three §4.2 range predicates. Any of the bounds may be nil (unused).
//
//	insLE: keep segments that may hold tuples with ins ≤ *insLE
//	insGT: keep segments that may hold tuples with ins > *insGT
//	delGT: keep segments that may hold tuples with del > *delGT
//
// includeUncommitted additionally keeps every segment ≥ MinUncommittedSeg,
// since uncommitted tuples are invisible to the timestamp bounds.
func (h *HeapFile) SegmentPlan(insLE, insGT, delGT *tuple.Timestamp, includeUncommitted bool) []int32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []int32
	for i, s := range h.meta.Segments {
		keep := true
		empty := s.TminIns == math.MaxInt64 && s.TmaxIns == 0
		if insLE != nil && (empty || s.TminIns > *insLE) {
			keep = false
		}
		if keep && insGT != nil && (empty || s.TmaxIns <= *insGT) {
			keep = false
		}
		if keep && delGT != nil && s.TmaxDel <= *delGT {
			keep = false
		}
		if !keep && includeUncommitted && h.meta.MinUncommittedSeg >= 0 && int32(i) >= h.meta.MinUncommittedSeg {
			keep = true
		}
		if keep {
			out = append(out, int32(i))
		}
	}
	return out
}

// BulkLoadSegment appends a brand-new segment whose pages are written
// directly (bypassing the buffer pool) from pre-stamped committed tuples,
// then durably flushes data and meta. This is the §4.2 bulk-load feature:
// the segment becomes visible atomically with the meta replace.
func (h *HeapFile) BulkLoadSegment(tuples []tuple.Tuple) (int32, error) {
	if len(tuples) == 0 {
		return 0, fmt.Errorf("storage: bulk load of zero tuples")
	}
	h.mu.Lock()
	desc := h.meta.Desc
	for _, t := range tuples {
		if t.InsTS() == tuple.Uncommitted {
			h.mu.Unlock()
			return 0, fmt.Errorf("storage: bulk load requires committed (stamped) tuples")
		}
	}
	seg := emptySegment()
	perPage := h.slots
	nPages := (len(tuples) + perPage - 1) / perPage
	pages := make([]int32, nPages)
	for i := range pages {
		pages[i] = h.takeFreePageLocked()
	}
	// Coalesce into extents.
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, p := range pages {
		if n := len(seg.Extents); n > 0 && seg.Extents[n-1].Start+seg.Extents[n-1].Count == p {
			seg.Extents[n-1].Count++
		} else {
			seg.Extents = append(seg.Extents, Extent{Start: p, Count: 1})
		}
	}
	for _, t := range tuples {
		ins, del := t.InsTS(), t.DelTS()
		if ins < seg.TminIns {
			seg.TminIns = ins
		}
		if ins > seg.TmaxIns {
			seg.TmaxIns = ins
		}
		if del > seg.TmaxDel {
			seg.TmaxDel = del
		}
	}
	si := int32(len(h.meta.Segments))
	h.mu.Unlock()

	// Write the data pages (no locks held; pages are invisible until the
	// meta replace below).
	buf := make([]byte, h.tupleWidth)
	for pi, pno := range pages {
		pg := page.New(page.ID{Table: h.TableID(), PageNo: pno}, h.tupleWidth)
		lo := pi * perPage
		hi := lo + perPage
		if hi > len(tuples) {
			hi = len(tuples)
		}
		for _, t := range tuples[lo:hi] {
			t.EncodeTo(desc, buf)
			if _, err := pg.Insert(buf); err != nil {
				return 0, err
			}
		}
		if err := h.WritePageData(pno, pg.Bytes()); err != nil {
			return 0, err
		}
	}
	if err := h.SyncData(); err != nil {
		return 0, err
	}

	h.mu.Lock()
	h.meta.Segments = append(h.meta.Segments, seg)
	for _, p := range pages {
		h.pageSeg[p] = si
	}
	h.metaDirty = true
	err := h.flushMetaLocked()
	h.mu.Unlock()
	return si, err
}

// ReleasePages returns fully-empty pages to the free list, removing them
// from their segments' extents so scans stop visiting them. Segments keep
// their identity even when they end up with no pages at all — segment
// indices are load-bearing for the pageSeg map, the uncommitted
// accounting, and the timestamp bounds, so only DropOldestSegment may
// renumber. The meta flush makes the release durable before return.
func (h *HeapFile) ReleasePages(pages []int32) error {
	if len(pages) == 0 {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	rel := make(map[int32]bool, len(pages))
	for _, p := range pages {
		if _, ok := h.pageSeg[p]; ok {
			rel[p] = true
		}
	}
	if len(rel) == 0 {
		return nil
	}
	for si := range h.meta.Segments {
		seg := &h.meta.Segments[si]
		var kept []Extent
		for _, e := range seg.Extents {
			start := e.Start
			for p := e.Start; p < e.Start+e.Count; p++ {
				if !rel[p] {
					continue
				}
				if p > start {
					kept = append(kept, Extent{Start: start, Count: p - start})
				}
				start = p + 1
			}
			if end := e.Start + e.Count; end > start {
				kept = append(kept, Extent{Start: start, Count: end - start})
			}
		}
		seg.Extents = kept
	}
	for p := range rel {
		delete(h.pageSeg, p)
		h.meta.Free = append(h.meta.Free, Extent{Start: p, Count: 1})
	}
	if h.insertHint >= 0 && rel[h.insertHint] {
		h.insertHint = -1
	}
	h.metaDirty = true
	return h.flushMetaLocked()
}

// DropOldestSegment removes segment 0 (the §4.2 bulk-drop feature used by
// clickthrough warehouses), returning its pages to the free list, and
// durably flushes the meta so the drop is atomic.
func (h *HeapFile) DropOldestSegment() error {
	h.mu.Lock()
	if len(h.meta.Segments) == 0 {
		h.mu.Unlock()
		return fmt.Errorf("storage: no segments to drop")
	}
	victim := h.meta.Segments[0]
	h.meta.Segments = h.meta.Segments[1:]
	h.meta.Free = append(h.meta.Free, victim.Extents...)
	// Reindex pageSeg: all later segments shift down by one.
	for _, e := range victim.Extents {
		for p := e.Start; p < e.Start+e.Count; p++ {
			delete(h.pageSeg, p)
		}
	}
	for p, si := range h.pageSeg {
		h.pageSeg[p] = si - 1
	}
	// Shift the uncommitted accounting too.
	shifted := make(map[int32]int, len(h.uncommittedBySeg))
	for s, c := range h.uncommittedBySeg {
		if s > 0 {
			shifted[s-1] = c
		}
	}
	h.uncommittedBySeg = shifted
	if h.meta.MinUncommittedSeg > 0 {
		h.meta.MinUncommittedSeg--
	}
	h.metaDirty = true
	err := h.flushMetaLocked()
	h.mu.Unlock()
	return err
}

// ScanDirect iterates every used slot of the listed segments straight from
// disk, bypassing the buffer pool. The key index rebuild and tests use it;
// online scans go through the buffer pool instead. fn returning false stops
// the scan. Corrupt pages are skipped, not fatal: they are already
// quarantined by ReadPageData and the site repairs them from a buddy —
// the hole is a missing key range, not a dead table.
func (h *HeapFile) ScanDirect(segs []int32, fn func(rid page.RecordID, t tuple.Tuple) bool) error {
	for _, si := range segs {
		for _, pno := range h.SegmentPages(si) {
			img, err := h.ReadPageData(pno)
			if errors.Is(err, ErrPageCorrupt) {
				continue
			}
			if err != nil {
				return err
			}
			pid := page.ID{Table: h.TableID(), PageNo: pno}
			pg, err := page.FromBytes(pid, img, h.tupleWidth)
			if err != nil {
				return err
			}
			for s := 0; s < pg.NumSlots(); s++ {
				if !pg.Used(s) {
					continue
				}
				raw, err := pg.Slot(s)
				if err != nil {
					return err
				}
				t, err := tuple.Decode(h.meta.Desc, raw)
				if err != nil {
					return err
				}
				if !fn(page.RecordID{Page: pid, Slot: s}, t) {
					return nil
				}
			}
		}
	}
	return nil
}

// AllSegments returns indices of all segments, oldest first.
func (h *HeapFile) AllSegments() []int32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int32, len(h.meta.Segments))
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
