package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"

	"harbor/internal/obs"
	"harbor/internal/tuple"
	"harbor/internal/vfs"
)

// Manager owns every heap file of one site (the thesis's "Heap File /
// Segmentation" box in Figure 6-1). It also carries each table's key index.
type Manager struct {
	mu     sync.Mutex
	dir    string
	tables map[int32]*Table
	reg    *obs.Registry // site registry for storage.* counters
}

// Table bundles a heap file with its key index.
type Table struct {
	Heap  *HeapFile
	Index *KeyIndex
}

// NewManager creates a manager rooted at dir, creating the directory and
// opening any tables already present (site restart).
func NewManager(dir string) (*Manager, error) {
	if err := vfs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{dir: dir, tables: map[int32]*Table{}, reg: obs.NewRegistry()}
	entries, err := vfs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	re := regexp.MustCompile(`^table_(\d+)\.meta$`)
	for _, e := range entries {
		match := re.FindStringSubmatch(e.Name())
		if match == nil {
			continue
		}
		id64, err := strconv.ParseInt(match[1], 10, 32)
		if err != nil {
			continue
		}
		id := int32(id64)
		h, err := Open(dir, id)
		if err != nil {
			return nil, fmt.Errorf("storage: reopening table %d: %w", id, err)
		}
		idx, err := BuildKeyIndex(h)
		if err != nil {
			return nil, fmt.Errorf("storage: rebuilding index for table %d: %w", id, err)
		}
		m.tables[id] = &Table{Heap: h, Index: idx}
	}
	return m, nil
}

// Instrument rebinds every table's shared storage.* counters to reg and
// routes future tables there too (call right after NewManager; the owning
// Site passes its registry).
func (m *Manager) Instrument(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reg = reg
	for _, t := range m.tables {
		t.Heap.instrument(reg)
	}
}

// Dir returns the site directory.
func (m *Manager) Dir() string { return m.dir }

// Create makes a new table.
func (m *Manager) Create(id int32, desc *tuple.Desc, segPages int32) (*Table, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tables[id]; ok {
		return nil, fmt.Errorf("storage: table %d already open", id)
	}
	h, err := Create(m.dir, id, desc, segPages)
	if err != nil {
		return nil, err
	}
	h.instrument(m.reg)
	t := &Table{Heap: h, Index: NewKeyIndex()}
	m.tables[id] = t
	return t, nil
}

// Get returns an open table or an error.
func (m *Manager) Get(id int32) (*Table, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tables[id]
	if !ok {
		return nil, fmt.Errorf("storage: table %d not found", id)
	}
	return t, nil
}

// Has reports whether a table is open.
func (m *Manager) Has(id int32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.tables[id]
	return ok
}

// IDs lists the open table ids.
func (m *Manager) IDs() []int32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int32, 0, len(m.tables))
	for id := range m.tables {
		out = append(out, id)
	}
	return out
}

// Drop closes a table and removes its files.
func (m *Manager) Drop(id int32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tables[id]
	if !ok {
		return fmt.Errorf("storage: table %d not found", id)
	}
	delete(m.tables, id)
	_ = t.Heap.Close()
	if err := vfs.Remove(heapPath(m.dir, id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := vfs.Remove(metaPath(m.dir, id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// RebuildIndexes rescans every table and replaces its key index; recovery
// (ARIES redo/undo or HARBOR phases) calls it after changing pages behind
// the indexes' back.
func (m *Manager) RebuildIndexes() error {
	m.mu.Lock()
	tables := make([]*Table, 0, len(m.tables))
	for _, t := range m.tables {
		tables = append(tables, t)
	}
	m.mu.Unlock()
	for _, t := range tables {
		if err := t.Index.Rebuild(t.Heap); err != nil {
			return err
		}
	}
	return nil
}

// Close closes all heap files.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for _, t := range m.tables {
		if err := t.Heap.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.tables = map[int32]*Table{}
	return first
}

// CheckpointPath returns the site's global checkpoint file path (§3.4).
func CheckpointPath(dir string) string { return filepath.Join(dir, "checkpoint.dat") }

// ObjectCheckpointPath returns the per-object checkpoint file used during
// recovery (§5.3: finer-granularity checkpoints while objects recover at
// different rates).
func ObjectCheckpointPath(dir string, table int32) string {
	return filepath.Join(dir, fmt.Sprintf("recovery_ckpt_%d.dat", table))
}
