package storage

import (
	"sort"
	"sync"

	"harbor/internal/page"
	"harbor/internal/tuple"
)

// KeyIndex is the primary index on tuple identifiers (§6.1.5: "primary
// indices based on tuple identifiers"). It maps a logical tuple id to every
// stored version's record id — an update leaves both the deleted old version
// and the new version under the same key. Recovery Phase 2/3 use it to apply
// remote deletion timestamps by key (§5.3), and point queries use it to skip
// full scans.
//
// The index is an in-memory structure rebuilt from the heap file at open;
// like the thesis implementation it is not separately persisted, since it
// can always be derived from the data.
type KeyIndex struct {
	mu sync.RWMutex
	m  map[int64][]page.RecordID
}

// NewKeyIndex returns an empty index.
func NewKeyIndex() *KeyIndex {
	return &KeyIndex{m: map[int64][]page.RecordID{}}
}

// BuildKeyIndex scans every segment of the heap file and indexes each used
// slot by its key field.
func BuildKeyIndex(h *HeapFile) (*KeyIndex, error) {
	idx := NewKeyIndex()
	desc := h.Desc()
	err := h.ScanDirect(h.AllSegments(), func(rid page.RecordID, t tuple.Tuple) bool {
		idx.Add(t.Key(desc), rid)
		return true
	})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// Add indexes a record id under key.
func (x *KeyIndex) Add(key int64, rid page.RecordID) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.m[key] = append(x.m[key], rid)
}

// Remove drops one record id from a key's posting list (physical delete).
func (x *KeyIndex) Remove(key int64, rid page.RecordID) {
	x.mu.Lock()
	defer x.mu.Unlock()
	lst := x.m[key]
	for i, r := range lst {
		if r == rid {
			lst[i] = lst[len(lst)-1]
			lst = lst[:len(lst)-1]
			break
		}
	}
	if len(lst) == 0 {
		delete(x.m, key)
	} else {
		x.m[key] = lst
	}
}

// DropPage removes every record id that lives on the given page — the
// quarantine step of torn-page repair, where the page's keys cannot be read
// back to Remove them one by one. Returns the number of entries dropped.
func (x *KeyIndex) DropPage(pid page.ID) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	dropped := 0
	for key, lst := range x.m {
		kept := lst[:0]
		for _, r := range lst {
			if r.Page == pid {
				dropped++
				continue
			}
			kept = append(kept, r)
		}
		if len(kept) == 0 {
			delete(x.m, key)
		} else {
			x.m[key] = kept
		}
	}
	return dropped
}

// Lookup returns a copy of the record ids stored under key.
func (x *KeyIndex) Lookup(key int64) []page.RecordID {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return append([]page.RecordID(nil), x.m[key]...)
}

// Len returns the number of indexed record ids across all keys.
func (x *KeyIndex) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	n := 0
	for _, lst := range x.m {
		n += len(lst)
	}
	return n
}

// Clear empties the index (recovery from a blank slate).
func (x *KeyIndex) Clear() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.m = map[int64][]page.RecordID{}
}

// Quantiles returns up to n-1 interior key boundaries that split the
// indexed key population into n roughly equal-count shards. Recovery uses
// them to carve a replica's key range into segments whose recovery states
// advance independently: quantiles of the *local* key distribution give
// balanced copy work per segment, which boundary arithmetic over the range
// endpoints (often ±∞) cannot. Returns nil when the index holds fewer
// distinct keys than shards — callers fall back to one whole-range segment.
func (x *KeyIndex) Quantiles(n int) []int64 {
	if n < 2 {
		return nil
	}
	x.mu.RLock()
	keys := make([]int64, 0, len(x.m))
	for k := range x.m {
		keys = append(keys, k)
	}
	x.mu.RUnlock()
	if len(keys) < n {
		return nil
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	bounds := make([]int64, 0, n-1)
	for i := 1; i < n; i++ {
		b := keys[i*len(keys)/n]
		if len(bounds) > 0 && bounds[len(bounds)-1] == b {
			continue
		}
		bounds = append(bounds, b)
	}
	return bounds
}

// Rebuild rescans the heap file and atomically replaces the index contents.
func (x *KeyIndex) Rebuild(h *HeapFile) error {
	fresh, err := BuildKeyIndex(h)
	if err != nil {
		return err
	}
	x.mu.Lock()
	x.m = fresh.m
	x.mu.Unlock()
	return nil
}
