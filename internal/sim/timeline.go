package sim

import (
	"sync/atomic"
	"time"

	"harbor/internal/core"
	"harbor/internal/testutil"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// TimelineSample is one point of the Figure 6-7 series.
type TimelineSample struct {
	At    time.Duration // since experiment start
	TPS   float64
	Event string // "", "crash", "recovery-start", "online"
}

// TimelineParams configures the §6.5 experiment.
type TimelineParams struct {
	Total       time.Duration // experiment length (paper: 120 s)
	CrashAt     time.Duration // worker crash (paper: 30 s)
	RecoverAt   time.Duration // recovery start (paper: 60 s)
	SampleEvery time.Duration // sampling interval (paper: 1 s)
	PreloadRows int           // rows preloaded before the run
	SegPages    int32
	Concurrency int // insert streams (paper: no concurrency)
}

func (p TimelineParams) withDefaults() TimelineParams {
	if p.Total == 0 {
		p.Total = 6 * time.Second
	}
	if p.CrashAt == 0 {
		p.CrashAt = p.Total / 4
	}
	if p.RecoverAt == 0 {
		p.RecoverAt = p.Total / 2
	}
	if p.SampleEvery == 0 {
		p.SampleEvery = 250 * time.Millisecond
	}
	if p.SegPages == 0 {
		p.SegPages = 64
	}
	if p.Concurrency == 0 {
		p.Concurrency = 1
	}
	return p
}

// RunFailoverTimeline reproduces the §6.5 experiment: transaction
// processing throughput across a worker failure and its HARBOR online
// recovery. It returns the sampled series with event markers.
func RunFailoverTimeline(baseDir string, p TimelineParams) ([]TimelineSample, error) {
	p = p.withDefaults()
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     2,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		GroupCommit: true,
		LockTimeout: 5 * time.Second,
		PoolFrames:  1 << 15,
		BaseDir:     baseDir,
		// Periodic Figure 3-2 checkpoints, as in the paper's runtime setup.
		CheckpointEvery: time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	desc := BenchDesc()
	if err := cl.CreateReplicatedTable(1, desc, p.SegPages); err != nil {
		return nil, err
	}
	for i := 0; i < p.PreloadRows; i++ {
		tx := cl.Coord.Begin()
		if err := tx.Insert(1, BenchTuple(desc, int64(i))); err != nil {
			return nil, err
		}
		if _, err := tx.Commit(); err != nil {
			return nil, err
		}
	}

	var committed atomic.Int64
	stop := make(chan struct{})
	for s := 0; s < p.Concurrency; s++ {
		go func(s int) {
			key := int64(1_000_000 * (s + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := cl.Coord.Begin()
				if err := tx.Insert(1, BenchTuple(desc, key)); err != nil {
					_ = tx.Abort()
					continue
				}
				if _, err := tx.Commit(); err != nil {
					continue
				}
				key++
				committed.Add(1)
			}
		}(s)
	}

	start := time.Now()
	var samples []TimelineSample
	last := int64(0)
	crashed, recovering, online := false, false, false
	recoveryDone := make(chan struct{})
	ticker := time.NewTicker(p.SampleEvery)
	defer ticker.Stop()
	for now := range ticker.C {
		elapsed := now.Sub(start)
		cur := committed.Load()
		s := TimelineSample{
			At:  elapsed,
			TPS: float64(cur-last) / p.SampleEvery.Seconds(),
		}
		last = cur
		if !crashed && elapsed >= p.CrashAt {
			cl.Workers[0].Crash()
			crashed = true
			s.Event = "crash"
		}
		if crashed && !recovering && elapsed >= p.RecoverAt {
			recovering = true
			s.Event = "recovery-start"
			go func() {
				w, err := cl.RestartWorker(0)
				if err == nil {
					_, err = core.New(w, cl.Catalog).RecoverSite(core.Options{})
				}
				_ = err
				close(recoveryDone)
			}()
		}
		if recovering && !online {
			select {
			case <-recoveryDone:
				online = true
				if s.Event == "" {
					s.Event = "online"
				}
			default:
			}
		}
		samples = append(samples, s)
		if elapsed >= p.Total {
			break
		}
	}
	close(stop)
	time.Sleep(50 * time.Millisecond) // let in-flight txns settle before Close
	return samples, nil
}
