// Package sim is the experiment harness that regenerates every table and
// figure of the thesis's evaluation (Chapter 6). It is shared by the
// testing.B benchmarks in the repository root and by cmd/harbor-bench.
//
// The experiments run against real in-process clusters (TCP loopback, real
// files, real fsync). Sizes are scaled down from the paper's 1 GB tables /
// 10 MB segments / 10000×N transactions; the knobs are all configurable so
// a larger box can push them back up. See DESIGN.md for the substitution
// argument.
package sim

import (
	"fmt"
	"os"
	"sync"
	"time"

	"harbor/internal/core"
	"harbor/internal/obs"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// BenchDesc is the evaluation schema: 16 four-byte-integer-equivalent
// fields including the two timestamps (§6.2). Field "id" is the tuple
// identifier; the remaining 13 int32 fields are payload.
func BenchDesc() *tuple.Desc {
	fields := []tuple.FieldDef{{Name: "id", Type: tuple.Int64}}
	for i := 0; i < 13; i++ {
		fields = append(fields, tuple.FieldDef{Name: fmt.Sprintf("f%d", i), Type: tuple.Int32})
	}
	return tuple.MustDesc("id", fields...)
}

// BenchTuple builds one benchmark tuple.
func BenchTuple(d *tuple.Desc, id int64) tuple.Tuple {
	vals := make([]tuple.Value, 14)
	vals[0] = tuple.VInt(id)
	for i := 1; i < 14; i++ {
		vals[i] = tuple.VInt(id + int64(i))
	}
	return tuple.MustMake(d, vals...)
}

// ProtoConfig names one line of Figure 6-2 / 6-3.
type ProtoConfig struct {
	Name        string
	Protocol    txn.Protocol
	Mode        worker.RecoveryMode
	GroupCommit bool
	Workers     int // 1 = the "2PC without replication" line
}

// StandardConfigs returns the six configurations of Figure 6-2 in the
// paper's legend order.
func StandardConfigs() []ProtoConfig {
	return []ProtoConfig{
		{Name: "optimized 3PC (no logging)", Protocol: txn.OptThreePC, Mode: worker.HARBOR, GroupCommit: true, Workers: 2},
		{Name: "optimized 2PC (no worker logging)", Protocol: txn.OptTwoPC, Mode: worker.HARBOR, GroupCommit: true, Workers: 2},
		{Name: "canonical 3PC", Protocol: txn.ThreePC, Mode: worker.ARIES, GroupCommit: true, Workers: 2},
		{Name: "traditional 2PC", Protocol: txn.TwoPC, Mode: worker.ARIES, GroupCommit: true, Workers: 2},
		{Name: "2PC without group commit", Protocol: txn.TwoPC, Mode: worker.ARIES, GroupCommit: false, Workers: 2},
		{Name: "2PC without replication", Protocol: txn.TwoPC, Mode: worker.ARIES, GroupCommit: true, Workers: 1},
	}
}

// CommitResult is one data point of Figures 6-2 / 6-3.
type CommitResult struct {
	Config      string
	Concurrency int
	WorkCycles  int64
	Txns        int
	Elapsed     time.Duration
	TPS         float64
	AvgLatency  time.Duration
	// CommitLatency is the coordinator's per-commit latency distribution
	// (coord.commit.latency.ns from the obs registry), warm-up excluded.
	CommitLatency *obs.HistSnapshot
}

// SimulatedDiskLatency models the thesis testbed's disk: a forced log
// write cost several milliseconds there, where a modern NVMe fsync costs
// ~0.1 ms. Commit benches default to this extra per-fsync latency so the
// paper's disk ≫ network regime (and with it the group-commit effects of
// Figure 6-2) is reproduced; pass a negative SyncDelay to RunCommitBenchD
// to disable it.
const SimulatedDiskLatency = 2 * time.Millisecond

// RunCommitBench measures transaction throughput for one configuration at
// one concurrency level, optionally with simulated CPU work per transaction
// (§6.3). Each concurrent stream inserts single tuples into its own table
// so that conflicts never arise, exactly as in the paper.
func RunCommitBench(baseDir string, cfg ProtoConfig, concurrency, txnsPerStream int, workCycles int64) (CommitResult, error) {
	return RunCommitBenchD(baseDir, cfg, concurrency, txnsPerStream, workCycles, SimulatedDiskLatency)
}

// RunCommitBenchD is RunCommitBench with an explicit simulated disk
// latency (0 or negative = real fsync speed only).
func RunCommitBenchD(baseDir string, cfg ProtoConfig, concurrency, txnsPerStream int, workCycles int64, syncDelay time.Duration) (CommitResult, error) {
	res := CommitResult{Config: cfg.Name, Concurrency: concurrency, WorkCycles: workCycles}
	if syncDelay < 0 {
		syncDelay = 0
	}
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     cfg.Workers,
		Protocol:    cfg.Protocol,
		Mode:        cfg.Mode,
		GroupCommit: cfg.GroupCommit,
		SyncDelay:   syncDelay,
		LockTimeout: 5 * time.Second,
		PoolFrames:  4096,
		BaseDir:     baseDir,
	})
	if err != nil {
		return res, err
	}
	defer cl.Close()
	desc := BenchDesc()
	for s := 0; s < concurrency; s++ {
		if err := cl.CreateReplicatedTable(int32(s+1), desc, 256); err != nil {
			return res, err
		}
	}
	// Warm-up: one transaction per stream.
	for s := 0; s < concurrency; s++ {
		tx := cl.Coord.Begin()
		if err := tx.Insert(int32(s+1), BenchTuple(desc, -int64(s)-1)); err != nil {
			return res, err
		}
		if _, err := tx.Commit(); err != nil {
			return res, err
		}
	}

	// Drop warm-up traffic from every counter and histogram so the reported
	// distribution covers the measured window only.
	cl.Coord.ResetCounters()
	for _, w := range cl.Workers {
		w.ResetCounters()
	}

	var wg sync.WaitGroup
	errs := make([]error, concurrency)
	start := time.Now()
	for s := 0; s < concurrency; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			table := int32(s + 1)
			for i := 0; i < txnsPerStream; i++ {
				tx := cl.Coord.Begin()
				if workCycles > 0 {
					if err := tx.SimWork(table, workCycles); err != nil {
						errs[s] = err
						return
					}
				}
				if err := tx.Insert(table, BenchTuple(desc, int64(s*txnsPerStream+i))); err != nil {
					errs[s] = err
					return
				}
				if _, err := tx.Commit(); err != nil {
					errs[s] = err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.Txns = concurrency * txnsPerStream
	res.TPS = float64(res.Txns) / res.Elapsed.Seconds()
	res.AvgLatency = res.Elapsed / time.Duration(txnsPerStream)
	if h, ok := cl.Coord.Obs().Snapshot().Histograms["coord.commit.latency.ns"]; ok {
		res.CommitLatency = &h
	}
	return res, nil
}

// RecoveryScenario enumerates the four Figure 6-4/6-5 scenarios.
type RecoveryScenario uint8

const (
	// Aries1Table: log-based restart, single table.
	Aries1Table RecoveryScenario = iota + 1
	// Harbor1Table: HARBOR recovery of one table from one buddy.
	Harbor1Table
	// Harbor2TablesSerial: two tables recovered one after the other.
	Harbor2TablesSerial
	// Harbor2TablesParallel: two tables recovered concurrently, one from
	// each remaining worker.
	Harbor2TablesParallel
)

// String names the scenario as in the figure legends.
func (s RecoveryScenario) String() string {
	switch s {
	case Aries1Table:
		return "ARIES, 1 table"
	case Harbor1Table:
		return "HARBOR, 1 table"
	case Harbor2TablesSerial:
		return "HARBOR, serial, 2 tables"
	case Harbor2TablesParallel:
		return "HARBOR, parallel, 2 tables"
	default:
		return fmt.Sprintf("RecoveryScenario(%d)", uint8(s))
	}
}

// RecoveryParams configures a recovery experiment (§6.4 setup).
type RecoveryParams struct {
	Scenario RecoveryScenario
	// PreloadSegments approximates the paper's 1 GB table as this many full
	// segments per table (the last one half full, like the paper's 101st).
	PreloadSegments int
	// SegPages is the segment size in pages (paper: 10 MB ≙ 2560 pages;
	// scaled default 64 = 256 KB).
	SegPages int32
	// InsertTxns is the number of single-insert transactions to recover.
	InsertTxns int
	// HistoricalSegmentUpdates spreads one update into each of this many
	// distinct historical segments (Figure 6-5's x-axis), replacing an
	// equal number of insert transactions.
	HistoricalSegmentUpdates int
	// DisablePruning turns off §4.2 segment pruning in HARBOR recovery —
	// the ablation quantifying what the segment architecture buys.
	DisablePruning bool
}

// RecoveryResult is one recovery measurement.
type RecoveryResult struct {
	Scenario     RecoveryScenario
	InsertTxns   int
	HistSegments int
	RecoveryTime time.Duration
	// Phase decomposition (HARBOR scenarios; Figure 6-6). Aggregated over
	// objects for multi-table scenarios.
	Phase1, Phase2Update, Phase2Insert, Phase3 time.Duration
	TuplesCopied, DeletesCopied                int
}

func (p RecoveryParams) withDefaults() RecoveryParams {
	if p.PreloadSegments == 0 {
		p.PreloadSegments = 20
	}
	if p.SegPages == 0 {
		p.SegPages = 64
	}
	return p
}

// RunRecoveryBench stages the §6.4 experiment: preload the table(s)
// identically on every worker, checkpoint, run the update workload without
// flushing any data pages at the workers, crash one worker, and measure
// the time for it to recover.
func RunRecoveryBench(baseDir string, p RecoveryParams) (RecoveryResult, error) {
	p = p.withDefaults()
	res := RecoveryResult{Scenario: p.Scenario, InsertTxns: p.InsertTxns, HistSegments: p.HistoricalSegmentUpdates}
	mode := worker.HARBOR
	protocol := txn.OptThreePC
	if p.Scenario == Aries1Table {
		mode = worker.ARIES
		protocol = txn.TwoPC
	}
	nTables := 1
	if p.Scenario == Harbor2TablesSerial || p.Scenario == Harbor2TablesParallel {
		nTables = 2
	}
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     3,
		Protocol:    protocol,
		Mode:        mode,
		GroupCommit: true,
		LockTimeout: 5 * time.Second,
		PoolFrames:  1 << 16, // workers must hold the workload dirty (§6.4: "do not flush")
		BaseDir:     baseDir,
	})
	if err != nil {
		return res, err
	}
	defer cl.Close()
	desc := BenchDesc()

	// In the parallel 2-table scenario each table is recovered from a
	// different buddy: replicate table 1 on workers {0,1} and table 2 on
	// workers {0,2}. Single-table scenarios replicate on {0,1}.
	switch nTables {
	case 1:
		if err := cl.CreateReplicatedTable(1, desc, p.SegPages, 0, 1); err != nil {
			return res, err
		}
	case 2:
		if err := cl.CreateReplicatedTable(1, desc, p.SegPages, 0, 1); err != nil {
			return res, err
		}
		if err := cl.CreateReplicatedTable(2, desc, p.SegPages, 0, 2); err != nil {
			return res, err
		}
	}

	// ---- Preload via bulk load (fast path; identical replicas) ----
	perSeg := tuplesPerSegment(desc, p.SegPages)
	preloadTS := tuple.Timestamp(1)
	nextKey := int64(0)
	for t := 1; t <= nTables; t++ {
		for seg := 0; seg < p.PreloadSegments; seg++ {
			n := perSeg
			if seg == p.PreloadSegments-1 {
				n = perSeg / 2 // the paper's half-full last segment
			}
			batch := make([]tuple.Tuple, n)
			for i := 0; i < n; i++ {
				tp := BenchTuple(desc, nextKey)
				tp.SetInsTS(preloadTS)
				batch[i] = tp
				nextKey++
			}
			preloadTS++
			for wi, w := range cl.Workers {
				if !replicaHasTable(nTables, wi, t) {
					continue
				}
				tb, err := w.Mgr.Get(int32(t))
				if err != nil {
					return res, err
				}
				if _, err := tb.Heap.BulkLoadSegment(batch); err != nil {
					return res, err
				}
			}
		}
	}
	cl.Coord.Authority.Advance(preloadTS)
	for _, w := range cl.Workers {
		w.SeedAppliedTS(preloadTS)
		if err := w.CheckpointNow(); err != nil {
			return res, err
		}
		if w.Log != nil {
			// ARIES fuzzy checkpoint so the log scan starts after preload.
			if err := w.CheckpointNow(); err != nil {
				return res, err
			}
		}
	}
	// Bulk load bypasses the key indexes; rebuild them so the update
	// workload's index lookups work.
	for _, w := range cl.Workers {
		if err := w.Mgr.RebuildIndexes(); err != nil {
			return res, err
		}
	}

	// ---- The workload to be recovered ----
	histTargets := historicalTargets(p, perSeg, nTables)
	inserts := p.InsertTxns - len(histTargets)
	if inserts < 0 {
		inserts = 0
	}
	keyBase := nextKey + 1_000_000
	for i := 0; i < inserts; i++ {
		table := int32(i%nTables + 1)
		tx := cl.Coord.Begin()
		if err := tx.Insert(table, BenchTuple(desc, keyBase+int64(i))); err != nil {
			return res, err
		}
		if _, err := tx.Commit(); err != nil {
			return res, err
		}
	}
	for _, target := range histTargets {
		tx := cl.Coord.Begin()
		if err := tx.UpdateKey(target.table, target.key, BenchTuple(desc, target.key)); err != nil {
			return res, err
		}
		if _, err := tx.Commit(); err != nil {
			return res, err
		}
	}

	// ---- Crash worker 0 and measure recovery ----
	cl.Workers[0].Crash()
	w, err := cl.RestartWorker(0)
	if err != nil {
		return res, err
	}
	start := time.Now()
	if p.Scenario == Aries1Table {
		if _, err := w.RecoverARIES(); err != nil {
			return res, err
		}
	} else {
		stats, err := core.New(w, cl.Catalog).RecoverSite(core.Options{
			Parallel:       p.Scenario != Harbor2TablesSerial,
			DisablePruning: p.DisablePruning,
		})
		if err != nil {
			return res, err
		}
		for _, o := range stats.Objects {
			res.Phase1 += o.Phase1
			res.Phase2Update += o.Phase2Update
			res.Phase2Insert += o.Phase2Insert
			res.Phase3 += o.Phase3
			res.TuplesCopied += o.Phase2Inserts + o.Phase3Inserts
			res.DeletesCopied += o.Phase2Deletes + o.Phase3Deletes
		}
	}
	res.RecoveryTime = time.Since(start)
	return res, nil
}

type histTarget struct {
	table int32
	key   int64
}

// historicalTargets picks one existing key in each of the first H historical
// segments, round-robining across tables in the two-table scenarios.
func historicalTargets(p RecoveryParams, perSeg, nTables int) []histTarget {
	var out []histTarget
	perTable := int64(0)
	for seg := 0; seg < p.PreloadSegments; seg++ {
		n := perSeg
		if seg == p.PreloadSegments-1 {
			n = perSeg / 2
		}
		perTable += int64(n)
	}
	for h := 0; h < p.HistoricalSegmentUpdates; h++ {
		tableIdx := h % nTables
		segIdx := (h / nTables) % (p.PreloadSegments - 1) // skip the last segment (always scanned)
		key := int64(tableIdx)*perTable + int64(segIdx)*int64(perSeg) + int64(h%perSeg)
		out = append(out, histTarget{table: int32(tableIdx + 1), key: key})
	}
	return out
}

// replicaHasTable mirrors the replica layout choices above.
func replicaHasTable(nTables, workerIdx, table int) bool {
	if workerIdx == 0 {
		return true
	}
	if nTables == 1 {
		return workerIdx == 1 && table == 1
	}
	return (workerIdx == 1 && table == 1) || (workerIdx == 2 && table == 2)
}

// tuplesPerSegment computes a segment's tuple capacity.
func tuplesPerSegment(d *tuple.Desc, segPages int32) int {
	return int(segPages) * slotsPerPage(d)
}

func slotsPerPage(d *tuple.Desc) int {
	// page.SlotsPerPage without importing page here.
	width := d.Width()
	slots := (4096 - 10) * 8 / (width*8 + 1)
	for slots > 0 && 10+(slots+7)/8+slots*width > 4096 {
		slots--
	}
	return slots
}

// TempDir makes a scratch directory for one experiment run.
func TempDir(prefix string) (string, func(), error) {
	dir, err := os.MkdirTemp("", prefix)
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}
