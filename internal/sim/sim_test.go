package sim

import (
	"testing"
	"time"

	"harbor/internal/txn"
	"harbor/internal/worker"
)

func TestRunCommitBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench")
	}
	for _, cfg := range []ProtoConfig{
		{Name: "opt3pc", Protocol: txn.OptThreePC, Mode: worker.HARBOR, GroupCommit: true, Workers: 2},
		{Name: "2pc", Protocol: txn.TwoPC, Mode: worker.ARIES, GroupCommit: true, Workers: 2},
		{Name: "2pc-norepl", Protocol: txn.TwoPC, Mode: worker.ARIES, GroupCommit: true, Workers: 1},
	} {
		res, err := RunCommitBench(t.TempDir(), cfg, 2, 10, 0)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.Txns != 20 || res.TPS <= 0 {
			t.Fatalf("%s: implausible result %+v", cfg.Name, res)
		}
	}
}

func TestRunCommitBenchWithWork(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench")
	}
	cfg := ProtoConfig{Name: "opt3pc", Protocol: txn.OptThreePC, Mode: worker.HARBOR, GroupCommit: true, Workers: 2}
	noWork, err := RunCommitBench(t.TempDir(), cfg, 1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	withWork, err := RunCommitBench(t.TempDir(), cfg, 1, 8, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if withWork.TPS >= noWork.TPS {
		t.Fatalf("simulated work did not slow transactions: %0.1f vs %0.1f tps", withWork.TPS, noWork.TPS)
	}
}

func TestRunRecoveryBenchAllScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench")
	}
	for _, sc := range []RecoveryScenario{Aries1Table, Harbor1Table, Harbor2TablesSerial, Harbor2TablesParallel} {
		res, err := RunRecoveryBench(t.TempDir(), RecoveryParams{
			Scenario:        sc,
			PreloadSegments: 4,
			SegPages:        8,
			InsertTxns:      30,
		})
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		if res.RecoveryTime <= 0 {
			t.Fatalf("%v: no recovery time", sc)
		}
		if sc != Aries1Table && res.TuplesCopied < 30 {
			t.Fatalf("%v: copied %d tuples, want ≥ 30", sc, res.TuplesCopied)
		}
	}
}

func TestRunRecoveryBenchHistoricalUpdates(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench")
	}
	res, err := RunRecoveryBench(t.TempDir(), RecoveryParams{
		Scenario:                 Harbor1Table,
		PreloadSegments:          6,
		SegPages:                 8,
		InsertTxns:               20,
		HistoricalSegmentUpdates: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeletesCopied < 4 {
		t.Fatalf("historical updates not recovered: %+v", res)
	}
}

func TestBenchTupleShape(t *testing.T) {
	d := BenchDesc()
	// 16 fields total; 8+8 ts + 8 id + 13*4 = 76 bytes.
	if d.NumFields() != 16 {
		t.Fatalf("fields = %d", d.NumFields())
	}
	if d.Width() != 76 {
		t.Fatalf("width = %d", d.Width())
	}
	tp := BenchTuple(d, 5)
	if tp.Key(d) != 5 {
		t.Fatalf("key = %d", tp.Key(d))
	}
}

func TestRunFailoverTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench")
	}
	samples, err := RunFailoverTimeline(t.TempDir(), TimelineParams{
		Total:       2 * time.Second,
		CrashAt:     500 * time.Millisecond,
		RecoverAt:   time.Second,
		SampleEvery: 100 * time.Millisecond,
		PreloadRows: 50,
		SegPages:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawCrash, sawRecovery, sawOnline bool
	var total float64
	for _, s := range samples {
		total += s.TPS
		switch s.Event {
		case "crash":
			sawCrash = true
		case "recovery-start":
			sawRecovery = true
		case "online":
			sawOnline = true
		}
	}
	if !sawCrash || !sawRecovery || !sawOnline {
		t.Fatalf("events missing: crash=%v recovery=%v online=%v", sawCrash, sawRecovery, sawOnline)
	}
	if total <= 0 {
		t.Fatal("no throughput recorded")
	}
}
