package worker

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"harbor/internal/tuple"
	"harbor/internal/vfs"
	"harbor/internal/wire"
)

// ObjState is the recovery state of one replica object (one table's local
// replica). Recovery used to be site-granular: a single needs-recovery bool
// withheld the ping ready flag and refused every read until the last object
// caught up. The per-object state machine replaces it —
//
//	NeedsRecovery → Scrubbing → HistoricalCopy → Catchup → Ready
//
// — so each object becomes servable independently: a Ready object on a
// still-recovering site serves immediately, and historical reads against an
// object in HistoricalCopy/Catchup become legal the moment the copy horizon
// (copiedThrough) passes the read time. The old whole-site behavior is the
// degenerate case of every object transitioning in lockstep.
type ObjState uint8

const (
	// ObjNeedsRecovery: the object belongs to a crashed incarnation and no
	// recovery phase has run; it may be missing acknowledged commits and
	// must not serve reads or seed another site's catch-up.
	ObjNeedsRecovery ObjState = iota + 1
	// ObjScrubbing: Phase 0 CRC scrub / torn-page repair in progress.
	ObjScrubbing
	// ObjHistoricalCopy: Phase 1 rewound the object to its checkpoint (so it
	// IS the historical snapshot at copiedThrough) and Phase 2 is copying
	// forward; historical reads asOf ≤ copiedThrough are byte-correct.
	ObjHistoricalCopy
	// ObjCatchup: Phase 3 locked catch-up; historical reads asOf ≤
	// copiedThrough remain legal.
	ObjCatchup
	// ObjReady: fully caught up and online; serves everything, including
	// recovery scans for other sites.
	ObjReady
)

// String renders the state.
func (st ObjState) String() string {
	switch st {
	case ObjNeedsRecovery:
		return "NeedsRecovery"
	case ObjScrubbing:
		return "Scrubbing"
	case ObjHistoricalCopy:
		return "HistoricalCopy"
	case ObjCatchup:
		return "Catchup"
	case ObjReady:
		return "Ready"
	default:
		return fmt.Sprintf("ObjState(%d)", uint8(st))
	}
}

// objStatus is one object's entry in the site's recovery state table.
type objStatus struct {
	state ObjState
	// copiedThrough is the timestamp horizon through which this object's
	// contents are a byte-correct historical snapshot. It starts at the
	// object's rewind checkpoint (after Phase 1 the object IS the snapshot
	// at the checkpoint) and advances only after each Phase 2/3 window is
	// durably flushed, so it never claims more than disk holds.
	copiedThrough tuple.Timestamp
}

// objStateFile persists the recovery state table across restarts. The file
// is advisory — the durable resume point of an interrupted recovery is the
// per-object checkpoint file (recoverObject re-reads it) — but persisting
// states lets a restarted incarnation report progress per object and seed
// recovery priority. One line per object: "<table> <state> <copiedThrough>".
const objStateFile = "recovery_state"

// seedObjectStates initializes the state table in Open. A clean prior
// shutdown means every object holds everything it ever acknowledged: all
// Ready. A dirty start demotes every object to NeedsRecovery regardless of
// what the persisted file claims — any state buffered after the last flush
// died with the crash — keeping only the persisted copiedThrough as a hint.
func (s *Site) seedObjectStates(dirty bool, ids []int32) {
	s.objMu.Lock()
	s.startedDirty = dirty
	s.objs = make(map[int32]objStatus, len(ids))
	prior := s.readObjStateFile()
	for _, id := range ids {
		if dirty {
			s.objs[id] = objStatus{state: ObjNeedsRecovery, copiedThrough: prior[id].copiedThrough}
		} else {
			s.objs[id] = objStatus{state: ObjReady}
		}
	}
	data := s.renderObjStatesLocked()
	s.objMu.Unlock()
	s.writeObjStates(data)
}

// readObjStateFile parses the persisted state table (empty map if absent).
func (s *Site) readObjStateFile() map[int32]objStatus {
	out := map[int32]objStatus{}
	data, err := vfs.ReadFile(filepath.Join(s.Cfg.Dir, objStateFile))
	if err != nil {
		return out
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 3 {
			continue
		}
		table, err1 := strconv.ParseInt(fields[0], 10, 32)
		st, err2 := strconv.ParseUint(fields[1], 10, 8)
		ct, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		out[int32(table)] = objStatus{state: ObjState(st), copiedThrough: tuple.Timestamp(ct)}
	}
	return out
}

// renderObjStatesLocked serializes the state table. Callers hold objMu; the
// actual file write happens in writeObjStates AFTER objMu is released —
// ObjectState sits on every scan's serving path, and an fsync under the
// same mutex would stall reads behind each state transition.
func (s *Site) renderObjStatesLocked() []byte {
	ids := make([]int32, 0, len(s.objs))
	for id := range s.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for _, id := range ids {
		st := s.objs[id]
		fmt.Fprintf(&b, "%d %d %d\n", id, uint8(st.state), int64(st.copiedThrough))
	}
	return []byte(b.String())
}

// writeObjStates persists one rendered state table atomically. Failures are
// swallowed: the file is an observability/priority hint, not the durability
// mechanism (per-object checkpoint files are). Writers racing here can land
// a snapshot slightly out of order; that only ever under-reports progress,
// which the dirty-restart demotion re-derives anyway.
func (s *Site) writeObjStates(data []byte) {
	s.objPersistMu.Lock()
	defer s.objPersistMu.Unlock()
	_ = vfs.WriteFileAtomic(filepath.Join(s.Cfg.Dir, objStateFile), data, 0o644)
}

// ObjectState returns one object's recovery state and copy horizon. Objects
// the table doesn't know (created before the state machine, or raced with
// CreateTable) default by incarnation: Ready on a cleanly-started site,
// NeedsRecovery on one that rejoined from a crash.
func (s *Site) ObjectState(table int32) (ObjState, tuple.Timestamp) {
	s.objMu.Lock()
	defer s.objMu.Unlock()
	if st, ok := s.objs[table]; ok {
		return st.state, st.copiedThrough
	}
	if s.startedDirty {
		return ObjNeedsRecovery, 0
	}
	return ObjReady, 0
}

// SetObjectState transitions one object and persists the table. Recovery
// (core.Recoverer) drives the transitions; copiedThrough must only be
// advanced after the corresponding window is durably flushed.
func (s *Site) SetObjectState(table int32, st ObjState, copiedThrough tuple.Timestamp) {
	s.objMu.Lock()
	if s.objs == nil {
		s.objs = map[int32]objStatus{}
	}
	s.objs[table] = objStatus{state: st, copiedThrough: copiedThrough}
	data := s.renderObjStatesLocked()
	s.objMu.Unlock()
	s.writeObjStates(data)
}

// ObjectStates snapshots the state table in wire form, for the ping reply's
// per-object readiness list (sorted by table for determinism).
func (s *Site) ObjectStates() []wire.ObjReady {
	s.objMu.Lock()
	defer s.objMu.Unlock()
	out := make([]wire.ObjReady, 0, len(s.objs))
	for id, st := range s.objs {
		out = append(out, wire.ObjReady{
			Table:         id,
			State:         uint8(st.state),
			CopiedThrough: int64(st.copiedThrough),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// NeedsRecovery reports whether any object still needs recovery. While true
// the site as a whole is not fully rejoined — pings omit the site-level
// ready flag — but individual Ready objects serve normally.
func (s *Site) NeedsRecovery() bool {
	s.objMu.Lock()
	defer s.objMu.Unlock()
	for _, st := range s.objs {
		if st.state != ObjReady {
			return true
		}
	}
	return false
}

// SetRecovered marks every object Ready: HARBOR RecoverSite (or ARIES
// restart recovery, which is whole-site by construction) completed, so the
// site's replicas hold every commit through the recovery's high water mark
// and may again seed other sites' catch-up.
func (s *Site) SetRecovered() {
	s.objMu.Lock()
	for id, st := range s.objs {
		st.state = ObjReady
		s.objs[id] = st
	}
	s.startedDirty = false
	data := s.renderObjStatesLocked()
	s.objMu.Unlock()
	s.writeObjStates(data)
}

// SetFaultInHook installs the on-demand fault-in hook: requestFaultIn calls
// it (in the background, deduplicated per table) when a query or recovery
// scan lands on a not-yet-Ready object, so the recovery driver can promote
// that object to the front of its queue. Pass nil to uninstall.
func (s *Site) SetFaultInHook(fn func(table int32)) {
	s.faultMu.Lock()
	s.faultInHook = fn
	s.faultMu.Unlock()
}

// requestFaultIn asks the recovery driver (if one is attached) to
// prioritize table. Deduplicated per table and dispatched on a background
// goroutine so the serving path never blocks on the recovery scheduler.
func (s *Site) requestFaultIn(table int32) {
	if s.crashed.Load() {
		return
	}
	s.faultMu.Lock()
	hook := s.faultInHook
	if hook == nil || s.faultBusy[table] {
		s.faultMu.Unlock()
		return
	}
	if s.faultBusy == nil {
		s.faultBusy = map[int32]bool{}
	}
	s.faultBusy[table] = true
	s.faultMu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			s.faultMu.Lock()
			delete(s.faultBusy, table)
			s.faultMu.Unlock()
		}()
		hook(table)
	}()
}
