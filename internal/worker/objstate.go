package worker

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"harbor/internal/expr"
	"harbor/internal/tuple"
	"harbor/internal/vfs"
	"harbor/internal/wire"
)

// ObjState is the recovery state of one replica object (one table's local
// replica) — or, since states are now tracked per key-range segment, of one
// segment of it. Recovery used to be site-granular: a single needs-recovery
// bool withheld the ping ready flag and refused every read until the last
// object caught up. The per-object state machine replaced it —
//
//	NeedsRecovery → Scrubbing → HistoricalCopy → Catchup → Ready
//
// — and the per-segment table pushes the same machine one level down: each
// object's key range is carved into segments whose states and copy horizons
// advance independently, so a hot key range inside a big fact table becomes
// servable before the rest of its own table. The old whole-object behavior
// is the degenerate case of a single segment spanning the full key range.
type ObjState uint8

const (
	// ObjNeedsRecovery: the object belongs to a crashed incarnation and no
	// recovery phase has run; it may be missing acknowledged commits and
	// must not serve reads or seed another site's catch-up.
	ObjNeedsRecovery ObjState = iota + 1
	// ObjScrubbing: Phase 0 CRC scrub / torn-page repair in progress.
	ObjScrubbing
	// ObjHistoricalCopy: Phase 1 rewound the object to its checkpoint (so it
	// IS the historical snapshot at copiedThrough) and Phase 2 is copying
	// forward; historical reads asOf ≤ copiedThrough are byte-correct.
	ObjHistoricalCopy
	// ObjCatchup: Phase 3 locked catch-up; historical reads asOf ≤
	// copiedThrough remain legal, and once the locked copy has drained
	// (copiedThrough advanced to the drain horizon) current-visibility
	// reads whose start timestamp is ≤ copiedThrough are too: the buddy
	// table locks freeze commits, so the drained segment equals a healthy
	// replica's as of that horizon.
	ObjCatchup
	// ObjReady: fully caught up and online; serves everything, including
	// recovery scans for other sites.
	ObjReady
)

// objStateMax bounds the valid wire/persisted state codes; lines carrying
// anything outside [1, objStateMax] are from a future (or corrupt) format
// and are skipped rather than guessed at.
const objStateMax = ObjReady

// String renders the state.
func (st ObjState) String() string {
	switch st {
	case ObjNeedsRecovery:
		return "NeedsRecovery"
	case ObjScrubbing:
		return "Scrubbing"
	case ObjHistoricalCopy:
		return "HistoricalCopy"
	case ObjCatchup:
		return "Catchup"
	case ObjReady:
		return "Ready"
	default:
		return fmt.Sprintf("ObjState(%d)", uint8(st))
	}
}

// segStatus is one segment's entry in an object's recovery state table.
type segStatus struct {
	// rng is the half-open key range this segment covers. An object's
	// segments are sorted by Lo, mutually disjoint, and tile the full key
	// range — data outside the replica's catalog range is simply absent, so
	// extending the boundary segments to ±∞ costs nothing and spares every
	// reader a coverage case.
	rng   expr.KeyRange
	state ObjState
	// copiedThrough is the timestamp horizon through which this segment's
	// contents are a byte-correct historical snapshot. It starts at the
	// object's rewind checkpoint (after Phase 1 the object IS the snapshot
	// at the checkpoint) and advances only after each Phase 2/3 window is
	// durably flushed, so it never claims more than disk holds.
	copiedThrough tuple.Timestamp
}

// objStatus is one object's entry in the site's recovery state table: its
// segments, sorted by range Lo.
type objStatus struct {
	segs []segStatus
}

// SegmentStatus is the exported view of one segment's recovery state.
type SegmentStatus struct {
	Range         expr.KeyRange
	State         ObjState
	CopiedThrough tuple.Timestamp
}

// objStateFile persists the recovery state table across restarts. The file
// is advisory — the durable resume point of an interrupted recovery is the
// per-object checkpoint file (recoverObject re-reads it) — but persisting
// states lets a restarted incarnation report progress per object and seed
// recovery priority. One line per segment:
// "<table> <lo> <hi> <state> <copiedThrough>". Legacy whole-object lines
// ("<table> <state> <copiedThrough>") parse as a single full-range segment.
const objStateFile = "recovery_state"

// fullSeg returns the degenerate whole-object segment.
func fullSeg(st ObjState, ct tuple.Timestamp) segStatus {
	return segStatus{rng: expr.FullKeyRange(), state: st, copiedThrough: ct}
}

// seedObjectStates initializes the state table in Open. A clean prior
// shutdown means every object holds everything it ever acknowledged: all
// Ready. A dirty start demotes every segment to NeedsRecovery regardless of
// what the persisted file claims — any state buffered after the last flush
// died with the crash — keeping only the persisted segment boundaries and
// copiedThrough as hints.
func (s *Site) seedObjectStates(dirty bool, ids []int32) {
	s.objMu.Lock()
	s.startedDirty = dirty
	s.objs = make(map[int32]objStatus, len(ids))
	prior := s.readObjStateFile()
	for _, id := range ids {
		if !dirty {
			s.objs[id] = objStatus{segs: []segStatus{fullSeg(ObjReady, 0)}}
			continue
		}
		segs := prior[id].segs
		if len(segs) == 0 {
			segs = []segStatus{fullSeg(ObjNeedsRecovery, 0)}
		} else {
			for i := range segs {
				segs[i].state = ObjNeedsRecovery
			}
		}
		s.objs[id] = objStatus{segs: segs}
	}
	data := s.renderObjStatesLocked()
	s.objMu.Unlock()
	s.writeObjStates(data)
}

// readObjStateFile parses the persisted state table (empty map if absent).
// Tolerant by design: corrupt, truncated, unknown-state, and empty-range
// lines are skipped — the file is a hint, and a wholly garbage file simply
// degrades to the demote-all default.
func (s *Site) readObjStateFile() map[int32]objStatus {
	out := map[int32]objStatus{}
	data, err := vfs.ReadFile(filepath.Join(s.Cfg.Dir, objStateFile))
	if err != nil {
		return out
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		var table, ct, lo, hi int64
		var st uint64
		var err1, err2, err3, err4, err5 error
		switch len(fields) {
		case 3: // legacy whole-object line
			table, err1 = strconv.ParseInt(fields[0], 10, 32)
			st, err2 = strconv.ParseUint(fields[1], 10, 8)
			ct, err3 = strconv.ParseInt(fields[2], 10, 64)
			full := expr.FullKeyRange()
			lo, hi = full.Lo, full.Hi
		case 5:
			table, err1 = strconv.ParseInt(fields[0], 10, 32)
			lo, err2 = strconv.ParseInt(fields[1], 10, 64)
			hi, err3 = strconv.ParseInt(fields[2], 10, 64)
			st, err4 = strconv.ParseUint(fields[3], 10, 8)
			ct, err5 = strconv.ParseInt(fields[4], 10, 64)
		default:
			continue
		}
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			continue
		}
		if st < uint64(ObjNeedsRecovery) || st > uint64(objStateMax) {
			continue
		}
		rng := expr.KeyRange{Lo: lo, Hi: hi}
		if rng.Empty() {
			continue
		}
		o := out[int32(table)]
		o.segs = append(o.segs, segStatus{rng: rng, state: ObjState(st), copiedThrough: tuple.Timestamp(ct)})
		out[int32(table)] = o
	}
	for id, o := range out {
		sort.Slice(o.segs, func(i, j int) bool { return o.segs[i].rng.Lo < o.segs[j].rng.Lo })
		out[id] = o
	}
	return out
}

// renderObjStatesLocked serializes the state table. Callers hold objMu; the
// actual file write happens in writeObjStates AFTER objMu is released —
// ObjectState sits on every scan's serving path, and an fsync under the
// same mutex would stall reads behind each state transition.
func (s *Site) renderObjStatesLocked() []byte {
	ids := make([]int32, 0, len(s.objs))
	for id := range s.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for _, id := range ids {
		for _, seg := range s.objs[id].segs {
			fmt.Fprintf(&b, "%d %d %d %d %d\n", id, seg.rng.Lo, seg.rng.Hi,
				uint8(seg.state), int64(seg.copiedThrough))
		}
	}
	return []byte(b.String())
}

// writeObjStates persists one rendered state table atomically. Failures are
// swallowed: the file is an observability/priority hint, not the durability
// mechanism (per-object checkpoint files are). Writers racing here can land
// a snapshot slightly out of order; that only ever under-reports progress,
// which the dirty-restart demotion re-derives anyway.
func (s *Site) writeObjStates(data []byte) {
	s.objPersistMu.Lock()
	defer s.objPersistMu.Unlock()
	_ = vfs.WriteFileAtomic(filepath.Join(s.Cfg.Dir, objStateFile), data, 0o644)
}

// defaultSegLocked is the segment reported for objects the state table
// doesn't know (created before the state machine, or raced with
// CreateTable): Ready on a cleanly-started site, NeedsRecovery on one that
// rejoined from a crash.
func (s *Site) defaultSegLocked() segStatus {
	if s.startedDirty {
		return fullSeg(ObjNeedsRecovery, 0)
	}
	return fullSeg(ObjReady, 0)
}

// ObjectState returns one object's aggregate recovery state and copy
// horizon: the least-advanced state and the smallest copiedThrough over its
// segments. Callers that care about a specific key range use
// ObjectSegments; whole-object consumers (recovery scans, the rejoin
// decision) need the conservative reading.
func (s *Site) ObjectState(table int32) (ObjState, tuple.Timestamp) {
	s.objMu.Lock()
	defer s.objMu.Unlock()
	o, ok := s.objs[table]
	if !ok || len(o.segs) == 0 {
		d := s.defaultSegLocked()
		return d.state, d.copiedThrough
	}
	st, ct := o.segs[0].state, o.segs[0].copiedThrough
	for _, seg := range o.segs[1:] {
		if seg.state < st {
			st = seg.state
		}
		if seg.copiedThrough < ct {
			ct = seg.copiedThrough
		}
	}
	return st, ct
}

// ObjectSegments returns one object's per-segment states, sorted by range
// Lo. Unknown objects return the single default segment.
func (s *Site) ObjectSegments(table int32) []SegmentStatus {
	s.objMu.Lock()
	defer s.objMu.Unlock()
	o, ok := s.objs[table]
	if !ok || len(o.segs) == 0 {
		d := s.defaultSegLocked()
		return []SegmentStatus{{Range: d.rng, State: d.state, CopiedThrough: d.copiedThrough}}
	}
	out := make([]SegmentStatus, len(o.segs))
	for i, seg := range o.segs {
		out[i] = SegmentStatus{Range: seg.rng, State: seg.state, CopiedThrough: seg.copiedThrough}
	}
	return out
}

// SetObjectSegments installs an object's segment boundaries: the interior
// bounds split the full key range into len(bounds)+1 segments, all starting
// in the given state and horizon. Recovery calls this at demotion time with
// quantiles of the local key index; an empty bounds list installs the
// degenerate single full-range segment.
func (s *Site) SetObjectSegments(table int32, bounds []int64, st ObjState, copiedThrough tuple.Timestamp) {
	full := expr.FullKeyRange()
	segs := make([]segStatus, 0, len(bounds)+1)
	lo := full.Lo
	for _, b := range bounds {
		if b <= lo || b >= full.Hi {
			continue
		}
		segs = append(segs, segStatus{rng: expr.KeyRange{Lo: lo, Hi: b}, state: st, copiedThrough: copiedThrough})
		lo = b
	}
	segs = append(segs, segStatus{rng: expr.KeyRange{Lo: lo, Hi: full.Hi}, state: st, copiedThrough: copiedThrough})

	s.objMu.Lock()
	if s.objs == nil {
		s.objs = map[int32]objStatus{}
	}
	s.objs[table] = objStatus{segs: segs}
	data := s.renderObjStatesLocked()
	s.objMu.Unlock()
	s.writeObjStates(data)
}

// SetObjectState transitions every segment of one object uniformly and
// persists the table (installing the degenerate full-range segment if the
// object has none). Recovery (core.Recoverer) drives the transitions;
// copiedThrough must only be advanced after the corresponding window is
// durably flushed.
func (s *Site) SetObjectState(table int32, st ObjState, copiedThrough tuple.Timestamp) {
	s.objMu.Lock()
	if s.objs == nil {
		s.objs = map[int32]objStatus{}
	}
	o := s.objs[table]
	if len(o.segs) == 0 {
		o.segs = []segStatus{fullSeg(st, copiedThrough)}
	} else {
		for i := range o.segs {
			o.segs[i].state = st
			o.segs[i].copiedThrough = copiedThrough
		}
	}
	s.objs[table] = o
	data := s.renderObjStatesLocked()
	s.objMu.Unlock()
	s.writeObjStates(data)
}

// SetSegmentState transitions the segment whose range is exactly rng (as
// previously installed by SetObjectSegments and read back via
// ObjectSegments). A range that matches no segment exactly falls back to
// every segment it intersects — conservative, and only reachable if the
// boundaries changed underneath the caller.
func (s *Site) SetSegmentState(table int32, rng expr.KeyRange, st ObjState, copiedThrough tuple.Timestamp) {
	s.objMu.Lock()
	if s.objs == nil {
		s.objs = map[int32]objStatus{}
	}
	o := s.objs[table]
	if len(o.segs) == 0 {
		o.segs = []segStatus{{rng: rng, state: st, copiedThrough: copiedThrough}}
	} else {
		exact := false
		for i := range o.segs {
			if o.segs[i].rng == rng {
				o.segs[i].state = st
				o.segs[i].copiedThrough = copiedThrough
				exact = true
				break
			}
		}
		if !exact {
			for i := range o.segs {
				if !o.segs[i].rng.Intersect(rng).Empty() {
					o.segs[i].state = st
					o.segs[i].copiedThrough = copiedThrough
				}
			}
		}
	}
	s.objs[table] = o
	data := s.renderObjStatesLocked()
	s.objMu.Unlock()
	s.writeObjStates(data)
}

// CarveSegmentState splits an object's segment boundaries at rng's bounds
// so the range is tiled by whole segments, then transitions exactly those
// segments, leaving every segment outside rng untouched. Migration uses it:
// the incoming range demotes to NeedsRecovery and later promotes to Ready
// without perturbing ranges the site already serves. An object the table
// doesn't know starts from the site's default segment.
func (s *Site) CarveSegmentState(table int32, rng expr.KeyRange, st ObjState, copiedThrough tuple.Timestamp) {
	if rng.Empty() {
		return
	}
	full := expr.FullKeyRange()
	s.objMu.Lock()
	if s.objs == nil {
		s.objs = map[int32]objStatus{}
	}
	o := s.objs[table]
	if len(o.segs) == 0 {
		o.segs = []segStatus{s.defaultSegLocked()}
	}
	o.segs = splitSegAt(o.segs, rng.Lo)
	if rng.Hi != full.Hi {
		o.segs = splitSegAt(o.segs, rng.Hi)
	}
	// After the splits every segment is wholly inside or wholly outside rng.
	for i := range o.segs {
		if !o.segs[i].rng.Intersect(rng).Empty() {
			o.segs[i].state = st
			o.segs[i].copiedThrough = copiedThrough
		}
	}
	s.objs[table] = o
	data := s.renderObjStatesLocked()
	s.objMu.Unlock()
	s.writeObjStates(data)
}

// splitSegAt splits the segment containing bound into two at bound (no-op
// when bound already sits on a boundary, or falls outside every segment).
func splitSegAt(segs []segStatus, bound int64) []segStatus {
	for i, seg := range segs {
		if seg.rng.Lo < bound && seg.rng.Contains(bound) {
			left, right := seg, seg
			left.rng.Hi = bound
			right.rng.Lo = bound
			out := append(segs[:i:i], left, right)
			return append(out, segs[i+1:]...)
		}
	}
	return segs
}

// ObjectStates snapshots the state table in wire form, one entry per
// segment, for the ping reply's readiness list (sorted by table then range
// for determinism).
func (s *Site) ObjectStates() []wire.ObjReady {
	s.objMu.Lock()
	defer s.objMu.Unlock()
	out := make([]wire.ObjReady, 0, len(s.objs))
	for id, o := range s.objs {
		for _, seg := range o.segs {
			out = append(out, wire.ObjReady{
				Table:         id,
				State:         uint8(seg.state),
				CopiedThrough: int64(seg.copiedThrough),
				Lo:            seg.rng.Lo,
				Hi:            seg.rng.Hi,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Lo < out[j].Lo
	})
	return out
}

// NeedsRecovery reports whether any segment still needs recovery. While
// true the site as a whole is not fully rejoined — pings omit the
// site-level ready flag — but individual Ready objects serve normally.
func (s *Site) NeedsRecovery() bool {
	s.objMu.Lock()
	defer s.objMu.Unlock()
	for _, o := range s.objs {
		for _, seg := range o.segs {
			if seg.state != ObjReady {
				return true
			}
		}
	}
	return false
}

// SetRecovered marks every object Ready: HARBOR RecoverSite (or ARIES
// restart recovery, which is whole-site by construction) completed, so the
// site's replicas hold every commit through the recovery's high water mark
// and may again seed other sites' catch-up. Segment boundaries collapse
// back to the degenerate whole-object form — they only exist to let
// recovery progress differ across a key range, and it no longer does.
func (s *Site) SetRecovered() {
	s.objMu.Lock()
	for id, o := range s.objs {
		var ct tuple.Timestamp
		for i, seg := range o.segs {
			if i == 0 || seg.copiedThrough < ct {
				ct = seg.copiedThrough
			}
		}
		s.objs[id] = objStatus{segs: []segStatus{fullSeg(ObjReady, ct)}}
	}
	s.startedDirty = false
	data := s.renderObjStatesLocked()
	s.objMu.Unlock()
	s.writeObjStates(data)
}

// pendingFaultCap bounds the per-table buffer of fault-in ranges recorded
// while no recovery driver is attached.
const pendingFaultCap = 16

// SetFaultInHook installs the on-demand fault-in hook: requestFaultIn calls
// it (in the background, deduplicated per table) when a query or recovery
// scan lands on a not-yet-Ready object, so the recovery driver can promote
// that object — and the specific key range the refused read wanted — to the
// front of its queue. Fault-ins that arrived while no hook was attached
// (queries hammering the site between restart and RecoverSite) were
// buffered and are replayed synchronously here, so the driver knows the hot
// ranges before its first scheduling decision. Pass nil to uninstall.
func (s *Site) SetFaultInHook(fn func(table int32, rng expr.KeyRange)) {
	s.faultMu.Lock()
	s.faultInHook = fn
	pending := s.pendingFaults
	s.pendingFaults = nil
	s.faultMu.Unlock()
	if fn == nil {
		return
	}
	for table, rngs := range pending {
		for _, rng := range rngs {
			fn(table, rng)
		}
	}
}

// requestFaultIn asks the recovery driver (if one is attached) to
// prioritize table, carrying the key range the refused read touched so the
// driver can pull just that segment forward. Deduplicated per table and
// dispatched on a background goroutine so the serving path never blocks on
// the recovery scheduler. With no driver attached the range is buffered for
// replay at the next SetFaultInHook.
func (s *Site) requestFaultIn(table int32, rng expr.KeyRange) {
	if s.crashed.Load() {
		return
	}
	s.faultMu.Lock()
	hook := s.faultInHook
	if hook == nil {
		if s.pendingFaults == nil {
			s.pendingFaults = map[int32][]expr.KeyRange{}
		}
		buf := s.pendingFaults[table]
		dup := false
		for _, h := range buf {
			if h == rng {
				dup = true
				break
			}
		}
		if !dup && len(buf) < pendingFaultCap {
			s.pendingFaults[table] = append(buf, rng)
		}
		s.faultMu.Unlock()
		return
	}
	if s.faultBusy[table] {
		s.faultMu.Unlock()
		return
	}
	if s.faultBusy == nil {
		s.faultBusy = map[int32]bool{}
	}
	s.faultBusy[table] = true
	s.faultMu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			s.faultMu.Lock()
			delete(s.faultBusy, table)
			s.faultMu.Unlock()
		}()
		hook(table, rng)
	}()
}
