package worker

import (
	"fmt"

	"harbor/internal/expr"
	"harbor/internal/lockmgr"
	"harbor/internal/page"
)

// PurgeRange physically deletes every local version (live or deleted) whose
// key falls in rng — the donor-side cleanup after a segment moved away, and
// the idempotency reset at the start of a migration attempt onto this site.
// The deletion is durable before return. It does NOT touch the recovery
// state table: absence of data is not a recovery state, it is placement.
func (s *Site) PurgeRange(table int32, rng expr.KeyRange) (int, error) {
	if rng.Empty() {
		return 0, nil
	}
	tb, err := s.Mgr.Get(table)
	if err != nil {
		return 0, err
	}
	heap := tb.Heap
	desc := heap.Desc()
	keyOff := desc.Offset(desc.Key)
	purged := 0
	var emptied []int32
	lastSeg := heap.LastSegment()
	for _, si := range heap.AllSegments() {
		for _, pno := range heap.SegmentPages(si) {
			pid := page.ID{Table: heap.TableID(), PageNo: pno}
			f, err := s.Pool.GetPageNoLock(pid)
			if err != nil {
				return purged, err
			}
			f.Latch.Lock()
			dirty := false
			var perr error
			for slot := 0; slot < f.Page.NumSlots(); slot++ {
				if !f.Page.Used(slot) {
					continue
				}
				key, err2 := f.Page.ReadInt64At(slot, keyOff)
				if err2 != nil {
					perr = err2
					break
				}
				if !rng.Contains(key) {
					continue
				}
				if err2 := f.Page.Delete(slot); err2 != nil {
					perr = err2
					break
				}
				tb.Index.Remove(key, page.RecordID{Page: pid, Slot: slot})
				s.Store.MarkFreeSlot(pid.Table, pid.PageNo)
				purged++
				dirty = true
			}
			// A page the purge emptied entirely is a reclamation candidate:
			// without reclaiming, a donor that gave a range away keeps paying
			// scan I/O over its dead pages forever. Only pages this purge
			// drained qualify (an untouched empty page may be a concurrent
			// insert's fresh allocation), never in the append segment, and
			// never while a transaction holds a lock on the page.
			if dirty && perr == nil && si != lastSeg {
				empty := true
				for slot := 0; slot < f.Page.NumSlots(); slot++ {
					if f.Page.Used(slot) {
						empty = false
						break
					}
				}
				if empty && len(s.Store.Locks.HoldersOf(lockmgr.PageTarget(pid.Table, pid.PageNo))) == 0 {
					emptied = append(emptied, pno)
				}
			}
			f.Latch.Unlock()
			s.Pool.Unpin(f, dirty, 0)
			if perr != nil {
				return purged, perr
			}
		}
	}
	if err := s.Pool.FlushAll(); err != nil {
		return purged, err
	}
	// Discard before releasing: while a page still belongs to its segment it
	// cannot be re-allocated, so a frame that survives (pinned by a
	// straggling scan) only ever shows the empty image just flushed.
	for _, pno := range emptied {
		s.Pool.Discard(page.ID{Table: heap.TableID(), PageNo: pno})
		s.Store.ClearFreeSlot(heap.TableID(), pno)
	}
	if err := heap.ReleasePages(emptied); err != nil {
		return purged, err
	}
	s.reg.Counter("worker.purge.pages_released").Add(int64(len(emptied)))
	if err := heap.SyncData(); err != nil {
		return purged, err
	}
	if err := heap.FlushMeta(); err != nil {
		return purged, err
	}
	s.reg.Counter("worker.purge.ranges").Inc()
	s.reg.Counter("worker.purge.tuples").Add(int64(purged))
	return purged, nil
}

// MarkRangePurged records that this incarnation deleted rng of table after
// its coverage moved away. Scans (plain or recovery) declaring an
// intersecting range carry a plan resolved against placement from before
// the move; they are refused with a placement-stale error so the
// coordinator replans against the current catalog instead of silently
// reading the hole.
func (s *Site) MarkRangePurged(table int32, rng expr.KeyRange) {
	if rng.Empty() {
		return
	}
	s.purgeMu.Lock()
	defer s.purgeMu.Unlock()
	if s.purged == nil {
		s.purged = map[int32][]expr.KeyRange{}
	}
	for _, have := range s.purged[table] {
		if have == rng {
			return
		}
	}
	s.purged[table] = append(s.purged[table], rng)
}

// ClearPurgedRange withdraws purge notes overlapping rng — the site is
// re-acquiring coverage of the range (a migration back onto it), so reads
// there are legitimate again once the transfer completes.
func (s *Site) ClearPurgedRange(table int32, rng expr.KeyRange) {
	s.purgeMu.Lock()
	defer s.purgeMu.Unlock()
	if s.purged == nil {
		return
	}
	kept := s.purged[table][:0]
	for _, have := range s.purged[table] {
		if have.Intersect(rng).Empty() {
			kept = append(kept, have)
		}
	}
	s.purged[table] = kept
}

// rangePurged reports whether rng overlaps a purged range of table.
func (s *Site) rangePurged(table int32, rng expr.KeyRange) bool {
	s.purgeMu.Lock()
	defer s.purgeMu.Unlock()
	for _, have := range s.purged[table] {
		if !have.Intersect(rng).Empty() {
			return true
		}
	}
	return false
}

// objectWritable gates writes per segment the way objectReadable gates
// reads: a write landing on a segment that is mid-transfer promotes the
// segment in the recovery hotness queue exactly like a refused read does.
// Catchup and Ready accept the write (the §5.4.2 join replay and post-flip
// update routing both target Catchup segments); anything earlier refuses —
// the segment's contents are about to be rewound or re-copied, and the
// coordinator should not have routed here.
func (s *Site) objectWritable(table int32, key int64) error {
	rng := expr.KeyRange{Lo: key, Hi: key + 1}
	var refused *SegmentStatus
	segs := s.ObjectSegments(table)
	for i := range segs {
		seg := &segs[i]
		if !seg.Range.Contains(key) {
			continue
		}
		if seg.State == ObjReady || seg.State == ObjCatchup {
			continue
		}
		refused = seg
	}
	if refused == nil {
		return nil
	}
	s.requestFaultIn(table, rng)
	return fmt.Errorf("worker: site %d object %d segment [%d,%d) is recovering (state %v, copied through %d); write refused",
		s.Cfg.Site, table, refused.Range.Lo, refused.Range.Hi, refused.State, refused.CopiedThrough)
}
