// Package worker implements a worker site: the full single-site stack of
// Figure 6-1 (storage, buffer pool, lock manager, versioning layer, optional
// WAL) behind the multi-threaded TCP server of §6.1.6, with the worker side
// of all four commit protocols, the Figure 3-2 checkpointer, fail-stop crash
// simulation, and the worker-side pieces of the §4.3.3 consensus building
// protocol.
package worker

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"harbor/internal/aries"
	"harbor/internal/buffer"
	"harbor/internal/catalog"
	"harbor/internal/comm"
	"harbor/internal/expr"
	"harbor/internal/lockmgr"
	"harbor/internal/obs"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/version"
	"harbor/internal/vfs"
	"harbor/internal/wal"
	"harbor/internal/wire"
)

// RecoveryMode selects the crash-recovery mechanism (§6.1: "the
// implementation supports two independent recovery mechanisms — HARBOR and
// the traditional log-based ARIES approach").
type RecoveryMode uint8

const (
	// HARBOR recovers from remote replicas (Chapter 5); no WAL exists.
	HARBOR RecoveryMode = iota + 1
	// ARIES recovers from the local write-ahead log.
	ARIES
)

// String renders the mode.
func (m RecoveryMode) String() string {
	if m == HARBOR {
		return "HARBOR"
	}
	return "ARIES"
}

// Config configures a worker site.
type Config struct {
	Site     catalog.SiteID
	Dir      string
	Addr     string // listen address; "127.0.0.1:0" for ephemeral
	Protocol txn.Protocol
	Mode     RecoveryMode

	PoolFrames      int           // buffer pool capacity (default 2048)
	LockTimeout     time.Duration // deadlock timeout (default 2s)
	CheckpointEvery time.Duration // 0 disables the background checkpointer
	GroupCommit     bool          // enable group commit batching (§6.2)
	GroupDelay      time.Duration // optional group-commit delay timer
	SyncDelay       time.Duration // simulated per-fsync disk latency (benchmarks)

	// Catalog gives the cluster layout (addresses for consensus and
	// coordinator-outcome queries).
	Catalog *catalog.Catalog
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.PoolFrames == 0 {
		out.PoolFrames = 2048
	}
	if out.LockTimeout == 0 {
		out.LockTimeout = 2 * time.Second
	}
	if out.Addr == "" {
		out.Addr = "127.0.0.1:0"
	}
	return out
}

// workerLogs reports whether this configuration keeps a WAL: a protocol
// whose phase plan has worker force points needs one, and ARIES recovery
// requires one regardless of protocol.
func (c *Config) workerLogs() bool {
	pl := c.Protocol.Plan()
	return (pl != nil && pl.WorkerForces()) || c.Mode == ARIES
}

// wtxn is the worker-side distributed transaction record (Figure 4-5).
type wtxn struct {
	id           txn.ID
	state        txn.State
	commitTS     tuple.Timestamp
	participants []int32 // 3PC worker set
	didWrite     bool
	// barrier is the appliedTS recorded when the transaction prepared; the
	// checkpointer must not advance past it until the commit time is known
	// (see tsTracker).
	barrier tuple.Timestamp
}

// Site is one worker process.
type Site struct {
	Cfg   Config
	plan  *txn.Plan // the protocol's phase plan; drives handler force points
	Mgr   *storage.Manager
	Log   *wal.Manager // nil when the configuration is logless
	Locks *lockmgr.Manager
	Pool  *buffer.Pool
	Store *version.Store

	server *comm.Server

	mu    sync.Mutex
	txns  map[txn.ID]*wtxn
	conds map[txn.ID]*sync.Cond // waiters for terminal state (consensus)

	ts tsTracker

	crashed   atomic.Bool
	ckptStop  chan struct{}
	ckptPause atomic.Int32
	wg        sync.WaitGroup

	// Per-object recovery state (see objstate.go). When Open finds prior
	// state without the clean-shutdown marker, the previous incarnation
	// fail-stopped: every object seeds NeedsRecovery, and until recovery
	// brings an object to Ready it refuses reads (except covered historical
	// reads) and recovery scans — seeding another site's catch-up from a
	// demoted object would silently lose committed data. startedDirty
	// records which incarnation this is, for objects not yet in the table.
	objMu        sync.Mutex
	objs         map[int32]objStatus
	startedDirty bool
	// objPersistMu serializes writes of the advisory recovery_state file,
	// which happen outside objMu so state transitions (two fsyncs each)
	// never stall the per-scan ObjectState lookups.
	objPersistMu sync.Mutex

	// On-demand fault-in (see objstate.go): the recovery driver's promote
	// hook and the per-table dedup set.
	faultMu     sync.Mutex
	faultInHook func(table int32, rng expr.KeyRange)
	faultBusy   map[int32]bool
	// pendingFaults buffers fault-in ranges recorded while no hook is
	// attached; replayed (and cleared) at the next SetFaultInHook so the
	// driver sees pre-attach read pressure.
	pendingFaults map[int32][]expr.KeyRange

	// failNextPrepare makes the next PREPARE vote NO (abort-path tests).
	failNextPrepare atomic.Bool

	// Online torn-page repair (see repair.go): the installed hook and the
	// set of tables with a repair already in flight.
	repairMu   sync.Mutex
	repairHook func(table int32) error
	repairBusy map[int32]bool

	// Purged key ranges (see purge.go): ranges this incarnation physically
	// deleted after a segment moved away. Scans declaring an intersecting
	// range were planned against placement from before the move and are
	// refused with a placement-stale error so the coordinator replans.
	purgeMu sync.Mutex
	purged  map[int32][]expr.KeyRange

	// msgDelay (ns) stalls every received request before dispatch —
	// simulated network/processing latency in the spirit of §6.3.2's
	// simulated work, used to prove coordinator rounds run at
	// max-of-replicas rather than sum-of-replicas latency.
	msgDelay atomic.Int64

	// Observability: every site owns a registry (worker.*, wal.*, buffer.*,
	// lockmgr.*, storage.* metrics) and a per-transaction tracer; the cmd
	// mounts them at /debug/harbor and the chaos harness dumps timelines
	// from them on invariant failures.
	reg     *obs.Registry
	trace   *obs.Tracer
	commits *obs.Counter // worker.commits
	aborts  *obs.Counter // worker.aborts

	// Batched-stream instrumentation (scan and recovery-scan serving).
	scanRows   *obs.Counter   // worker.scan.rows — rows streamed out
	scanFrames *obs.Counter   // worker.scan.frames — MsgTupleBatch frames sent
	scanBytes  *obs.Counter   // worker.scan.bytes — frame payload bytes sent
	batchFill  *obs.Histogram // worker.scan.batch_fill — rows per frame

	// Pushed-down aggregation instrumentation.
	aggGroups *obs.Counter // worker.agg.groups — partial group states shipped
	aggRowsIn *obs.Counter // worker.agg.rows_in — rows folded into partials
	aggFrames *obs.Counter // worker.agg.frames — MsgAggBatch frames sent
}

// cleanShutdownFile marks a site directory as closed via Close(): the final
// checkpoint ran and nothing acknowledged is volatile-only. Open consumes
// the marker; a directory with prior state but no marker belonged to a
// crashed incarnation, and the new site starts in needs-recovery state.
const cleanShutdownFile = "clean_shutdown"

// Open builds the site stack from its directory (creating it if needed) and
// starts the TCP server. In ARIES mode with existing state, the caller is
// responsible for running Recover (the benches time it separately).
func Open(cfg Config) (*Site, error) {
	cfg = cfg.withDefaults()
	plan := cfg.Protocol.Plan()
	if plan == nil {
		return nil, fmt.Errorf("worker: protocol %v has no phase plan", cfg.Protocol)
	}
	if err := vfs.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	// Consume the clean-shutdown marker before anything else: removing it
	// durably (dir fsync) means a crash from here on is detected as such by
	// the next incarnation.
	marker := filepath.Join(cfg.Dir, cleanShutdownFile)
	_, merr := vfs.Stat(marker)
	cleanPrior := merr == nil
	if cleanPrior {
		if err := vfs.Remove(marker); err != nil {
			return nil, err
		}
		if err := vfs.SyncDir(cfg.Dir); err != nil {
			return nil, err
		}
	}
	reg := obs.NewRegistry()
	mgr, err := storage.NewManager(cfg.Dir)
	if err != nil {
		return nil, err
	}
	mgr.Instrument(reg)
	var log *wal.Manager
	if cfg.workerLogs() {
		log, err = wal.Open(cfg.Dir, cfg.GroupDelay)
		if err != nil {
			mgr.Close()
			return nil, err
		}
		log.SetNoGroup(!cfg.GroupCommit)
		log.SetSyncDelay(cfg.SyncDelay)
		log.Instrument(reg)
	}
	locks := lockmgr.New(cfg.LockTimeout)
	locks.Instrument(reg)
	pool := buffer.New(&version.PageStore{Mgr: mgr, Log: log}, locks, cfg.PoolFrames, buffer.StealNoForce)
	pool.Instrument(reg)
	store := version.NewStore(mgr, pool, locks, log)
	s := &Site{
		Cfg:   cfg,
		plan:  plan,
		Mgr:   mgr,
		Log:   log,
		Locks: locks,
		Pool:  pool,
		Store: store,
		txns:  map[txn.ID]*wtxn{},
		conds: map[txn.ID]*sync.Cond{},
		reg:   reg,
		trace: obs.NewTracer(),
	}
	s.commits = reg.Counter("worker.commits")
	s.aborts = reg.Counter("worker.aborts")
	s.scanRows = reg.Counter("worker.scan.rows")
	s.scanFrames = reg.Counter("worker.scan.frames")
	s.scanBytes = reg.Counter("worker.scan.bytes")
	s.batchFill = reg.Histogram("worker.scan.batch_fill")
	s.aggGroups = reg.Counter("worker.agg.groups")
	s.aggRowsIn = reg.Counter("worker.agg.rows_in")
	s.aggFrames = reg.Counter("worker.agg.frames")
	s.ts.init()
	ids := mgr.IDs()
	s.seedObjectStates(!cleanPrior && len(ids) > 0, ids)
	// Replicas the catalog assigned to this site while it was down (node
	// join or rebalance targeting a dead site) have no local table at all:
	// the clean-shutdown marker says nothing about them, and without an
	// entry in the state table reads on a cleanly-restarted site would
	// default to Ready and serve an empty table. Seed them NeedsRecovery so
	// they refuse reads, fault in, and are visible to RecoverSite.
	if cfg.Catalog != nil {
		known := make(map[int32]bool, len(ids))
		for _, id := range ids {
			known[id] = true
		}
		for _, rep := range cfg.Catalog.ReplicasOn(cfg.Site) {
			if !known[rep.Table] {
				s.SetObjectState(rep.Table, ObjNeedsRecovery, 0)
				known[rep.Table] = true
			}
		}
	}
	srv, err := comm.Listen(cfg.Addr, comm.HandlerFunc(s.serveConn))
	if err != nil {
		mgr.Close()
		if log != nil {
			log.Close()
		}
		return nil, err
	}
	s.server = srv
	if cfg.CheckpointEvery > 0 {
		s.ckptStop = make(chan struct{})
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

// Addr returns the server's listen address.
func (s *Site) Addr() string { return s.server.Addr() }

// CreateTable creates a local replica of a table. The new object seeds
// Ready regardless of which incarnation creates it: a table created NOW
// cannot predate the crash, so it is trivially complete (empty). The
// recovery driver demotes the objects it actually needs to repopulate
// (missing replicas it just created included) explicitly — seeding
// NeedsRecovery here only wedged tables created mid-recovery by ordinary
// DDL, which no driver ever promoted.
func (s *Site) CreateTable(id int32, desc *tuple.Desc, segPages int32) error {
	if _, err := s.Mgr.Create(id, desc, segPages); err != nil {
		return err
	}
	s.objMu.Lock()
	var data []byte
	if _, ok := s.objs[id]; !ok {
		if s.objs == nil {
			s.objs = map[int32]objStatus{}
		}
		s.objs[id] = objStatus{segs: []segStatus{fullSeg(ObjReady, 0)}}
		data = s.renderObjStatesLocked()
	}
	s.objMu.Unlock()
	if data != nil {
		s.writeObjStates(data)
	}
	return nil
}

// Crash fail-stops the site: the server and every connection close abruptly,
// volatile state (buffer pool, lock table, transaction state) is dropped
// without flushing, and files are left exactly as they are (§3.2 fail-stop).
func (s *Site) Crash() {
	if !s.crashed.CompareAndSwap(false, true) {
		return
	}
	if s.ckptStop != nil {
		close(s.ckptStop)
	}
	s.server.Close()
	s.Pool.DiscardAll()
	s.mu.Lock()
	s.txns = map[txn.ID]*wtxn{}
	s.mu.Unlock()
	s.Mgr.Close()
	if s.Log != nil {
		s.Log.Close()
	}
	s.wg.Wait()
}

// Close shuts the site down cleanly (flushing a final checkpoint), then
// leaves the clean-shutdown marker so the next incarnation knows it is not
// rejoining from a crash.
func (s *Site) Close() error {
	if s.crashed.Load() {
		return nil
	}
	if s.Cfg.Mode == HARBOR {
		_ = s.CheckpointNow()
	}
	if err := vfs.WriteFileAtomic(filepath.Join(s.Cfg.Dir, cleanShutdownFile), []byte("clean\n"), 0o644); err != nil {
		s.Crash()
		return err
	}
	s.Crash()
	return nil
}

// Crashed reports whether the site has fail-stopped.
func (s *Site) Crashed() bool { return s.crashed.Load() }

// SetCrashedForTest overrides the crashed flag without tearing anything
// down. Production code never clears the flag (a crashed Site is replaced
// by a new incarnation), so tests that need to observe behavior across a
// crash-then-recover transition on ONE incarnation — e.g. that a background
// scrubber skips ticks while crashed and resumes after — use this instead.
func (s *Site) SetCrashedForTest(v bool) { s.crashed.Store(v) }

// FailNextPrepare arms the abort-path test hook: the next PREPARE received
// votes NO (simulating a consistency-constraint violation, §4.3).
func (s *Site) FailNextPrepare() { s.failNextPrepare.Store(true) }

// SetSimMsgDelay makes the site sleep d before dispatching each received
// request (0 disables), simulating a slow replica or laggy link.
func (s *Site) SetSimMsgDelay(d time.Duration) { s.msgDelay.Store(int64(d)) }

// Obs returns the site's metrics registry (worker.*, wal.*, buffer.*,
// lockmgr.*, storage.*).
func (s *Site) Obs() *obs.Registry { return s.reg }

// Trace returns the site's per-transaction tracer.
func (s *Site) Trace() *obs.Tracer { return s.trace }

// Counters returns (commits, aborts) processed.
func (s *Site) Counters() (int64, int64) { return s.commits.Load(), s.aborts.Load() }

// ForcedWrites returns the protocol-level forced-write count (0 if logless).
func (s *Site) ForcedWrites() int64 {
	if s.Log == nil {
		return 0
	}
	fc, _, _ := s.Log.Counters()
	return fc
}

// ResetCounters zeroes benchmark counters. The WAL, buffer pool, lock
// manager, and storage layer share the registry, so their counters reset too.
func (s *Site) ResetCounters() {
	s.reg.Reset()
}

// --- checkpointing -------------------------------------------------------

func (s *Site) checkpointLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.Cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ckptStop:
			return
		case <-t.C:
			if s.ckptPause.Load() > 0 {
				continue
			}
			_ = s.CheckpointNow()
		}
	}
}

// PauseCheckpoints disables the periodic checkpointer (HARBOR disables
// scheduled checkpoints during recovery, §5.2). Resume re-enables it.
func (s *Site) PauseCheckpoints() { s.ckptPause.Add(1) }

// ResumeCheckpoints re-enables the periodic checkpointer.
func (s *Site) ResumeCheckpoints() { s.ckptPause.Add(-1) }

// CheckpointNow runs one checkpoint. In HARBOR mode this is the Figure 3-2
// algorithm: pick a safe time T, snapshot the dirty-pages table, flush each
// page under its latch, sync, then durably record T. In ARIES mode it is a
// fuzzy log checkpoint.
func (s *Site) CheckpointNow() error {
	if s.crashed.Load() {
		return comm.ErrCrashed
	}
	if s.Cfg.Mode == ARIES {
		var active []wal.TxnStatus
		s.mu.Lock()
		for id, w := range s.txns {
			if w.state.Terminal() {
				continue
			}
			st := wal.TxnActive
			switch w.state {
			case txn.StatePreparedYes, txn.StatePreparedToCommit:
				st = wal.TxnPrepared
			}
			var lastLSN uint64
			if vt := s.Store.Get(lockmgr.TxnID(id)); vt != nil {
				lastLSN = vt.LastLSN
			}
			active = append(active, wal.TxnStatus{Txn: id, State: st, LastLSN: lastLSN})
		}
		s.mu.Unlock()
		return aries.Checkpoint(s.Cfg.Dir, s.Log, s.Pool, active)
	}
	t := s.ts.safeCheckpointTS()
	if err := s.Pool.FlushAll(); err != nil {
		return err
	}
	for _, id := range s.Mgr.IDs() {
		tb, err := s.Mgr.Get(id)
		if err != nil {
			return err
		}
		if err := tb.Heap.SyncData(); err != nil {
			return err
		}
		if err := tb.Heap.FlushMeta(); err != nil {
			return err
		}
	}
	return storage.WriteCheckpointFile(storage.CheckpointPath(s.Cfg.Dir), t)
}

// SeedAppliedTS tells the checkpointer that all commits up to ts are fully
// applied locally; HARBOR recovery calls it when a site comes back online so
// that the first post-recovery checkpoint does not regress to 0.
func (s *Site) SeedAppliedTS(ts tuple.Timestamp) { s.ts.applied(0, ts) }

// LastCheckpoint reads the site's global HARBOR checkpoint time.
func (s *Site) LastCheckpoint() (tuple.Timestamp, error) {
	return storage.ReadCheckpointFile(storage.CheckpointPath(s.Cfg.Dir))
}

// RecoverARIES runs ARIES restart recovery, resolving in-doubt transactions
// against the coordinator's recovery server.
func (s *Site) RecoverARIES() (*aries.Stats, error) {
	resolver := aries.AbortAllResolver
	if s.Cfg.Catalog != nil {
		coordAddr, ok := s.Cfg.Catalog.SiteAddr(s.Cfg.Catalog.Coordinator())
		if ok {
			resolver = func(id int64, state wal.TxnState) (aries.Outcome, error) {
				if aries.PreparedToCommit(state) {
					// Canonical 3PC: prepared-to-commit resolves to commit
					// with the carried time (found again during redo);
					// consult the coordinator which replays consensus.
					out, err := queryOutcome(coordAddr, id)
					if err == nil && out.Commit {
						return out, nil
					}
					return out, err
				}
				return queryOutcome(coordAddr, id)
			}
		}
	}
	st, err := aries.Recover(s.Mgr, s.Pool, s.Log, resolver)
	if err == nil {
		s.SetRecovered()
	}
	return st, err
}

func queryOutcome(addr string, id int64) (aries.Outcome, error) {
	c, err := comm.Dial(addr)
	if err != nil {
		return aries.Outcome{}, err
	}
	defer c.Close()
	resp, err := c.Call(&wire.Msg{Type: wire.MsgTxnOutcome, Txn: id})
	if err != nil {
		return aries.Outcome{}, err
	}
	// Flags: 1 = committed; 0 = aborted/unknown (presumed abort).
	return aries.Outcome{Commit: resp.Yes(), CommitTS: resp.TS}, nil
}

// --- transaction table ---------------------------------------------------

func (s *Site) getTxn(id txn.ID, create bool) *wtxn {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.txns[id]
	if w == nil && create {
		w = &wtxn{id: id, state: txn.StatePending}
		s.txns[id] = w
	}
	return w
}

// setState transitions a transaction and wakes consensus waiters.
func (s *Site) setState(w *wtxn, st txn.State) {
	s.mu.Lock()
	w.state = st
	if c, ok := s.conds[w.id]; ok && st.Terminal() {
		c.Broadcast()
	}
	s.mu.Unlock()
}

// awaitTerminal blocks until the transaction reaches a terminal state or
// the timeout elapses; returns the final state and whether it is terminal.
func (s *Site) awaitTerminal(id txn.ID, timeout time.Duration) (txn.State, bool) {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.txns[id]
	if w == nil {
		return txn.StateAborted, true
	}
	c, ok := s.conds[id]
	if !ok {
		c = sync.NewCond(&s.mu)
		s.conds[id] = c
	}
	for !w.state.Terminal() {
		if time.Now().After(deadline) {
			return w.state, false
		}
		// Cond has no timed wait; poll with a helper waker.
		done := make(chan struct{})
		go func() {
			select {
			case <-time.After(50 * time.Millisecond):
				s.mu.Lock()
				c.Broadcast()
				s.mu.Unlock()
			case <-done:
			}
		}()
		c.Wait()
		close(done)
	}
	return w.state, true
}

// TxnState returns a transaction's state (consensus queries).
func (s *Site) TxnState(id txn.ID) (txn.State, tuple.Timestamp, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.txns[id]
	if w == nil {
		return 0, 0, false
	}
	return w.state, w.commitTS, true
}

// forget drops a terminal transaction's bookkeeping.
func (s *Site) forget(id txn.ID) {
	s.mu.Lock()
	delete(s.txns, id)
	delete(s.conds, id)
	s.mu.Unlock()
	s.ts.resolved(id)
}

var errUnknownTxn = fmt.Errorf("worker: unknown transaction")
