package worker_test

import (
	"reflect"
	"testing"

	"harbor/internal/comm"
	"harbor/internal/exec"
	"harbor/internal/expr"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

// dialWorker opens a raw connection to a worker.
func dialWorker(t *testing.T, cl *testutil.Cluster, i int) *comm.Conn {
	t.Helper()
	addr, _ := cl.Catalog.SiteAddr(testutil.WorkerSiteID(i))
	c, err := comm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// drainScan collects a tuple stream after a scan request was sent. Batch
// frames (the default) are unpacked into one synthetic per-row message
// each, so assertions see the same shape in both framings.
func drainScan(t *testing.T, c *comm.Conn) []*wire.Msg {
	t.Helper()
	desc := testDesc()
	var out []*wire.Msg
	for {
		m, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch m.Type {
		case wire.MsgScanEnd:
			if int(m.Count) != len(out) {
				t.Fatalf("scan end count %d, received %d", m.Count, len(out))
			}
			return out
		case wire.MsgErr:
			t.Fatalf("scan error: %s", m.Text)
		case wire.MsgTuple:
			out = append(out, m)
		case wire.MsgTupleBatch:
			if m.Flags&wire.FlagYes != 0 {
				n, err := wire.CheckBatch(m, wire.KeysOnlyStride)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i++ {
					k, d := wire.KeyRow(m.Raw, i)
					out = append(out, &wire.Msg{Type: wire.MsgTuple, Key: k, TS: d})
				}
			} else {
				n, err := wire.CheckBatch(m, desc.Width())
				if err != nil {
					t.Fatal(err)
				}
				b := tuple.NewBatch(n)
				if err := b.DecodeBatch(desc, m.Raw); err != nil {
					t.Fatal(err)
				}
				for _, tp := range b.Rows() {
					out = append(out, &wire.Msg{Type: wire.MsgTuple, Tuple: wire.TupleValues(tp)})
				}
			}
		default:
			t.Fatalf("unexpected %v in stream", m.Type)
		}
	}
}

func TestWireScanModes(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 1)
	// Two commits and one delete: history to scan in every mode.
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 10)); err != nil {
		t.Fatal(err)
	}
	ts1, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	tx2 := cl.Coord.Begin()
	if err := tx2.DeleteKey(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Insert(1, mk(2, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	c := dialWorker(t, cl, 0)

	// Current scan: only key 2.
	if err := c.Send(&wire.Msg{Type: wire.MsgScan, Txn: 900, Table: 1, Vis: uint8(exec.Current)}); err != nil {
		t.Fatal(err)
	}
	rows := drainScan(t, c)
	if len(rows) != 1 || rows[0].Tuple[2].I64 != 2 {
		t.Fatalf("current scan: %v", rows)
	}
	// Historical scan as of ts1: only key 1, deletion masked.
	if err := c.Send(&wire.Msg{Type: wire.MsgScan, Txn: 900, Table: 1, Vis: uint8(exec.Historical), TS: ts1}); err != nil {
		t.Fatal(err)
	}
	rows = drainScan(t, c)
	if len(rows) != 1 || rows[0].Tuple[2].I64 != 1 {
		t.Fatalf("historical scan: %v", rows)
	}
	if rows[0].Tuple[tuple.FieldDelTS].I64 != 0 {
		t.Fatalf("historical scan leaked deletion time: %v", rows[0].Tuple)
	}
	// See-deleted: both versions.
	if err := c.Send(&wire.Msg{Type: wire.MsgScan, Txn: 900, Table: 1, Vis: uint8(exec.SeeDeleted)}); err != nil {
		t.Fatal(err)
	}
	if rows = drainScan(t, c); len(rows) != 2 {
		t.Fatalf("see-deleted scan: %d rows", len(rows))
	}
	// Predicate pushdown over the wire.
	desc := testDesc()
	pred := expr.True.And(expr.Term{Field: desc.FieldIndex("v"), Op: expr.GE, Value: tuple.VInt(15)})
	if err := c.Send(&wire.Msg{Type: wire.MsgScan, Txn: 900, Table: 1, Vis: uint8(exec.SeeDeleted), Pred: pred.Terms}); err != nil {
		t.Fatal(err)
	}
	if rows = drainScan(t, c); len(rows) != 1 || rows[0].Tuple[2].I64 != 2 {
		t.Fatalf("filtered scan: %v", rows)
	}
	// Release the read transaction.
	if _, err := c.Call(&wire.Msg{Type: wire.MsgEndRead, Txn: 900}); err != nil {
		t.Fatal(err)
	}
}

func TestWireRecoveryScanPrunesToNothing(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 1)
	for i := int64(1); i <= 20; i++ {
		tx := cl.Coord.Begin()
		if err := tx.Insert(1, mk(i, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	c := dialWorker(t, cl, 0)
	// del > 100 matches nothing and every segment prunes: the stream must
	// be empty, NOT a full-table scan (regression test for the nil-plan
	// bug where "all pruned" decayed into "scan everything").
	msg := &wire.Msg{
		Type: wire.MsgRecoveryScan, Table: 1,
		KeyLo: -1 << 62, KeyHi: 1 << 62,
		Flags: wire.FlagYes | wire.FlagHasDelGT, DelGT: 100,
	}
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	if rows := drainScan(t, c); len(rows) != 0 {
		t.Fatalf("pruned recovery scan returned %d rows", len(rows))
	}
	// The ablation flag forces the full scan but the predicate still
	// filters everything out.
	msg.Flags |= wire.FlagNoPrune
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	if rows := drainScan(t, c); len(rows) != 0 {
		t.Fatalf("unpruned recovery scan matched %d rows", len(rows))
	}
}

func TestWireRecoveryScanKeyRange(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 1)
	for i := int64(1); i <= 10; i++ {
		tx := cl.Coord.Begin()
		if err := tx.Insert(1, mk(i, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	c := dialWorker(t, cl, 0)
	// The §5.1 recovery predicate: only keys in [3, 7).
	msg := &wire.Msg{
		Type: wire.MsgRecoveryScan, Table: 1,
		KeyLo: 3, KeyHi: 7,
		Flags: wire.FlagHasInsGT, InsGT: 0,
	}
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	rows := drainScan(t, c)
	if len(rows) != 4 {
		t.Fatalf("key-range recovery scan: %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		key := r.Tuple[2].I64
		if key < 3 || key >= 7 {
			t.Fatalf("key %d outside recovery predicate", key)
		}
	}
}

// TestWireScanFramingEquivalence: for every stream shape a worker serves —
// SEE DELETED client scans, keys-only recovery projections, full-row
// recovery scans — the batched framing must carry exactly the per-row
// content and order of the legacy per-tuple framing.
func TestWireScanFramingEquivalence(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 1)
	for i := int64(1); i <= 30; i++ {
		tx := cl.Coord.Begin()
		if err := tx.Insert(1, mk(i, i*10)); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 30; i += 6 {
		tx := cl.Coord.Begin()
		if err := tx.DeleteKey(1, i); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	c := dialWorker(t, cl, 0)
	cases := []struct {
		label string
		req   wire.Msg
	}{
		{"see-deleted", wire.Msg{Type: wire.MsgScan, Txn: 901, Table: 1, Vis: uint8(exec.SeeDeleted)}},
		{"keys-only", wire.Msg{Type: wire.MsgRecoveryScan, Table: 1,
			KeyLo: -1 << 62, KeyHi: 1 << 62,
			Flags: wire.FlagYes | wire.FlagHasDelGT, DelGT: 0}},
		{"full-rows", wire.Msg{Type: wire.MsgRecoveryScan, Table: 1,
			KeyLo: -1 << 62, KeyHi: 1 << 62,
			Flags: wire.FlagHasInsGT, InsGT: 0}},
	}
	for _, tc := range cases {
		batchedReq := tc.req
		if err := c.Send(&batchedReq); err != nil {
			t.Fatal(err)
		}
		batched := drainScan(t, c)
		legacyReq := tc.req
		legacyReq.Flags |= wire.FlagTupleAtATime
		if err := c.Send(&legacyReq); err != nil {
			t.Fatal(err)
		}
		legacy := drainScan(t, c)
		if len(batched) == 0 {
			t.Fatalf("%s: empty stream; case is vacuous", tc.label)
		}
		if len(batched) != len(legacy) {
			t.Fatalf("%s: batched %d rows, tuple-at-a-time %d", tc.label, len(batched), len(legacy))
		}
		for i := range batched {
			b, l := batched[i], legacy[i]
			if b.Key != l.Key || b.TS != l.TS || !reflect.DeepEqual(b.Tuple, l.Tuple) {
				t.Fatalf("%s: row %d differs: batched {key=%d ts=%d %v}, legacy {key=%d ts=%d %v}",
					tc.label, i, b.Key, b.TS, b.Tuple, l.Key, l.TS, l.Tuple)
			}
		}
	}
	if _, err := c.Call(&wire.Msg{Type: wire.MsgEndRead, Txn: 901}); err != nil {
		t.Fatal(err)
	}
}

func TestWireTableMeta(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 1)
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c := dialWorker(t, cl, 0)
	resp, err := c.Call(&wire.Msg{Type: wire.MsgTableMeta, Table: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 || resp.Key != 1 {
		t.Fatalf("table meta: %+v", resp)
	}
	if _, err := c.Call(&wire.Msg{Type: wire.MsgTableMeta, Table: 99}); err == nil {
		t.Fatal("meta of unknown table should error")
	}
}
