package worker_test

import (
	"testing"
	"time"

	"harbor/internal/comm"
	"harbor/internal/coord"
	"harbor/internal/exec"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

func testDesc() *tuple.Desc {
	return tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "v", Type: tuple.Int32},
	)
}

func mk(id, v int64) tuple.Tuple {
	return tuple.MustMake(testDesc(), tuple.VInt(id), tuple.VInt(v))
}

func newCluster(t *testing.T, protocol txn.Protocol, mode worker.RecoveryMode, workers int) *testutil.Cluster {
	t.Helper()
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     workers,
		Protocol:    protocol,
		Mode:        mode,
		GroupCommit: true,
		LockTimeout: 500 * time.Millisecond,
		BaseDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.CreateReplicatedTable(1, testDesc(), 4); err != nil {
		t.Fatal(err)
	}
	return cl
}

func countRows(t *testing.T, w *worker.Site, vis exec.Visibility) int {
	t.Helper()
	rows, err := exec.Drain(exec.NewSeqScan(w.Store, exec.ScanSpec{Table: 1, Vis: vis}))
	if err != nil {
		t.Fatal(err)
	}
	return len(rows)
}

// driveTxn runs a raw commit protocol against workers over direct
// connections, playing coordinator manually so the test can kill the
// "coordinator" at precise points.
type rawTxn struct {
	id    int64
	conns []*comm.Conn
	sites []int32
}

func beginRaw(t *testing.T, cl *testutil.Cluster, id int64, workers ...int) *rawTxn {
	t.Helper()
	rt := &rawTxn{id: id}
	for _, i := range workers {
		rt.sites = append(rt.sites, int32(testutil.WorkerSiteID(i)))
	}
	for _, i := range workers {
		addr, _ := cl.Catalog.SiteAddr(testutil.WorkerSiteID(i))
		c, err := comm.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Call(&wire.Msg{Type: wire.MsgBegin, Txn: id}); err != nil {
			t.Fatal(err)
		}
		rt.conns = append(rt.conns, c)
	}
	return rt
}

func (rt *rawTxn) insert(t *testing.T, key int64) {
	t.Helper()
	for _, c := range rt.conns {
		resp, err := c.Call(&wire.Msg{Type: wire.MsgInsert, Txn: rt.id, Table: 1,
			Tuple: wire.TupleValues(mk(key, 0))})
		if err != nil || resp.Type != wire.MsgOK {
			t.Fatalf("raw insert: %v %v", resp, err)
		}
	}
}

func (rt *rawTxn) prepare(t *testing.T) {
	t.Helper()
	for _, c := range rt.conns {
		resp, err := c.Call(&wire.Msg{Type: wire.MsgPrepare, Txn: rt.id, Sites: rt.sites})
		if err != nil || resp.Type != wire.MsgVote || !resp.Yes() {
			t.Fatalf("raw prepare: %v %v", resp, err)
		}
	}
}

func (rt *rawTxn) prepareToCommit(t *testing.T, ts int64) {
	t.Helper()
	for _, c := range rt.conns {
		resp, err := c.Call(&wire.Msg{Type: wire.MsgPrepareToCommit, Txn: rt.id, TS: ts})
		if err != nil || resp.Type != wire.MsgOK {
			t.Fatalf("raw PTC: %v %v", resp, err)
		}
	}
}

// dropConns simulates coordinator failure: abruptly close the transaction's
// connections.
func (rt *rawTxn) dropConns() {
	for _, c := range rt.conns {
		c.Close()
	}
}

// awaitCount polls a worker until the current-visibility row count matches.
func awaitCount(t *testing.T, w *worker.Site, want int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if got := countRows(t, w, exec.Current); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never reached %d rows (has %d)", want, countRows(t, w, exec.Current))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConsensusCommitsFromPreparedToCommit exercises Table 4.1 row 5: the
// coordinator dies after PREPARE-TO-COMMIT; the backup coordinator (lowest
// participant) replays the last two phases and commits with the original
// commit time.
func TestConsensusCommitsFromPreparedToCommit(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 3)
	rt := beginRaw(t, cl, 42001, 0, 1, 2)
	rt.insert(t, 1)
	rt.prepare(t)
	rt.prepareToCommit(t, 777)
	rt.dropConns() // coordinator "fails" after the commit point

	for i, w := range cl.Workers {
		awaitCount(t, w, 1, 5*time.Second)
		rows, err := exec.Drain(exec.NewSeqScan(w.Store, exec.ScanSpec{Table: 1, Vis: exec.Current}))
		if err != nil {
			t.Fatal(err)
		}
		if rows[0].InsTS() != 777 {
			t.Fatalf("worker %d committed with ts %d, want the original 777", i, rows[0].InsTS())
		}
	}
}

// TestConsensusAbortsFromPrepared exercises Table 4.1 row 3: coordinator
// dies after PREPARE but before PREPARE-TO-COMMIT; no site can have
// committed, so the backup aborts everywhere.
func TestConsensusAbortsFromPrepared(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 3)
	rt := beginRaw(t, cl, 42002, 0, 1, 2)
	rt.insert(t, 1)
	rt.prepare(t)
	rt.dropConns()

	deadline := time.Now().Add(5 * time.Second)
	for i, w := range cl.Workers {
		for {
			if countRows(t, w, exec.SeeDeleted) == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d did not roll back via consensus", i)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// TestConsensusAbortsPendingTxn: coordinator dies before PREPARE; workers
// abort unilaterally (Table 4.1 row 1 / §4.3.2).
func TestConsensusAbortsPendingTxn(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	rt := beginRaw(t, cl, 42003, 0, 1)
	rt.insert(t, 1)
	rt.dropConns()
	deadline := time.Now().Add(3 * time.Second)
	for i, w := range cl.Workers {
		for {
			if countRows(t, w, exec.SeeDeleted) == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d did not abort the pending txn", i)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// TestConsensusBackupDeadPromotesNext: the lowest-ranked participant is
// crashed when the coordinator dies in the PTC state; the next rank must
// take over and still commit.
func TestConsensusBackupDeadPromotesNext(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 3)
	rt := beginRaw(t, cl, 42004, 0, 1, 2)
	rt.insert(t, 1)
	rt.prepare(t)
	rt.prepareToCommit(t, 888)
	// Kill the designated backup (worker 0 = lowest site id) and the
	// coordinator connections at once.
	cl.Workers[0].Crash()
	rt.dropConns()
	for _, i := range []int{1, 2} {
		awaitCount(t, cl.Workers[i], 1, 8*time.Second)
	}
}

// Test2PCBlockedWorkerWaitsForCoordinatorOutcome: traditional 2PC prepared
// worker blocks on coordinator failure, then polls the outcome service.
func Test2PCWorkerResolvesViaOutcomeService(t *testing.T) {
	cl := newCluster(t, txn.OptTwoPC, worker.HARBOR, 2)
	// Run a real transaction but simulate losing the worker connections
	// right after prepare by driving the protocol manually.
	rt := beginRaw(t, cl, 42005, 0, 1)
	rt.insert(t, 7)
	rt.prepare(t)
	// Record a committed outcome at the coordinator for this txn id, as if
	// the coordinator had reached its commit point before dying.
	cl.Coord.RecordOutcomeForTest(42005, true, 999)
	rt.dropConns()
	for i := range cl.Workers {
		awaitCount(t, cl.Workers[i], 1, 5*time.Second)
		rows, _ := exec.Drain(exec.NewSeqScan(cl.Workers[i].Store, exec.ScanSpec{Table: 1, Vis: exec.Current}))
		if rows[0].InsTS() != 999 {
			t.Fatalf("worker %d ts = %d", i, rows[0].InsTS())
		}
	}
}

func TestWorkerVotesNoForUnknownTxnAfterRestart(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	rt := beginRaw(t, cl, 42006, 0)
	rt.insert(t, 1)
	// Crash and restart worker 0; then send PREPARE for the now-unknown txn.
	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := cl.Catalog.SiteAddr(testutil.WorkerSiteID(0))
	c, err := comm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&wire.Msg{Type: wire.MsgPrepare, Txn: 42006})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.MsgVote || resp.Yes() {
		t.Fatalf("restarted worker should vote NO for unknown txn: %+v", resp)
	}
	_ = w
}

func TestHARBORCheckpointAdvances(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 0)); err != nil {
		t.Fatal(err)
	}
	ts, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	w := cl.Workers[0]
	if err := w.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	got, err := w.LastCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got != ts {
		t.Fatalf("checkpoint T = %d, want %d", got, ts)
	}
	// After the checkpoint the data is durable: crash + reopen sees it on
	// disk without any recovery.
	w.Crash()
	w2, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	if n := countRows(t, w2, exec.Current); n != 1 {
		t.Fatalf("checkpointed tuple lost: %d rows", n)
	}
}

func TestARIESWorkerRecoversThroughCoordinatorOutcomes(t *testing.T) {
	cl := newCluster(t, txn.TwoPC, worker.ARIES, 2)
	// Commit two transactions, then crash worker 0 before any checkpoint.
	for i := int64(1); i <= 2; i++ {
		tx := cl.Coord.Begin()
		if err := tx.Insert(1, mk(i, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	cl.Workers[0].Crash()
	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w.RecoverARIES()
	if err != nil {
		t.Fatal(err)
	}
	if stats.RedoApplied == 0 {
		t.Fatal("ARIES redo did nothing")
	}
	if n := countRows(t, w, exec.Current); n != 2 {
		t.Fatalf("rows after ARIES restart = %d", n)
	}
}

func TestCrashIsFailStop(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	w := cl.Workers[0]
	addr := w.Addr()
	w.Crash()
	if !w.Crashed() {
		t.Fatal("Crashed() false after crash")
	}
	if comm.Ping(addr, 200*time.Millisecond) {
		t.Fatal("crashed worker still answers")
	}
	// Crash is idempotent.
	w.Crash()
	// Cluster still serves reads from the survivor.
	if _, err := cl.Coord.Scan(1, coord.QueryOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestSimWorkBurnsCPU(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 0)); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := tx.SimWork(1, 3_000_000); err != nil {
		t.Fatal(err)
	}
	if time.Since(t0) <= 0 {
		t.Fatal("impossible")
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// modeFor pairs each protocol with its natural recovery mode: plans with
// worker force points keep a WAL and recover with ARIES; logless plans
// recover from replicas (HARBOR).
func modeFor(p txn.Protocol) worker.RecoveryMode {
	if p.Plan().WorkerForces() {
		return worker.ARIES
	}
	return worker.HARBOR
}

// TestCostParity is the enforced Table 4.2 invariant: for every registered
// protocol, one committed single-insert transaction with two workers must
// measure exactly the messages/worker and coordinator/worker forced writes
// that the protocol's phase plan derives in ExpectedCost(). Because the
// executor, the worker handlers, and ExpectedCost() all consume the same
// plan rounds, a drift in any of them fails here.
func TestCostParity(t *testing.T) {
	for _, protocol := range txn.Protocols() {
		t.Run(protocol.String(), func(t *testing.T) {
			cl := newCluster(t, protocol, modeFor(protocol), 2)
			cl.Coord.ResetCounters()
			for _, w := range cl.Workers {
				w.ResetCounters()
			}
			tx := cl.Coord.Begin()
			if err := tx.Insert(1, mk(1, 0)); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			want := protocol.ExpectedCost()
			// The counts come from the obs metrics registry — the same
			// snapshot /debug/harbor and harbor-bench serve — so parity here
			// also pins the observability layer's accounting. A logless
			// coordinator/worker has no WAL instrumented and no
			// wal.force_calls key; the zero value is the right reading.
			coordSnap := cl.Coord.Obs().Snapshot()
			if got := coordSnap.Counters["wal.force_calls"]; got != int64(want.CoordForcedWrites) {
				t.Errorf("coordinator forced-writes = %d, want %d", got, want.CoordForcedWrites)
			}
			for i, w := range cl.Workers {
				if got := w.Obs().Snapshot().Counters["wal.force_calls"]; got != int64(want.WorkerForcedWrites) {
					t.Errorf("worker %d forced-writes = %d, want %d", i, got, want.WorkerForcedWrites)
				}
			}
			msgs := coordSnap.Counters["coord.msgs_sent"]
			if commits := coordSnap.Counters["coord.commits"]; commits != 1 {
				t.Fatalf("commits = %d", commits)
			}
			// The thesis's "messages per worker" (Table 4.2) counts both
			// directions of each round: 4 for 2PC (prepare, vote, commit,
			// ack) and 6 for 3PC. Our counter sees coordinator→worker
			// requests only — exactly half — plus the one BEGIN and one
			// INSERT per worker for this workload.
			perWorkerProtocol := (int(msgs) - 2 /*BEGINs*/ - 2 /*INSERTs*/) / 2
			if perWorkerProtocol != want.MessagesPerWorker/2 {
				t.Errorf("per-worker protocol requests = %d, want %d (total msgs %d)",
					perWorkerProtocol, want.MessagesPerWorker/2, msgs)
			}
		})
	}
}

func TestBackgroundCheckpointerRuns(t *testing.T) {
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:         1,
		Protocol:        txn.OptThreePC,
		Mode:            worker.HARBOR,
		CheckpointEvery: 30 * time.Millisecond,
		BaseDir:         t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.CreateReplicatedTable(1, testDesc(), 4); err != nil {
		t.Fatal(err)
	}
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 0)); err != nil {
		t.Fatal(err)
	}
	ts, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		got, err := cl.Workers[0].LastCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		if got >= ts {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpointer never reached %d (at %d)", ts, got)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// PauseCheckpoints stops advancement.
	cl.Workers[0].PauseCheckpoints()
	tx2 := cl.Coord.Begin()
	if err := tx2.Insert(1, mk(2, 0)); err != nil {
		t.Fatal(err)
	}
	ts2, err := tx2.Commit()
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	got, _ := cl.Workers[0].LastCheckpoint()
	if got >= ts2 {
		t.Fatal("checkpointer advanced while paused")
	}
	cl.Workers[0].ResumeCheckpoints()
}

// TestARIESInDoubtResolvedThroughRealCoordinator stages the full
// distributed in-doubt flow: a worker prepares under traditional 2PC
// (forced PREPARE record), crashes before receiving COMMIT, and on restart
// ARIES finds the in-doubt transaction and resolves it by querying the
// coordinator's outcome service over TCP — completing the commit with the
// coordinator's timestamp, including the §6.1.7 stamping.
func TestARIESInDoubtResolvedThroughRealCoordinator(t *testing.T) {
	cl := newCluster(t, txn.TwoPC, worker.ARIES, 2)
	rt := beginRaw(t, cl, 52001, 0)
	rt.insert(t, 77)
	rt.prepare(t) // forced to the worker's log
	// The coordinator reached its commit point (forced COMMIT record) but
	// the COMMIT message never arrived: record the outcome, crash the
	// worker.
	cl.Coord.RecordOutcomeForTest(52001, true, 4242)
	cl.Workers[0].Crash()
	rt.dropConns()

	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w.RecoverARIES()
	if err != nil {
		t.Fatal(err)
	}
	if stats.InDoubt != 1 || stats.Committed != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	rows, err := exec.Drain(exec.NewSeqScan(w.Store, exec.ScanSpec{Table: 1, Vis: exec.Current}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].InsTS() != 4242 {
		t.Fatalf("in-doubt commit not completed: %v", rows)
	}
}

// TestARIESInDoubtPresumedAbortThroughRealCoordinator: same setup but the
// coordinator has no information → presumed abort.
func TestARIESInDoubtPresumedAbortThroughRealCoordinator(t *testing.T) {
	cl := newCluster(t, txn.TwoPC, worker.ARIES, 2)
	rt := beginRaw(t, cl, 52002, 0)
	rt.insert(t, 88)
	rt.prepare(t)
	cl.Workers[0].Crash()
	rt.dropConns()

	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := w.RecoverARIES()
	if err != nil {
		t.Fatal(err)
	}
	if stats.InDoubt != 1 || stats.Losers != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if n := countRows(t, w, exec.SeeDeleted); n != 0 {
		t.Fatalf("presumed-abort txn left %d tuples", n)
	}
}
