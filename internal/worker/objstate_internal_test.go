package worker

// White-box tests for the persisted recovery_state parser: the file is an
// advisory hint, so damage must degrade it (skipped lines, or the whole
// file falling back to the demote-all default) — never crash or invent
// state the site would then serve reads with.

import (
	"os"
	"path/filepath"
	"testing"

	"harbor/internal/expr"
	"harbor/internal/tuple"
)

func writeStateFile(t *testing.T, dir, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, objStateFile), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReadObjStateFileTolerance(t *testing.T) {
	full := expr.FullKeyRange()
	cases := []struct {
		name    string
		content string
		want    map[int32][]segStatus
	}{
		{
			name:    "segment lines parse and sort by range lo",
			content: "1 500 " + "9223372036854775807" + " 5 42\n1 -9223372036854775808 500 3 7\n",
			want: map[int32][]segStatus{1: {
				{rng: expr.KeyRange{Lo: full.Lo, Hi: 500}, state: ObjHistoricalCopy, copiedThrough: 7},
				{rng: expr.KeyRange{Lo: 500, Hi: full.Hi}, state: ObjReady, copiedThrough: 42},
			}},
		},
		{
			name:    "legacy whole-object line becomes one full-range segment",
			content: "3 4 99\n",
			want: map[int32][]segStatus{3: {
				{rng: full, state: ObjCatchup, copiedThrough: 99},
			}},
		},
		{
			name:    "truncated and over-long lines skipped",
			content: "1 5\n1 0 100 5\n1 0 100 5 7 9 11\n2 5 10\n",
			want: map[int32][]segStatus{2: {
				{rng: full, state: ObjReady, copiedThrough: 10},
			}},
		},
		{
			name:    "non-numeric fields skipped",
			content: "one 5 10\n1 five 10\n1 0 100 cinq 10\n1 0 100 5 dix\n1 2 3\n",
			want: map[int32][]segStatus{1: {
				{rng: full, state: ObjScrubbing, copiedThrough: 3},
			}},
		},
		{
			name:    "unknown state codes skipped",
			content: "1 0 0\n1 6 0\n1 99 0\n1 0 100 0 0\n1 0 100 6 0\n1 5 0\n",
			want: map[int32][]segStatus{1: {
				{rng: full, state: ObjReady, copiedThrough: 0},
			}},
		},
		{
			name:    "empty or inverted segment ranges skipped",
			content: "1 100 100 5 0\n1 200 100 5 0\n1 100 200 5 8\n",
			want: map[int32][]segStatus{1: {
				{rng: expr.KeyRange{Lo: 100, Hi: 200}, state: ObjReady, copiedThrough: 8},
			}},
		},
		{
			name:    "garbage file degrades to the empty map (demote-all default)",
			content: "\x00\x01\x02 total garbage\nnot even close\n",
			want:    map[int32][]segStatus{},
		},
		{
			name:    "empty file is the empty map",
			content: "",
			want:    map[int32][]segStatus{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeStateFile(t, dir, tc.content)
			s := &Site{Cfg: Config{Dir: dir}}
			got := s.readObjStateFile()
			if len(got) != len(tc.want) {
				t.Fatalf("parsed %d tables, want %d: %+v", len(got), len(tc.want), got)
			}
			for id, want := range tc.want {
				segs := got[id].segs
				if len(segs) != len(want) {
					t.Fatalf("table %d: parsed %d segments, want %d: %+v", id, len(segs), len(want), segs)
				}
				for i := range want {
					if segs[i] != want[i] {
						t.Fatalf("table %d segment %d = %+v, want %+v", id, i, segs[i], want[i])
					}
				}
			}
		})
	}
}

// TestReadObjStateFileAbsent pins the no-file case: empty map, no error.
func TestReadObjStateFileAbsent(t *testing.T) {
	s := &Site{Cfg: Config{Dir: t.TempDir()}}
	if got := s.readObjStateFile(); len(got) != 0 {
		t.Fatalf("absent file parsed as %+v, want empty", got)
	}
}

// TestObjStateSegmentRoundtrip pins the persisted format end to end:
// SetObjectSegments writes segment lines that read back identically, and a
// dirty reseed keeps the boundaries and horizons while demoting the states.
func TestObjStateSegmentRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := &Site{Cfg: Config{Dir: dir}}
	s.SetObjectSegments(7, []int64{100, 200}, ObjHistoricalCopy, 55)

	r := &Site{Cfg: Config{Dir: dir}}
	got := r.readObjStateFile()
	segs := got[7].segs
	full := expr.FullKeyRange()
	want := []segStatus{
		{rng: expr.KeyRange{Lo: full.Lo, Hi: 100}, state: ObjHistoricalCopy, copiedThrough: 55},
		{rng: expr.KeyRange{Lo: 100, Hi: 200}, state: ObjHistoricalCopy, copiedThrough: 55},
		{rng: expr.KeyRange{Lo: 200, Hi: full.Hi}, state: ObjHistoricalCopy, copiedThrough: 55},
	}
	if len(segs) != len(want) {
		t.Fatalf("round-tripped %d segments, want %d: %+v", len(segs), len(want), segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}

	// Dirty reseed: boundaries and copiedThrough hints survive, states drop
	// to NeedsRecovery.
	r.seedObjectStates(true, []int32{7})
	for i, seg := range r.ObjectSegments(7) {
		if seg.State != ObjNeedsRecovery {
			t.Fatalf("dirty reseed segment %d state = %v, want NeedsRecovery", i, seg.State)
		}
		if seg.Range != want[i].rng || seg.CopiedThrough != tuple.Timestamp(55) {
			t.Fatalf("dirty reseed segment %d = %+v, want range %v ct 55", i, seg, want[i].rng)
		}
	}
}
