package worker_test

import (
	"testing"

	"harbor/internal/comm"
	"harbor/internal/exec"
	"harbor/internal/txn"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

// drainAgg collects the partial group-state rows of a pushed-down aggregate
// stream, returning one []int64 per group row and the frame count.
func drainAgg(t *testing.T, c *comm.Conn, ncols int) ([][]int64, int) {
	t.Helper()
	var out [][]int64
	frames := 0
	for {
		m, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch m.Type {
		case wire.MsgScanEnd:
			if int(m.Count) != len(out) {
				t.Fatalf("agg end count %d, received %d", m.Count, len(out))
			}
			return out, frames
		case wire.MsgErr:
			t.Fatalf("agg scan error: %s", m.Text)
		case wire.MsgAggBatch:
			n, err := wire.CheckBatch(m, wire.AggStride(ncols))
			if err != nil {
				t.Fatal(err)
			}
			frames++
			for i := 0; i < n; i++ {
				out = append(out, wire.AggRow(m.Raw, i, ncols, nil))
			}
		default:
			t.Fatalf("unexpected %v in agg stream", m.Type)
		}
	}
}

// TestWireAggScan pushes a grouped count+sum down to one worker and checks
// the partial states against a hand computation; enough groups are used
// that the stream must span multiple MsgAggBatch frames.
func TestWireAggScan(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 1)
	desc := testDesc()
	const n = 600 // group by id → 600 groups → >2 frames at 256 rows/frame
	tx := cl.Coord.Begin()
	for i := int64(0); i < n; i++ {
		if err := tx.Insert(1, mk(i, i%5)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c := dialWorker(t, cl, 0)

	// Group by id: one state per row, multiple frames, ascending key order.
	idf, vf := desc.FieldIndex("id"), desc.FieldIndex("v")
	msg := &wire.Msg{
		Type: wire.MsgScan, Txn: 900, Table: 1, Vis: uint8(exec.Current),
		AggGroup: int32(idf),
		Aggs: []wire.AggCol{
			{Fn: uint8(exec.Count), Field: int32(idf)},
			{Fn: uint8(exec.Sum), Field: int32(vf)},
		},
	}
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	rows, frames := drainAgg(t, c, 3)
	if len(rows) != n || frames < 2 {
		t.Fatalf("got %d groups in %d frames, want %d in >=2", len(rows), frames, n)
	}
	for i, r := range rows {
		id := int64(i)
		if r[0] != id || r[1] != 1 || r[2] != id%5 {
			t.Fatalf("group %d state = %v", i, r)
		}
	}

	// Global aggregate: one state row, no group column.
	msg = &wire.Msg{
		Type: wire.MsgScan, Txn: 900, Table: 1, Vis: uint8(exec.Current),
		AggGroup: -1,
		Aggs: []wire.AggCol{
			{Fn: uint8(exec.Count), Field: int32(idf)},
			{Fn: uint8(exec.Max), Field: int32(idf)},
		},
	}
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	rows, _ = drainAgg(t, c, 2)
	if len(rows) != 1 || rows[0][0] != n || rows[0][1] != n-1 {
		t.Fatalf("global state = %v", rows)
	}

	// An out-of-range agg field must error, not crash the stream.
	msg = &wire.Msg{
		Type: wire.MsgScan, Txn: 900, Table: 1, Vis: uint8(exec.Current),
		AggGroup: -1,
		Aggs:     []wire.AggCol{{Fn: uint8(exec.Sum), Field: 99}},
	}
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	if m, err := c.Recv(); err != nil || m.Type != wire.MsgErr {
		t.Fatalf("bad agg spec: got %v, %v", m, err)
	}

	if _, err := c.Call(&wire.Msg{Type: wire.MsgEndRead, Txn: 900}); err != nil {
		t.Fatal(err)
	}
}
