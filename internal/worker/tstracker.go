package worker

import (
	"sync"

	"harbor/internal/tuple"
	"harbor/internal/txn"
)

// tsTracker computes the safe HARBOR checkpoint time T (Figure 3-2's
// "current time - 1") from the worker's local view.
//
// The guarantee a checkpoint must provide is that every update committed at
// or before T has been applied to the buffer pool before the dirty-pages
// snapshot is taken (so flushing the snapshot makes them durable). Commit
// times are issued by the coordinator's monotone timestamp authority at the
// commit point, so:
//
//   - appliedTS — the largest commit time fully stamped locally — is safe
//     on its own only if nothing earlier is still in flight;
//   - a transaction whose commit time is known but whose stamping is in
//     progress (or whose COMMIT message may still be in flight) bounds T by
//     ts-1;
//   - a transaction that has prepared but whose commit time is not yet
//     known bounds T by the appliedTS recorded when it prepared: its
//     eventual commit time is issued after its prepare, hence strictly
//     greater than every commit time issued before the prepare.
type tsTracker struct {
	mu        sync.Mutex
	appliedTS tuple.Timestamp
	// barriers: prepared transactions → appliedTS at prepare time.
	barriers map[txn.ID]tuple.Timestamp
	// known: transactions whose commit time is known but not fully applied.
	known map[txn.ID]tuple.Timestamp
}

func (t *tsTracker) init() {
	t.barriers = map[txn.ID]tuple.Timestamp{}
	t.known = map[txn.ID]tuple.Timestamp{}
}

// prepared records a barrier when a transaction votes YES.
func (t *tsTracker) prepared(id txn.ID) {
	t.mu.Lock()
	t.barriers[id] = t.appliedTS
	t.mu.Unlock()
}

// commitTSKnown upgrades a barrier to a concrete bound once the commit time
// arrives (PREPARE-TO-COMMIT or COMMIT message).
func (t *tsTracker) commitTSKnown(id txn.ID, ts tuple.Timestamp) {
	t.mu.Lock()
	delete(t.barriers, id)
	t.known[id] = ts
	t.mu.Unlock()
}

// applied marks a transaction's stamping complete.
func (t *tsTracker) applied(id txn.ID, ts tuple.Timestamp) {
	t.mu.Lock()
	delete(t.known, id)
	delete(t.barriers, id)
	if ts > t.appliedTS {
		t.appliedTS = ts
	}
	t.mu.Unlock()
}

// resolved clears a transaction that aborted or was forgotten.
func (t *tsTracker) resolved(id txn.ID) {
	t.mu.Lock()
	delete(t.known, id)
	delete(t.barriers, id)
	t.mu.Unlock()
}

// safeCheckpointTS returns the largest T such that all commits ≤ T are
// fully applied locally.
func (t *tsTracker) safeCheckpointTS() tuple.Timestamp {
	t.mu.Lock()
	defer t.mu.Unlock()
	safe := t.appliedTS
	for _, b := range t.barriers {
		if b < safe {
			safe = b
		}
	}
	for _, ts := range t.known {
		if ts-1 < safe {
			safe = ts - 1
		}
	}
	return safe
}
