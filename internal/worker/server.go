package worker

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"harbor/internal/comm"
	"harbor/internal/exec"
	"harbor/internal/expr"
	"harbor/internal/lockmgr"
	"harbor/internal/obs"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/wire"
)

// serveConn is the per-connection request loop (§6.1.6: each connection
// manages a single transaction at a time but is recycled across
// transactions). When the connection drops with transactions of its own
// still in flight, the §4.3 / §5.5 failure logic runs for each.
func (s *Site) serveConn(c *comm.Conn) {
	owned := map[txn.ID]bool{}
	defer func() {
		for id := range owned {
			s.handleOrphan(id)
		}
	}()
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		if s.crashed.Load() {
			return
		}
		if d := s.msgDelay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		resp := s.dispatch(c, m, owned)
		if resp == nil {
			continue // streaming responses already sent
		}
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

func okMsg() *wire.Msg { return &wire.Msg{Type: wire.MsgOK} }
func errMsg(err error) *wire.Msg {
	return &wire.Msg{Type: wire.MsgErr, Text: err.Error()}
}

// dataErr is errMsg for the tuple data path: it additionally routes the
// error past the torn-page watchdog, which kicks off a background
// repair-from-buddy the first time a read trips ErrPageCorrupt — and marks
// the outgoing MsgErr (FlagYes) so the peer sees a typed
// wire.ErrRemoteCorrupt: a retryable condition (this site is already
// repairing itself), not a fatal answer.
func (s *Site) dataErr(err error) *wire.Msg {
	s.noteCorrupt(err)
	m := errMsg(err)
	if errors.Is(err, storage.ErrPageCorrupt) {
		m.Flags |= wire.FlagYes
	}
	return m
}

// staleMsg is the typed refusal for a scan whose declared range was purged
// here after a segment move: MsgErr with FlagKnown, which the peer decodes
// as wire.ErrPlacementStale and replans against the current catalog.
func (s *Site) staleMsg(table int32, rng expr.KeyRange) *wire.Msg {
	return &wire.Msg{Type: wire.MsgErr, Flags: wire.FlagKnown,
		Text: fmt.Sprintf("site %d no longer holds [%d,%d) of table %d (segment moved)",
			s.Cfg.Site, rng.Lo, rng.Hi, table)}
}

// noteTableRead bumps the per-table read-hotness counter. The recovery
// driver reads these to order its per-object queue: objects queries
// actually touch recover first.
func (s *Site) noteTableRead(table int32) {
	s.reg.Counter(obs.Name("worker.table.reads", "table", strconv.Itoa(int(table)))).Add(1)
}

// scanRange extracts the key range a scan request declares it will touch
// (KeyLo/KeyHi on the message). An unset range — both zero, which as a real
// range would be empty — means the caller predates range-aware routing or
// genuinely scans everything: the full range, the conservative reading.
func scanRange(m *wire.Msg) expr.KeyRange {
	if m.KeyLo == 0 && m.KeyHi == 0 {
		return expr.FullKeyRange()
	}
	return expr.KeyRange{Lo: m.KeyLo, Hi: m.KeyHi}
}

// objectReadable decides whether a scan may be served given the recovery
// states of the segments its key range intersects — segments the scan never
// touches cannot affect its result and are ignored, which is the whole
// point of segment-granular states: a recovered hot range serves while the
// rest of its table still copies.
//
// Per intersecting segment: Ready always serves. A recovering segment can
// serve a historical read asOf A once its copy horizon covers A: after the
// Phase 1 rewind the object IS the snapshot at its checkpoint, and every
// tuple Phase 2/3 adds carries an insertion (or deletion) time above the
// durably-copied horizon — invisible at A — so contents at or below
// copiedThrough are byte-identical to a healthy replica's. A segment in
// Catchup whose locked copy has drained (copiedThrough advanced to the
// drain horizon) additionally serves *current* reads whose coordinator-
// assigned start timestamp is ≤ that horizon: the buddy table locks freeze
// commits for the rest of Phase 3, so the drained contents equal a healthy
// replica's at any such timestamp. Anything else is refused; any
// not-yet-Ready intersecting segment (served or not) fires the fault-in
// hook with the scan's range so the recovery driver pulls that segment
// forward.
func (s *Site) objectReadable(table int32, vis exec.Visibility, asOf tuple.Timestamp, rng expr.KeyRange) error {
	var refused *SegmentStatus
	recovering := false
	segs := s.ObjectSegments(table)
	for i := range segs {
		seg := &segs[i]
		if seg.Range.Intersect(rng).Empty() {
			continue
		}
		if seg.State == ObjReady {
			continue
		}
		recovering = true
		covered := asOf > 0 && asOf <= seg.CopiedThrough
		servable := covered &&
			((vis == exec.Historical && (seg.State == ObjHistoricalCopy || seg.State == ObjCatchup)) ||
				(vis == exec.Current && seg.State == ObjCatchup))
		if !servable && refused == nil {
			refused = seg
		}
	}
	if recovering {
		s.requestFaultIn(table, rng)
	}
	if refused != nil {
		return fmt.Errorf("worker: site %d object %d segment [%d,%d) is recovering (state %v, copied through %d); cannot serve read asOf %d",
			s.Cfg.Site, table, refused.Range.Lo, refused.Range.Hi, refused.State, refused.CopiedThrough, asOf)
	}
	return nil
}

// phaseHandlers is the worker half of the commit-protocol engine: the
// per-phase handlers keyed by wire message kind. Which of these a worker
// ever receives is decided entirely by the coordinator's phase plan; the
// handlers themselves take their force decisions from the same plan
// (Site.plan), so no protocol conditionals appear on this path. A new
// protocol that introduces a new wire message adds exactly one entry here.
var phaseHandlers = map[wire.Type]func(*Site, *wire.Msg, map[txn.ID]bool) *wire.Msg{
	wire.MsgPrepare:         (*Site).handlePrepare,
	wire.MsgPrepareToCommit: (*Site).handlePrepareToCommit,
	wire.MsgCommit:          (*Site).handleCommit,
	wire.MsgCommitFast:      (*Site).handleCommitFast,
	wire.MsgAbort:           (*Site).handleAbort,
}

// dispatch handles one request, returning the response (nil if already
// streamed).
func (s *Site) dispatch(c *comm.Conn, m *wire.Msg, owned map[txn.ID]bool) *wire.Msg {
	if h, ok := phaseHandlers[m.Type]; ok {
		return h(s, m, owned)
	}
	switch m.Type {
	case wire.MsgPing:
		// FlagYes advertises whole-site readiness as a recovery source:
		// every object Ready. The Objs list carries the finer per-object
		// states so peers (coordinator routing, buddy probes) can use a
		// Ready object on a site whose other objects still recover.
		out := okMsg()
		if !s.NeedsRecovery() {
			out.Flags |= wire.FlagYes
		}
		out.Objs = s.ObjectStates()
		return out

	case wire.MsgCrash:
		go s.Crash()
		return okMsg()

	case wire.MsgCheckpointNow:
		if err := s.CheckpointNow(); err != nil {
			return errMsg(err)
		}
		return okMsg()

	case wire.MsgCreateTable:
		if m.Desc == nil {
			return errMsg(fmt.Errorf("worker: create table without schema"))
		}
		if err := s.CreateTable(m.Table, m.Desc, m.SegPages); err != nil {
			return errMsg(err)
		}
		return okMsg()

	case wire.MsgBegin:
		s.getTxn(m.Txn, true)
		owned[m.Txn] = true
		s.trace.Record(int64(m.Txn), obs.EvBegin, "")
		return okMsg()

	case wire.MsgInsert:
		w := s.getTxn(m.Txn, true)
		owned[m.Txn] = true
		w.didWrite = true
		tp := wire.ToTuple(m.Tuple)
		if tb, err := s.Mgr.Get(m.Table); err == nil {
			if err := s.objectWritable(m.Table, tp.Key(tb.Heap.Desc())); err != nil {
				return errMsg(err)
			}
		}
		if _, err := s.Store.InsertTuple(lockmgr.TxnID(m.Txn), m.Table, tp); err != nil {
			return s.dataErr(err)
		}
		return okMsg()

	case wire.MsgDeleteKey:
		w := s.getTxn(m.Txn, true)
		owned[m.Txn] = true
		w.didWrite = true
		if err := s.objectWritable(m.Table, m.Key); err != nil {
			return errMsg(err)
		}
		found, err := exec.DeleteByKey(s.Store, lockmgr.TxnID(m.Txn), m.Table, m.Key)
		if err != nil {
			return s.dataErr(err)
		}
		out := okMsg()
		if found {
			out.Count = 1
		}
		return out

	case wire.MsgUpdateKey:
		w := s.getTxn(m.Txn, true)
		owned[m.Txn] = true
		w.didWrite = true
		if err := s.objectWritable(m.Table, m.Key); err != nil {
			return errMsg(err)
		}
		repl := wire.ToTuple(m.Tuple)
		found, err := exec.UpdateByKey(s.Store, lockmgr.TxnID(m.Txn), m.Table, m.Key,
			func(old tuple.Tuple) tuple.Tuple {
				out := old.Clone()
				copy(out.Values[tuple.FieldFirstUser:], repl.Values[tuple.FieldFirstUser:])
				return out
			})
		if err != nil {
			return s.dataErr(err)
		}
		out := okMsg()
		if found {
			out.Count = 1
		}
		return out

	case wire.MsgSimWork:
		s.getTxn(m.Txn, true)
		owned[m.Txn] = true
		simulateWork(m.Cycles)
		return okMsg()

	case wire.MsgScan:
		s.noteTableRead(m.Table)
		if rng := scanRange(m); s.rangePurged(m.Table, rng) {
			return s.staleMsg(m.Table, rng)
		}
		if err := s.objectReadable(m.Table, exec.Visibility(m.Vis), tuple.Timestamp(m.TS), scanRange(m)); err != nil {
			return errMsg(err)
		}
		s.getTxn(m.Txn, true)
		owned[m.Txn] = true
		if err := s.streamScan(c, m); err != nil {
			return s.dataErr(err)
		}
		return nil

	case wire.MsgRecoveryScan:
		// An object that rejoined from a crash may be missing commits it
		// once acknowledged (crash losses, lying fsyncs) while still counted
		// in the coordinator's update set. Serving as a recovery source
		// before its own recovery completes would silently seed that
		// staleness into another replica — refuse loudly instead. The check
		// is per object: a Ready object on a still-recovering site is a
		// legitimate source (its catch-up ran to completion).
		s.noteTableRead(m.Table)
		if rng := scanRange(m); s.rangePurged(m.Table, rng) {
			return s.staleMsg(m.Table, rng)
		}
		for _, seg := range s.ObjectSegments(m.Table) {
			if seg.Range.Intersect(scanRange(m)).Empty() || seg.State == ObjReady {
				continue
			}
			s.requestFaultIn(m.Table, scanRange(m))
			return errMsg(fmt.Errorf("worker: site %d object %d segment [%d,%d) rejoined from a crash and has not completed recovery (state %v); not a valid recovery source",
				s.Cfg.Site, m.Table, seg.Range.Lo, seg.Range.Hi, seg.State))
		}
		if err := s.streamRecoveryScan(c, m); err != nil {
			return s.dataErr(err)
		}
		return nil

	case wire.MsgEndRead:
		s.Locks.ReleaseAll(lockmgr.TxnID(m.Txn))
		s.forget(m.Txn)
		delete(owned, m.Txn)
		return okMsg()

	case wire.MsgLockTable:
		// Recovery Phase 3 table read lock (§5.4.1). The lock is owned by
		// the recovering site's recovery transaction; if this connection
		// dies the deferred orphan handling releases it (§5.5.1 override).
		owned[m.Txn] = true
		s.getTxn(m.Txn, true)
		if err := s.Locks.Acquire(lockmgr.TxnID(m.Txn), lockmgr.TableTarget(m.Table), lockmgr.S); err != nil {
			return errMsg(err)
		}
		return okMsg()

	case wire.MsgUnlockTable:
		s.Locks.Release(lockmgr.TxnID(m.Txn), lockmgr.TableTarget(m.Table))
		return okMsg()

	case wire.MsgPurgeRange:
		// Donor-side cleanup after a segment moved away: physically delete
		// the range, then leave a purge note so scans planned against the
		// old placement are refused as placement-stale rather than served
		// from the hole.
		rng := scanRange(m)
		n, err := s.PurgeRange(m.Table, rng)
		if err != nil {
			return s.dataErr(err)
		}
		s.MarkRangePurged(m.Table, rng)
		out := okMsg()
		out.Count = int64(n)
		return out

	case wire.MsgVacuum:
		// §3.3's configurable-history background process, triggered
		// remotely: purge versions deleted at or before the horizon.
		var removed int
		var err error
		if m.Table == 0 {
			removed, err = s.Store.VacuumAll(m.TS)
		} else {
			removed, err = s.Store.VacuumBefore(m.Table, m.TS)
		}
		if err != nil {
			return errMsg(err)
		}
		out := okMsg()
		out.Count = int64(removed)
		return out

	case wire.MsgTableMeta:
		tb, err := s.Mgr.Get(m.Table)
		if err != nil {
			return errMsg(err)
		}
		// Count = segments, Key = indexed record ids, TS = last checkpoint.
		ckpt, _ := s.LastCheckpoint()
		return &wire.Msg{
			Type:  wire.MsgOK,
			Count: int64(tb.Heap.NumSegments()),
			Key:   int64(tb.Index.Len()),
			TS:    ckpt,
		}

	case wire.MsgQueryTxnState:
		st, ts, ok := s.TxnState(m.Txn)
		if !ok {
			// Unknown transaction after a crash: report aborted (the
			// worker would vote NO anyway, §4.3.2).
			return &wire.Msg{Type: wire.MsgTxnState, Flags: uint8(txn.StateAborted)}
		}
		return &wire.Msg{Type: wire.MsgTxnState, Flags: uint8(st), TS: ts}

	default:
		return errMsg(fmt.Errorf("worker: unexpected message %v", m.Type))
	}
}

// handlePrepare is the first commit-protocol phase (§4.3): check
// constraints, (log per protocol), vote.
func (s *Site) handlePrepare(m *wire.Msg, owned map[txn.ID]bool) *wire.Msg {
	w := s.getTxn(m.Txn, false)
	if w == nil {
		// Vote NO for unknown transactions (post-crash rule, §4.3.2).
		s.trace.Record(int64(m.Txn), obs.EvVote, "no (unknown txn)")
		return &wire.Msg{Type: wire.MsgVote}
	}
	owned[m.Txn] = true
	s.trace.Recordf(int64(m.Txn), obs.EvPrepare, "msg=%s", m.Type)
	if w.state == txn.StatePreparedToCommit || w.state == txn.StateCommitted {
		// Duplicate from a backup coordinator replaying the protocol.
		return &wire.Msg{Type: wire.MsgVote, Flags: wire.FlagYes}
	}
	if s.failNextPrepare.CompareAndSwap(true, false) {
		s.setState(w, txn.StatePreparedNo)
		// A NO-voting worker rolls back immediately (Figure 4-2/4-3).
		_ = s.Store.Abort(lockmgr.TxnID(m.Txn))
		s.setState(w, txn.StateAborted)
		s.aborts.Inc()
		s.trace.Record(int64(m.Txn), obs.EvVote, "no (injected failure)")
		return &wire.Msg{Type: wire.MsgVote}
	}
	force := s.plan.WorkerForce(m.Type)
	if err := s.Store.Prepare(lockmgr.TxnID(m.Txn), force); err != nil {
		return errMsg(err)
	}
	if force {
		s.trace.Record(int64(m.Txn), obs.EvForce, "rec=PREPARED")
	}
	if len(m.Sites) > 0 {
		w.participants = append([]int32(nil), m.Sites...)
	}
	s.ts.prepared(m.Txn)
	s.setState(w, txn.StatePreparedYes)
	s.trace.Record(int64(m.Txn), obs.EvVote, "yes")
	return &wire.Msg{Type: wire.MsgVote, Flags: wire.FlagYes}
}

// handlePrepareToCommit is 3PC's second phase: record the commit time.
func (s *Site) handlePrepareToCommit(m *wire.Msg, _ map[txn.ID]bool) *wire.Msg {
	w := s.getTxn(m.Txn, false)
	if w == nil {
		return errMsg(errUnknownTxn)
	}
	if w.state == txn.StatePreparedToCommit || w.state == txn.StateCommitted {
		return okMsg() // duplicate
	}
	force := s.plan.WorkerForce(m.Type)
	if err := s.Store.PrepareToCommit(lockmgr.TxnID(m.Txn), m.TS, force); err != nil {
		return errMsg(err)
	}
	w.commitTS = m.TS
	s.ts.commitTSKnown(m.Txn, m.TS)
	s.setState(w, txn.StatePreparedToCommit)
	s.trace.Recordf(int64(m.Txn), obs.EvPrepare, "prepared-to-commit ts=%d force=%v", m.TS, force)
	return okMsg()
}

// handleCommit applies the commit: stamp timestamps, log COMMIT when the
// protocol keeps a worker log (forced under traditional 2PC and canonical
// 3PC), release locks, ack.
func (s *Site) handleCommit(m *wire.Msg, owned map[txn.ID]bool) *wire.Msg {
	w := s.getTxn(m.Txn, false)
	if w == nil {
		return errMsg(errUnknownTxn)
	}
	if w.state == txn.StateCommitted {
		return okMsg() // duplicate (consensus replay)
	}
	if w.state == txn.StateAborted {
		return errMsg(fmt.Errorf("worker: commit of aborted txn %d", m.Txn))
	}
	ts := m.TS
	if ts == 0 {
		ts = w.commitTS // consensus replay of the third phase
	}
	s.ts.commitTSKnown(m.Txn, ts)
	logIt := s.plan.WorkerForce(wire.MsgCommit)
	if err := s.Store.Commit(lockmgr.TxnID(m.Txn), ts, logIt, logIt); err != nil {
		return errMsg(err)
	}
	w.commitTS = ts
	s.ts.applied(m.Txn, ts)
	s.setState(w, txn.StateCommitted)
	s.commits.Inc()
	if logIt {
		s.trace.Record(int64(m.Txn), obs.EvForce, "rec=COMMIT")
	}
	s.trace.Recordf(int64(m.Txn), obs.EvCommitPoint, "ts=%d", ts)
	delete(owned, m.Txn)
	s.forgetLater(m.Txn)
	return okMsg()
}

// handleCommitFast is the early-vote 1PC fast path (Plan.EarlyVote): the
// YES vote was implicit in the per-operation acks, so a single round both
// fixes the commit time and applies it. A pending transaction is promoted
// straight through prepared(YES) so the timestamp tracker takes its
// checkpoint barrier before the commit stamps land.
func (s *Site) handleCommitFast(m *wire.Msg, owned map[txn.ID]bool) *wire.Msg {
	w := s.getTxn(m.Txn, false)
	if w == nil {
		return errMsg(errUnknownTxn)
	}
	if w.state == txn.StatePending {
		s.ts.prepared(m.Txn)
		s.setState(w, txn.StatePreparedYes)
	}
	return s.handleCommit(m, owned)
}

// handleAbort rolls back.
func (s *Site) handleAbort(m *wire.Msg, owned map[txn.ID]bool) *wire.Msg {
	w := s.getTxn(m.Txn, false)
	if w == nil {
		return okMsg() // unknown ⇒ nothing to do (presumed abort)
	}
	if w.state == txn.StateAborted {
		return okMsg()
	}
	if w.state == txn.StateCommitted {
		return errMsg(fmt.Errorf("worker: abort of committed txn %d", m.Txn))
	}
	if err := s.Store.Abort(lockmgr.TxnID(m.Txn)); err != nil {
		return errMsg(err)
	}
	s.setState(w, txn.StateAborted)
	s.aborts.Inc()
	s.trace.Record(int64(m.Txn), obs.EvAbort, "rolled back")
	delete(owned, m.Txn)
	s.forgetLater(m.Txn)
	return okMsg()
}

// forgetLater drops bookkeeping for a terminal transaction. State is kept
// briefly so duplicate consensus messages and outcome queries can still be
// answered; a small retention window suffices because peers retry.
func (s *Site) forgetLater(id txn.ID) {
	// Keep terminal state; it is cheap (a few words per txn) and the
	// benches reset sites between runs. Only the version-layer state and
	// locks are gone. The ts tracker entry is cleared.
	s.ts.resolved(id)
}

// frameStream packs tuples into MsgTupleBatch frames, flushing a frame when
// it reaches wire.BatchTargetRows rows or wire.BatchTargetBytes payload
// bytes. The terminating MsgScanEnd carries the total row count.
type frameStream struct {
	c        *comm.Conn
	desc     *tuple.Desc
	keysOnly bool
	rowsCap  int // rows per frame under the flush policy
	b        *tuple.Batch
	buf      []byte
	count    int64
	site     *Site
}

func (s *Site) newFrameStream(c *comm.Conn, desc *tuple.Desc, keysOnly bool) *frameStream {
	stride := desc.Width()
	if keysOnly {
		stride = wire.KeysOnlyStride
	}
	rowsCap := wire.BatchTargetBytes / stride
	if rowsCap > wire.BatchTargetRows {
		rowsCap = wire.BatchTargetRows
	}
	if rowsCap < 1 {
		rowsCap = 1
	}
	return &frameStream{c: c, desc: desc, keysOnly: keysOnly, rowsCap: rowsCap,
		b: tuple.NewBatch(rowsCap), site: s}
}

func (f *frameStream) add(t tuple.Tuple) error {
	f.b.Append(t)
	if f.b.Len() >= f.rowsCap {
		return f.flush()
	}
	return nil
}

func (f *frameStream) flush() error {
	n := f.b.Len()
	if n == 0 {
		return nil
	}
	f.buf = f.buf[:0]
	var flags uint8
	if f.keysOnly {
		flags = wire.FlagYes
		for _, t := range f.b.Rows() {
			f.buf = wire.AppendKeyRow(f.buf, t.Key(f.desc), int64(t.DelTS()))
		}
	} else {
		f.buf = f.b.EncodeTo(f.desc, f.buf)
	}
	f.count += int64(n)
	f.b.Reset()
	f.site.scanRows.Add(int64(n))
	f.site.scanFrames.Inc()
	f.site.scanBytes.Add(int64(len(f.buf)))
	f.site.batchFill.Observe(int64(n))
	// SendNoFlush serialises the frame into the connection's write buffer
	// before returning, so f.buf may be reused for the next frame.
	return f.c.SendNoFlush(&wire.Msg{Type: wire.MsgTupleBatch, Count: int64(n), Flags: flags, Raw: f.buf})
}

func (f *frameStream) end() error {
	if err := f.flush(); err != nil {
		return err
	}
	if err := f.c.SendNoFlush(&wire.Msg{Type: wire.MsgScanEnd, Count: f.count}); err != nil {
		return err
	}
	return f.c.Flush()
}

// streamScan executes a normal scan and streams the results in ascending
// key order (stable for duplicate keys), as MsgTupleBatch frames by default
// or one MsgTuple per row when the client set FlagTupleAtATime. The sort
// gives the coordinator deterministic per-site streams to merge and a
// resume point (the last emitted key) for mid-stream failover.
func (s *Site) streamScan(c *comm.Conn, m *wire.Msg) error {
	spec := exec.ScanSpec{
		Table:  m.Table,
		Vis:    exec.Visibility(m.Vis),
		AsOf:   m.TS,
		Locked: m.Flags&wire.FlagYes != 0,
		Txn:    lockmgr.TxnID(m.Txn),
		Pred:   wire.PredOf(m.Pred),
	}
	if len(m.Aggs) > 0 {
		return s.streamAggScan(c, m, spec)
	}
	scan := exec.NewSeqScan(s.Store, spec)
	rows, err := exec.Drain(scan)
	if err != nil {
		return err
	}
	desc := scan.Desc()
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Key(desc) < rows[j].Key(desc) })
	if m.Flags&wire.FlagTupleAtATime != 0 {
		for _, t := range rows {
			if err := c.SendNoFlush(&wire.Msg{Type: wire.MsgTuple, Tuple: wire.TupleValues(t)}); err != nil {
				return err
			}
		}
		s.scanRows.Add(int64(len(rows)))
		if err := c.SendNoFlush(&wire.Msg{Type: wire.MsgScanEnd, Count: int64(len(rows))}); err != nil {
			return err
		}
		return c.Flush()
	}
	fs := s.newFrameStream(c, desc, false)
	for _, t := range rows {
		if err := fs.add(t); err != nil {
			return err
		}
	}
	return fs.end()
}

// streamAggScan serves a scan request carrying a pushed-down aggregate
// spec: the qualifying rows are folded into per-group partial states
// locally (SeqScan → predicate → GroupTable) and only the O(groups) states
// travel, as MsgAggBatch frames in ascending group-key order, closed by a
// MsgScanEnd whose Count is the number of groups. The coordinator merges
// states from every site and finalises (Avg arrives here as its Sum+Count
// decomposition, so nothing is lost to per-site rounding).
func (s *Site) streamAggScan(c *comm.Conn, m *wire.Msg, spec exec.ScanSpec) error {
	tb, err := s.Mgr.Get(m.Table)
	if err != nil {
		return err
	}
	desc := tb.Heap.Desc()
	partial := make([]exec.AggSpec, len(m.Aggs))
	for i, a := range m.Aggs {
		if a.Field < 0 || int(a.Field) >= len(desc.Fields) {
			return fmt.Errorf("worker: agg field %d out of range", a.Field)
		}
		partial[i] = exec.AggSpec{Fn: exec.AggFunc(a.Fn), Field: int(a.Field)}
	}
	group := int(m.AggGroup)
	if group >= len(desc.Fields) {
		return fmt.Errorf("worker: agg group field %d out of range", group)
	}
	gt := exec.NewGroupTable(group, partial)
	scan := exec.NewSeqScan(s.Store, spec)
	if err := scan.Open(); err != nil {
		return err
	}
	defer scan.Close()
	b := tuple.NewBatch(exec.DefaultBatchRows)
	rowsIn := int64(0)
	for {
		if err := scan.NextBatch(b); err != nil {
			return err
		}
		if b.Len() == 0 {
			break
		}
		rowsIn += int64(b.Len())
		gt.AddBatch(b)
	}
	s.aggRowsIn.Add(rowsIn)
	s.aggGroups.Add(int64(gt.Groups()))

	ncols := len(partial)
	if group >= 0 {
		ncols++
	}
	rowsCap := wire.BatchTargetBytes / wire.AggStride(ncols)
	if rowsCap > wire.BatchTargetRows {
		rowsCap = wire.BatchTargetRows
	}
	var buf []byte
	n := 0
	flush := func() error {
		if n == 0 {
			return nil
		}
		s.aggFrames.Inc()
		s.scanBytes.Add(int64(len(buf)))
		err := c.SendNoFlush(&wire.Msg{Type: wire.MsgAggBatch, Count: int64(n), Raw: buf})
		buf = buf[:0]
		n = 0
		return err
	}
	keys := gt.SortedKeys()
	for _, key := range keys {
		if group >= 0 {
			buf = wire.AppendAggRow(buf, key)
		}
		buf = wire.AppendAggRow(buf, gt.State(key)...)
		if n++; n >= rowsCap {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := c.SendNoFlush(&wire.Msg{Type: wire.MsgScanEnd, Count: int64(len(keys))}); err != nil {
		return err
	}
	return c.Flush()
}

// streamRecoveryScan serves a recovery buddy's side of the Chapter 5
// queries: a SEE DELETED (optionally HISTORICAL) scan with timestamp range
// predicates, pruned by the segment directory (§4.2), restricted to the
// recovery predicate's key range. With FlagYes only (key, deletion-time)
// pairs are shipped (the Phase 2/3 deletion queries).
func (s *Site) streamRecoveryScan(c *comm.Conn, m *wire.Msg) error {
	tb, err := s.Mgr.Get(m.Table)
	if err != nil {
		return err
	}
	desc := tb.Heap.Desc()
	var insLE, insGT, delGT *tuple.Timestamp
	pred := expr.KeyRange{Lo: m.KeyLo, Hi: m.KeyHi}.Pred(desc)
	if m.Flags&wire.FlagHasInsLE != 0 {
		v := m.InsLE
		insLE = &v
		pred = pred.And(expr.Term{Field: tuple.FieldInsTS, Op: expr.LE, Value: tuple.VInt(v)})
	}
	if m.Flags&wire.FlagHasInsGT != 0 {
		v := m.InsGT
		insGT = &v
		pred = pred.And(expr.Term{Field: tuple.FieldInsTS, Op: expr.GT, Value: tuple.VInt(v)})
		if m.TS == 0 {
			// Plain SEE DELETED (Phase 3): the special uncommitted value
			// would satisfy "insertion-time > hwm"; exclude it explicitly
			// (§5.4.1's "insertion_time != uncommitted").
			pred = pred.And(expr.Term{Field: tuple.FieldInsTS, Op: expr.NE, Value: tuple.VInt(tuple.Uncommitted)})
		}
	}
	if m.Flags&wire.FlagHasDelGT != 0 {
		v := m.DelGT
		delGT = &v
		pred = pred.And(expr.Term{Field: tuple.FieldDelTS, Op: expr.GT, Value: tuple.VInt(v)})
	}
	// SegmentPlan returns nil when the timestamp bounds prune every segment;
	// SegmentsOf represents that "scan nothing" plan directly.
	sel := exec.SegmentsOf(tb.Heap.SegmentPlan(insLE, insGT, delGT, false))
	if m.Flags&wire.FlagNoPrune != 0 {
		sel = exec.AllSegments() // ablation: scan every segment
	}
	keysOnly := m.Flags&wire.FlagYes != 0
	spec := exec.ScanSpec{
		Table:    m.Table,
		Vis:      exec.SeeDeleted,
		AsOf:     m.TS, // 0 ⇒ plain SEE DELETED (Phase 3); >0 ⇒ historical (Phase 2)
		Segments: sel,
		Pred:     pred,
	}
	scan := exec.NewSeqScan(s.Store, spec)
	if err := scan.Open(); err != nil {
		return err
	}
	defer scan.Close()
	if m.Flags&wire.FlagTupleAtATime != 0 {
		count := int64(0)
		for {
			t, ok, err := scan.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			var out *wire.Msg
			if keysOnly {
				out = &wire.Msg{Type: wire.MsgTuple, Key: t.Key(desc), TS: t.DelTS()}
			} else {
				out = &wire.Msg{Type: wire.MsgTuple, Tuple: wire.TupleValues(t)}
			}
			if err := c.SendNoFlush(out); err != nil {
				return err
			}
			count++
		}
		s.scanRows.Add(count)
		if err := c.SendNoFlush(&wire.Msg{Type: wire.MsgScanEnd, Count: count}); err != nil {
			return err
		}
		return c.Flush()
	}
	fs := s.newFrameStream(c, desc, keysOnly)
	b := tuple.NewBatch(exec.DefaultBatchRows)
	for {
		if err := scan.NextBatch(b); err != nil {
			return err
		}
		if b.Len() == 0 {
			break
		}
		for _, t := range b.Rows() {
			if err := fs.add(t); err != nil {
				return err
			}
		}
	}
	return fs.end()
}

// simWorkSink defeats dead-code elimination of the simulated CPU loop.
var simWorkSink int64

// simulateWork spins for the given number of loop iterations, standing in
// for ETL processing, compression, materialized-view maintenance, or other
// per-transaction CPU work (§6.3.2).
func simulateWork(cycles int64) {
	var acc int64
	for i := int64(0); i < cycles; i++ {
		acc += i ^ (acc << 1)
	}
	simWorkSink = acc
}
