package worker_test

import (
	"testing"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/comm"
	"harbor/internal/exec"
	"harbor/internal/expr"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

// recvTerminal drains a scan stream to its terminal frame without fataling
// on MsgErr — refusals are an expected outcome in the gating tests below.
func recvTerminal(t *testing.T, c *comm.Conn) *wire.Msg {
	t.Helper()
	for {
		m, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch m.Type {
		case wire.MsgScanEnd, wire.MsgErr:
			return m
		case wire.MsgTuple, wire.MsgTupleBatch:
			// drain
		default:
			t.Fatalf("unexpected %v in stream", m.Type)
		}
	}
}

// TestObjectStateGatesWireReads walks the per-object recovery state machine
// at the wire level: a NeedsRecovery object refuses every read; a
// HistoricalCopy object serves historical reads at or below its copied
// horizon and refuses everything past it (plus all current-visibility
// reads); a Ready object serves everything, recovery scans included.
func TestObjectStateGatesWireReads(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	var preTS tuple.Timestamp
	for i := int64(1); i <= 5; i++ {
		tx := cl.Coord.Begin()
		if err := tx.Insert(1, mk(i, i*10)); err != nil {
			t.Fatal(err)
		}
		ts, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		preTS = ts
	}
	for _, w := range cl.Workers {
		if err := w.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	cl.Workers[0].Crash()
	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty restart: the clean-shutdown marker is missing, so Open demotes
	// every object and the ping bitmap says so.
	if st, _ := w.ObjectState(1); st != worker.ObjNeedsRecovery {
		t.Fatalf("dirty open: state = %v, want NeedsRecovery", st)
	}
	live, ready, objs := comm.PingObjects(w.Addr(), time.Second)
	if !live || ready {
		t.Fatalf("ping: live=%v ready=%v, want live and not ready", live, ready)
	}
	if len(objs) != 1 || objs[0].Table != 1 || worker.ObjState(objs[0].State) != worker.ObjNeedsRecovery {
		t.Fatalf("ping bitmap: %+v", objs)
	}

	c := dialWorker(t, cl, 0)
	scan := func(vis exec.Visibility, asOf tuple.Timestamp) *wire.Msg {
		if err := c.Send(&wire.Msg{Type: wire.MsgScan, Txn: 900, Table: 1,
			Vis: uint8(vis), TS: int64(asOf)}); err != nil {
			t.Fatal(err)
		}
		return recvTerminal(t, c)
	}
	// NeedsRecovery: every visibility refused.
	if m := scan(exec.Current, 0); m.Type != wire.MsgErr {
		t.Fatalf("current scan of NeedsRecovery object answered %v, want refusal", m.Type)
	}
	if m := scan(exec.Historical, preTS); m.Type != wire.MsgErr {
		t.Fatalf("historical scan of NeedsRecovery object answered %v, want refusal", m.Type)
	}

	// Mid historical copy with horizon preTS: historical reads at or below
	// the horizon serve, anything past it — and any current read — refuses.
	w.SetObjectState(1, worker.ObjHistoricalCopy, preTS)
	if m := scan(exec.Historical, preTS); m.Type != wire.MsgScanEnd {
		t.Fatalf("historical scan at the copied horizon answered %v (%s), want a served stream", m.Type, m.Text)
	} else if m.Count != 5 {
		t.Fatalf("historical scan at horizon returned %d rows, want 5", m.Count)
	}
	if m := scan(exec.Historical, preTS+1); m.Type != wire.MsgErr {
		t.Fatalf("historical scan past the copied horizon answered %v, want refusal", m.Type)
	}
	if m := scan(exec.Current, 0); m.Type != wire.MsgErr {
		t.Fatalf("current scan of HistoricalCopy object answered %v, want refusal", m.Type)
	}
	if m := scan(exec.Historical, 0); m.Type != wire.MsgErr {
		t.Fatalf("historical scan with unresolved asOf answered %v, want refusal", m.Type)
	}
	// A refused read fault-ins the object: the recovery driver's hook fires,
	// carrying the key range the read declared (full range when undeclared).
	type faultIn struct {
		table int32
		rng   expr.KeyRange
	}
	faulted := make(chan faultIn, 8)
	w.SetFaultInHook(func(table int32, rng expr.KeyRange) { faulted <- faultIn{table, rng} })
	_ = scan(exec.Current, 0)
	select {
	case f := <-faulted:
		if f.table != 1 {
			t.Fatalf("fault-in hook fired for table %d, want 1", f.table)
		}
		if f.rng != expr.FullKeyRange() {
			t.Fatalf("undeclared scan range faulted in %+v, want the full range", f.rng)
		}
	default:
		t.Fatal("refused read did not fire the fault-in hook")
	}

	// Ready: everything serves again, recovery scans included, and the
	// bitmap flips.
	w.SetObjectState(1, worker.ObjReady, preTS)
	if m := scan(exec.Current, 0); m.Type != wire.MsgScanEnd {
		t.Fatalf("current scan of Ready object answered %v (%s), want a served stream", m.Type, m.Text)
	}
	if _, ready, _ := comm.PingObjects(w.Addr(), time.Second); !ready {
		t.Fatal("ping: site with all objects Ready must advertise readiness")
	}
}

// TestSegmentStateGatesWireReads exercises the segment-granular gate: with
// one table split into two key-range segments, reads declaring a range
// inside the recovered segment serve while reads touching the lagging
// segment refuse — and the refusal's fault-in carries the declared range so
// recovery can pull exactly that segment forward.
func TestSegmentStateGatesWireReads(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	var preTS tuple.Timestamp
	for i := int64(1); i <= 8; i++ {
		tx := cl.Coord.Begin()
		if err := tx.Insert(1, mk(i*50, i)); err != nil { // keys 50..400 straddle the 200 boundary
			t.Fatal(err)
		}
		ts, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		preTS = ts
	}
	for _, wk := range cl.Workers {
		if err := wk.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	cl.Workers[0].Crash()
	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	full := expr.FullKeyRange()
	low := expr.KeyRange{Lo: full.Lo, Hi: 200}
	high := expr.KeyRange{Lo: 200, Hi: full.Hi}
	w.SetObjectSegments(1, []int64{200}, worker.ObjNeedsRecovery, 0)

	c := dialWorker(t, cl, 0)
	scan := func(vis exec.Visibility, ts tuple.Timestamp, rng expr.KeyRange) *wire.Msg {
		if err := c.Send(&wire.Msg{Type: wire.MsgScan, Txn: 901, Table: 1,
			Vis: uint8(vis), TS: int64(ts), KeyLo: rng.Lo, KeyHi: rng.Hi}); err != nil {
			t.Fatal(err)
		}
		return recvTerminal(t, c)
	}

	// The low segment finishes its historical copy through preTS; the high
	// segment hasn't started. Only reads confined to the low range serve.
	w.SetSegmentState(1, low, worker.ObjHistoricalCopy, preTS)
	if m := scan(exec.Historical, preTS, expr.KeyRange{Lo: 0, Hi: 200}); m.Type != wire.MsgScanEnd {
		t.Fatalf("historical scan of the copied segment answered %v (%s), want a served stream", m.Type, m.Text)
	}
	if m := scan(exec.Historical, preTS, expr.KeyRange{Lo: 200, Hi: 400}); m.Type != wire.MsgErr {
		t.Fatalf("historical scan of the uncopied segment answered %v, want refusal", m.Type)
	}
	if m := scan(exec.Historical, preTS, full); m.Type != wire.MsgErr {
		t.Fatalf("full-range historical scan answered %v, want refusal (one segment lags)", m.Type)
	}
	if m := scan(exec.Historical, preTS+1, expr.KeyRange{Lo: 0, Hi: 200}); m.Type != wire.MsgErr {
		t.Fatalf("historical scan past the segment's horizon answered %v, want refusal", m.Type)
	}
	if m := scan(exec.Current, preTS, expr.KeyRange{Lo: 0, Hi: 200}); m.Type != wire.MsgErr {
		t.Fatalf("current scan of a HistoricalCopy segment answered %v, want refusal", m.Type)
	}

	// A refused range-declared read faults in exactly that range. Installing
	// the hook also replays the ranges the scans above buffered while no
	// driver was attached, so drain until the declared range shows up.
	type faultIn struct {
		table int32
		rng   expr.KeyRange
	}
	faulted := make(chan faultIn, 16)
	w.SetFaultInHook(func(table int32, rng expr.KeyRange) { faulted <- faultIn{table, rng} })
	_ = scan(exec.Historical, preTS, expr.KeyRange{Lo: 200, Hi: 400})
	sawRange := false
	deadline := time.After(2 * time.Second)
	for !sawRange {
		select {
		case f := <-faulted:
			if f.table != 1 {
				t.Fatalf("fault-in hook fired for table %d, want 1", f.table)
			}
			if (f.rng == expr.KeyRange{Lo: 200, Hi: 400}) {
				sawRange = true
			}
		case <-deadline:
			t.Fatal("no fault-in carried the declared range [200,400)")
		}
	}
	w.SetFaultInHook(nil)

	// Catchup with a drained horizon ≥ the start timestamp serves current
	// reads on that segment; a later start timestamp still refuses.
	w.SetSegmentState(1, low, worker.ObjCatchup, preTS)
	if m := scan(exec.Current, preTS, expr.KeyRange{Lo: 0, Hi: 200}); m.Type != wire.MsgScanEnd {
		t.Fatalf("current scan of a drained Catchup segment answered %v (%s), want a served stream", m.Type, m.Text)
	}
	if m := scan(exec.Current, preTS+1, expr.KeyRange{Lo: 0, Hi: 200}); m.Type != wire.MsgErr {
		t.Fatalf("current scan starting past the drain horizon answered %v, want refusal", m.Type)
	}
	if m := scan(exec.Current, 0, expr.KeyRange{Lo: 0, Hi: 200}); m.Type != wire.MsgErr {
		t.Fatalf("current scan with no start timestamp answered %v, want refusal", m.Type)
	}

	// Both segments Ready: the full range serves again and the ping bitmap
	// carries one entry per segment.
	w.SetSegmentState(1, low, worker.ObjReady, preTS)
	w.SetSegmentState(1, high, worker.ObjReady, preTS)
	if m := scan(exec.Current, 0, full); m.Type != wire.MsgScanEnd {
		t.Fatalf("full-range current scan after both segments Ready answered %v (%s), want a served stream", m.Type, m.Text)
	} else if m.Count != 8 {
		t.Fatalf("full-range scan returned %d rows, want 8", m.Count)
	}
	_, ready, objs := comm.PingObjects(w.Addr(), time.Second)
	if !ready {
		t.Fatal("ping: site with all segments Ready must advertise readiness")
	}
	if len(objs) != 2 || objs[0].Lo != low.Lo || objs[0].Hi != 200 || objs[1].Lo != 200 || objs[1].Hi != high.Hi {
		t.Fatalf("ping bitmap segments: %+v", objs)
	}
}

// TestCreateTableMidRecoverySeedsReady pins the fix for tables created while
// the site is still recovering from a dirty start: a table that did not
// exist at the crash cannot be missing acknowledged commits, so it must come
// up Ready and serve immediately — the old seeding demoted it with
// everything else, refusing reads of brand-new empty tables for the whole
// recovery window.
func TestCreateTableMidRecoverySeedsReady(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.Workers[0].Crash()
	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := w.ObjectState(1); st != worker.ObjNeedsRecovery {
		t.Fatalf("pre-crash table: state = %v, want NeedsRecovery", st)
	}
	if err := w.CreateTable(2, testDesc(), 4); err != nil {
		t.Fatal(err)
	}
	if st, _ := w.ObjectState(2); st != worker.ObjReady {
		t.Fatalf("mid-recovery CreateTable seeded state %v, want Ready", st)
	}
	c := dialWorker(t, cl, 0)
	if err := c.Send(&wire.Msg{Type: wire.MsgScan, Txn: 902, Table: 2,
		Vis: uint8(exec.Current)}); err != nil {
		t.Fatal(err)
	}
	if m := recvTerminal(t, c); m.Type != wire.MsgScanEnd {
		t.Fatalf("scan of a mid-recovery-created table answered %v (%s), want a served (empty) stream", m.Type, m.Text)
	}
}

// TestCleanShutdownSeedsReady pins the seeding rule: a clean shutdown writes
// the marker, so reopening the same directory brings every object up Ready —
// no recovery pass, no read refusals.
func TestCleanShutdownSeedsReady(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	old := cl.Workers[1]
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	w, err := worker.Open(worker.Config{
		Site:        testutil.WorkerSiteID(1),
		Dir:         old.Cfg.Dir,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		LockTimeout: old.Cfg.LockTimeout,
		GroupCommit: true,
		Catalog:     cl.Catalog,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Workers[1] = w // hand ownership to cl.Close
	cl.Catalog.AddSite(testutil.WorkerSiteID(1), w.Addr())
	if w.NeedsRecovery() {
		t.Fatal("clean reopen must not need recovery")
	}
	if st, _ := w.ObjectState(1); st != worker.ObjReady {
		t.Fatalf("clean reopen: state = %v, want Ready", st)
	}
}

// TestWriteGateFaultIn is the write-side row of the gate matrix: a write
// landing on a NeedsRecovery segment is refused AND promotes the written
// key's range in the recovery hotness queue, exactly like a refused read;
// Catchup and Ready segments accept the write (the join replay and
// post-flip update routing both target Catchup segments).
func TestWriteGateFaultIn(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	var preTS tuple.Timestamp
	for i := int64(1); i <= 5; i++ {
		tx := cl.Coord.Begin()
		if err := tx.Insert(1, mk(i, i*10)); err != nil {
			t.Fatal(err)
		}
		ts, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		preTS = ts
	}
	for _, w := range cl.Workers {
		if err := w.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	cl.Workers[0].Crash()
	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := w.ObjectState(1); st != worker.ObjNeedsRecovery {
		t.Fatalf("dirty open: state = %v, want NeedsRecovery", st)
	}
	type faultIn struct {
		table int32
		rng   expr.KeyRange
	}
	faulted := make(chan faultIn, 8)
	w.SetFaultInHook(func(table int32, rng expr.KeyRange) { faulted <- faultIn{table, rng} })

	c := dialWorker(t, cl, 0)
	// Call surfaces a MsgErr reply as a Go error; refusal == non-nil error.
	refused := func(m *wire.Msg) bool {
		_, err := c.Call(m)
		return err != nil
	}
	// NeedsRecovery refuses both write kinds, faulting in the written key.
	if !refused(&wire.Msg{Type: wire.MsgInsert, Txn: 901, Table: 1,
		Tuple: wire.TupleValues(mk(7, 0))}) {
		t.Fatal("insert into NeedsRecovery segment answered, want refusal")
	}
	select {
	case f := <-faulted:
		if f.table != 1 || f.rng != (expr.KeyRange{Lo: 7, Hi: 8}) {
			t.Fatalf("refused insert faulted in table %d range %+v, want table 1 [7,8)", f.table, f.rng)
		}
	default:
		t.Fatal("refused insert did not fire the fault-in hook")
	}
	if !refused(&wire.Msg{Type: wire.MsgDeleteKey, Txn: 901, Table: 1, Key: 3}) {
		t.Fatal("delete against NeedsRecovery segment answered, want refusal")
	}
	select {
	case f := <-faulted:
		if f.table != 1 || f.rng != (expr.KeyRange{Lo: 3, Hi: 4}) {
			t.Fatalf("refused delete faulted in table %d range %+v, want table 1 [3,4)", f.table, f.rng)
		}
	default:
		t.Fatal("refused delete did not fire the fault-in hook")
	}

	// Catchup accepts writes — no refusal, no fault-in.
	w.SetObjectState(1, worker.ObjCatchup, preTS)
	if m, err := c.Call(&wire.Msg{Type: wire.MsgInsert, Txn: 901, Table: 1,
		Tuple: wire.TupleValues(mk(8, 0))}); err != nil || m.Type != wire.MsgOK {
		t.Fatalf("insert into Catchup segment answered %v (%v), want OK", m, err)
	}
	// Ready accepts too.
	w.SetObjectState(1, worker.ObjReady, preTS)
	if m, err := c.Call(&wire.Msg{Type: wire.MsgInsert, Txn: 901, Table: 1,
		Tuple: wire.TupleValues(mk(9, 0))}); err != nil || m.Type != wire.MsgOK {
		t.Fatalf("insert into Ready segment answered %v (%v), want OK", m, err)
	}
	select {
	case f := <-faulted:
		t.Fatalf("accepted write fired the fault-in hook: %+v", f)
	default:
	}
	if _, err := c.Call(&wire.Msg{Type: wire.MsgAbort, Txn: 901}); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaAssignedWhileDownSeedsNeedsRecovery is the regression test for
// recovery of catalog-untracked objects: a replica the catalog assigned to
// this site while it was down (a join or rebalance targeting a dead site)
// has no local table and no state entry — without seeding it at Open, a
// cleanly-restarted site would default the object to Ready and serve an
// empty table. It must come up NeedsRecovery and refuse reads, while the
// tables the clean-shutdown marker actually vouches for stay Ready.
func TestReplicaAssignedWhileDownSeedsNeedsRecovery(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	// Table 2 lives only on worker 1.
	if err := cl.CreateReplicatedTable(2, testDesc(), 4, 1); err != nil {
		t.Fatal(err)
	}
	tx := cl.Coord.Begin()
	if err := tx.Insert(2, mk(1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Worker 0 leaves cleanly; while it is down, a rebalance assigns it a
	// replica of table 2.
	if err := cl.Workers[0].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Catalog.AddReplicaRange(catalog.Replica{
		Site: testutil.WorkerSiteID(0), Table: 2,
		Range: expr.FullKeyRange(), SegPages: 4,
	}); err != nil {
		t.Fatal(err)
	}
	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := w.ObjectState(1); st != worker.ObjReady {
		t.Fatalf("clean reopen: table 1 state = %v, want Ready", st)
	}
	if st, _ := w.ObjectState(2); st != worker.ObjNeedsRecovery {
		t.Fatalf("replica assigned while down: table 2 state = %v, want NeedsRecovery", st)
	}
	if !w.NeedsRecovery() {
		t.Fatal("site with a catalog-assigned but absent replica must report NeedsRecovery")
	}
	// The phantom object refuses reads rather than serving an empty table.
	c := dialWorker(t, cl, 0)
	if err := c.Send(&wire.Msg{Type: wire.MsgScan, Txn: 902, Table: 2,
		Vis: uint8(exec.Current)}); err != nil {
		t.Fatal(err)
	}
	if m := recvTerminal(t, c); m.Type != wire.MsgErr {
		t.Fatalf("scan of the unrecovered phantom replica answered %v, want refusal", m.Type)
	}
}
