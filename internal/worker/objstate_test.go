package worker_test

import (
	"testing"
	"time"

	"harbor/internal/comm"
	"harbor/internal/exec"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

// recvTerminal drains a scan stream to its terminal frame without fataling
// on MsgErr — refusals are an expected outcome in the gating tests below.
func recvTerminal(t *testing.T, c *comm.Conn) *wire.Msg {
	t.Helper()
	for {
		m, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch m.Type {
		case wire.MsgScanEnd, wire.MsgErr:
			return m
		case wire.MsgTuple, wire.MsgTupleBatch:
			// drain
		default:
			t.Fatalf("unexpected %v in stream", m.Type)
		}
	}
}

// TestObjectStateGatesWireReads walks the per-object recovery state machine
// at the wire level: a NeedsRecovery object refuses every read; a
// HistoricalCopy object serves historical reads at or below its copied
// horizon and refuses everything past it (plus all current-visibility
// reads); a Ready object serves everything, recovery scans included.
func TestObjectStateGatesWireReads(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	var preTS tuple.Timestamp
	for i := int64(1); i <= 5; i++ {
		tx := cl.Coord.Begin()
		if err := tx.Insert(1, mk(i, i*10)); err != nil {
			t.Fatal(err)
		}
		ts, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		preTS = ts
	}
	for _, w := range cl.Workers {
		if err := w.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	cl.Workers[0].Crash()
	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty restart: the clean-shutdown marker is missing, so Open demotes
	// every object and the ping bitmap says so.
	if st, _ := w.ObjectState(1); st != worker.ObjNeedsRecovery {
		t.Fatalf("dirty open: state = %v, want NeedsRecovery", st)
	}
	live, ready, objs := comm.PingObjects(w.Addr(), time.Second)
	if !live || ready {
		t.Fatalf("ping: live=%v ready=%v, want live and not ready", live, ready)
	}
	if len(objs) != 1 || objs[0].Table != 1 || worker.ObjState(objs[0].State) != worker.ObjNeedsRecovery {
		t.Fatalf("ping bitmap: %+v", objs)
	}

	c := dialWorker(t, cl, 0)
	scan := func(vis exec.Visibility, asOf tuple.Timestamp) *wire.Msg {
		if err := c.Send(&wire.Msg{Type: wire.MsgScan, Txn: 900, Table: 1,
			Vis: uint8(vis), TS: int64(asOf)}); err != nil {
			t.Fatal(err)
		}
		return recvTerminal(t, c)
	}
	// NeedsRecovery: every visibility refused.
	if m := scan(exec.Current, 0); m.Type != wire.MsgErr {
		t.Fatalf("current scan of NeedsRecovery object answered %v, want refusal", m.Type)
	}
	if m := scan(exec.Historical, preTS); m.Type != wire.MsgErr {
		t.Fatalf("historical scan of NeedsRecovery object answered %v, want refusal", m.Type)
	}

	// Mid historical copy with horizon preTS: historical reads at or below
	// the horizon serve, anything past it — and any current read — refuses.
	w.SetObjectState(1, worker.ObjHistoricalCopy, preTS)
	if m := scan(exec.Historical, preTS); m.Type != wire.MsgScanEnd {
		t.Fatalf("historical scan at the copied horizon answered %v (%s), want a served stream", m.Type, m.Text)
	} else if m.Count != 5 {
		t.Fatalf("historical scan at horizon returned %d rows, want 5", m.Count)
	}
	if m := scan(exec.Historical, preTS+1); m.Type != wire.MsgErr {
		t.Fatalf("historical scan past the copied horizon answered %v, want refusal", m.Type)
	}
	if m := scan(exec.Current, 0); m.Type != wire.MsgErr {
		t.Fatalf("current scan of HistoricalCopy object answered %v, want refusal", m.Type)
	}
	if m := scan(exec.Historical, 0); m.Type != wire.MsgErr {
		t.Fatalf("historical scan with unresolved asOf answered %v, want refusal", m.Type)
	}
	// A refused read fault-ins the object: the recovery driver's hook fires.
	faulted := make(chan int32, 8)
	w.SetFaultInHook(func(table int32) { faulted <- table })
	_ = scan(exec.Current, 0)
	select {
	case tb := <-faulted:
		if tb != 1 {
			t.Fatalf("fault-in hook fired for table %d, want 1", tb)
		}
	default:
		t.Fatal("refused read did not fire the fault-in hook")
	}

	// Ready: everything serves again, recovery scans included, and the
	// bitmap flips.
	w.SetObjectState(1, worker.ObjReady, preTS)
	if m := scan(exec.Current, 0); m.Type != wire.MsgScanEnd {
		t.Fatalf("current scan of Ready object answered %v (%s), want a served stream", m.Type, m.Text)
	}
	if _, ready, _ := comm.PingObjects(w.Addr(), time.Second); !ready {
		t.Fatal("ping: site with all objects Ready must advertise readiness")
	}
}

// TestCleanShutdownSeedsReady pins the seeding rule: a clean shutdown writes
// the marker, so reopening the same directory brings every object up Ready —
// no recovery pass, no read refusals.
func TestCleanShutdownSeedsReady(t *testing.T) {
	cl := newCluster(t, txn.OptThreePC, worker.HARBOR, 2)
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	old := cl.Workers[1]
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	w, err := worker.Open(worker.Config{
		Site:        testutil.WorkerSiteID(1),
		Dir:         old.Cfg.Dir,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		LockTimeout: old.Cfg.LockTimeout,
		GroupCommit: true,
		Catalog:     cl.Catalog,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Workers[1] = w // hand ownership to cl.Close
	cl.Catalog.AddSite(testutil.WorkerSiteID(1), w.Addr())
	if w.NeedsRecovery() {
		t.Fatal("clean reopen must not need recovery")
	}
	if st, _ := w.ObjectState(1); st != worker.ObjReady {
		t.Fatalf("clean reopen: state = %v, want Ready", st)
	}
}
