package worker_test

import (
	"testing"
	"time"

	"harbor/internal/exec"
	"harbor/internal/faultnet"
	"harbor/internal/testutil"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// The TestConsensus* family above exercises Table 4.1 over a quiet network.
// These variants rerun the interesting rows behind a seeded faultnet with
// per-message delay+jitter on every worker and duplicate delivery armed on
// the fresh dials the backup coordinator makes — exactly the conditions
// §4.3.4 worries about: consensus messages that arrive late and more than
// once must not change the outcome or the commit timestamp.

// newFaultnetCluster installs a seeded fault network before the cluster is
// built (so every listener and dial is shaped) and arms a small delay with
// jitter on each worker.
func newFaultnetCluster(t *testing.T, seed int64, workers int) (*testutil.Cluster, *faultnet.Network) {
	t.Helper()
	nw := faultnet.New(seed)
	nw.Install()
	t.Cleanup(nw.Uninstall)
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     workers,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		GroupCommit: true,
		LockTimeout: 500 * time.Millisecond,
		BaseDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.CreateReplicatedTable(1, testDesc(), 4); err != nil {
		t.Fatal(err)
	}
	for i := range cl.Workers {
		nw.SetDelay(cl.Workers[i].Addr(), time.Millisecond, 3*time.Millisecond)
	}
	return cl, nw
}

// dupConsensusDials turns on duplicate delivery for fresh dials to every
// worker. Armed after the test's own protocol connections exist, it affects
// only the connections the backup coordinator opens for its Table 4.1
// broadcast — each replayed PTC/COMMIT/ABORT then lands twice.
func dupConsensusDials(cl *testutil.Cluster, nw *faultnet.Network, on bool) {
	for i := range cl.Workers {
		nw.SetDupOnDial(cl.Workers[i].Addr(), on)
	}
}

// TestConsensusCommitsUnderDelayAndDuplication replays Table 4.1 row 5 —
// coordinator dies after PREPARE-TO-COMMIT everywhere — with delayed,
// duplicated consensus traffic. All workers must still commit with the
// original coordinator-issued timestamp.
func TestConsensusCommitsUnderDelayAndDuplication(t *testing.T) {
	cl, nw := newFaultnetCluster(t, 1, 3)
	rt := beginRaw(t, cl, 43001, 0, 1, 2)
	rt.insert(t, 1)
	rt.prepare(t)
	rt.prepareToCommit(t, 777)
	dupConsensusDials(cl, nw, true)
	defer dupConsensusDials(cl, nw, false)
	rt.dropConns()

	for i, w := range cl.Workers {
		awaitCount(t, w, 1, 8*time.Second)
		rows, err := exec.Drain(exec.NewSeqScan(w.Store, exec.ScanSpec{Table: 1, Vis: exec.Current}))
		if err != nil {
			t.Fatal(err)
		}
		if rows[0].InsTS() != 777 {
			t.Fatalf("worker %d committed with ts %d, want the original 777", i, rows[0].InsTS())
		}
	}
}

// TestConsensusAbortsUnderDelayAndDuplication replays Table 4.1 row 3 —
// coordinator dies with every site merely prepared — under the same
// conditions. The duplicated ABORT broadcast must leave every worker
// cleanly rolled back, not wedged or half-applied.
func TestConsensusAbortsUnderDelayAndDuplication(t *testing.T) {
	cl, nw := newFaultnetCluster(t, 2, 3)
	rt := beginRaw(t, cl, 43002, 0, 1, 2)
	rt.insert(t, 1)
	rt.prepare(t)
	dupConsensusDials(cl, nw, true)
	defer dupConsensusDials(cl, nw, false)
	rt.dropConns()

	deadline := time.Now().Add(8 * time.Second)
	for i, w := range cl.Workers {
		for {
			if countRows(t, w, exec.SeeDeleted) == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d did not roll back via consensus", i)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// TestConsensusBackupDeadUnderDelay crashes the designated backup together
// with the coordinator (as in TestConsensusBackupDeadPromotesNext) while
// all surviving traffic is delayed and duplicated: the next-ranked worker
// must detect the dead backup, take over, and still commit.
func TestConsensusBackupDeadUnderDelay(t *testing.T) {
	cl, nw := newFaultnetCluster(t, 3, 3)
	rt := beginRaw(t, cl, 43003, 0, 1, 2)
	rt.insert(t, 1)
	rt.prepare(t)
	rt.prepareToCommit(t, 888)
	dupConsensusDials(cl, nw, true)
	defer dupConsensusDials(cl, nw, false)
	cl.Workers[0].Crash()
	rt.dropConns()

	for _, i := range []int{1, 2} {
		awaitCount(t, cl.Workers[i], 1, 10*time.Second)
	}
}
