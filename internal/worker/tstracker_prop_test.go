package worker

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"harbor/internal/tuple"
	"harbor/internal/txn"
)

// TestTsTrackerPropertyRandomInterleavings drives the tracker through
// randomized prepare / commit-time-known / applied / abort interleavings and
// checks the Figure 3-2 checkpoint-safety invariant after every step: the
// safe checkpoint time T must never reach the commit time of a transaction
// whose stamping is incomplete (T < ts for every issued-but-unapplied ts),
// and T must be monotone. Commit times are issued by a monotone clock
// strictly after the owning transaction's prepare, exactly as the
// coordinator's timestamp authority does.
func TestTsTrackerPropertyRandomInterleavings(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var tr tsTracker
		tr.init()

		clock := tuple.Timestamp(0) // monotone commit-time authority
		next := txn.ID(1)
		prepared := map[txn.ID]bool{}              // voted YES, ts not yet issued
		incomplete := map[txn.ID]tuple.Timestamp{} // ts issued, not fully applied
		lastSafe := tuple.Timestamp(-1)

		pick := func(m map[txn.ID]bool) txn.ID {
			i := rng.Intn(len(m))
			for id := range m {
				if i == 0 {
					return id
				}
				i--
			}
			panic("unreachable")
		}
		pickTS := func(m map[txn.ID]tuple.Timestamp) txn.ID {
			i := rng.Intn(len(m))
			for id := range m {
				if i == 0 {
					return id
				}
				i--
			}
			panic("unreachable")
		}

		for step := 0; step < 2000; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // a new transaction votes YES
				id := next
				next++
				tr.prepared(id)
				prepared[id] = true

			case op < 7 && len(prepared) > 0: // its commit time is issued
				id := pick(prepared)
				clock++
				ts := clock
				tr.commitTSKnown(id, ts)
				delete(prepared, id)
				incomplete[id] = ts

			case op < 9 && len(incomplete) > 0: // stamping completes
				id := pickTS(incomplete)
				tr.applied(id, incomplete[id])
				delete(incomplete, id)

			case len(prepared) > 0: // abort before the commit point
				id := pick(prepared)
				tr.resolved(id)
				delete(prepared, id)
			}

			safe := tr.safeCheckpointTS()
			if safe < lastSafe {
				t.Fatalf("seed %d step %d: safe T went backwards: %d -> %d", seed, step, lastSafe, safe)
			}
			lastSafe = safe
			for id, ts := range incomplete {
				if safe >= ts {
					t.Fatalf("seed %d step %d: checkpoint T=%d reaches incomplete commit ts=%d (txn %d)",
						seed, step, safe, ts, id)
				}
			}
		}
	}
}

// TestTsTrackerConcurrentCheckpointSafety stresses the tracker with many
// goroutines running full prepare→ts-known→applied lifecycles while a
// checker concurrently samples safeCheckpointTS. The check is made
// conservative by ordering: workers publish an issued ts to the shared model
// BEFORE telling the tracker and withdraw it BEFORE marking it applied, and
// the checker samples T FIRST and reads the model second — so any entry the
// checker sees was still unapplied in the tracker when T was sampled, and
// T < ts must hold. Run under -race this also exercises the tracker's own
// locking.
func TestTsTrackerConcurrentCheckpointSafety(t *testing.T) {
	var tr tsTracker
	tr.init()

	var clock atomic.Int64
	var mu sync.Mutex
	incomplete := map[txn.ID]tuple.Timestamp{}

	const workers = 8
	const perWorker = 400
	var wg sync.WaitGroup
	done := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < perWorker; i++ {
				id := txn.ID(w*perWorker + i + 1)
				tr.prepared(id)
				if rng.Intn(10) == 0 { // occasional abort before commit point
					tr.resolved(id)
					continue
				}
				ts := tuple.Timestamp(clock.Add(1))
				mu.Lock()
				incomplete[id] = ts
				mu.Unlock()
				tr.commitTSKnown(id, ts)

				mu.Lock()
				delete(incomplete, id)
				mu.Unlock()
				tr.applied(id, ts)
			}
		}(w)
	}

	var checkErr atomic.Value
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			safe := tr.safeCheckpointTS() // sample T first ...
			mu.Lock()                     // ... then read the model
			for id, ts := range incomplete {
				if safe >= ts {
					checkErr.Store(map[txn.ID]tuple.Timestamp{id: ts})
					mu.Unlock()
					return
				}
			}
			mu.Unlock()
		}
	}()

	wg.Wait()
	close(done)
	checker.Wait()
	if v := checkErr.Load(); v != nil {
		t.Fatalf("checkpoint T reached an incomplete commit: %v", v)
	}
	if got, want := tr.safeCheckpointTS(), tuple.Timestamp(clock.Load()); got != want {
		t.Fatalf("after quiescence safe T = %d, want appliedTS %d", got, want)
	}
}
