package worker

import (
	"sort"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/comm"
	"harbor/internal/lockmgr"
	"harbor/internal/txn"
	"harbor/internal/wire"
)

// handleOrphan runs when the connection owning a transaction dies without
// resolving it — the §5.5 / §4.3 coordinator-failure logic:
//
//   - pending or voted-NO transactions abort ("a worker site can safely
//     abort the transaction if ... still pending, or ... has voted NO",
//     §4.3.2) — except under an early-vote plan, where a pending writer's
//     YES was implicit in its operation acks and the commit point may
//     already have passed without any prepare round, so it must block on
//     the coordinator's outcome instead (Plan.EarlyVote);
//   - a prepared(YES) worker under a plan without consensus (the 2PC
//     family and the 1PC fast path) must wait for the coordinator to
//     recover (blocking), implemented as a background poll of the
//     coordinator's transaction-outcome service;
//   - under consensus plans (the 3PC family) the workers run the consensus
//     building protocol (§4.3.3) led by a backup coordinator.
func (s *Site) handleOrphan(id txn.ID) {
	if s.crashed.Load() {
		return
	}
	w := s.getTxn(id, false)
	if w == nil {
		return
	}
	s.mu.Lock()
	state := w.state
	s.mu.Unlock()
	if state.Terminal() {
		return
	}
	if !w.didWrite {
		// Read-only transaction: just release its resources.
		s.Locks.ReleaseAll(lockmgr.TxnID(id))
		s.setState(w, txn.StateAborted)
		s.forget(id)
		return
	}
	switch {
	case state == txn.StatePreparedNo,
		state == txn.StatePending && !s.plan.EarlyVote:
		_ = s.Store.Abort(lockmgr.TxnID(id))
		s.setState(w, txn.StateAborted)
		s.aborts.Add(1)
	case s.plan.Consensus: // prepared(YES) or prepared-to-commit
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.runConsensus(id)
		}()
	default: // prepared(YES), or an early-vote pending writer: block
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.awaitCoordinatorOutcome(id)
		}()
	}
}

// awaitCoordinatorOutcome is the blocking 2PC path: poll the coordinator's
// recovery server until it answers, then apply the outcome locally.
func (s *Site) awaitCoordinatorOutcome(id txn.ID) {
	if s.Cfg.Catalog == nil {
		return
	}
	coordAddr, ok := s.Cfg.Catalog.SiteAddr(s.Cfg.Catalog.Coordinator())
	if !ok {
		return
	}
	for i := 0; i < 600; i++ {
		if s.crashed.Load() {
			return
		}
		if st, _, ok := s.TxnState(id); !ok || st.Terminal() {
			return
		}
		c, err := comm.Dial(coordAddr)
		if err == nil {
			resp, err := c.Call(&wire.Msg{Type: wire.MsgTxnOutcome, Txn: id})
			c.Close()
			// Apply only a recorded outcome; an undecided reply means the
			// transaction is still in flight (we may merely be evicted) and
			// a prepared 2PC worker must keep blocking (§4.3.2).
			if err == nil && resp.Flags&wire.FlagKnown != 0 {
				if resp.Yes() {
					s.applyLocal(id, wire.MsgCommit, resp.TS)
				} else {
					s.applyLocal(id, wire.MsgAbort, 0)
				}
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// applyLocal drives a commit/abort through the normal handler paths.
func (s *Site) applyLocal(id txn.ID, typ wire.Type, ts int64) {
	owned := map[txn.ID]bool{}
	switch typ {
	case wire.MsgPrepare:
		s.handlePrepare(&wire.Msg{Type: typ, Txn: id}, owned)
	case wire.MsgPrepareToCommit:
		s.handlePrepareToCommit(&wire.Msg{Type: typ, Txn: id, TS: ts}, owned)
	case wire.MsgCommit:
		s.handleCommit(&wire.Msg{Type: typ, Txn: id, TS: ts}, owned)
	case wire.MsgCommitFast:
		s.handleCommitFast(&wire.Msg{Type: typ, Txn: id, TS: ts}, owned)
	case wire.MsgAbort:
		s.handleAbort(&wire.Msg{Type: typ, Txn: id}, owned)
	}
}

// runConsensus executes the §4.3.3 consensus building protocol for a
// transaction whose coordinator died. The backup coordinator is chosen by
// the pre-assigned ranking — the lowest-numbered live participant. A
// non-backup worker waits for the backup to resolve the transaction and
// promotes itself if the backup dies too.
func (s *Site) runConsensus(id txn.ID) {
	w := s.getTxn(id, false)
	if w == nil {
		return
	}
	// §5.5: a worker whose transaction connection died cannot tell a dead
	// coordinator from its own eviction (§4.3.5's K-1 commit drops a slow
	// worker and finishes the transaction without it). Ask the coordinator
	// first: if it is reachable it either has the recorded outcome — the
	// transaction went on without us; apply its decision — or will record
	// one shortly, in which case racing it with a backup-coordinator abort
	// could kill a transaction the client was already promised. Only an
	// unreachable coordinator, or one that never ran this transaction,
	// leaves resolution to the consensus protocol below.
	if s.askCoordinatorOutcome(id) {
		return
	}
	s.mu.Lock()
	parts := append([]int32(nil), w.participants...)
	s.mu.Unlock()
	if len(parts) == 0 {
		// Without a participant list (pre-PREPARE failure) abort safely.
		s.applyLocal(id, wire.MsgAbort, 0)
		return
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	for _, p := range parts {
		if s.crashed.Load() {
			return
		}
		if st, _, ok := s.TxnState(id); !ok || st.Terminal() {
			return
		}
		if catalog.SiteID(p) == s.Cfg.Site {
			s.actAsBackupCoordinator(id, parts)
			return
		}
		// A lower-ranked live participant is the backup; give it time.
		addr, ok := s.Cfg.Catalog.SiteAddr(catalog.SiteID(p))
		if ok && comm.Ping(addr, 500*time.Millisecond) {
			if st, done := s.awaitTerminal(id, 5*time.Second); done && st.Terminal() {
				return
			}
			// Backup alive but silent; fall through and try the next rank
			// (it may itself be waiting on a dead lower rank).
			continue
		}
		// Backup candidate dead: next rank takes over.
	}
}

// askCoordinatorOutcome polls the coordinator's outcome service for a
// bounded window. It returns true when the transaction was resolved — from
// the coordinator's recorded outcome, or concurrently by someone else —
// and false when the coordinator is unreachable or has no record of the
// transaction after the window (a genuinely dead coordinator; §4.3.3
// consensus takes over).
func (s *Site) askCoordinatorOutcome(id txn.ID) bool {
	if s.Cfg.Catalog == nil {
		return false
	}
	coordAddr, ok := s.Cfg.Catalog.SiteAddr(s.Cfg.Catalog.Coordinator())
	if !ok {
		return false
	}
	for i := 0; i < 10; i++ {
		if s.crashed.Load() {
			return true
		}
		if st, _, ok := s.TxnState(id); !ok || st.Terminal() {
			return true
		}
		c, err := comm.Dial(coordAddr)
		if err != nil {
			return false
		}
		resp, err := c.Call(&wire.Msg{Type: wire.MsgTxnOutcome, Txn: id})
		c.Close()
		if err != nil {
			return false
		}
		if resp.Flags&wire.FlagKnown != 0 {
			if resp.Yes() {
				s.applyLocal(id, wire.MsgCommit, resp.TS)
			} else {
				s.applyLocal(id, wire.MsgAbort, 0)
			}
			return true
		}
		// Reachable but undecided: the transaction may still be mid-round
		// at a live coordinator. Stay out of its way and re-poll.
		time.Sleep(150 * time.Millisecond)
	}
	return false
}

// actAsBackupCoordinator implements Table 4.1. The backup decides from its
// local state, drives the remaining participants over fresh connections,
// and disregards unreachable ones (they will recover and learn the outcome
// through recovery).
func (s *Site) actAsBackupCoordinator(id txn.ID, parts []int32) {
	st, ts, ok := s.TxnState(id)
	if !ok {
		return
	}
	bcast := func(typ wire.Type, ts int64) {
		for _, p := range parts {
			if catalog.SiteID(p) == s.Cfg.Site {
				s.applyLocal(id, typ, ts)
				continue
			}
			addr, ok := s.Cfg.Catalog.SiteAddr(catalog.SiteID(p))
			if !ok {
				continue
			}
			c, err := comm.Dial(addr)
			if err != nil {
				continue
			}
			_, _ = c.Call(&wire.Msg{Type: typ, Txn: id, TS: ts})
			c.Close()
		}
	}
	switch st {
	case txn.StatePending, txn.StatePreparedNo, txn.StateAborted:
		// No site could have reached prepared-to-commit: abort everywhere.
		bcast(wire.MsgAbort, 0)
	case txn.StatePreparedYes:
		// No site can have committed: bring everyone to prepared, then
		// abort (Table 4.1 row 3).
		bcast(wire.MsgPrepare, 0)
		bcast(wire.MsgAbort, 0)
	case txn.StatePreparedToCommit:
		// No site can have aborted: replay the last two phases with the
		// commit time received from the old coordinator.
		bcast(wire.MsgPrepareToCommit, ts)
		bcast(wire.MsgCommit, ts)
	case txn.StateCommitted:
		bcast(wire.MsgCommit, ts)
	}
}
