package worker

import (
	"errors"

	"harbor/internal/storage"
)

// SetRepairHook installs the online torn-page repair callback. The worker
// itself cannot import the recovery engine (core imports worker), so the
// process that assembles a site — the cluster harness or the worker binary —
// wires core's Recoverer.RepairTable in here. With no hook installed,
// corrupt pages simply stay quarantined.
func (s *Site) SetRepairHook(fn func(table int32) error) {
	s.repairMu.Lock()
	s.repairHook = fn
	s.repairMu.Unlock()
}

// noteCorrupt inspects a data-path error and, on the first ErrPageCorrupt
// sighting for a table, fires the repair hook in the background. The failing
// request still returns its error — the coordinator replans it to a healthy
// replica — while the repair restores the page from a buddy so later reads
// here succeed. At most one repair runs per table at a time; a failed
// attempt (buddy down, repair deferred) re-arms on the next corrupt read.
func (s *Site) noteCorrupt(err error) {
	var pce *storage.PageCorruptError
	if err == nil || !errors.As(err, &pce) || s.crashed.Load() {
		return
	}
	s.repairMu.Lock()
	fn := s.repairHook
	if fn == nil || s.repairBusy[pce.Table] {
		s.repairMu.Unlock()
		return
	}
	if s.repairBusy == nil {
		s.repairBusy = map[int32]bool{}
	}
	s.repairBusy[pce.Table] = true
	s.repairMu.Unlock()

	table := pce.Table
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			s.repairMu.Lock()
			delete(s.repairBusy, table)
			s.repairMu.Unlock()
		}()
		if err := fn(table); err != nil {
			s.reg.Counter("recover.page_repair_errors").Inc()
		}
	}()
}
