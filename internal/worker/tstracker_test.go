package worker

import "testing"

// The tsTracker computes the safe Figure 3-2 checkpoint time. These tests
// pin the exact scenario that motivated it: a commit whose COMMIT message
// is still in flight must hold the checkpoint back even though a later
// commit already applied.
func TestTrackerBasicAdvance(t *testing.T) {
	var tr tsTracker
	tr.init()
	if got := tr.safeCheckpointTS(); got != 0 {
		t.Fatalf("fresh tracker safe T = %d", got)
	}
	tr.prepared(1)
	tr.commitTSKnown(1, 5)
	tr.applied(1, 5)
	if got := tr.safeCheckpointTS(); got != 5 {
		t.Fatalf("safe T = %d, want 5", got)
	}
}

func TestTrackerInFlightCommitBlocksCheckpoint(t *testing.T) {
	var tr tsTracker
	tr.init()
	// Txn A prepared; its commit time is not yet known.
	tr.prepared(1)
	// Txn B commits fully with ts 7 (it overtook A on the wire).
	tr.prepared(2)
	tr.commitTSKnown(2, 7)
	tr.applied(2, 7)
	// A's eventual ts could be less than 7? No — it will be issued after
	// A's prepare, hence greater than everything applied at prepare time
	// (0). The checkpoint may only advance to A's barrier.
	if got := tr.safeCheckpointTS(); got != 0 {
		t.Fatalf("safe T = %d, want 0 (A's prepare barrier)", got)
	}
	// Once A's commit time (say 6) is known, the bound becomes ts-1 = 5.
	tr.commitTSKnown(1, 6)
	if got := tr.safeCheckpointTS(); got != 5 {
		t.Fatalf("safe T = %d, want 5", got)
	}
	tr.applied(1, 6)
	if got := tr.safeCheckpointTS(); got != 7 {
		t.Fatalf("safe T = %d, want 7", got)
	}
}

func TestTrackerAbortClears(t *testing.T) {
	var tr tsTracker
	tr.init()
	tr.prepared(1)
	tr.commitTSKnown(2, 9)
	tr.resolved(1)
	tr.resolved(2)
	if got := tr.safeCheckpointTS(); got != 0 {
		t.Fatalf("safe T = %d after aborts, want 0", got)
	}
	tr.applied(3, 4)
	if got := tr.safeCheckpointTS(); got != 4 {
		t.Fatalf("safe T = %d, want 4", got)
	}
}

func TestTrackerBarrierReflectsAppliedAtPrepareTime(t *testing.T) {
	var tr tsTracker
	tr.init()
	tr.applied(1, 10)
	tr.prepared(2) // barrier = 10
	tr.applied(3, 20)
	// Checkpoint can advance to 10 (everything ≤ 10 applied; txn 2's
	// eventual commit time must exceed 10).
	if got := tr.safeCheckpointTS(); got != 10 {
		t.Fatalf("safe T = %d, want 10", got)
	}
}
