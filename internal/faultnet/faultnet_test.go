package faultnet

import (
	"errors"
	"strings"
	"testing"
	"time"

	"harbor/internal/comm"
	"harbor/internal/wire"
)

// startEcho starts an echo server with nw installed, so both halves of
// every connection are fault-wrapped.
func startEcho(t *testing.T, nw *Network) *comm.Server {
	t.Helper()
	nw.Install()
	t.Cleanup(nw.Uninstall)
	s, err := comm.Listen("127.0.0.1:0", comm.HandlerFunc(func(c *comm.Conn) {
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(&wire.Msg{Type: wire.MsgOK, Text: m.Text}); err != nil {
				return
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustDial(t *testing.T, addr string) *comm.Conn {
	t.Helper()
	c, err := comm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPassthrough(t *testing.T) {
	nw := New(1)
	s := startEcho(t, nw)
	c := mustDial(t, s.Addr())
	resp, err := c.Call(&wire.Msg{Type: wire.MsgScan, Text: "hello"})
	if err != nil || resp.Text != "hello" {
		t.Fatalf("echo through faultnet: resp=%v err=%v", resp, err)
	}
}

func TestPartitionBlocksThenHealCloses(t *testing.T) {
	nw := New(2)
	s := startEcho(t, nw)
	c := mustDial(t, s.Addr())
	if _, err := c.Call(&wire.Msg{Type: wire.MsgScan, Text: "a"}); err != nil {
		t.Fatal(err)
	}

	nw.Partition(s.Addr(), Both)

	// Requests toward the site are swallowed: Send "succeeds", the reply
	// never comes, and the deadline converts the gated read to ErrTimeout.
	if err := c.Send(&wire.Msg{Type: wire.MsgScan, Text: "lost"}); err != nil {
		t.Fatalf("partitioned send should be swallowed, got %v", err)
	}
	if _, err := c.RecvTimeout(100 * time.Millisecond); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("recv during partition: want ErrTimeout, got %v", err)
	}

	// New dials fail while partitioned.
	if _, err := comm.DialTimeout(s.Addr(), 100*time.Millisecond); err == nil {
		t.Fatal("dial succeeded into partition")
	}

	// Heal closes the conn that lost data; a fresh dial works.
	nw.Heal(s.Addr())
	if _, err := c.RecvTimeout(200 * time.Millisecond); err == nil || errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("poisoned conn should be dead after heal, got %v", err)
	}
	c2 := mustDial(t, s.Addr())
	if resp, err := c2.Call(&wire.Msg{Type: wire.MsgScan, Text: "b"}); err != nil || resp.Text != "b" {
		t.Fatalf("post-heal call: resp=%v err=%v", resp, err)
	}
}

func TestOneWayPartitionOutDeliversRequestBlocksReply(t *testing.T) {
	nw := New(3)
	nw.Install()
	t.Cleanup(nw.Uninstall)
	got := make(chan string, 4)
	s, err := comm.Listen("127.0.0.1:0", comm.HandlerFunc(func(c *comm.Conn) {
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			got <- m.Text
			if err := c.Send(&wire.Msg{Type: wire.MsgOK}); err != nil {
				return
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	c := mustDial(t, s.Addr())
	nw.Partition(s.Addr(), Out)

	if err := c.Send(&wire.Msg{Type: wire.MsgScan, Text: "oneway"}); err != nil {
		t.Fatal(err)
	}
	select {
	case txt := <-got:
		if txt != "oneway" {
			t.Fatalf("server got %q", txt)
		}
	case <-time.After(time.Second):
		t.Fatal("request never reached server through Out-only partition")
	}
	if _, err := c.RecvTimeout(100 * time.Millisecond); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("reply should be blocked, got %v", err)
	}
	nw.HealAll()
}

func TestStallDelaysButDelivers(t *testing.T) {
	nw := New(4)
	s := startEcho(t, nw)
	c := mustDial(t, s.Addr())

	const stall = 150 * time.Millisecond
	nw.Stall(s.Addr(), stall, Out)
	start := time.Now()
	resp, err := c.CallRawTimeout(&wire.Msg{Type: wire.MsgScan, Text: "late"}, 2*time.Second)
	if err != nil || resp.Text != "late" {
		t.Fatalf("stalled call: resp=%v err=%v", resp, err)
	}
	if el := time.Since(start); el < stall-10*time.Millisecond {
		t.Fatalf("stalled reply arrived after %v, want >= %v", el, stall)
	}
}

// TestStallProducesLateResponse is the PR 1 hazard in miniature: the round
// deadline fires first (ErrTimeout), then the response arrives late on the
// same conn — exactly why timed-out conns must be dropped, not pooled.
func TestStallProducesLateResponse(t *testing.T) {
	nw := New(5)
	s := startEcho(t, nw)
	c := mustDial(t, s.Addr())

	nw.Stall(s.Addr(), 200*time.Millisecond, Out)
	if err := c.Send(&wire.Msg{Type: wire.MsgScan, Text: "stale"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvTimeout(50 * time.Millisecond); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("want round timeout, got %v", err)
	}
	// The stalled response is still in flight and lands afterwards.
	resp, err := c.RecvTimeout(time.Second)
	if err != nil || resp.Text != "stale" {
		t.Fatalf("late response: resp=%v err=%v", resp, err)
	}
}

func TestDelayAddsLatency(t *testing.T) {
	nw := New(6)
	s := startEcho(t, nw)
	c := mustDial(t, s.Addr())

	const d = 40 * time.Millisecond
	nw.SetDelay(s.Addr(), d, 0)
	start := time.Now()
	if _, err := c.Call(&wire.Msg{Type: wire.MsgScan, Text: "slow"}); err != nil {
		t.Fatal(err)
	}
	// Delay applies to the request write and the reply read.
	if el := time.Since(start); el < 2*d-10*time.Millisecond {
		t.Fatalf("delayed round trip took %v, want >= %v", el, 2*d)
	}
}

func TestBandwidthThrottle(t *testing.T) {
	nw := New(7)
	s := startEcho(t, nw)
	c := mustDial(t, s.Addr())

	payload := strings.Repeat("x", 20<<10)
	nw.SetBandwidth(s.Addr(), 200<<10) // 20KB each way at 200KB/s ≈ 200ms round trip
	start := time.Now()
	resp, err := c.Call(&wire.Msg{Type: wire.MsgScan, Text: payload})
	if err != nil || resp.Text != payload {
		t.Fatalf("throttled call failed: err=%v", err)
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("throttled round trip took %v, want >= 150ms", el)
	}
}

func TestDupOnDialDeliversFirstMessageTwice(t *testing.T) {
	nw := New(8)
	nw.Install()
	t.Cleanup(nw.Uninstall)
	got := make(chan string, 8)
	s, err := comm.Listen("127.0.0.1:0", comm.HandlerFunc(func(c *comm.Conn) {
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			got <- m.Text
			if err := c.Send(&wire.Msg{Type: wire.MsgOK, Text: m.Text}); err != nil {
				return
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	nw.SetDupOnDial(s.Addr(), true)
	c := mustDial(t, s.Addr())
	resp, err := c.Call(&wire.Msg{Type: wire.MsgScan, Text: "dup"})
	if err != nil || resp.Text != "dup" {
		t.Fatalf("call with dup: resp=%v err=%v", resp, err)
	}
	for i := 0; i < 2; i++ {
		select {
		case txt := <-got:
			if txt != "dup" {
				t.Fatalf("server got %q", txt)
			}
		case <-time.After(time.Second):
			t.Fatalf("server saw %d copies, want 2 (duplicate delivery at reconnect)", i)
		}
	}
	// The duplicate's extra reply stays queued; the conn is intentionally
	// desynced — exactly why dup only arms on fresh dials used Call-once.
	nw.SetDupOnDial(s.Addr(), false)
	c2 := mustDial(t, s.Addr())
	if resp, err := c2.Call(&wire.Msg{Type: wire.MsgScan, Text: "clean"}); err != nil || resp.Text != "clean" {
		t.Fatalf("post-dup fresh conn: resp=%v err=%v", resp, err)
	}
}

func TestDropConnsIsFailStopSignal(t *testing.T) {
	nw := New(9)
	s := startEcho(t, nw)
	c := mustDial(t, s.Addr())
	if _, err := c.Call(&wire.Msg{Type: wire.MsgScan, Text: "up"}); err != nil {
		t.Fatal(err)
	}
	nw.DropConns(s.Addr())
	if _, err := c.CallRawTimeout(&wire.Msg{Type: wire.MsgScan, Text: "down"}, time.Second); err == nil {
		t.Fatal("call succeeded on dropped conn")
	}
	// The site itself is alive: reconnect works immediately.
	c2 := mustDial(t, s.Addr())
	if _, err := c2.Call(&wire.Msg{Type: wire.MsgScan, Text: "again"}); err != nil {
		t.Fatalf("reconnect after DropConns: %v", err)
	}
}

func TestTraceRecordsSchedule(t *testing.T) {
	nw := New(10)
	s := startEcho(t, nw)
	nw.Name(s.Addr(), "site1")
	nw.Partition(s.Addr(), In)
	nw.Heal(s.Addr())
	tr := strings.Join(nw.Trace(), "\n")
	for _, want := range []string{"partition site1 dir=in", "heal site1"} {
		if !strings.Contains(tr, want) {
			t.Fatalf("trace missing %q:\n%s", want, tr)
		}
	}
}
