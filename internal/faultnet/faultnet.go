// Package faultnet is a deterministic network fault injector for the comm
// layer. The thesis assumes fail-stop failures detected through abruptly
// closed TCP connections (§5.5); the hard bugs live in the gray zone that
// assumption elides — slow links, stalled peers, partitions that heal,
// messages that arrive late or twice. faultnet makes that gray zone a
// first-class, scriptable input: a Network wraps every connection the comm
// package dials or accepts (via the comm.Dialer / comm.WrapListener hooks)
// and applies per-site fault state to each read and write, so coordinator
// fan-out, worker consensus, recovery streaming, and join replay all run
// under injected faults with zero call-site changes.
//
// Faults are keyed by site address (the listener address every peer dials):
//
//	Partition   – In: data toward the site is silently discarded (the
//	              sender's small writes still "succeed", as with real
//	              packet loss and kernel buffering); Out: data from the
//	              site blocks at the receiver. Healing closes every conn
//	              that lost data (TCP would have died of retransmission
//	              timeout) and unblocks dials.
//	Stall       – like a partition but time-bounded and lossless: IO in
//	              the stalled direction blocks until the deadline, then
//	              the bytes flow — producing exactly the "evicted worker
//	              with a late response in flight" hazard.
//	Delay       – fixed plus seeded-jitter latency per IO on the link.
//	Throttle    – bandwidth cap in bytes/second.
//	DropConns   – abruptly closes every conn of the site: the pure §5.5
//	              fail-stop signal while the site itself stays alive.
//	DupOnDial   – while armed, each new conn to the site delivers its
//	              first write twice: duplicate delivery at reconnect, the
//	              classic retry ambiguity of message-passing protocols.
//
// All randomness (jitter) derives from the Network's seed and a per-conn
// sequence number, so a fault schedule replays identically for a given
// seed regardless of goroutine interleaving.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"harbor/internal/comm"
)

// Direction selects which data flow a partition or stall affects, relative
// to the faulted site.
type Direction uint8

const (
	// In faults data flowing into the site (requests toward a worker).
	In Direction = 1 << iota
	// Out faults data flowing out of the site (its responses).
	Out
	// Both faults the two directions.
	Both = In | Out
)

// String renders the direction.
func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case Both:
		return "both"
	}
	return fmt.Sprintf("Direction(%d)", uint8(d))
}

// gatePoll is how often blocked IO re-checks fault state; small enough that
// heals and deadlines are observed promptly, large enough to stay cheap.
const gatePoll = time.Millisecond

// siteState is the fault configuration of one site (listener address).
type siteState struct {
	addr string
	name string

	dialBlocked   bool
	partIn        bool
	partOut       bool
	stallInUntil  time.Time
	stallOutUntil time.Time
	delay         time.Duration
	jitter        time.Duration
	bytesPerSec   int64
	dupOnDial     bool
}

// label names the site for traces.
func (st *siteState) label() string {
	if st.name != "" {
		return st.name
	}
	return st.addr
}

// Network is one fault-injection fabric. Zero faults means transparent
// passthrough; faults are toggled per site while traffic runs.
type Network struct {
	seed int64

	mu        sync.Mutex
	sites     map[string]*siteState
	conns     map[*Conn]struct{}
	connSeq   int64
	installed bool
	prevDial  func(string, time.Duration) (net.Conn, error)
	prevWrap  func(net.Listener) net.Listener
	t0        time.Time
	trace     []string
}

// New creates a Network whose jitter streams derive from seed.
func New(seed int64) *Network {
	return &Network{
		seed:  seed,
		sites: map[string]*siteState{},
		conns: map[*Conn]struct{}{},
		t0:    time.Now(),
	}
}

// Seed returns the network's seed (printed with every violation so a chaos
// failure reproduces).
func (nw *Network) Seed() int64 { return nw.seed }

// Install routes the comm package's transport through this network.
// Install before any listener or dial the faults should cover (cluster
// construction included) and Uninstall only after all traffic quiesced.
func (nw *Network) Install() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.installed {
		return
	}
	nw.installed = true
	nw.prevDial, nw.prevWrap = comm.Dialer, comm.WrapListener
	comm.Dialer = nw.dial
	comm.WrapListener = nw.wrapListener
}

// Uninstall restores the transport hooks Install replaced.
func (nw *Network) Uninstall() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if !nw.installed {
		return
	}
	nw.installed = false
	comm.Dialer, comm.WrapListener = nw.prevDial, nw.prevWrap
}

// Name attaches a human-readable name to a site address for traces.
func (nw *Network) Name(addr, name string) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.siteLocked(addr).name = name
}

// Trace returns the fault-event log (each entry stamped with the offset
// from New), for attaching to invariant-violation reports.
func (nw *Network) Trace() []string {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]string(nil), nw.trace...)
}

func (nw *Network) siteLocked(addr string) *siteState {
	st, ok := nw.sites[addr]
	if !ok {
		st = &siteState{addr: addr}
		nw.sites[addr] = st
	}
	return st
}

func (nw *Network) tracefLocked(format string, args ...any) {
	nw.trace = append(nw.trace,
		fmt.Sprintf("t=+%s ", time.Since(nw.t0).Round(time.Millisecond))+fmt.Sprintf(format, args...))
}

// Partition cuts the given direction(s) of a site's links until Heal: dials
// fail, writes toward the site are discarded, reads from it block.
func (nw *Network) Partition(addr string, dir Direction) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	st := nw.siteLocked(addr)
	st.dialBlocked = true
	st.partIn = st.partIn || dir&In != 0
	st.partOut = st.partOut || dir&Out != 0
	nw.tracefLocked("partition %s dir=%s", st.label(), dir)
}

// Heal lifts a site's partition. Connections that lost data while
// partitioned are closed abruptly (a real partition of that length would
// have killed them by retransmission timeout); idle connections survive.
func (nw *Network) Heal(addr string) {
	nw.mu.Lock()
	st := nw.siteLocked(addr)
	st.dialBlocked, st.partIn, st.partOut = false, false, false
	var poisoned []*Conn
	for c := range nw.conns {
		if c.site == st && c.poisoned.Load() {
			poisoned = append(poisoned, c)
		}
	}
	nw.tracefLocked("heal %s (%d poisoned conns closed)", st.label(), len(poisoned))
	nw.mu.Unlock()
	for _, c := range poisoned {
		c.Close()
	}
}

// HealAll lifts every fault on every site (partitions, stalls, delay,
// throttle, duplication) and closes poisoned connections.
func (nw *Network) HealAll() {
	nw.mu.Lock()
	var poisoned []*Conn
	for _, st := range nw.sites {
		*st = siteState{addr: st.addr, name: st.name}
	}
	for c := range nw.conns {
		if c.poisoned.Load() {
			poisoned = append(poisoned, c)
		}
	}
	nw.tracefLocked("heal all (%d poisoned conns closed)", len(poisoned))
	nw.mu.Unlock()
	for _, c := range poisoned {
		c.Close()
	}
}

// Stall blocks the given direction(s) of a site's links for d, then lets
// the buffered bytes flow. Unlike a partition nothing is lost: responses
// arrive late — after any round deadline has already evicted the site.
func (nw *Network) Stall(addr string, d time.Duration, dir Direction) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	st := nw.siteLocked(addr)
	until := time.Now().Add(d)
	if dir&In != 0 {
		st.stallInUntil = until
	}
	if dir&Out != 0 {
		st.stallOutUntil = until
	}
	nw.tracefLocked("stall %s dir=%s for %s", st.label(), dir, d)
}

// SetDelay adds fixed-plus-jitter latency to each IO on the site's links
// (jitter uniform in [0, jitter), drawn from the conn's seeded stream).
func (nw *Network) SetDelay(addr string, delay, jitter time.Duration) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	st := nw.siteLocked(addr)
	st.delay, st.jitter = delay, jitter
	nw.tracefLocked("delay %s %s±%s", st.label(), delay, jitter)
}

// SetBandwidth throttles the site's links to n bytes/second (0 removes the
// throttle).
func (nw *Network) SetBandwidth(addr string, n int64) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	st := nw.siteLocked(addr)
	st.bytesPerSec = n
	nw.tracefLocked("throttle %s %dB/s", st.label(), n)
}

// SetDupOnDial arms (or disarms) duplicate delivery at reconnect: while
// armed, every new connection to the site writes its first message twice.
func (nw *Network) SetDupOnDial(addr string, on bool) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	st := nw.siteLocked(addr)
	st.dupOnDial = on
	nw.tracefLocked("dup-on-dial %s %v", st.label(), on)
}

// DropConns abruptly closes every connection of a site — the §5.5
// fail-stop signal without the site actually failing.
func (nw *Network) DropConns(addr string) {
	nw.mu.Lock()
	st := nw.siteLocked(addr)
	var drop []*Conn
	for c := range nw.conns {
		if c.site == st {
			drop = append(drop, c)
		}
	}
	nw.tracefLocked("drop %d conns of %s", len(drop), st.label())
	nw.mu.Unlock()
	for _, c := range drop {
		c.Close()
	}
}

// partitionErr is the dial-time error of a partitioned site.
type partitionErr struct{ addr string }

func (e *partitionErr) Error() string   { return "faultnet: " + e.addr + " unreachable (partitioned)" }
func (e *partitionErr) Timeout() bool   { return false }
func (e *partitionErr) Temporary() bool { return true }

// dial is the comm.Dialer implementation.
func (nw *Network) dial(addr string, timeout time.Duration) (net.Conn, error) {
	nw.mu.Lock()
	st := nw.siteLocked(addr)
	if st.dialBlocked {
		nw.mu.Unlock()
		return nil, &partitionErr{addr: addr}
	}
	dup := st.dupOnDial
	nw.mu.Unlock()
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return nw.newConn(nc, st, true, dup), nil
}

// wrapListener is the comm.WrapListener implementation.
func (nw *Network) wrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, nw: nw}
}

type listener struct {
	net.Listener
	nw *Network
}

// Accept wraps each accepted conn so faults and drops reach the server
// half too. Delay/throttle apply only on the dialed half (applying on both
// would double the simulated latency).
func (l *listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	l.nw.mu.Lock()
	st := l.nw.siteLocked(l.Listener.Addr().String())
	l.nw.mu.Unlock()
	return l.nw.newConn(nc, st, false, false), nil
}

func (nw *Network) newConn(nc net.Conn, st *siteState, dialed, dup bool) *Conn {
	nw.mu.Lock()
	nw.connSeq++
	// splitmix-style stream derivation: one independent deterministic
	// jitter stream per conn, independent of goroutine interleaving.
	src := rand.NewSource(nw.seed ^ (nw.connSeq * int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF)))
	c := &Conn{nc: nc, nw: nw, site: st, dialed: dialed, dupFirstWrite: dup, rng: rand.New(src)}
	nw.conns[c] = struct{}{}
	nw.mu.Unlock()
	return c
}

func (nw *Network) forget(c *Conn) {
	nw.mu.Lock()
	delete(nw.conns, c)
	nw.mu.Unlock()
}

// timeoutErr satisfies net.Error with Timeout()==true so comm.RecvTimeout
// converts gated-past-deadline reads into comm.ErrTimeout.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "faultnet: i/o timeout (gated)" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// errClosed mirrors a read/write on a conn the injector closed.
type errClosed struct{}

func (errClosed) Error() string   { return "faultnet: connection closed by fault injector" }
func (errClosed) Timeout() bool   { return false }
func (errClosed) Temporary() bool { return false }

// Conn is one fault-injected connection half, keyed to the site whose
// address was dialed (client half) or listened on (server half).
type Conn struct {
	nc     net.Conn
	nw     *Network
	site   *siteState
	dialed bool

	closed   atomic.Bool
	poisoned atomic.Bool // lost data during a partition; closed at heal

	rdDeadline atomic.Int64 // unix nanos; 0 = none
	wrDeadline atomic.Int64

	wmu           sync.Mutex // guards dup-delivery state
	dupFirstWrite bool
	wroteOnce     bool

	rngmu sync.Mutex // guards rng, drawn from by both the read and write paths
	rng   *rand.Rand
}

// direction of an IO op relative to the conn's site.
func (c *Conn) dir(isWrite bool) Direction {
	if c.dialed == isWrite {
		return In // writes on the dialed half and reads on the server half carry data INTO the site
	}
	return Out
}

// snapshot reads the site's fault state under the network lock.
func (c *Conn) snapshot() siteState {
	c.nw.mu.Lock()
	st := *c.site
	c.nw.mu.Unlock()
	return st
}

// gate enforces partitions and stalls for one IO op. It returns
// (discard=true) when a partitioned write should be swallowed, or an error
// when the conn closed or the op's deadline passed while gated.
func (c *Conn) gate(isWrite bool) (discard bool, err error) {
	dir := c.dir(isWrite)
	deadline := c.rdDeadline.Load()
	if isWrite {
		deadline = c.wrDeadline.Load()
	}
	for {
		if c.closed.Load() {
			return false, errClosed{}
		}
		st := c.snapshot()
		now := time.Now()
		partitioned := (dir == In && st.partIn) || (dir == Out && st.partOut)
		if partitioned {
			if isWrite {
				// Swallow the bytes; the stream has now lost data and
				// must die when the partition heals.
				c.poisoned.Store(true)
				return true, nil
			}
			c.poisoned.Store(true)
			if deadline != 0 && now.UnixNano() > deadline {
				return false, timeoutErr{}
			}
			time.Sleep(gatePoll)
			continue
		}
		stallUntil := st.stallInUntil
		if dir == Out {
			stallUntil = st.stallOutUntil
		}
		if now.Before(stallUntil) {
			if deadline != 0 && now.UnixNano() > deadline {
				return false, timeoutErr{}
			}
			time.Sleep(gatePoll)
			continue
		}
		return false, nil
	}
}

// pace applies delay, jitter, and bandwidth to n transferred bytes.
// Applied on the dialed half only; the server half passes through.
func (c *Conn) pace(n int) {
	if !c.dialed || n <= 0 {
		return
	}
	st := c.snapshot()
	d := st.delay
	if st.jitter > 0 {
		c.rngmu.Lock()
		d += time.Duration(c.rng.Int63n(int64(st.jitter)))
		c.rngmu.Unlock()
	}
	if st.bytesPerSec > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / st.bytesPerSec)
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if _, err := c.gate(false); err != nil {
		return 0, err
	}
	n, err := c.nc.Read(p)
	c.pace(n)
	return n, err
}

// Write implements net.Conn. A write during an inbound partition reports
// success and discards the bytes (kernel-buffer semantics of packet loss);
// while dup-on-dial is armed the conn's first write is delivered twice.
func (c *Conn) Write(p []byte) (int, error) {
	discard, err := c.gate(true)
	if err != nil {
		return 0, err
	}
	if discard {
		return len(p), nil
	}
	c.pace(len(p))
	c.wmu.Lock()
	dup := c.dupFirstWrite && !c.wroteOnce
	c.wroteOnce = true
	c.wmu.Unlock()
	n, err := c.nc.Write(p)
	if err == nil && dup && n == len(p) {
		if _, derr := c.nc.Write(p); derr == nil {
			c.nw.mu.Lock()
			c.nw.tracefLocked("duplicated first frame to %s (%dB)", c.site.label(), n)
			c.nw.mu.Unlock()
		}
	}
	return n, err
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.closed.Store(true)
	c.nw.forget(c)
	return c.nc.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.storeDeadline(&c.rdDeadline, t)
	c.storeDeadline(&c.wrDeadline, t)
	return c.nc.SetDeadline(t)
}

// SetReadDeadline implements net.Conn; the deadline also bounds time spent
// gated on a partition or stall.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.storeDeadline(&c.rdDeadline, t)
	return c.nc.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.storeDeadline(&c.wrDeadline, t)
	return c.nc.SetWriteDeadline(t)
}

func (c *Conn) storeDeadline(dst *atomic.Int64, t time.Time) {
	if t.IsZero() {
		dst.Store(0)
		return
	}
	dst.Store(t.UnixNano())
}
