// Package exec implements the database operators of §6.1.5 behind the
// standard row-iterator interface: sequential scans (with the timestamp-
// aware visibility modes that HARBOR's historical and recovery queries
// need), index lookups on tuple identifiers, predicate filters, projections,
// hash aggregation, nested-loops joins, and the insert/delete/update
// mutation helpers built on the versioning layer.
//
// Query plans are constructed programmatically, exactly as in the thesis
// ("the database implementation does not yet have a SQL parser frontend;
// query plans must be manually constructed", §6.1.5).
package exec

import (
	"fmt"

	"harbor/internal/buffer"
	"harbor/internal/expr"
	"harbor/internal/page"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/version"
)

// Operator is the §6.1.5 iterator interface. Next returns ok=false at end
// of stream.
type Operator interface {
	Open() error
	Next() (t tuple.Tuple, ok bool, err error)
	Rewind() error
	Close() error
	Desc() *tuple.Desc
}

// Visibility selects which tuples a scan surfaces and how their timestamps
// are presented.
type Visibility uint8

const (
	// Current sees committed, not-deleted tuples; used with page read locks
	// (strict 2PL) for up-to-date reads and recovery Phase 3.
	Current Visibility = iota + 1
	// Historical sees the database as of a past time AsOf without locks
	// (§3.3): tuples inserted after AsOf are invisible and deletions after
	// AsOf are hidden.
	Historical
	// SeeDeleted disables delete filtering entirely: both timestamps become
	// visible as normal fields (the recovery mode of §3.4). Combined with
	// AsOf > 0 it becomes the SEE DELETED HISTORICAL mode of §5.3: tuples
	// inserted after AsOf are invisible, and deletion times after AsOf read
	// as 0.
	SeeDeleted
)

// SegmentSelection names the segments a scan visits. The zero value scans
// every segment; SegmentsOf restricts the scan to an explicit list — and an
// explicit empty list scans nothing, which is what a §4.2 recovery plan
// whose timestamp bounds prune every segment means. (The previous
// representation, a bare []int32 with nil meaning "all", could not express
// "none" without call sites pinning a non-nil empty slice.)
type SegmentSelection struct {
	restricted bool
	segs       []int32
}

// AllSegments selects every segment (same as the zero value).
func AllSegments() SegmentSelection { return SegmentSelection{} }

// SegmentsOf restricts the scan to exactly the listed segments. A nil or
// empty list scans nothing.
func SegmentsOf(segs []int32) SegmentSelection {
	return SegmentSelection{restricted: true, segs: segs}
}

// Resolve returns the concrete segment list for a heap file.
func (s SegmentSelection) Resolve(h *storage.HeapFile) []int32 {
	if s.restricted {
		return s.segs
	}
	return h.AllSegments()
}

// ScanSpec describes a sequential scan.
type ScanSpec struct {
	Table int32
	Vis   Visibility
	// AsOf is the historical time (Historical always; SeeDeleted optionally;
	// ignored for Current).
	AsOf tuple.Timestamp
	// Locked makes the scan take page read locks as transaction Txn.
	Locked bool
	Txn    version.TxnID
	// Segments restricts the scan; the zero value visits every segment.
	// Recovery queries pass SegmentsOf(HeapFile.SegmentPlan(...)) here.
	Segments SegmentSelection
	// Pred filters tuples (applied after visibility rewriting).
	Pred expr.Pred
}

// SeqScan is the sequential scan operator.
type SeqScan struct {
	store *version.Store
	spec  ScanSpec

	heap  *storage.HeapFile
	desc  *tuple.Desc
	segs  []int32
	segI  int
	pages []int32
	pageI int
	frame *buffer.Frame
	slot  int
	open  bool
}

// NewSeqScan builds a sequential scan over the versioned store.
func NewSeqScan(store *version.Store, spec ScanSpec) *SeqScan {
	return &SeqScan{store: store, spec: spec}
}

// Desc returns the scan's output schema (the table schema, timestamps
// included).
func (s *SeqScan) Desc() *tuple.Desc { return s.desc }

// Open prepares the scan.
func (s *SeqScan) Open() error {
	tb, err := s.store.Mgr.Get(s.spec.Table)
	if err != nil {
		return err
	}
	s.heap = tb.Heap
	s.desc = tb.Heap.Desc()
	s.segs = s.spec.Segments.Resolve(s.heap)
	s.segI, s.pageI, s.slot = 0, 0, 0
	s.pages = nil
	if len(s.segs) > 0 {
		s.pages = s.heap.SegmentPages(s.segs[0])
	}
	s.open = true
	return nil
}

// Rewind restarts the scan.
func (s *SeqScan) Rewind() error {
	s.releaseFrame()
	return s.Open()
}

// Close releases resources. Page locks (if any) are released at end of
// transaction by the lock manager, per strict 2PL.
func (s *SeqScan) Close() error {
	s.releaseFrame()
	s.open = false
	return nil
}

// pinPage pins and read-latches the page at the current (segI, pageI)
// cursor position and resets the slot cursor.
func (s *SeqScan) pinPage() error {
	pid := page.ID{Table: s.spec.Table, PageNo: s.pages[s.pageI]}
	var f *buffer.Frame
	var err error
	if s.spec.Locked {
		f, err = s.store.Pool.GetPage(s.spec.Txn, pid, buffer.ReadPerm)
	} else {
		f, err = s.store.Pool.GetPageNoLock(pid)
	}
	if err != nil {
		return err
	}
	f.Latch.RLock()
	s.frame = f
	s.slot = 0
	return nil
}

func (s *SeqScan) releaseFrame() {
	if s.frame != nil {
		s.frame.Latch.RUnlock()
		s.store.Pool.Unpin(s.frame, false, 0)
		s.frame = nil
	}
}

// Next returns the next visible tuple.
func (s *SeqScan) Next() (tuple.Tuple, bool, error) {
	if !s.open {
		return tuple.Tuple{}, false, fmt.Errorf("exec: scan not open")
	}
	for {
		if s.frame == nil {
			// Advance to the next page.
			for s.pageI >= len(s.pages) {
				s.segI++
				if s.segI >= len(s.segs) {
					return tuple.Tuple{}, false, nil
				}
				s.pages = s.heap.SegmentPages(s.segs[s.segI])
				s.pageI = 0
			}
			if err := s.pinPage(); err != nil {
				return tuple.Tuple{}, false, err
			}
		}
		pg := s.frame.Page
		for ; s.slot < pg.NumSlots(); s.slot++ {
			if !pg.Used(s.slot) {
				continue
			}
			raw, err := pg.Slot(s.slot)
			if err != nil {
				return tuple.Tuple{}, false, err
			}
			t, err := tuple.Decode(s.desc, raw)
			if err != nil {
				return tuple.Tuple{}, false, err
			}
			vis, out := s.present(t)
			if !vis {
				continue
			}
			if !s.spec.Pred.Eval(s.desc, out) {
				continue
			}
			s.slot++
			return out, true, nil
		}
		s.releaseFrame()
		s.pageI++
	}
}

// present applies the visibility mode, returning whether the tuple is
// surfaced and the (possibly timestamp-rewritten) tuple.
func (s *SeqScan) present(t tuple.Tuple) (bool, tuple.Tuple) {
	switch s.spec.Vis {
	case Current:
		if t.InsTS() == tuple.Uncommitted || t.DelTS() != tuple.NotDeleted {
			return false, t
		}
		return true, t
	case Historical:
		if !t.VisibleAt(s.spec.AsOf) {
			return false, t
		}
		if t.DelTS() > s.spec.AsOf {
			t.SetDelTS(tuple.NotDeleted)
		}
		return true, t
	case SeeDeleted:
		if s.spec.AsOf > 0 {
			// SEE DELETED HISTORICAL (§5.3): hide later insertions, mask
			// later deletions.
			ins := t.InsTS()
			if ins == tuple.Uncommitted || ins > s.spec.AsOf {
				return false, t
			}
			if t.DelTS() > s.spec.AsOf {
				t.SetDelTS(tuple.NotDeleted)
			}
		}
		return true, t
	default:
		return false, t
	}
}

// RIDScan is like SeqScan but also reports each tuple's record id through a
// callback; recovery's local queries need the physical position.
type RIDScan struct {
	Store *version.Store
	Spec  ScanSpec
}

// ForEach runs the scan, invoking fn per visible tuple. Returning false
// stops early.
func (r *RIDScan) ForEach(fn func(rid page.RecordID, t tuple.Tuple) (bool, error)) error {
	tb, err := r.Store.Mgr.Get(r.Spec.Table)
	if err != nil {
		return err
	}
	heap := tb.Heap
	desc := heap.Desc()
	segs := r.Spec.Segments.Resolve(heap)
	inner := &SeqScan{store: r.Store, spec: r.Spec, desc: desc}
	for _, si := range segs {
		for _, pno := range heap.SegmentPages(si) {
			pid := page.ID{Table: r.Spec.Table, PageNo: pno}
			var f *buffer.Frame
			if r.Spec.Locked {
				f, err = r.Store.Pool.GetPage(r.Spec.Txn, pid, buffer.ReadPerm)
			} else {
				f, err = r.Store.Pool.GetPageNoLock(pid)
			}
			if err != nil {
				return err
			}
			f.Latch.RLock()
			stop := false
			for slot := 0; slot < f.Page.NumSlots() && !stop; slot++ {
				if !f.Page.Used(slot) {
					continue
				}
				raw, slotErr := f.Page.Slot(slot)
				if slotErr != nil {
					err = slotErr
					break
				}
				t, decErr := tuple.Decode(desc, raw)
				if decErr != nil {
					err = decErr
					break
				}
				vis, out := inner.present(t)
				if !vis || !r.Spec.Pred.Eval(desc, out) {
					continue
				}
				cont, fnErr := fn(page.RecordID{Page: pid, Slot: slot}, out)
				if fnErr != nil {
					err = fnErr
					break
				}
				if !cont {
					stop = true
				}
			}
			f.Latch.RUnlock()
			r.Store.Pool.Unpin(f, false, 0)
			if err != nil || stop {
				return err
			}
		}
	}
	return nil
}

// IndexLookup returns the visible versions of a key via the primary index.
func IndexLookup(store *version.Store, table int32, key int64, vis Visibility, asOf tuple.Timestamp) ([]tuple.Tuple, []page.RecordID, error) {
	tb, err := store.Mgr.Get(table)
	if err != nil {
		return nil, nil, err
	}
	desc := tb.Heap.Desc()
	helper := &SeqScan{store: store, spec: ScanSpec{Vis: vis, AsOf: asOf}, desc: desc}
	var ts []tuple.Tuple
	var rids []page.RecordID
	for _, rid := range tb.Index.Lookup(key) {
		f, err := store.Pool.GetPageNoLock(rid.Page)
		if err != nil {
			return nil, nil, err
		}
		f.Latch.RLock()
		if f.Page.Used(rid.Slot) {
			raw, slotErr := f.Page.Slot(rid.Slot)
			if slotErr == nil {
				if t, decErr := tuple.Decode(desc, raw); decErr == nil {
					if vis2, out := helper.present(t); vis2 {
						ts = append(ts, out)
						rids = append(rids, rid)
					}
				}
			}
		}
		f.Latch.RUnlock()
		store.Pool.Unpin(f, false, 0)
	}
	return ts, rids, nil
}
