package exec

import (
	"fmt"
	"math"
	"sort"

	"harbor/internal/tuple"
)

// This file holds the distributed aggregation algebra: every aggregate in
// AggFunc splits into a *partial* state that each site computes over its
// local rows and a *final* step that combines partial states at the
// coordinator. Count and Sum merge by addition, Min and Max by taking the
// extremum, and Avg decomposes into a (Sum, Count) pair finalised with one
// integer division — so merging partial states from any number of sites,
// in any order, yields exactly the single-site answer.

// AggName renders the output column name for one aggregate over the input
// schema, e.g. "sum(v)", "count(*)".
func AggName(in *tuple.Desc, a AggSpec) string {
	var fn string
	switch a.Fn {
	case Count:
		return "count(*)"
	case Sum:
		fn = "sum"
	case Min:
		fn = "min"
	case Max:
		fn = "max"
	case Avg:
		fn = "avg"
	default:
		fn = fmt.Sprintf("agg%d", a.Fn)
	}
	field := fmt.Sprintf("f%d", a.Field)
	if in != nil && a.Field >= 0 && a.Field < len(in.Fields) {
		field = in.Fields[a.Field].Name
	}
	return fn + "(" + field + ")"
}

// AggPlan is a grouped aggregation: group by one Int64 field (-1 collapses
// everything into a single global group) and compute one output column per
// AggSpec. The same plan describes both halves of the distributed split.
type AggPlan struct {
	GroupField int
	Aggs       []AggSpec
}

// Partials returns the partial-state columns a site ships per group.
// Count, Sum, Min and Max are their own partial; Avg decomposes into a
// Sum column followed by a Count column. Finalize walks the same layout.
func (p AggPlan) Partials() []AggSpec {
	out := make([]AggSpec, 0, len(p.Aggs)+1)
	for _, a := range p.Aggs {
		if a.Fn == Avg {
			out = append(out, AggSpec{Fn: Sum, Field: a.Field}, AggSpec{Fn: Count, Field: a.Field})
			continue
		}
		out = append(out, a)
	}
	return out
}

// OutDesc is the final output schema: the group column (when grouping)
// followed by one Int64 column per aggregate, named sum(v)/count(*) style.
func (p AggPlan) OutDesc(in *tuple.Desc) *tuple.Desc {
	var fields []tuple.FieldDef
	if p.GroupField >= 0 {
		fields = append(fields, in.Fields[p.GroupField])
	}
	for _, a := range p.Aggs {
		fields = append(fields, tuple.FieldDef{Name: AggName(in, a), Type: tuple.Int64})
	}
	return &tuple.Desc{Fields: fields}
}

// PartialDesc is the schema of one partial group-state row as shipped on
// the wire: the group key (when grouping) followed by one Int64 column per
// partial spec. Every column is Int64, so the fixed-width batch codec
// applies unchanged.
func (p AggPlan) PartialDesc(in *tuple.Desc) *tuple.Desc {
	var fields []tuple.FieldDef
	if p.GroupField >= 0 {
		fields = append(fields, tuple.FieldDef{Name: "group", Type: tuple.Int64})
	}
	for _, a := range p.Partials() {
		fields = append(fields, tuple.FieldDef{Name: AggName(in, a), Type: tuple.Int64})
	}
	return &tuple.Desc{Fields: fields}
}

// Finalize appends the final output columns computed from one merged
// partial state (laid out per Partials) to dst.
func (p AggPlan) Finalize(state []int64, dst []tuple.Value) []tuple.Value {
	j := 0
	for _, a := range p.Aggs {
		if a.Fn == Avg {
			sum, cnt := state[j], state[j+1]
			j += 2
			var v int64
			if cnt > 0 {
				v = sum / cnt
			}
			dst = append(dst, tuple.VInt(v))
			continue
		}
		dst = append(dst, tuple.VInt(state[j]))
		j++
	}
	return dst
}

// Rows finalises every group of gt (accumulated under this plan's partial
// layout) in ascending group-key order — the deterministic output order
// shared by the local HashAgg and the coordinator merge.
func (p AggPlan) Rows(gt *GroupTable) []tuple.Tuple {
	keys := gt.SortedKeys()
	out := make([]tuple.Tuple, 0, len(keys))
	width := len(p.Aggs)
	if p.GroupField >= 0 {
		width++
	}
	for _, key := range keys {
		t := tuple.Tuple{Values: make([]tuple.Value, 0, width)}
		if p.GroupField >= 0 {
			t.Values = append(t.Values, tuple.VInt(key))
		}
		t.Values = p.Finalize(gt.State(key), t.Values)
		out = append(out, t)
	}
	return out
}

// GroupTable accumulates per-group partial aggregate states in one flat
// int64 slab. Group lookup is a single map probe into an index; the states
// themselves live contiguously, so feeding a tuple allocates nothing once
// the group exists. The same table accepts raw input rows (Add) and
// already-aggregated partial states (Merge), which is what makes the
// coordinator's merge step reuse the worker's code path.
type GroupTable struct {
	group int // input field holding the group key, -1 for one global group
	specs []AggSpec

	idx   map[int64]int // group key -> index into keys
	keys  []int64
	state []int64 // len(keys) * len(specs), row-major per group
}

// NewGroupTable returns an empty table accumulating the given partial
// columns, grouped by input field group (-1 = single global group).
func NewGroupTable(group int, partial []AggSpec) *GroupTable {
	return &GroupTable{group: group, specs: partial, idx: make(map[int64]int)}
}

// Reset empties the table, keeping allocations.
func (g *GroupTable) Reset() {
	for k := range g.idx {
		delete(g.idx, k)
	}
	g.keys = g.keys[:0]
	g.state = g.state[:0]
}

// Groups returns the number of distinct groups seen.
func (g *GroupTable) Groups() int { return len(g.keys) }

// slot returns the base offset of key's state, creating and initialising
// the group on first sight: Count/Sum start at 0, Min at +inf, Max at -inf
// so every merge operator has its identity element.
func (g *GroupTable) slot(key int64) int {
	if i, ok := g.idx[key]; ok {
		return i * len(g.specs)
	}
	i := len(g.keys)
	g.idx[key] = i
	g.keys = append(g.keys, key)
	base := len(g.state)
	for _, a := range g.specs {
		switch a.Fn {
		case Min:
			g.state = append(g.state, math.MaxInt64)
		case Max:
			g.state = append(g.state, math.MinInt64)
		default:
			g.state = append(g.state, 0)
		}
	}
	return base
}

// Add folds one raw input row into its group's partial state.
func (g *GroupTable) Add(t tuple.Tuple) {
	key := int64(0)
	if g.group >= 0 {
		key = t.Values[g.group].I64
	}
	base := g.slot(key)
	for i, a := range g.specs {
		switch a.Fn {
		case Count:
			g.state[base+i]++
		case Sum:
			g.state[base+i] += t.Values[a.Field].I64
		case Min:
			if v := t.Values[a.Field].I64; v < g.state[base+i] {
				g.state[base+i] = v
			}
		case Max:
			if v := t.Values[a.Field].I64; v > g.state[base+i] {
				g.state[base+i] = v
			}
		}
	}
}

// AddBatch folds a batch of raw input rows.
func (g *GroupTable) AddBatch(b *tuple.Batch) {
	for _, t := range b.Rows() {
		g.Add(t)
	}
}

// Merge combines one partial group state (key plus one value per partial
// column) into the table. Merging is associative and commutative, so
// states may arrive from any number of sites in any order.
func (g *GroupTable) Merge(key int64, vals []int64) error {
	if len(vals) != len(g.specs) {
		return fmt.Errorf("exec: partial state has %d columns, want %d", len(vals), len(g.specs))
	}
	base := g.slot(key)
	for i, a := range g.specs {
		switch a.Fn {
		case Count, Sum:
			g.state[base+i] += vals[i]
		case Min:
			if vals[i] < g.state[base+i] {
				g.state[base+i] = vals[i]
			}
		case Max:
			if vals[i] > g.state[base+i] {
				g.state[base+i] = vals[i]
			}
		}
	}
	return nil
}

// MergeTable folds every group of o (built with the same specs) into g.
func (g *GroupTable) MergeTable(o *GroupTable) error {
	for _, key := range o.keys {
		if err := g.Merge(key, o.State(key)); err != nil {
			return err
		}
	}
	return nil
}

// State returns key's partial state slice (one value per partial column);
// valid until the next Add/Merge that creates a group.
func (g *GroupTable) State(key int64) []int64 {
	i := g.idx[key]
	return g.state[i*len(g.specs) : (i+1)*len(g.specs)]
}

// SortedKeys returns the group keys in ascending order.
func (g *GroupTable) SortedKeys() []int64 {
	out := make([]int64, len(g.keys))
	copy(out, g.keys)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Keys returns the group keys in insertion order; valid until the next
// Add/Merge that creates a group.
func (g *GroupTable) Keys() []int64 { return g.keys }
