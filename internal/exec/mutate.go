package exec

import (
	"harbor/internal/expr"
	"harbor/internal/page"
	"harbor/internal/tuple"
	"harbor/internal/version"
)

// InsertMany inserts every tuple into the table under tid (the insert
// operator of §6.1.5 collapsed to a helper, since plans are built in code).
// It returns the record ids assigned.
func InsertMany(store *version.Store, tid version.TxnID, table int32, tuples []tuple.Tuple) ([]page.RecordID, error) {
	rids := make([]page.RecordID, 0, len(tuples))
	for _, t := range tuples {
		rid, err := store.InsertTuple(tid, table, t)
		if err != nil {
			return rids, err
		}
		rids = append(rids, rid)
	}
	return rids, nil
}

// DeleteWhere versionally deletes every currently visible tuple matching
// pred, returning the number of tuples marked. Locks: the scan takes page
// read locks and the deletes upgrade to exclusive, per strict 2PL.
func DeleteWhere(store *version.Store, tid version.TxnID, table int32, pred expr.Pred) (int, error) {
	scan := &RIDScan{Store: store, Spec: ScanSpec{
		Table: table, Vis: Current, Locked: true, Txn: tid, Pred: pred,
	}}
	// Collect first: mutating while holding the scan's latches would
	// self-deadlock on the page latch.
	type victim struct{ rid page.RecordID }
	var victims []victim
	if err := scan.ForEach(func(rid page.RecordID, _ tuple.Tuple) (bool, error) {
		victims = append(victims, victim{rid: rid})
		return true, nil
	}); err != nil {
		return 0, err
	}
	for _, v := range victims {
		if _, err := store.DeleteTuple(tid, table, v.rid); err != nil {
			return 0, err
		}
	}
	return len(victims), nil
}

// UpdateWhere rewrites every currently visible tuple matching pred using
// set (which receives a copy and returns the replacement; the key must not
// change). Each update is a versioned delete + insert (§3.3).
func UpdateWhere(store *version.Store, tid version.TxnID, table int32, pred expr.Pred, set func(tuple.Tuple) tuple.Tuple) (int, error) {
	scan := &RIDScan{Store: store, Spec: ScanSpec{
		Table: table, Vis: Current, Locked: true, Txn: tid, Pred: pred,
	}}
	type job struct {
		rid page.RecordID
		t   tuple.Tuple
	}
	var jobs []job
	if err := scan.ForEach(func(rid page.RecordID, t tuple.Tuple) (bool, error) {
		jobs = append(jobs, job{rid: rid, t: t.Clone()})
		return true, nil
	}); err != nil {
		return 0, err
	}
	for _, j := range jobs {
		if _, err := store.UpdateTuple(tid, table, j.rid, set(j.t)); err != nil {
			return 0, err
		}
	}
	return len(jobs), nil
}

// DeleteByKey versionally deletes the live version of a key via the primary
// index, returning whether a version was found.
func DeleteByKey(store *version.Store, tid version.TxnID, table int32, key int64) (bool, error) {
	_, rids, err := IndexLookup(store, table, key, Current, 0)
	if err != nil {
		return false, err
	}
	if len(rids) == 0 {
		return false, nil
	}
	if _, err := store.DeleteTuple(tid, table, rids[0]); err != nil {
		return false, err
	}
	return true, nil
}

// UpdateByKey rewrites the live version of a key via the primary index.
func UpdateByKey(store *version.Store, tid version.TxnID, table int32, key int64, set func(tuple.Tuple) tuple.Tuple) (bool, error) {
	ts, rids, err := IndexLookup(store, table, key, Current, 0)
	if err != nil {
		return false, err
	}
	if len(rids) == 0 {
		return false, nil
	}
	if _, err := store.UpdateTuple(tid, table, rids[0], set(ts[0].Clone())); err != nil {
		return false, err
	}
	return true, nil
}
