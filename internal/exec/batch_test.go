package exec

import (
	"reflect"
	"testing"

	"harbor/internal/expr"
	"harbor/internal/tuple"
)

// drainBatched collects every row DrainBatches produces, cloning out of the
// reused batch.
func drainBatched(t *testing.T, op BatchOperator) []tuple.Tuple {
	t.Helper()
	var out []tuple.Tuple
	if err := DrainBatches(op, func(b *tuple.Batch) error {
		if b.Len() == 0 {
			t.Fatal("sink received empty batch")
		}
		for _, r := range b.Rows() {
			out = append(out, r.Clone())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBatchPipelineMatchesTupleAtATime(t *testing.T) {
	st := newSite(t)
	ts := tuple.Timestamp(1)
	// Enough rows to span several 256-row batches and several segments.
	for i := 0; i < 700; i++ {
		ts = seed(t, st, ts, mk(int64(i), int64(i%7)))
	}
	pred := expr.Pred{}.And(expr.Term{Field: testDesc().FieldIndex("v"), Op: expr.LT, Value: tuple.VInt(3)})

	mkPlan := func() Operator {
		return &Project{
			Child: &Filter{
				Child: NewSeqScan(st, ScanSpec{Table: 1, Vis: Current}),
				Pred:  pred,
			},
			Fields: []int{2, 3},
		}
	}

	want, err := Drain(mkPlan())
	if err != nil {
		t.Fatal(err)
	}
	got := drainBatched(t, AsBatch(mkPlan()))
	if len(got) != len(want) {
		t.Fatalf("batched rows = %d, tuple-at-a-time = %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("row %d: batched %v != tuple %v", i, got[i], want[i])
		}
	}
}

func TestBatchAdapterWrapsNonNativeOperators(t *testing.T) {
	st := newSite(t)
	ts := tuple.Timestamp(1)
	for i := 0; i < 300; i++ {
		ts = seed(t, st, ts, mk(int64(i), int64(i)))
	}
	// Limit has no native NextBatch; AsBatch must fall back to the adapter.
	plan := &Limit{Child: NewSeqScan(st, ScanSpec{Table: 1, Vis: Current}), N: 260}
	if _, native := Operator(plan).(BatchOperator); native {
		t.Fatal("Limit unexpectedly implements BatchOperator natively")
	}
	rows := drainBatched(t, AsBatch(plan))
	if len(rows) != 260 {
		t.Fatalf("adapter drained %d rows, want 260", len(rows))
	}
}

func TestBatchFilterSkipsEmptyBatches(t *testing.T) {
	st := newSite(t)
	ts := tuple.Timestamp(1)
	// Only one qualifying row, far into the table: the filter must keep
	// pulling past all-filtered batches instead of reporting early EOS.
	for i := 0; i < 600; i++ {
		ts = seed(t, st, ts, mk(int64(i), int64(i)))
	}
	pred := expr.Pred{}.And(expr.Term{Field: testDesc().FieldIndex("id"), Op: expr.EQ, Value: tuple.VInt(599)})
	f := &Filter{Child: NewSeqScan(st, ScanSpec{Table: 1, Vis: Current}), Pred: pred}
	rows := drainBatched(t, f)
	if len(rows) != 1 || rows[0].Key(testDesc()) != 599 {
		t.Fatalf("filter batches: got %d rows %v", len(rows), rows)
	}
}
