package exec

import (
	"math/rand"
	"reflect"
	"testing"

	"harbor/internal/tuple"
)

func TestHashAggSchemaNames(t *testing.T) {
	desc := testDesc()
	agg := &HashAgg{
		Child:      &SliceScan{Schema: desc, Rows: []tuple.Tuple{mk(1, 10)}},
		GroupField: desc.FieldIndex("v"),
		Aggs: []AggSpec{
			{Fn: Count},
			{Fn: Sum, Field: desc.FieldIndex("id")},
			{Fn: Min, Field: desc.FieldIndex("id")},
			{Fn: Max, Field: desc.FieldIndex("id")},
			{Fn: Avg, Field: desc.FieldIndex("id")},
		},
	}
	if err := agg.Open(); err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	want := []string{"v", "count(*)", "sum(id)", "min(id)", "max(id)", "avg(id)"}
	got := make([]string, len(agg.Desc().Fields))
	for i, f := range agg.Desc().Fields {
		got[i] = f.Name
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("schema names = %v, want %v", got, want)
	}
}

// TestSortTieBreak feeds rows with duplicate sort-field values in two
// different input orders and requires identical output: ties break on the
// key field, always ascending.
func TestSortTieBreak(t *testing.T) {
	desc := testDesc()
	rows := []tuple.Tuple{mk(5, 20), mk(1, 10), mk(4, 10), mk(2, 20), mk(3, 10)}
	perm := []tuple.Tuple{mk(3, 10), mk(2, 20), mk(1, 10), mk(5, 20), mk(4, 10)}
	vf := desc.FieldIndex("v")
	for _, descending := range []bool{false, true} {
		a, err := Drain(&Sort{Child: &SliceScan{Schema: desc, Rows: rows}, Field: vf, Descending: descending})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Drain(&Sort{Child: &SliceScan{Schema: desc, Rows: perm}, Field: vf, Descending: descending})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids(a), ids(b)) {
			t.Fatalf("descending=%v: input order leaked into output: %v vs %v", descending, ids(a), ids(b))
		}
		want := []int64{1, 3, 4, 2, 5}
		if descending {
			want = []int64{2, 5, 1, 3, 4}
		}
		if got := ids(a); !reflect.DeepEqual(got, want) {
			t.Fatalf("descending=%v: got %v, want %v", descending, got, want)
		}
	}
}

// TestPartialFinalEquivalence shards rows across "sites", aggregates each
// shard into partial states, merges the states in shuffled order, and
// requires the finalised result to be byte-identical to one HashAgg over
// all rows — including Avg values whose integer division loses remainders
// that per-site averaging would get wrong.
func TestPartialFinalEquivalence(t *testing.T) {
	desc := testDesc()
	rng := rand.New(rand.NewSource(42))
	var rows []tuple.Tuple
	for id := int64(1); id <= 500; id++ {
		rows = append(rows, mk(id, 3+rng.Int63n(7)))
	}
	for _, group := range []int{desc.FieldIndex("v"), -1} {
		plan := AggPlan{GroupField: group, Aggs: []AggSpec{
			{Fn: Count},
			{Fn: Sum, Field: desc.FieldIndex("id")},
			{Fn: Min, Field: desc.FieldIndex("id")},
			{Fn: Max, Field: desc.FieldIndex("id")},
			{Fn: Avg, Field: desc.FieldIndex("id")},
		}}

		// Single-site reference.
		want, err := Drain(&HashAgg{
			Child:      &SliceScan{Schema: desc, Rows: rows},
			GroupField: group,
			Aggs:       plan.Aggs,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Distributed: 4 shards, partial states merged in shuffled order.
		shards := make([]*GroupTable, 4)
		for i := range shards {
			shards[i] = NewGroupTable(group, plan.Partials())
		}
		for i, r := range rows {
			shards[i%len(shards)].Add(r)
		}
		final := NewGroupTable(group, plan.Partials())
		order := rng.Perm(len(shards))
		for _, i := range order {
			if err := final.MergeTable(shards[i]); err != nil {
				t.Fatal(err)
			}
		}
		got := plan.Rows(final)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("group=%d: merged partials diverge:\n got %v\nwant %v", group, got, want)
		}
	}
}

// TestAggNextBatchNative checks HashAgg and Sort stream natively batch-at-
// a-time (AsBatch must not wrap them) and deliver more than one batch.
func TestAggNextBatchNative(t *testing.T) {
	desc := testDesc()
	n := 3 * DefaultBatchRows / 2
	var rows []tuple.Tuple
	for id := 0; id < n; id++ {
		rows = append(rows, mk(int64(id), int64(id)))
	}
	agg := &HashAgg{
		Child:      &SliceScan{Schema: desc, Rows: rows},
		GroupField: desc.FieldIndex("v"),
		Aggs:       []AggSpec{{Fn: Count}},
	}
	srt := &Sort{Child: &SliceScan{Schema: desc, Rows: rows}, Field: desc.Key, Descending: true}
	for name, op := range map[string]Operator{"hashagg": agg, "sort": srt} {
		bop := AsBatch(op)
		if _, wrapped := bop.(*batchAdapter); wrapped {
			t.Fatalf("%s: AsBatch fell back to the per-tuple adapter", name)
		}
		if err := bop.Open(); err != nil {
			t.Fatal(err)
		}
		got, batches := 0, 0
		b := tuple.NewBatch(DefaultBatchRows)
		for {
			if err := bop.NextBatch(b); err != nil {
				t.Fatal(err)
			}
			if b.Len() == 0 {
				break
			}
			got += b.Len()
			batches++
		}
		bop.Close()
		if got != n || batches < 2 {
			t.Fatalf("%s: streamed %d rows in %d batches, want %d rows in >=2", name, got, batches, n)
		}
	}
}
