package exec

import (
	"reflect"
	"testing"
	"time"

	"harbor/internal/buffer"
	"harbor/internal/expr"
	"harbor/internal/lockmgr"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/version"
)

func testDesc() *tuple.Desc {
	return tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "v", Type: tuple.Int32},
	)
}

func newSite(t *testing.T) *version.Store {
	t.Helper()
	mgr, err := storage.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	locks := lockmgr.New(300 * time.Millisecond)
	pool := buffer.New(&version.PageStore{Mgr: mgr}, locks, 128, buffer.StealNoForce)
	st := version.NewStore(mgr, pool, locks, nil)
	if _, err := mgr.Create(1, testDesc(), 4); err != nil {
		t.Fatal(err)
	}
	return st
}

func mk(id, v int64) tuple.Tuple {
	return tuple.MustMake(testDesc(), tuple.VInt(id), tuple.VInt(v))
}

// seed inserts rows committing each batch at consecutive timestamps
// starting at ts0; returns the next unused timestamp.
func seed(t *testing.T, st *version.Store, ts0 tuple.Timestamp, rows ...tuple.Tuple) tuple.Timestamp {
	t.Helper()
	tid := version.TxnID(ts0 * 1000)
	for _, r := range rows {
		if _, err := st.InsertTuple(tid, 1, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(tid, ts0, false, false); err != nil {
		t.Fatal(err)
	}
	return ts0 + 1
}

func ids(ts []tuple.Tuple) []int64 {
	out := make([]int64, len(ts))
	for i, t := range ts {
		out[i] = t.Values[2].I64
	}
	return out
}

func TestSeqScanCurrentVisibility(t *testing.T) {
	st := newSite(t)
	seed(t, st, 1, mk(1, 10), mk(2, 20))
	// Delete key 1 at ts 2.
	if ok, err := DeleteByKey(st, 500, 1, 1); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if err := st.Commit(500, 2, false, false); err != nil {
		t.Fatal(err)
	}
	// An uncommitted insert must be invisible.
	if _, err := st.InsertTuple(501, 1, mk(3, 30)); err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(NewSeqScan(st, ScanSpec{Table: 1, Vis: Current}))
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(rows); !reflect.DeepEqual(got, []int64{2}) {
		t.Fatalf("current scan ids = %v", got)
	}
	st.Abort(501)
}

func TestSeqScanHistoricalTimeTravel(t *testing.T) {
	st := newSite(t)
	seed(t, st, 1, mk(1, 10))
	seed(t, st, 2, mk(2, 20))
	if ok, err := DeleteByKey(st, 500, 1, 1); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if err := st.Commit(500, 3, false, false); err != nil {
		t.Fatal(err)
	}
	scanAt := func(asOf tuple.Timestamp) []int64 {
		rows, err := Drain(NewSeqScan(st, ScanSpec{Table: 1, Vis: Historical, AsOf: asOf}))
		if err != nil {
			t.Fatal(err)
		}
		return ids(rows)
	}
	if got := scanAt(1); !reflect.DeepEqual(got, []int64{1}) {
		t.Fatalf("asOf 1: %v", got)
	}
	if got := scanAt(2); !reflect.DeepEqual(got, []int64{1, 2}) {
		t.Fatalf("asOf 2: %v", got)
	}
	if got := scanAt(3); !reflect.DeepEqual(got, []int64{2}) {
		t.Fatalf("asOf 3: %v", got)
	}
	// Historical reads mask the future deletion timestamp.
	rows, err := Drain(NewSeqScan(st, ScanSpec{Table: 1, Vis: Historical, AsOf: 2}))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DelTS() != tuple.NotDeleted {
			t.Fatalf("historical read leaked future deletion: %s", r)
		}
	}
}

func TestSeqScanSeeDeleted(t *testing.T) {
	st := newSite(t)
	seed(t, st, 1, mk(1, 10), mk(2, 20))
	if ok, err := DeleteByKey(st, 500, 1, 1); err != nil || !ok {
		t.Fatal(err)
	}
	if err := st.Commit(500, 2, false, false); err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(NewSeqScan(st, ScanSpec{Table: 1, Vis: SeeDeleted}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("see-deleted scan found %d rows, want 2", len(rows))
	}
	// And with the deletion-time predicate of recovery queries.
	desc := testDesc()
	delGT := expr.True.And(expr.Term{Field: tuple.FieldDelTS, Op: expr.GT, Value: tuple.VInt(0)})
	rows, err = Drain(NewSeqScan(st, ScanSpec{Table: 1, Vis: SeeDeleted, Pred: delGT}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Key(desc) != 1 {
		t.Fatalf("deleted-only scan: %v", rows)
	}
}

func TestSeeDeletedHistoricalMasksLateActivity(t *testing.T) {
	st := newSite(t)
	seed(t, st, 1, mk(1, 10))
	// Delete key 1 at ts 5 (after the HWM below) and insert key 2 at ts 6.
	if ok, err := DeleteByKey(st, 500, 1, 1); err != nil || !ok {
		t.Fatal(err)
	}
	if err := st.Commit(500, 5, false, false); err != nil {
		t.Fatal(err)
	}
	seed(t, st, 6, mk(2, 20))
	rows, err := Drain(NewSeqScan(st, ScanSpec{Table: 1, Vis: SeeDeleted, AsOf: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("SEE DELETED HISTORICAL leaked later insert: %v", rows)
	}
	if rows[0].DelTS() != tuple.NotDeleted {
		t.Fatalf("deletion after HWM visible: %s", rows[0])
	}
}

func TestScanSegmentsRestriction(t *testing.T) {
	st := newSite(t)
	tb, _ := st.Mgr.Get(1)
	perSeg := tb.Heap.SlotsPerPage() * 4
	ts := tuple.Timestamp(1)
	for i := 0; i < perSeg+5; i++ {
		ts = seed(t, st, ts, mk(int64(i), 0))
	}
	if tb.Heap.NumSegments() != 2 {
		t.Fatalf("segments = %d", tb.Heap.NumSegments())
	}
	rows, err := Drain(NewSeqScan(st, ScanSpec{Table: 1, Vis: Current, Segments: SegmentsOf([]int32{1})}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("segment-restricted scan: %d rows, want 5", len(rows))
	}

	// An explicitly empty selection — the shape of a recovery plan whose
	// timestamp bounds pruned every segment — scans nothing, while the zero
	// value still scans everything.
	rows, err = Drain(NewSeqScan(st, ScanSpec{Table: 1, Vis: Current, Segments: SegmentsOf(nil)}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("everything-pruned scan: %d rows, want 0", len(rows))
	}
	rows, err = Drain(NewSeqScan(st, ScanSpec{Table: 1, Vis: Current}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != perSeg+5 {
		t.Fatalf("all-segments scan: %d rows, want %d", len(rows), perSeg+5)
	}
}

func TestFilterProjectLimit(t *testing.T) {
	st := newSite(t)
	seed(t, st, 1, mk(1, 100), mk(2, 200), mk(3, 300), mk(4, 400))
	desc := testDesc()
	plan := &Limit{
		N: 2,
		Child: &Project{
			Fields: []int{desc.FieldIndex("id"), desc.FieldIndex("v")},
			Child: &Filter{
				Pred:  expr.True.And(expr.Term{Field: desc.FieldIndex("v"), Op: expr.GE, Value: tuple.VInt(200)}),
				Child: NewSeqScan(st, ScanSpec{Table: 1, Vis: Current}),
			},
		},
	}
	rows, err := Drain(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("limit produced %d rows", len(rows))
	}
	if len(rows[0].Values) != 2 {
		t.Fatalf("projection kept %d fields", len(rows[0].Values))
	}
	if rows[0].Values[0].I64 != 2 || rows[1].Values[0].I64 != 3 {
		t.Fatalf("wrong rows: %v", rows)
	}
}

func TestHashAgg(t *testing.T) {
	st := newSite(t)
	seed(t, st, 1, mk(1, 10), mk(2, 10), mk(3, 20), mk(4, 20), mk(5, 20))
	desc := testDesc()
	agg := &HashAgg{
		Child:      NewSeqScan(st, ScanSpec{Table: 1, Vis: Current}),
		GroupField: desc.FieldIndex("v"),
		Aggs: []AggSpec{
			{Fn: Count},
			{Fn: Sum, Field: desc.FieldIndex("id")},
			{Fn: Min, Field: desc.FieldIndex("id")},
			{Fn: Max, Field: desc.FieldIndex("id")},
			{Fn: Avg, Field: desc.FieldIndex("id")},
		},
	}
	rows, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	// group 10: ids {1,2}; group 20: ids {3,4,5}
	g10 := rows[0]
	if g10.Values[0].I64 != 10 || g10.Values[1].I64 != 2 || g10.Values[2].I64 != 3 ||
		g10.Values[3].I64 != 1 || g10.Values[4].I64 != 2 || g10.Values[5].I64 != 1 {
		t.Fatalf("group 10: %v", g10.Values)
	}
	g20 := rows[1]
	if g20.Values[0].I64 != 20 || g20.Values[1].I64 != 3 || g20.Values[2].I64 != 12 ||
		g20.Values[3].I64 != 3 || g20.Values[4].I64 != 5 || g20.Values[5].I64 != 4 {
		t.Fatalf("group 20: %v", g20.Values)
	}
}

func TestHashAggGlobalGroup(t *testing.T) {
	st := newSite(t)
	seed(t, st, 1, mk(1, 1), mk(2, 2), mk(3, 3))
	agg := &HashAgg{
		Child:      NewSeqScan(st, ScanSpec{Table: 1, Vis: Current}),
		GroupField: -1,
		Aggs:       []AggSpec{{Fn: Count}},
	}
	rows, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Values[0].I64 != 3 {
		t.Fatalf("global count: %v", rows)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	desc := testDesc()
	left := &SliceScan{Schema: desc, Rows: []tuple.Tuple{mk(1, 7), mk(2, 8), mk(3, 7)}}
	right := &SliceScan{Schema: desc, Rows: []tuple.Tuple{mk(10, 7), mk(11, 9)}}
	vf := desc.FieldIndex("v")
	j := &NestedLoopJoin{Left: left, Right: right, LeftField: vf, RightField: vf}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	// v=7 matches rows 1 and 3 on the left with row 10 on the right.
	if len(rows) != 2 {
		t.Fatalf("join rows = %d, want 2", len(rows))
	}
	if rows[0].Values[2].I64 != 1 || rows[1].Values[2].I64 != 3 {
		t.Fatalf("join output: %v", rows)
	}
	if len(rows[0].Values) != 2*len(desc.Fields) {
		t.Fatal("join schema width wrong")
	}
}

func TestIndexLookupVersions(t *testing.T) {
	st := newSite(t)
	seed(t, st, 1, mk(5, 1))
	if ok, err := UpdateByKey(st, 500, 1, 5, func(t tuple.Tuple) tuple.Tuple {
		t.Values[3] = tuple.VInt(2)
		return t
	}); err != nil || !ok {
		t.Fatalf("update: %v %v", ok, err)
	}
	if err := st.Commit(500, 2, false, false); err != nil {
		t.Fatal(err)
	}
	cur, _, err := IndexLookup(st, 1, 5, Current, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cur) != 1 || cur[0].Values[3].I64 != 2 {
		t.Fatalf("current lookup: %v", cur)
	}
	old, _, err := IndexLookup(st, 1, 5, Historical, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 1 || old[0].Values[3].I64 != 1 {
		t.Fatalf("historical lookup: %v", old)
	}
	all, _, err := IndexLookup(st, 1, 5, SeeDeleted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("see-deleted lookup found %d versions", len(all))
	}
	none, _, err := IndexLookup(st, 1, 99, Current, 0)
	if err != nil || len(none) != 0 {
		t.Fatalf("missing key lookup: %v %v", none, err)
	}
}

func TestDeleteWhereAndUpdateWhere(t *testing.T) {
	st := newSite(t)
	seed(t, st, 1, mk(1, 10), mk(2, 20), mk(3, 30))
	desc := testDesc()
	pred := expr.True.And(expr.Term{Field: desc.FieldIndex("v"), Op: expr.GE, Value: tuple.VInt(20)})
	n, err := DeleteWhere(st, 500, 1, pred)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("DeleteWhere marked %d", n)
	}
	if err := st.Commit(500, 2, false, false); err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(NewSeqScan(st, ScanSpec{Table: 1, Vis: Current}))
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(rows); !reflect.DeepEqual(got, []int64{1}) {
		t.Fatalf("after delete: %v", got)
	}

	n, err = UpdateWhere(st, 501, 1, expr.True.And(expr.Term{Field: desc.Key, Op: expr.EQ, Value: tuple.VInt(1)}),
		func(t tuple.Tuple) tuple.Tuple {
			t.Values[desc.FieldIndex("v")] = tuple.VInt(99)
			return t
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("UpdateWhere touched %d", n)
	}
	if err := st.Commit(501, 3, false, false); err != nil {
		t.Fatal(err)
	}
	cur, _, err := IndexLookup(st, 1, 1, Current, 0)
	if err != nil || len(cur) != 1 || cur[0].Values[3].I64 != 99 {
		t.Fatalf("after update: %v %v", cur, err)
	}
}

func TestRewind(t *testing.T) {
	st := newSite(t)
	seed(t, st, 1, mk(1, 1), mk(2, 2))
	scan := NewSeqScan(st, ScanSpec{Table: 1, Vis: Current})
	if err := scan.Open(); err != nil {
		t.Fatal(err)
	}
	defer scan.Close()
	var first []int64
	for {
		tp, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		first = append(first, tp.Key(testDesc()))
	}
	if err := scan.Rewind(); err != nil {
		t.Fatal(err)
	}
	var second []int64
	for {
		tp, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		second = append(second, tp.Key(testDesc()))
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("rewind changed results: %v vs %v", first, second)
	}
}

func TestLockedScanTakesReadLocks(t *testing.T) {
	st := newSite(t)
	seed(t, st, 1, mk(1, 1))
	rows, err := Drain(NewSeqScan(st, ScanSpec{Table: 1, Vis: Current, Locked: true, Txn: 42}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !st.Locks.Has(42, lockmgr.PageTarget(1, 0), lockmgr.S) {
		t.Fatal("locked scan did not take page S lock")
	}
	st.Locks.ReleaseAll(42)
}

func TestSortOperator(t *testing.T) {
	st := newSite(t)
	seed(t, st, 1, mk(3, 30), mk(1, 10), mk(2, 20))
	desc := testDesc()
	asc, err := Drain(&Sort{
		Child: NewSeqScan(st, ScanSpec{Table: 1, Vis: Current}),
		Field: desc.Key,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(asc); !reflect.DeepEqual(got, []int64{1, 2, 3}) {
		t.Fatalf("ascending sort: %v", got)
	}
	desc2, err := Drain(&Sort{
		Child:      NewSeqScan(st, ScanSpec{Table: 1, Vis: Current}),
		Field:      desc.Key,
		Descending: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(desc2); !reflect.DeepEqual(got, []int64{3, 2, 1}) {
		t.Fatalf("descending sort: %v", got)
	}
	// Rewind replays without re-scanning.
	s := &Sort{Child: NewSeqScan(st, ScanSpec{Table: 1, Vis: Current}), Field: desc.Key}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first, _, _ := s.Next()
	if err := s.Rewind(); err != nil {
		t.Fatal(err)
	}
	again, _, _ := s.Next()
	if !first.Equal(desc, again) {
		t.Fatal("rewind changed order")
	}
}
