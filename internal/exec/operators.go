package exec

import (
	"fmt"
	"sort"

	"harbor/internal/expr"
	"harbor/internal/tuple"
)

// Filter passes through child tuples matching a predicate.
type Filter struct {
	Child Operator
	Pred  expr.Pred

	bchild BatchOperator
}

// Open opens the child.
func (f *Filter) Open() error { return f.Child.Open() }

// Rewind rewinds the child.
func (f *Filter) Rewind() error { return f.Child.Rewind() }

// Close closes the child.
func (f *Filter) Close() error { return f.Child.Close() }

// Desc returns the child's schema.
func (f *Filter) Desc() *tuple.Desc { return f.Child.Desc() }

// Next returns the next matching tuple.
func (f *Filter) Next() (tuple.Tuple, bool, error) {
	for {
		t, ok, err := f.Child.Next()
		if err != nil || !ok {
			return t, ok, err
		}
		if f.Pred.Eval(f.Child.Desc(), t) {
			return t, true, nil
		}
	}
}

// Project narrows tuples to the selected physical field indexes.
type Project struct {
	Child  Operator
	Fields []int

	desc    *tuple.Desc
	bchild  BatchOperator
	scratch *tuple.Batch
}

// Open opens the child and derives the output schema.
func (p *Project) Open() error {
	if err := p.Child.Open(); err != nil {
		return err
	}
	in := p.Child.Desc()
	fields := make([]tuple.FieldDef, len(p.Fields))
	for i, fi := range p.Fields {
		if fi < 0 || fi >= len(in.Fields) {
			return fmt.Errorf("exec: project field %d out of range", fi)
		}
		fields[i] = in.Fields[fi]
	}
	p.desc = &tuple.Desc{Fields: fields}
	return nil
}

// Rewind rewinds the child.
func (p *Project) Rewind() error { return p.Child.Rewind() }

// Close closes the child.
func (p *Project) Close() error { return p.Child.Close() }

// Desc returns the projected schema.
func (p *Project) Desc() *tuple.Desc { return p.desc }

// Next projects the next child tuple.
func (p *Project) Next() (tuple.Tuple, bool, error) {
	t, ok, err := p.Child.Next()
	if err != nil || !ok {
		return tuple.Tuple{}, ok, err
	}
	out := tuple.Tuple{Values: make([]tuple.Value, len(p.Fields))}
	for i, fi := range p.Fields {
		out.Values[i] = t.Values[fi]
	}
	return out, true, nil
}

// NestedLoopJoin is the thesis's nested-loops equi-join: for every left
// tuple it rewinds and re-scans the right child.
type NestedLoopJoin struct {
	Left, Right           Operator
	LeftField, RightField int

	desc    *tuple.Desc
	cur     tuple.Tuple
	haveCur bool
}

// Open opens both children and builds the concatenated schema.
func (j *NestedLoopJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	ld, rd := j.Left.Desc(), j.Right.Desc()
	fields := make([]tuple.FieldDef, 0, len(ld.Fields)+len(rd.Fields))
	fields = append(fields, ld.Fields...)
	for _, f := range rd.Fields {
		f.Name = "r_" + f.Name
		fields = append(fields, f)
	}
	j.desc = &tuple.Desc{Fields: fields}
	j.haveCur = false
	return nil
}

// Rewind restarts the join.
func (j *NestedLoopJoin) Rewind() error {
	if err := j.Left.Rewind(); err != nil {
		return err
	}
	if err := j.Right.Rewind(); err != nil {
		return err
	}
	j.haveCur = false
	return nil
}

// Close closes both children.
func (j *NestedLoopJoin) Close() error {
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// Desc returns the joined schema.
func (j *NestedLoopJoin) Desc() *tuple.Desc { return j.desc }

// Next returns the next joined tuple.
func (j *NestedLoopJoin) Next() (tuple.Tuple, bool, error) {
	for {
		if !j.haveCur {
			lt, ok, err := j.Left.Next()
			if err != nil || !ok {
				return tuple.Tuple{}, false, err
			}
			j.cur = lt
			j.haveCur = true
			if err := j.Right.Rewind(); err != nil {
				return tuple.Tuple{}, false, err
			}
		}
		rt, ok, err := j.Right.Next()
		if err != nil {
			return tuple.Tuple{}, false, err
		}
		if !ok {
			j.haveCur = false
			continue
		}
		if j.cur.Values[j.LeftField].I64 != rt.Values[j.RightField].I64 {
			continue
		}
		out := tuple.Tuple{Values: make([]tuple.Value, 0, len(j.cur.Values)+len(rt.Values))}
		out.Values = append(out.Values, j.cur.Values...)
		out.Values = append(out.Values, rt.Values...)
		return out, true, nil
	}
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	// Count counts tuples per group.
	Count AggFunc = iota + 1
	// Sum sums an integer field.
	Sum
	// Min takes the minimum of an integer field.
	Min
	// Max takes the maximum of an integer field.
	Max
	// Avg averages an integer field (integer division).
	Avg
)

// AggSpec is one aggregate column.
type AggSpec struct {
	Fn    AggFunc
	Field int // input field (ignored for Count)
}

// HashAgg is the in-memory hash-grouping aggregation of §6.1.5. GroupField
// of -1 aggregates everything into a single group. It runs the full
// partial+final algebra locally: the child is drained batch-at-a-time into
// a GroupTable and the results are finalised in group-key order, so its
// output is byte-identical to a distributed merge over the same rows.
type HashAgg struct {
	Child      Operator
	GroupField int
	Aggs       []AggSpec

	desc    *tuple.Desc
	results []tuple.Tuple
	pos     int
}

// Open drains the child and materialises grouped results.
func (h *HashAgg) Open() error {
	if err := h.Child.Open(); err != nil {
		return err
	}
	plan := AggPlan{GroupField: h.GroupField, Aggs: h.Aggs}
	h.desc = plan.OutDesc(h.Child.Desc())
	gt := NewGroupTable(h.GroupField, plan.Partials())
	child := AsBatch(h.Child)
	b := tuple.NewBatch(DefaultBatchRows)
	for {
		if err := child.NextBatch(b); err != nil {
			return err
		}
		if b.Len() == 0 {
			break
		}
		gt.AddBatch(b)
	}
	h.results = plan.Rows(gt)
	h.pos = 0
	return nil
}

// Rewind restarts result iteration without re-running the child.
func (h *HashAgg) Rewind() error {
	h.pos = 0
	return nil
}

// Close closes the child.
func (h *HashAgg) Close() error { return h.Child.Close() }

// Desc returns the aggregate output schema.
func (h *HashAgg) Desc() *tuple.Desc { return h.desc }

// Next returns the next group row (groups ordered by key for determinism).
func (h *HashAgg) Next() (tuple.Tuple, bool, error) {
	if h.pos >= len(h.results) {
		return tuple.Tuple{}, false, nil
	}
	t := h.results[h.pos]
	h.pos++
	return t, true, nil
}

// Limit caps the number of tuples produced.
type Limit struct {
	Child Operator
	N     int
	seen  int
}

// Open opens the child and resets the counter.
func (l *Limit) Open() error { l.seen = 0; return l.Child.Open() }

// Rewind rewinds the child and resets the counter.
func (l *Limit) Rewind() error { l.seen = 0; return l.Child.Rewind() }

// Close closes the child.
func (l *Limit) Close() error { return l.Child.Close() }

// Desc returns the child's schema.
func (l *Limit) Desc() *tuple.Desc { return l.Child.Desc() }

// Next returns the next tuple until the cap is hit.
func (l *Limit) Next() (tuple.Tuple, bool, error) {
	if l.seen >= l.N {
		return tuple.Tuple{}, false, nil
	}
	t, ok, err := l.Child.Next()
	if ok {
		l.seen++
	}
	return t, ok, err
}

// SliceScan serves tuples from memory; network operators and tests use it.
type SliceScan struct {
	Schema *tuple.Desc
	Rows   []tuple.Tuple
	pos    int
}

// Open resets the cursor.
func (s *SliceScan) Open() error { s.pos = 0; return nil }

// Rewind resets the cursor.
func (s *SliceScan) Rewind() error { s.pos = 0; return nil }

// Close is a no-op.
func (s *SliceScan) Close() error { return nil }

// Desc returns the slice's schema.
func (s *SliceScan) Desc() *tuple.Desc { return s.Schema }

// Next returns the next row.
func (s *SliceScan) Next() (tuple.Tuple, bool, error) {
	if s.pos >= len(s.Rows) {
		return tuple.Tuple{}, false, nil
	}
	t := s.Rows[s.pos]
	s.pos++
	return t, true, nil
}

// Drain runs an operator to completion and returns all rows.
func Drain(op Operator) ([]tuple.Tuple, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []tuple.Tuple
	for {
		t, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}

// Sort materialises and orders its child's output by one field (ascending;
// Desc reverses). Replicas stored in different sort orders (§3.1) are
// queried with a Sort on top when a plan needs a specific order.
type Sort struct {
	Child      Operator
	Field      int
	Descending bool

	rows []tuple.Tuple
	pos  int
}

// cmpField three-way compares two rows on one field.
func cmpField(d *tuple.Desc, field int, a, b tuple.Tuple) int {
	if d.Fields[field].Type == tuple.Char {
		switch {
		case a.Values[field].Str < b.Values[field].Str:
			return -1
		case a.Values[field].Str > b.Values[field].Str:
			return 1
		}
		return 0
	}
	switch {
	case a.Values[field].I64 < b.Values[field].I64:
		return -1
	case a.Values[field].I64 > b.Values[field].I64:
		return 1
	}
	return 0
}

// Open drains and sorts the child. Rows comparing equal on the sort field
// are tie-broken by the schema's key field (always ascending), so the
// output order is fully deterministic no matter what order the child —
// e.g. a distributed merge racing several sites — produced the rows in.
func (s *Sort) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	child := AsBatch(s.Child)
	b := tuple.NewBatch(DefaultBatchRows)
	for {
		if err := child.NextBatch(b); err != nil {
			return err
		}
		if b.Len() == 0 {
			break
		}
		s.rows = append(s.rows, b.Rows()...)
	}
	d := s.Child.Desc()
	sort.SliceStable(s.rows, func(i, j int) bool {
		c := cmpField(d, s.Field, s.rows[i], s.rows[j])
		if s.Descending {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
		if d.Key != s.Field {
			return cmpField(d, d.Key, s.rows[i], s.rows[j]) < 0
		}
		return false
	})
	s.pos = 0
	return nil
}

// Rewind restarts result iteration.
func (s *Sort) Rewind() error { s.pos = 0; return nil }

// Close closes the child.
func (s *Sort) Close() error { return s.Child.Close() }

// Desc returns the child's schema.
func (s *Sort) Desc() *tuple.Desc { return s.Child.Desc() }

// Next returns rows in sorted order.
func (s *Sort) Next() (tuple.Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return tuple.Tuple{}, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}
