package exec

import (
	"fmt"
	"sort"

	"harbor/internal/expr"
	"harbor/internal/tuple"
)

// Filter passes through child tuples matching a predicate.
type Filter struct {
	Child Operator
	Pred  expr.Pred

	bchild BatchOperator
}

// Open opens the child.
func (f *Filter) Open() error { return f.Child.Open() }

// Rewind rewinds the child.
func (f *Filter) Rewind() error { return f.Child.Rewind() }

// Close closes the child.
func (f *Filter) Close() error { return f.Child.Close() }

// Desc returns the child's schema.
func (f *Filter) Desc() *tuple.Desc { return f.Child.Desc() }

// Next returns the next matching tuple.
func (f *Filter) Next() (tuple.Tuple, bool, error) {
	for {
		t, ok, err := f.Child.Next()
		if err != nil || !ok {
			return t, ok, err
		}
		if f.Pred.Eval(f.Child.Desc(), t) {
			return t, true, nil
		}
	}
}

// Project narrows tuples to the selected physical field indexes.
type Project struct {
	Child  Operator
	Fields []int

	desc    *tuple.Desc
	bchild  BatchOperator
	scratch *tuple.Batch
}

// Open opens the child and derives the output schema.
func (p *Project) Open() error {
	if err := p.Child.Open(); err != nil {
		return err
	}
	in := p.Child.Desc()
	fields := make([]tuple.FieldDef, len(p.Fields))
	for i, fi := range p.Fields {
		if fi < 0 || fi >= len(in.Fields) {
			return fmt.Errorf("exec: project field %d out of range", fi)
		}
		fields[i] = in.Fields[fi]
	}
	p.desc = &tuple.Desc{Fields: fields}
	return nil
}

// Rewind rewinds the child.
func (p *Project) Rewind() error { return p.Child.Rewind() }

// Close closes the child.
func (p *Project) Close() error { return p.Child.Close() }

// Desc returns the projected schema.
func (p *Project) Desc() *tuple.Desc { return p.desc }

// Next projects the next child tuple.
func (p *Project) Next() (tuple.Tuple, bool, error) {
	t, ok, err := p.Child.Next()
	if err != nil || !ok {
		return tuple.Tuple{}, ok, err
	}
	out := tuple.Tuple{Values: make([]tuple.Value, len(p.Fields))}
	for i, fi := range p.Fields {
		out.Values[i] = t.Values[fi]
	}
	return out, true, nil
}

// NestedLoopJoin is the thesis's nested-loops equi-join: for every left
// tuple it rewinds and re-scans the right child.
type NestedLoopJoin struct {
	Left, Right           Operator
	LeftField, RightField int

	desc    *tuple.Desc
	cur     tuple.Tuple
	haveCur bool
}

// Open opens both children and builds the concatenated schema.
func (j *NestedLoopJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	ld, rd := j.Left.Desc(), j.Right.Desc()
	fields := make([]tuple.FieldDef, 0, len(ld.Fields)+len(rd.Fields))
	fields = append(fields, ld.Fields...)
	for _, f := range rd.Fields {
		f.Name = "r_" + f.Name
		fields = append(fields, f)
	}
	j.desc = &tuple.Desc{Fields: fields}
	j.haveCur = false
	return nil
}

// Rewind restarts the join.
func (j *NestedLoopJoin) Rewind() error {
	if err := j.Left.Rewind(); err != nil {
		return err
	}
	if err := j.Right.Rewind(); err != nil {
		return err
	}
	j.haveCur = false
	return nil
}

// Close closes both children.
func (j *NestedLoopJoin) Close() error {
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// Desc returns the joined schema.
func (j *NestedLoopJoin) Desc() *tuple.Desc { return j.desc }

// Next returns the next joined tuple.
func (j *NestedLoopJoin) Next() (tuple.Tuple, bool, error) {
	for {
		if !j.haveCur {
			lt, ok, err := j.Left.Next()
			if err != nil || !ok {
				return tuple.Tuple{}, false, err
			}
			j.cur = lt
			j.haveCur = true
			if err := j.Right.Rewind(); err != nil {
				return tuple.Tuple{}, false, err
			}
		}
		rt, ok, err := j.Right.Next()
		if err != nil {
			return tuple.Tuple{}, false, err
		}
		if !ok {
			j.haveCur = false
			continue
		}
		if j.cur.Values[j.LeftField].I64 != rt.Values[j.RightField].I64 {
			continue
		}
		out := tuple.Tuple{Values: make([]tuple.Value, 0, len(j.cur.Values)+len(rt.Values))}
		out.Values = append(out.Values, j.cur.Values...)
		out.Values = append(out.Values, rt.Values...)
		return out, true, nil
	}
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	// Count counts tuples per group.
	Count AggFunc = iota + 1
	// Sum sums an integer field.
	Sum
	// Min takes the minimum of an integer field.
	Min
	// Max takes the maximum of an integer field.
	Max
	// Avg averages an integer field (integer division).
	Avg
)

// AggSpec is one aggregate column.
type AggSpec struct {
	Fn    AggFunc
	Field int // input field (ignored for Count)
}

// HashAgg is the in-memory hash-grouping aggregation of §6.1.5. GroupField
// of -1 aggregates everything into a single group.
type HashAgg struct {
	Child      Operator
	GroupField int
	Aggs       []AggSpec

	desc    *tuple.Desc
	results []tuple.Tuple
	pos     int
}

type aggState struct {
	count     int64
	sum       []int64
	min, max  []int64
	populated bool
}

// Open drains the child and materialises grouped results.
func (h *HashAgg) Open() error {
	if err := h.Child.Open(); err != nil {
		return err
	}
	in := h.Child.Desc()
	var fields []tuple.FieldDef
	if h.GroupField >= 0 {
		fields = append(fields, in.Fields[h.GroupField])
	}
	for i, a := range h.Aggs {
		name := fmt.Sprintf("agg%d", i)
		fields = append(fields, tuple.FieldDef{Name: name, Type: tuple.Int64})
		_ = a
	}
	h.desc = &tuple.Desc{Fields: fields}

	groups := map[int64]*aggState{}
	var keys []int64
	for {
		t, ok, err := h.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		key := int64(0)
		if h.GroupField >= 0 {
			key = t.Values[h.GroupField].I64
		}
		st := groups[key]
		if st == nil {
			st = &aggState{
				sum: make([]int64, len(h.Aggs)),
				min: make([]int64, len(h.Aggs)),
				max: make([]int64, len(h.Aggs)),
			}
			groups[key] = st
			keys = append(keys, key)
		}
		st.count++
		for i, a := range h.Aggs {
			if a.Fn == Count {
				continue
			}
			v := t.Values[a.Field].I64
			st.sum[i] += v
			if !st.populated || v < st.min[i] {
				st.min[i] = v
			}
			if !st.populated || v > st.max[i] {
				st.max[i] = v
			}
		}
		st.populated = true
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h.results = h.results[:0]
	for _, key := range keys {
		st := groups[key]
		out := tuple.Tuple{Values: make([]tuple.Value, 0, len(h.desc.Fields))}
		if h.GroupField >= 0 {
			out.Values = append(out.Values, tuple.VInt(key))
		}
		for i, a := range h.Aggs {
			var v int64
			switch a.Fn {
			case Count:
				v = st.count
			case Sum:
				v = st.sum[i]
			case Min:
				v = st.min[i]
			case Max:
				v = st.max[i]
			case Avg:
				if st.count > 0 {
					v = st.sum[i] / st.count
				}
			}
			out.Values = append(out.Values, tuple.VInt(v))
		}
		h.results = append(h.results, out)
	}
	h.pos = 0
	return nil
}

// Rewind restarts result iteration without re-running the child.
func (h *HashAgg) Rewind() error {
	h.pos = 0
	return nil
}

// Close closes the child.
func (h *HashAgg) Close() error { return h.Child.Close() }

// Desc returns the aggregate output schema.
func (h *HashAgg) Desc() *tuple.Desc { return h.desc }

// Next returns the next group row (groups ordered by key for determinism).
func (h *HashAgg) Next() (tuple.Tuple, bool, error) {
	if h.pos >= len(h.results) {
		return tuple.Tuple{}, false, nil
	}
	t := h.results[h.pos]
	h.pos++
	return t, true, nil
}

// Limit caps the number of tuples produced.
type Limit struct {
	Child Operator
	N     int
	seen  int
}

// Open opens the child and resets the counter.
func (l *Limit) Open() error { l.seen = 0; return l.Child.Open() }

// Rewind rewinds the child and resets the counter.
func (l *Limit) Rewind() error { l.seen = 0; return l.Child.Rewind() }

// Close closes the child.
func (l *Limit) Close() error { return l.Child.Close() }

// Desc returns the child's schema.
func (l *Limit) Desc() *tuple.Desc { return l.Child.Desc() }

// Next returns the next tuple until the cap is hit.
func (l *Limit) Next() (tuple.Tuple, bool, error) {
	if l.seen >= l.N {
		return tuple.Tuple{}, false, nil
	}
	t, ok, err := l.Child.Next()
	if ok {
		l.seen++
	}
	return t, ok, err
}

// SliceScan serves tuples from memory; network operators and tests use it.
type SliceScan struct {
	Schema *tuple.Desc
	Rows   []tuple.Tuple
	pos    int
}

// Open resets the cursor.
func (s *SliceScan) Open() error { s.pos = 0; return nil }

// Rewind resets the cursor.
func (s *SliceScan) Rewind() error { s.pos = 0; return nil }

// Close is a no-op.
func (s *SliceScan) Close() error { return nil }

// Desc returns the slice's schema.
func (s *SliceScan) Desc() *tuple.Desc { return s.Schema }

// Next returns the next row.
func (s *SliceScan) Next() (tuple.Tuple, bool, error) {
	if s.pos >= len(s.Rows) {
		return tuple.Tuple{}, false, nil
	}
	t := s.Rows[s.pos]
	s.pos++
	return t, true, nil
}

// Drain runs an operator to completion and returns all rows.
func Drain(op Operator) ([]tuple.Tuple, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []tuple.Tuple
	for {
		t, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}

// Sort materialises and orders its child's output by one field (ascending;
// Desc reverses). Replicas stored in different sort orders (§3.1) are
// queried with a Sort on top when a plan needs a specific order.
type Sort struct {
	Child      Operator
	Field      int
	Descending bool

	rows []tuple.Tuple
	pos  int
}

// Open drains and sorts the child.
func (s *Sort) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	for {
		t, ok, err := s.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, t)
	}
	d := s.Child.Desc()
	isChar := d.Fields[s.Field].Type == tuple.Char
	sort.SliceStable(s.rows, func(i, j int) bool {
		var less bool
		if isChar {
			less = s.rows[i].Values[s.Field].Str < s.rows[j].Values[s.Field].Str
		} else {
			less = s.rows[i].Values[s.Field].I64 < s.rows[j].Values[s.Field].I64
		}
		if s.Descending {
			return !less
		}
		return less
	})
	s.pos = 0
	return nil
}

// Rewind restarts result iteration.
func (s *Sort) Rewind() error { s.pos = 0; return nil }

// Close closes the child.
func (s *Sort) Close() error { return s.Child.Close() }

// Desc returns the child's schema.
func (s *Sort) Desc() *tuple.Desc { return s.Child.Desc() }

// Next returns rows in sorted order.
func (s *Sort) Next() (tuple.Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return tuple.Tuple{}, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}
