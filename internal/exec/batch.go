package exec

import (
	"fmt"

	"harbor/internal/tuple"
)

// DefaultBatchRows is the target fill of one pipeline batch. It matches the
// wire layer's frame flush target so a full batch becomes one frame.
const DefaultBatchRows = 256

// BatchOperator is the batch-at-a-time face of an operator: NextBatch
// resets b and fills it with up to DefaultBatchRows rows. A batch left
// empty signals end of stream. Next() remains available on every operator
// (the §5.4.2 join path and tests stay tuple-at-a-time).
type BatchOperator interface {
	Operator
	NextBatch(b *tuple.Batch) error
}

// AsBatch returns op itself when it implements BatchOperator natively, or
// wraps it in an adapter that fills batches through Next().
func AsBatch(op Operator) BatchOperator {
	if b, ok := op.(BatchOperator); ok {
		return b
	}
	return &batchAdapter{op}
}

type batchAdapter struct {
	Operator
}

func (a *batchAdapter) NextBatch(b *tuple.Batch) error {
	b.Reset()
	for b.Len() < DefaultBatchRows {
		t, ok, err := a.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		b.Append(t)
	}
	return nil
}

// NextBatch fills the batch page-at-a-time: one latch acquisition yields
// every qualifying row of the page instead of one row per Next() call.
func (s *SeqScan) NextBatch(b *tuple.Batch) error {
	b.Reset()
	if !s.open {
		return fmt.Errorf("exec: scan not open")
	}
	for b.Len() < DefaultBatchRows {
		if s.frame == nil {
			for s.pageI >= len(s.pages) {
				s.segI++
				if s.segI >= len(s.segs) {
					return nil
				}
				s.pages = s.heap.SegmentPages(s.segs[s.segI])
				s.pageI = 0
			}
			if err := s.pinPage(); err != nil {
				return err
			}
		}
		pg := s.frame.Page
		for ; s.slot < pg.NumSlots() && b.Len() < DefaultBatchRows; s.slot++ {
			if !pg.Used(s.slot) {
				continue
			}
			raw, err := pg.Slot(s.slot)
			if err != nil {
				return err
			}
			t, err := tuple.Decode(s.desc, raw)
			if err != nil {
				return err
			}
			vis, out := s.present(t)
			if !vis || !s.spec.Pred.Eval(s.desc, out) {
				continue
			}
			b.Append(out)
		}
		if s.slot >= pg.NumSlots() {
			s.releaseFrame()
			s.pageI++
		}
	}
	return nil
}

// NextBatch filters the child's batches in place; it keeps pulling until a
// batch survives the predicate or the child ends, so an empty batch still
// means end of stream.
func (f *Filter) NextBatch(b *tuple.Batch) error {
	if f.bchild == nil {
		f.bchild = AsBatch(f.Child)
	}
	d := f.Child.Desc()
	for {
		if err := f.bchild.NextBatch(b); err != nil {
			return err
		}
		if b.Len() == 0 {
			return nil
		}
		rows := b.Rows()
		n := 0
		for i := range rows {
			if f.Pred.Eval(d, rows[i]) {
				rows[n] = rows[i]
				n++
			}
		}
		if n > 0 {
			b.Truncate(n)
			return nil
		}
	}
}

// NextBatch maps a child batch through the projection.
func (p *Project) NextBatch(b *tuple.Batch) error {
	if p.bchild == nil {
		p.bchild = AsBatch(p.Child)
		p.scratch = tuple.NewBatch(DefaultBatchRows)
	}
	if err := p.bchild.NextBatch(p.scratch); err != nil {
		return err
	}
	b.Reset()
	for _, t := range p.scratch.Rows() {
		out := tuple.Tuple{Values: make([]tuple.Value, len(p.Fields))}
		for i, fi := range p.Fields {
			out.Values[i] = t.Values[fi]
		}
		b.Append(out)
	}
	return nil
}

// NextBatch serves the materialised group rows slab-at-a-time.
func (h *HashAgg) NextBatch(b *tuple.Batch) error {
	b.Reset()
	for b.Len() < DefaultBatchRows && h.pos < len(h.results) {
		b.Append(h.results[h.pos])
		h.pos++
	}
	return nil
}

// NextBatch serves the sorted rows slab-at-a-time.
func (s *Sort) NextBatch(b *tuple.Batch) error {
	b.Reset()
	for b.Len() < DefaultBatchRows && s.pos < len(s.rows) {
		b.Append(s.rows[s.pos])
		s.pos++
	}
	return nil
}

// DrainBatches opens op and feeds every non-empty batch to sink.
func DrainBatches(op BatchOperator, sink func(*tuple.Batch) error) error {
	if err := op.Open(); err != nil {
		return err
	}
	defer op.Close()
	b := tuple.NewBatch(DefaultBatchRows)
	for {
		if err := op.NextBatch(b); err != nil {
			return err
		}
		if b.Len() == 0 {
			return nil
		}
		if err := sink(b); err != nil {
			return err
		}
	}
}
