package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"harbor/internal/tuple"
)

var desc = tuple.MustDesc("id",
	tuple.FieldDef{Name: "id", Type: tuple.Int64},
	tuple.FieldDef{Name: "qty", Type: tuple.Int32},
	tuple.FieldDef{Name: "name", Type: tuple.Char, Size: 8},
)

func mk(id, qty int64, name string) tuple.Tuple {
	return tuple.MustMake(desc, tuple.VInt(id), tuple.VInt(qty), tuple.VStr(name))
}

func TestTermOps(t *testing.T) {
	tp := mk(10, 5, "dell")
	qf := desc.FieldIndex("qty")
	cases := []struct {
		op   Op
		v    int64
		want bool
	}{
		{EQ, 5, true}, {EQ, 6, false},
		{NE, 5, false}, {NE, 4, true},
		{LT, 6, true}, {LT, 5, false},
		{LE, 5, true}, {LE, 4, false},
		{GT, 4, true}, {GT, 5, false},
		{GE, 5, true}, {GE, 6, false},
	}
	for _, c := range cases {
		term := Term{Field: qf, Op: c.op, Value: tuple.VInt(c.v)}
		if got := term.Eval(desc, tp); got != c.want {
			t.Errorf("qty %s %d: got %v want %v", c.op, c.v, got, c.want)
		}
	}
}

func TestCharComparison(t *testing.T) {
	tp := mk(1, 0, "dell")
	nf := desc.FieldIndex("name")
	if !(Term{Field: nf, Op: EQ, Value: tuple.VStr("dell")}).Eval(desc, tp) {
		t.Fatal("EQ on char failed")
	}
	if !(Term{Field: nf, Op: LT, Value: tuple.VStr("ipod")}).Eval(desc, tp) {
		t.Fatal("dell < ipod should hold")
	}
	if (Term{Field: nf, Op: GT, Value: tuple.VStr("ipod")}).Eval(desc, tp) {
		t.Fatal("dell > ipod should not hold")
	}
}

func TestPredConjunction(t *testing.T) {
	tp := mk(10, 5, "dell")
	p := True.
		And(Term{Field: desc.Key, Op: GE, Value: tuple.VInt(5)}).
		And(Term{Field: desc.FieldIndex("qty"), Op: LT, Value: tuple.VInt(6)})
	if !p.Eval(desc, tp) {
		t.Fatal("conjunction should hold")
	}
	p2 := p.And(Term{Field: desc.FieldIndex("name"), Op: EQ, Value: tuple.VStr("ipod")})
	if p2.Eval(desc, tp) {
		t.Fatal("conjunction with false term should fail")
	}
	if !True.Eval(desc, tp) || !True.IsTrue() {
		t.Fatal("empty predicate must be true")
	}
	// And must not mutate the receiver.
	if len(p.Terms) != 2 {
		t.Fatal("And mutated its receiver")
	}
}

func TestKeyRange(t *testing.T) {
	full := FullKeyRange()
	if !full.Contains(math.MinInt64) || !full.Contains(0) || !full.Contains(math.MaxInt64) {
		t.Fatal("full range must contain everything")
	}
	r := KeyRange{Lo: 10, Hi: 20}
	if r.Contains(9) || !r.Contains(10) || !r.Contains(19) || r.Contains(20) {
		t.Fatal("half-open semantics violated")
	}
	if (KeyRange{Lo: 5, Hi: 5}).Contains(5) {
		t.Fatal("empty range should not contain its bound")
	}
	if !(KeyRange{Lo: 5, Hi: 5}).Empty() {
		t.Fatal("lo==hi should be empty")
	}
	if full.Empty() {
		t.Fatal("full range is not empty")
	}
}

func TestKeyRangeIntersect(t *testing.T) {
	a := KeyRange{Lo: 0, Hi: 100}
	b := KeyRange{Lo: 50, Hi: 200}
	got := a.Intersect(b)
	if got.Lo != 50 || got.Hi != 100 {
		t.Fatalf("intersect = %v", got)
	}
	if !a.Intersect(KeyRange{Lo: 200, Hi: 300}).Empty() {
		t.Fatal("disjoint ranges must intersect to empty")
	}
	if got := FullKeyRange().Intersect(a); got != a {
		t.Fatalf("full ∩ a = %v, want %v", got, a)
	}
}

func TestKeyRangePred(t *testing.T) {
	r := KeyRange{Lo: 10, Hi: 20}
	p := r.Pred(desc)
	for k := int64(5); k < 25; k++ {
		if got := p.Eval(desc, mk(k, 0, "")); got != r.Contains(k) {
			t.Fatalf("key %d: pred %v, range %v", k, got, r.Contains(k))
		}
	}
	if !FullKeyRange().Pred(desc).IsTrue() {
		t.Fatal("full range should compile to TRUE")
	}
}

// Property: KeyRange.Pred is equivalent to KeyRange.Contains.
func TestQuickKeyRangePredEquivalence(t *testing.T) {
	f := func(lo, hi, k int64) bool {
		r := KeyRange{Lo: lo, Hi: hi}
		return r.Pred(desc).Eval(desc, mk(k, 0, "")) == r.Contains(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect(a,b).Contains(k) == a.Contains(k) && b.Contains(k).
func TestQuickIntersectSemantics(t *testing.T) {
	f := func(alo, ahi, blo, bhi, k int64) bool {
		a := KeyRange{Lo: alo, Hi: ahi}
		b := KeyRange{Lo: blo, Hi: bhi}
		return a.Intersect(b).Contains(k) == (a.Contains(k) && b.Contains(k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	if True.String() != "TRUE" {
		t.Fatalf("True renders as %q", True.String())
	}
	p := True.And(Term{Field: 2, Op: GE, Value: tuple.VInt(3)})
	if p.String() == "" || p.String() == "TRUE" {
		t.Fatalf("predicate renders as %q", p.String())
	}
	if FullKeyRange().String() != "[*,*)" {
		t.Fatalf("full range renders as %q", FullKeyRange().String())
	}
}
