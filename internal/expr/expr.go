// Package expr provides the predicate language used by scans, update
// distribution, and recovery-plan computation.
//
// HARBOR's recovery queries only need conjunctions of comparisons against
// constants — including the three timestamp range predicates of §4.2
// (insertion-time ≤ T, insertion-time > T, deletion-time > T) and the key
// ranges that define horizontal partitions — so the language is a
// conjunction of (field op constant) terms. That also matches the thesis
// implementation, which had no SQL frontend (§6.1.5).
package expr

import (
	"fmt"
	"strings"

	"harbor/internal/tuple"
)

// Op is a comparison operator.
type Op uint8

const (
	EQ Op = iota + 1
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Term is one comparison: field <op> constant. For Char fields the
// comparison is lexicographic on Str; for integer fields it is numeric
// on I64.
type Term struct {
	Field int // physical field index
	Op    Op
	Value tuple.Value
}

// Eval evaluates the term against a tuple under its schema.
func (t Term) Eval(d *tuple.Desc, tp tuple.Tuple) bool {
	var cmp int
	if d.Fields[t.Field].Type == tuple.Char {
		cmp = strings.Compare(tp.Values[t.Field].Str, t.Value.Str)
	} else {
		a, b := tp.Values[t.Field].I64, t.Value.I64
		switch {
		case a < b:
			cmp = -1
		case a > b:
			cmp = 1
		}
	}
	switch t.Op {
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	case GE:
		return cmp >= 0
	default:
		return false
	}
}

// Pred is a conjunction of terms. The zero value (no terms) is "true".
type Pred struct {
	Terms []Term
}

// True is the always-true predicate.
var True = Pred{}

// And returns a predicate that is the conjunction of p and terms.
func (p Pred) And(terms ...Term) Pred {
	out := Pred{Terms: make([]Term, 0, len(p.Terms)+len(terms))}
	out.Terms = append(out.Terms, p.Terms...)
	out.Terms = append(out.Terms, terms...)
	return out
}

// Eval evaluates the conjunction.
func (p Pred) Eval(d *tuple.Desc, tp tuple.Tuple) bool {
	for _, t := range p.Terms {
		if !t.Eval(d, tp) {
			return false
		}
	}
	return true
}

// IsTrue reports whether the predicate has no terms.
func (p Pred) IsTrue() bool { return len(p.Terms) == 0 }

// String renders the predicate.
func (p Pred) String() string {
	if p.IsTrue() {
		return "TRUE"
	}
	parts := make([]string, len(p.Terms))
	for i, t := range p.Terms {
		v := fmt.Sprintf("%d", t.Value.I64)
		if t.Value.Str != "" {
			v = fmt.Sprintf("%q", t.Value.Str)
		}
		parts[i] = fmt.Sprintf("f%d %s %s", t.Field, t.Op, v)
	}
	return strings.Join(parts, " AND ")
}

// KeyRange is a half-open interval [Lo, Hi) over the tuple-identifier field,
// used to describe horizontal partitions and the recovery predicates
// computed for recovery objects (§5.1). Lo > Hi never matches; the full
// range is [math.MinInt64, math.MaxInt64] expressed via FullKeyRange.
type KeyRange struct {
	Lo int64 // inclusive
	Hi int64 // exclusive; Hi == math.MaxInt64 means unbounded above
}

// FullKeyRange covers every key.
func FullKeyRange() KeyRange {
	return KeyRange{Lo: -1 << 63, Hi: 1<<63 - 1}
}

// Contains reports whether k falls in the range. As a special case the
// upper bound math.MaxInt64 is treated as +∞ (so MaxInt64 itself matches).
func (r KeyRange) Contains(k int64) bool {
	if k < r.Lo {
		return false
	}
	if r.Hi == 1<<63-1 {
		return true
	}
	return k < r.Hi
}

// Intersect returns the overlap of two ranges (possibly empty).
func (r KeyRange) Intersect(o KeyRange) KeyRange {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return KeyRange{Lo: lo, Hi: hi}
}

// Empty reports whether the range matches nothing.
func (r KeyRange) Empty() bool { return r.Lo >= r.Hi && r.Hi != 1<<63-1 || r.Lo > r.Hi }

// Pred converts the range into a predicate on the schema's key field.
func (r KeyRange) Pred(d *tuple.Desc) Pred {
	p := Pred{}
	full := FullKeyRange()
	if r.Lo != full.Lo {
		p = p.And(Term{Field: d.Key, Op: GE, Value: tuple.VInt(r.Lo)})
	}
	if r.Hi != full.Hi {
		p = p.And(Term{Field: d.Key, Op: LT, Value: tuple.VInt(r.Hi)})
	}
	return p
}

// String renders the range.
func (r KeyRange) String() string {
	full := FullKeyRange()
	if r == full {
		return "[*,*)"
	}
	return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi)
}
