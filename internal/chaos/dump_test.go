package chaos

import (
	"strings"
	"testing"
	"time"

	"harbor/internal/testutil"
	"harbor/internal/txn"
)

// TestViolationCarriesTxnTimeline demonstrates the failure-report contract:
// when an invariant violation implicates a transaction, the recorded message
// carries the seed plus that transaction's trace timeline from the
// coordinator and every live worker — enough to replay and localize the
// failure without re-instrumenting anything.
func TestViolationCarriesTxnTimeline(t *testing.T) {
	base := t.TempDir()
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:      2,
		Protocol:     txn.OptTwoPC,
		LockTimeout:  500 * time.Millisecond,
		RoundTimeout: 800 * time.Millisecond,
		BaseDir:      base,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.CreateReplicatedTable(tableStreams, chaosDesc(), 4); err != nil {
		t.Fatal(err)
	}

	tx := cl.Coord.Begin()
	id := tx.ID()
	if err := tx.Insert(tableStreams, mkT(1, 42)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	h := &Harness{Seed: 1234, Name: "demo", Cl: cl, crashed: map[int]bool{}}
	h.violateTxnf(id, "invariant 1: synthetic violation for txn %d", id)

	if len(h.violations) != 1 {
		t.Fatalf("expected 1 violation, got %d", len(h.violations))
	}
	v := h.violations[0]
	t.Logf("violation message:\n%s", v)
	for _, want := range []string{
		"seed=1234",       // replayable
		"coordinator txn", // coordinator timeline present
		"worker 0 txn",    // each worker's timeline present
		"worker 1 txn",
		"commit-point", // the coordinator reached its commit point
		"vote",         // workers voted
		"begin",        // lifecycle start recorded
	} {
		if !strings.Contains(v, want) {
			t.Errorf("violation message missing %q", want)
		}
	}
}
