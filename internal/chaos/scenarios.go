package chaos

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"harbor/internal/comm"
	"harbor/internal/coord"
	"harbor/internal/core"
	"harbor/internal/exec"
	"harbor/internal/faultnet"
	"harbor/internal/testutil"
	"harbor/internal/txn"
	"harbor/internal/wire"
)

// recoveryProtocols lists the commit protocols the chaos matrix runs the
// generic scenarios under: the worker-logless plans, which pair with the
// Chapter 5 replica-based recovery the harness performs after healing.
// The logging variants — traditional 2PC and canonical 3PC — are excluded:
// their workers keep a WAL and restart with ARIES (§6.1), which the
// replica-recovery harness does not drive; pairing them with HARBOR
// recovery would discard their logs mid-experiment rather than test
// anything §4.3 claims about them.
func recoveryProtocols() []txn.Protocol {
	var out []txn.Protocol
	for _, p := range txn.Protocols() {
		if !p.Plan().WorkerForces() {
			out = append(out, p)
		}
	}
	return out
}

// protoTag is the short scenario-name tag for a protocol.
func protoTag(p txn.Protocol) string {
	switch p {
	case txn.OptTwoPC:
		return "2pc"
	case txn.OptThreePC:
		return "3pc"
	case txn.EarlyVote1PC:
		return "1pc"
	default:
		return fmt.Sprintf("p%d", uint8(p))
	}
}

// Scenarios returns the standard chaos suite — the protocol × scenario
// matrix; each entry is run under every seed the test chooses.
func Scenarios() []Scenario {
	var out []Scenario
	for _, p := range recoveryProtocols() {
		out = append(out, PartitionHeal(p), StallRecover(p), ScanStall(p), Compound(p))
	}
	// coord-kill drives raw Table 4.1 transactions that a backup
	// coordinator must finish by worker consensus, which requires the
	// prepared-to-commit state (§4.3.3). The 2PC family blocks on the
	// coordinator instead (§4.3.2), and the early-vote 1PC plan never
	// creates the PTC state (Plan.EarlyVote re-introduces blocking), so
	// only the 3PC plan runs this scenario.
	out = append(out, CoordKill3PC(txn.OptThreePC))
	// instant-serve checks availability, not outcome, so one protocol's
	// run covers the claim; the per-protocol matrix above already stresses
	// recovery under every plan.
	out = append(out, InstantServe(txn.OptThreePC))
	// join-rebalance drives the segment-transfer engine's second caller
	// (Migrate) rather than crash recovery; the placement mechanics are
	// protocol-independent, so one protocol's run covers it.
	out = append(out, JoinRebalance(txn.OptThreePC))
	return out
}

// JoinRebalance exercises online scale-out under fire: a cold fourth site
// registers and core.Join streams every table onto it from live buddies
// while the workload keeps committing — with a donor fail-stopped
// mid-migration, so the engine's retry path must replan the transfer
// against the survivors. After heal and recovery, the donor's coverage of
// the streams table is split at its key median and the upper half is
// withdrawn from it (moved to the least-loaded site), leaving a genuinely
// partial placement: the donor must refuse scans planned against the old
// placement (purge notes → coordinator replan) and the aftershock workload
// plus all four invariants must hold over the mixed full/partial layout.
func JoinRebalance(p txn.Protocol) Scenario {
	return Scenario{
		Name:     "join-rebalance-" + protoTag(p),
		Protocol: p,
		Workers:  3,
		Drive: func(h *Harness) {
			h.RunWorkload(4, 40, func() {
				h.sleepMS(80, 150) // let the streams seed some rows first
				// Register the cold site's directory on the disk seam
				// before it opens any file, like Run does for the
				// original workers.
				ni := len(h.Cl.Workers)
				dir := filepath.Join(h.Cl.Cfg.BaseDir,
					fmt.Sprintf("site%d", testutil.WorkerSiteID(ni)))
				h.Disk.Register(dir, fmt.Sprintf("w%d", ni))
				w, err := h.Cl.AddWorker()
				if err != nil {
					h.violatef("join-rebalance: opening cold site: %v", err)
					return
				}
				h.Net.Name(w.Addr(), fmt.Sprintf("w%d", ni))
				// Throttle one donor so the transfer window is long enough
				// to overlap the donor kill below.
				bw := h.workerAddr(h.rng.Intn(ni))
				h.Net.SetBandwidth(bw, 256<<10)
				done := make(chan error, 1)
				go func() {
					done <- core.Join(w, h.Cl.Catalog, core.Options{Parallel: true})
				}()
				// Kill a donor mid-migration (never the last two: K-safety
				// needs a live buddy for the retry to replan against).
				h.sleepMS(20, 60)
				h.CrashWorker(h.rng.Intn(ni))
				err = <-done
				h.Net.SetBandwidth(bw, 0)
				if err != nil {
					// One retry on a quiet cluster: the engine's own
					// attempts may all have raced the crash window.
					h.sleepMS(100, 200)
					err = core.Join(w, h.Cl.Catalog, core.Options{Parallel: true})
				}
				if err != nil {
					h.violatef("join-rebalance: join of site %d failed: %v", testutil.WorkerSiteID(ni), err)
				}
			})
		},
		After: func(h *Harness) {
			// Split the donor's (full) coverage of the streams table at its
			// key median and move the upper half to the least-loaded site.
			// The healed cluster is 4-way replicated, so withdrawing the
			// donor's half keeps 3-way coverage of that range.
			donor := h.rng.Intn(3)
			spec, ok := core.PlanSplit(h.Cl.Workers[donor], h.Cl.Catalog, tableStreams)
			if !ok {
				h.violatef("join-rebalance: no split point on worker %d's coverage of table %d", donor, tableStreams)
				return
			}
			target, ok := core.LeastLoadedSite(h.Cl.Catalog, spec.DropFrom)
			if !ok {
				h.violatef("join-rebalance: no target site for the split half")
				return
			}
			tw := h.Cl.Workers[int(target)-1]
			if _, err := core.Migrate(tw, h.Cl.Catalog, spec, core.Options{Parallel: true}); err != nil {
				h.violatef("join-rebalance: moving [%d,%d) of table %d from site %d to site %d: %v",
					spec.Range.Lo, spec.Range.Hi, spec.Table, spec.DropFrom, target, err)
			}
		},
	}
}

// InstantServe pins the MTTR-split claim under chaos: a continuous query
// client runs across a worker crash, restart, and full HARBOR recovery —
// with the recovery window stretched by a throttled buddy — and the round
// is a violation if the cluster answered zero queries during a long
// recovery window. Per-object routing is what makes this pass comfortably:
// survivors serve throughout, and the recovering site's objects rejoin the
// read plan one by one as they turn Ready instead of all-at-once at the
// end of catch-up. Result contents are verified post-heal by the standing
// invariants.
func InstantServe(p txn.Protocol) Scenario {
	return Scenario{
		Name:     "instant-serve-" + protoTag(p),
		Protocol: p,
		Workers:  3,
		Drive: func(h *Harness) {
			var served atomic.Int64
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := h.Cl.Coord.Scan(tableStreams, coord.QueryOptions{Historical: true}); err == nil {
						served.Add(1)
					}
					time.Sleep(5 * time.Millisecond)
				}
			}()
			h.RunWorkload(4, 40, func() {
				for round := 0; round < 2; round++ {
					var online []int
					for i := range h.Cl.Workers {
						if !h.Cl.Coord.SiteDown(testutil.WorkerSiteID(i)) {
							online = append(online, i)
						}
					}
					if len(online) < 2 {
						return // never take down the final survivor
					}
					vi := h.rng.Intn(len(online))
					victim := online[vi]
					h.CrashWorker(victim)
					h.sleepMS(50, 120)
					// Throttle a buddy so the recovery window is long enough
					// to be observable; the query client must keep landing
					// successful reads inside it.
					bw := h.workerAddr(online[(vi+1+h.rng.Intn(len(online)-1))%len(online)])
					h.Net.SetBandwidth(bw, 256<<10)
					if w, err := h.Cl.RestartWorker(victim); err == nil {
						before := served.Load()
						recStart := time.Now()
						if _, rerr := core.New(w, h.Cl.Catalog).RecoverSite(core.Options{Parallel: true}); rerr == nil {
							h.mu.Lock()
							delete(h.crashed, victim)
							h.mu.Unlock()
						}
						recDur := time.Since(recStart)
						// A sub-250ms recovery can legitimately fit between two
						// query ticks; only a long window with zero successes
						// means reads stalled behind recovery.
						if during := served.Load() - before; during == 0 && recDur > 250*time.Millisecond {
							h.violatef("instant-serve: zero queries succeeded during worker %d's %v recovery window", victim, recDur)
						}
					}
					h.Net.SetBandwidth(bw, 0)
					h.sleepMS(50, 120)
				}
			})
			close(stop)
			wg.Wait()
		},
	}
}

// PartitionHeal partitions one worker at a time — sometimes one-way, so
// requests arrive but replies vanish (§5.5's gray zone) — heals, repeats,
// and finally fail-stops a worker for the remainder of the workload.
func PartitionHeal(p txn.Protocol) Scenario {
	return Scenario{
		Name:     "partition-heal-" + protoTag(p),
		Protocol: p,
		Workers:  3,
		Drive: func(h *Harness) {
			h.RunWorkload(4, 40, func() {
				dirs := []faultnet.Direction{faultnet.In, faultnet.Out, faultnet.Both}
				for round := 0; round < 3; round++ {
					w := h.rng.Intn(len(h.Cl.Workers))
					h.Net.Partition(h.workerAddr(w), dirs[h.rng.Intn(len(dirs))])
					h.sleepMS(120, 250)
					h.Net.Heal(h.workerAddr(w))
					h.sleepMS(30, 80)
				}
				// Fail-stop a worker, but never the last online replica: a
				// crash beyond K-safety can lose unflushed state that no
				// replica can restore, which is outside HARBOR's guarantee.
				// Evictions, by contrast, keep the final survivor's state
				// intact for §5.5 total-outage recovery.
				var online []int
				for i := range h.Cl.Workers {
					if !h.Cl.Coord.SiteDown(testutil.WorkerSiteID(i)) {
						online = append(online, i)
					}
				}
				if len(online) >= 2 {
					h.CrashWorker(online[h.rng.Intn(len(online))])
				}
				h.sleepMS(50, 100)
			})
		},
	}
}

// CoordKill3PC drives raw 3PC transactions whose coordinator connections
// are dropped mid-protocol — before PTC, after a subset of PTCs, after all
// of them, and once with the designated backup crashed too — while client
// streams keep the cluster busy. Message delay/jitter is armed throughout
// and the backup's replay messages are delivered in duplicate, so worker
// consensus (Table 4.1) must resolve each transaction under exactly the
// delayed-and-duplicated conditions §4.3.4 worries about.
func CoordKill3PC(p txn.Protocol) Scenario {
	return Scenario{
		Name:     "coord-kill-3pc",
		Protocol: p,
		Workers:  3,
		Drive: func(h *Harness) {
			for i := range h.Cl.Workers {
				h.Net.SetDelay(h.workerAddr(i), time.Millisecond, 3*time.Millisecond)
			}
			h.RunWorkload(2, 30, func() {
				ids := txn.NewIDSource(7)
				cases := []struct {
					ptcTo       []int
					crashBackup bool
				}{
					{ptcTo: []int{0, 1, 2}},                    // row 5: all in PTC → commit
					{ptcTo: nil},                               // row 3: all merely prepared → abort
					{ptcTo: []int{0}},                          // backup itself holds PTC → commit
					{ptcTo: []int{2}},                          // backup merely prepared → abort all
					{ptcTo: []int{0, 1, 2}, crashBackup: true}, // backup dead → next rank commits
				}
				for k, tc := range cases {
					h.RunRawConsensus(ids.Next(), int64(100+k), int64(k+1), tc.ptcTo, tc.crashBackup)
					h.sleepMS(20, 60)
				}
			})
		},
	}
}

// StallRecover freezes one worker's outbound traffic past the fan-out round
// timeout — the coordinator evicts it while its late replies land on pooled
// connections — throttles another's bandwidth, and abruptly drops every
// connection of a third (fail-stop as seen from TCP, §5.5).
func StallRecover(p txn.Protocol) Scenario {
	return Scenario{
		Name:     "stall-recover-" + protoTag(p),
		Protocol: p,
		Workers:  3,
		Drive: func(h *Harness) {
			h.RunWorkload(4, 40, func() {
				// Stalls must out-last the harness's RoundTimeout (800ms) or
				// the coordinator just waits them out instead of evicting.
				for round := 0; round < 5; round++ {
					w := h.rng.Intn(len(h.Cl.Workers))
					d := time.Duration(900+h.rng.Intn(600)) * time.Millisecond
					h.Net.Stall(h.workerAddr(w), d, faultnet.Out)
					h.sleepMS(100, 250)
				}
				bw := h.rng.Intn(len(h.Cl.Workers))
				h.Net.SetBandwidth(h.workerAddr(bw), 64<<10)
				h.sleepMS(100, 200)
				h.Net.SetBandwidth(h.workerAddr(bw), 0)
				h.Net.DropConns(h.workerAddr(h.rng.Intn(len(h.Cl.Workers))))
				h.sleepMS(50, 150)
			})
		},
	}
}

// ScanStall streams historical scans through the coordinator's k-way merge
// for the whole fault era — batch frames in flight while outbound stalls
// outlast the round timeout, so scans hit mid-stream evictions and must
// fail over to another replica's slice — and, mid-fault, crashes a worker
// and drives HARBOR recovery on it immediately: Phase 2 catch-up frames
// and client scan frames share the wire under a bandwidth throttle.
func ScanStall(p txn.Protocol) Scenario {
	return Scenario{
		Name:     "scan-stall-" + protoTag(p),
		Protocol: p,
		Workers:  3,
		Drive: func(h *Harness) {
			// A dedicated query client, beyond the streams' occasional scans:
			// back-to-back historical reads alternating between plain scans
			// and pushed-down aggregates, so every fault below lands on an
			// open scan or partial-state stream. Contents are verified
			// post-heal (the aggregate invariant included); here only that
			// queries neither wedge nor take the coordinator down.
			desc := chaosDesc()
			aggPlan := exec.AggPlan{GroupField: desc.FieldIndex("v"), Aggs: []exec.AggSpec{
				{Fn: exec.Count},
				{Fn: exec.Sum, Field: desc.FieldIndex("id")},
			}}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if i%2 == 0 {
						_, _ = h.Cl.Coord.Scan(tableStreams, coord.QueryOptions{Historical: true})
					} else {
						_, _ = h.Cl.Coord.Aggregate(tableStreams, coord.QueryOptions{Historical: true}, aggPlan)
					}
					time.Sleep(5 * time.Millisecond)
				}
			}()
			h.RunWorkload(4, 40, func() {
				// Stalls must out-last RoundTimeout (800ms) so the serving
				// site of an in-flight scan slot gets evicted mid-stream.
				for round := 0; round < 3; round++ {
					w := h.rng.Intn(len(h.Cl.Workers))
					d := time.Duration(900+h.rng.Intn(600)) * time.Millisecond
					h.Net.Stall(h.workerAddr(w), d, faultnet.Out)
					h.sleepMS(150, 300)
				}
				// Crash a worker (never the last online replica) and run
				// recovery catch-up right away, while the scan client keeps
				// streaming from the survivors and a throttled buddy slows
				// the Phase 2 frames to a crawl.
				var online []int
				for i := range h.Cl.Workers {
					if !h.Cl.Coord.SiteDown(testutil.WorkerSiteID(i)) {
						online = append(online, i)
					}
				}
				if len(online) >= 2 {
					vi := h.rng.Intn(len(online))
					victim := online[vi]
					h.CrashWorker(victim)
					h.sleepMS(50, 100)
					bw := h.workerAddr(online[(vi+1+h.rng.Intn(len(online)-1))%len(online)])
					h.Net.SetBandwidth(bw, 256<<10)
					if w, err := h.Cl.RestartWorker(victim); err == nil {
						if _, err := core.New(w, h.Cl.Catalog).RecoverSite(core.Options{Parallel: true}); err == nil {
							h.mu.Lock()
							delete(h.crashed, victim)
							h.mu.Unlock()
						}
						// On failure the worker stays marked crashed; the
						// post-heal pass restarts and recovers it cleanly.
					}
					h.Net.SetBandwidth(bw, 0)
				}
				h.sleepMS(50, 150)
			})
			close(stop)
			wg.Wait()
		},
	}
}

// Compound layers every fault class of the harness into one run: a network
// partition mid-workload, then — against one victim — a real checkpoint
// followed by a lying-fsync era, a crash that materializes the seeded
// torn/dropped-write schedule, and direct corruption of a flushed heap page
// under the downed site. Recovery must absorb the lot: the checkpoint fixes
// the durability horizon before the disk starts lying, so every loss is
// either above the checkpoint (rebuilt by Phases 1–2 from a buddy) or
// CRC-quarantined (repaired from a buddy by the Phase 0 scrub).
func Compound(p txn.Protocol) Scenario {
	return Scenario{
		Name:     "compound-" + protoTag(p),
		Protocol: p,
		Workers:  3,
		Drive: func(h *Harness) {
			h.RunWorkload(4, 40, h.compoundFaults)
		},
	}
}

// compoundFaults is the fault schedule shared by the Compound scenario and
// the soak rounds; it runs on the Drive goroutine while workload streams
// are in flight.
func (h *Harness) compoundFaults() {
	w := h.rng.Intn(len(h.Cl.Workers))
	h.Net.Partition(h.workerAddr(w), faultnet.Both)
	h.sleepMS(120, 250)
	h.Net.Heal(h.workerAddr(w))
	h.sleepMS(30, 80)

	var online []int
	for i := range h.Cl.Workers {
		if !h.Cl.Coord.SiteDown(testutil.WorkerSiteID(i)) {
			online = append(online, i)
		}
	}
	if len(online) < 2 {
		return // never take down the final survivor
	}
	victim := online[h.rng.Intn(len(online))]
	// Fix the durability horizon with a real checkpoint, THEN let the disk
	// lie. An fsync that lies across a checkpoint would advance the horizon
	// past actually-durable data — a loss no replica-based recovery could
	// even detect; HARBOR's contract (§3.2) assumes the checkpoint record
	// itself is truthful.
	if err := h.Cl.Workers[victim].CheckpointNow(); err != nil {
		return
	}
	h.Disk.SetLyingFsync(h.siteDir(victim), true)
	h.sleepMS(150, 300)
	h.CrashWorker(victim)
	h.Disk.SetLyingFsync(h.siteDir(victim), false)
	// Belt and braces on top of whatever the crash tore: flip bytes in one
	// flushed page so at least one CRC quarantine and buddy repair must
	// happen during recovery.
	h.TearPage(victim, tableStreams)
	h.sleepMS(50, 150)
}

// RunRawConsensus plays coordinator for one 3PC transaction on the
// consensus table and then "dies" (drops its connections), leaving the
// workers' Table 4.1 consensus to finish it. ptcTo lists the worker
// indexes that receive PREPARE-TO-COMMIT before the death; the expected
// outcome is commit iff the backup coordinator — the lowest-ranked live
// participant — is among them. With crashBackup the lowest worker is
// fail-stopped after its PTC, forcing backup promotion. Duplicate delivery
// is armed on every worker for the consensus window, so the backup's
// replayed PTC/COMMIT/ABORT messages each arrive twice.
func (h *Harness) RunRawConsensus(id txn.ID, key, val int64, ptcTo []int, crashBackup bool) {
	rec := rawRec{id: id, key: key, val: val}
	var conns []*comm.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	var sites []int32
	for i := range h.Cl.Workers {
		sites = append(sites, int32(testutil.WorkerSiteID(i)))
	}

	ok := true
	for i := range h.Cl.Workers {
		c, err := comm.Dial(h.workerAddr(i))
		if err != nil {
			ok = false
			break
		}
		conns = append(conns, c)
		if _, err := c.Call(&wire.Msg{Type: wire.MsgBegin, Txn: id}); err != nil {
			ok = false
			break
		}
		resp, err := c.Call(&wire.Msg{Type: wire.MsgInsert, Txn: id,
			Table: tableConsensus, Tuple: wire.TupleValues(mkT(key, val))})
		if err != nil || resp.Type != wire.MsgOK {
			ok = false
			break
		}
	}
	if ok {
		for _, c := range conns {
			resp, err := c.Call(&wire.Msg{Type: wire.MsgPrepare, Txn: id, Sites: sites})
			if err != nil || resp.Type != wire.MsgVote || !resp.Yes() {
				ok = false
				break
			}
		}
	}
	if ok {
		ts := h.Cl.Coord.Authority.Issue()
		defer h.Cl.Coord.Authority.Complete(ts)
		rec.ts = ts
		delivered := map[int]bool{}
		for _, i := range ptcTo {
			resp, err := conns[i].Call(&wire.Msg{Type: wire.MsgPrepareToCommit, Txn: id, TS: ts})
			if err == nil && resp.Type == wire.MsgOK {
				delivered[i] = true
			}
		}
		// The backup (lowest live participant) decides from its own state.
		backup := 0
		if crashBackup {
			backup = 1
		}
		rec.expectCommit = delivered[backup]
	}

	// Duplicate the backup's consensus dials for this window. Existing
	// connections (ours, the coordinator's pooled ones) are unaffected.
	for i := range h.Cl.Workers {
		h.Net.SetDupOnDial(h.workerAddr(i), true)
	}
	for _, c := range conns {
		c.Close()
	}
	conns = nil
	if ok && crashBackup {
		h.CrashWorker(0)
	}

	h.awaitRawOutcome(&rec)
	for i := range h.Cl.Workers {
		h.Net.SetDupOnDial(h.workerAddr(i), false)
	}
	h.mu.Lock()
	h.raws = append(h.raws, rec)
	h.mu.Unlock()
}

// awaitRawOutcome polls every live worker until it reports a terminal (or
// forgotten) state for the raw transaction, checking the outcome against
// Table 4.1 and the commit timestamp against the one the "coordinator"
// issued.
func (h *Harness) awaitRawOutcome(rec *rawRec) {
	deadline := time.Now().Add(10 * time.Second)
	for i, w := range h.Cl.Workers {
		h.mu.Lock()
		dead := h.crashed[i]
		h.mu.Unlock()
		if dead || w.Crashed() {
			continue
		}
		for {
			st, ts, known := w.TxnState(rec.id)
			if rec.expectCommit {
				if known && st == txn.StateCommitted {
					if ts != rec.ts {
						h.violatef("invariant 4: consensus committed txn %d on worker %d at ts %d, want the coordinator-issued %d", rec.id, i, ts, rec.ts)
					}
					break
				}
				if known && st == txn.StateAborted {
					h.violatef("invariant 1: consensus aborted txn %d on worker %d although the backup held PREPARE-TO-COMMIT (Table 4.1 requires commit)", rec.id, i)
					break
				}
			} else {
				if !known || st == txn.StateAborted {
					break
				}
				if st == txn.StateCommitted {
					h.violatef("invariant 2: consensus committed txn %d on worker %d although the backup was not in PREPARE-TO-COMMIT (Table 4.1 requires abort)", rec.id, i)
					break
				}
			}
			if time.Now().After(deadline) {
				h.violatef("invariant 1: raw txn %d still unresolved on worker %d (state=%v known=%v)", rec.id, i, st, known)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}
