package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"harbor/internal/coord"
	"harbor/internal/core"
	"harbor/internal/testutil"
	"harbor/internal/txn"
)

// This file is the compound-chaos soak driver: a wall-clock-bounded loop of
// chaos rounds, each one a zipfian update workload under the full fault
// stack — network partitions, a worker crash materializing seeded
// torn/dropped writes, a lying-fsync era, and direct page corruption both
// under the downed site (repaired by recovery's Phase 0 scrub) and under a
// RUNNING site (repaired online from a buddy, no restart). Every round ends
// with the four standing invariants; a violation report carries the seed
// and the executed fault schedule, which replay the round exactly.

// SoakOptions configures one soak run.
type SoakOptions struct {
	Seed     int64
	Duration time.Duration // wall-clock budget; at least one round always runs
	BaseDir  string
	Logf     func(format string, args ...any) // optional per-round progress sink
}

// soakCommitP99SLO is the per-round commit-latency ceiling the soak flags
// against: generous enough for lock waits, partitions and round-timeout
// evictions (all sub-second by harness config), but far below a round whose
// commits stalled for a whole multi-second recovery window — the regression
// the flag exists to catch.
const soakCommitP99SLO = 5 * time.Second

// SoakResult aggregates the rounds. Violations empty = every invariant held
// in every round. SLOBreaches counts rounds whose commit p99 blew through
// soakCommitP99SLO — a latency flag, deliberately separate from the
// correctness violations: the invariants say the data healed, the SLO says
// whether queries could get at it meanwhile.
type SoakResult struct {
	Rounds int
	// CompoundRounds counts rounds that ran the compound fault schedule
	// (the others ran the join/rebalance rotation, which tears no pages —
	// the corruption-path assertions only apply when this is nonzero).
	CompoundRounds int
	Commits        int
	Aborts       int
	CorruptPages int
	PageRepairs  int
	ScrubPages   int
	ScrubRepairs int
	SLOBreaches  int
	Violations   []string
	Schedules    []string // executed fault schedules of the violating rounds
}

// Soak runs chaos rounds until the duration budget is spent, rotating
// through the worker-logless commit protocols. Round r runs under seed
// Seed+r; re-running with SOAK_SEED set to a violating round's seed (and a
// zero duration) replays that round exactly, protocol choice included.
func Soak(opt SoakOptions) (*SoakResult, error) {
	protos := recoveryProtocols()
	res := &SoakResult{}
	start := time.Now()
	for round := 0; round == 0 || time.Since(start) < opt.Duration; round++ {
		seed := opt.Seed + int64(round)
		// Protocol keyed to the seed, not the round index, so one round
		// replays in isolation from just its seed.
		p := protos[int(seed%int64(len(protos)))]
		sc := soakRound(p)
		// Every third round exercises online scale-out instead of the
		// compound fault schedule: node join under a donor kill, then a
		// segment split/rebalance — also keyed to the seed so the round
		// replays in isolation.
		if seed%3 == 2 {
			sc = JoinRebalance(p)
		} else {
			res.CompoundRounds++
		}
		r, err := Run(sc, seed, opt.BaseDir)
		if err != nil {
			return res, fmt.Errorf("soak round %d (%s seed=%d): %w", round, sc.Name, seed, err)
		}
		res.Rounds++
		res.Commits += r.Commits
		res.Aborts += r.Aborts
		res.CorruptPages += r.CorruptPages
		res.PageRepairs += r.PageRepairs
		res.ScrubPages += r.ScrubPages
		res.ScrubRepairs += r.ScrubRepairs
		if p99 := time.Duration(r.CommitP99NS); p99 > soakCommitP99SLO {
			res.SLOBreaches++
			if opt.Logf != nil {
				opt.Logf("soak round %d (%s seed=%d): SLO FLAG: commit p99 %v exceeds %v — commits stalled across a fault/recovery window",
					round, sc.Name, seed, p99, soakCommitP99SLO)
			}
		}
		if len(r.Violations) > 0 {
			res.Violations = append(res.Violations, r.Violations...)
			res.Schedules = append(res.Schedules,
				fmt.Sprintf("=== %s seed=%d: fault schedule as executed ===\n%s",
					r.Scenario, r.Seed, strings.Join(r.Trace, "\n")))
		} else {
			// A clean round's site directories are dead weight over a
			// minutes-long soak; violating rounds keep theirs for forensics.
			os.RemoveAll(filepath.Join(opt.BaseDir, fmt.Sprintf("%s-%d", sc.Name, seed)))
		}
		if opt.Logf != nil {
			opt.Logf("soak round %d (%s seed=%d): %d commits, %d aborts, %d corrupt pages, %d page repairs, %d scrubbed pages, %d scrub repairs, commit p99 %v, %d violations",
				round, sc.Name, seed, r.Commits, r.Aborts, r.CorruptPages, r.PageRepairs, r.ScrubPages, r.ScrubRepairs, time.Duration(r.CommitP99NS), len(r.Violations))
		}
	}
	return res, nil
}

// soakRound is one soak iteration: zipfian streams under the compound fault
// schedule — with background scrubbers ticking on every worker throughout,
// so proactive CRC verification runs concurrently with live flushes, crashes
// and repairs — then, once the cluster has healed and recovered, a torn page
// under a running worker that must be repaired online from a buddy.
func soakRound(p txn.Protocol) Scenario {
	return Scenario{
		Name:     "soak-" + protoTag(p),
		Protocol: p,
		Workers:  3,
		Drive: func(h *Harness) {
			// One scrubber per worker at a deliberately hot interval (a real
			// deployment would tick in minutes; the soak wants coverage in
			// seconds). A scrubber whose site crashes idles (skipping ticks)
			// until Stop reaps it.
			var scrubs []*core.Scrubber
			for i := range h.Cl.Workers {
				scrubs = append(scrubs, core.New(h.Cl.Workers[i], h.Cl.Catalog).StartScrubber(30*time.Millisecond))
			}
			h.RunZipfWorkload(4, 30, h.compoundFaults)
			for _, s := range scrubs {
				s.Stop()
			}
		},
		After: (*Harness).OnlineRepairProbe,
	}
}

// RunZipfWorkload is RunWorkload with zipfian streams: hot keys absorb most
// updates while a long tail stays cold — the skewed update pattern an
// updatable warehouse sees, and the one that keeps re-dirtying the same
// pages while faults land on their flushes.
func (h *Harness) RunZipfWorkload(streams, txnsPerStream int, faults func()) {
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			h.zipfStream(s, txnsPerStream)
		}(s)
	}
	faults()
	wg.Wait()
}

// zipfStream is one soak client: single-op transactions whose keys come
// from a zipfian draw over the stream's private key space. First touch of a
// key inserts it; later touches mostly update, sometimes delete. The same
// opRec bookkeeping as stream() feeds the invariant checker.
func (h *Harness) zipfStream(s, n int) {
	rng := rand.New(rand.NewSource(h.Seed*104729 + int64(s)))
	zipf := rand.NewZipf(rng, 1.3, 4, 255)
	co := h.Cl.Coord
	base := int64(s+1) << 32
	live := map[int64]bool{}
	recs := make([]opRec, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(10) == 0 {
			// Exercise the distributed read path mid-fault; contents are
			// verified post-heal, here only that scans don't wedge.
			_, _ = co.Scan(tableStreams, coord.QueryOptions{Historical: true})
			continue
		}
		key := base + int64(zipf.Uint64())
		kind := opInsert
		if live[key] {
			if rng.Intn(10) < 2 {
				kind = opDelete
			} else {
				kind = opUpdate
			}
		}
		rec := opRec{stream: s, kind: kind, key: key, val: int64(s+1)<<40 + int64(i)}
		tx := co.Begin()
		rec.id = tx.ID()
		var err error
		switch kind {
		case opInsert:
			err = tx.Insert(tableStreams, mkT(rec.key, rec.val))
		case opUpdate:
			err = tx.UpdateKey(tableStreams, rec.key, mkT(rec.key, rec.val))
		case opDelete:
			err = tx.DeleteKey(tableStreams, rec.key)
		}
		if err == nil {
			// Client think-time between write and COMMIT, so faults land on
			// the commit rounds too (see stream()).
			time.Sleep(time.Duration(1+rng.Intn(5)) * time.Millisecond)
		}
		if err != nil {
			_ = tx.Abort()
		} else if ts, cerr := tx.Commit(); cerr == nil {
			rec.clientOK, rec.clientTS = true, ts
			switch kind {
			case opInsert:
				live[key] = true
			case opDelete:
				delete(live, key)
			}
		}
		recs = append(recs, rec)
		time.Sleep(time.Duration(1+rng.Intn(7)) * time.Millisecond)
	}
	h.mu.Lock()
	h.ops = append(h.ops, recs)
	h.mu.Unlock()
}

// OnlineRepairProbe corrupts one flushed heap page under a RUNNING worker
// and verifies the online repair path end to end: a direct scan trips the
// CRC trailer check server-side, the worker's repair hook fetches the
// page's key range from a live buddy in the background, and the quarantine
// clears without a restart. It runs as a scenario After hook — on the
// healed, recovered cluster — because a meaningful probe needs a live,
// up-to-date buddy: tearing a page while the victim is the last good
// replica only proves that repair correctly declines, and leaves a
// quarantined page the round's invariant checks would trip over.
func (h *Harness) OnlineRepairProbe() {
	// Post-heal every worker should be running and back in the update set;
	// require both anyway so a failed recovery degrades this to a no-op
	// (the heal path's own checks report that failure) instead of a probe
	// against a cluster that cannot repair.
	var ready []int
	for i := range h.Cl.Workers {
		if !h.Cl.Workers[i].Crashed() && !h.Cl.Coord.SiteDown(testutil.WorkerSiteID(i)) {
			ready = append(ready, i)
		}
	}
	if len(ready) < 2 {
		return // need a victim plus at least one up-to-date buddy
	}
	vi := ready[h.rng.Intn(len(ready))]
	w := h.Cl.Workers[vi]
	before := w.Obs().Counter("recover.page_repairs").Load()
	// Flush everything and drop the cache so the poisoned page is actually
	// read from disk, not served from a clean frame.
	if err := w.CheckpointNow(); err != nil {
		return
	}
	w.Pool.DiscardAll()
	if !h.TearPage(vi, tableStreams) {
		return
	}
	// A direct scan trips the CRC trailer check server-side and arms the
	// background repair; the scan's own error is the expected signal, not a
	// problem. Re-scanning inside the poll loop re-arms the hook if an
	// earlier attempt lost its buddy mid-fetch (e.g. a crashed worker the
	// coordinator hadn't marked down yet).
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _ = h.scanReplica(vi, h.Cl.Coord.Authority.HWM())
		if w.Obs().Counter("recover.page_repairs").Load() > before {
			return
		}
		if time.Now().After(deadline) {
			h.violatef("online repair: worker %d did not repair the torn page within 5s (repair errors=%d)",
				vi, w.Obs().Counter("recover.page_repair_errors").Load())
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}
