// Package chaos is a Jepsen-style invariant harness for the HARBOR
// reproduction: it runs a randomized insert/update/delete/scan workload on
// a real cluster while a seeded faultnet schedule injects partitions,
// crashes, stalls, delays, and duplicate deliveries; then it heals every
// link, runs HARBOR recovery (§5) on every disturbed site, and checks four
// invariants over the survivors:
//
//  1. every transaction the client was told committed is visible in a
//     post-heal scan on all K replicas;
//  2. no aborted transaction has visible effects;
//  3. all replicas of each table converge to identical logical contents;
//  4. commit timestamps are monotone per the timestamp authority —
//     strictly increasing per client stream, globally unique, and never
//     above the final high water mark.
//
// Every violation message carries the scenario name and seed; re-running
// with the same seed replays the same fault schedule and workload choices.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/comm"
	"harbor/internal/coord"
	"harbor/internal/core"
	"harbor/internal/exec"
	"harbor/internal/expr"
	"harbor/internal/faultdisk"
	"harbor/internal/faultnet"
	"harbor/internal/page"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

// Table ids used by the harness: streams write tableStreams through the
// real coordinator; the raw Table 4.1 consensus transactions write
// tableConsensus so their multi-second resolution never blocks the stream
// workload on page locks.
const (
	tableStreams   int32 = 1
	tableConsensus int32 = 2
)

// chaosDesc is the workload schema: a key and one value field encoding
// which write produced the visible version.
func chaosDesc() *tuple.Desc {
	return tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "v", Type: tuple.Int64},
	)
}

func mkT(key, val int64) tuple.Tuple {
	return tuple.MustMake(chaosDesc(), tuple.VInt(key), tuple.VInt(val))
}

// Scenario is one named chaos experiment: a disturbance phase (workload +
// fault schedule, via the Harness helpers) over a standard cluster running
// one commit protocol of the protocol × scenario matrix.
type Scenario struct {
	Name     string
	Protocol txn.Protocol // zero value defaults to OptThreePC
	Workers  int
	Drive    func(h *Harness)
	// After, if set, runs on the healed and recovered cluster, before the
	// aftershock workload and the invariant checks. It is the place for
	// fault probes that need a healthy cluster to be meaningful — e.g. the
	// online torn-page repair probe, which requires a live, up-to-date
	// buddy to fetch from.
	After func(h *Harness)
}

// Result reports one chaos run. Violations empty = all invariants held.
type Result struct {
	Scenario     string
	Seed         int64
	Commits      int   // client-confirmed stream commits
	Aborts       int   // stream transactions that ended aborted
	RawTxns      int   // Table 4.1 consensus transactions driven
	Aftershock   int   // post-heal verification transactions (must all commit)
	Disturbed    []int // worker indexes that ran HARBOR recovery post-heal
	PageRepairs  int   // buddy page repairs observed (recover.page_repairs)
	CorruptPages int   // CRC-quarantined pages observed (storage.corrupt_pages)
	ScrubPages   int   // CRC trailers verified by the background scrubbers
	ScrubRepairs int   // pages the background scrubbers repaired from a buddy
	CommitP99NS  int64 // p99 commit latency over the round (coord.commit.latency.ns)
	Violations   []string
	Trace        []string // the fault schedule as executed (network + disk)
}

// opKind is a stream operation.
type opKind int

const (
	opInsert opKind = iota
	opUpdate
	opDelete
)

func (k opKind) String() string {
	return [...]string{"insert", "update", "delete"}[k]
}

// opRec is one stream transaction as the client observed it.
type opRec struct {
	stream   int
	id       txn.ID
	kind     opKind
	key, val int64
	clientOK bool // Commit returned success
	clientTS tuple.Timestamp
}

// rawRec is one manually-driven 3PC transaction whose coordinator "died"
// mid-protocol, resolved by worker consensus (Table 4.1).
type rawRec struct {
	id           txn.ID
	key, val     int64
	ts           tuple.Timestamp
	expectCommit bool
}

// Harness wires one scenario run together. Drive functions use its
// helpers to run workload streams, script faults, and crash workers.
type Harness struct {
	Seed int64
	Name string
	Net  *faultnet.Network
	Disk *faultdisk.Disk
	Cl   *testutil.Cluster

	rng     *rand.Rand // fault-schedule randomness (Drive goroutine only)
	scanIDs *txn.IDSource

	mu         sync.Mutex
	ops        [][]opRec
	raws       []rawRec
	crashed    map[int]bool
	violations []string
}

// Run executes one scenario under one seed and checks the invariants.
func Run(sc Scenario, seed int64, baseDir string) (*Result, error) {
	res := &Result{Scenario: sc.Name, Seed: seed}
	nw := faultnet.New(seed)
	nw.Install()
	defer nw.Uninstall()

	// The disk seam mirrors the network one: every worker's site directory
	// goes through the seeded fault-injecting filesystem, so CrashWorker can
	// materialize the loss of unsynced writes the way a power cut would.
	// Registration happens before the cluster opens any file — files opened
	// before registration would bypass the seam.
	clusterDir := filepath.Join(baseDir, fmt.Sprintf("%s-%d", sc.Name, seed))
	fd := faultdisk.New(seed)
	for i := 0; i < sc.Workers; i++ {
		fd.Register(filepath.Join(clusterDir, fmt.Sprintf("site%d", testutil.WorkerSiteID(i))), fmt.Sprintf("w%d", i))
	}
	fd.Install()
	defer fd.Uninstall()

	protocol := sc.Protocol
	if protocol == 0 {
		protocol = txn.OptThreePC
	}
	mode := worker.HARBOR
	if protocol.Plan().WorkerForces() {
		mode = worker.ARIES
	}
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     sc.Workers,
		Protocol:    protocol,
		Mode:        mode,
		GroupCommit: true,
		// RoundTimeout must exceed LockTimeout: a healthy worker may
		// legally sit on a contended page lock for a full lock wait before
		// answering an update, and a fan-out timeout is read as fail-stop
		// (§4.3.5 eviction). With the margin inverted, a lock queue during
		// the fault-free aftershock — easiest to build under the 2PC plans,
		// whose commit holds locks across the coordinator's group-commit
		// force — gets a replica evicted with no recovery pass left to
		// bring it back, and the final scans see it stale.
		LockTimeout:  500 * time.Millisecond,
		RoundTimeout: 800 * time.Millisecond,
		DialTimeout:  time.Second,
		BaseDir:      clusterDir,
	})
	if err != nil {
		return res, err
	}
	defer cl.Close()
	for i := range cl.Workers {
		nw.Name(cl.Workers[i].Addr(), fmt.Sprintf("w%d", i))
	}
	desc := chaosDesc()
	if err := cl.CreateReplicatedTable(tableStreams, desc, 4); err != nil {
		return res, err
	}
	if err := cl.CreateReplicatedTable(tableConsensus, desc, 4); err != nil {
		return res, err
	}

	h := &Harness{
		Seed:    seed,
		Name:    sc.Name,
		Net:     nw,
		Disk:    fd,
		Cl:      cl,
		rng:     rand.New(rand.NewSource(seed)),
		scanIDs: txn.NewIDSource(9),
		crashed: map[int]bool{},
	}

	sc.Drive(h)

	if err := h.healAndRecover(res); err != nil {
		return res, fmt.Errorf("chaos %s seed=%d: heal/recover: %w", sc.Name, seed, err)
	}
	if err := h.quiesce(15 * time.Second); err != nil {
		return res, fmt.Errorf("chaos %s seed=%d: %w", sc.Name, seed, err)
	}
	if sc.After != nil {
		sc.After(h)
	}
	h.aftershock(res)
	if err := h.quiesce(5 * time.Second); err != nil {
		return res, fmt.Errorf("chaos %s seed=%d: aftershock %w", sc.Name, seed, err)
	}
	h.checkInvariants(res)
	for i := range cl.Workers {
		res.PageRepairs += int(cl.Workers[i].Obs().Counter("recover.page_repairs").Load())
		res.CorruptPages += int(cl.Workers[i].Obs().Counter("storage.corrupt_pages").Load())
		res.ScrubPages += int(cl.Workers[i].Obs().Counter("storage.scrub.pages").Load())
		res.ScrubRepairs += int(cl.Workers[i].Obs().Counter("storage.scrub.repairs").Load())
	}
	// Latency SLO signal for the soak driver: the round's commit p99. A
	// round where this explodes means queries/commits stalled behind a
	// recovery or fault window even though the end-state invariants held.
	res.CommitP99NS = cl.Coord.Obs().Histogram("coord.commit.latency.ns").Snapshot().P99
	res.Trace = append(nw.Trace(), fd.Trace()...)
	return res, nil
}

// violatef records one invariant violation, stamped with scenario + seed.
func (h *Harness) violatef(format string, args ...any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.violations = append(h.violations,
		fmt.Sprintf("chaos %s seed=%d: ", h.Name, h.Seed)+fmt.Sprintf(format, args...))
}

// violateTxnf is violatef for violations that implicate one transaction: the
// message additionally carries the offending transaction's trace timeline
// from every site (coordinator protocol rounds, worker phase handling), so a
// failure report is self-contained — the seed replays the run, the timelines
// say where the protocol went wrong.
func (h *Harness) violateTxnf(id txn.ID, format string, args ...any) {
	msg := fmt.Sprintf("chaos %s seed=%d: ", h.Name, h.Seed) +
		fmt.Sprintf(format, args...) + "\n" + h.txnTimelines(id)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.violations = append(h.violations, msg)
}

// txnTimelines renders one transaction's trace from the coordinator and
// every live worker, indented for inclusion in a violation message.
func (h *Harness) txnTimelines(id txn.ID) string {
	var b strings.Builder
	write := func(site, dump string) {
		b.WriteString("  " + site + " " + strings.ReplaceAll(strings.TrimRight(dump, "\n"), "\n", "\n  ") + "\n")
	}
	write("coordinator", h.Cl.Coord.Trace().Dump(int64(id)))
	for i, w := range h.Cl.Workers {
		if w.Crashed() {
			continue
		}
		write(fmt.Sprintf("worker %d", i), w.Trace().Dump(int64(id)))
	}
	return strings.TrimRight(b.String(), "\n")
}

// heldRanges returns the key ranges the catalog placement assigns worker i
// for a table. Full replication — every pre-existing scenario — yields one
// full range per worker; the join/rebalance scenario leaves partial ones.
func (h *Harness) heldRanges(i int, table int32) []expr.KeyRange {
	var out []expr.KeyRange
	for _, rep := range h.Cl.Catalog.ReplicasOn(testutil.WorkerSiteID(i)) {
		if rep.Table == table {
			out = append(out, rep.Range)
		}
	}
	return out
}

// workerHolds reports whether worker i's placement covers one logical row.
func (h *Harness) workerHolds(i int, k tkey) bool {
	for _, rng := range h.heldRanges(i, k.table) {
		if rng.Contains(k.key) {
			return true
		}
	}
	return false
}

// workerAddr returns the current listen address of worker i.
func (h *Harness) workerAddr(i int) string {
	addr, _ := h.Cl.Catalog.SiteAddr(testutil.WorkerSiteID(i))
	return addr
}

// CrashWorker fail-stops worker i (it stays down until post-heal recovery).
// With the disk seam installed the crash also materializes storage losses:
// every write since the last real fsync is kept, dropped, or torn per the
// seeded schedule, exactly like a power cut under the site.
func (h *Harness) CrashWorker(i int) {
	h.mu.Lock()
	h.crashed[i] = true
	h.mu.Unlock()
	h.Cl.Workers[i].Crash()
	if h.Disk != nil {
		h.Disk.CrashSite(h.siteDir(i))
	}
}

// siteDir returns worker i's on-disk site directory.
func (h *Harness) siteDir(i int) string { return h.Cl.Workers[i].Cfg.Dir }

// TearPage flips bytes in one randomly chosen flushed heap page of a table
// on worker i, directly on disk (simulated media corruption — deliberately
// below the vfs seam). Returns false if the table has no flushed page yet.
func (h *Harness) TearPage(i int, table int32) bool {
	path := filepath.Join(h.siteDir(i), fmt.Sprintf("table_%d.heap", table))
	fi, err := os.Stat(path)
	if err != nil || fi.Size() < page.Size {
		return false
	}
	pageNo := h.rng.Int63n(fi.Size() / page.Size)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return false
	}
	defer f.Close()
	off := pageNo*page.Size + page.Size/2
	buf := make([]byte, 16)
	if _, err := f.ReadAt(buf, off); err != nil {
		return false
	}
	for j := range buf {
		buf[j] ^= 0xA5
	}
	if _, err := f.WriteAt(buf, off); err != nil {
		return false
	}
	h.Disk.Tracef("chaos tore page %d of table %d on w%d", pageNo, table, i)
	return true
}

// sleepMS sleeps a schedule-chosen duration in [lo, hi] milliseconds.
func (h *Harness) sleepMS(lo, hi int) {
	time.Sleep(time.Duration(lo+h.rng.Intn(hi-lo+1)) * time.Millisecond)
}

// RunWorkload runs `streams` concurrent client streams of `txnsPerStream`
// transactions each against tableStreams while executing the fault
// schedule on the calling goroutine; it returns when both are done.
func (h *Harness) RunWorkload(streams, txnsPerStream int, faults func()) {
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			h.stream(s, txnsPerStream)
		}(s)
	}
	faults()
	wg.Wait()
}

// stream is one client: a sequence of single-op transactions over its own
// key range, with stream-local bookkeeping of which keys are live.
func (h *Harness) stream(s, n int) {
	rng := rand.New(rand.NewSource(h.Seed*7919 + int64(s)))
	co := h.Cl.Coord
	nextKey := int64(s+1) << 32
	var live []int64 // keys with a confirmed-committed insert, not yet deleted
	recs := make([]opRec, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(8) == 0 {
			// Exercise the distributed read path mid-fault; contents are
			// verified post-heal, here only that scans don't wedge.
			_, _ = co.Scan(tableStreams, coord.QueryOptions{Historical: true})
			continue
		}
		kind := opInsert
		if len(live) > 0 {
			switch rng.Intn(10) {
			case 0, 1:
				kind = opDelete
			case 2, 3, 4:
				kind = opUpdate
			}
		}
		rec := opRec{stream: s, kind: kind, val: int64(s+1)<<40 + int64(i)}
		switch kind {
		case opInsert:
			rec.key = nextKey
			nextKey++
		default:
			rec.key = live[rng.Intn(len(live))]
		}

		tx := co.Begin()
		rec.id = tx.ID()
		var err error
		switch kind {
		case opInsert:
			err = tx.Insert(tableStreams, mkT(rec.key, rec.val))
		case opUpdate:
			err = tx.UpdateKey(tableStreams, rec.key, mkT(rec.key, rec.val))
		case opDelete:
			err = tx.DeleteKey(tableStreams, rec.key)
		}
		if err == nil {
			// Client think-time between the last write and COMMIT. Without
			// it the write→prepare gap is microseconds and a fault arming
			// mid-run almost always lands on the (well-trodden) distribute
			// path; the gap puts the commit rounds themselves under fire.
			time.Sleep(time.Duration(1+rng.Intn(5)) * time.Millisecond)
		}
		if err != nil {
			_ = tx.Abort()
		} else if ts, cerr := tx.Commit(); cerr == nil {
			rec.clientOK, rec.clientTS = true, ts
			switch kind {
			case opInsert:
				live = append(live, rec.key)
			case opDelete:
				for j, k := range live {
					if k == rec.key {
						live = append(live[:j], live[j+1:]...)
						break
					}
				}
			}
		}
		recs = append(recs, rec)
		time.Sleep(time.Duration(1+rng.Intn(7)) * time.Millisecond)
	}
	h.mu.Lock()
	h.ops = append(h.ops, recs)
	h.mu.Unlock()
}

// aftershock runs a short fault-free workload after heal and recovery: a
// healed, fully recovered cluster must accept and commit every transaction.
// It deliberately goes through the coordinator's pooled connections — the
// ones that lived through the fault era — so residual damage (a stale or
// desynchronised pooled conn, a replica wrongly left out of the update set)
// surfaces as a visible failure instead of lingering.
func (h *Harness) aftershock(res *Result) {
	// As many concurrent streams as the fault-era workload ran, so the
	// connection pools are drained to the same depth they reached while
	// faults were active (Pool.Get is LIFO: a serial prober would only
	// ever see the freshest connection).
	const streams, txns = 4, 8
	h.mu.Lock()
	before := len(h.ops)
	h.mu.Unlock()
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			h.stream(5+s, txns) // key ranges disjoint from workload streams
		}(s)
	}
	wg.Wait()
	h.mu.Lock()
	recs := h.ops[before:]
	h.mu.Unlock()
	for _, rs := range recs {
		for i, r := range rs {
			res.Aftershock++
			if r.clientOK {
				continue
			}
			// An abort on the healed cluster is not by itself residual
			// damage: concurrent streams can deadlock across replicas (the
			// fan-out grants the same pages in different orders on different
			// sites), and §6.1.2 breaks deadlocks by timeout-and-abort with
			// the client expected to retry. Only a transaction that keeps
			// failing after retries is flagged. If a later transaction of the
			// same stream already committed against the same key, that commit
			// both proves the cluster accepted the stream's work and makes a
			// retry wrong (re-driving the op now would act on superseded
			// state — e.g. update a row a committed delete removed).
			superseded := false
			for _, later := range rs[i+1:] {
				if later.key == r.key && later.clientOK {
					superseded = true
					break
				}
			}
			if superseded {
				continue
			}
			if !h.retryOp(r) {
				h.violateTxnf(r.id, "aftershock: txn %d (%s key=%d) failed on the healed cluster and on retry", r.id, r.kind, r.key)
			}
		}
	}
}

// retryOp re-drives one failed aftershock operation as a fresh transaction,
// up to two attempts. Every attempt is recorded in h.ops so the invariant
// accounting (expected state, abort counts, timestamp checks) covers it.
func (h *Harness) retryOp(r opRec) bool {
	for attempt := 0; attempt < 2; attempt++ {
		rec := opRec{stream: r.stream, kind: r.kind, key: r.key, val: r.val}
		tx := h.Cl.Coord.Begin()
		rec.id = tx.ID()
		var err error
		switch r.kind {
		case opInsert:
			err = tx.Insert(tableStreams, mkT(rec.key, rec.val))
		case opUpdate:
			err = tx.UpdateKey(tableStreams, rec.key, mkT(rec.key, rec.val))
		case opDelete:
			err = tx.DeleteKey(tableStreams, rec.key)
		}
		if err != nil {
			_ = tx.Abort()
		} else if ts, cerr := tx.Commit(); cerr == nil {
			rec.clientOK, rec.clientTS = true, ts
		}
		h.mu.Lock()
		h.ops = append(h.ops, []opRec{rec})
		h.mu.Unlock()
		if rec.clientOK {
			return true
		}
	}
	return false
}

// healAndRecover lifts every fault, restarts every disturbed worker, and
// runs HARBOR recovery on each (serially: a recovered site rejoins the
// update set and becomes a legitimate buddy for the next).
func (h *Harness) healAndRecover(res *Result) error {
	h.Net.HealAll()
	// Let workers observe their closed connections (orphan detection).
	time.Sleep(50 * time.Millisecond)

	var disturbed []int
	for i := range h.Cl.Workers {
		h.mu.Lock()
		crashed := h.crashed[i]
		h.mu.Unlock()
		crashed = crashed || h.Cl.Workers[i].Crashed()
		if crashed || h.Cl.Coord.SiteDown(testutil.WorkerSiteID(i)) {
			disturbed = append(disturbed, i)
		}
		// Only a crashed worker restarts. An evicted-but-alive worker (a
		// partition or stall got it marked down) rejoins by running
		// recovery in place, §5.5 — which means the coordinator keeps its
		// old connection pool for the site, exactly the state a recycled
		// stale connection would be hiding in.
		if crashed {
			if _, err := h.Cl.RestartWorker(i); err != nil {
				return fmt.Errorf("restart worker %d: %w", i, err)
			}
		}
	}
	res.Disturbed = disturbed

	// Let in-doubt transactions resolve (orphaned workers consult the
	// coordinator's outcome service, §5.5) before recovery rewinds state:
	// Phase 1 must not race a prepared transaction that is about to be
	// committed onto this site.
	if err := h.quiesce(10 * time.Second); err != nil {
		return fmt.Errorf("pre-recovery %w", err)
	}

	// Recover in passes: when a total outage left several replicas of a
	// table offline at once, only the final survivor can rejoin first
	// (from its own data); the others fail their recovery plan with
	// ErrKSafetyExceeded until a rejoined replica becomes a legitimate
	// buddy. Retrying in passes mirrors a recovery daemon.
	remaining := disturbed
	for len(remaining) > 0 {
		var deferred []int
		for _, i := range remaining {
			r := core.New(h.Cl.Workers[i], h.Cl.Catalog)
			if _, err := r.RecoverSite(core.Options{Parallel: true}); err != nil {
				if errors.Is(err, catalog.ErrKSafetyExceeded) {
					deferred = append(deferred, i)
					continue
				}
				return fmt.Errorf("recover worker %d: %w", i, err)
			}
		}
		if len(deferred) == len(remaining) {
			return fmt.Errorf("recovery stuck: workers %v all fail with K-safety exceeded", deferred)
		}
		remaining = deferred
	}
	return nil
}

// quiesce waits until every recorded transaction is terminal on every
// worker, so post-heal scans observe final state only.
func (h *Harness) quiesce(timeout time.Duration) error {
	h.mu.Lock()
	var ids []txn.ID
	for _, recs := range h.ops {
		for _, r := range recs {
			ids = append(ids, r.id)
		}
	}
	for _, r := range h.raws {
		ids = append(ids, r.id)
	}
	h.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for {
		var pending []string
		for wi, w := range h.Cl.Workers {
			if w.Crashed() {
				continue
			}
			for _, id := range ids {
				if st, _, ok := w.TxnState(id); ok && !st.Terminal() {
					pending = append(pending, fmt.Sprintf("txn %d %v on worker %d", id, st, wi))
				}
			}
		}
		if len(pending) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("quiesce: %d transactions still unresolved after %v: %s",
				len(pending), timeout, strings.Join(pending, "; "))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// tkey addresses one logical row across the harness's tables.
type tkey struct {
	table int32
	key   int64
}

// repRow is one visible row of a replica scan.
type repRow struct {
	val int64
	ts  tuple.Timestamp
}

// checkInvariants resolves every transaction's outcome at the coordinator,
// computes the expected logical contents, scans every replica, and checks
// the four invariants.
func (h *Harness) checkInvariants(res *Result) {
	co := h.Cl.Coord
	hwm := co.Authority.HWM()

	// --- resolve outcomes and build the expected state -----------------
	expected := map[tkey]repRow{}
	writer := map[tkey]txn.ID{} // which txn wrote the expected row (for timeline dumps)
	seenTS := map[tuple.Timestamp]txn.ID{}
	h.mu.Lock()
	ops, raws := h.ops, h.raws
	h.mu.Unlock()

	for _, recs := range ops {
		var lastTS tuple.Timestamp
		for _, rec := range recs {
			committed, ts, known := co.Outcome(rec.id)
			if rec.clientOK {
				res.Commits++
				if !known || !committed {
					h.violateTxnf(rec.id, "invariant 1: txn %d (%s key=%d) was confirmed to the client but the coordinator records it aborted", rec.id, rec.kind, rec.key)
					continue
				}
				if ts != rec.clientTS {
					h.violateTxnf(rec.id, "invariant 4: txn %d returned commit ts %d to the client but recorded %d", rec.id, rec.clientTS, ts)
				}
			} else {
				res.Aborts++
				if known && committed {
					h.violateTxnf(rec.id, "invariant 2: txn %d (%s key=%d) errored at the client but the coordinator recorded a commit", rec.id, rec.kind, rec.key)
				}
			}
			if !(known && committed) {
				continue
			}
			// invariant 4: per-stream monotone, globally unique commit times.
			if ts <= lastTS {
				h.violateTxnf(rec.id, "invariant 4: stream %d commit ts not monotone: %d after %d (txn %d)", rec.stream, ts, lastTS, rec.id)
			}
			lastTS = ts
			if prev, dup := seenTS[ts]; dup {
				h.violateTxnf(rec.id, "invariant 4: commit ts %d issued to both txn %d and txn %d", ts, prev, rec.id)
			}
			seenTS[ts] = rec.id
			if ts > hwm {
				h.violateTxnf(rec.id, "invariant 4: txn %d committed at ts %d above the final HWM %d", rec.id, ts, hwm)
			}
			k := tkey{tableStreams, rec.key}
			switch rec.kind {
			case opInsert, opUpdate:
				expected[k] = repRow{val: rec.val, ts: ts}
				writer[k] = rec.id
			case opDelete:
				delete(expected, k)
				delete(writer, k)
			}
		}
	}
	for _, rec := range raws {
		res.RawTxns++
		if !rec.expectCommit {
			continue
		}
		if prev, dup := seenTS[rec.ts]; dup {
			h.violatef("invariant 4: commit ts %d issued to both txn %d and raw txn %d", rec.ts, prev, rec.id)
		}
		seenTS[rec.ts] = rec.id
		expected[tkey{tableConsensus, rec.key}] = repRow{val: rec.val, ts: rec.ts}
		writer[tkey{tableConsensus, rec.key}] = rec.id
	}

	// --- scan every replica and compare --------------------------------
	replicas := make([]map[tkey]repRow, len(h.Cl.Workers))
	for i := range h.Cl.Workers {
		rep, err := h.scanReplica(i, hwm)
		if err != nil {
			h.violatef("invariant 3: replica scan of worker %d failed post-heal: %v", i, err)
			continue
		}
		replicas[i] = rep
		// Invariants 1 and 2 apply to the rows the placement assigns this
		// worker: a committed row it covers must be visible, a row it does
		// not cover must not exist here at all (the donor purge after a
		// segment move must actually have removed it).
		for k, want := range expected {
			if !h.workerHolds(i, k) {
				continue
			}
			got, ok := rep[k]
			if !ok {
				h.violatef("invariant 1: committed row table=%d key=%d (val=%d ts=%d) missing on worker %d", k.table, k.key, want.val, want.ts, i)
				continue
			}
			if got != want {
				h.violatef("invariant 1: row table=%d key=%d on worker %d is (val=%d ts=%d), want (val=%d ts=%d)", k.table, k.key, i, got.val, got.ts, want.val, want.ts)
			}
		}
		for k, got := range rep {
			if !h.workerHolds(i, k) {
				h.violatef("invariant 2: worker %d still holds row table=%d key=%d (val=%d ts=%d) outside every range the placement assigns it", i, k.table, k.key, got.val, got.ts)
				continue
			}
			if _, ok := expected[k]; !ok {
				h.violatef("invariant 2: worker %d shows row table=%d key=%d (val=%d ts=%d) from a transaction that did not commit (or was deleted)", i, k.table, k.key, got.val, got.ts)
			}
		}
	}
	// invariant 3: replica convergence, checked pairwise against worker 0
	// (independent of the expected-state model above) over the keys both
	// placements cover — with partial replicas the raw row counts
	// legitimately differ, but the shared coverage must agree exactly.
	for i := 1; i < len(replicas); i++ {
		if replicas[0] == nil || replicas[i] == nil {
			continue
		}
		for k, r0 := range replicas[0] {
			if !h.workerHolds(i, k) || !h.workerHolds(0, k) {
				continue
			}
			if ri, ok := replicas[i][k]; !ok || ri != r0 {
				h.violatef("invariant 3: workers 0 and %d diverge at table=%d key=%d: (%v,%v) vs (%v,%v)", i, k.table, k.key, r0.val, r0.ts, ri.val, ri.ts)
			}
		}
		for k := range replicas[i] {
			if !h.workerHolds(0, k) || !h.workerHolds(i, k) {
				continue
			}
			if _, ok := replicas[0][k]; !ok {
				ri := replicas[i][k]
				h.violatef("invariant 3: worker %d shows table=%d key=%d (%v,%v) that worker 0 (also covering it) misses", i, k.table, k.key, ri.val, ri.ts)
			}
		}
	}

	// The coordinator's own distributed read path — which borrows from the
	// same connection pools the fault era disturbed — must agree with the
	// direct replica scans.
	desc := chaosDesc()
	for _, table := range []int32{tableStreams, tableConsensus} {
		rows, err := co.Scan(table, coord.QueryOptions{Historical: true, AsOf: hwm})
		if err != nil {
			h.violatef("invariant 3: coordinator scan of table %d failed post-heal: %v", table, err)
			continue
		}
		got := map[tkey]repRow{}
		for _, t := range rows {
			got[tkey{table, t.Key(desc)}] = repRow{
				val: t.Values[desc.FieldIndex("v")].I64,
				ts:  t.InsTS(),
			}
		}
		for k, want := range expected {
			if k.table != table {
				continue
			}
			if g, ok := got[k]; !ok {
				h.violatef("invariant 3: coordinator scan of table %d misses committed key %d (val=%d ts=%d)", table, k.key, want.val, want.ts)
			} else if g != want {
				h.violatef("invariant 3: coordinator scan of table %d returns key %d as (val=%d ts=%d), want (val=%d ts=%d)", table, k.key, g.val, g.ts, want.val, want.ts)
			}
			delete(got, k)
		}
		for k, g := range got {
			h.violatef("invariant 3: coordinator scan of table %d returns key %d (val=%d ts=%d) that should not exist", table, k.key, g.val, g.ts)
		}
	}

	h.checkAggregates(expected, hwm)

	h.mu.Lock()
	res.Violations = append(res.Violations, h.violations...)
	h.mu.Unlock()
}

// checkAggregates is the post-heal aggregate invariant: a pushed-down
// group-by-v aggregate over the streams table must match both the
// NoPushdown ablation (the same algebra over coordinator-shipped rows) and
// the group values derived from the expected logical state. The fault era
// alternated scans and pushed-down aggregates against stalls, crashes, and
// throttled buddies (see ScanStall); whatever failovers those queries took,
// the slot discard-and-refetch rule must leave no group lost or
// double-counted once the cluster is healthy again.
func (h *Harness) checkAggregates(expected map[tkey]repRow, hwm tuple.Timestamp) {
	desc := chaosDesc()
	plan := exec.AggPlan{GroupField: desc.FieldIndex("v"), Aggs: []exec.AggSpec{
		{Fn: exec.Count},
		{Fn: exec.Sum, Field: desc.FieldIndex("id")},
	}}
	type gv struct{ count, sum int64 }
	want := map[int64]gv{}
	for k, r := range expected {
		if k.table != tableStreams {
			continue
		}
		g := want[r.val]
		g.count++
		g.sum += k.key
		want[r.val] = g
	}
	opt := coord.QueryOptions{Historical: true, AsOf: hwm}
	push, err := h.Cl.Coord.Aggregate(tableStreams, opt, plan)
	if err != nil {
		h.violatef("aggregate invariant: pushdown aggregate failed post-heal: %v", err)
		return
	}
	ablOpt := opt
	ablOpt.NoPushdown = true
	abl, err := h.Cl.Coord.Aggregate(tableStreams, ablOpt, plan)
	if err != nil {
		h.violatef("aggregate invariant: ablation aggregate failed post-heal: %v", err)
		return
	}
	if len(push) != len(abl) {
		h.violatef("aggregate invariant: pushdown returns %d groups, ablation returns %d", len(push), len(abl))
		return
	}
	for i, row := range push {
		key, cnt, sum := row.Values[0].I64, row.Values[1].I64, row.Values[2].I64
		a := abl[i]
		if a.Values[0].I64 != key || a.Values[1].I64 != cnt || a.Values[2].I64 != sum {
			h.violatef("aggregate invariant: group %d pushdown (v=%d count=%d sum=%d) != ablation (v=%d count=%d sum=%d)",
				i, key, cnt, sum, a.Values[0].I64, a.Values[1].I64, a.Values[2].I64)
		}
		w, ok := want[key]
		if !ok {
			h.violatef("aggregate invariant: pushdown returns group v=%d that the expected state does not contain", key)
			continue
		}
		if w.count != cnt || w.sum != sum {
			h.violatef("aggregate invariant: group v=%d pushdown (count=%d sum=%d), expected state implies (count=%d sum=%d)",
				key, cnt, sum, w.count, w.sum)
		}
		delete(want, key)
	}
	for key, w := range want {
		h.violatef("aggregate invariant: expected state implies group v=%d (count=%d sum=%d) that the pushdown misses", key, w.count, w.sum)
	}
}

// scanReplica reads one worker's visible contents of both tables directly
// (historical, unlocked, as of the final HWM) over a dedicated connection.
// Each scan declares one of the worker's held key ranges: a full-range
// declaration on a site whose coverage shrank would be refused as
// placement-stale, exactly like a stale coordinator plan. The worker streams
// its whole physical table either way (the declaration gates, it does not
// filter), so rows lingering outside the held ranges still surface — and
// the invariant checks flag them.
func (h *Harness) scanReplica(i int, asOf tuple.Timestamp) (map[tkey]repRow, error) {
	desc := chaosDesc()
	c, err := comm.Dial(h.Cl.Workers[i].Addr())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	out := map[tkey]repRow{}
	for _, table := range []int32{tableStreams, tableConsensus} {
		held := h.heldRanges(i, table)
		if len(held) == 0 {
			continue // the placement assigns this worker nothing of the table
		}
		rng := held[0]
		id := h.scanIDs.Next()
		if err := c.Send(&wire.Msg{
			Type: wire.MsgScan, Txn: id, Table: table,
			Vis: uint8(exec.Historical), TS: asOf,
			KeyLo: rng.Lo, KeyHi: rng.Hi,
		}); err != nil {
			return nil, err
		}
		add := func(t tuple.Tuple) {
			out[tkey{table, t.Key(desc)}] = repRow{
				val: t.Values[desc.FieldIndex("v")].I64,
				ts:  t.InsTS(),
			}
		}
	stream:
		for {
			resp, err := c.RecvTimeout(5 * time.Second)
			if err != nil {
				return nil, err
			}
			switch resp.Type {
			case wire.MsgErr:
				return nil, resp.Err()
			case wire.MsgScanEnd:
				break stream
			case wire.MsgTuple:
				add(wire.ToTuple(resp.Tuple))
			case wire.MsgTupleBatch:
				n, err := wire.CheckBatch(resp, desc.Width())
				if err != nil {
					return nil, err
				}
				b := tuple.NewBatch(n)
				if err := b.DecodeBatch(desc, resp.Raw); err != nil {
					return nil, err
				}
				for _, t := range b.Rows() {
					add(t)
				}
			default:
				return nil, fmt.Errorf("chaos: unexpected %v in scan stream", resp.Type)
			}
		}
		if _, err := c.Call(&wire.Msg{Type: wire.MsgEndRead, Txn: id}); err != nil {
			return nil, err
		}
	}
	return out, nil
}
