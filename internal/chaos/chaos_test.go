package chaos

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestChaos runs the scenario suite under deterministic seeds. Every
// violation message embeds the scenario and seed; rerun a failure with
//
//	CHAOS_SEED=<seed> go test ./internal/chaos/ -run 'TestChaos/<scenario>' -count=1
//
// CHAOS_ITERS widens the sweep (seeds seed, seed+1, ...). The scenarios
// share process-global faultnet hooks, so they run strictly serially.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios take tens of seconds; skipped with -short")
	}
	seed := envInt64(t, "CHAOS_SEED", 1)
	iters := envInt64(t, "CHAOS_ITERS", 1)

	for _, sc := range Scenarios() {
		for it := int64(0); it < iters; it++ {
			sd := seed + it
			t.Run(fmt.Sprintf("%s/seed=%d", sc.Name, sd), func(t *testing.T) {
				res, err := Run(sc, sd, t.TempDir())
				if err != nil {
					t.Fatalf("chaos %s seed=%d: %v", sc.Name, sd, err)
				}
				t.Logf("chaos %s seed=%d: %d commits (%d aftershock), %d aborts, %d raw txns, recovered workers %v, %d corrupt pages, %d page repairs, %d fault events",
					sc.Name, sd, res.Commits, res.Aftershock, res.Aborts, res.RawTxns, res.Disturbed, res.CorruptPages, res.PageRepairs, len(res.Trace))
				// A run where nothing committed during the fault era
				// verifies nothing.
				if res.Commits <= res.Aftershock {
					t.Errorf("chaos %s seed=%d: no stream transaction committed; scenario is vacuous", sc.Name, sd)
				}
				if sc.Name == "coord-kill-3pc" && res.RawTxns == 0 {
					t.Errorf("chaos %s seed=%d: no raw consensus transaction ran", sc.Name, sd)
				}
				// The compound scenario tears a flushed page under the
				// crashed site; recovery must have repaired at least one
				// page from a buddy or the run proved nothing about the
				// CRC-quarantine path.
				if strings.HasPrefix(sc.Name, "compound-") && res.PageRepairs == 0 {
					t.Errorf("chaos %s seed=%d: no buddy page repair observed", sc.Name, sd)
				}
				for _, v := range res.Violations {
					t.Error(v)
				}
				if t.Failed() {
					t.Logf("reproduce with: CHAOS_SEED=%d go test ./internal/chaos/ -run 'TestChaos/%s' -count=1", sd, sc.Name)
				}
			})
		}
	}
}

func envInt64(t *testing.T, name string, def int64) int64 {
	t.Helper()
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("%s=%q: %v", name, s, err)
	}
	return v
}
