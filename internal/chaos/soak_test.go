package chaos

import (
	"os"
	"strings"
	"testing"
	"time"
)

// TestSoak drives the compound-chaos soak: rounds of the zipfian workload
// under partitions, crashes, lying fsyncs and torn pages — including one
// torn page under a running worker that must be repaired online — rotating
// through the worker-logless commit protocols until SOAK_DURATION expires
// (unset: a single round, so the PR gate stays fast; the nightly CI job
// sets minutes). A violation prints the reproducing seed plus the executed
// fault schedule; with SOAK_DUMP set the same report is written to that
// path for artifact upload.
//
// Replay one violating round with:
//
//	SOAK_SEED=<seed from the message> go test ./internal/chaos/ -run TestSoak -count=1
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak takes seconds to minutes; skipped with -short")
	}
	seed := envInt64(t, "SOAK_SEED", 1)
	dur := envDuration(t, "SOAK_DURATION", 0)
	res, err := Soak(SoakOptions{Seed: seed, Duration: dur, BaseDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d rounds, %d commits, %d aborts, %d corrupt pages, %d page repairs, %d scrubbed pages, %d scrub repairs, %d SLO breaches",
		res.Rounds, res.Commits, res.Aborts, res.CorruptPages, res.PageRepairs, res.ScrubPages, res.ScrubRepairs, res.SLOBreaches)
	if res.Commits == 0 {
		t.Error("soak: no transaction committed; the run verified nothing")
	}
	// The corruption-path assertions only apply to compound rounds: a
	// replayed join/rebalance round (seed%3==2) tears no pages by design.
	if res.CompoundRounds > 0 && res.PageRepairs == 0 {
		t.Error("soak: no buddy page repair observed; the corruption path was never exercised")
	}
	if res.CompoundRounds > 0 && res.ScrubPages == 0 {
		t.Error("soak: background scrubbers verified no pages; the proactive scrub path was never exercised")
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if len(res.Violations) > 0 {
		report := strings.Join(res.Violations, "\n\n") + "\n\n" + strings.Join(res.Schedules, "\n\n")
		if path := os.Getenv("SOAK_DUMP"); path != "" {
			if werr := os.WriteFile(path, []byte(report), 0o644); werr != nil {
				t.Errorf("writing SOAK_DUMP %s: %v", path, werr)
			} else {
				t.Logf("violation report written to %s", path)
			}
		}
	}
}

func envDuration(t *testing.T, name string, def time.Duration) time.Duration {
	t.Helper()
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		t.Fatalf("%s=%q: %v", name, s, err)
	}
	return d
}
