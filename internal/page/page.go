// Package page implements the fixed-size slotted data page used by the
// segmented heap files (§6.1.1 of the thesis: 4 KB pages, fixed-width
// tuples, dense packing with a first-empty-slot pointer).
//
// Layout of a data page:
//
//	bytes 0..7    pageLSN (uint64) — LSN of the last log record that
//	              modified the page; ARIES uses it for redo decisions and
//	              the WAL rule ("log before page flush") keys off it.
//	bytes 8..9    slot count (uint16)
//	bytes 10..    slot-used bitmap, ceil(slots/8) bytes
//	...           slot array: slots × tupleWidth bytes
//	last 4 bytes  CRC32 trailer (written and verified by internal/storage;
//	              the slot layout never reaches into it)
//
// Header pages of segmented heap files use the same 4 KB frame but their
// own layout (see internal/storage).
package page

import (
	"encoding/binary"
	"fmt"
)

// Size is the page size in bytes (§6.1.1).
const Size = 4096

// TrailerSize is the per-page integrity trailer: a CRC32 of the first
// Size-TrailerSize bytes, stamped on every page write and verified on every
// page read by internal/storage. SlotsPerPage keeps the slot array clear of
// it, so torn or bit-rotted pages are detectable (and repairable from a
// buddy) instead of silently serving garbage tuples.
const TrailerSize = 4

// LSN is a log sequence number: the byte offset of a record in a site's log.
// Zero means "never logged" (HARBOR mode never assigns LSNs).
type LSN = uint64

// ID identifies a page on one site: a table and a page number within that
// table's heap file.
type ID struct {
	Table  int32
	PageNo int32
}

// String renders the id for diagnostics and lock dumps.
func (id ID) String() string { return fmt.Sprintf("t%d:p%d", id.Table, id.PageNo) }

// RecordID identifies a stored tuple: a page and a slot on that page.
type RecordID struct {
	Page ID
	Slot int
}

// String renders the record id.
func (r RecordID) String() string { return fmt.Sprintf("%s:s%d", r.Page, r.Slot) }

const headerBase = 10 // pageLSN(8) + slot count(2)

// SlotsPerPage computes how many fixed-width tuples fit on a data page,
// accounting for the header and the used bitmap.
func SlotsPerPage(tupleWidth int) int {
	if tupleWidth <= 0 {
		panic("page: non-positive tuple width")
	}
	// slots*width + ceil(slots/8) + headerBase <= Size - TrailerSize.
	const usable = Size - TrailerSize
	slots := (usable - headerBase) * 8 / (tupleWidth*8 + 1)
	for slots > 0 && headerBase+(slots+7)/8+slots*tupleWidth > usable {
		slots--
	}
	return slots
}

// Page is an in-memory image of one data page plus bookkeeping that the
// buffer pool needs. The raw data is authoritative; accessors keep the
// header fields in sync.
type Page struct {
	id         ID
	data       []byte
	tupleWidth int
	slots      int
}

// New formats an empty data page for tuples of the given width.
func New(id ID, tupleWidth int) *Page {
	p := &Page{
		id:         id,
		data:       make([]byte, Size),
		tupleWidth: tupleWidth,
		slots:      SlotsPerPage(tupleWidth),
	}
	binary.LittleEndian.PutUint16(p.data[8:], uint16(p.slots))
	return p
}

// FromBytes wraps a 4 KB on-disk image. The slot count recorded in the
// header must match the width-derived count; a mismatch indicates file
// corruption or a schema mismatch.
func FromBytes(id ID, data []byte, tupleWidth int) (*Page, error) {
	if len(data) != Size {
		return nil, fmt.Errorf("page %s: image is %d bytes, want %d", id, len(data), Size)
	}
	want := SlotsPerPage(tupleWidth)
	got := int(binary.LittleEndian.Uint16(data[8:]))
	if got != want {
		return nil, fmt.Errorf("page %s: header slot count %d, schema implies %d", id, got, want)
	}
	return &Page{id: id, data: data, tupleWidth: tupleWidth, slots: want}, nil
}

// ID returns the page's identity.
func (p *Page) ID() ID { return p.id }

// Bytes returns the raw 4 KB image (shared, not a copy).
func (p *Page) Bytes() []byte { return p.data }

// NumSlots returns the page's slot capacity.
func (p *Page) NumSlots() int { return p.slots }

// LSN returns the pageLSN.
func (p *Page) LSN() LSN { return binary.LittleEndian.Uint64(p.data) }

// SetLSN stores the pageLSN.
func (p *Page) SetLSN(l LSN) { binary.LittleEndian.PutUint64(p.data, l) }

func (p *Page) bitmapOffset() int { return headerBase }
func (p *Page) slotsOffset() int  { return headerBase + (p.slots+7)/8 }
func (p *Page) slotOffset(i int) int {
	return p.slotsOffset() + i*p.tupleWidth
}

// Used reports whether slot i holds a tuple.
func (p *Page) Used(i int) bool {
	if i < 0 || i >= p.slots {
		return false
	}
	return p.data[p.bitmapOffset()+i/8]&(1<<(uint(i)%8)) != 0
}

func (p *Page) setUsed(i int, used bool) {
	idx := p.bitmapOffset() + i/8
	bit := byte(1) << (uint(i) % 8)
	if used {
		p.data[idx] |= bit
	} else {
		p.data[idx] &^= bit
	}
}

// NumUsed counts occupied slots.
func (p *Page) NumUsed() int {
	n := 0
	for i := 0; i < p.slots; i++ {
		if p.Used(i) {
			n++
		}
	}
	return n
}

// FirstFree returns the lowest free slot index, or -1 if the page is full.
// Heap files cache this per page to keep inserts cheap (§6.1.1).
func (p *Page) FirstFree() int {
	bm := p.data[p.bitmapOffset():p.slotsOffset()]
	for byteIdx, b := range bm {
		if b == 0xFF {
			continue
		}
		for bit := 0; bit < 8; bit++ {
			i := byteIdx*8 + bit
			if i >= p.slots {
				return -1
			}
			if b&(1<<uint(bit)) == 0 {
				return i
			}
		}
	}
	return -1
}

// Slot returns the raw bytes of slot i (aliasing the page image). The slot
// need not be in use; recovery and redo write into free slots directly.
func (p *Page) Slot(i int) ([]byte, error) {
	if i < 0 || i >= p.slots {
		return nil, fmt.Errorf("page %s: slot %d out of range [0,%d)", p.id, i, p.slots)
	}
	off := p.slotOffset(i)
	return p.data[off : off+p.tupleWidth], nil
}

// Insert stores the encoded tuple into the first free slot and returns the
// slot index, or an error if the page is full or the width is wrong.
func (p *Page) Insert(encoded []byte) (int, error) {
	if len(encoded) != p.tupleWidth {
		return 0, fmt.Errorf("page %s: tuple is %d bytes, slot width %d", p.id, len(encoded), p.tupleWidth)
	}
	i := p.FirstFree()
	if i < 0 {
		return 0, ErrPageFull
	}
	off := p.slotOffset(i)
	copy(p.data[off:], encoded)
	p.setUsed(i, true)
	return i, nil
}

// InsertAt stores the encoded tuple into a specific slot, marking it used.
// ARIES redo and HARBOR recovery use it to reproduce exact placements.
func (p *Page) InsertAt(i int, encoded []byte) error {
	if i < 0 || i >= p.slots {
		return fmt.Errorf("page %s: slot %d out of range", p.id, i)
	}
	if len(encoded) != p.tupleWidth {
		return fmt.Errorf("page %s: tuple is %d bytes, slot width %d", p.id, len(encoded), p.tupleWidth)
	}
	copy(p.data[p.slotOffset(i):], encoded)
	p.setUsed(i, true)
	return nil
}

// Delete frees slot i (a *physical* delete: recovery Phase 1 and rollback
// use it; normal versioned deletes only set the deletion timestamp).
func (p *Page) Delete(i int) error {
	if i < 0 || i >= p.slots {
		return fmt.Errorf("page %s: slot %d out of range", p.id, i)
	}
	if !p.Used(i) {
		return fmt.Errorf("page %s: slot %d already free", p.id, i)
	}
	p.setUsed(i, false)
	return nil
}

// WriteInt64At overwrites an 8-byte little-endian value at byte offset off
// within slot i. The versioning layer uses it to stamp commit timestamps
// and recovery uses it to copy deletion times in place.
func (p *Page) WriteInt64At(i int, off int, v int64) error {
	if i < 0 || i >= p.slots {
		return fmt.Errorf("page %s: slot %d out of range", p.id, i)
	}
	if off < 0 || off+8 > p.tupleWidth {
		return fmt.Errorf("page %s: field offset %d out of slot", p.id, off)
	}
	binary.LittleEndian.PutUint64(p.data[p.slotOffset(i)+off:], uint64(v))
	return nil
}

// ReadInt64At reads an 8-byte little-endian value from byte offset off of
// slot i.
func (p *Page) ReadInt64At(i int, off int) (int64, error) {
	if i < 0 || i >= p.slots {
		return 0, fmt.Errorf("page %s: slot %d out of range", p.id, i)
	}
	if off < 0 || off+8 > p.tupleWidth {
		return 0, fmt.Errorf("page %s: field offset %d out of slot", p.id, off)
	}
	return int64(binary.LittleEndian.Uint64(p.data[p.slotOffset(i)+off:])), nil
}

// ErrPageFull is returned by Insert when no free slot exists.
var ErrPageFull = fmt.Errorf("page: no free slot")
