package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlotsPerPage(t *testing.T) {
	// 64-byte tuples (the thesis benchmark tuple size): the packing must
	// never reach into the CRC trailer and should waste less than one
	// tuple's space of the usable area.
	const usable = Size - TrailerSize
	for _, w := range []int{1, 8, 17, 64, 100, 512, 4000} {
		slots := SlotsPerPage(w)
		if slots < 0 {
			t.Fatalf("width %d: negative slots", w)
		}
		used := headerBase + (slots+7)/8 + slots*w
		if used > usable {
			t.Fatalf("width %d: %d slots overflow into the trailer (%d bytes)", w, slots, used)
		}
		usedNext := headerBase + (slots+1+7)/8 + (slots+1)*w
		if w <= usable-headerBase-1 && usedNext <= usable {
			t.Fatalf("width %d: packing not maximal (%d slots fits, computed %d)", w, slots+1, slots)
		}
	}
	if got := SlotsPerPage(64); got != 63 {
		t.Fatalf("64-byte tuples per 4KB page = %d, want 63", got)
	}
}

func TestInsertDeleteCycle(t *testing.T) {
	p := New(ID{Table: 1, PageNo: 0}, 16)
	enc := bytes.Repeat([]byte{0xAB}, 16)
	n := p.NumSlots()
	for i := 0; i < n; i++ {
		slot, err := p.Insert(enc)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if slot != i {
			t.Fatalf("insert %d landed in slot %d (dense packing expected)", i, slot)
		}
	}
	if _, err := p.Insert(enc); err != ErrPageFull {
		t.Fatalf("expected ErrPageFull, got %v", err)
	}
	if p.NumUsed() != n {
		t.Fatalf("NumUsed = %d, want %d", p.NumUsed(), n)
	}
	if err := p.Delete(5); err != nil {
		t.Fatal(err)
	}
	if p.Used(5) {
		t.Fatal("slot 5 still used after delete")
	}
	if err := p.Delete(5); err == nil {
		t.Fatal("double delete should fail")
	}
	// Dense packing: next insert reuses the freed slot.
	slot, err := p.Insert(enc)
	if err != nil {
		t.Fatal(err)
	}
	if slot != 5 {
		t.Fatalf("insert after delete landed in %d, want 5", slot)
	}
}

func TestWrongWidthInsert(t *testing.T) {
	p := New(ID{}, 16)
	if _, err := p.Insert(make([]byte, 15)); err == nil {
		t.Fatal("expected width error")
	}
	if err := p.InsertAt(0, make([]byte, 17)); err == nil {
		t.Fatal("expected width error from InsertAt")
	}
}

func TestLSNRoundTrip(t *testing.T) {
	p := New(ID{Table: 3, PageNo: 9}, 32)
	if p.LSN() != 0 {
		t.Fatal("fresh page should have LSN 0")
	}
	p.SetLSN(0xDEADBEEF01)
	if p.LSN() != 0xDEADBEEF01 {
		t.Fatalf("LSN round trip failed: %x", p.LSN())
	}
}

func TestFromBytesValidation(t *testing.T) {
	p := New(ID{Table: 1}, 64)
	if _, err := FromBytes(p.ID(), p.Bytes(), 64); err != nil {
		t.Fatalf("FromBytes on valid image: %v", err)
	}
	if _, err := FromBytes(p.ID(), p.Bytes()[:100], 64); err == nil {
		t.Fatal("expected size error")
	}
	if _, err := FromBytes(p.ID(), p.Bytes(), 32); err == nil {
		t.Fatal("expected slot-count mismatch error")
	}
}

func TestFromBytesPreservesContent(t *testing.T) {
	p := New(ID{Table: 7, PageNo: 2}, 24)
	enc := bytes.Repeat([]byte{0x5C}, 24)
	if _, err := p.Insert(enc); err != nil {
		t.Fatal(err)
	}
	p.SetLSN(77)
	img := make([]byte, Size)
	copy(img, p.Bytes())
	q, err := FromBytes(p.ID(), img, 24)
	if err != nil {
		t.Fatal(err)
	}
	if q.LSN() != 77 || !q.Used(0) || q.NumUsed() != 1 {
		t.Fatal("reloaded page lost state")
	}
	got, err := q.Slot(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, enc) {
		t.Fatal("slot content mismatch after reload")
	}
}

func TestWriteReadInt64At(t *testing.T) {
	p := New(ID{}, 40)
	if _, err := p.Insert(make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteInt64At(0, 8, -12345); err != nil {
		t.Fatal(err)
	}
	v, err := p.ReadInt64At(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != -12345 {
		t.Fatalf("got %d want -12345", v)
	}
	if err := p.WriteInt64At(0, 36, 1); err == nil {
		t.Fatal("expected out-of-slot error")
	}
	if err := p.WriteInt64At(p.NumSlots(), 0, 1); err == nil {
		t.Fatal("expected out-of-range slot error")
	}
}

// Property: a random sequence of inserts and deletes keeps the bitmap, the
// used count, and FirstFree mutually consistent with a model map.
func TestQuickInsertDeleteModel(t *testing.T) {
	const width = 128
	f := func(ops []uint16) bool {
		p := New(ID{Table: 9}, width)
		model := map[int][]byte{}
		next := byte(1)
		for _, op := range ops {
			if op%3 != 0 { // insert twice as often as delete
				enc := bytes.Repeat([]byte{next}, width)
				next++
				slot, err := p.Insert(enc)
				if err == ErrPageFull {
					if len(model) != p.NumSlots() {
						return false
					}
					continue
				}
				if err != nil {
					return false
				}
				if _, dup := model[slot]; dup {
					return false
				}
				model[slot] = enc
			} else if len(model) > 0 {
				// delete an arbitrary live slot
				var victim int
				for s := range model {
					victim = s
					break
				}
				if err := p.Delete(victim); err != nil {
					return false
				}
				delete(model, victim)
			}
			if p.NumUsed() != len(model) {
				return false
			}
		}
		for s, enc := range model {
			if !p.Used(s) {
				return false
			}
			got, err := p.Slot(s)
			if err != nil || !bytes.Equal(got, enc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPageInsert(b *testing.B) {
	enc := make([]byte, 64)
	b.ReportAllocs()
	var p *Page
	for i := 0; i < b.N; i++ {
		if i%63 == 0 {
			p = New(ID{}, 64)
		}
		if _, err := p.Insert(enc); err != nil {
			b.Fatal(err)
		}
	}
}
