package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestName(t *testing.T) {
	cases := []struct {
		base   string
		labels []string
		want   string
	}{
		{"wal.fsyncs", nil, "wal.fsyncs"},
		{"coord.round.latency", []string{"msg", "COMMIT", "proto", "harbor"},
			"coord.round.latency{msg=COMMIT,proto=harbor}"},
		// Labels sort by key regardless of call order.
		{"coord.round.latency", []string{"proto", "harbor", "msg", "COMMIT"},
			"coord.round.latency{msg=COMMIT,proto=harbor}"},
		{"x", []string{"dangling"}, "x"},
	}
	for _, c := range cases {
		if got := Name(c.base, c.labels...); got != c.want {
			t.Errorf("Name(%q, %v) = %q, want %q", c.base, c.labels, got, c.want)
		}
	}
}

func TestRegistryCountersAndReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Add(3)
	c.Inc()
	if got := r.Counter("a.b").Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("Counter must return the same instance for the same name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h := r.Histogram("h")
	h.Observe(1500)
	r.Reset()
	snap := r.Snapshot()
	if snap.Counters["a.b"] != 0 || snap.Gauges["g"] != 0 || snap.Histograms["h"].Count != 0 {
		t.Fatalf("Reset left non-zero values: %+v", snap)
	}
	// Pointers stay valid after Reset.
	c.Inc()
	if got := r.Snapshot().Counters["a.b"]; got != 1 {
		t.Fatalf("post-reset counter = %d, want 1", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	for i := 0; i < 50; i++ {
		h.Observe(5) // bucket 0
	}
	for i := 0; i < 45; i++ {
		h.Observe(50) // bucket 1
	}
	for i := 0; i < 5; i++ {
		h.Observe(5000) // overflow
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Counts[0] != 50 || s.Counts[1] != 45 || s.Counts[3] != 5 {
		t.Fatalf("bucket counts = %v", s.Counts)
	}
	if got := s.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %d, want 10", got)
	}
	if got := s.Quantile(0.9); got != 100 {
		t.Errorf("p90 = %d, want 100", got)
	}
	if s.Mean() != (50*5+45*50+5*5000)/100 {
		t.Errorf("mean = %d", s.Mean())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i) * 1000)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestTracerTimelineAndDump(t *testing.T) {
	tr := NewTracer()
	tr.Record(7, EvBegin, "proto=harbor sites=[1 2]")
	tr.Record(7, EvSend, "msg=PREPARE site=1")
	tr.Recordf(7, EvAck, "site=%d vote=yes", 1)
	tr.Record(7, EvCommitPoint, "ts=41")
	tl := tr.Timeline(7)
	if len(tl) != 4 {
		t.Fatalf("timeline has %d events, want 4", len(tl))
	}
	if tl[0].Kind != EvBegin || tl[3].Kind != EvCommitPoint {
		t.Fatalf("wrong order: %v … %v", tl[0].Kind, tl[3].Kind)
	}
	d := tr.Dump(7)
	for _, want := range []string{"txn 7 timeline (4 events)", "begin", "send", "ack", "commit-point", "ts=41"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
	if got := tr.Dump(99); !strings.Contains(got, "no trace recorded") {
		t.Errorf("unknown txn dump = %q", got)
	}
}

func TestTracerEventRingWraps(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < defaultMaxEvents+10; i++ {
		tr.Recordf(1, EvSend, "n=%d", i)
	}
	tl := tr.Timeline(1)
	if len(tl) != defaultMaxEvents {
		t.Fatalf("ring holds %d events, want %d", len(tl), defaultMaxEvents)
	}
	if tl[0].Detail != "n=10" || tl[len(tl)-1].Detail != fmt.Sprintf("n=%d", defaultMaxEvents+9) {
		t.Fatalf("ring kept wrong window: first=%q last=%q", tl[0].Detail, tl[len(tl)-1].Detail)
	}
}

func TestTracerTxnFIFOEviction(t *testing.T) {
	tr := NewTracer()
	for id := int64(0); id < defaultMaxTxns+5; id++ {
		tr.Record(id, EvBegin, "")
	}
	if got := tr.Timeline(0); got != nil {
		t.Fatal("oldest txn should have been evicted")
	}
	if got := tr.Timeline(defaultMaxTxns + 4); len(got) != 1 {
		t.Fatal("newest txn missing")
	}
	if tr.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5", tr.Dropped())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(1, EvBegin, "x") // must not panic
	tr.Recordf(1, EvSend, "y")
	if tr.Timeline(1) != nil || tr.Txns() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be empty")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Recordf(int64(i%32), EvSend, "g=%d i=%d", g, i)
				_ = tr.Timeline(int64(i % 32))
			}
		}(g)
	}
	wg.Wait()
	if len(tr.Txns()) != 32 {
		t.Fatalf("txns = %d, want 32", len(tr.Txns()))
	}
}

func TestDebugHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wal.fsyncs").Add(3)
	reg.Histogram("coord.commit.latency.ns").Observe(2000)
	tr := NewTracer()
	tr.Record(5, EvBegin, "proto=harbor")
	tr.Record(5, EvCommitPoint, "ts=9")

	h := Handler(reg, tr)

	// Full snapshot.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/harbor", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var snap struct {
		Counters   map[string]int64        `json:"counters"`
		Histograms map[string]HistSnapshot `json:"histograms"`
		Txns       []int64                 `json:"txns"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("malformed JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.Counters["wal.fsyncs"] != 3 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Histograms["coord.commit.latency.ns"].Count != 1 {
		t.Errorf("histograms = %v", snap.Histograms)
	}
	if len(snap.Txns) != 1 || snap.Txns[0] != 5 {
		t.Errorf("txns = %v", snap.Txns)
	}

	// Timeline as JSON.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/harbor?txn=5", nil))
	var tl struct {
		Txn    int64   `json:"txn"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tl); err != nil {
		t.Fatalf("malformed timeline JSON: %v", err)
	}
	if tl.Txn != 5 || len(tl.Events) != 2 || tl.Events[1].KindS != "commit-point" {
		t.Errorf("timeline = %+v", tl)
	}

	// Timeline as text.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/harbor?txn=5&format=text", nil))
	if !strings.Contains(rec.Body.String(), "txn 5 timeline") {
		t.Errorf("text dump = %q", rec.Body.String())
	}

	// Bad txn id.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/harbor?txn=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad txn id status = %d, want 400", rec.Code)
	}
}
