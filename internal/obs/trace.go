package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// EventKind classifies a trace event. The set mirrors the lifecycle a
// transaction takes through the §4.3 commit protocols and §5 recovery.
type EventKind uint8

const (
	// EvBegin marks transaction begin (coordinator) or first contact (worker).
	EvBegin EventKind = iota + 1
	// EvSend marks a protocol-round message sent to a site.
	EvSend
	// EvAck marks a site's reply to a round message (including votes).
	EvAck
	// EvEvict marks a site evicted from the transaction (RoundTimeout,
	// §4.3.5 K-1 safety).
	EvEvict
	// EvForce marks a forced log write on behalf of the transaction.
	EvForce
	// EvCommitPoint marks the plan's commit point (outcome durably decided).
	EvCommitPoint
	// EvAbort marks the abort decision.
	EvAbort
	// EvPrepare marks a worker entering the prepared state.
	EvPrepare
	// EvVote marks a worker's vote.
	EvVote
	// EvRecovery marks a §5 recovery phase transition.
	EvRecovery
)

// String renders the kind for timelines.
func (k EventKind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvSend:
		return "send"
	case EvAck:
		return "ack"
	case EvEvict:
		return "evict"
	case EvForce:
		return "force"
	case EvCommitPoint:
		return "commit-point"
	case EvAbort:
		return "abort"
	case EvPrepare:
		return "prepare"
	case EvVote:
		return "vote"
	case EvRecovery:
		return "recovery"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one entry in a transaction's timeline.
type Event struct {
	At     time.Time `json:"at"`
	Kind   EventKind `json:"-"`
	KindS  string    `json:"kind"`
	Detail string    `json:"detail,omitempty"`
}

// txnRing is a bounded event ring for one transaction.
type txnRing struct {
	events []Event // ring storage, len == cap once full
	next   int     // next write index
	full   bool
}

func (r *txnRing) add(e Event, max int) {
	if len(r.events) < max && !r.full {
		r.events = append(r.events, e)
		if len(r.events) == max {
			r.full = true
			r.next = 0
		}
		return
	}
	r.events[r.next] = e
	r.next = (r.next + 1) % len(r.events)
}

func (r *txnRing) ordered() []Event {
	if !r.full {
		out := make([]Event, len(r.events))
		copy(out, r.events)
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Tracer keeps bounded per-transaction event rings. When the transaction cap
// is reached the oldest-started transaction's ring is dropped (FIFO), so a
// long-running process keeps the most recent history. All methods are safe
// on a nil receiver (no-ops / empty results), so call sites never need a
// nil check.
type Tracer struct {
	mu        sync.Mutex
	txns      map[int64]*txnRing
	order     []int64 // insertion order, for FIFO eviction
	maxTxns   int
	maxEvents int
	dropped   int64
}

// Default Tracer capacity: most-recent 1024 transactions, 64 events each.
const (
	defaultMaxTxns   = 1024
	defaultMaxEvents = 64
)

// NewTracer creates a tracer with the default capacity.
func NewTracer() *Tracer {
	return &Tracer{
		txns:      map[int64]*txnRing{},
		maxTxns:   defaultMaxTxns,
		maxEvents: defaultMaxEvents,
	}
}

// Record appends an event to txn's timeline.
func (t *Tracer) Record(txn int64, kind EventKind, detail string) {
	if t == nil {
		return
	}
	e := Event{At: time.Now(), Kind: kind, KindS: kind.String(), Detail: detail}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.txns[txn]
	if r == nil {
		if len(t.order) >= t.maxTxns {
			oldest := t.order[0]
			t.order = t.order[1:]
			delete(t.txns, oldest)
			t.dropped++
		}
		r = &txnRing{}
		t.txns[txn] = r
		t.order = append(t.order, txn)
	}
	r.add(e, t.maxEvents)
}

// Recordf is Record with fmt formatting of the detail.
func (t *Tracer) Recordf(txn int64, kind EventKind, format string, args ...any) {
	if t == nil {
		return
	}
	t.Record(txn, kind, fmt.Sprintf(format, args...))
}

// Timeline returns txn's events in order (nil if unknown).
func (t *Tracer) Timeline(txn int64) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.txns[txn]
	if r == nil {
		return nil
	}
	return r.ordered()
}

// Txns returns the ids with a recorded timeline, ascending.
func (t *Tracer) Txns() []int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int64, 0, len(t.txns))
	for id := range t.txns {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Dropped returns how many transactions' timelines were evicted.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Dump renders txn's timeline as human-readable text, timestamps relative to
// the first event — the format the chaos harness prints when an invariant
// fails:
//
//	txn 7 timeline (4 events):
//	  +0.000ms begin proto=traditional_2PC sites=[1 2]
//	  +0.412ms send msg=PREPARE site=1
//	  ...
func (t *Tracer) Dump(txn int64) string {
	events := t.Timeline(txn)
	if len(events) == 0 {
		return fmt.Sprintf("txn %d: no trace recorded", txn)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "txn %d timeline (%d events):\n", txn, len(events))
	t0 := events[0].At
	for _, e := range events {
		fmt.Fprintf(&b, "  +%8.3fms %-12s %s\n",
			float64(e.At.Sub(t0).Microseconds())/1000, e.Kind, e.Detail)
	}
	return b.String()
}
