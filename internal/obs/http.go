package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves a registry snapshot (and, when a tracer is given, the known
// transaction ids) as JSON at its mount point — the expvar-style
// /debug/harbor endpoint.
//
//	GET /debug/harbor           → {"counters":…, "gauges":…, "histograms":…, "txns":[…]}
//	GET /debug/harbor?txn=7     → {"txn":7, "events":[{"at":…,"kind":"send",…}]}
//	GET /debug/harbor?txn=7&format=text → the same timeline as plain text
func Handler(reg *Registry, tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if q := r.URL.Query().Get("txn"); q != "" {
			id, err := strconv.ParseInt(q, 10, 64)
			if err != nil {
				http.Error(w, "bad txn id", http.StatusBadRequest)
				return
			}
			if r.URL.Query().Get("format") == "text" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				_, _ = w.Write([]byte(tr.Dump(id)))
				return
			}
			writeJSON(w, map[string]any{"txn": id, "events": tr.Timeline(id)})
			return
		}
		out := map[string]any{}
		if reg != nil {
			snap := reg.Snapshot()
			out["counters"] = snap.Counters
			out["gauges"] = snap.Gauges
			out["histograms"] = snap.Histograms
		}
		if tr != nil {
			out["txns"] = tr.Txns()
			out["dropped_txns"] = tr.Dropped()
		}
		writeJSON(w, out)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// DebugMux returns a mux with /debug/harbor and the pprof endpoints mounted,
// ready for cmd/harbor-worker and cmd/harbor-coord's -debug-addr listener.
func DebugMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/harbor", Handler(reg, tr))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
