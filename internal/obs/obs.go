// Package obs is HARBOR's stdlib-only observability layer: a metrics
// registry (atomic counters, gauges, and fixed-bucket latency histograms,
// named hierarchically — wal.fsyncs, coord.round.latency{msg=COMMIT,
// proto=traditional_2PC}, lockmgr.wait.ns, …) plus a per-transaction trace
// of ring-buffered events (see trace.go).
//
// The thesis's evaluation (§6.2, Figure 6-2, Table 4.2) is entirely about
// counting messages, forced writes, and phase latencies; this package makes
// those quantities first-class so that the Table 4.2 cost-parity test, the
// harbor-bench histograms, and the chaos harness's failure dumps all read
// from one source of truth instead of five disconnected Stats() APIs.
//
// Every instrumented component holds *Counter/*Histogram pointers resolved
// once at construction, so the hot path is a single atomic add — there is no
// map lookup or lock per event.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (resettable) atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store sets the counter (benches reset between configurations).
func (c *Counter) Store(v int64) { c.v.Store(v) }

// Gauge is an instantaneous atomic value (pool occupancy, txns in flight).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DefaultBounds are the histogram bucket upper bounds used when none are
// given: exponential nanosecond latencies from 1µs to ~17s (doubling), which
// spans everything from a lock-manager fast path to a chaos-delayed commit
// round. Values above the last bound land in an overflow bucket.
var DefaultBounds = func() []int64 {
	b := make([]int64, 25)
	v := int64(1000) // 1µs
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Bounds are inclusive upper limits; observations above the last bound are
// counted in a final overflow bucket.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sum    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBounds
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// reset zeroes the histogram.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// HistSnapshot is a point-in-time copy of a histogram, JSON-encodable for
// /debug/harbor and BENCH_protocols.json.
type HistSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Bounds []int64 `json:"bounds"`        // upper bounds; final bucket is overflow
	Counts []int64 `json:"counts"`        // len(Bounds)+1
	P50    int64   `json:"p50,omitempty"` // bucket-interpolated quantiles
	P95    int64   `json:"p95,omitempty"`
	P99    int64   `json:"p99,omitempty"`
}

// Snapshot copies the histogram's current state and precomputes p50/95/99.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0..1) from bucket counts, returning the
// upper bound of the bucket containing the target rank (the conventional
// conservative estimate for fixed-bucket histograms). Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q*float64(s.Count))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen > rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			// Overflow bucket: no upper bound; report the mean of what
			// landed there as a best effort (sum minus everything bounded
			// is unknown, so just return the last bound).
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the mean observation, 0 when empty.
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Name renders a hierarchical metric name with sorted key=value labels:
// Name("coord.round.latency", "msg", "COMMIT", "proto", "harbor") →
// "coord.round.latency{msg=COMMIT,proto=harbor}". Labels must come in
// key, value pairs; an odd trailing key is ignored.
func Name(base string, labels ...string) string {
	if len(labels) < 2 {
		return base
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a named collection of metrics. Each Coordinator and worker
// Site owns one, so tests and benches can read one component's numbers in
// isolation; cmds mount their instance's registry at /debug/harbor.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// DefaultBounds if needed.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith is Histogram with explicit bucket bounds (ascending). Bounds
// are fixed at first registration; later calls return the existing histogram.
func (r *Registry) HistogramWith(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every metric (benches reset between configurations; pointers
// held by instrumented components remain valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Store(0)
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Snapshot is a point-in-time, JSON-encodable copy of a registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Load()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}
