// Package testutil spins up in-process HARBOR clusters on ephemeral ports
// and temp directories for integration tests, benches, and examples. The
// sites are real TCP servers with real on-disk state; only process
// boundaries are elided.
package testutil

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/coord"
	"harbor/internal/core"
	"harbor/internal/expr"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/worker"
)

// ClusterConfig configures a test cluster.
type ClusterConfig struct {
	Workers         int
	Protocol        txn.Protocol
	Mode            worker.RecoveryMode
	GroupCommit     bool
	SyncDelay       time.Duration // simulated per-fsync disk latency
	CheckpointEvery time.Duration
	PoolFrames      int
	LockTimeout     time.Duration
	BaseDir         string // required: root directory for site state
	// RoundTimeout bounds each per-replica call of a coordinator fan-out
	// round (0 = wait forever).
	RoundTimeout time.Duration
	// DialTimeout bounds each coordinator→worker dial (0 = comm default).
	DialTimeout time.Duration
}

// Cluster is a one-coordinator, N-worker deployment (the thesis used one
// coordinator and up to three workers on four nodes).
type Cluster struct {
	Cfg     ClusterConfig
	Catalog *catalog.Catalog
	Coord   *coord.Coordinator
	Workers []*worker.Site // index 0 ↔ site id 1, etc.
}

// WorkerSiteID returns the catalog site id of worker index i.
func WorkerSiteID(i int) catalog.SiteID { return catalog.SiteID(i + 1) }

// NewCluster builds and starts the cluster. Site 0 is the coordinator;
// sites 1..N are workers.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.BaseDir == "" {
		return nil, fmt.Errorf("testutil: BaseDir required")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	cat := catalog.New(0)
	cl := &Cluster{Cfg: cfg, Catalog: cat}

	// Workers first (the coordinator needs their addresses only lazily, but
	// the catalog wants them registered).
	for i := 0; i < cfg.Workers; i++ {
		site := WorkerSiteID(i)
		w, err := worker.Open(worker.Config{
			Site:            site,
			Dir:             filepath.Join(cfg.BaseDir, fmt.Sprintf("site%d", site)),
			Protocol:        cfg.Protocol,
			Mode:            cfg.Mode,
			PoolFrames:      cfg.PoolFrames,
			LockTimeout:     cfg.LockTimeout,
			CheckpointEvery: cfg.CheckpointEvery,
			GroupCommit:     cfg.GroupCommit,
			SyncDelay:       cfg.SyncDelay,
			Catalog:         cat,
		})
		if err != nil {
			cl.Close()
			return nil, err
		}
		installRepairHook(w, cat)
		cl.Workers = append(cl.Workers, w)
		cat.AddSite(site, w.Addr())
	}
	co, err := coord.New(coord.Config{
		Site:         0,
		Dir:          filepath.Join(cfg.BaseDir, "site0"),
		Protocol:     cfg.Protocol,
		Catalog:      cat,
		GroupCommit:  cfg.GroupCommit,
		SyncDelay:    cfg.SyncDelay,
		RoundTimeout: cfg.RoundTimeout,
		LockTimeout:  cfg.LockTimeout,
		DialTimeout:  cfg.DialTimeout,
	})
	if err != nil {
		cl.Close()
		return nil, err
	}
	cl.Coord = co
	cat.AddSite(0, co.Addr())
	return cl, nil
}

// CreateReplicatedTable creates a table replicated in full on the given
// workers (defaults to all workers).
func (cl *Cluster) CreateReplicatedTable(id int32, desc *tuple.Desc, segPages int32, workers ...int) error {
	if len(workers) == 0 {
		for i := range cl.Workers {
			workers = append(workers, i)
		}
	}
	spec := &catalog.TableSpec{ID: id, Name: fmt.Sprintf("t%d", id), Desc: desc, SegPages: segPages}
	var reps []catalog.Replica
	for _, i := range workers {
		reps = append(reps, catalog.Replica{
			Site: WorkerSiteID(i), Table: id, Range: expr.FullKeyRange(), SegPages: segPages,
		})
	}
	return cl.Coord.CreateTable(spec, reps...)
}

// CreatePartitionedTable creates a table horizontally partitioned across
// the first two workers at the split key: worker 0 holds keys < split,
// worker 1 holds keys >= split (no replication — a distributed scan must
// visit both sites).
func (cl *Cluster) CreatePartitionedTable(id int32, desc *tuple.Desc, segPages int32, split int64) error {
	return cl.CreateRangePartitionedTable(id, desc, segPages, split)
}

// CreateRangePartitionedTable creates a table horizontally range-partitioned
// across the first len(splits)+1 workers at the given strictly ascending
// split keys: worker i holds [splits[i-1], splits[i]) with the outer bounds
// unbounded (no replication — a distributed scan must visit every site).
func (cl *Cluster) CreateRangePartitionedTable(id int32, desc *tuple.Desc, segPages int32, splits ...int64) error {
	n := len(splits) + 1
	if n < 2 {
		return fmt.Errorf("testutil: range-partitioned table needs >= 1 split key")
	}
	if len(cl.Workers) < n {
		return fmt.Errorf("testutil: %d-way partitioned table needs >= %d workers", n, n)
	}
	full := expr.FullKeyRange()
	bounds := make([]int64, 0, n+1)
	bounds = append(bounds, full.Lo)
	bounds = append(bounds, splits...)
	bounds = append(bounds, full.Hi)
	for i := 2; i < len(bounds)-1; i++ {
		if bounds[i] <= bounds[i-1] {
			return fmt.Errorf("testutil: split keys must be strictly ascending, got %v", splits)
		}
	}
	spec := &catalog.TableSpec{ID: id, Name: fmt.Sprintf("t%d", id), Desc: desc, SegPages: segPages}
	reps := make([]catalog.Replica, 0, n)
	for i := 0; i < n; i++ {
		reps = append(reps, catalog.Replica{
			Site: WorkerSiteID(i), Table: id,
			Range: expr.KeyRange{Lo: bounds[i], Hi: bounds[i+1]}, SegPages: segPages,
		})
	}
	return cl.Coord.CreateTable(spec, reps...)
}

// AddWorker opens the cold N+1th worker site and appends it to the cluster
// without giving it any data: the caller drives core.Join (or Migrate) to
// stream replicas onto it while the cluster serves. The site directory is
// BaseDir/site<id>, matching NewCluster's layout.
func (cl *Cluster) AddWorker() (*worker.Site, error) {
	i := len(cl.Workers)
	site := WorkerSiteID(i)
	w, err := worker.Open(worker.Config{
		Site:            site,
		Dir:             filepath.Join(cl.Cfg.BaseDir, fmt.Sprintf("site%d", site)),
		Protocol:        cl.Cfg.Protocol,
		Mode:            cl.Cfg.Mode,
		PoolFrames:      cl.Cfg.PoolFrames,
		LockTimeout:     cl.Cfg.LockTimeout,
		CheckpointEvery: cl.Cfg.CheckpointEvery,
		GroupCommit:     cl.Cfg.GroupCommit,
		SyncDelay:       cl.Cfg.SyncDelay,
		Catalog:         cl.Catalog,
	})
	if err != nil {
		return nil, err
	}
	installRepairHook(w, cl.Catalog)
	cl.Workers = append(cl.Workers, w)
	cl.Catalog.AddSite(site, w.Addr())
	return w, nil
}

// RestartWorker replaces a crashed worker with a fresh Site over the same
// directory (simulating a reboot) and repoints the catalog at its new
// address. ARIES recovery is NOT run automatically.
func (cl *Cluster) RestartWorker(i int) (*worker.Site, error) {
	old := cl.Workers[i]
	if !old.Crashed() {
		old.Crash()
	}
	site := WorkerSiteID(i)
	w, err := worker.Open(worker.Config{
		Site:            site,
		Dir:             old.Cfg.Dir,
		Protocol:        cl.Cfg.Protocol,
		Mode:            cl.Cfg.Mode,
		PoolFrames:      cl.Cfg.PoolFrames,
		LockTimeout:     cl.Cfg.LockTimeout,
		CheckpointEvery: cl.Cfg.CheckpointEvery,
		GroupCommit:     cl.Cfg.GroupCommit,
		SyncDelay:       cl.Cfg.SyncDelay,
		Catalog:         cl.Catalog,
	})
	if err != nil {
		return nil, err
	}
	installRepairHook(w, cl.Catalog)
	cl.Workers[i] = w
	cl.Catalog.AddSite(site, w.Addr())
	return w, nil
}

// installRepairHook arms the worker's online torn-page repair with the
// recovery engine's repair-from-buddy path, mirroring cmd/harbor-worker.
func installRepairHook(w *worker.Site, cat *catalog.Catalog) {
	rec := core.New(w, cat)
	w.SetRepairHook(func(table int32) error {
		_, err := rec.RepairTable(table)
		return err
	})
}

// Close shuts everything down.
func (cl *Cluster) Close() {
	if cl.Coord != nil {
		cl.Coord.Close()
	}
	for _, w := range cl.Workers {
		if w != nil {
			w.Close()
		}
	}
}

// TempBase returns a fresh temp directory for a cluster (caller removes).
func TempBase(prefix string) (string, func(), error) {
	dir, err := os.MkdirTemp("", prefix)
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}
