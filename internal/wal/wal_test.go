package wal

import (
	"math/rand"
	"os"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"harbor/internal/page"
)

func openTest(t *testing.T) (*Manager, string) {
	t.Helper()
	dir := t.TempDir()
	m, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, dir
}

func TestAppendForceIter(t *testing.T) {
	m, _ := openTest(t)
	r1 := &Record{Type: RecInsert, Txn: 1, Page: page.ID{Table: 1, PageNo: 2}, Slot: 3, Image: []byte{1, 2, 3}}
	lsn1 := m.Append(r1)
	r2 := &Record{Type: RecCommit, Txn: 1, PrevLSN: lsn1, CommitTS: 99}
	lsn2 := m.Append(r2)
	if lsn2 <= lsn1 {
		t.Fatalf("LSNs not increasing: %d then %d", lsn1, lsn2)
	}
	if err := m.Force(lsn2, true); err != nil {
		t.Fatal(err)
	}
	if m.FlushedLSN() <= lsn2 {
		t.Fatalf("flushed %d, want > %d", m.FlushedLSN(), lsn2)
	}
	var got []*Record
	if err := m.Iter(0, func(r *Record) (bool, error) {
		got = append(got, r)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("iterated %d records, want 2", len(got))
	}
	if got[0].Type != RecInsert || string(got[0].Image) != string([]byte{1, 2, 3}) {
		t.Fatalf("record 0 corrupted: %+v", got[0])
	}
	if got[1].Type != RecCommit || got[1].CommitTS != 99 || got[1].PrevLSN != lsn1 {
		t.Fatalf("record 1 corrupted: %+v", got[1])
	}
	if got[0].LSN != lsn1 || got[1].LSN != lsn2 {
		t.Fatalf("iterated LSNs %d,%d want %d,%d", got[0].LSN, got[1].LSN, lsn1, lsn2)
	}
}

func TestIterIncludesUnflushedTail(t *testing.T) {
	m, _ := openTest(t)
	m.Append(&Record{Type: RecPrepare, Txn: 7})
	count := 0
	if err := m.Iter(0, func(r *Record) (bool, error) {
		count++
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("tail record not iterated (count=%d)", count)
	}
}

func TestIterFromLSN(t *testing.T) {
	m, _ := openTest(t)
	m.Append(&Record{Type: RecPrepare, Txn: 1})
	lsn2 := m.Append(&Record{Type: RecCommit, Txn: 1})
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var types []RecType
	if err := m.Iter(lsn2, func(r *Record) (bool, error) {
		types = append(types, r.Type)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(types, []RecType{RecCommit}) {
		t.Fatalf("Iter(from=%d) saw %v", lsn2, types)
	}
}

func TestIterEarlyStop(t *testing.T) {
	m, _ := openTest(t)
	for i := 0; i < 5; i++ {
		m.Append(&Record{Type: RecPrepare, Txn: int64(i)})
	}
	count := 0
	if err := m.Iter(0, func(r *Record) (bool, error) {
		count++
		return count < 2, nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("early stop failed, count=%d", count)
	}
}

func TestReopenDiscardsTornTail(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsn := m.Append(&Record{Type: RecCommit, Txn: 1, CommitTS: 5})
	if err := m.Force(lsn, true); err != nil {
		t.Fatal(err)
	}
	m.Close()
	// Simulate a torn write: append garbage.
	f, err := os.OpenFile(Path(dir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 9, 9, 9, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	count := 0
	if err := m2.Iter(0, func(r *Record) (bool, error) {
		count++
		if r.Type != RecCommit {
			t.Errorf("unexpected type %v", r.Type)
		}
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("after torn tail: %d records, want 1", count)
	}
	// New appends go after the valid prefix.
	lsn2 := m2.Append(&Record{Type: RecAbort, Txn: 2})
	if err := m2.Force(lsn2, true); err != nil {
		t.Fatal(err)
	}
	count = 0
	if err := m2.Iter(0, func(r *Record) (bool, error) { count++; return true, nil }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("after append: %d records, want 2", count)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	m, _ := openTest(t)
	const n = 32
	var wg sync.WaitGroup
	lsns := make([]page.LSN, n)
	for i := 0; i < n; i++ {
		lsns[i] = m.Append(&Record{Type: RecCommit, Txn: int64(i)})
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := m.Force(lsns[i], true); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	forceCalls, fsyncs, appends := m.Counters()
	if forceCalls != n {
		t.Fatalf("forceCalls = %d, want %d", forceCalls, n)
	}
	if appends != n {
		t.Fatalf("appends = %d, want %d", appends, n)
	}
	if fsyncs >= n {
		t.Fatalf("group commit did not batch: %d fsyncs for %d forces", fsyncs, n)
	}
	if fsyncs < 1 {
		t.Fatalf("no fsync at all")
	}
}

func TestForceAlreadyFlushedIsFree(t *testing.T) {
	m, _ := openTest(t)
	lsn := m.Append(&Record{Type: RecCommit, Txn: 1})
	if err := m.Force(lsn, true); err != nil {
		t.Fatal(err)
	}
	_, fs1, _ := m.Counters()
	if err := m.Force(lsn, true); err != nil {
		t.Fatal(err)
	}
	_, fs2, _ := m.Counters()
	if fs2 != fs1 {
		t.Fatalf("re-force caused fsync: %d → %d", fs1, fs2)
	}
	m.ResetCounters()
	fc, fs, ap := m.Counters()
	if fc != 0 || fs != 0 || ap != 0 {
		t.Fatal("ResetCounters did not reset")
	}
}

func TestGroupDelayStillCorrect(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	lsn := m.Append(&Record{Type: RecCommit, Txn: 1})
	if err := m.Force(lsn, true); err != nil {
		t.Fatal(err)
	}
	if m.FlushedLSN() <= lsn {
		t.Fatal("force with delay did not flush")
	}
}

func TestMasterRecord(t *testing.T) {
	dir := t.TempDir()
	got, err := ReadMaster(dir)
	if err != nil || got != 0 {
		t.Fatalf("empty master: %d, %v", got, err)
	}
	if err := WriteMaster(dir, 12345); err != nil {
		t.Fatal(err)
	}
	got, err = ReadMaster(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12345 {
		t.Fatalf("master = %d", got)
	}
	// Corruption detected.
	raw, _ := os.ReadFile(MasterPath(dir))
	raw[0] ^= 0xFF
	os.WriteFile(MasterPath(dir), raw, 0o644)
	if _, err := ReadMaster(dir); err == nil {
		t.Fatal("corrupt master must error")
	}
}

// Property: record marshal/unmarshal round-trips arbitrary records.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(typ uint8, txn int64, prev uint64, table, pageNo, slot, fieldOff int32,
		before, after, commitTS int64, undoNext uint64, img []byte, newSeg bool,
		nDirty, nTxn uint8) bool {
		r := &Record{
			Type: RecType(typ%11 + 1), Txn: txn, PrevLSN: prev,
			Page: page.ID{Table: table, PageNo: pageNo}, Slot: slot,
			FieldOff: fieldOff, Before: before, After: after,
			SegIdx: slot / 2, NewSegment: newSeg,
			CommitTS: commitTS, UndoNext: undoNext,
		}
		if len(img) > 0 {
			r.Image = img
		}
		for i := uint8(0); i < nDirty%5; i++ {
			r.DirtyPages = append(r.DirtyPages, DirtyPage{Page: page.ID{Table: int32(i), PageNo: int32(i * 2)}, RecLSN: uint64(i)})
		}
		for i := uint8(0); i < nTxn%5; i++ {
			r.ActiveTxns = append(r.ActiveTxns, TxnStatus{Txn: int64(i), State: TxnState(i%4 + 1), LastLSN: uint64(i)})
		}
		got, err := unmarshalRecord(marshalRecord(r))
		if err != nil {
			return false
		}
		got.LSN = r.LSN
		return reflect.DeepEqual(got, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	r := &Record{Type: RecCheckpoint, DirtyPages: []DirtyPage{{Page: page.ID{Table: 1}, RecLSN: 2}}}
	body := marshalRecord(r)
	for i := 0; i < len(body); i++ {
		if _, err := unmarshalRecord(body[:i]); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
}

func BenchmarkAppendForce(b *testing.B) {
	dir := b.TempDir()
	m, err := Open(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	r := &Record{Type: RecCommit, Txn: 1, CommitTS: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lsn := m.Append(r)
		if err := m.Force(lsn, true); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNoGroupTakeoverWritesBeforeSync is the regression test for the
// Figure 6-2 no-group-commit configuration: when a Force call finds another
// flusher in flight, the takeover path must write the still-buffered batch
// *before* its fsync. The buggy version synced the bare file first, leaving
// the caller's record volatile until a second loop iteration issued a third
// fsync.
func TestNoGroupTakeoverWritesBeforeSync(t *testing.T) {
	m, _ := openTest(t)
	m.SetNoGroup(true)
	m.SetSyncDelay(50 * time.Millisecond)

	r1 := &Record{Type: RecCommit, Txn: 1, CommitTS: 1}
	lsn1 := m.Append(r1)

	done1 := make(chan error, 1)
	go func() { done1 <- m.Force(lsn1, true) }()

	// Wait until the first Force is inside its flush critical section (it
	// stays there ≥ 50ms thanks to the simulated disk latency).
	deadline := time.Now().Add(2 * time.Second)
	for {
		m.mu.Lock()
		flushing := m.flushing
		m.mu.Unlock()
		if flushing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first Force never started flushing")
		}
		time.Sleep(time.Millisecond)
	}

	// Append a second record while the first fsync is in flight, then Force
	// it: this exercises the no-group takeover branch.
	r2 := &Record{Type: RecCommit, Txn: 2, CommitTS: 2}
	lsn2 := m.Append(r2)
	if err := m.Force(lsn2, true); err != nil {
		t.Fatal(err)
	}

	// FlushedLSN progression: the takeover's own fsync covered r2.
	if m.FlushedLSN() <= lsn2 {
		t.Fatalf("FlushedLSN = %d after Force(%d); takeover fsync did not cover the record", m.FlushedLSN(), lsn2)
	}
	if err := <-done1; err != nil {
		t.Fatal(err)
	}

	// Two Force calls → exactly two serialized fsyncs. The buggy branch
	// needed a third (an empty sync, then a second iteration to flush r2).
	if _, fsyncs, _ := m.Counters(); fsyncs != 2 {
		t.Fatalf("fsyncs = %d, want 2 (no-group commit: one fsync per Force)", fsyncs)
	}

	// The record really is on disk and intact.
	var seen int
	if err := m.Iter(0, func(r *Record) (bool, error) {
		seen++
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("iterated %d records, want 2", seen)
	}
}
