// Package wal implements the write-ahead log used by the ARIES baseline and
// by the logging commit protocols (traditional 2PC, canonical 3PC). HARBOR
// mode creates no log at all — that asymmetry is the point of the thesis.
//
// The log is a single append-only file of CRC-protected records. LSNs are
// byte offsets + 1 (so the zero LSN means "never logged"). Force implements
// group commit (§6.2: "the database uses group commit without a group delay
// timer"): concurrent Force calls are batched into a single fsync by one
// flusher; an optional delay timer can be configured to widen batches.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"harbor/internal/obs"
	"harbor/internal/page"
	"harbor/internal/vfs"
)

// RecType enumerates log record types.
type RecType uint8

const (
	// RecInsert logs a physical slot insert (redo: put image; undo: free slot).
	RecInsert RecType = iota + 1
	// RecDelete logs a physical slot delete (redo: free slot; undo: put image).
	RecDelete
	// RecSetField logs an 8-byte in-place field update — commit-time
	// timestamp stamping writes these (§6.1.7: "ARIES requires writing
	// additional log records for the timestamp updates").
	RecSetField
	// RecAlloc logs page allocation so redo can rebuild the segment
	// directory deterministically.
	RecAlloc
	// RecCLR is a compensation log record written while undoing.
	RecCLR
	// RecPrepare marks a worker prepared (2PC first phase, §4.3.1).
	RecPrepare
	// RecPrepareToCommit marks a worker prepared-to-commit (canonical 3PC).
	RecPrepareToCommit
	// RecCommit marks a transaction committed (carries the commit time).
	RecCommit
	// RecAbort marks a transaction aborted.
	RecAbort
	// RecEnd marks commit processing finished (coordinator's W(END)).
	RecEnd
	// RecCheckpoint is a fuzzy checkpoint carrying the dirty-page table and
	// the transaction table.
	RecCheckpoint
	// RecDeleteIntent records a versioned-delete intent before any page
	// bytes change. Deletion timestamps are only assigned at commit
	// (§6.1.4), so a prepared transaction's deletion list must be
	// reconstructable from the log for the worker to complete an in-doubt
	// commit after a crash.
	RecDeleteIntent
)

// String renders the record type.
func (t RecType) String() string {
	switch t {
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecSetField:
		return "SETFIELD"
	case RecAlloc:
		return "ALLOC"
	case RecCLR:
		return "CLR"
	case RecPrepare:
		return "PREPARE"
	case RecPrepareToCommit:
		return "PREPARE-TO-COMMIT"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecEnd:
		return "END"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecDeleteIntent:
		return "DELETE-INTENT"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record is one log record. Not every field is meaningful for every type.
type Record struct {
	LSN     page.LSN // assigned by Append
	Type    RecType
	Txn     int64    // transaction id (0 for checkpoints)
	PrevLSN page.LSN // previous record of the same transaction (undo chain)

	// Page-op fields (Insert/Delete/SetField/Alloc/CLR).
	Page page.ID
	Slot int32

	// Image carries the tuple image for Insert (after) and Delete (before).
	Image []byte

	// SetField fields.
	FieldOff int32
	Before   int64
	After    int64

	// Alloc fields.
	SegIdx     int32
	NewSegment bool

	// Commit time for RecCommit; also reused as the checkpoint's
	// begin-checkpoint timestamp.
	CommitTS int64

	// UndoNext for CLRs: the next record to undo for this transaction.
	UndoNext page.LSN

	// Checkpoint payload.
	DirtyPages []DirtyPage
	ActiveTxns []TxnStatus
}

// DirtyPage is a checkpoint's dirty-page-table entry: the page and its
// recovery LSN (oldest LSN that may have dirtied it).
type DirtyPage struct {
	Page   page.ID
	RecLSN page.LSN
}

// TxnState mirrors the ARIES transaction table states.
type TxnState uint8

const (
	// TxnActive is an in-flight transaction.
	TxnActive TxnState = iota + 1
	// TxnPrepared is an in-doubt distributed transaction.
	TxnPrepared
	// TxnCommitted has a COMMIT record but no END yet.
	TxnCommitted
	// TxnAborted has an ABORT record but undo may be unfinished.
	TxnAborted
)

// TxnStatus is a checkpoint's transaction-table entry.
type TxnStatus struct {
	Txn     int64
	State   TxnState
	LastLSN page.LSN
}

// Manager is one site's log manager.
type Manager struct {
	mu      sync.Mutex
	file    vfs.File
	buf     []byte   // unflushed tail
	bufLSN  page.LSN // LSN of buf[0]
	nextLSN page.LSN

	flushed    atomic.Uint64 // LSN up to which the log is durable
	flushCond  *sync.Cond
	flushing   bool
	groupDelay time.Duration
	// noGroup disables group commit: each Force call performs its own
	// serialized fsync instead of piggybacking on a concurrent flusher's
	// batch (the Figure 6-2 "2PC without group commit" configuration).
	noGroup bool
	// syncDelay adds simulated rotational latency to every fsync,
	// modelling the 2006-era disks of the thesis testbed on modern
	// hardware whose fsync is orders of magnitude faster. The delay is
	// inside the flusher's critical section, so group commit amortises it
	// across batched transactions exactly as it amortised real disk time.
	syncDelay time.Duration

	// Registry-backed counters for Table 4.2 style accounting (wal.force_calls,
	// wal.fsyncs, wal.appends, wal.fsync.ns); rebindable via Instrument.
	forceCalls *obs.Counter // logical forced-writes requested by protocols
	fsyncs     *obs.Counter // physical fsyncs actually issued
	appends    *obs.Counter
	fsyncNS    *obs.Histogram // per-fsync latency (includes simulated delay)
}

// Path returns the log file path within a site directory.
func Path(dir string) string { return filepath.Join(dir, "wal.log") }

// MasterPath returns the master-record path holding the last checkpoint LSN.
func MasterPath(dir string) string { return filepath.Join(dir, "wal.master") }

// Open opens (creating if needed) the site's log, positioned for appends
// after the last complete record. groupDelay widens group-commit batches
// (0 = flush as soon as a flusher is free, the thesis default).
func Open(dir string, groupDelay time.Duration) (*Manager, error) {
	f, err := vfs.OpenFile(Path(dir), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	// Scan to find the end of the last complete record (torn tails from a
	// crash are discarded).
	end, err := scanEnd(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	m := &Manager{
		file:       f,
		nextLSN:    page.LSN(end) + 1,
		bufLSN:     page.LSN(end) + 1,
		groupDelay: groupDelay,
	}
	m.flushed.Store(uint64(end) + 1)
	m.flushCond = sync.NewCond(&m.mu)
	m.Instrument(obs.NewRegistry())
	return m, nil
}

// Instrument rebinds the manager's counters to reg (call right after Open,
// before concurrent use). The owning Site/Coordinator passes its own registry
// so wal.* metrics appear in that component's /debug/harbor snapshot; until
// then a private registry keeps the counters always valid.
func (m *Manager) Instrument(reg *obs.Registry) {
	m.forceCalls = reg.Counter("wal.force_calls")
	m.fsyncs = reg.Counter("wal.fsyncs")
	m.appends = reg.Counter("wal.appends")
	m.fsyncNS = reg.Histogram("wal.fsync.ns")
}

func scanEnd(f vfs.File) (int64, error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	var off int64
	hdr := make([]byte, 8)
	for off+8 <= size {
		if _, err := f.ReadAt(hdr, off); err != nil {
			return off, nil
		}
		n := int64(binary.LittleEndian.Uint32(hdr))
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || off+8+n > size {
			break
		}
		body := make([]byte, n)
		if _, err := f.ReadAt(body, off+8); err != nil {
			break
		}
		if crc32.ChecksumIEEE(body) != sum {
			break
		}
		off += 8 + n
	}
	return off, nil
}

// Close closes the log file without flushing.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.file.Close()
}

// Append adds a record to the log buffer and returns its LSN. The record is
// not durable until Force (or a batched flush) covers it.
func (m *Manager) Append(r *Record) page.LSN {
	body := marshalRecord(r)
	framed := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(framed, uint32(len(body)))
	binary.LittleEndian.PutUint32(framed[4:], crc32.ChecksumIEEE(body))
	copy(framed[8:], body)

	m.mu.Lock()
	r.LSN = m.nextLSN
	m.buf = append(m.buf, framed...)
	m.nextLSN += page.LSN(len(framed))
	m.mu.Unlock()
	m.appends.Inc()
	return r.LSN
}

// FlushedLSN returns the LSN up to which the log is durable (exclusive).
func (m *Manager) FlushedLSN() page.LSN { return page.LSN(m.flushed.Load()) }

// Force makes the log durable at least up to lsn (inclusive of that
// record). Concurrent callers are batched into one fsync — group commit.
// countAsForcedWrite selects whether the call is tallied as a protocol-level
// forced-write (Table 4.2 accounting); normal writes (e.g. the
// coordinator's W(END)) pass false and typically never call Force at all.
func (m *Manager) Force(lsn page.LSN, countAsForcedWrite bool) error {
	if countAsForcedWrite {
		m.forceCalls.Inc()
	}
	if page.LSN(m.flushed.Load()) > lsn {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for page.LSN(m.flushed.Load()) <= lsn {
		if m.flushing {
			if m.noGroup {
				// No group commit: do not piggyback on the concurrent
				// flush; wait for the flusher to finish, then run a full
				// write+fsync cycle of our own even though the finished
				// batch may already cover our LSN. This serialises the log
				// I/O of concurrent transactions, which is exactly the
				// behaviour the paper measures (Figure 6-2's flat line).
				// The buffered batch must be written *before* the fsync:
				// an fsync of the bare file would leave the caller's
				// record volatile and push durability onto a second loop
				// iteration (and a second fsync).
				for m.flushing {
					m.flushCond.Wait()
				}
				m.flushing = true
				if err := m.flushBatch(); err != nil {
					return err
				}
				continue
			}
			// Another goroutine is flushing; wait for it and re-check —
			// its batch may already cover us (group commit).
			m.flushCond.Wait()
			continue
		}
		// Become the flusher for everything buffered right now.
		m.flushing = true
		if m.groupDelay > 0 {
			m.mu.Unlock()
			time.Sleep(m.groupDelay)
			m.mu.Lock()
		}
		if err := m.flushBatch(); err != nil {
			return err
		}
	}
	return nil
}

// flushBatch writes and syncs everything buffered right now, then publishes
// the new durable LSN. Called with m.mu held and m.flushing set by the
// caller; returns with m.mu re-held and m.flushing cleared.
func (m *Manager) flushBatch() error {
	batch := m.buf
	batchLSN := m.bufLSN
	m.buf = nil
	m.bufLSN = m.nextLSN
	m.mu.Unlock()

	var err error
	if len(batch) > 0 {
		_, err = m.file.Write(batch)
	}
	if err == nil {
		start := time.Now()
		err = m.file.Sync()
		m.sleepSyncDelay()
		m.fsyncs.Inc()
		m.fsyncNS.Observe(time.Since(start).Nanoseconds())
	}

	m.mu.Lock()
	m.flushing = false
	if err != nil {
		// Put nothing back; a failed log device is fatal for the site.
		m.flushCond.Broadcast()
		return err
	}
	m.flushed.Store(uint64(batchLSN) + uint64(len(batch)))
	m.flushCond.Broadcast()
	return nil
}

// SetNoGroup enables or disables the no-group-commit mode.
func (m *Manager) SetNoGroup(v bool) {
	m.mu.Lock()
	m.noGroup = v
	m.mu.Unlock()
}

// SetSyncDelay configures the simulated per-fsync disk latency (see the
// syncDelay field). Zero disables the simulation.
func (m *Manager) SetSyncDelay(d time.Duration) {
	m.mu.Lock()
	m.syncDelay = d
	m.mu.Unlock()
}

// sleepSyncDelay applies the simulated latency (called without m.mu held,
// inside a flushing critical section).
func (m *Manager) sleepSyncDelay() {
	m.mu.Lock()
	d := m.syncDelay
	m.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// FlushAll forces everything appended so far (checkpoint use).
func (m *Manager) FlushAll() error {
	m.mu.Lock()
	target := m.nextLSN - 1
	m.mu.Unlock()
	return m.Force(target, false)
}

// Counters returns (protocol forced-write calls, physical fsyncs, appends).
func (m *Manager) Counters() (forceCalls, fsyncs, appends int64) {
	return m.forceCalls.Load(), m.fsyncs.Load(), m.appends.Load()
}

// ResetCounters zeroes the accounting counters (benchmark harness use).
func (m *Manager) ResetCounters() {
	m.forceCalls.Store(0)
	m.fsyncs.Store(0)
	m.appends.Store(0)
}

// WriteMaster durably records the LSN of the latest checkpoint record via
// the shared atomic-replace helper. The old implementation synced a
// read-only handle of the temp file (a no-op for durability on some
// platforms) and never fsynced the parent directory, so a crash after the
// rename could roll the master record back; WriteFileAtomic does both
// steps correctly.
func WriteMaster(dir string, lsn page.LSN) error {
	buf := binary.LittleEndian.AppendUint64(nil, uint64(lsn))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return vfs.WriteFileAtomic(MasterPath(dir), buf, 0o644)
}

// ReadMaster returns the last checkpoint LSN, or 0 if none exists.
func ReadMaster(dir string) (page.LSN, error) {
	raw, err := vfs.ReadFile(MasterPath(dir))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(raw) != 12 {
		return 0, fmt.Errorf("wal: master record is %d bytes", len(raw))
	}
	if crc32.ChecksumIEEE(raw[:8]) != binary.LittleEndian.Uint32(raw[8:]) {
		return 0, fmt.Errorf("wal: master record checksum mismatch")
	}
	return page.LSN(binary.LittleEndian.Uint64(raw)), nil
}

// ReadAt returns the single record at the given LSN, reading from disk or
// the in-memory tail as appropriate. The ARIES undo pass and transaction
// rollback walk PrevLSN/UndoNext chains with it.
func (m *Manager) ReadAt(lsn page.LSN) (*Record, error) {
	if lsn == 0 {
		return nil, fmt.Errorf("wal: ReadAt(0)")
	}
	m.mu.Lock()
	bufLSN := m.bufLSN
	var tail []byte
	if lsn >= bufLSN {
		tail = append([]byte(nil), m.buf...)
	}
	m.mu.Unlock()

	var hdr [8]byte
	var body []byte
	if tail != nil {
		off := int64(lsn - bufLSN)
		if off+8 > int64(len(tail)) {
			return nil, fmt.Errorf("wal: LSN %d beyond log end", lsn)
		}
		n := int64(binary.LittleEndian.Uint32(tail[off:]))
		if off+8+n > int64(len(tail)) {
			return nil, fmt.Errorf("wal: LSN %d truncated in tail", lsn)
		}
		body = tail[off+8 : off+8+n]
	} else {
		if _, err := m.file.ReadAt(hdr[:], int64(lsn)-1); err != nil {
			return nil, err
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:]))
		sum := binary.LittleEndian.Uint32(hdr[4:])
		body = make([]byte, n)
		if _, err := m.file.ReadAt(body, int64(lsn)-1+8); err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(body) != sum {
			return nil, fmt.Errorf("wal: corrupt record at LSN %d", lsn)
		}
	}
	r, err := unmarshalRecord(body)
	if err != nil {
		return nil, err
	}
	r.LSN = lsn
	return r, nil
}

// Iter calls fn for every complete record in LSN order starting at fromLSN
// (0 or 1 = from the beginning). It reads committed state from disk plus the
// in-memory tail, so recovery tests can run without reopening the file.
func (m *Manager) Iter(fromLSN page.LSN, fn func(*Record) (bool, error)) error {
	m.mu.Lock()
	durable := int64(m.bufLSN) - 1 // bytes on disk
	tail := append([]byte(nil), m.buf...)
	tailLSN := m.bufLSN
	m.mu.Unlock()

	emit := func(lsn page.LSN, body []byte) (bool, error) {
		r, err := unmarshalRecord(body)
		if err != nil {
			return false, err
		}
		r.LSN = lsn
		return fn(r)
	}

	if fromLSN < 1 {
		fromLSN = 1
	}
	off := int64(fromLSN) - 1
	hdr := make([]byte, 8)
	for off+8 <= durable {
		if _, err := m.file.ReadAt(hdr, off); err != nil {
			return err
		}
		n := int64(binary.LittleEndian.Uint32(hdr))
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if off+8+n > durable {
			break
		}
		body := make([]byte, n)
		if _, err := m.file.ReadAt(body, off+8); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(body) != sum {
			return fmt.Errorf("wal: corrupt record at LSN %d", off+1)
		}
		cont, err := emit(page.LSN(off)+1, body)
		if err != nil || !cont {
			return err
		}
		off += 8 + n
	}
	// In-memory tail.
	pos := int64(0)
	for {
		start := int64(tailLSN) - 1 + pos
		if pos+8 > int64(len(tail)) {
			break
		}
		n := int64(binary.LittleEndian.Uint32(tail[pos:]))
		if pos+8+n > int64(len(tail)) {
			break
		}
		body := tail[pos+8 : pos+8+n]
		if start >= int64(fromLSN)-1 {
			cont, err := emit(page.LSN(start)+1, body)
			if err != nil || !cont {
				return err
			}
		}
		pos += 8 + n
	}
	return nil
}
