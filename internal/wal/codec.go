package wal

import (
	"encoding/binary"
	"fmt"

	"harbor/internal/page"
)

// marshalRecord encodes a record body (without the length/CRC frame).
func marshalRecord(r *Record) []byte {
	var b []byte
	u8 := func(v uint8) { b = append(b, v) }
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u8(uint8(r.Type))
	u64(uint64(r.Txn))
	u64(r.PrevLSN)
	u32(uint32(r.Page.Table))
	u32(uint32(r.Page.PageNo))
	u32(uint32(r.Slot))
	u32(uint32(r.FieldOff))
	u64(uint64(r.Before))
	u64(uint64(r.After))
	u32(uint32(r.SegIdx))
	if r.NewSegment {
		u8(1)
	} else {
		u8(0)
	}
	u64(uint64(r.CommitTS))
	u64(r.UndoNext)
	u32(uint32(len(r.Image)))
	b = append(b, r.Image...)
	u32(uint32(len(r.DirtyPages)))
	for _, dp := range r.DirtyPages {
		u32(uint32(dp.Page.Table))
		u32(uint32(dp.Page.PageNo))
		u64(dp.RecLSN)
	}
	u32(uint32(len(r.ActiveTxns)))
	for _, tx := range r.ActiveTxns {
		u64(uint64(tx.Txn))
		u8(uint8(tx.State))
		u64(tx.LastLSN)
	}
	return b
}

// unmarshalRecord decodes a record body.
func unmarshalRecord(b []byte) (*Record, error) {
	r := &Record{}
	off := 0
	fail := func() (*Record, error) { return nil, fmt.Errorf("wal: record truncated at %d", off) }
	u8 := func() (uint8, bool) {
		if off+1 > len(b) {
			return 0, false
		}
		v := b[off]
		off++
		return v, true
	}
	u32 := func() (uint32, bool) {
		if off+4 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v, true
	}
	t, ok := u8()
	if !ok {
		return fail()
	}
	r.Type = RecType(t)
	var v64 uint64
	var v32 uint32
	if v64, ok = u64(); !ok {
		return fail()
	}
	r.Txn = int64(v64)
	if v64, ok = u64(); !ok {
		return fail()
	}
	r.PrevLSN = v64
	if v32, ok = u32(); !ok {
		return fail()
	}
	r.Page.Table = int32(v32)
	if v32, ok = u32(); !ok {
		return fail()
	}
	r.Page.PageNo = int32(v32)
	if v32, ok = u32(); !ok {
		return fail()
	}
	r.Slot = int32(v32)
	if v32, ok = u32(); !ok {
		return fail()
	}
	r.FieldOff = int32(v32)
	if v64, ok = u64(); !ok {
		return fail()
	}
	r.Before = int64(v64)
	if v64, ok = u64(); !ok {
		return fail()
	}
	r.After = int64(v64)
	if v32, ok = u32(); !ok {
		return fail()
	}
	r.SegIdx = int32(v32)
	var flag uint8
	if flag, ok = u8(); !ok {
		return fail()
	}
	r.NewSegment = flag != 0
	if v64, ok = u64(); !ok {
		return fail()
	}
	r.CommitTS = int64(v64)
	if v64, ok = u64(); !ok {
		return fail()
	}
	r.UndoNext = v64
	if v32, ok = u32(); !ok {
		return fail()
	}
	if off+int(v32) > len(b) {
		return fail()
	}
	if v32 > 0 {
		r.Image = append([]byte(nil), b[off:off+int(v32)]...)
		off += int(v32)
	}
	if v32, ok = u32(); !ok {
		return fail()
	}
	for i := uint32(0); i < v32; i++ {
		var dp DirtyPage
		var a, p uint32
		var l uint64
		if a, ok = u32(); !ok {
			return fail()
		}
		if p, ok = u32(); !ok {
			return fail()
		}
		if l, ok = u64(); !ok {
			return fail()
		}
		dp.Page = page.ID{Table: int32(a), PageNo: int32(p)}
		dp.RecLSN = l
		r.DirtyPages = append(r.DirtyPages, dp)
	}
	if v32, ok = u32(); !ok {
		return fail()
	}
	for i := uint32(0); i < v32; i++ {
		var tx TxnStatus
		var id uint64
		var st uint8
		var l uint64
		if id, ok = u64(); !ok {
			return fail()
		}
		if st, ok = u8(); !ok {
			return fail()
		}
		if l, ok = u64(); !ok {
			return fail()
		}
		tx.Txn = int64(id)
		tx.State = TxnState(st)
		tx.LastLSN = l
		r.ActiveTxns = append(r.ActiveTxns, tx)
	}
	return r, nil
}
