// Package comm is the TCP communication layer of §6.1.6: workers run
// multi-threaded servers listening for transaction requests; coordinators
// (and recovering sites) open client connections, one transaction per
// connection at a time, with connections recycled across transactions.
// Failure detection is the §5.5 mechanism actually used by the thesis
// implementation: "the detection of an abruptly closed TCP socket
// connection as a signal for failure".
package comm

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"harbor/internal/obs"
	"harbor/internal/wire"
)

// DefaultDialTimeout bounds connection establishment when the caller gives
// no explicit timeout.
const DefaultDialTimeout = 5 * time.Second

// Transport hooks. Every outbound connection (Dial, DialTimeout, pool
// dials, Ping, EvictWorker's crash message) goes through Dialer, and every
// Listen'ed listener is passed through WrapListener before it starts
// accepting. The defaults are plain TCP; the faultnet package installs
// fault-injecting implementations so that coordinator fan-out, worker
// consensus, recovery streaming, and join replay can all be exercised under
// partitions, delay, and message loss with zero call-site changes. Both
// hooks must be swapped only while no cluster traffic is in flight (they
// are read without locks).
var (
	Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
		nc, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		return nc, nil
	}
	WrapListener = func(ln net.Listener) net.Listener { return ln }
)

// Conn wraps one TCP connection with buffered framed-message IO. Each
// direction owns a scratch buffer (wire.Encoder / wire.Decoder) so the
// steady state sends and receives without per-message allocations.
type Conn struct {
	nc  net.Conn
	r   *bufio.Reader
	w   *bufio.Writer
	dec wire.Decoder // reads are single-goroutine per connection

	wmu sync.Mutex   // serialises writes (server pushes + responses)
	enc wire.Encoder // guarded by wmu

	callmu sync.Mutex // serialises request/response exchanges (Reserve)

	// reused is set by Pool.Get when the conn comes from the idle list
	// rather than a fresh dial; borrowers use it to decide whether a
	// transport failure on the first exchange means "site down" (fresh
	// conn) or possibly just "peer restarted since Put" (stale idle conn,
	// worth one retry on a fresh dial). Only meaningful between a Get and
	// the first exchange; written under the pool lock.
	reused bool
}

// NewConn wraps an established net.Conn.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, r: bufio.NewReaderSize(nc, 64<<10), w: bufio.NewWriterSize(nc, 64<<10)}
}

// Send writes and flushes one message.
func (c *Conn) Send(m *wire.Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.enc.WriteMsg(c.w, m); err != nil {
		return err
	}
	return c.w.Flush()
}

// SendNoFlush queues a message without flushing (tuple streaming).
func (c *Conn) SendNoFlush(m *wire.Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.WriteMsg(c.w, m)
}

// Flush flushes buffered writes.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.Flush()
}

// SendTimeout writes and flushes one message under a write deadline. A
// wedged peer whose socket buffer is full blocks a plain Send forever; the
// deadline converts that into ErrTimeout. The deadline pass leaves the
// connection's write stream in an unknown state, so callers must close the
// conn on ErrTimeout rather than reuse it.
func (c *Conn) SendTimeout(m *wire.Msg, d time.Duration) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.nc.SetWriteDeadline(time.Now().Add(d)); err != nil {
		return err
	}
	defer c.nc.SetWriteDeadline(time.Time{})
	err := c.enc.WriteMsg(c.w, m)
	if err == nil {
		err = c.w.Flush()
	}
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return ErrTimeout
		}
		return err
	}
	return nil
}

// Recv reads one message (blocking).
func (c *Conn) Recv() (*wire.Msg, error) {
	return c.dec.ReadMsg(c.r)
}

// RecvTimeout reads one message with a deadline; a timeout returns
// ErrTimeout and leaves the connection usable.
func (c *Conn) RecvTimeout(d time.Duration) (*wire.Msg, error) {
	if err := c.nc.SetReadDeadline(time.Now().Add(d)); err != nil {
		return nil, err
	}
	defer c.nc.SetReadDeadline(time.Time{})
	m, err := c.dec.ReadMsg(c.r)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return nil, ErrTimeout
		}
		return nil, err
	}
	return m, nil
}

// ErrTimeout is returned by RecvTimeout when the deadline passes.
var ErrTimeout = errors.New("comm: receive timed out")

// Reserve claims the connection for one request/response exchange. Most
// conns have a single owner (a pool checkout, a server handler) and never
// need a claim; when a conn is shared between goroutines — the
// coordinator's fan-out rounds and the §5.4.2 join replay both use a
// transaction's per-worker conns — each must hold the claim from its
// request Send until the matching response Recv, or two exchanges could
// interleave and swap responses.
func (c *Conn) Reserve() { c.callmu.Lock() }

// Release ends a Reserve claim.
func (c *Conn) Release() { c.callmu.Unlock() }

// Reused reports whether the connection came from a pool's idle list
// rather than a fresh dial (see the field comment).
func (c *Conn) Reused() bool { return c.reused }

// Close closes the connection.
func (c *Conn) Close() error { return c.nc.Close() }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() string { return c.nc.RemoteAddr().String() }

// Call sends a request and waits for a single response, converting a
// MsgErr response into a Go error. Callers that must distinguish logical
// errors from transport failures use CallRaw instead.
func (c *Conn) Call(m *wire.Msg) (*wire.Msg, error) {
	resp, err := c.CallRaw(m)
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return resp, nil
}

// CallRaw sends a request and waits for a single response. An error return
// always means the connection itself failed (the fail-stop signal); MsgErr
// responses are returned as messages.
func (c *Conn) CallRaw(m *wire.Msg) (*wire.Msg, error) {
	if err := c.Send(m); err != nil {
		return nil, err
	}
	return c.Recv()
}

// CallRawTimeout is CallRaw with a response deadline. A deadline pass
// returns ErrTimeout; callers treat it like a transport failure and close
// the connection (a late response would desynchronise the request stream).
func (c *Conn) CallRawTimeout(m *wire.Msg, d time.Duration) (*wire.Msg, error) {
	if err := c.Send(m); err != nil {
		return nil, err
	}
	return c.RecvTimeout(d)
}

// Dial connects to a site address with the default dial timeout.
func Dial(addr string) (*Conn, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout connects to a site address, bounding connection
// establishment, through the package Dialer hook.
func DialTimeout(addr string, timeout time.Duration) (*Conn, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	nc, err := Dialer(addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// Handler processes the messages of one server connection. The handler owns
// the connection until it returns; returning an error (or io.EOF from the
// peer) ends the connection.
type Handler interface {
	ServeConn(c *Conn)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(c *Conn)

// ServeConn calls the function.
func (f HandlerFunc) ServeConn(c *Conn) { f(c) }

// Server is a site's listening endpoint.
type Server struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[*Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Listen starts a server on addr ("127.0.0.1:0" for an ephemeral port).
func Listen(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ln = WrapListener(ln)
	s := &Server{ln: ln, handler: h, conns: map[*Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		c := NewConn(nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				c.Close()
			}()
			s.handler.ServeConn(c)
		}()
	}
}

// Close stops accepting and abruptly closes every live connection — the
// fail-stop crash signal peers detect (§5.5). It waits for handler
// goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// DefaultMaxIdle caps a pool's idle list unless SetMaxIdle overrides it.
// Beyond the cap, returned connections are closed instead of parked, so a
// burst of concurrent transactions cannot grow the idle set without bound.
const DefaultMaxIdle = 16

// PoolStats reports a pool's lifetime connection accounting.
type PoolStats struct {
	Dials    int64 // connections dialed because no idle one existed
	Reuses   int64 // Gets served from the idle list
	Discards int64 // connections closed by Put (over cap) or Discard
}

// Pool is a small client-connection pool per remote address; coordinators
// recycle connections for subsequent transactions (§6.1.6).
type Pool struct {
	addr string

	mu          sync.Mutex
	idle        []*Conn
	maxIdle     int
	dialTimeout time.Duration

	// Registry-backed counters (comm.dials, comm.reuses, comm.discards,
	// optionally labelled {site=N}); rebindable via Instrument. Stats() is a
	// compatibility shim over them.
	dials, reuses, discards *obs.Counter
}

// NewPool creates a pool for one address.
func NewPool(addr string) *Pool {
	p := &Pool{addr: addr, maxIdle: DefaultMaxIdle}
	p.Instrument(obs.NewRegistry(), "")
	return p
}

// Instrument rebinds the pool's counters to reg, labelled {site=<site>} when
// site is non-empty (a coordinator labels each worker's pool so the fan-out
// accounting stays per-replica). Call before concurrent use.
func (p *Pool) Instrument(reg *obs.Registry, site string) {
	var labels []string
	if site != "" {
		labels = []string{"site", site}
	}
	p.dials = reg.Counter(obs.Name("comm.dials", labels...))
	p.reuses = reg.Counter(obs.Name("comm.reuses", labels...))
	p.discards = reg.Counter(obs.Name("comm.discards", labels...))
}

// Addr returns the pool's target address.
func (p *Pool) Addr() string { return p.addr }

// SetDialTimeout bounds the pool's connection establishment (0 uses
// DefaultDialTimeout).
func (p *Pool) SetDialTimeout(d time.Duration) {
	p.mu.Lock()
	p.dialTimeout = d
	p.mu.Unlock()
}

// SetMaxIdle changes the idle-connection cap (n < 1 disables pooling).
func (p *Pool) SetMaxIdle(n int) {
	p.mu.Lock()
	p.maxIdle = n
	p.mu.Unlock()
}

// Stats returns the pool's connection accounting.
func (p *Pool) Stats() PoolStats {
	return PoolStats{Dials: p.dials.Load(), Reuses: p.reuses.Load(), Discards: p.discards.Load()}
}

// Get returns an idle connection (marked Reused) or dials a new one. A
// reused conn's peer may have restarted since Put — the §5.5 fail-stop
// signal then fires on the first exchange even though the site is live —
// so borrowers should treat a first-exchange transport error on a reused
// conn as "stale conn", retry once on Fresh, and only then conclude the
// site is down.
func (p *Pool) Get() (*Conn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		c.reused = true
		p.reuses.Inc()
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return p.Fresh()
}

// Fresh always dials a new connection, bypassing the idle list (the stale-
// conn retry path).
func (p *Pool) Fresh() (*Conn, error) {
	p.mu.Lock()
	p.dials.Inc()
	d := p.dialTimeout
	p.mu.Unlock()
	return DialTimeout(p.addr, d)
}

// Put returns a healthy connection for reuse; over the idle cap it is
// closed instead.
func (p *Pool) Put(c *Conn) {
	p.mu.Lock()
	if len(p.idle) >= p.maxIdle {
		p.discards.Inc()
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Discard closes a broken connection.
func (p *Pool) Discard(c *Conn) {
	p.mu.Lock()
	p.discards.Inc()
	p.mu.Unlock()
	c.Close()
}

// CloseAll drops every idle connection.
func (p *Pool) CloseAll() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// Ping checks liveness of a site. Both directions are bounded: a wedged
// peer that accepts but never drains its socket would otherwise block the
// write side forever.
func Ping(addr string, timeout time.Duration) bool {
	live, _ := PingReady(addr, timeout)
	return live
}

// PingReady is Ping plus the peer's readiness claim: ready reports the
// reply's FlagYes, which a worker sets only when it is not itself rejoining
// from a crash — i.e. it is a legitimate recovery source. Liveness checks
// use Ping and ignore readiness; recovery's buddy probe requires both.
func PingReady(addr string, timeout time.Duration) (live, ready bool) {
	live, ready, _ = PingObjects(addr, timeout)
	return live, ready
}

// PingObjects is PingReady plus the reply's per-object readiness list: one
// entry per replica object on the peer, carrying its recovery state
// (worker.ObjState code) and the historical horizon it can serve. A peer
// that is not site-ready may still list Ready objects — those completed
// their own catch-up and are legitimate recovery sources and read targets.
func PingObjects(addr string, timeout time.Duration) (live, ready bool, objs []wire.ObjReady) {
	c, err := DialTimeout(addr, timeout)
	if err != nil {
		return false, false, nil
	}
	defer c.Close()
	if err := c.SendTimeout(&wire.Msg{Type: wire.MsgPing}, timeout); err != nil {
		return false, false, nil
	}
	resp, err := c.RecvTimeout(timeout)
	live = err == nil && resp.Type == wire.MsgOK
	if !live {
		return false, false, nil
	}
	return true, resp.Flags&wire.FlagYes != 0, resp.Objs
}

// ErrCrashed is a sentinel used by servers simulating fail-stop.
var ErrCrashed = fmt.Errorf("comm: site crashed")
