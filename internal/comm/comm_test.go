package comm

import (
	"io"
	"sync"
	"testing"
	"time"

	"harbor/internal/wire"
)

// echoHandler responds OK to pings and echoes text otherwise.
func echoHandler(c *Conn) {
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		switch m.Type {
		case wire.MsgPing:
			if err := c.Send(&wire.Msg{Type: wire.MsgOK}); err != nil {
				return
			}
		default:
			if err := c.Send(&wire.Msg{Type: wire.MsgOK, Text: m.Text}); err != nil {
				return
			}
		}
	}
}

func startEcho(t *testing.T) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", HandlerFunc(echoHandler))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCallRoundTrip(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&wire.Msg{Type: wire.MsgScan, Text: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "hello" {
		t.Fatalf("echo returned %q", resp.Text)
	}
}

func TestPing(t *testing.T) {
	s := startEcho(t)
	if !Ping(s.Addr(), time.Second) {
		t.Fatal("ping failed against live server")
	}
	s.Close()
	if Ping(s.Addr(), 200*time.Millisecond) {
		t.Fatal("ping succeeded against closed server")
	}
}

func TestServerCloseDropsConnections(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(&wire.Msg{Type: wire.MsgPing}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// The abrupt close is the crash signal: the next read must error.
	if err := c.Send(&wire.Msg{Type: wire.MsgPing}); err == nil {
		if _, err := c.Recv(); err == nil {
			t.Fatal("connection survived server crash")
		}
	}
}

func TestRecvTimeout(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RecvTimeout(50 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
	// The connection remains usable after a timeout.
	resp, err := c.Call(&wire.Msg{Type: wire.MsgPing})
	if err != nil || resp.Type != wire.MsgOK {
		t.Fatalf("connection unusable after timeout: %v", err)
	}
}

func TestPoolRecyclesConnections(t *testing.T) {
	s := startEcho(t)
	p := NewPool(s.Addr())
	defer p.CloseAll()
	c1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(c1)
	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("pool did not recycle the idle connection")
	}
	p.Put(c2)
}

func TestConcurrentClients(t *testing.T) {
	s := startEcho(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				resp, err := c.Call(&wire.Msg{Type: wire.MsgScan, Text: "x"})
				if err != nil || resp.Text != "x" {
					t.Errorf("goroutine %d call %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTupleStreaming(t *testing.T) {
	// Server streams N tuples then a scan end.
	const n = 1000
	srv, err := Listen("127.0.0.1:0", HandlerFunc(func(c *Conn) {
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if m.Type != wire.MsgScan {
				return
			}
			for i := 0; i < n; i++ {
				if err := c.SendNoFlush(&wire.Msg{Type: wire.MsgTuple, Key: int64(i)}); err != nil {
					return
				}
			}
			if err := c.SendNoFlush(&wire.Msg{Type: wire.MsgScanEnd, Count: n}); err != nil {
				return
			}
			if err := c.Flush(); err != nil {
				return
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&wire.Msg{Type: wire.MsgScan}); err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		m, err := c.Recv()
		if err == io.EOF {
			t.Fatal("stream ended prematurely")
		}
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == wire.MsgScanEnd {
			if m.Count != n {
				t.Fatalf("scan end count %d", m.Count)
			}
			break
		}
		if m.Key != int64(count) {
			t.Fatalf("out of order: got %d want %d", m.Key, count)
		}
		count++
	}
	if count != n {
		t.Fatalf("received %d tuples", count)
	}
}
