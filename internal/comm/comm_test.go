package comm

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"harbor/internal/wire"
)

// echoHandler responds OK to pings and echoes text otherwise.
func echoHandler(c *Conn) {
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		switch m.Type {
		case wire.MsgPing:
			if err := c.Send(&wire.Msg{Type: wire.MsgOK}); err != nil {
				return
			}
		default:
			if err := c.Send(&wire.Msg{Type: wire.MsgOK, Text: m.Text}); err != nil {
				return
			}
		}
	}
}

func startEcho(t *testing.T) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", HandlerFunc(echoHandler))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCallRoundTrip(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&wire.Msg{Type: wire.MsgScan, Text: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "hello" {
		t.Fatalf("echo returned %q", resp.Text)
	}
}

func TestPing(t *testing.T) {
	s := startEcho(t)
	if !Ping(s.Addr(), time.Second) {
		t.Fatal("ping failed against live server")
	}
	s.Close()
	if Ping(s.Addr(), 200*time.Millisecond) {
		t.Fatal("ping succeeded against closed server")
	}
}

func TestServerCloseDropsConnections(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(&wire.Msg{Type: wire.MsgPing}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// The abrupt close is the crash signal: the next read must error.
	if err := c.Send(&wire.Msg{Type: wire.MsgPing}); err == nil {
		if _, err := c.Recv(); err == nil {
			t.Fatal("connection survived server crash")
		}
	}
}

func TestRecvTimeout(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RecvTimeout(50 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
	// The connection remains usable after a timeout.
	resp, err := c.Call(&wire.Msg{Type: wire.MsgPing})
	if err != nil || resp.Type != wire.MsgOK {
		t.Fatalf("connection unusable after timeout: %v", err)
	}
}

func TestPoolRecyclesConnections(t *testing.T) {
	s := startEcho(t)
	p := NewPool(s.Addr())
	defer p.CloseAll()
	c1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(c1)
	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("pool did not recycle the idle connection")
	}
	p.Put(c2)
}

func TestPoolCapsIdleConnections(t *testing.T) {
	s := startEcho(t)
	p := NewPool(s.Addr())
	defer p.CloseAll()
	p.SetMaxIdle(2)
	// Check out 5 connections concurrently, then return them all: only 2
	// may be parked, the rest must be closed and counted as discards.
	var conns []*Conn
	for i := 0; i < 5; i++ {
		c, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	for _, c := range conns {
		p.Put(c)
	}
	st := p.Stats()
	if st.Dials != 5 {
		t.Fatalf("dials = %d, want 5", st.Dials)
	}
	if st.Discards != 3 {
		t.Fatalf("discards = %d, want 3 (idle cap 2)", st.Discards)
	}
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	if idle != 2 {
		t.Fatalf("idle list holds %d conns, want 2", idle)
	}
}

func TestPoolStatsCountReuse(t *testing.T) {
	s := startEcho(t)
	p := NewPool(s.Addr())
	defer p.CloseAll()
	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(c)
	for i := 0; i < 3; i++ {
		c, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		p.Put(c)
	}
	st := p.Stats()
	if st.Dials != 1 || st.Reuses != 3 {
		t.Fatalf("stats = %+v, want 1 dial / 3 reuses", st)
	}
	bad, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Discard(bad)
	if st := p.Stats(); st.Discards != 1 {
		t.Fatalf("discards = %d, want 1", st.Discards)
	}
}

func TestCallRawTimeout(t *testing.T) {
	// A server that never answers scans: CallRawTimeout must return
	// ErrTimeout instead of blocking forever.
	srv, err := Listen("127.0.0.1:0", HandlerFunc(func(c *Conn) {
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.CallRawTimeout(&wire.Msg{Type: wire.MsgPing}, 100*time.Millisecond); err != ErrTimeout {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := startEcho(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				resp, err := c.Call(&wire.Msg{Type: wire.MsgScan, Text: "x"})
				if err != nil || resp.Text != "x" {
					t.Errorf("goroutine %d call %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTupleStreaming(t *testing.T) {
	// Server streams N tuples then a scan end.
	const n = 1000
	srv, err := Listen("127.0.0.1:0", HandlerFunc(func(c *Conn) {
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if m.Type != wire.MsgScan {
				return
			}
			for i := 0; i < n; i++ {
				if err := c.SendNoFlush(&wire.Msg{Type: wire.MsgTuple, Key: int64(i)}); err != nil {
					return
				}
			}
			if err := c.SendNoFlush(&wire.Msg{Type: wire.MsgScanEnd, Count: n}); err != nil {
				return
			}
			if err := c.Flush(); err != nil {
				return
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&wire.Msg{Type: wire.MsgScan}); err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		m, err := c.Recv()
		if err == io.EOF {
			t.Fatal("stream ended prematurely")
		}
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == wire.MsgScanEnd {
			if m.Count != n {
				t.Fatalf("scan end count %d", m.Count)
			}
			break
		}
		if m.Key != int64(count) {
			t.Fatalf("out of order: got %d want %d", m.Key, count)
		}
		count++
	}
	if count != n {
		t.Fatalf("received %d tuples", count)
	}
}

// TestReserveSerializesSharedCalls drives many request/response exchanges
// from concurrent goroutines over ONE shared conn, each holding the
// Reserve claim from send to receive (the coordinator's fan-out rounds and
// the join replay share per-transaction conns this way). Every goroutine
// must read the response to its own request, never a sibling's.
func TestReserveSerializesSharedCalls(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const goroutines = 8
	const calls = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				want := fmt.Sprintf("g%d-%d", g, i)
				c.Reserve()
				resp, err := c.Call(&wire.Msg{Type: wire.MsgScan, Text: want})
				c.Release()
				if err != nil {
					errs <- err
					return
				}
				if resp.Text != want {
					errs <- fmt.Errorf("exchange swapped: sent %q, got %q", want, resp.Text)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
