package version

import (
	"harbor/internal/page"
	"harbor/internal/storage"
	"harbor/internal/wal"
)

// PageStore adapts a storage.Manager (plus an optional WAL) to the buffer
// pool's Store interface, enforcing both write-ordering rules:
//
//  1. the WAL rule — the log must be durable up to a dirty page's pageLSN
//     before the page is written (ARIES mode only), and
//  2. the stats-ahead rule — a table's segment-directory meta must be
//     durable before any of its data pages is written, so that segment
//     timestamp bounds on disk are never staler than page contents
//     (required for HARBOR Phase 1 pruning to be sound).
type PageStore struct {
	Mgr *storage.Manager
	Log *wal.Manager // nil in HARBOR mode
}

var _ interface {
	ReadPage(pid page.ID) ([]byte, error)
	WritePage(pid page.ID, data []byte) error
	TupleWidth(table int32) (int, error)
	BeforeFlush(pid page.ID, pageLSN page.LSN) error
} = (*PageStore)(nil)

// ReadPage reads a page image from the table's heap file.
func (ps *PageStore) ReadPage(pid page.ID) ([]byte, error) {
	tb, err := ps.Mgr.Get(pid.Table)
	if err != nil {
		return nil, err
	}
	return tb.Heap.ReadPageData(pid.PageNo)
}

// WritePage writes a page image (unsynced; checkpoint syncs explicitly).
func (ps *PageStore) WritePage(pid page.ID, data []byte) error {
	tb, err := ps.Mgr.Get(pid.Table)
	if err != nil {
		return err
	}
	return tb.Heap.WritePageData(pid.PageNo, data)
}

// TupleWidth returns the table's fixed slot width.
func (ps *PageStore) TupleWidth(table int32) (int, error) {
	tb, err := ps.Mgr.Get(table)
	if err != nil {
		return 0, err
	}
	return tb.Heap.TupleWidth(), nil
}

// BeforeFlush enforces the WAL and stats-ahead rules.
func (ps *PageStore) BeforeFlush(pid page.ID, pageLSN page.LSN) error {
	if ps.Log != nil && pageLSN > 0 {
		if err := ps.Log.Force(pageLSN, false); err != nil {
			return err
		}
	}
	tb, err := ps.Mgr.Get(pid.Table)
	if err != nil {
		return err
	}
	return tb.Heap.EnsureMetaDurable()
}
