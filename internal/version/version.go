// Package version is the versioning and timestamp management layer of
// §6.1.4: a wrapper around the buffer pool that implements the timestamped
// data model of §3.3 and the in-memory insertion/deletion lists of §4.1.
//
// Inserts write tuples with the special Uncommitted insertion timestamp and
// remember the record id in the transaction's insertion list; deletes only
// remember the record id in the deletion list ("without yet engendering any
// actual page modifications", §6.1.4) because the deletion timestamp is
// unknown until commit; updates are a delete of the old version plus an
// insert of the new one. At commit the layer assigns the commit time to
// every listed tuple; at abort it physically removes inserted tuples.
//
// When a WAL is attached (ARIES / logging commit protocols) every page
// modification is logged first, including the commit-time timestamp stamping
// (§6.1.7), and rollback walks the undo chain writing CLRs. When no WAL is
// attached (HARBOR mode) rollback uses the insertion list alone — no undo
// information is ever needed because versioned operations never overwrite
// data (§4.1).
package version

import (
	"fmt"
	"sync"

	"harbor/internal/buffer"
	"harbor/internal/lockmgr"
	"harbor/internal/page"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/wal"
)

// TxnID aliases the lock manager's transaction id.
type TxnID = lockmgr.TxnID

// opRec remembers one listed tuple: where it lives, which segment it is in,
// and its key (for index maintenance on rollback).
type opRec struct {
	rid page.RecordID
	seg int32
	key int64
}

// Txn is the per-transaction in-memory state.
type Txn struct {
	ID      TxnID
	LastLSN page.LSN
	inserts []opRec
	deletes []opRec
	// undoNext is transient state used while an ARIES-style rollback walks
	// the undo chain; it becomes each CLR's UndoNext pointer.
	undoNext page.LSN
}

// NumPending returns (inserts, deletes) listed so far (test instrumentation).
func (t *Txn) NumPending() (int, int) { return len(t.inserts), len(t.deletes) }

// Store is one site's versioning layer over its buffer pool, storage
// manager, lock manager, and (optionally) WAL.
type Store struct {
	Mgr   *storage.Manager
	Pool  *buffer.Pool
	Locks *lockmgr.Manager
	Log   *wal.Manager // nil in HARBOR mode

	mu   sync.Mutex
	txns map[TxnID]*Txn
	// freePages tracks pages with free slots per table (from rollbacks and
	// recovery's physical deletes), checked before allocating fresh pages.
	freePages map[int32]map[int32]bool
}

// NewStore wires the versioning layer. log may be nil.
func NewStore(mgr *storage.Manager, pool *buffer.Pool, locks *lockmgr.Manager, log *wal.Manager) *Store {
	return &Store{
		Mgr:       mgr,
		Pool:      pool,
		Locks:     locks,
		Log:       log,
		txns:      map[TxnID]*Txn{},
		freePages: map[int32]map[int32]bool{},
	}
}

// Begin registers a transaction. Idempotent.
func (s *Store) Begin(tid TxnID) *Txn {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.txns[tid]; ok {
		return t
	}
	t := &Txn{ID: tid}
	s.txns[tid] = t
	return t
}

// Get returns the transaction state, or nil.
func (s *Store) Get(tid TxnID) *Txn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txns[tid]
}

// ActiveTxns lists the ids of transactions with registered state.
func (s *Store) ActiveTxns() []TxnID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TxnID, 0, len(s.txns))
	for id := range s.txns {
		out = append(out, id)
	}
	return out
}

// MarkFreeSlot records that a page has at least one free slot.
func (s *Store) MarkFreeSlot(table, pageNo int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.freePages[table]
	if m == nil {
		m = map[int32]bool{}
		s.freePages[table] = m
	}
	m[pageNo] = true
}

func (s *Store) takeFreeSlotPage(table int32, lastSeg int32, heap *storage.HeapFile) int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.freePages[table]
	for p := range m {
		if heap.SegmentFor(p) == lastSeg {
			return p
		}
		// Stale or non-last-segment entry: drop it so the map stays small
		// (normal inserts must target the last segment, §4.2).
		delete(m, p)
	}
	return -1
}

func (s *Store) clearFreeSlot(table, pageNo int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.freePages[table]; m != nil {
		delete(m, pageNo)
	}
}

// ClearFreeSlot withdraws a page from the free-slot candidates; the purge
// path calls it when it releases an emptied page back to the heap.
func (s *Store) ClearFreeSlot(table, pageNo int32) { s.clearFreeSlot(table, pageNo) }

// InsertTuple writes t (user fields only matter; timestamps are overridden
// to Uncommitted/NotDeleted) into the table's last segment and lists it in
// tid's insertion list. The page is X-locked for the transaction.
func (s *Store) InsertTuple(tid TxnID, table int32, t tuple.Tuple) (page.RecordID, error) {
	tb, err := s.Mgr.Get(table)
	if err != nil {
		return page.RecordID{}, err
	}
	txn := s.Begin(tid)
	heap := tb.Heap
	desc := heap.Desc()
	t = t.Clone()
	t.SetInsTS(tuple.Uncommitted)
	t.SetDelTS(tuple.NotDeleted)
	enc := t.Encode(desc)

	for attempt := 0; attempt < 6; attempt++ {
		pno, seg, created, err := s.pickInsertPage(heap, table)
		if err != nil {
			return page.RecordID{}, err
		}
		pid := page.ID{Table: table, PageNo: pno}
		// Candidate pages that another transaction holds exclusively are
		// skipped rather than waited on: the §6.1.3 shared-scan/upgrade
		// dance exists to find *free* slots, and a page X-locked by a
		// concurrent inserter will not free up until that txn finishes.
		// A freshly allocated page is acquired with normal blocking
		// semantics (it may still have to wait behind a recovering site's
		// table read lock, which is exactly the §5.4 behaviour).
		if !created {
			got, lockErr := s.Locks.TryAcquire(tid, lockmgr.PageTarget(table, pno), lockmgr.X)
			if lockErr != nil {
				return page.RecordID{}, lockErr
			}
			if !got {
				s.clearFreeSlot(table, pno)
				heap.SetInsertHint(-1)
				continue
			}
		}
		f, err := s.Pool.GetPage(tid, pid, buffer.WritePerm)
		if err != nil {
			return page.RecordID{}, err
		}
		f.Latch.Lock()
		slot, insErr := f.Page.Insert(enc)
		var lsn page.LSN
		if insErr == nil {
			if s.Log != nil {
				if created {
					s.Log.Append(&wal.Record{Type: wal.RecAlloc, Page: pid, SegIdx: seg})
				}
				lsn = s.Log.Append(&wal.Record{
					Type: wal.RecInsert, Txn: int64(tid), PrevLSN: txn.LastLSN,
					Page: pid, Slot: int32(slot), Image: enc, SegIdx: seg,
				})
				f.Page.SetLSN(lsn)
				txn.LastLSN = lsn
			}
			if f.Page.FirstFree() >= 0 {
				heap.SetInsertHint(pno)
			} else {
				s.clearFreeSlot(table, pno)
			}
		}
		f.Latch.Unlock()
		if insErr == page.ErrPageFull {
			s.Pool.Unpin(f, false, 0)
			s.clearFreeSlot(table, pno)
			heap.SetInsertHint(-1)
			continue
		}
		if insErr != nil {
			s.Pool.Unpin(f, false, 0)
			return page.RecordID{}, insErr
		}
		s.Pool.Unpin(f, true, lsn)
		rid := page.RecordID{Page: pid, Slot: slot}
		heap.OnUncommittedInsert(seg)
		key := t.Key(desc)
		tb.Index.Add(key, rid)
		s.mu.Lock()
		txn.inserts = append(txn.inserts, opRec{rid: rid, seg: seg, key: key})
		s.mu.Unlock()
		return rid, nil
	}
	return page.RecordID{}, fmt.Errorf("version: table %d: no insertable page after retries", table)
}

// pickInsertPage chooses the target page for an insert: the heap's insert
// hint, then any known free-slot page in the last segment, then a fresh
// allocation.
func (s *Store) pickInsertPage(heap *storage.HeapFile, table int32) (pno, seg int32, created bool, err error) {
	if hint := heap.InsertHint(); hint >= 0 {
		return hint, heap.SegmentFor(hint), false, nil
	}
	last := heap.LastSegment()
	if last >= 0 {
		if p := s.takeFreeSlotPage(table, last, heap); p >= 0 {
			return p, last, false, nil
		}
	}
	pno, seg, err = heap.AllocPage()
	if err != nil {
		return 0, 0, false, err
	}
	return pno, seg, true, nil
}

// DeleteTuple lists the tuple at rid in tid's deletion list, taking an
// exclusive page lock so the deletion timestamp can be stamped at commit.
// Per §6.1.4 no page bytes change yet. Returns the tuple's key.
func (s *Store) DeleteTuple(tid TxnID, table int32, rid page.RecordID) (int64, error) {
	tb, err := s.Mgr.Get(table)
	if err != nil {
		return 0, err
	}
	txn := s.Begin(tid)
	f, err := s.Pool.GetPage(tid, rid.Page, buffer.WritePerm)
	if err != nil {
		return 0, err
	}
	f.Latch.RLock()
	var key int64
	var delTS int64
	if !f.Page.Used(rid.Slot) {
		f.Latch.RUnlock()
		s.Pool.Unpin(f, false, 0)
		return 0, fmt.Errorf("version: delete of free slot %v", rid)
	}
	desc := tb.Heap.Desc()
	key, err = f.Page.ReadInt64At(rid.Slot, desc.Offset(desc.Key))
	if err == nil {
		delTS, err = f.Page.ReadInt64At(rid.Slot, desc.Offset(tuple.FieldDelTS))
	}
	f.Latch.RUnlock()
	s.Pool.Unpin(f, false, 0)
	if err != nil {
		return 0, err
	}
	if delTS != tuple.NotDeleted {
		return 0, fmt.Errorf("version: tuple %v already deleted at %d", rid, delTS)
	}
	seg := tb.Heap.SegmentFor(rid.Page.PageNo)
	if s.Log != nil {
		// Log the intent (no page change yet) so that a prepared
		// transaction's deletion list survives a crash and the in-doubt
		// commit can still be completed by stamping at recovery.
		lsn := s.Log.Append(&wal.Record{
			Type: wal.RecDeleteIntent, Txn: int64(tid), PrevLSN: txn.LastLSN,
			Page: rid.Page, Slot: int32(rid.Slot), SegIdx: seg,
		})
		txn.LastLSN = lsn
	}
	s.mu.Lock()
	txn.deletes = append(txn.deletes, opRec{rid: rid, seg: seg, key: key})
	s.mu.Unlock()
	return key, nil
}

// UpdateTuple implements §3.3's update semantics: a deletion of the old
// version plus an insertion of the new one (which must carry the same key).
func (s *Store) UpdateTuple(tid TxnID, table int32, rid page.RecordID, newTuple tuple.Tuple) (page.RecordID, error) {
	tb, err := s.Mgr.Get(table)
	if err != nil {
		return page.RecordID{}, err
	}
	key, err := s.DeleteTuple(tid, table, rid)
	if err != nil {
		return page.RecordID{}, err
	}
	if got := newTuple.Key(tb.Heap.Desc()); got != key {
		return page.RecordID{}, fmt.Errorf("version: update changes key %d → %d", key, got)
	}
	return s.InsertTuple(tid, table, newTuple)
}

// Prepare logs (and optionally forces) a PREPARE record. With no WAL this
// is a no-op: an optimized-protocol worker "simply checks any consistency
// constraints and votes" (§4.3.2).
func (s *Store) Prepare(tid TxnID, force bool) error {
	if s.Log == nil {
		return nil
	}
	txn := s.Begin(tid)
	lsn := s.Log.Append(&wal.Record{Type: wal.RecPrepare, Txn: int64(tid), PrevLSN: txn.LastLSN})
	txn.LastLSN = lsn
	if force {
		return s.Log.Force(lsn, true)
	}
	return nil
}

// PrepareToCommit logs (and optionally forces) the canonical-3PC
// prepared-to-commit record, carrying the commit time from the
// PREPARE-TO-COMMIT message so that restart can complete the commit without
// the coordinator (§4.3.3).
func (s *Store) PrepareToCommit(tid TxnID, ts tuple.Timestamp, force bool) error {
	if s.Log == nil {
		return nil
	}
	txn := s.Begin(tid)
	lsn := s.Log.Append(&wal.Record{Type: wal.RecPrepareToCommit, Txn: int64(tid), PrevLSN: txn.LastLSN, CommitTS: ts})
	txn.LastLSN = lsn
	if force {
		return s.Log.Force(lsn, true)
	}
	return nil
}

// Commit stamps the commit time onto every tuple in the transaction's
// insertion and deletion lists (§6.1.4), optionally logs a COMMIT record
// (forced or not per the commit protocol in use), releases the
// transaction's locks, and discards its in-memory state.
func (s *Store) Commit(tid TxnID, ts tuple.Timestamp, logCommit, forceCommit bool) error {
	s.mu.Lock()
	txn := s.txns[tid]
	s.mu.Unlock()
	if txn == nil {
		// Read-only or unknown transaction: just release locks.
		s.Locks.ReleaseAll(tid)
		return nil
	}
	desc := func(table int32) (*storage.Table, error) { return s.Mgr.Get(table) }

	for _, op := range txn.inserts {
		tb, err := desc(op.rid.Page.Table)
		if err != nil {
			return err
		}
		off := tb.Heap.Desc().Offset(tuple.FieldInsTS)
		if err := s.stampField(txn, op.rid, off, tuple.Uncommitted, ts); err != nil {
			return err
		}
		tb.Heap.OnCommitStamp(op.seg, ts, 0)
		tb.Heap.OnUncommittedResolved(op.seg)
	}
	for _, op := range txn.deletes {
		tb, err := desc(op.rid.Page.Table)
		if err != nil {
			return err
		}
		off := tb.Heap.Desc().Offset(tuple.FieldDelTS)
		if err := s.stampField(txn, op.rid, off, tuple.NotDeleted, ts); err != nil {
			return err
		}
		tb.Heap.OnCommitStamp(op.seg, 0, ts)
	}
	if s.Log != nil && logCommit {
		lsn := s.Log.Append(&wal.Record{Type: wal.RecCommit, Txn: int64(tid), PrevLSN: txn.LastLSN, CommitTS: ts})
		txn.LastLSN = lsn
		if forceCommit {
			if err := s.Log.Force(lsn, true); err != nil {
				return err
			}
		}
	}
	if s.Pool.Policy().Force() {
		pids := map[page.ID]bool{}
		for _, op := range txn.inserts {
			pids[op.rid.Page] = true
		}
		for _, op := range txn.deletes {
			pids[op.rid.Page] = true
		}
		for pid := range pids {
			if err := s.Pool.FlushPage(pid); err != nil {
				return err
			}
		}
	}
	// Pages this transaction inserted into become placement candidates
	// again the moment its locks release. The insert hint is one global
	// slot that concurrent streams clobber, and an X-locked candidate is
	// skipped AND dropped from the free-page map — so without re-marking
	// here, a page probed once mid-transaction was forgotten forever and
	// every subsequent collision allocated a fresh page: one near-empty,
	// never-reused page per single-insert transaction.
	marked := map[page.ID]bool{}
	for _, op := range txn.inserts {
		if marked[op.rid.Page] {
			continue
		}
		marked[op.rid.Page] = true
		if f, err := s.Pool.GetPageNoLock(op.rid.Page); err == nil {
			f.Latch.RLock()
			free := f.Page.FirstFree() >= 0
			f.Latch.RUnlock()
			s.Pool.Unpin(f, false, 0)
			if free {
				s.MarkFreeSlot(op.rid.Page.Table, op.rid.Page.PageNo)
			}
		}
	}
	s.Locks.ReleaseAll(tid)
	s.mu.Lock()
	delete(s.txns, tid)
	s.mu.Unlock()
	return nil
}

// stampField writes an 8-byte field in place, logging first when a WAL is
// attached.
func (s *Store) stampField(txn *Txn, rid page.RecordID, off int, before, after int64) error {
	f, err := s.Pool.GetPageNoLock(rid.Page)
	if err != nil {
		return err
	}
	f.Latch.Lock()
	var lsn page.LSN
	if s.Log != nil {
		lsn = s.Log.Append(&wal.Record{
			Type: wal.RecSetField, Txn: int64(txn.ID), PrevLSN: txn.LastLSN,
			Page: rid.Page, Slot: int32(rid.Slot), FieldOff: int32(off),
			Before: before, After: after,
		})
		f.Page.SetLSN(lsn)
		txn.LastLSN = lsn
	}
	err = f.Page.WriteInt64At(rid.Slot, off, after)
	f.Latch.Unlock()
	s.Pool.Unpin(f, true, lsn)
	return err
}

// Abort rolls back the transaction: physically removing inserted tuples
// (HARBOR mode, driven by the insertion list) or undoing the log chain with
// CLRs (ARIES mode), then logging ABORT, releasing locks, and discarding
// in-memory state.
func (s *Store) Abort(tid TxnID) error {
	s.mu.Lock()
	txn := s.txns[tid]
	s.mu.Unlock()
	if txn == nil {
		s.Locks.ReleaseAll(tid)
		return nil
	}
	var err error
	if s.Log != nil {
		err = s.undoChain(txn)
		if err == nil {
			lsn := s.Log.Append(&wal.Record{Type: wal.RecAbort, Txn: int64(tid), PrevLSN: txn.LastLSN})
			txn.LastLSN = lsn
		}
	} else {
		err = s.rollbackFromLists(txn)
	}
	s.Locks.ReleaseAll(tid)
	s.mu.Lock()
	delete(s.txns, tid)
	s.mu.Unlock()
	return err
}

// rollbackFromLists is the logless rollback of §4.1: remove newly inserted
// tuples; nothing to undo for deletes because deletion timestamps were
// never assigned.
func (s *Store) rollbackFromLists(txn *Txn) error {
	for i := len(txn.inserts) - 1; i >= 0; i-- {
		op := txn.inserts[i]
		if err := s.physicalDelete(txn, op.rid, op.seg, op.key, false); err != nil {
			return err
		}
	}
	return nil
}

// physicalDelete frees a slot, maintains the index and free-page map, and
// (when logged) writes the given CLR-or-delete record.
func (s *Store) physicalDelete(txn *Txn, rid page.RecordID, seg int32, key int64, logged bool) error {
	tb, err := s.Mgr.Get(rid.Page.Table)
	if err != nil {
		return err
	}
	f, err := s.Pool.GetPageNoLock(rid.Page)
	if err != nil {
		return err
	}
	f.Latch.Lock()
	var lsn page.LSN
	if logged && s.Log != nil {
		// CLR: redo-only physical delete; undo continues at the record
		// before the insert being compensated. FieldOff = -1 marks a
		// slot-delete CLR (as opposed to a field-restore CLR).
		lsn = s.Log.Append(&wal.Record{
			Type: wal.RecCLR, Txn: int64(txn.ID), PrevLSN: txn.LastLSN,
			Page: rid.Page, Slot: int32(rid.Slot), FieldOff: -1, UndoNext: txn.undoNext,
		})
		f.Page.SetLSN(lsn)
		txn.LastLSN = lsn
	}
	delErr := f.Page.Delete(rid.Slot)
	f.Latch.Unlock()
	s.Pool.Unpin(f, true, lsn)
	if delErr != nil {
		return delErr
	}
	tb.Index.Remove(key, rid)
	tb.Heap.OnUncommittedResolved(seg)
	s.MarkFreeSlot(rid.Page.Table, rid.Page.PageNo)
	return nil
}

// undoChain is the ARIES-style rollback: walk the PrevLSN chain from the
// transaction's last record, compensating each undoable record.
func (s *Store) undoChain(txn *Txn) error {
	lsn := txn.LastLSN
	for lsn != 0 {
		rec, err := s.Log.ReadAt(lsn)
		if err != nil {
			return err
		}
		switch rec.Type {
		case wal.RecInsert:
			txn.undoNext = rec.PrevLSN
			// Key for index maintenance comes from the logged image.
			tb, err := s.Mgr.Get(rec.Page.Table)
			if err != nil {
				return err
			}
			desc := tb.Heap.Desc()
			t, err := tuple.Decode(desc, rec.Image)
			if err != nil {
				return err
			}
			if err := s.physicalDelete(txn, page.RecordID{Page: rec.Page, Slot: int(rec.Slot)}, rec.SegIdx, t.Key(desc), true); err != nil {
				return err
			}
			lsn = rec.PrevLSN
		case wal.RecSetField:
			txn.undoNext = rec.PrevLSN
			if err := s.compensateSetField(txn, rec); err != nil {
				return err
			}
			lsn = rec.PrevLSN
		case wal.RecCLR:
			lsn = rec.UndoNext
		default:
			lsn = rec.PrevLSN
		}
	}
	return nil
}

func (s *Store) compensateSetField(txn *Txn, rec *wal.Record) error {
	f, err := s.Pool.GetPageNoLock(rec.Page)
	if err != nil {
		return err
	}
	f.Latch.Lock()
	lsn := s.Log.Append(&wal.Record{
		Type: wal.RecCLR, Txn: int64(txn.ID), PrevLSN: txn.LastLSN,
		Page: rec.Page, Slot: rec.Slot, FieldOff: rec.FieldOff,
		After: rec.Before, UndoNext: rec.PrevLSN,
	})
	f.Page.SetLSN(lsn)
	txn.LastLSN = lsn
	err = f.Page.WriteInt64At(int(rec.Slot), int(rec.FieldOff), rec.Before)
	f.Latch.Unlock()
	s.Pool.Unpin(f, true, lsn)
	return err
}
