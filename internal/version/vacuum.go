package version

import (
	"harbor/internal/page"
	"harbor/internal/tuple"
)

// VacuumBefore physically removes every tuple version that was deleted at
// or before horizon, implementing §3.3's configurable history: "a user can
// configure the amount of history maintained by the system by running a
// background process to remove all tuples deleted before a certain point
// in time". Historical queries as of times ≥ horizon are unaffected;
// earlier times may no longer see the purged versions.
//
// The caller picks a horizon no later than the oldest time it still wants
// to travel to — typically `HWM - retention`. Vacuuming takes no
// transactional locks (purged versions are invisible to every current read
// and to every allowed historical read); page latches protect physical
// consistency.
//
// Returns the number of versions removed.
func (s *Store) VacuumBefore(table int32, horizon tuple.Timestamp) (int, error) {
	tb, err := s.Mgr.Get(table)
	if err != nil {
		return 0, err
	}
	heap := tb.Heap
	desc := heap.Desc()
	delOff := desc.Offset(tuple.FieldDelTS)
	keyOff := desc.Offset(desc.Key)
	removed := 0
	// Only segments that ever saw a deletion can hold purgeable versions;
	// prune with the Tmax-deletion bound (del > 0 ⟺ TmaxDel > 0).
	zero := tuple.Timestamp(0)
	for _, si := range heap.SegmentPlan(nil, nil, &zero, false) {
		for _, pno := range heap.SegmentPages(si) {
			pid := page.ID{Table: table, PageNo: pno}
			f, err := s.Pool.GetPageNoLock(pid)
			if err != nil {
				return removed, err
			}
			f.Latch.Lock()
			dirty := false
			for slot := 0; slot < f.Page.NumSlots(); slot++ {
				if !f.Page.Used(slot) {
					continue
				}
				del, err2 := f.Page.ReadInt64At(slot, delOff)
				if err2 != nil {
					err = err2
					break
				}
				if del == tuple.NotDeleted || del > horizon {
					continue
				}
				key, err2 := f.Page.ReadInt64At(slot, keyOff)
				if err2 != nil {
					err = err2
					break
				}
				if err2 := f.Page.Delete(slot); err2 != nil {
					err = err2
					break
				}
				tb.Index.Remove(key, page.RecordID{Page: pid, Slot: slot})
				s.MarkFreeSlot(table, pno)
				removed++
				dirty = true
			}
			f.Latch.Unlock()
			s.Pool.Unpin(f, dirty, 0)
			if err != nil {
				return removed, err
			}
		}
	}
	return removed, nil
}

// VacuumAll runs VacuumBefore on every table of the store.
func (s *Store) VacuumAll(horizon tuple.Timestamp) (int, error) {
	total := 0
	for _, id := range s.Mgr.IDs() {
		n, err := s.VacuumBefore(id, horizon)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
