package version

import (
	"testing"
	"time"

	"harbor/internal/buffer"
	"harbor/internal/lockmgr"
	"harbor/internal/page"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/wal"
)

func testDesc() *tuple.Desc {
	return tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "v", Type: tuple.Int32},
	)
}

// newSite builds a full single-site stack; withLog selects ARIES mode.
func newSite(t *testing.T, withLog bool) (*Store, *storage.Table) {
	t.Helper()
	dir := t.TempDir()
	mgr, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	var log *wal.Manager
	if withLog {
		log, err = wal.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { log.Close() })
	}
	locks := lockmgr.New(500 * time.Millisecond)
	pool := buffer.New(&PageStore{Mgr: mgr, Log: log}, locks, 64, buffer.StealNoForce)
	st := NewStore(mgr, pool, locks, log)
	tb, err := mgr.Create(1, testDesc(), 4)
	if err != nil {
		t.Fatal(err)
	}
	return st, tb
}

func mk(d *tuple.Desc, id, v int64) tuple.Tuple {
	return tuple.MustMake(d, tuple.VInt(id), tuple.VInt(v))
}

// readTuple fetches a tuple via the pool.
func readTuple(t *testing.T, st *Store, rid page.RecordID) tuple.Tuple {
	t.Helper()
	tb, err := st.Mgr.Get(rid.Page.Table)
	if err != nil {
		t.Fatal(err)
	}
	f, err := st.Pool.GetPageNoLock(rid.Page)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Pool.Unpin(f, false, 0)
	f.Latch.RLock()
	defer f.Latch.RUnlock()
	if !f.Page.Used(rid.Slot) {
		t.Fatalf("slot %v not in use", rid)
	}
	raw, err := f.Page.Slot(rid.Slot)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := tuple.Decode(tb.Heap.Desc(), raw)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func slotUsed(t *testing.T, st *Store, rid page.RecordID) bool {
	t.Helper()
	f, err := st.Pool.GetPageNoLock(rid.Page)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Pool.Unpin(f, false, 0)
	f.Latch.RLock()
	defer f.Latch.RUnlock()
	return f.Page.Used(rid.Slot)
}

func TestInsertCommitStampsTimestamps(t *testing.T) {
	for _, withLog := range []bool{false, true} {
		st, tb := newSite(t, withLog)
		rid, err := st.InsertTuple(100, 1, mk(tb.Heap.Desc(), 7, 42))
		if err != nil {
			t.Fatal(err)
		}
		got := readTuple(t, st, rid)
		if got.InsTS() != tuple.Uncommitted || got.DelTS() != tuple.NotDeleted {
			t.Fatalf("withLog=%v: pre-commit timestamps %d/%d", withLog, got.InsTS(), got.DelTS())
		}
		if tb.Heap.MinUncommittedSeg() != 0 {
			t.Fatalf("withLog=%v: MinUncommittedSeg = %d", withLog, tb.Heap.MinUncommittedSeg())
		}
		if err := st.Commit(100, 55, withLog, withLog); err != nil {
			t.Fatal(err)
		}
		got = readTuple(t, st, rid)
		if got.InsTS() != 55 || got.DelTS() != tuple.NotDeleted {
			t.Fatalf("withLog=%v: post-commit timestamps %d/%d", withLog, got.InsTS(), got.DelTS())
		}
		segs := tb.Heap.Segments()
		if segs[0].TminIns != 55 || segs[0].TmaxIns != 55 {
			t.Fatalf("withLog=%v: segment stats %+v", withLog, segs[0])
		}
		if tb.Heap.MinUncommittedSeg() != -1 {
			t.Fatalf("withLog=%v: uncommitted bound not cleared", withLog)
		}
		if len(tb.Index.Lookup(7)) != 1 {
			t.Fatalf("withLog=%v: index missing key", withLog)
		}
		// Locks released after commit.
		if st.Locks.NumLocked() != 0 {
			t.Fatalf("withLog=%v: %d locks leak after commit", withLog, st.Locks.NumLocked())
		}
	}
}

func TestDeleteStampsAtCommitOnly(t *testing.T) {
	st, tb := newSite(t, false)
	rid, err := st.InsertTuple(1, 1, mk(tb.Heap.Desc(), 9, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(1, 10, false, false); err != nil {
		t.Fatal(err)
	}
	key, err := st.DeleteTuple(2, 1, rid)
	if err != nil {
		t.Fatal(err)
	}
	if key != 9 {
		t.Fatalf("delete returned key %d", key)
	}
	// No page change before commit.
	if got := readTuple(t, st, rid); got.DelTS() != tuple.NotDeleted {
		t.Fatalf("delete modified page before commit: del=%d", got.DelTS())
	}
	if err := st.Commit(2, 20, false, false); err != nil {
		t.Fatal(err)
	}
	if got := readTuple(t, st, rid); got.DelTS() != 20 {
		t.Fatalf("delete not stamped: del=%d", got.DelTS())
	}
	if segs := tb.Heap.Segments(); segs[0].TmaxDel != 20 {
		t.Fatalf("TmaxDel = %d", segs[0].TmaxDel)
	}
	// The tuple still physically exists (versioned delete).
	if !slotUsed(t, st, rid) {
		t.Fatal("versioned delete removed the tuple physically")
	}
}

func TestDoubleDeleteRejected(t *testing.T) {
	st, tb := newSite(t, false)
	rid, _ := st.InsertTuple(1, 1, mk(tb.Heap.Desc(), 9, 0))
	if err := st.Commit(1, 10, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := st.DeleteTuple(2, 1, rid); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(2, 20, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := st.DeleteTuple(3, 1, rid); err == nil {
		t.Fatal("delete of already-deleted tuple must fail")
	}
	st.Abort(3)
}

func TestUpdateCreatesTwoVersions(t *testing.T) {
	st, tb := newSite(t, false)
	desc := tb.Heap.Desc()
	rid, _ := st.InsertTuple(1, 1, mk(desc, 5, 1))
	if err := st.Commit(1, 10, false, false); err != nil {
		t.Fatal(err)
	}
	rid2, err := st.UpdateTuple(2, 1, rid, mk(desc, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(2, 20, false, false); err != nil {
		t.Fatal(err)
	}
	old := readTuple(t, st, rid)
	neu := readTuple(t, st, rid2)
	if old.DelTS() != 20 || old.Values[3].I64 != 1 {
		t.Fatalf("old version wrong: %s", old)
	}
	if neu.InsTS() != 20 || neu.DelTS() != 0 || neu.Values[3].I64 != 2 {
		t.Fatalf("new version wrong: %s", neu)
	}
	if got := len(tb.Index.Lookup(5)); got != 2 {
		t.Fatalf("index has %d versions for key, want 2", got)
	}
}

func TestUpdateRejectsKeyChange(t *testing.T) {
	st, tb := newSite(t, false)
	desc := tb.Heap.Desc()
	rid, _ := st.InsertTuple(1, 1, mk(desc, 5, 1))
	if err := st.Commit(1, 10, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := st.UpdateTuple(2, 1, rid, mk(desc, 6, 2)); err == nil {
		t.Fatal("key-changing update must be rejected")
	}
	st.Abort(2)
}

func TestAbortRemovesInsertsLoglessMode(t *testing.T) {
	st, tb := newSite(t, false)
	desc := tb.Heap.Desc()
	rid, _ := st.InsertTuple(1, 1, mk(desc, 5, 1))
	if err := st.Abort(1); err != nil {
		t.Fatal(err)
	}
	if slotUsed(t, st, rid) {
		t.Fatal("aborted insert still on page")
	}
	if len(tb.Index.Lookup(5)) != 0 {
		t.Fatal("aborted insert still indexed")
	}
	if tb.Heap.MinUncommittedSeg() != -1 {
		t.Fatal("uncommitted bound survived abort")
	}
	if st.Locks.NumLocked() != 0 {
		t.Fatal("locks leak after abort")
	}
	// The freed slot is reused by the next insert.
	rid2, err := st.InsertTuple(2, 1, mk(desc, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rid2 != rid {
		t.Fatalf("slot not reused: %v vs %v", rid2, rid)
	}
	st.Abort(2)
}

func TestAbortUndoesViaLogARIESMode(t *testing.T) {
	st, tb := newSite(t, true)
	desc := tb.Heap.Desc()
	// Committed baseline tuple.
	rid0, _ := st.InsertTuple(1, 1, mk(desc, 1, 0))
	if err := st.Commit(1, 10, true, true); err != nil {
		t.Fatal(err)
	}
	// A txn that inserts and deletes, then aborts.
	rid1, _ := st.InsertTuple(2, 1, mk(desc, 2, 0))
	if _, err := st.DeleteTuple(2, 1, rid0); err != nil {
		t.Fatal(err)
	}
	if err := st.Abort(2); err != nil {
		t.Fatal(err)
	}
	if slotUsed(t, st, rid1) {
		t.Fatal("aborted insert survived ARIES rollback")
	}
	if got := readTuple(t, st, rid0); got.DelTS() != tuple.NotDeleted {
		t.Fatalf("aborted delete stamped anyway: %d", got.DelTS())
	}
	// CLRs and ABORT landed in the log.
	var sawCLR, sawAbort bool
	if err := st.Log.Iter(0, func(r *wal.Record) (bool, error) {
		switch r.Type {
		case wal.RecCLR:
			sawCLR = true
		case wal.RecAbort:
			if r.Txn == 2 {
				sawAbort = true
			}
		}
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawCLR || !sawAbort {
		t.Fatalf("log missing CLR (%v) or ABORT (%v)", sawCLR, sawAbort)
	}
}

func TestPrepareForcesLog(t *testing.T) {
	st, tb := newSite(t, true)
	_, _ = tb, 0
	if _, err := st.InsertTuple(1, 1, mk(tb.Heap.Desc(), 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Prepare(1, true); err != nil {
		t.Fatal(err)
	}
	force, fsyncs, _ := st.Log.Counters()
	if force != 1 || fsyncs < 1 {
		t.Fatalf("prepare force accounting: force=%d fsyncs=%d", force, fsyncs)
	}
	if err := st.PrepareToCommit(1, 5, true); err != nil {
		t.Fatal(err)
	}
	force, _, _ = st.Log.Counters()
	if force != 2 {
		t.Fatalf("prepare-to-commit not counted: %d", force)
	}
	if err := st.Commit(1, 5, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareNoopWithoutLog(t *testing.T) {
	st, tb := newSite(t, false)
	if _, err := st.InsertTuple(1, 1, mk(tb.Heap.Desc(), 1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Prepare(1, true); err != nil {
		t.Fatal(err)
	}
	if err := st.PrepareToCommit(1, 5, true); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(1, 5, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestCommitUnknownTxnReleasesLocks(t *testing.T) {
	st, _ := newSite(t, false)
	// Read-only txn holds a lock but has no versioning state.
	if err := st.Locks.Acquire(9, lockmgr.TableTarget(1), lockmgr.S); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(9, 5, false, false); err != nil {
		t.Fatal(err)
	}
	if st.Locks.NumLocked() != 0 {
		t.Fatal("read-only commit left locks")
	}
	if err := st.Abort(8); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRolloverUnderInserts(t *testing.T) {
	st, tb := newSite(t, false)
	desc := tb.Heap.Desc()
	perPage := tb.Heap.SlotsPerPage()
	n := perPage*4 + 3 // > one segment (4 pages)
	for i := 0; i < n; i++ {
		if _, err := st.InsertTuple(TxnID(i+1), 1, mk(desc, int64(i), 0)); err != nil {
			t.Fatal(err)
		}
		if err := st.Commit(TxnID(i+1), tuple.Timestamp(i+1), false, false); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Heap.NumSegments() != 2 {
		t.Fatalf("segments = %d, want 2", tb.Heap.NumSegments())
	}
	if tb.Index.Len() != n {
		t.Fatalf("index size = %d, want %d", tb.Index.Len(), n)
	}
}

func TestInsertAllocLoggedForRedo(t *testing.T) {
	st, tb := newSite(t, true)
	if _, err := st.InsertTuple(1, 1, mk(tb.Heap.Desc(), 1, 0)); err != nil {
		t.Fatal(err)
	}
	var sawAlloc bool
	if err := st.Log.Iter(0, func(r *wal.Record) (bool, error) {
		if r.Type == wal.RecAlloc {
			sawAlloc = true
		}
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawAlloc {
		t.Fatal("page allocation not logged")
	}
	st.Abort(1)
}

func TestActiveTxnsTracking(t *testing.T) {
	st, tb := newSite(t, false)
	if _, err := st.InsertTuple(5, 1, mk(tb.Heap.Desc(), 1, 0)); err != nil {
		t.Fatal(err)
	}
	ids := st.ActiveTxns()
	if len(ids) != 1 || ids[0] != 5 {
		t.Fatalf("ActiveTxns = %v", ids)
	}
	txn := st.Get(5)
	ins, dels := txn.NumPending()
	if ins != 1 || dels != 0 {
		t.Fatalf("pending = %d/%d", ins, dels)
	}
	st.Abort(5)
	if len(st.ActiveTxns()) != 0 {
		t.Fatal("txn state survived abort")
	}
}

func TestForcePolicyFlushesAtCommit(t *testing.T) {
	dir := t.TempDir()
	mgr, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	locks := lockmgr.New(500 * time.Millisecond)
	pool := buffer.New(&PageStore{Mgr: mgr}, locks, 64, buffer.NoStealForce)
	st := NewStore(mgr, pool, locks, nil)
	tb, err := mgr.Create(1, testDesc(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.InsertTuple(1, 1, mk(tb.Heap.Desc(), 5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(1, 9, false, false); err != nil {
		t.Fatal(err)
	}
	// FORCE: the committed page is already clean (flushed at commit).
	if got := len(pool.DirtyPages()); got != 0 {
		t.Fatalf("FORCE policy left %d dirty pages after commit", got)
	}
	// And the tuple is durable without any checkpoint: reopen from disk.
	if err := tb.Heap.FlushMeta(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tb.Heap.ScanDirect(tb.Heap.AllSegments(), func(_ page.RecordID, tp tuple.Tuple) bool {
		if tp.InsTS() == 9 {
			count++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("forced tuple not on disk (count=%d)", count)
	}
}

func TestVacuumBefore(t *testing.T) {
	st, tb := newSite(t, false)
	desc := tb.Heap.Desc()
	// Insert 5 keys at ts 1..5, delete keys 1–3 at ts 6–8.
	for i := int64(1); i <= 5; i++ {
		if _, err := st.InsertTuple(TxnID(i), 1, mk(desc, i, 0)); err != nil {
			t.Fatal(err)
		}
		if err := st.Commit(TxnID(i), tuple.Timestamp(i), false, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 3; i++ {
		rids := tb.Index.Lookup(i)
		if _, err := st.DeleteTuple(TxnID(100+i), 1, rids[0]); err != nil {
			t.Fatal(err)
		}
		if err := st.Commit(TxnID(100+i), tuple.Timestamp(5+i), false, false); err != nil {
			t.Fatal(err)
		}
	}
	// Horizon 7: purges versions deleted at 6 and 7 (keys 1, 2); key 3
	// (deleted at 8) survives as history.
	removed, err := st.VacuumBefore(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("vacuum removed %d, want 2", removed)
	}
	if len(tb.Index.Lookup(1)) != 0 || len(tb.Index.Lookup(2)) != 0 {
		t.Fatal("purged versions still indexed")
	}
	if len(tb.Index.Lookup(3)) != 1 {
		t.Fatal("retained deleted version lost")
	}
	// Current reads unaffected: keys 4, 5 remain.
	if got := tb.Index.Len(); got != 3 {
		t.Fatalf("index len = %d, want 3", got)
	}
	// Historical query at ts 7 (allowed: ≥ horizon) sees keys 3, 4, 5.
	// (key 3 deleted at 8 → visible at 7.) ScanDirect reads from disk, so
	// flush the pool first.
	if err := st.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tb.Heap.ScanDirect(tb.Heap.AllSegments(), func(_ page.RecordID, tp tuple.Tuple) bool {
		if tp.VisibleAt(7) {
			count++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("visible at horizon = %d, want 3", count)
	}
	// Idempotent.
	removed, err = st.VacuumBefore(1, 7)
	if err != nil || removed != 0 {
		t.Fatalf("second vacuum removed %d (%v)", removed, err)
	}
	// Freed slots are reused by fresh inserts.
	if _, err := st.InsertTuple(200, 1, mk(desc, 10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(200, 20, false, false); err != nil {
		t.Fatal(err)
	}
	// VacuumAll covers every table.
	if _, err := st.VacuumAll(8); err != nil {
		t.Fatal(err)
	}
	if len(tb.Index.Lookup(3)) != 0 {
		t.Fatal("VacuumAll(8) should purge key 3's old version")
	}
}
