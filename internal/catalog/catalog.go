// Package catalog describes the cluster: sites, tables, and the replica
// placement that provides K-safety (§3.2). It also performs the computation
// that §5.1 assumes the catalog supports: given a failed site's database
// object, derive the recovery objects, recovery predicates, and recovery
// buddies — a set of live replicas with mutually exclusive key-range
// predicates that together cover the object.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"harbor/internal/expr"
	"harbor/internal/tuple"
)

// SiteID identifies a site in the cluster. Site 0 is conventionally the
// coordinator (which may also be a worker, §4.1).
type SiteID int32

// TableSpec describes one logical table.
type TableSpec struct {
	ID       int32
	Name     string
	Desc     *tuple.Desc
	SegPages int32 // default segment size in pages for new replicas
}

// Replica is one physical copy of (part of) a table on a site. Range is the
// horizontal-partition predicate over the key field (FullKeyRange for a
// complete copy). SegPages may differ between replicas — replicated data
// need not be stored identically (§3.1).
type Replica struct {
	Site     SiteID
	Table    int32
	Range    expr.KeyRange
	SegPages int32
}

// RecoverySource is one element of a recovery plan: a buddy site, the
// recovery object (table) there, and the recovery predicate to apply.
type RecoverySource struct {
	Buddy SiteID
	Table int32
	Pred  expr.KeyRange
}

// Catalog is the cluster layout. Placement is a versioned, mutable
// per-segment map: table registration (CreateTable flows) and replica
// placement changes (node join, segment rebalancing) each bump the
// placement version, which the coordinator resolves read plans against —
// a plan built at version v is stale once the version moves. Safe for
// concurrent use.
type Catalog struct {
	mu       sync.RWMutex
	sites    map[SiteID]string // address
	tables   map[int32]*TableSpec
	replicas map[int32][]Replica
	coord    SiteID
	version  int64 // placement version; bumped by every placement mutation
}

// New creates an empty catalog with the given coordinator site.
func New(coord SiteID) *Catalog {
	return &Catalog{
		sites:    map[SiteID]string{},
		tables:   map[int32]*TableSpec{},
		replicas: map[int32][]Replica{},
		coord:    coord,
	}
}

// Coordinator returns the coordinator site id.
func (c *Catalog) Coordinator() SiteID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.coord
}

// AddSite registers a site's address.
func (c *Catalog) AddSite(id SiteID, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sites[id] = addr
}

// SiteAddr returns a site's address.
func (c *Catalog) SiteAddr(id SiteID) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.sites[id]
	return a, ok
}

// Sites lists all site ids in ascending order.
func (c *Catalog) Sites() []SiteID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]SiteID, 0, len(c.sites))
	for id := range c.sites {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddTable registers a table spec and its replicas.
func (c *Catalog) AddTable(spec *TableSpec, replicas ...Replica) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[spec.ID]; ok {
		return fmt.Errorf("catalog: table %d already registered", spec.ID)
	}
	for _, r := range replicas {
		if _, ok := c.sites[r.Site]; !ok {
			return fmt.Errorf("catalog: replica on unknown site %d", r.Site)
		}
		if r.Table != spec.ID {
			return fmt.Errorf("catalog: replica table %d != spec %d", r.Table, spec.ID)
		}
	}
	c.tables[spec.ID] = spec
	c.replicas[spec.ID] = append([]Replica(nil), replicas...)
	c.version++
	return nil
}

// PlacementVersion returns the current placement version. Read plans record
// it; a mismatch later means the plan was resolved against stale placement.
func (c *Catalog) PlacementVersion() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// AddReplicaRange registers a new replica range (a migration target that
// finished its locked catch-up, or a joined site's assignment) and returns
// the new placement version. Adding a range the site already holds exactly
// is idempotent.
func (c *Catalog) AddReplicaRange(r Replica) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sites[r.Site]; !ok {
		return c.version, fmt.Errorf("catalog: replica on unknown site %d", r.Site)
	}
	if _, ok := c.tables[r.Table]; !ok {
		return c.version, fmt.Errorf("catalog: replica of unknown table %d", r.Table)
	}
	if r.Range.Empty() {
		return c.version, fmt.Errorf("catalog: empty replica range %v", r.Range)
	}
	for _, have := range c.replicas[r.Table] {
		if have.Site == r.Site && have.Range == r.Range {
			return c.version, nil
		}
	}
	c.replicas[r.Table] = append(c.replicas[r.Table], r)
	c.version++
	return c.version, nil
}

// RemoveReplicaRange withdraws `rng` from a site's replicas of a table (the
// donor half of a segment move) and returns the new placement version. The
// removal is refused with ErrKSafetyExceeded when the remaining replicas
// cannot cover the withdrawn range — placement changes must never drop the
// last copy of a key.
func (c *Catalog) RemoveReplicaRange(site SiteID, table int32, rng expr.KeyRange) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rng.Empty() {
		return c.version, nil
	}
	var kept []Replica
	var cands []RangeCandidate
	changed := false
	for _, r := range c.replicas[table] {
		if r.Site != site || r.Range.Intersect(rng).Empty() {
			kept = append(kept, r)
			cands = append(cands, RangeCandidate{Site: r.Site, Table: r.Table, Range: r.Range})
			continue
		}
		changed = true
		// Subtract rng, keeping the flanks.
		for _, piece := range subtractRange(r.Range, rng) {
			p := r
			p.Range = piece
			kept = append(kept, p)
			cands = append(cands, RangeCandidate{Site: p.Site, Table: p.Table, Range: p.Range})
		}
	}
	if !changed {
		return c.version, nil
	}
	if _, err := CoverTarget(rng, cands); err != nil {
		return c.version, fmt.Errorf("catalog: removing [%d,%d) of table %d from site %d: %w",
			rng.Lo, rng.Hi, table, site, err)
	}
	c.replicas[table] = kept
	c.version++
	return c.version, nil
}

// subtractRange returns r minus cut: zero, one, or two non-empty flanks.
func subtractRange(r, cut expr.KeyRange) []expr.KeyRange {
	var out []expr.KeyRange
	left := expr.KeyRange{Lo: r.Lo, Hi: cut.Lo}
	if !left.Empty() && left.Hi > left.Lo {
		out = append(out, left)
	}
	full := expr.FullKeyRange()
	if cut.Hi != full.Hi {
		right := expr.KeyRange{Lo: cut.Hi, Hi: r.Hi}
		if !right.Empty() {
			out = append(out, right)
		}
	}
	return out
}

// Table returns a table spec.
func (c *Catalog) Table(id int32) (*TableSpec, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[id]
	return t, ok
}

// Tables lists table ids in ascending order.
func (c *Catalog) Tables() []int32 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]int32, 0, len(c.tables))
	for id := range c.tables {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Replicas returns the replicas of a table.
func (c *Catalog) Replicas(table int32) []Replica {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Replica(nil), c.replicas[table]...)
}

// ReplicasOn returns the replicas stored on a given site.
func (c *Catalog) ReplicasOn(site SiteID) []Replica {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Replica
	for _, rs := range c.replicas {
		for _, r := range rs {
			if r.Site == site {
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// UpdateSites returns the sites whose replicas of table intersect the key
// range of an update: update queries "must be distributed to all live sites
// that contain a copy of the relevant data" (§4.1). The live filter may be
// nil (all sites considered live).
func (c *Catalog) UpdateSites(table int32, key int64, live func(SiteID) bool) []SiteID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := map[SiteID]bool{}
	var out []SiteID
	for _, r := range c.replicas[table] {
		if !r.Range.Contains(key) || seen[r.Site] {
			continue
		}
		if live != nil && !live(r.Site) {
			continue
		}
		seen[r.Site] = true
		out = append(out, r.Site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadSite picks one live site able to answer a full-range read of table
// (preferring the lowest id, excluding `avoid`), or an error if coverage is
// impossible. Full coverage across multiple partitions is supported.
func (c *Catalog) ReadSites(table int32, live func(SiteID) bool) ([]RecoverySource, error) {
	return c.coverage(table, expr.FullKeyRange(), live, -1)
}

// KSafety returns the K value actually provided for a table: the minimum,
// over all keys, of (number of replicas covering that key) - 1. For the
// common whole-table replica layout this is simply #replicas-1.
func (c *Catalog) KSafety(table int32) int {
	c.mu.RLock()
	reps := append([]Replica(nil), c.replicas[table]...)
	c.mu.RUnlock()
	if len(reps) == 0 {
		return -1
	}
	// Sweep over range boundaries.
	var cuts []int64
	for _, r := range reps {
		cuts = append(cuts, r.Range.Lo, r.Range.Hi)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	k := 1 << 30
	for i := 0; i < len(cuts); i++ {
		point := cuts[i]
		if i > 0 && point == cuts[i-1] {
			continue
		}
		n := 0
		for _, r := range reps {
			if r.Range.Contains(point) {
				n++
			}
		}
		if n == 0 {
			continue
		}
		if n-1 < k {
			k = n - 1
		}
	}
	if k == 1<<30 {
		return -1
	}
	return k
}

// ErrKSafetyExceeded marks a recovery plan that cannot cover the target
// range with live replicas: more than K-1 copies of some key range are
// down at once. Callers may recover other sites first (a rejoined replica
// becomes a legitimate buddy) and retry.
var ErrKSafetyExceeded = errors.New("K-safety exceeded")

// RecoveryPlan computes the recovery sources for a failed replica: a set of
// live replicas with mutually exclusive predicates whose union covers the
// failed replica's range (§5.1). failed is excluded from candidates.
func (c *Catalog) RecoveryPlan(table int32, rec expr.KeyRange, failed SiteID, live func(SiteID) bool) ([]RecoverySource, error) {
	return c.coverage(table, rec, live, failed)
}

// coverage greedily covers `target` with live replicas (excluding site
// `exclude` if >= 0), preferring replicas that extend furthest.
func (c *Catalog) coverage(table int32, target expr.KeyRange, live func(SiteID) bool, exclude SiteID) ([]RecoverySource, error) {
	c.mu.RLock()
	var cands []RangeCandidate
	for _, r := range c.replicas[table] {
		if exclude >= 0 && r.Site == exclude {
			continue
		}
		if live != nil && !live(r.Site) {
			continue
		}
		cands = append(cands, RangeCandidate{Site: r.Site, Table: r.Table, Range: r.Range})
	}
	c.mu.RUnlock()
	plan, err := CoverTarget(target, cands)
	if err != nil {
		return nil, fmt.Errorf("catalog: table %d: %w", table, err)
	}
	return plan, nil
}

// RangeCandidate is one servable key range offered by a site: a whole
// replica when the site is healthy, or a single readable segment of a
// still-recovering replica. CoverTarget composes a cover out of them
// without caring which kind each one is.
type RangeCandidate struct {
	Site  SiteID
	Table int32
	Range expr.KeyRange
}

// CoverTarget greedily covers `target` with the candidate ranges,
// preferring at each cursor position the candidate that extends furthest.
// The returned sources carry mutually exclusive predicates whose union is
// exactly `target`. ErrKSafetyExceeded (wrapped) reports an uncoverable
// position.
func CoverTarget(target expr.KeyRange, cands []RangeCandidate) ([]RecoverySource, error) {
	if target.Empty() {
		return nil, nil
	}
	kept := cands[:0:0]
	for _, r := range cands {
		if r.Range.Intersect(target).Empty() && !(r.Range == expr.FullKeyRange()) {
			continue
		}
		kept = append(kept, r)
	}
	cands = kept
	var plan []RecoverySource
	cursor := target.Lo
	full := expr.FullKeyRange()
	for {
		// Find the candidate covering `cursor` that extends furthest.
		best := -1
		var bestHi int64
		for i, r := range cands {
			if !r.Range.Contains(cursor) {
				continue
			}
			hi := r.Range.Hi
			if best == -1 || hi > bestHi {
				best = i
				bestHi = hi
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("range %v not coverable at key %d: %w",
				target, cursor, ErrKSafetyExceeded)
		}
		r := cands[best]
		pred := expr.KeyRange{Lo: cursor, Hi: minI64(bestHi, target.Hi)}
		if target.Hi == full.Hi {
			pred.Hi = minI64(bestHi, full.Hi)
		}
		plan = append(plan, RecoverySource{Buddy: r.Site, Table: r.Table, Pred: pred})
		if pred.Hi >= target.Hi {
			return plan, nil
		}
		cursor = pred.Hi
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
