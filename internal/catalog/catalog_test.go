package catalog

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"harbor/internal/expr"
	"harbor/internal/tuple"
)

func testDesc() *tuple.Desc {
	return tuple.MustDesc("id", tuple.FieldDef{Name: "id", Type: tuple.Int64})
}

func fullRangeCluster(t *testing.T, nSites int, replicaSites ...SiteID) *Catalog {
	t.Helper()
	c := New(0)
	for i := 0; i < nSites; i++ {
		c.AddSite(SiteID(i), "addr")
	}
	var reps []Replica
	for _, s := range replicaSites {
		reps = append(reps, Replica{Site: s, Table: 1, Range: expr.FullKeyRange(), SegPages: 4})
	}
	if err := c.AddTable(&TableSpec{ID: 1, Name: "t", Desc: testDesc(), SegPages: 4}, reps...); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAddTableValidation(t *testing.T) {
	c := New(0)
	c.AddSite(0, "a")
	spec := &TableSpec{ID: 1, Desc: testDesc()}
	if err := c.AddTable(spec, Replica{Site: 9, Table: 1, Range: expr.FullKeyRange()}); err == nil {
		t.Fatal("unknown site accepted")
	}
	if err := c.AddTable(spec, Replica{Site: 0, Table: 2, Range: expr.FullKeyRange()}); err == nil {
		t.Fatal("mismatched table accepted")
	}
	if err := c.AddTable(spec, Replica{Site: 0, Table: 1, Range: expr.FullKeyRange()}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(spec); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestKSafetyFullReplicas(t *testing.T) {
	c := fullRangeCluster(t, 3, 1, 2)
	if got := c.KSafety(1); got != 1 {
		t.Fatalf("K = %d, want 1", got)
	}
	c3 := fullRangeCluster(t, 4, 1, 2, 3)
	if got := c3.KSafety(1); got != 2 {
		t.Fatalf("K = %d, want 2", got)
	}
	if got := New(0).KSafety(9); got != -1 {
		t.Fatalf("K of unknown table = %d", got)
	}
}

func TestKSafetyPartitioned(t *testing.T) {
	// The §5.1 example: EMP1 full on site 3; EMP2 split at key 1000 across
	// sites 1 and 2. Every key has exactly 2 copies → K=1.
	c := New(0)
	for i := 0; i < 4; i++ {
		c.AddSite(SiteID(i), "a")
	}
	err := c.AddTable(&TableSpec{ID: 1, Desc: testDesc()},
		Replica{Site: 3, Table: 1, Range: expr.FullKeyRange()},
		Replica{Site: 1, Table: 1, Range: expr.KeyRange{Lo: math.MinInt64, Hi: 1000}},
		Replica{Site: 2, Table: 1, Range: expr.KeyRange{Lo: 1000, Hi: math.MaxInt64}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.KSafety(1); got != 1 {
		t.Fatalf("K = %d, want 1", got)
	}
}

func TestUpdateSites(t *testing.T) {
	c := New(0)
	for i := 0; i < 3; i++ {
		c.AddSite(SiteID(i), "a")
	}
	err := c.AddTable(&TableSpec{ID: 1, Desc: testDesc()},
		Replica{Site: 0, Table: 1, Range: expr.FullKeyRange()},
		Replica{Site: 1, Table: 1, Range: expr.KeyRange{Lo: 0, Hi: 100}},
		Replica{Site: 2, Table: 1, Range: expr.KeyRange{Lo: 100, Hi: math.MaxInt64}},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := c.UpdateSites(1, 50, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("UpdateSites(50) = %v", got)
	}
	got = c.UpdateSites(1, 500, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("UpdateSites(500) = %v", got)
	}
	// Dead sites are skipped (crashed sites can be ignored by updates,
	// §4.1).
	live := func(s SiteID) bool { return s != 1 }
	got = c.UpdateSites(1, 50, live)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("UpdateSites with dead site = %v", got)
	}
}

func TestRecoveryPlanSingleBuddy(t *testing.T) {
	c := fullRangeCluster(t, 3, 1, 2)
	plan, err := c.RecoveryPlan(1, expr.FullKeyRange(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].Buddy != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan[0].Pred != expr.FullKeyRange() {
		t.Fatalf("pred = %v", plan[0].Pred)
	}
}

func TestRecoveryPlanPartitionedBuddies(t *testing.T) {
	// The §5.1 example: recovering rec (full copy) from EMP2A on S1 and
	// EMP2B on S2.
	c := New(0)
	for i := 0; i < 4; i++ {
		c.AddSite(SiteID(i), "a")
	}
	err := c.AddTable(&TableSpec{ID: 1, Desc: testDesc()},
		Replica{Site: 3, Table: 1, Range: expr.FullKeyRange()},
		Replica{Site: 1, Table: 1, Range: expr.KeyRange{Lo: math.MinInt64, Hi: 1000}},
		Replica{Site: 2, Table: 1, Range: expr.KeyRange{Lo: 1000, Hi: math.MaxInt64}},
	)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.RecoveryPlan(1, expr.FullKeyRange(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	// Predicates must be disjoint and cover everything.
	if plan[0].Buddy != 1 || plan[1].Buddy != 2 {
		t.Fatalf("buddies = %+v", plan)
	}
	if plan[0].Pred.Hi != plan[1].Pred.Lo {
		t.Fatalf("plan not contiguous: %+v", plan)
	}
}

func TestRecoveryPlanFailsWhenUncoverable(t *testing.T) {
	c := fullRangeCluster(t, 3, 1, 2)
	dead := func(s SiteID) bool { return false }
	if _, err := c.RecoveryPlan(1, expr.FullKeyRange(), 1, dead); err == nil {
		t.Fatal("plan with no live buddies should fail")
	}
	// Only the failed site remains → also uncoverable.
	onlyFailed := func(s SiteID) bool { return s == 1 }
	if _, err := c.RecoveryPlan(1, expr.FullKeyRange(), 1, onlyFailed); err == nil {
		t.Fatal("plan excluding the failed site should fail")
	}
}

func TestReadSites(t *testing.T) {
	c := fullRangeCluster(t, 3, 1, 2)
	srcs, err := c.ReadSites(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 1 {
		t.Fatalf("read plan = %+v", srcs)
	}
	live := func(s SiteID) bool { return s == 2 }
	srcs, err = c.ReadSites(1, live)
	if err != nil || srcs[0].Buddy != 2 {
		t.Fatalf("read plan with failures = %+v, %v", srcs, err)
	}
}

func TestReplicasOn(t *testing.T) {
	c := fullRangeCluster(t, 3, 1, 2)
	if got := c.ReplicasOn(1); len(got) != 1 || got[0].Table != 1 {
		t.Fatalf("ReplicasOn = %+v", got)
	}
	if got := c.ReplicasOn(0); len(got) != 0 {
		t.Fatalf("ReplicasOn(0) = %+v", got)
	}
}

// Property: every plan the catalog produces has disjoint predicates whose
// union covers the requested range, and never uses the failed site.
func TestQuickRecoveryPlanSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(0)
		nSites := 3 + rng.Intn(3)
		for i := 0; i < nSites; i++ {
			c.AddSite(SiteID(i), "a")
		}
		// Random replica layout: a full copy plus random partitions.
		reps := []Replica{{Site: SiteID(rng.Intn(nSites)), Table: 1, Range: expr.FullKeyRange()}}
		cut := int64(0)
		prev := int64(math.MinInt64)
		for i := 0; i < rng.Intn(3); i++ {
			cut = prev/2 + int64(rng.Intn(1000))
			reps = append(reps, Replica{Site: SiteID(rng.Intn(nSites)), Table: 1,
				Range: expr.KeyRange{Lo: prev, Hi: cut}})
			prev = cut
		}
		if err := c.AddTable(&TableSpec{ID: 1, Desc: testDesc()}, reps...); err != nil {
			return false
		}
		failed := SiteID(rng.Intn(nSites))
		plan, err := c.RecoveryPlan(1, expr.FullKeyRange(), failed, nil)
		if err != nil {
			// Acceptable when the only full copy lived on the failed site
			// and partitions do not cover: verify that's the case.
			return true
		}
		// Check coverage and disjointness at sample keys.
		for trial := 0; trial < 50; trial++ {
			k := rng.Int63() - rng.Int63()
			n := 0
			for _, src := range plan {
				if src.Buddy == failed {
					return false
				}
				if src.Pred.Contains(k) {
					n++
				}
			}
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

// --- CoverTarget edge cases ---

func cand(site SiteID, lo, hi int64) RangeCandidate {
	return RangeCandidate{Site: site, Table: 1, Range: expr.KeyRange{Lo: lo, Hi: hi}}
}

// A zero-coverage gap must surface as the typed K-safety error, never as a
// silent partial plan: a caller that scanned the partial cover would read a
// hole without knowing it.
func TestCoverTargetGapIsTypedError(t *testing.T) {
	plan, err := CoverTarget(expr.KeyRange{Lo: 0, Hi: 100},
		[]RangeCandidate{cand(1, 0, 40), cand(2, 60, 100)})
	if !errors.Is(err, ErrKSafetyExceeded) {
		t.Fatalf("gap at [40,60): err = %v, want ErrKSafetyExceeded", err)
	}
	if plan != nil {
		t.Fatalf("gap returned a partial plan %v alongside the error", plan)
	}
	// The gap is reported even when it sits at the very first key.
	if _, err := CoverTarget(expr.KeyRange{Lo: 0, Hi: 10},
		[]RangeCandidate{cand(1, 10, 20)}); !errors.Is(err, ErrKSafetyExceeded) {
		t.Fatalf("uncovered target.Lo: err = %v, want ErrKSafetyExceeded", err)
	}
	// A candidate ending exactly at the cursor does not cover it ([lo,hi)
	// is half-open): [0,40) + [40 exactly) seam is fine, but a candidate
	// [,0) contributes nothing at cursor 0.
	if _, err := CoverTarget(expr.KeyRange{Lo: 0, Hi: 10},
		[]RangeCandidate{cand(1, -10, 0)}); !errors.Is(err, ErrKSafetyExceeded) {
		t.Fatalf("candidate ending at target.Lo: err = %v, want ErrKSafetyExceeded", err)
	}
}

// Adjacent segments meeting at exact bounds compose into a seamless cover:
// mutually exclusive predicates whose union is exactly the target.
func TestCoverTargetExactSeams(t *testing.T) {
	plan, err := CoverTarget(expr.KeyRange{Lo: 0, Hi: 100},
		[]RangeCandidate{cand(1, 0, 50), cand(2, 50, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("plan has %d sources, want 2: %v", len(plan), plan)
	}
	want := []expr.KeyRange{{Lo: 0, Hi: 50}, {Lo: 50, Hi: 100}}
	for i, src := range plan {
		if src.Pred != want[i] {
			t.Fatalf("source %d pred = %v, want %v", i, src.Pred, want[i])
		}
	}
	// Seams survive a target that starts/ends strictly inside candidates.
	plan, err = CoverTarget(expr.KeyRange{Lo: 25, Hi: 75},
		[]RangeCandidate{cand(1, 0, 50), cand(2, 50, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 || plan[0].Pred != (expr.KeyRange{Lo: 25, Hi: 50}) ||
		plan[1].Pred != (expr.KeyRange{Lo: 50, Hi: 75}) {
		t.Fatalf("interior target plan = %v, want [25,50)+[50,75)", plan)
	}
}

// One site holding the full range covers any target with a single source
// whose predicate is exactly the target.
func TestCoverTargetSingleFullCover(t *testing.T) {
	full := expr.FullKeyRange()
	plan, err := CoverTarget(full, []RangeCandidate{{Site: 3, Table: 1, Range: full}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].Buddy != 3 || plan[0].Pred != full {
		t.Fatalf("full-range cover = %v, want one source with the full predicate", plan)
	}
	plan, err = CoverTarget(expr.KeyRange{Lo: 7, Hi: 9},
		[]RangeCandidate{{Site: 3, Table: 1, Range: full}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].Pred != (expr.KeyRange{Lo: 7, Hi: 9}) {
		t.Fatalf("narrow target under full cover = %v, want single [7,9) source", plan)
	}
	// Empty target: trivially covered by nothing.
	if plan, err := CoverTarget(expr.KeyRange{Lo: 5, Hi: 5}, nil); err != nil || plan != nil {
		t.Fatalf("empty target: plan=%v err=%v, want nil/nil", plan, err)
	}
}

// The greedy cover prefers the candidate extending furthest at each cursor,
// minimizing the number of sources (and thus transfer streams).
func TestCoverTargetPrefersFurthest(t *testing.T) {
	plan, err := CoverTarget(expr.KeyRange{Lo: 0, Hi: 100}, []RangeCandidate{
		cand(1, 0, 30), cand(2, 0, 80), cand(3, 30, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 || plan[0].Buddy != 2 || plan[1].Buddy != 3 {
		t.Fatalf("plan = %v, want site 2 [0,80) then site 3 [80,100)", plan)
	}
	if plan[0].Pred != (expr.KeyRange{Lo: 0, Hi: 80}) ||
		plan[1].Pred != (expr.KeyRange{Lo: 80, Hi: 100}) {
		t.Fatalf("plan preds = %v/%v, want [0,80)/[80,100)", plan[0].Pred, plan[1].Pred)
	}
}

// --- versioned placement mutations ---

// AddReplicaRange/RemoveReplicaRange bump the placement version exactly
// when they change placement; routing epochs hang off this number, so a
// no-op mutating call must NOT invalidate every in-flight plan.
func TestPlacementVersioning(t *testing.T) {
	c := fullRangeCluster(t, 3, 0, 1)
	v0 := c.PlacementVersion()
	half := expr.KeyRange{Lo: 0, Hi: expr.FullKeyRange().Hi}

	v1, err := c.AddReplicaRange(Replica{Site: 2, Table: 1, Range: half, SegPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v0+1 {
		t.Fatalf("add bumped version %d -> %d, want +1", v0, v1)
	}
	// Idempotent re-add: no change, no bump.
	if v, err := c.AddReplicaRange(Replica{Site: 2, Table: 1, Range: half, SegPages: 4}); err != nil || v != v1 {
		t.Fatalf("idempotent re-add: v=%d err=%v, want v=%d nil", v, err, v1)
	}
	// Validation failures leave the version alone.
	if _, err := c.AddReplicaRange(Replica{Site: 9, Table: 1, Range: half}); err == nil {
		t.Fatal("unknown site accepted")
	}
	if _, err := c.AddReplicaRange(Replica{Site: 2, Table: 9, Range: half}); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := c.AddReplicaRange(Replica{Site: 2, Table: 1, Range: expr.KeyRange{Lo: 5, Hi: 5}}); err == nil {
		t.Fatal("empty range accepted")
	}
	if v := c.PlacementVersion(); v != v1 {
		t.Fatalf("failed adds moved the version to %d, want %d", v, v1)
	}

	// Removing the new site's half is fine (sites 0 and 1 still cover it)…
	v2, err := c.RemoveReplicaRange(2, 1, half)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1+1 {
		t.Fatalf("remove bumped version %d -> %d, want +1", v1, v2)
	}
	// …and removing a range the site does not hold is a versionless no-op.
	if v, err := c.RemoveReplicaRange(2, 1, half); err != nil || v != v2 {
		t.Fatalf("no-op remove: v=%d err=%v, want v=%d nil", v, err, v2)
	}
}

// RemoveReplicaRange must refuse to drop the last copy of any key — the
// donor-side half of a migration can only run after the target's copy is
// registered.
func TestRemoveReplicaRangeKeepsLastCopy(t *testing.T) {
	c := fullRangeCluster(t, 2, 0)
	full := expr.FullKeyRange()
	if _, err := c.RemoveReplicaRange(0, 1, full); !errors.Is(err, ErrKSafetyExceeded) {
		t.Fatalf("dropping the last full copy: err = %v, want ErrKSafetyExceeded", err)
	}
	// A partial drop that leaves a hole is refused too: site 1 covers only
	// the low half, so withdrawing site 0's full range would orphan the rest.
	if _, err := c.AddReplicaRange(Replica{Site: 1, Table: 1, Range: expr.KeyRange{Lo: full.Lo, Hi: 0}, SegPages: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RemoveReplicaRange(0, 1, full); !errors.Is(err, ErrKSafetyExceeded) {
		t.Fatalf("dropping with partial remaining cover: err = %v, want ErrKSafetyExceeded", err)
	}
	// Withdrawing exactly the half someone else still holds succeeds and
	// keeps site 0's flank.
	if _, err := c.RemoveReplicaRange(0, 1, expr.KeyRange{Lo: full.Lo, Hi: 0}); err != nil {
		t.Fatal(err)
	}
	reps := c.ReplicasOn(0)
	if len(reps) != 1 || reps[0].Range != (expr.KeyRange{Lo: 0, Hi: full.Hi}) {
		t.Fatalf("post-remove replicas on site 0 = %v, want the [0,max] flank", reps)
	}
}
