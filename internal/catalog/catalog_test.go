package catalog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"harbor/internal/expr"
	"harbor/internal/tuple"
)

func testDesc() *tuple.Desc {
	return tuple.MustDesc("id", tuple.FieldDef{Name: "id", Type: tuple.Int64})
}

func fullRangeCluster(t *testing.T, nSites int, replicaSites ...SiteID) *Catalog {
	t.Helper()
	c := New(0)
	for i := 0; i < nSites; i++ {
		c.AddSite(SiteID(i), "addr")
	}
	var reps []Replica
	for _, s := range replicaSites {
		reps = append(reps, Replica{Site: s, Table: 1, Range: expr.FullKeyRange(), SegPages: 4})
	}
	if err := c.AddTable(&TableSpec{ID: 1, Name: "t", Desc: testDesc(), SegPages: 4}, reps...); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAddTableValidation(t *testing.T) {
	c := New(0)
	c.AddSite(0, "a")
	spec := &TableSpec{ID: 1, Desc: testDesc()}
	if err := c.AddTable(spec, Replica{Site: 9, Table: 1, Range: expr.FullKeyRange()}); err == nil {
		t.Fatal("unknown site accepted")
	}
	if err := c.AddTable(spec, Replica{Site: 0, Table: 2, Range: expr.FullKeyRange()}); err == nil {
		t.Fatal("mismatched table accepted")
	}
	if err := c.AddTable(spec, Replica{Site: 0, Table: 1, Range: expr.FullKeyRange()}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(spec); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestKSafetyFullReplicas(t *testing.T) {
	c := fullRangeCluster(t, 3, 1, 2)
	if got := c.KSafety(1); got != 1 {
		t.Fatalf("K = %d, want 1", got)
	}
	c3 := fullRangeCluster(t, 4, 1, 2, 3)
	if got := c3.KSafety(1); got != 2 {
		t.Fatalf("K = %d, want 2", got)
	}
	if got := New(0).KSafety(9); got != -1 {
		t.Fatalf("K of unknown table = %d", got)
	}
}

func TestKSafetyPartitioned(t *testing.T) {
	// The §5.1 example: EMP1 full on site 3; EMP2 split at key 1000 across
	// sites 1 and 2. Every key has exactly 2 copies → K=1.
	c := New(0)
	for i := 0; i < 4; i++ {
		c.AddSite(SiteID(i), "a")
	}
	err := c.AddTable(&TableSpec{ID: 1, Desc: testDesc()},
		Replica{Site: 3, Table: 1, Range: expr.FullKeyRange()},
		Replica{Site: 1, Table: 1, Range: expr.KeyRange{Lo: math.MinInt64, Hi: 1000}},
		Replica{Site: 2, Table: 1, Range: expr.KeyRange{Lo: 1000, Hi: math.MaxInt64}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.KSafety(1); got != 1 {
		t.Fatalf("K = %d, want 1", got)
	}
}

func TestUpdateSites(t *testing.T) {
	c := New(0)
	for i := 0; i < 3; i++ {
		c.AddSite(SiteID(i), "a")
	}
	err := c.AddTable(&TableSpec{ID: 1, Desc: testDesc()},
		Replica{Site: 0, Table: 1, Range: expr.FullKeyRange()},
		Replica{Site: 1, Table: 1, Range: expr.KeyRange{Lo: 0, Hi: 100}},
		Replica{Site: 2, Table: 1, Range: expr.KeyRange{Lo: 100, Hi: math.MaxInt64}},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := c.UpdateSites(1, 50, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("UpdateSites(50) = %v", got)
	}
	got = c.UpdateSites(1, 500, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("UpdateSites(500) = %v", got)
	}
	// Dead sites are skipped (crashed sites can be ignored by updates,
	// §4.1).
	live := func(s SiteID) bool { return s != 1 }
	got = c.UpdateSites(1, 50, live)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("UpdateSites with dead site = %v", got)
	}
}

func TestRecoveryPlanSingleBuddy(t *testing.T) {
	c := fullRangeCluster(t, 3, 1, 2)
	plan, err := c.RecoveryPlan(1, expr.FullKeyRange(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].Buddy != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan[0].Pred != expr.FullKeyRange() {
		t.Fatalf("pred = %v", plan[0].Pred)
	}
}

func TestRecoveryPlanPartitionedBuddies(t *testing.T) {
	// The §5.1 example: recovering rec (full copy) from EMP2A on S1 and
	// EMP2B on S2.
	c := New(0)
	for i := 0; i < 4; i++ {
		c.AddSite(SiteID(i), "a")
	}
	err := c.AddTable(&TableSpec{ID: 1, Desc: testDesc()},
		Replica{Site: 3, Table: 1, Range: expr.FullKeyRange()},
		Replica{Site: 1, Table: 1, Range: expr.KeyRange{Lo: math.MinInt64, Hi: 1000}},
		Replica{Site: 2, Table: 1, Range: expr.KeyRange{Lo: 1000, Hi: math.MaxInt64}},
	)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.RecoveryPlan(1, expr.FullKeyRange(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	// Predicates must be disjoint and cover everything.
	if plan[0].Buddy != 1 || plan[1].Buddy != 2 {
		t.Fatalf("buddies = %+v", plan)
	}
	if plan[0].Pred.Hi != plan[1].Pred.Lo {
		t.Fatalf("plan not contiguous: %+v", plan)
	}
}

func TestRecoveryPlanFailsWhenUncoverable(t *testing.T) {
	c := fullRangeCluster(t, 3, 1, 2)
	dead := func(s SiteID) bool { return false }
	if _, err := c.RecoveryPlan(1, expr.FullKeyRange(), 1, dead); err == nil {
		t.Fatal("plan with no live buddies should fail")
	}
	// Only the failed site remains → also uncoverable.
	onlyFailed := func(s SiteID) bool { return s == 1 }
	if _, err := c.RecoveryPlan(1, expr.FullKeyRange(), 1, onlyFailed); err == nil {
		t.Fatal("plan excluding the failed site should fail")
	}
}

func TestReadSites(t *testing.T) {
	c := fullRangeCluster(t, 3, 1, 2)
	srcs, err := c.ReadSites(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 1 {
		t.Fatalf("read plan = %+v", srcs)
	}
	live := func(s SiteID) bool { return s == 2 }
	srcs, err = c.ReadSites(1, live)
	if err != nil || srcs[0].Buddy != 2 {
		t.Fatalf("read plan with failures = %+v, %v", srcs, err)
	}
}

func TestReplicasOn(t *testing.T) {
	c := fullRangeCluster(t, 3, 1, 2)
	if got := c.ReplicasOn(1); len(got) != 1 || got[0].Table != 1 {
		t.Fatalf("ReplicasOn = %+v", got)
	}
	if got := c.ReplicasOn(0); len(got) != 0 {
		t.Fatalf("ReplicasOn(0) = %+v", got)
	}
}

// Property: every plan the catalog produces has disjoint predicates whose
// union covers the requested range, and never uses the failed site.
func TestQuickRecoveryPlanSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(0)
		nSites := 3 + rng.Intn(3)
		for i := 0; i < nSites; i++ {
			c.AddSite(SiteID(i), "a")
		}
		// Random replica layout: a full copy plus random partitions.
		reps := []Replica{{Site: SiteID(rng.Intn(nSites)), Table: 1, Range: expr.FullKeyRange()}}
		cut := int64(0)
		prev := int64(math.MinInt64)
		for i := 0; i < rng.Intn(3); i++ {
			cut = prev/2 + int64(rng.Intn(1000))
			reps = append(reps, Replica{Site: SiteID(rng.Intn(nSites)), Table: 1,
				Range: expr.KeyRange{Lo: prev, Hi: cut}})
			prev = cut
		}
		if err := c.AddTable(&TableSpec{ID: 1, Desc: testDesc()}, reps...); err != nil {
			return false
		}
		failed := SiteID(rng.Intn(nSites))
		plan, err := c.RecoveryPlan(1, expr.FullKeyRange(), failed, nil)
		if err != nil {
			// Acceptable when the only full copy lived on the failed site
			// and partitions do not cover: verify that's the case.
			return true
		}
		// Check coverage and disjointness at sample keys.
		for trial := 0; trial < 50; trial++ {
			k := rng.Int63() - rng.Int63()
			n := 0
			for _, src := range plan {
				if src.Buddy == failed {
					return false
				}
				if src.Pred.Contains(k) {
					n++
				}
			}
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}
