package aries

import (
	"errors"
	"testing"
	"time"

	"harbor/internal/buffer"
	"harbor/internal/exec"
	"harbor/internal/lockmgr"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/version"
	"harbor/internal/wal"
)

func testDesc() *tuple.Desc {
	return tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "v", Type: tuple.Int32},
	)
}

// site bundles one ARIES-mode site.
type site struct {
	dir   string
	mgr   *storage.Manager
	log   *wal.Manager
	locks *lockmgr.Manager
	pool  *buffer.Pool
	store *version.Store
}

func openSite(t *testing.T, dir string, create bool) *site {
	t.Helper()
	mgr, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	locks := lockmgr.New(300 * time.Millisecond)
	pool := buffer.New(&version.PageStore{Mgr: mgr, Log: log}, locks, 256, buffer.StealNoForce)
	store := version.NewStore(mgr, pool, locks, log)
	if create {
		if _, err := mgr.Create(1, testDesc(), 4); err != nil {
			t.Fatal(err)
		}
	}
	s := &site{dir: dir, mgr: mgr, log: log, locks: locks, pool: pool, store: store}
	t.Cleanup(func() { s.close() })
	return s
}

func (s *site) close() {
	s.mgr.Close()
	s.log.Close()
}

// crash simulates fail-stop: drop all volatile state without flushing.
// The log file's durable prefix survives (Force already synced what
// matters); buffered-but-unforced log records are dropped by reopening,
// which mimics losing the in-memory log tail.
func (s *site) crash(t *testing.T) *site {
	t.Helper()
	s.pool.DiscardAll()
	s.close()
	return openSite(t, s.dir, false)
}

func mk(id, v int64) tuple.Tuple {
	return tuple.MustMake(testDesc(), tuple.VInt(id), tuple.VInt(v))
}

// currentIDs scans the table at current visibility.
func currentIDs(t *testing.T, s *site) []int64 {
	t.Helper()
	rows, err := exec.Drain(exec.NewSeqScan(s.store, exec.ScanSpec{Table: 1, Vis: exec.Current}))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r.Key(testDesc())
	}
	return out
}

func TestRestartRedoesCommittedWork(t *testing.T) {
	dir := t.TempDir()
	s := openSite(t, dir, true)
	// Commit two transactions; their COMMIT records are forced but no data
	// page ever reaches disk.
	for i := int64(1); i <= 2; i++ {
		if _, err := s.store.InsertTuple(version.TxnID(i), 1, mk(i, i*10)); err != nil {
			t.Fatal(err)
		}
		if err := s.store.Prepare(version.TxnID(i), true); err != nil {
			t.Fatal(err)
		}
		if err := s.store.Commit(version.TxnID(i), tuple.Timestamp(i), true, true); err != nil {
			t.Fatal(err)
		}
	}
	s2 := s.crash(t)
	if got := currentIDs(t, s2); len(got) != 0 {
		t.Fatalf("pre-recovery disk state should be empty, got %v", got)
	}
	st, err := Recover(s2.mgr, s2.pool, s2.log, AbortAllResolver)
	if err != nil {
		t.Fatal(err)
	}
	if st.RedoApplied == 0 {
		t.Fatal("redo applied nothing")
	}
	if got := currentIDs(t, s2); len(got) != 2 {
		t.Fatalf("after recovery: %v", got)
	}
	// Timestamps restored exactly.
	rows, err := exec.Drain(exec.NewSeqScan(s2.store, exec.ScanSpec{Table: 1, Vis: exec.SeeDeleted}))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.InsTS() != r.Key(testDesc()) {
			t.Fatalf("timestamp not redone: %s", r)
		}
	}
	// Index rebuilt.
	tb, _ := s2.mgr.Get(1)
	if tb.Index.Len() != 2 {
		t.Fatalf("index len %d", tb.Index.Len())
	}
}

func TestRestartUndoesLoser(t *testing.T) {
	dir := t.TempDir()
	s := openSite(t, dir, true)
	// Committed baseline.
	if _, err := s.store.InsertTuple(1, 1, mk(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.store.Commit(1, 5, true, true); err != nil {
		t.Fatal(err)
	}
	// Loser: inserts, is never prepared, and its records reach the durable
	// log (forced via an unrelated commit-path flush), then crash.
	if _, err := s.store.InsertTuple(2, 1, mk(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// STEAL: push the loser's dirty page to disk to prove undo handles it.
	if err := s.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	s2 := s.crash(t)
	st, err := Recover(s2.mgr, s2.pool, s2.log, AbortAllResolver)
	if err != nil {
		t.Fatal(err)
	}
	if st.Losers != 1 || st.UndoApplied == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if got := currentIDs(t, s2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("after recovery: %v", got)
	}
	// No uncommitted garbage visible even to SEE DELETED.
	rows, err := exec.Drain(exec.NewSeqScan(s2.store, exec.ScanSpec{Table: 1, Vis: exec.SeeDeleted}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("loser tuple physically present: %v", rows)
	}
}

func TestRestartResolvesInDoubtCommit(t *testing.T) {
	dir := t.TempDir()
	s := openSite(t, dir, true)
	// Baseline committed tuple that the in-doubt txn deletes.
	if _, err := s.store.InsertTuple(1, 1, mk(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.store.Commit(1, 5, true, true); err != nil {
		t.Fatal(err)
	}
	tb, _ := s.mgr.Get(1)
	rid := tb.Index.Lookup(1)[0]
	// In-doubt txn: insert + delete, prepared (forced), no commit record.
	if _, err := s.store.InsertTuple(2, 1, mk(2, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.store.DeleteTuple(2, 1, rid); err != nil {
		t.Fatal(err)
	}
	if err := s.store.Prepare(2, true); err != nil {
		t.Fatal(err)
	}
	s2 := s.crash(t)
	resolver := func(txn int64, state wal.TxnState) (Outcome, error) {
		if txn != 2 {
			return Outcome{}, errors.New("unexpected txn")
		}
		return Outcome{Commit: true, CommitTS: 9}, nil
	}
	st, err := Recover(s2.mgr, s2.pool, s2.log, resolver)
	if err != nil {
		t.Fatal(err)
	}
	if st.InDoubt != 1 || st.Committed == 0 {
		t.Fatalf("stats: %+v", st)
	}
	// The in-doubt commit completed: key 2 visible with ins=9, key 1
	// deleted at 9.
	rows, err := exec.Drain(exec.NewSeqScan(s2.store, exec.ScanSpec{Table: 1, Vis: exec.SeeDeleted}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	for _, r := range rows {
		switch r.Key(testDesc()) {
		case 1:
			if r.DelTS() != 9 {
				t.Fatalf("deletion intent not completed: %s", r)
			}
		case 2:
			if r.InsTS() != 9 {
				t.Fatalf("insert not stamped: %s", r)
			}
		}
	}
	// Historical query sees the pre-commit world.
	old, err := exec.Drain(exec.NewSeqScan(s2.store, exec.ScanSpec{Table: 1, Vis: exec.Historical, AsOf: 8}))
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 1 || old[0].Key(testDesc()) != 1 {
		t.Fatalf("time travel after in-doubt commit: %v", old)
	}
}

func TestRestartResolvesInDoubtAbort(t *testing.T) {
	dir := t.TempDir()
	s := openSite(t, dir, true)
	if _, err := s.store.InsertTuple(2, 1, mk(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.store.Prepare(2, true); err != nil {
		t.Fatal(err)
	}
	s2 := s.crash(t)
	st, err := Recover(s2.mgr, s2.pool, s2.log, AbortAllResolver)
	if err != nil {
		t.Fatal(err)
	}
	if st.InDoubt != 1 || st.Losers != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if got := currentIDs(t, s2); len(got) != 0 {
		t.Fatalf("aborted in-doubt txn visible: %v", got)
	}
}

func TestRestartPreparedToCommitState(t *testing.T) {
	dir := t.TempDir()
	s := openSite(t, dir, true)
	if _, err := s.store.InsertTuple(3, 1, mk(3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.store.Prepare(3, true); err != nil {
		t.Fatal(err)
	}
	if err := s.store.PrepareToCommit(3, 7, true); err != nil {
		t.Fatal(err)
	}
	s2 := s.crash(t)
	var sawPTC bool
	resolver := func(txn int64, state wal.TxnState) (Outcome, error) {
		if PreparedToCommit(state) {
			sawPTC = true
			// Canonical 3PC consensus: prepared-to-commit resolves to
			// commit with the carried time.
			return Outcome{Commit: true, CommitTS: 7}, nil
		}
		return Outcome{}, nil
	}
	if _, err := Recover(s2.mgr, s2.pool, s2.log, resolver); err != nil {
		t.Fatal(err)
	}
	if !sawPTC {
		t.Fatal("resolver never saw the prepared-to-commit state")
	}
	if got := currentIDs(t, s2); len(got) != 1 || got[0] != 3 {
		t.Fatalf("after PTC commit: %v", got)
	}
}

func TestCheckpointBoundsRedoWork(t *testing.T) {
	dir := t.TempDir()
	s := openSite(t, dir, true)
	// 40 committed transactions; checkpoint (with page flush) after 20.
	for i := int64(1); i <= 40; i++ {
		if _, err := s.store.InsertTuple(version.TxnID(i), 1, mk(i, 0)); err != nil {
			t.Fatal(err)
		}
		if err := s.store.Commit(version.TxnID(i), tuple.Timestamp(i), true, true); err != nil {
			t.Fatal(err)
		}
		if i == 20 {
			if err := s.pool.FlushAll(); err != nil {
				t.Fatal(err)
			}
			tb, _ := s.mgr.Get(1)
			if err := tb.Heap.SyncData(); err != nil {
				t.Fatal(err)
			}
			if err := Checkpoint(dir, s.log, s.pool, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	s2 := s.crash(t)
	st, err := Recover(s2.mgr, s2.pool, s2.log, AbortAllResolver)
	if err != nil {
		t.Fatal(err)
	}
	if got := currentIDs(t, s2); len(got) != 40 {
		t.Fatalf("after recovery: %d rows", len(got))
	}
	// Analysis starts at the checkpoint: it must see far fewer records than
	// 40 transactions' full history.
	if st.AnalysisRecords > 90 {
		t.Fatalf("analysis scanned %d records; checkpoint not honoured", st.AnalysisRecords)
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := openSite(t, dir, true)
	for i := int64(1); i <= 5; i++ {
		if _, err := s.store.InsertTuple(version.TxnID(i), 1, mk(i, 0)); err != nil {
			t.Fatal(err)
		}
		if err := s.store.Commit(version.TxnID(i), tuple.Timestamp(i), true, true); err != nil {
			t.Fatal(err)
		}
	}
	s2 := s.crash(t)
	if _, err := Recover(s2.mgr, s2.pool, s2.log, AbortAllResolver); err != nil {
		t.Fatal(err)
	}
	first := currentIDs(t, s2)
	// Crash again immediately and re-recover: repeating history must be
	// idempotent.
	s3 := s2.crash(t)
	if _, err := Recover(s3.mgr, s3.pool, s3.log, AbortAllResolver); err != nil {
		t.Fatal(err)
	}
	second := currentIDs(t, s3)
	if len(first) != 5 || len(second) != 5 {
		t.Fatalf("idempotence broken: %v vs %v", first, second)
	}
}

func TestRecoverEmptyLog(t *testing.T) {
	dir := t.TempDir()
	s := openSite(t, dir, true)
	st, err := Recover(s.mgr, s.pool, s.log, AbortAllResolver)
	if err != nil {
		t.Fatal(err)
	}
	if st.RedoApplied != 0 || st.Losers != 0 {
		t.Fatalf("empty-log recovery did work: %+v", st)
	}
}
