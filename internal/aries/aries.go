// Package aries implements the log-based recovery baseline of the thesis: a
// faithful three-pass ARIES [Mohan et al. 1992] restart over the segmented
// heap files — an analysis pass from the last checkpoint to rebuild the
// transaction and dirty-page tables, a redo pass that repeats history from
// the earliest recovery LSN, and an undo pass that rolls back loser
// transactions in reverse LSN order writing compensation log records.
//
// Distributed in-doubt transactions (prepared under 2PC, or
// prepared-to-commit under canonical 3PC) are resolved through a caller-
// supplied Resolver that asks the coordinator for the outcome; a committed
// outcome is completed by performing the commit-time timestamp stamping that
// §6.1.7 describes (the insertion and deletion lists are reconstructed from
// the transaction's RecInsert and RecDeleteIntent records).
//
// As in the thesis (§6.1.7) this is the canonical algorithm without the
// later industrial optimizations (no Fast-Start-style incremental
// checkpointing, no access during redo).
package aries

import (
	"fmt"
	"time"

	"harbor/internal/buffer"
	"harbor/internal/page"
	"harbor/internal/storage"
	"harbor/internal/tuple"
	"harbor/internal/wal"
)

// Outcome is a resolver's verdict for an in-doubt transaction.
type Outcome struct {
	Commit   bool
	CommitTS tuple.Timestamp
}

// Resolver determines the fate of an in-doubt (prepared) transaction,
// typically by asking the coordinator. state distinguishes prepared from
// prepared-to-commit.
type Resolver func(txn int64, state wal.TxnState) (Outcome, error)

// AbortAllResolver implements the conventional presumed-abort rule ("if no
// information, then abort", §4.3.3): every in-doubt transaction aborts.
var AbortAllResolver Resolver = func(int64, wal.TxnState) (Outcome, error) {
	return Outcome{Commit: false}, nil
}

// Stats reports what a restart did.
type Stats struct {
	AnalysisRecords int
	RedoRecords     int
	RedoApplied     int
	UndoApplied     int
	Losers          int
	InDoubt         int
	Committed       int

	AnalysisTime time.Duration
	RedoTime     time.Duration
	UndoTime     time.Duration
	Total        time.Duration
}

// txnInfo is the analysis-pass transaction table entry.
type txnInfo struct {
	state wal.TxnState
	// preparedToCommit distinguishes canonical-3PC's prepared-to-commit
	// state from plain prepared; resolvers receive it so a consensus
	// protocol can decide commit without the coordinator.
	preparedToCommit bool
	lastLSN          page.LSN
	commitTS         tuple.Timestamp
	inserts          []listEntry
	deletes          []listEntry
}

type listEntry struct {
	rid page.RecordID
	seg int32
}

// Recover runs the full ARIES restart sequence against a reopened site:
// storage manager, a fresh buffer pool, and the reopened log. It returns
// restart statistics. On success the buffer pool is flushed, a fresh
// checkpoint is recorded, and the key indexes — maintained incrementally
// during redo/undo — are consistent with the restored pages.
func Recover(mgr *storage.Manager, pool *buffer.Pool, log *wal.Manager, resolve Resolver) (*Stats, error) {
	start := time.Now()
	st := &Stats{}

	// ---- Analysis ----
	t0 := time.Now()
	master, err := wal.ReadMaster(mgr.Dir())
	if err != nil {
		return nil, err
	}
	tt := map[int64]*txnInfo{}
	dpt := map[page.ID]page.LSN{}
	startLSN := master
	if startLSN == 0 {
		startLSN = 1
	}
	// If a checkpoint exists, seed the tables from it first.
	if master > 0 {
		rec, err := log.ReadAt(master)
		if err != nil {
			return nil, fmt.Errorf("aries: reading checkpoint at %d: %w", master, err)
		}
		if rec.Type != wal.RecCheckpoint {
			return nil, fmt.Errorf("aries: master LSN %d is a %v, not a checkpoint", master, rec.Type)
		}
		for _, dp := range rec.DirtyPages {
			dpt[dp.Page] = dp.RecLSN
		}
		for _, tx := range rec.ActiveTxns {
			tt[tx.Txn] = &txnInfo{state: tx.State, lastLSN: tx.LastLSN}
		}
	}
	err = log.Iter(startLSN, func(r *wal.Record) (bool, error) {
		st.AnalysisRecords++
		if r.Type == wal.RecCheckpoint || r.Type == wal.RecAlloc {
			return true, nil
		}
		ti := tt[r.Txn]
		if ti == nil {
			ti = &txnInfo{state: wal.TxnActive}
			tt[r.Txn] = ti
		}
		ti.lastLSN = r.LSN
		switch r.Type {
		case wal.RecInsert, wal.RecDelete, wal.RecSetField, wal.RecCLR:
			if _, ok := dpt[r.Page]; !ok {
				dpt[r.Page] = r.LSN
			}
			if r.Type == wal.RecInsert {
				ti.inserts = append(ti.inserts, listEntry{rid: page.RecordID{Page: r.Page, Slot: int(r.Slot)}, seg: r.SegIdx})
			}
		case wal.RecDeleteIntent:
			ti.deletes = append(ti.deletes, listEntry{rid: page.RecordID{Page: r.Page, Slot: int(r.Slot)}, seg: r.SegIdx})
		case wal.RecPrepare:
			ti.state = wal.TxnPrepared
		case wal.RecPrepareToCommit:
			ti.state = wal.TxnPrepared
			ti.preparedToCommit = true
			ti.commitTS = r.CommitTS
		case wal.RecCommit:
			ti.state = wal.TxnCommitted
			ti.commitTS = r.CommitTS
		case wal.RecAbort:
			ti.state = wal.TxnAborted
		case wal.RecEnd:
			delete(tt, r.Txn)
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	st.AnalysisTime = time.Since(t0)

	// ---- Redo: repeat history from the earliest recLSN ----
	t0 = time.Now()
	redoLSN := page.LSN(0)
	for _, rec := range dpt {
		if redoLSN == 0 || rec < redoLSN {
			redoLSN = rec
		}
	}
	if redoLSN > 0 {
		err = log.Iter(redoLSN, func(r *wal.Record) (bool, error) {
			st.RedoRecords++
			return true, applyRedo(mgr, pool, dpt, r, st)
		})
		if err != nil {
			return nil, err
		}
	}
	st.RedoTime = time.Since(t0)

	// ---- Undo losers; resolve in-doubt transactions ----
	t0 = time.Now()
	for txn, ti := range tt {
		switch ti.state {
		case wal.TxnCommitted:
			// COMMIT logged but END missing: nothing to undo.
			st.Committed++
			log.Append(&wal.Record{Type: wal.RecEnd, Txn: txn, PrevLSN: ti.lastLSN})
		case wal.TxnPrepared:
			st.InDoubt++
			resolveState := ti.state
			if ti.preparedToCommit {
				resolveState = wal.TxnState(ptcState)
			}
			out, err := resolve(txn, resolveState)
			if err != nil {
				return nil, fmt.Errorf("aries: resolving in-doubt txn %d: %w", txn, err)
			}
			if out.Commit {
				if err := completeCommit(mgr, pool, log, txn, ti, out.CommitTS); err != nil {
					return nil, err
				}
				st.Committed++
			} else {
				if err := undoTxn(mgr, pool, log, txn, ti, st); err != nil {
					return nil, err
				}
				st.Losers++
			}
		default: // active or aborted-with-unfinished-undo
			if err := undoTxn(mgr, pool, log, txn, ti, st); err != nil {
				return nil, err
			}
			st.Losers++
		}
	}
	st.UndoTime = time.Since(t0)

	// ---- Finish: make the recovered state durable and re-checkpoint ----
	for _, id := range mgr.IDs() {
		tb, err := mgr.Get(id)
		if err != nil {
			return nil, err
		}
		tb.Heap.ClearUncommittedBound()
	}
	if err := pool.FlushAll(); err != nil {
		return nil, err
	}
	for _, id := range mgr.IDs() {
		tb, err := mgr.Get(id)
		if err != nil {
			return nil, err
		}
		if err := tb.Heap.SyncData(); err != nil {
			return nil, err
		}
		if err := tb.Heap.FlushMeta(); err != nil {
			return nil, err
		}
	}
	if err := Checkpoint(mgr.Dir(), log, pool, nil); err != nil {
		return nil, err
	}
	st.Total = time.Since(start)
	return st, nil
}

// ptcState is the wal.TxnState value handed to resolvers for transactions
// that reached canonical-3PC's prepared-to-commit state.
const ptcState = 100

// PreparedToCommit reports whether a resolver's state argument denotes the
// prepared-to-commit state.
func PreparedToCommit(state wal.TxnState) bool { return state == ptcState }

// keyOf extracts the tuple-identifier field from a raw slot image.
func keyOf(tb *storage.Table, raw []byte) (int64, error) {
	desc := tb.Heap.Desc()
	t, err := tuple.Decode(desc, raw)
	if err != nil {
		return 0, err
	}
	return t.Key(desc), nil
}

// applyRedo repeats history for one record if its page needs it.
func applyRedo(mgr *storage.Manager, pool *buffer.Pool, dpt map[page.ID]page.LSN, r *wal.Record, st *Stats) error {
	switch r.Type {
	case wal.RecAlloc:
		tb, err := mgr.Get(r.Page.Table)
		if err != nil {
			return err
		}
		tb.Heap.EnsureAllocated(r.Page.PageNo, r.SegIdx)
		return nil
	case wal.RecInsert, wal.RecDelete, wal.RecSetField, wal.RecCLR:
	default:
		return nil
	}
	recLSN, ok := dpt[r.Page]
	if !ok || r.LSN < recLSN {
		return nil
	}
	tb, err := mgr.Get(r.Page.Table)
	if err != nil {
		return err
	}
	// The page may never have been allocated in the durable meta.
	if tb.Heap.SegmentFor(r.Page.PageNo) < 0 {
		tb.Heap.EnsureAllocated(r.Page.PageNo, r.SegIdx)
	}
	f, err := pool.GetPageNoLock(r.Page)
	if err != nil {
		return err
	}
	defer pool.Unpin(f, true, r.LSN)
	f.Latch.Lock()
	defer f.Latch.Unlock()
	if f.Page.LSN() >= r.LSN {
		return nil // already reflects this record
	}
	// The key index is maintained incrementally alongside physical redo
	// (it was rebuilt from the on-disk state when the site reopened, so
	// only the re-applied changes need folding in).
	rid := page.RecordID{Page: r.Page, Slot: int(r.Slot)}
	removeIndexed := func() error {
		if !f.Page.Used(int(r.Slot)) {
			return nil
		}
		raw, err := f.Page.Slot(int(r.Slot))
		if err != nil {
			return err
		}
		key, err := keyOf(tb, raw)
		if err != nil {
			return err
		}
		tb.Index.Remove(key, rid)
		return nil
	}
	switch r.Type {
	case wal.RecInsert:
		if err := f.Page.InsertAt(int(r.Slot), r.Image); err != nil {
			return err
		}
		key, err := keyOf(tb, r.Image)
		if err != nil {
			return err
		}
		tb.Index.Remove(key, rid) // in case the open-scan already saw it
		tb.Index.Add(key, rid)
	case wal.RecDelete:
		if f.Page.Used(int(r.Slot)) {
			if err := removeIndexed(); err != nil {
				return err
			}
			if err := f.Page.Delete(int(r.Slot)); err != nil {
				return err
			}
		}
	case wal.RecSetField:
		if err := f.Page.WriteInt64At(int(r.Slot), int(r.FieldOff), r.After); err != nil {
			return err
		}
		stampStats(tb.Heap, r.Page.PageNo, int(r.FieldOff), r.After)
	case wal.RecCLR:
		if r.FieldOff < 0 {
			if f.Page.Used(int(r.Slot)) {
				if err := removeIndexed(); err != nil {
					return err
				}
				if err := f.Page.Delete(int(r.Slot)); err != nil {
					return err
				}
			}
		} else {
			if err := f.Page.WriteInt64At(int(r.Slot), int(r.FieldOff), r.After); err != nil {
				return err
			}
		}
	}
	f.Page.SetLSN(r.LSN)
	st.RedoApplied++
	return nil
}

// stampStats folds a redone timestamp stamping into segment bounds.
func stampStats(h *storage.HeapFile, pageNo int32, fieldOff int, value int64) {
	if value <= 0 || value == tuple.Uncommitted {
		return
	}
	seg := h.SegmentFor(pageNo)
	if seg < 0 {
		return
	}
	// Field offsets 0 and 8 are the insertion and deletion timestamps of
	// every schema (reserved fields).
	switch fieldOff {
	case 0:
		h.OnCommitStamp(seg, value, 0)
	case 8:
		h.OnCommitStamp(seg, 0, value)
	}
}

// undoTxn rolls back one loser transaction with CLRs, then logs ABORT+END.
func undoTxn(mgr *storage.Manager, pool *buffer.Pool, log *wal.Manager, txn int64, ti *txnInfo, st *Stats) error {
	lsn := ti.lastLSN
	last := ti.lastLSN
	for lsn != 0 {
		rec, err := log.ReadAt(lsn)
		if err != nil {
			return err
		}
		switch rec.Type {
		case wal.RecInsert:
			clr := log.Append(&wal.Record{
				Type: wal.RecCLR, Txn: txn, PrevLSN: last,
				Page: rec.Page, Slot: rec.Slot, FieldOff: -1, UndoNext: rec.PrevLSN,
			})
			last = clr
			tb, err := mgr.Get(rec.Page.Table)
			if err != nil {
				return err
			}
			if err := applyPage(pool, rec.Page, clr, func(p *page.Page) error {
				if p.Used(int(rec.Slot)) {
					raw, err := p.Slot(int(rec.Slot))
					if err == nil {
						if key, kerr := keyOf(tb, raw); kerr == nil {
							tb.Index.Remove(key, page.RecordID{Page: rec.Page, Slot: int(rec.Slot)})
						}
					}
					return p.Delete(int(rec.Slot))
				}
				return nil
			}); err != nil {
				return err
			}
			st.UndoApplied++
			lsn = rec.PrevLSN
		case wal.RecSetField:
			clr := log.Append(&wal.Record{
				Type: wal.RecCLR, Txn: txn, PrevLSN: last,
				Page: rec.Page, Slot: rec.Slot, FieldOff: rec.FieldOff,
				After: rec.Before, UndoNext: rec.PrevLSN,
			})
			last = clr
			if err := applyPage(pool, rec.Page, clr, func(p *page.Page) error {
				return p.WriteInt64At(int(rec.Slot), int(rec.FieldOff), rec.Before)
			}); err != nil {
				return err
			}
			st.UndoApplied++
			lsn = rec.PrevLSN
		case wal.RecCLR:
			lsn = rec.UndoNext
		default:
			lsn = rec.PrevLSN
		}
	}
	log.Append(&wal.Record{Type: wal.RecAbort, Txn: txn, PrevLSN: last})
	log.Append(&wal.Record{Type: wal.RecEnd, Txn: txn})
	return nil
}

// completeCommit finishes an in-doubt transaction whose outcome is commit:
// the commit-time stamping is performed now (logged), then COMMIT and END.
func completeCommit(mgr *storage.Manager, pool *buffer.Pool, log *wal.Manager, txn int64, ti *txnInfo, ts tuple.Timestamp) error {
	last := ti.lastLSN
	stamp := func(e listEntry, fieldOff int, before int64) error {
		lsn := log.Append(&wal.Record{
			Type: wal.RecSetField, Txn: txn, PrevLSN: last,
			Page: e.rid.Page, Slot: int32(e.rid.Slot), FieldOff: int32(fieldOff),
			Before: before, After: int64(ts),
		})
		last = lsn
		tb, err := mgr.Get(e.rid.Page.Table)
		if err != nil {
			return err
		}
		if err := applyPage(pool, e.rid.Page, lsn, func(p *page.Page) error {
			return p.WriteInt64At(e.rid.Slot, fieldOff, int64(ts))
		}); err != nil {
			return err
		}
		stampStats(tb.Heap, e.rid.Page.PageNo, fieldOff, int64(ts))
		return nil
	}
	for _, e := range ti.inserts {
		if err := stamp(e, 0, int64(tuple.Uncommitted)); err != nil {
			return err
		}
	}
	for _, e := range ti.deletes {
		if err := stamp(e, 8, int64(tuple.NotDeleted)); err != nil {
			return err
		}
	}
	lsn := log.Append(&wal.Record{Type: wal.RecCommit, Txn: txn, PrevLSN: last, CommitTS: ts})
	if err := log.Force(lsn, true); err != nil {
		return err
	}
	log.Append(&wal.Record{Type: wal.RecEnd, Txn: txn})
	return nil
}

// applyPage runs a mutation on a pooled page under its latch, stamping the
// pageLSN and marking it dirty.
func applyPage(pool *buffer.Pool, pid page.ID, lsn page.LSN, fn func(*page.Page) error) error {
	f, err := pool.GetPageNoLock(pid)
	if err != nil {
		return err
	}
	f.Latch.Lock()
	err = fn(f.Page)
	if err == nil {
		f.Page.SetLSN(lsn)
	}
	f.Latch.Unlock()
	pool.Unpin(f, true, lsn)
	return err
}

// Checkpoint writes a fuzzy ARIES checkpoint: one RecCheckpoint record
// carrying the dirty-page table and the transaction table, forced to disk,
// with the master record updated to point at it. activeTxns may be nil
// (restart-time checkpoint with no live transactions).
func Checkpoint(dir string, log *wal.Manager, pool *buffer.Pool, activeTxns []wal.TxnStatus) error {
	rec := &wal.Record{
		Type:       wal.RecCheckpoint,
		DirtyPages: pool.DirtyPages(),
		ActiveTxns: activeTxns,
	}
	lsn := log.Append(rec)
	if err := log.Force(lsn, false); err != nil {
		return err
	}
	return wal.WriteMaster(dir, lsn)
}
