package txn

import (
	"testing"

	"harbor/internal/wire"
)

func TestPlansValidate(t *testing.T) {
	ps := Protocols()
	if len(ps) != 5 {
		t.Fatalf("registry has %d protocols, want 5", len(ps))
	}
	for _, p := range ps {
		pl := p.Plan()
		if pl == nil {
			t.Fatalf("%v: nil plan", p)
		}
		if pl.Protocol != p {
			t.Errorf("%v: plan registered under wrong protocol %v", p, pl.Protocol)
		}
		if err := pl.Validate(); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

func TestPlanDerivedCostsMatchTable42(t *testing.T) {
	// Table 4.2, plus the early-vote 1PC extension's profile.
	want := map[Protocol]Cost{
		TwoPC:        {MessagesPerWorker: 4, CoordForcedWrites: 1, WorkerForcedWrites: 2},
		OptTwoPC:     {MessagesPerWorker: 4, CoordForcedWrites: 1, WorkerForcedWrites: 0},
		ThreePC:      {MessagesPerWorker: 6, CoordForcedWrites: 0, WorkerForcedWrites: 3},
		OptThreePC:   {MessagesPerWorker: 6, CoordForcedWrites: 0, WorkerForcedWrites: 0},
		EarlyVote1PC: {MessagesPerWorker: 2, CoordForcedWrites: 0, WorkerForcedWrites: 0},
	}
	for p, w := range want {
		if got := p.ExpectedCost(); got != w {
			t.Errorf("%v: derived cost %+v, want %+v", p, got, w)
		}
	}
}

func TestPlanDerivedFlags(t *testing.T) {
	cases := []struct {
		p                                 Protocol
		workerLogs, coordLogs, threePhase bool
	}{
		{TwoPC, true, true, false},
		{OptTwoPC, false, true, false},
		{ThreePC, true, false, true},
		{OptThreePC, false, false, true},
		{EarlyVote1PC, false, false, false},
	}
	for _, c := range cases {
		if c.p.WorkerLogs() != c.workerLogs {
			t.Errorf("%v.WorkerLogs() = %v", c.p, c.p.WorkerLogs())
		}
		if c.p.CoordinatorLogs() != c.coordLogs {
			t.Errorf("%v.CoordinatorLogs() = %v", c.p, c.p.CoordinatorLogs())
		}
		if c.p.ThreePhase() != c.threePhase {
			t.Errorf("%v.ThreePhase() = %v", c.p, c.p.ThreePhase())
		}
	}
}

func TestPlanValidateRejectsBrokenPlans(t *testing.T) {
	broken := []Plan{
		{Protocol: Protocol(90)}, // no rounds
		{Protocol: Protocol(91), Rounds: []Round{ // two commit points
			{Msg: wire.MsgCommit, CommitBefore: true, CommitAfter: true, NextState: StateCommitted},
		}},
		{Protocol: Protocol(92), Rounds: []Round{ // vote after decision
			{Msg: wire.MsgCommit, CommitBefore: true, NextState: StateCommitted},
			{Msg: wire.MsgPrepare, Vote: true, NextState: StateCommitted},
		}},
		{Protocol: Protocol(93), Rounds: []Round{ // ts before issue
			{Msg: wire.MsgPrepare, Vote: true, CarryTS: true, NextState: StatePreparedYes},
			{Msg: wire.MsgCommit, CommitBefore: true, NextState: StateCommitted},
		}},
		{Protocol: Protocol(94), Rounds: []Round{ // forces a log it does not keep
			{Msg: wire.MsgCommit, CoordForce: true, CommitBefore: true, NextState: StateCommitted},
		}},
		{Protocol: Protocol(95), Consensus: true, Rounds: []Round{ // consensus without PTC
			{Msg: wire.MsgCommit, CommitBefore: true, NextState: StateCommitted},
		}},
		{Protocol: Protocol(96), Rounds: []Round{ // final round not committed
			{Msg: wire.MsgPrepare, CommitBefore: true, NextState: StatePreparedYes},
		}},
	}
	for _, pl := range broken {
		pl := pl
		if err := pl.Validate(); err == nil {
			t.Errorf("%v: Validate accepted a broken plan", pl.Protocol)
		}
	}
}
