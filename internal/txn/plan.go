// Commit-protocol phase plans. §4.3 presents the four commit protocols as
// variations of one structure — rounds of coordinator→worker messages that
// differ only in their force-write points, lock-release points, and where
// the commit point lands (Table 4.2). A Plan captures exactly that
// structure declaratively: the coordinator executes the rounds generically
// over its fan-out layer, workers dispatch per-message handlers whose force
// decisions come from the plan, and the Table 4.2 cost profile is *derived*
// from the rounds, so the cost model cannot drift from the implementation.
//
// Adding a protocol is: one Protocol constant, one Plan literal registered
// here, and (only if it introduces a new wire message) one worker handler.
package txn

import (
	"fmt"

	"harbor/internal/wire"
)

// Round is one coordinator-driven message round of a commit protocol: the
// coordinator fans Msg out to every (still live) participant and collects
// one response per worker. The flags place the protocol's force-writes and
// its commit point relative to the round, per Figures 4-2/4-3/4-4.
type Round struct {
	// Msg is the wire message kind the round sends.
	Msg wire.Type
	// Vote marks a voting round: responses are votes, and any NO — or any
	// silent/failed worker, per the §4.3.2 failure rule — aborts the
	// transaction. The commit timestamp is issued only after the last
	// voting round, since only then is the transaction decided.
	Vote bool
	// CarryTS attaches the commit timestamp to the request.
	CarryTS bool
	// Participants attaches the participant site list (the 3PC worker set
	// that seeds the §4.3.3 consensus building protocol).
	Participants bool
	// WorkerForce makes workers force-write their log on receipt (before
	// answering). Zero across a plan ⇒ the protocol is worker-logless.
	WorkerForce bool
	// CoordForce makes the coordinator force-write its COMMIT record
	// before sending the round (the 2PC commit point, Figure 4-2).
	CoordForce bool
	// CommitBefore records the transaction outcome at the coordinator
	// before the round is sent: the commit point precedes the round.
	CommitBefore bool
	// CommitAfter records the outcome after the round's barrier: the
	// commit point is "every live worker acked this round" (3PC's
	// prepared-to-commit round, §4.3.3).
	CommitAfter bool
	// NextState is the worker state the round transitions a participant to
	// (Figure 4-5). Terminal states release the transaction's locks.
	NextState State
}

// Plan is the declarative description of one commit protocol. The zero
// Plan is invalid; obtain plans through PlanFor or Protocol.Plan.
type Plan struct {
	Protocol Protocol
	// Rounds run in order on the commit path. The abort path is uniform
	// across protocols — force an ABORT record iff CoordLogs, send one
	// ABORT round, write the unforced END — so it needs no declaration.
	Rounds []Round
	// CoordLogs: the coordinator keeps a WAL and its commit point is a
	// forced log record (the 2PC protocols; 3PC coordinators never log,
	// §4.3.3 footnote 1).
	CoordLogs bool
	// Consensus: workers resolve a dead coordinator through the §4.3.3
	// consensus building protocol (requires the prepared-to-commit state;
	// plans without it block on the coordinator's outcome service).
	Consensus bool
	// EarlyVote: worker YES votes are implicit in the per-operation acks
	// (the 1PC fast path of Zhu et al., "To Vote Before Decide"). A
	// pending worker that did writes may then NOT unilaterally abort when
	// orphaned — the commit point may already have passed without any
	// prepare round — so orphan resolution must block on the coordinator
	// outcome. This is the fast path's documented caveat vs §4.3.3: it
	// re-introduces blocking and forfeits worker-side consensus.
	EarlyVote bool
}

// plans is the protocol registry. Extending the system with a new commit
// protocol means appending here (see EarlyVote1PC for the template).
var plans = map[Protocol]*Plan{
	// Traditional 2PC (Figure 4-2): workers force PREPARE and COMMIT, the
	// coordinator forces COMMIT at the commit point.
	TwoPC: {
		Protocol:  TwoPC,
		CoordLogs: true,
		Rounds: []Round{
			{Msg: wire.MsgPrepare, Vote: true, WorkerForce: true, NextState: StatePreparedYes},
			{Msg: wire.MsgCommit, CarryTS: true, CoordForce: true, CommitBefore: true,
				WorkerForce: true, NextState: StateCommitted},
		},
	},
	// Optimized 2PC (Figure 4-3): worker logging eliminated; only the
	// coordinator's forced COMMIT/ABORT remains.
	OptTwoPC: {
		Protocol:  OptTwoPC,
		CoordLogs: true,
		Rounds: []Round{
			{Msg: wire.MsgPrepare, Vote: true, NextState: StatePreparedYes},
			{Msg: wire.MsgCommit, CarryTS: true, CoordForce: true, CommitBefore: true,
				NextState: StateCommitted},
		},
	},
	// Canonical 3PC with logging (§4.3.3 footnote 1): workers force all
	// three records, the coordinator never logs, and the commit point is
	// the prepared-to-commit round's barrier.
	ThreePC: {
		Protocol:  ThreePC,
		Consensus: true,
		Rounds: []Round{
			{Msg: wire.MsgPrepare, Vote: true, Participants: true, WorkerForce: true,
				NextState: StatePreparedYes},
			{Msg: wire.MsgPrepareToCommit, CarryTS: true, WorkerForce: true, CommitAfter: true,
				NextState: StatePreparedToCommit},
			{Msg: wire.MsgCommit, CarryTS: true, WorkerForce: true, NextState: StateCommitted},
		},
	},
	// HARBOR's logless 3PC (Figure 4-4): the same rounds with every
	// force-write removed.
	OptThreePC: {
		Protocol:  OptThreePC,
		Consensus: true,
		Rounds: []Round{
			{Msg: wire.MsgPrepare, Vote: true, Participants: true, NextState: StatePreparedYes},
			{Msg: wire.MsgPrepareToCommit, CarryTS: true, CommitAfter: true,
				NextState: StatePreparedToCommit},
			{Msg: wire.MsgCommit, CarryTS: true, NextState: StateCommitted},
		},
	},
	// Early-vote logless 1PC (Zhu et al., "To Vote Before Decide"): the
	// YES votes arrived piggybacked on the per-operation acks, so commit
	// is a single round that both fixes the commit time and applies it.
	// Logless like HARBOR's 3PC, but blocking (see Plan.EarlyVote) —
	// experiment-gated, not a paper protocol.
	EarlyVote1PC: {
		Protocol:  EarlyVote1PC,
		EarlyVote: true,
		Rounds: []Round{
			{Msg: wire.MsgCommitFast, CarryTS: true, CommitBefore: true,
				NextState: StateCommitted},
		},
	},
}

// PlanFor returns the phase plan of a protocol, or nil for an unknown one.
func PlanFor(p Protocol) *Plan { return plans[p] }

// Plan returns the protocol's phase plan (nil for unknown protocols).
func (p Protocol) Plan() *Plan { return plans[p] }

// Protocols lists every registered protocol in ascending order.
func Protocols() []Protocol {
	out := make([]Protocol, 0, len(plans))
	for p := Protocol(0); p < Protocol(64); p++ {
		if _, ok := plans[p]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Round returns the plan's round for a message kind (nil if the plan has
// no such round) — the worker-side lookup for per-phase force decisions.
func (pl *Plan) Round(t wire.Type) *Round {
	for i := range pl.Rounds {
		if pl.Rounds[i].Msg == t {
			return &pl.Rounds[i]
		}
	}
	return nil
}

// WorkerForce reports whether workers force-write on receiving the given
// message kind under this plan.
func (pl *Plan) WorkerForce(t wire.Type) bool {
	r := pl.Round(t)
	return r != nil && r.WorkerForce
}

// WorkerForces reports whether any round forces at the workers — i.e.
// whether the protocol requires a worker-side WAL at all.
func (pl *Plan) WorkerForces() bool {
	for _, r := range pl.Rounds {
		if r.WorkerForce {
			return true
		}
	}
	return false
}

// NeedsParticipants reports whether any round ships the participant list.
func (pl *Plan) NeedsParticipants() bool {
	for _, r := range pl.Rounds {
		if r.Participants {
			return true
		}
	}
	return false
}

// ExpectedCost derives the Table 4.2 row from the plan: each round is one
// request plus one response per worker, and the forced-write columns count
// the rounds' force points. Because the executor and the worker handlers
// consume the same rounds, this figure cannot drift from the
// implementation (enforced by the cost-parity test).
func (pl *Plan) ExpectedCost() Cost {
	c := Cost{MessagesPerWorker: 2 * len(pl.Rounds)}
	for _, r := range pl.Rounds {
		if r.CoordForce {
			c.CoordForcedWrites++
		}
		if r.WorkerForce {
			c.WorkerForcedWrites++
		}
	}
	return c
}

// Validate checks the structural invariants every plan must satisfy; the
// executor relies on them. It is exercised over the registry by tests.
func (pl *Plan) Validate() error {
	if len(pl.Rounds) == 0 {
		return fmt.Errorf("plan %v: no rounds", pl.Protocol)
	}
	commitPoints := 0
	sawNonVote := false
	for i, r := range pl.Rounds {
		if r.CommitBefore {
			commitPoints++
		}
		if r.CommitAfter {
			commitPoints++
		}
		if r.Vote && sawNonVote {
			return fmt.Errorf("plan %v: vote round %d after the decision point", pl.Protocol, i)
		}
		if !r.Vote {
			sawNonVote = true
		}
		if r.Vote && r.CarryTS {
			return fmt.Errorf("plan %v: round %d carries a timestamp before one is issued", pl.Protocol, i)
		}
		if r.CoordForce && !pl.CoordLogs {
			return fmt.Errorf("plan %v: round %d forces a coordinator log the plan does not keep", pl.Protocol, i)
		}
		if r.CoordForce && !r.CommitBefore {
			return fmt.Errorf("plan %v: round %d forces COMMIT without recording the outcome", pl.Protocol, i)
		}
	}
	if commitPoints != 1 {
		return fmt.Errorf("plan %v: %d commit points, want exactly 1", pl.Protocol, commitPoints)
	}
	if pl.Consensus && pl.Round(wire.MsgPrepareToCommit) == nil {
		return fmt.Errorf("plan %v: consensus requires a prepared-to-commit round (§4.3.3)", pl.Protocol)
	}
	if last := pl.Rounds[len(pl.Rounds)-1]; last.NextState != StateCommitted {
		return fmt.Errorf("plan %v: final round leaves workers in %v", pl.Protocol, last.NextState)
	}
	return nil
}
