package txn

import (
	"sync"
	"testing"
)

func TestIDSourceUniqueAcrossSites(t *testing.T) {
	a := NewIDSource(1)
	b := NewIDSource(2)
	seen := map[ID]bool{}
	for i := 0; i < 1000; i++ {
		for _, s := range []*IDSource{a, b} {
			id := s.Next()
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
		}
	}
}

func TestIDSourceConcurrent(t *testing.T) {
	s := NewIDSource(3)
	var mu sync.Mutex
	seen := map[ID]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ID, 0, 200)
			for i := 0; i < 200; i++ {
				local = append(local, s.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate id %d", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestStateTerminal(t *testing.T) {
	for st, want := range map[State]bool{
		StatePending:          false,
		StatePreparedYes:      false,
		StatePreparedNo:       false,
		StatePreparedToCommit: false,
		StateCommitted:        true,
		StateAborted:          true,
	} {
		if st.Terminal() != want {
			t.Errorf("%v.Terminal() = %v", st, st.Terminal())
		}
		if st.String() == "" {
			t.Errorf("%d has no name", st)
		}
	}
}

func TestProtocolProperties(t *testing.T) {
	cases := []struct {
		p          Protocol
		workerLogs bool
		coordLogs  bool
		threePhase bool
	}{
		{TwoPC, true, true, false},
		{OptTwoPC, false, true, false},
		{ThreePC, true, false, true},
		{OptThreePC, false, false, true},
	}
	for _, c := range cases {
		if c.p.WorkerLogs() != c.workerLogs {
			t.Errorf("%v.WorkerLogs() = %v", c.p, c.p.WorkerLogs())
		}
		if c.p.CoordinatorLogs() != c.coordLogs {
			t.Errorf("%v.CoordinatorLogs() = %v", c.p, c.p.CoordinatorLogs())
		}
		if c.p.ThreePhase() != c.threePhase {
			t.Errorf("%v.ThreePhase() = %v", c.p, c.p.ThreePhase())
		}
	}
}

// TestExpectedCostMatchesTable42 pins the Table 4.2 rows.
func TestExpectedCostMatchesTable42(t *testing.T) {
	table := map[Protocol]Cost{
		TwoPC:      {MessagesPerWorker: 4, CoordForcedWrites: 1, WorkerForcedWrites: 2},
		OptTwoPC:   {MessagesPerWorker: 4, CoordForcedWrites: 1, WorkerForcedWrites: 0},
		ThreePC:    {MessagesPerWorker: 6, CoordForcedWrites: 0, WorkerForcedWrites: 3},
		OptThreePC: {MessagesPerWorker: 6, CoordForcedWrites: 0, WorkerForcedWrites: 0},
	}
	for p, want := range table {
		if got := p.ExpectedCost(); got != want {
			t.Errorf("%v cost = %+v, want %+v", p, got, want)
		}
	}
	if (Protocol(99)).ExpectedCost() != (Cost{}) {
		t.Error("unknown protocol should cost zero")
	}
}
