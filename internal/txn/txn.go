// Package txn defines the distributed-transaction vocabulary shared by
// coordinators, workers, and the consensus building protocol: transaction
// ids, the worker-side state machine of Figure 4-5, and the commit-protocol
// selection enum with its Table 4.2 cost profile.
package txn

import (
	"fmt"
	"sync/atomic"

	"harbor/internal/wire"
)

// ID is a globally unique transaction id. Coordinators allocate ids from an
// IDSource seeded with their site id so multiple coordinators never collide.
type ID = int64

// IDSource hands out transaction ids.
type IDSource struct {
	next atomic.Int64
}

// NewIDSource seeds an id source; ids embed the coordinator site in the
// high bits.
func NewIDSource(site int32) *IDSource {
	s := &IDSource{}
	s.next.Store(int64(site) << 40)
	return s
}

// Next returns a fresh transaction id.
func (s *IDSource) Next() ID { return s.next.Add(1) }

// State is the worker-side transaction state (Figure 4-5).
type State uint8

const (
	// StatePending: work received, not yet voted (a.k.a. unprepared).
	StatePending State = iota + 1
	// StatePreparedYes: voted YES in the first phase.
	StatePreparedYes
	// StatePreparedNo: voted NO in the first phase.
	StatePreparedNo
	// StatePreparedToCommit: 3PC's extra state; the commit time is known.
	StatePreparedToCommit
	// StateCommitted: commit applied.
	StateCommitted
	// StateAborted: rollback applied.
	StateAborted
)

// String renders the state.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StatePreparedYes:
		return "prepared(YES)"
	case StatePreparedNo:
		return "prepared(NO)"
	case StatePreparedToCommit:
		return "prepared-to-commit"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateCommitted || s == StateAborted }

// Protocol selects the distributed commit protocol (§4.3).
type Protocol uint8

const (
	// TwoPC is the traditional two-phase commit with write-ahead logging:
	// 1 coordinator forced-write, 2 per worker (Figure 4-2).
	TwoPC Protocol = iota + 1
	// OptTwoPC is HARBOR's optimized 2PC: worker logging eliminated, only
	// the coordinator's COMMIT/ABORT force remains (Figure 4-3).
	OptTwoPC
	// ThreePC is canonical non-blocking three-phase commit: workers log
	// (3 forced-writes), the coordinator does not (Figure 4-4 shape with
	// logging; §4.3.3 footnote 1).
	ThreePC
	// OptThreePC is HARBOR's logless 3PC: no forced-writes anywhere
	// (Figure 4-4).
	OptThreePC
	// EarlyVote1PC is the experiment-gated early-vote logless one-phase
	// fast path (Zhu et al., "To Vote Before Decide"): worker YES votes
	// piggyback on the per-operation acks, so commit is one round. Not a
	// paper protocol; see Plan.EarlyVote for its blocking caveat.
	EarlyVote1PC
)

// String renders the protocol name as used in the evaluation figures.
func (p Protocol) String() string {
	switch p {
	case TwoPC:
		return "traditional 2PC"
	case OptTwoPC:
		return "optimized 2PC"
	case ThreePC:
		return "canonical 3PC"
	case OptThreePC:
		return "optimized 3PC"
	case EarlyVote1PC:
		return "early-vote 1PC"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// WorkerLogs reports whether workers maintain a WAL under this protocol.
// Derived from the phase plan: any round with a worker force point.
func (p Protocol) WorkerLogs() bool {
	pl := p.Plan()
	return pl != nil && pl.WorkerForces()
}

// CoordinatorLogs reports whether the coordinator maintains a log.
func (p Protocol) CoordinatorLogs() bool {
	pl := p.Plan()
	return pl != nil && pl.CoordLogs
}

// ThreePhase reports whether the protocol has the prepared-to-commit round.
func (p Protocol) ThreePhase() bool {
	pl := p.Plan()
	return pl != nil && pl.Round(wire.MsgPrepareToCommit) != nil
}

// Cost is the Table 4.2 overhead profile of a protocol.
type Cost struct {
	MessagesPerWorker  int
	CoordForcedWrites  int
	WorkerForcedWrites int
}

// ExpectedCost returns the Table 4.2 row for a protocol, derived from its
// phase plan (zero Cost for unknown protocols).
func (p Protocol) ExpectedCost() Cost {
	pl := p.Plan()
	if pl == nil {
		return Cost{}
	}
	return pl.ExpectedCost()
}
