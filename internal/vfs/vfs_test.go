package vfs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target.dat")

	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, []byte("first")) {
		t.Fatalf("content = %q, want %q", got, "first")
	}

	// Replace leaves no temp file behind.
	if err := WriteFileAtomic(path, []byte("second, longer"), 0o644); err != nil {
		t.Fatalf("replace: %v", err)
	}
	got, _ = ReadFile(path)
	if !bytes.Equal(got, []byte("second, longer")) {
		t.Fatalf("content after replace = %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "nope"))
	if !os.IsNotExist(err) {
		t.Fatalf("want not-exist error, got %v", err)
	}
}

// countingFS proves the Swap seam routes package-level calls.
type countingFS struct {
	FS
	opens int
}

func (c *countingFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	c.opens++
	return c.FS.OpenFile(name, flag, perm)
}

func TestSwapRoutesCalls(t *testing.T) {
	c := &countingFS{FS: Current()}
	prev := Swap(c)
	defer Swap(prev)

	path := filepath.Join(t.TempDir(), "x")
	f, err := Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	f.Close()
	if c.opens != 1 {
		t.Fatalf("opens = %d, want 1", c.opens)
	}
}
