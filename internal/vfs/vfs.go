// Package vfs is the filesystem seam between HARBOR's storage layers and
// the operating system. Every durable structure (heap files, segment meta,
// checkpoints, the WAL and its master record) performs its I/O through the
// package-level functions here, which delegate to a swappable FS
// implementation. The default is a thin zero-cost wrapper over the os
// package; internal/faultdisk swaps in a seeded fault-injecting
// implementation the same way internal/faultnet swaps the comm dial hooks.
//
// The seam exists so the crash-consistency contract (DESIGN.md) is testable:
// torn writes, lying fsyncs, and crash points between the write/sync/rename
// steps of an atomic replace are only observable if all file I/O funnels
// through one interface.
package vfs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// File is the subset of *os.File the storage layers need. ReadAt/WriteAt
// serve page I/O, Write serves append-style WAL batches, Sync is the
// durability point, Truncate/Seek serve WAL torn-tail cleanup.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Name() string
}

// FS is the filesystem operations surface. SyncDir makes a preceding rename
// in dir durable (fsync of the directory inode); implementations where that
// is a no-op may return nil.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (os.FileInfo, error)
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	SyncDir(dir string) error
}

// osFS is the real filesystem: direct delegation to package os.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error  { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error              { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// holder wraps the active FS so swaps are a single atomic pointer store
// (safe under -race even if a background flusher races an Install).
type holder struct{ fs FS }

var active atomic.Pointer[holder]

func init() {
	active.Store(&holder{fs: osFS{}})
}

// Swap installs fs as the active filesystem and returns the previous one.
// Restore the returned value when done (faultdisk.Uninstall does this).
func Swap(fs FS) FS {
	old := active.Swap(&holder{fs: fs})
	return old.fs
}

// Current returns the active filesystem.
func Current() FS { return active.Load().fs }

// Package-level delegates: call sites use these instead of package os.

func OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return Current().OpenFile(name, flag, perm)
}

// Open opens name read-only.
func Open(name string) (File, error) { return Current().OpenFile(name, os.O_RDONLY, 0) }

// Create truncate-creates name for writing.
func Create(name string) (File, error) {
	return Current().OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func Rename(oldpath, newpath string) error         { return Current().Rename(oldpath, newpath) }
func Remove(name string) error                     { return Current().Remove(name) }
func Stat(name string) (os.FileInfo, error)        { return Current().Stat(name) }
func MkdirAll(path string, perm os.FileMode) error { return Current().MkdirAll(path, perm) }
func ReadDir(name string) ([]os.DirEntry, error)   { return Current().ReadDir(name) }
func SyncDir(dir string) error                     { return Current().SyncDir(dir) }

// ReadFile reads the whole of name through the seam.
func ReadFile(name string) ([]byte, error) {
	f, err := Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, 64<<10)
	off := int64(0)
	for {
		n, err := f.ReadAt(buf, off)
		out = append(out, buf[:n]...)
		off += int64(n)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// WriteFileAtomic durably replaces path with data: write a temp file in the
// same directory, fsync it, rename over path, then fsync the parent
// directory so the rename itself survives a crash. This is the single
// atomic-replace helper behind segment meta, checkpoint files, and the WAL
// master record — the crash-consistency contract is "old content or new
// content, never a mix, and new content once WriteFileAtomic returns".
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		Remove(tmp)
		return fmt.Errorf("vfs: atomic write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		Remove(tmp)
		return fmt.Errorf("vfs: atomic sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		Remove(tmp)
		return err
	}
	if err := Rename(tmp, path); err != nil {
		Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}
