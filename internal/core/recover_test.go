package core_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"harbor/internal/comm"
	"harbor/internal/coord"
	"harbor/internal/core"
	"harbor/internal/exec"
	"harbor/internal/testutil"
	"harbor/internal/tuple"
	"harbor/internal/txn"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

func testDesc() *tuple.Desc {
	return tuple.MustDesc("id",
		tuple.FieldDef{Name: "id", Type: tuple.Int64},
		tuple.FieldDef{Name: "v", Type: tuple.Int32},
	)
}

func mk(id, v int64) tuple.Tuple {
	return tuple.MustMake(testDesc(), tuple.VInt(id), tuple.VInt(v))
}

func newCluster(t *testing.T, workers int) *testutil.Cluster {
	t.Helper()
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     workers,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		LockTimeout: time.Second,
		BaseDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.CreateReplicatedTable(1, testDesc(), 4); err != nil {
		t.Fatal(err)
	}
	return cl
}

// snapshot returns table contents keyed by (id, ins, del) for logical
// replica comparison.
func snapshot(t *testing.T, w *worker.Site, table int32) map[string]bool {
	t.Helper()
	rows, err := exec.Drain(exec.NewSeqScan(w.Store, exec.ScanSpec{Table: table, Vis: exec.SeeDeleted}))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, r := range rows {
		key := fmt.Sprintf("%d@%d-%d", r.Key(testDesc()), r.InsTS(), r.DelTS())
		if out[key] {
			t.Fatalf("duplicate version on worker: %s", key)
		}
		out[key] = true
	}
	return out
}

// assertReplicasEqual checks the §3.1 logical-equivalence invariant.
func assertReplicasEqual(t *testing.T, cl *testutil.Cluster, table int32, workers ...int) {
	t.Helper()
	if len(workers) == 0 {
		for i := range cl.Workers {
			workers = append(workers, i)
		}
	}
	base := snapshot(t, cl.Workers[workers[0]], table)
	for _, i := range workers[1:] {
		other := snapshot(t, cl.Workers[i], table)
		if len(base) != len(other) {
			t.Fatalf("replica divergence: worker %d has %d versions, worker %d has %d",
				workers[0], len(base), i, len(other))
		}
		for k := range base {
			if !other[k] {
				t.Fatalf("replica divergence: version %s missing on worker %d", k, i)
			}
		}
	}
}

func commitInsert(t *testing.T, cl *testutil.Cluster, table int32, id, v int64) tuple.Timestamp {
	t.Helper()
	tx := cl.Coord.Begin()
	if err := tx.Insert(table, mk(id, v)); err != nil {
		t.Fatal(err)
	}
	ts, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func recover(t *testing.T, cl *testutil.Cluster, i int, opt core.Options) *core.SiteStats {
	t.Helper()
	w, err := cl.RestartWorker(i)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.New(w, cl.Catalog).RecoverSite(opt)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestRecoverInsertsSinceCheckpoint(t *testing.T) {
	cl := newCluster(t, 2)
	// Committed + checkpointed baseline.
	for i := int64(1); i <= 10; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	for _, w := range cl.Workers {
		if err := w.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	// Post-checkpoint inserts: never flushed at worker 0.
	for i := int64(11); i <= 30; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	cl.Workers[0].Crash()
	// The survivor keeps serving both reads and writes.
	commitInsert(t, cl, 1, 31, 31)
	stats := recover(t, cl, 0, core.Options{})
	if len(stats.Objects) != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	obj := stats.Objects[0]
	if obj.Phase2Inserts+obj.Phase3Inserts < 21 {
		t.Fatalf("copied %d+%d inserts, want ≥ 21", obj.Phase2Inserts, obj.Phase3Inserts)
	}
	assertReplicasEqual(t, cl, 1)
	// And the cluster keeps working with the revived replica.
	commitInsert(t, cl, 1, 32, 32)
	assertReplicasEqual(t, cl, 1)
}

func TestRecoverDeletesAndUpdates(t *testing.T) {
	cl := newCluster(t, 2)
	for i := int64(1); i <= 20; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	for _, w := range cl.Workers {
		if err := w.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	// Post-checkpoint: delete 5 tuples, update 5 others.
	for i := int64(1); i <= 5; i++ {
		tx := cl.Coord.Begin()
		if err := tx.DeleteKey(1, i); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(6); i <= 10; i++ {
		tx := cl.Coord.Begin()
		if err := tx.UpdateKey(1, i, mk(i, i*100)); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	cl.Workers[0].Crash()
	stats := recover(t, cl, 0, core.Options{})
	obj := stats.Objects[0]
	if obj.Phase2Deletes+obj.Phase3Deletes < 10 {
		t.Fatalf("copied %d+%d deletion stamps, want ≥ 10", obj.Phase2Deletes, obj.Phase3Deletes)
	}
	assertReplicasEqual(t, cl, 1)
	// Current view agrees too.
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("current rows = %d, want 15", len(rows))
	}
}

func TestRecoverDiscardsUncommittedAndPostCheckpointDiskState(t *testing.T) {
	cl := newCluster(t, 2)
	for i := int64(1); i <= 5; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	for _, w := range cl.Workers {
		if err := w.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	// More committed work, then FLUSH the dirty pages at worker 0 WITHOUT
	// writing a checkpoint: the disk holds post-checkpoint data that
	// Phase 1 must remove before Phase 2 re-copies it.
	for i := int64(6); i <= 9; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	if err := cl.Workers[0].Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// An uncommitted transaction whose dirty page also reaches disk (STEAL).
	tx := cl.Coord.Begin()
	if err := tx.Insert(1, mk(99, 0)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Workers[0].Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	cl.Workers[0].Crash()
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	stats := recover(t, cl, 0, core.Options{})
	obj := stats.Objects[0]
	if obj.Phase1Deleted < 5 {
		t.Fatalf("Phase 1 deleted %d tuples, want ≥ 5 (4 post-ckpt + 1 uncommitted)", obj.Phase1Deleted)
	}
	assertReplicasEqual(t, cl, 1)
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
}

func TestRecoverUndeletesPostCheckpointDeletions(t *testing.T) {
	cl := newCluster(t, 2)
	for i := int64(1); i <= 5; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	for _, w := range cl.Workers {
		if err := w.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	// Delete key 1 and flush the stamped page; then crash. Phase 1 must
	// revert the stamp, Phase 2 re-copies it (same value here).
	tx := cl.Coord.Begin()
	if err := tx.DeleteKey(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Workers[0].Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	cl.Workers[0].Crash()
	stats := recover(t, cl, 0, core.Options{})
	obj := stats.Objects[0]
	if obj.Phase1Undeleted != 1 {
		t.Fatalf("Phase 1 undeleted %d, want 1", obj.Phase1Undeleted)
	}
	assertReplicasEqual(t, cl, 1)
}

func TestRecoverFromBlankSlate(t *testing.T) {
	// §5.3: "if S's disk has failed and must be recovered from a blank
	// slate". Restart the worker on a fresh directory.
	cl := newCluster(t, 2)
	for i := int64(1); i <= 25; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	tx := cl.Coord.Begin()
	if err := tx.DeleteKey(1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	old := cl.Workers[0]
	old.Crash()
	// Re-open over an empty directory (disk replaced).
	w, err := worker.Open(worker.Config{
		Site:        testutil.WorkerSiteID(0),
		Dir:         t.TempDir(),
		Protocol:    cl.Cfg.Protocol,
		Mode:        cl.Cfg.Mode,
		LockTimeout: time.Second,
		Catalog:     cl.Catalog,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Workers[0] = w
	cl.Catalog.AddSite(testutil.WorkerSiteID(0), w.Addr())
	if _, err := core.New(w, cl.Catalog).RecoverSite(core.Options{}); err != nil {
		t.Fatal(err)
	}
	assertReplicasEqual(t, cl, 1)
}

func TestParallelMultiObjectRecovery(t *testing.T) {
	cl := newCluster(t, 3)
	if err := cl.CreateReplicatedTable(2, testDesc(), 4); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 15; i++ {
		commitInsert(t, cl, 1, i, i)
		commitInsert(t, cl, 2, i, -i)
	}
	cl.Workers[0].Crash()
	for i := int64(16); i <= 20; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	stats := recover(t, cl, 0, core.Options{Parallel: true})
	if len(stats.Objects) != 2 {
		t.Fatalf("recovered %d objects", len(stats.Objects))
	}
	assertReplicasEqual(t, cl, 1)
	assertReplicasEqual(t, cl, 2)
}

func TestRecoveryConcurrentWithUpdates(t *testing.T) {
	// Phase 2 must run without quiescing the system: a writer keeps
	// committing while recovery copies data.
	cl := newCluster(t, 2)
	for i := int64(1); i <= 50; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	cl.Workers[0].Crash()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writerErr error
	var written int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1000); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Retry loop: inserts hitting Phase 3's short lock window abort
			// on the deadlock timeout and are retried, exactly how a client
			// handles lock-timeout aborts.
			committed := false
			for attempt := 0; attempt < 5 && !committed; attempt++ {
				tx := cl.Coord.Begin()
				if err := tx.Insert(1, mk(i, 0)); err != nil {
					_ = tx.Abort()
					continue
				}
				if _, err := tx.Commit(); err != nil {
					continue
				}
				committed = true
			}
			if !committed {
				writerErr = fmt.Errorf("insert %d failed after retries", i)
				return
			}
			written++
		}
	}()
	time.Sleep(30 * time.Millisecond)
	recover(t, cl, 0, core.Options{})
	close(stop)
	wg.Wait()
	if writerErr != nil {
		t.Fatalf("writer failed during recovery: %v", writerErr)
	}
	if written == 0 {
		t.Fatal("writer made no progress")
	}
	// Let any post-online commits settle, then compare.
	assertReplicasEqual(t, cl, 1)
}

func TestJoinPendingTransaction(t *testing.T) {
	// Deterministic walk through Figure 5-4. Worker 0 plays the recovering
	// site: the coordinator's failure detector has it down, a pending
	// transaction updates the table at the live buddy only, a second
	// pending transaction's update arrives while the "recovering site"
	// holds the buddy's table read lock (so it blocks, queued at the
	// coordinator), and the OBJECT-ONLINE announcement must replay both
	// queued updates to worker 0 before ALL-DONE.
	cl := newCluster(t, 2)
	for i := int64(1); i <= 5; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	site0 := testutil.WorkerSiteID(0)
	cl.Coord.MarkDown(site0) // failure detector: worker 0 is "crashed"

	// Phase 3 stand-in: take the buddy's table read lock FIRST. (§5.4.1:
	// the lock can only be granted while no transaction has uncommitted
	// rec updates applied anywhere, so both pending updates below arrive
	// while the lock is held and block at the buddy.)
	buddyAddr, _ := cl.Catalog.SiteAddr(testutil.WorkerSiteID(1))
	lockConn, err := comm.Dial(buddyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer lockConn.Close()
	if resp, err := lockConn.Call(&wire.Msg{Type: wire.MsgLockTable, Txn: 999991, Table: 1}); err != nil || resp.Type != wire.MsgOK {
		t.Fatalf("table lock: %v %v", resp, err)
	}

	// Two pending transactions: their inserts block behind the table lock,
	// queued at the coordinator.
	pend1 := cl.Coord.Begin()
	pend1Done := make(chan error, 1)
	go func() { pend1Done <- pend1.Insert(1, mk(100, 100)) }()
	pend2 := cl.Coord.Begin()
	pend2Done := make(chan error, 1)
	go func() { pend2Done <- pend2.Insert(1, mk(101, 101)) }()
	time.Sleep(50 * time.Millisecond)

	// "rec on S is coming online" — replay must happen even though pend2's
	// update is still blocked at the buddy.
	coordConn, err := comm.Dial(cl.Coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer coordConn.Close()
	resp, err := coordConn.Call(&wire.Msg{Type: wire.MsgObjectOnline, Site: int32(site0), Table: 1})
	if err != nil || resp.Type != wire.MsgAllDone {
		t.Fatalf("object-online: %v %v", resp, err)
	}

	// Release the table lock; pend2's blocked insert completes.
	if _, err := lockConn.Call(&wire.Msg{Type: wire.MsgUnlockTable, Txn: 999991, Table: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := lockConn.Call(&wire.Msg{Type: wire.MsgEndRead, Txn: 999991}); err != nil {
		t.Fatal(err)
	}
	if err := <-pend1Done; err != nil {
		t.Fatalf("blocked insert 1 failed: %v", err)
	}
	if err := <-pend2Done; err != nil {
		t.Fatalf("blocked insert 2 failed: %v", err)
	}

	// Both pending transactions commit with worker 0 as a participant.
	if _, err := pend1.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := pend2.Commit(); err != nil {
		t.Fatal(err)
	}
	assertReplicasEqual(t, cl, 1)
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for _, r := range rows {
		ids = append(ids, r.Key(testDesc()))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) != 7 || ids[5] != 100 || ids[6] != 101 {
		t.Fatalf("joined txn effects missing: %v", ids)
	}
}

func TestBuddyFailureDuringRecoveryReplans(t *testing.T) {
	// 3 workers, K=2: crash worker 0, start recovery, crash buddy worker 1
	// mid-stream; recovery must replan onto worker 2 (§5.5.2).
	cl := newCluster(t, 3)
	for i := int64(1); i <= 200; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	cl.Workers[0].Crash()
	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the first buddy shortly after recovery starts.
	go func() {
		time.Sleep(5 * time.Millisecond)
		cl.Workers[1].Crash()
	}()
	if _, err := core.New(w, cl.Catalog).RecoverSite(core.Options{}); err != nil {
		t.Fatal(err)
	}
	assertReplicasEqual(t, cl, 1, 0, 2)
}

func TestRecoveringSiteCrashMidRecoveryRestartsFromObjectCheckpoint(t *testing.T) {
	cl := newCluster(t, 2)
	for i := int64(1); i <= 100; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	cl.Workers[0].Crash()
	// First recovery attempt: crash the recovering site right after
	// Phase 2 recorded a per-object checkpoint. Simulate by running
	// recovery and crashing concurrently.
	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := core.New(w, cl.Catalog).RecoverSite(core.Options{})
		done <- err
	}()
	time.Sleep(3 * time.Millisecond)
	w.Crash()
	<-done // may or may not have failed; either way, retry from scratch
	stats := recover(t, cl, 0, core.Options{})
	_ = stats
	assertReplicasEqual(t, cl, 1)
}

func TestRecoveryPhaseDecomposition(t *testing.T) {
	cl := newCluster(t, 2)
	for i := int64(1); i <= 40; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	for _, w := range cl.Workers {
		if err := w.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(41); i <= 60; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	cl.Workers[0].Crash()
	stats := recover(t, cl, 0, core.Options{})
	obj := stats.Objects[0]
	if obj.Phase1 <= 0 || obj.Total <= 0 {
		t.Fatalf("phase timers not recorded: %+v", obj)
	}
	if obj.Total < obj.Phase1+obj.Phase2Update+obj.Phase2Insert {
		t.Fatalf("total %v < sum of phases", obj.Total)
	}
	if obj.Rounds < 1 {
		t.Fatalf("no Phase 2 rounds recorded")
	}
}

func TestRecoverTupleAtATimeAblation(t *testing.T) {
	// The legacy per-tuple wire framing (the benchmark ablation) must
	// produce the identical recovered replica.
	cl := newCluster(t, 2)
	for i := int64(1); i <= 40; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	for i := int64(1); i <= 5; i++ {
		tx := cl.Coord.Begin()
		if err := tx.DeleteKey(1, i); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	cl.Workers[0].Crash()
	stats := recover(t, cl, 0, core.Options{TupleAtATime: true})
	obj := stats.Objects[0]
	if obj.Phase2Inserts+obj.Phase3Inserts < 40 {
		t.Fatalf("copied %d+%d inserts, want ≥ 40", obj.Phase2Inserts, obj.Phase3Inserts)
	}
	assertReplicasEqual(t, cl, 1)
}

func TestHistoricalQueriesSurviveRecovery(t *testing.T) {
	// Time travel still works on the recovered replica.
	cl := newCluster(t, 2)
	ts1 := commitInsert(t, cl, 1, 1, 1)
	commitInsert(t, cl, 1, 2, 2)
	tx := cl.Coord.Begin()
	if err := tx.DeleteKey(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	cl.Workers[0].Crash()
	recover(t, cl, 0, core.Options{})
	// Force reads onto the recovered replica.
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{
		Historical: true, AsOf: ts1, PreferSite: testutil.WorkerSiteID(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Key(testDesc()) != 1 {
		t.Fatalf("time travel on recovered replica: %v", rows)
	}
}
