package core_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"harbor/internal/coord"
	"harbor/internal/core"
	"harbor/internal/exec"
	"harbor/internal/page"
	"harbor/internal/testutil"
	"harbor/internal/worker"
)

// mixedWorkload commits a seeded stream of inserts, updates and deletes.
// Run against identically-seeded clusters it produces identical commit
// timestamps, so the two clusters' contents must match byte for byte.
func mixedWorkload(t *testing.T, cl *testutil.Cluster, table int32, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var live []int64
	for i := 0; i < n; i++ {
		tx := cl.Coord.Begin()
		key := int64(i)
		if err := tx.Insert(table, mk(key, rng.Int63n(50))); err != nil {
			t.Fatal(err)
		}
		switch r := rng.Intn(10); {
		case r < 2 && len(live) > 0:
			victim := live[rng.Intn(len(live))]
			if err := tx.DeleteKey(table, victim); err != nil {
				t.Fatal(err)
			}
		case r < 4 && len(live) > 0:
			victim := live[rng.Intn(len(live))]
			if err := tx.UpdateKey(table, victim, mk(victim, rng.Int63n(50))); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		live = append(live, key)
	}
}

// byteSnapshot digests a replica's full contents — every version with every
// field, encoded with the schema's own wire encoding — into a sorted string.
// Equal digests mean byte-identical replicas up to physical placement.
func byteSnapshot(t *testing.T, w *worker.Site, table int32) string {
	t.Helper()
	rows, err := exec.Drain(exec.NewSeqScan(w.Store, exec.ScanSpec{Table: table, Vis: exec.SeeDeleted}))
	if err != nil {
		t.Fatal(err)
	}
	desc := testDesc()
	enc := make([]string, len(rows))
	for i, r := range rows {
		enc[i] = fmt.Sprintf("%x", r.Encode(desc))
	}
	sort.Strings(enc)
	return strings.Join(enc, "\n")
}

// corruptHeapPage flips bytes inside one page of a table's heap file on
// disk — simulated bit rot / torn write under the site.
func corruptHeapPage(t *testing.T, dir string, table int32, pageNo int32) {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("table_%d.heap", table))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 16)
	off := int64(pageNo)*page.Size + page.Size/2
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] ^= 0xA5
	}
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
}

// heapPageCount returns the number of pages physically present in the heap
// file (flushed at least once).
func heapPageCount(t *testing.T, dir string, table int32) int32 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("table_%d.heap", table)))
	if err != nil {
		t.Fatal(err)
	}
	return int32(fi.Size() / page.Size)
}

// TestTornPageRepairEquivalence corrupts a random committed page of a
// crashed worker, recovers the site, and requires the result to be
// byte-identical — scans and aggregates — to an identically-seeded cluster
// that never saw corruption, with at least one page repair observed.
func TestTornPageRepairEquivalence(t *testing.T) {
	for _, seed := range []int64{7, 4242} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			damaged := newCluster(t, 2)
			healthy := newCluster(t, 2)
			mixedWorkload(t, damaged, 1, seed, 120)
			mixedWorkload(t, healthy, 1, seed, 120)

			// Make the workload durable, then crash and corrupt a random
			// flushed page under the downed site.
			if err := damaged.Workers[0].CheckpointNow(); err != nil {
				t.Fatal(err)
			}
			mixedWorkload(t, damaged, 1, seed+1, 40)
			mixedWorkload(t, healthy, 1, seed+1, 40)
			damaged.Workers[0].Crash()

			dir := damaged.Workers[0].Cfg.Dir
			n := heapPageCount(t, dir, 1)
			if n == 0 {
				t.Fatal("no flushed pages to corrupt; test is vacuous")
			}
			rng := rand.New(rand.NewSource(seed))
			corruptHeapPage(t, dir, 1, rng.Int31n(n))

			recover(t, damaged, 0, core.Options{})
			w := damaged.Workers[0]
			if got := w.Obs().Counter("recover.page_repairs").Load(); got < 1 {
				t.Fatalf("expected at least one page repair, counter = %d", got)
			}

			// Replica-level byte equivalence against the healthy twin.
			for i := range damaged.Workers {
				got := byteSnapshot(t, damaged.Workers[i], 1)
				want := byteSnapshot(t, healthy.Workers[i], 1)
				if got != want {
					t.Fatalf("worker %d diverged from healthy twin after repair", i)
				}
			}

			// Query-level equivalence through both coordinators.
			desc := testDesc()
			plan := exec.AggPlan{GroupField: desc.FieldIndex("v"), Aggs: []exec.AggSpec{
				{Fn: exec.Count},
				{Fn: exec.Sum, Field: desc.FieldIndex("id")},
			}}
			got, err := damaged.Coord.Aggregate(1, coord.QueryOptions{}, plan)
			if err != nil {
				t.Fatal(err)
			}
			want, err := healthy.Coord.Aggregate(1, coord.QueryOptions{}, plan)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("healthy aggregate returned nothing; test is vacuous")
			}
			if len(got) != len(want) {
				t.Fatalf("aggregate rows: got %d want %d", len(got), len(want))
			}
			for i := range want {
				if fmt.Sprintf("%v", got[i].Values) != fmt.Sprintf("%v", want[i].Values) {
					t.Fatalf("aggregate row %d: got %v want %v", i, got[i].Values, want[i].Values)
				}
			}
		})
	}
}

// TestOnlinePageRepairFromBuddy corrupts a page under a RUNNING worker
// (cold cache), lets a scan trip the CRC check, and expects the background
// repair hook to restore the page from the buddy without a restart.
func TestOnlinePageRepairFromBuddy(t *testing.T) {
	cl := newCluster(t, 2)
	mixedWorkload(t, cl, 1, 99, 120)

	w := cl.Workers[0]
	// Flush everything and drop the cache so the next read goes to disk.
	if err := w.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	w.Pool.DiscardAll()
	corruptHeapPage(t, w.Cfg.Dir, 1, 0)

	// A coordinator scan fails over to the buddy AND arms the repair.
	rows, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatalf("scan should fail over to the healthy replica: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("failover scan returned nothing; test is vacuous")
	}

	deadline := time.Now().Add(5 * time.Second)
	for w.Obs().Counter("recover.page_repairs").Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("online repair did not run (errors=%d)",
				w.Obs().Counter("recover.page_repair_errors").Load())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The repaired replica must match its buddy exactly.
	if got, want := byteSnapshot(t, cl.Workers[0], 1), byteSnapshot(t, cl.Workers[1], 1); got != want {
		t.Fatal("replicas diverged after online repair")
	}
	if got := w.Obs().Counter("storage.corrupt_pages").Load(); got < 1 {
		t.Fatalf("corruption was repaired but never counted: storage.corrupt_pages = %d", got)
	}
}
