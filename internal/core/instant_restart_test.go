package core_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"harbor/internal/catalog"
	"harbor/internal/comm"
	"harbor/internal/coord"
	"harbor/internal/core"
	"harbor/internal/expr"
	"harbor/internal/obs"
	"harbor/internal/testutil"
	"harbor/internal/txn"
	"harbor/internal/wire"
	"harbor/internal/worker"
)

// drainRecoveryScan sends one raw recovery scan and reads the stream to its
// end, returning the terminal message (MsgScanEnd when served, MsgErr when
// refused).
func drainRecoveryScan(t *testing.T, addr string, m *wire.Msg) *wire.Msg {
	t.Helper()
	c, err := comm.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
	for {
		resp, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch resp.Type {
		case wire.MsgScanEnd, wire.MsgErr:
			return resp
		case wire.MsgTuple, wire.MsgTupleBatch:
			// drain
		default:
			t.Fatalf("unexpected %v in recovery stream", resp.Type)
		}
	}
}

// TestPartialRecoveryServesReadyObjects pins the per-object half of the
// recovery state machine: when one object's recovery fails (its only buddy
// is down, K-safety exceeded) the site's other objects still complete, turn
// Ready, rejoin the update set, and serve reads — while the failed object
// keeps refusing recovery scans (the stale-recovery-source regression stays
// pinned, now per object instead of per site).
func TestPartialRecoveryServesReadyObjects(t *testing.T) {
	cl, err := testutil.NewCluster(testutil.ClusterConfig{
		Workers:     3,
		Protocol:    txn.OptThreePC,
		Mode:        worker.HARBOR,
		LockTimeout: time.Second,
		BaseDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	// Table 1 lives on {w0, w1}; table 2 on {w0, w2}. Taking w2 down leaves
	// table 2 without a recovery buddy while table 1 recovers normally.
	if err := cl.CreateReplicatedTable(1, testDesc(), 4, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateReplicatedTable(2, testDesc(), 4, 0, 2); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		commitInsert(t, cl, 1, i, i)
		commitInsert(t, cl, 2, i, -i)
	}
	preTS := commitInsert(t, cl, 1, 21, 21)
	for _, w := range cl.Workers {
		if err := w.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	cl.Workers[2].Crash() // table 2's only buddy; stays down
	cl.Workers[0].Crash()
	for i := int64(22); i <= 30; i++ {
		commitInsert(t, cl, 1, i, i) // w1 keeps table 1 moving
	}

	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.New(w, cl.Catalog).RecoverSite(core.Options{Parallel: true})
	if err == nil {
		t.Fatal("RecoverSite succeeded although table 2 has no live buddy")
	}
	if !errors.Is(err, catalog.ErrKSafetyExceeded) {
		t.Fatalf("partial failure should surface ErrKSafetyExceeded, got: %v", err)
	}

	// Per-object outcome: table 1 Ready, table 2 pinned NeedsRecovery, and
	// the site as a whole still reports recovery pending.
	if st, _ := w.ObjectState(1); st != worker.ObjReady {
		t.Fatalf("table 1 state = %v, want Ready", st)
	}
	if st, _ := w.ObjectState(2); st != worker.ObjNeedsRecovery {
		t.Fatalf("table 2 state = %v, want NeedsRecovery", st)
	}
	if !w.NeedsRecovery() {
		t.Fatal("site with a failed object must still report NeedsRecovery")
	}

	// The Ready object serves: historical reads from the rejoined replica are
	// byte-identical to the healthy one's.
	fromRecovered, err := cl.Coord.Scan(1, coord.QueryOptions{
		Historical: true, AsOf: preTS, PreferSite: testutil.WorkerSiteID(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	fromHealthy, err := cl.Coord.Scan(1, coord.QueryOptions{
		Historical: true, AsOf: preTS, PreferSite: testutil.WorkerSiteID(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fromRecovered) != 21 || !reflect.DeepEqual(fromRecovered, fromHealthy) {
		t.Fatalf("historical read divergence: recovered %d rows, healthy %d rows",
			len(fromRecovered), len(fromHealthy))
	}
	// And it participates in new updates again.
	commitInsert(t, cl, 1, 31, 31)
	assertReplicasEqual(t, cl, 1, 0, 1)

	// Regression pin, per object: the failed object refuses recovery scans
	// (it is not a valid source), while the Ready object on the SAME site
	// serves them.
	addr, _ := cl.Catalog.SiteAddr(testutil.WorkerSiteID(0))
	full := expr.FullKeyRange()
	refused := drainRecoveryScan(t, addr, &wire.Msg{
		Type: wire.MsgRecoveryScan, Table: 2, TS: preTS,
		KeyLo: full.Lo, KeyHi: full.Hi,
		Flags: wire.FlagHasInsGT, InsGT: 0,
	})
	if refused.Type != wire.MsgErr {
		t.Fatalf("recovery scan of un-recovered table 2 answered %v, want refusal", refused.Type)
	}
	served := drainRecoveryScan(t, addr, &wire.Msg{
		Type: wire.MsgRecoveryScan, Table: 1, TS: preTS,
		KeyLo: full.Lo, KeyHi: full.Hi,
		Flags: wire.FlagHasInsGT, InsGT: preTS,
	})
	if served.Type != wire.MsgScanEnd {
		t.Fatalf("recovery scan of Ready table 1 answered %v (%s), want a served stream", served.Type, served.Text)
	}
}

// TestMidRecoveryHistoricalReadsMatchHealthyCluster pins the MTTR-split read
// path end to end: a restarted worker whose object is mid historical-copy
// (state HistoricalCopy, copied through T) serves coordinator-routed
// historical reads asOf ≤ T byte-identically to a healthy replica — the
// coordinator's per-object readiness probe routes onto it even though the
// site is still out of the update set — while reads past the copied horizon
// quietly fail over to the healthy buddy.
func TestMidRecoveryHistoricalReadsMatchHealthyCluster(t *testing.T) {
	cl := newCluster(t, 2)
	for i := int64(1); i <= 20; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	preTS := commitInsert(t, cl, 1, 21, 21)
	for _, w := range cl.Workers {
		if err := w.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	cl.Workers[0].Crash()
	for i := int64(22); i <= 30; i++ {
		commitInsert(t, cl, 1, i, i) // first commit round marks w0 down
	}
	w, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	// A dirty restart demotes every object.
	if st, _ := w.ObjectState(1); st != worker.ObjNeedsRecovery {
		t.Fatalf("dirty restart: state = %v, want NeedsRecovery", st)
	}
	// Stage the exact mid-Phase-2 situation: the disk state is the
	// checkpoint snapshot (nothing was flushed after it), which IS the
	// historical image at preTS; recovery would publish exactly this horizon
	// after its Phase 1 rewind.
	w.SetObjectState(1, worker.ObjHistoricalCopy, preTS)

	readsBefore := w.Obs().Counter(obs.Name("worker.table.reads", "table", "1")).Load()
	fromRecovering, err := cl.Coord.Scan(1, coord.QueryOptions{
		Historical: true, AsOf: preTS, PreferSite: testutil.WorkerSiteID(0),
	})
	if err != nil {
		t.Fatalf("historical read from mid-recovery site: %v", err)
	}
	fromHealthy, err := cl.Coord.Scan(1, coord.QueryOptions{
		Historical: true, AsOf: preTS, PreferSite: testutil.WorkerSiteID(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fromRecovering) != 21 || !reflect.DeepEqual(fromRecovering, fromHealthy) {
		t.Fatalf("mid-recovery historical read diverges: %d rows vs healthy %d",
			len(fromRecovering), len(fromHealthy))
	}
	if w.Obs().Counter(obs.Name("worker.table.reads", "table", "1")).Load() == readsBefore {
		t.Fatal("the mid-recovery site never saw the read; the coordinator routed elsewhere")
	}

	// Past the copied horizon the replica is not usable; the planner must
	// fall back to the healthy buddy and still answer in full.
	allRows, err := cl.Coord.Scan(1, coord.QueryOptions{
		Historical: true, PreferSite: testutil.WorkerSiteID(0), // asOf=HWM > preTS
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(allRows) != 30 {
		t.Fatalf("fallback read returned %d rows, want 30", len(allRows))
	}
	// Current-visibility reads never touch a non-Ready object either.
	curRows, err := cl.Coord.Scan(1, coord.QueryOptions{PreferSite: testutil.WorkerSiteID(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(curRows) != 30 {
		t.Fatalf("current read returned %d rows, want 30", len(curRows))
	}
}

// TestMidRecoverySegmentRoutedReadMatchesHealthy pins the segment-granular
// half of the routing: with BOTH replicas of a table restarted mid-recovery
// and each having copied a complementary half of the key space, neither site
// alone can serve, yet the coordinator composes the scan from w0's low
// segment and w1's high segment — and the merged answer is byte-identical to
// the healthy cluster's, for a historical read over HistoricalCopy segments
// and then for a current-visibility read over drained Catchup segments.
func TestMidRecoverySegmentRoutedReadMatchesHealthy(t *testing.T) {
	cl := newCluster(t, 2)
	for i := int64(1); i <= 40; i++ {
		commitInsert(t, cl, 1, i, i)
	}
	preTS := commitInsert(t, cl, 1, 41, 41)
	healthyHist, err := cl.Coord.Scan(1, coord.QueryOptions{Historical: true, AsOf: preTS})
	if err != nil {
		t.Fatal(err)
	}
	healthyCur, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(healthyHist) != 41 || len(healthyCur) != 41 {
		t.Fatalf("healthy baseline: %d historical / %d current rows, want 41/41",
			len(healthyHist), len(healthyCur))
	}
	for _, w := range cl.Workers {
		if err := w.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	cl.Workers[0].Crash()
	cl.Workers[1].Crash()
	cl.Coord.MarkDown(testutil.WorkerSiteID(0))
	cl.Coord.MarkDown(testutil.WorkerSiteID(1))
	w0, err := cl.RestartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := cl.RestartWorker(1)
	if err != nil {
		t.Fatal(err)
	}
	// Stage complementary mid-Phase-2 progress: each disk image is the
	// checkpoint snapshot (the historical image at preTS), and each site has
	// published exactly one half of the key space as copied through preTS.
	full := expr.FullKeyRange()
	low := expr.KeyRange{Lo: full.Lo, Hi: 20}
	high := expr.KeyRange{Lo: 20, Hi: full.Hi}
	w0.SetObjectSegments(1, []int64{20}, worker.ObjNeedsRecovery, 0)
	w0.SetSegmentState(1, low, worker.ObjHistoricalCopy, preTS)
	w1.SetObjectSegments(1, []int64{20}, worker.ObjNeedsRecovery, 0)
	w1.SetSegmentState(1, high, worker.ObjHistoricalCopy, preTS)

	reads0 := w0.Obs().Counter(obs.Name("worker.table.reads", "table", "1"))
	reads1 := w1.Obs().Counter(obs.Name("worker.table.reads", "table", "1"))
	before0, before1 := reads0.Load(), reads1.Load()
	split, err := cl.Coord.Scan(1, coord.QueryOptions{Historical: true, AsOf: preTS})
	if err != nil {
		t.Fatalf("segment-composed historical read: %v", err)
	}
	if !reflect.DeepEqual(split, healthyHist) {
		t.Fatalf("segment-composed historical read diverges: %d rows vs healthy %d",
			len(split), len(healthyHist))
	}
	if reads0.Load() == before0 || reads1.Load() == before1 {
		t.Fatalf("scan was not split across both recovering sites (reads w0 %d→%d, w1 %d→%d)",
			before0, reads0.Load(), before1, reads1.Load())
	}

	// Drained locked catch-up: the same complementary segments reach Catchup
	// with their horizons at the cluster HWM, so a *current* read (whose
	// start timestamp is that HWM) also composes across the two sites.
	w0.SetSegmentState(1, low, worker.ObjCatchup, preTS)
	w1.SetSegmentState(1, high, worker.ObjCatchup, preTS)
	time.Sleep(150 * time.Millisecond) // let the coordinator's readiness probe cache expire
	before0, before1 = reads0.Load(), reads1.Load()
	curSplit, err := cl.Coord.Scan(1, coord.QueryOptions{})
	if err != nil {
		t.Fatalf("segment-composed current read: %v", err)
	}
	if !reflect.DeepEqual(curSplit, healthyCur) {
		t.Fatalf("segment-composed current read diverges: %d rows vs healthy %d",
			len(curSplit), len(healthyCur))
	}
	if reads0.Load() == before0 || reads1.Load() == before1 {
		t.Fatalf("current scan was not split across both recovering sites (reads w0 %d→%d, w1 %d→%d)",
			before0, reads0.Load(), before1, reads1.Load())
	}
}
